// Trajectory: the Appendix-D comparison — recover the spatial point
// distribution of a fleet's trajectories under LDP, with the trajectory-
// specific baselines (LDPTrace, PivotTrace) against plain DAM over
// points — run end to end through the report lifecycle.
//
// Each user's full trajectory is encoded on device into one compact LDP
// report (ReportTrajectory); the reports stream in shards over HTTP
// loopback to an in-process collector daemon (internal/collector), which
// merges them and serves the decoded spatial estimate — the same
// pipeline `damctl report | damctl submit | damctl serve` runs across
// processes. Every served histogram is checked byte-for-byte against
// decoding the same aggregate in process.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
	"dpspatial/internal/trajectory"
)

// reportShards is how many shard submissions each mechanism's report
// stream is split across — any sharding merges to the identical state.
const reportShards = 3

// encodeTrajectories plays the client stage: one LDP report per user
// trajectory, every report also accumulated into the local reference
// aggregate the served estimate is checked against.
func encodeTrajectories(report func(trajectory.Trajectory, *rng.RNG) (fo.Report, error),
	agg *fo.Aggregate, trajs []trajectory.Trajectory, r *rng.RNG) ([]fo.Report, error) {
	reports := make([]fo.Report, 0, len(trajs))
	for _, tr := range trajs {
		rep, err := report(tr, r)
		if err != nil {
			return nil, err
		}
		if err := agg.Add(rep); err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// serveReports streams the reports to a fresh loopback HTTP collector in
// reportShards round-robin shard submissions and returns the estimate
// the collector serves back.
func serveReports(rm collector.Estimator, reports []fo.Report) (*grid.Hist2D, error) {
	coll, err := collector.New(collector.Config{Mechanism: rm})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(coll)
	defer srv.Close()
	client := collector.NewClient(srv.URL)
	ctx := context.Background()
	for s := 0; s < reportShards; s++ {
		shard := make([]fo.Report, 0, len(reports)/reportShards+1)
		for u := s; u < len(reports); u += reportShards {
			shard = append(shard, reports[u])
		}
		if len(shard) == 0 {
			continue
		}
		if _, err := client.SubmitReports(ctx, nil, shard); err != nil {
			return nil, err
		}
	}
	est, _, err := client.Estimate(ctx)
	return est, err
}

// mustMatch asserts the served histogram is byte-identical to decoding
// the reference aggregate in process — the lifecycle contract.
func mustMatch(name string, served, local *grid.Hist2D) {
	if len(served.Mass) != len(local.Mass) {
		log.Fatalf("%s: served %d cells, local %d", name, len(served.Mass), len(local.Mass))
	}
	for i := range served.Mass {
		if served.Mass[i] != local.Mass[i] {
			log.Fatalf("%s: served estimate diverges from the in-process decode at cell %d: %g != %g",
				name, i, served.Mass[i], local.Mass[i])
		}
	}
}

func main() {
	const (
		d   = 15
		eps = 1.5
	)
	// City-like pickup points seed the mobility workload.
	pts, err := synth.City(rng.New(99), synth.CityConfig{
		N: 30000, Streets: 12, Hotspots: 6, StreetFrac: 0.75, Jitter: 0.004, HotSigma: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	trajs, err := trajectory.Generate(pts, trajectory.WorkloadConfig{
		GridD: 120, NumTraj: 1000, MinLen: 2, MaxLen: 200,
	}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, tr := range trajs {
		total += len(tr)
	}
	fmt.Printf("Workload: %d trajectories, %d points total, %d report shards per mechanism\n\n",
		len(trajs), total, reportShards)

	dom, err := grid.SquareDomain(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := trajectory.PointHist(dom, trajs).Normalize()

	// LDPTrace: one report per user carries the trajectory's start cell,
	// length bucket and one sampled transition; the collector decodes the
	// merged mobility model and synthesises the spatial estimate.
	lt, err := trajectory.NewLDPTrace(dom, eps, 200)
	if err != nil {
		log.Fatal(err)
	}
	ltAgg := lt.NewAggregate()
	ltReports, err := encodeTrajectories(lt.ReportTrajectory, ltAgg, trajs, rng.New(2))
	if err != nil {
		log.Fatal(err)
	}
	ltEst, err := serveReports(lt, ltReports)
	if err != nil {
		log.Fatal(err)
	}
	ltLocal, err := lt.EstimateFromAggregate(ltAgg)
	if err != nil {
		log.Fatal(err)
	}
	mustMatch("LDPTrace", ltEst, ltLocal)
	report("LDPTrace", truth, ltEst)

	// PivotTrace: each report carries the user's perturbed pivots,
	// reconstructed into points by interpolation at encode time.
	pt, err := trajectory.NewPivotTrace(dom, eps, 4)
	if err != nil {
		log.Fatal(err)
	}
	ptAgg := pt.NewAggregate()
	ptReports, err := encodeTrajectories(pt.ReportTrajectory, ptAgg, trajs, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	ptEst, err := serveReports(pt, ptReports)
	if err != nil {
		log.Fatal(err)
	}
	ptLocal, err := pt.EstimateFromAggregate(ptAgg)
	if err != nil {
		log.Fatal(err)
	}
	mustMatch("PivotTrace", ptEst, ptLocal)
	report("PivotTrace", truth, ptEst)

	// DAM: treat every trajectory point as an independent LDP report —
	// the same cell-major stream EstimateHist consumes.
	mech, err := dpspatial.NewDAM(dom, eps)
	if err != nil {
		log.Fatal(err)
	}
	dam, err := dpspatial.AsReporting(mech)
	if err != nil {
		log.Fatal(err)
	}
	counts := trajectory.PointHist(dom, trajs)
	r := dpspatial.NewRand(4)
	damReports := make([]fo.Report, 0, total)
	for i, c := range counts.Mass {
		for k := 0; k < int(c); k++ {
			rep, err := dam.Report(i, r)
			if err != nil {
				log.Fatal(err)
			}
			damReports = append(damReports, rep)
		}
	}
	damEst, err := serveReports(dam, damReports)
	if err != nil {
		log.Fatal(err)
	}
	monolithic, err := dam.EstimateHist(counts, dpspatial.NewRand(4))
	if err != nil {
		log.Fatal(err)
	}
	mustMatch("DAM", damEst, monolithic)
	report("DAM", truth, damEst)

	fmt.Println("\nDAM spends the whole budget on location, while the trajectory")
	fmt.Println("baselines split it across direction/length/pivots — which is why")
	fmt.Println("DAM recovers the point distribution best (Figure 14). Every line")
	fmt.Println("above was served by an HTTP collector and matched the in-process")
	fmt.Println("decode of the same merged aggregate bit for bit.")
}

func report(name string, truth, est *grid.Hist2D) {
	w2, err := dpspatial.Wasserstein2Sinkhorn(truth, est)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s W2 = %.4f\n", name, w2)
}
