// Trajectory: the Appendix-D comparison — recover the spatial point
// distribution of a fleet's trajectories under LDP, with the trajectory-
// specific baselines (LDPTrace, PivotTrace) against plain DAM over points.
package main

import (
	"fmt"
	"log"

	"dpspatial"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
	"dpspatial/internal/trajectory"
)

func main() {
	const (
		d   = 15
		eps = 1.5
	)
	// City-like pickup points seed the mobility workload.
	pts, err := synth.City(rng.New(99), synth.CityConfig{
		N: 30000, Streets: 12, Hotspots: 6, StreetFrac: 0.75, Jitter: 0.004, HotSigma: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	trajs, err := trajectory.Generate(pts, trajectory.WorkloadConfig{
		GridD: 120, NumTraj: 1000, MinLen: 2, MaxLen: 200,
	}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, tr := range trajs {
		total += len(tr)
	}
	fmt.Printf("Workload: %d trajectories, %d points total\n\n", len(trajs), total)

	dom, err := grid.SquareDomain(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := trajectory.PointHist(dom, trajs).Normalize()

	// LDPTrace: synthesise trajectories from an LDP mobility model.
	lt, err := trajectory.NewLDPTrace(dom, eps, 200)
	if err != nil {
		log.Fatal(err)
	}
	synthTrajs, err := lt.Synthesize(trajs, rng.New(2))
	if err != nil {
		log.Fatal(err)
	}
	report("LDPTrace", truth, trajectory.PointHist(dom, synthTrajs).Normalize())

	// PivotTrace: perturb pivots, reconstruct by interpolation.
	pt, err := trajectory.NewPivotTrace(dom, eps, 4)
	if err != nil {
		log.Fatal(err)
	}
	recTrajs, err := pt.Reconstruct(trajs, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	report("PivotTrace", truth, trajectory.PointHist(dom, recTrajs).Normalize())

	// DAM: treat every trajectory point as an independent LDP report.
	mech, err := dpspatial.NewDAM(dom, eps)
	if err != nil {
		log.Fatal(err)
	}
	counts := trajectory.PointHist(dom, trajs)
	est, err := mech.EstimateHist(counts, dpspatial.NewRand(4))
	if err != nil {
		log.Fatal(err)
	}
	report("DAM", truth, est)

	fmt.Println("\nDAM spends the whole budget on location, while the trajectory")
	fmt.Println("baselines split it across direction/length/pivots — which is why")
	fmt.Println("DAM recovers the point distribution best (Figure 14).")
}

func report(name string, truth, est *grid.Hist2D) {
	w2, err := dpspatial.Wasserstein2Sinkhorn(truth, est)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s W2 = %.4f\n", name, w2)
}
