// Taxiflow: private demand estimation for a ride-hailing service (the
// paper's introduction scenario), run through a real collector service
// the way a production deployment would.
//
// Drivers' pickup locations are sensitive. Each pickup is randomised on
// device — one compact LDP Report per driver — and the reports stream to
// several independent aggregation shards. The shards hold only noisy
// counts (safe for untrusted infrastructure) and ship their aggregates
// over HTTP, in the deterministic DPA2 binary wire format, to a
// long-running collector daemon (internal/collector) that merges them
// associatively — in any arrival order — and serves the decoded
// estimate. The example compares DAM, HUEM, DAM-NS and MDSW over the
// same noisy setting and reports their Wasserstein errors — the smaller,
// the better the dispatch decisions downstream.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

// collectRound plays one collection epoch over the service: every driver
// reports to one of the shards, each shard submits its aggregate to the
// collector over HTTP, and the estimation service's decode is fetched
// back. The fetched histogram is byte-identical to decoding the merged
// shards in process — the collector's first decode is a cold start.
func collectRound(rm dpspatial.ReportingMechanism, dom dpspatial.Domain,
	pts []dpspatial.Point, shards int, seed uint64) (*dpspatial.Histogram, *dpspatial.CollectorStats, error) {
	// One fresh collector per epoch: a long-running daemon would instead
	// keep merging and let the warm-started cadence refreshes absorb new
	// shards (see internal/collector and `damctl serve`).
	coll, err := collector.New(collector.Config{Mechanism: rm})
	if err != nil {
		return nil, nil, err
	}
	srv := httptest.NewServer(coll)
	defer srv.Close()
	client := dpspatial.NewCollectorClient(srv.URL)
	ctx := context.Background()

	// Client stage: every driver encodes one report on device and ships
	// it to one of the shards (round-robin here; any assignment works —
	// aggregation is order-independent).
	aggs := make([]*dpspatial.Aggregate, shards)
	for s := range aggs {
		aggs[s] = rm.NewAggregate()
	}
	r := dpspatial.NewRand(seed)
	for u, p := range pts {
		rep, err := rm.Report(dom.Index(dom.CellOf(p)), r)
		if err != nil {
			return nil, nil, err
		}
		if err := aggs[u%shards].Add(rep); err != nil {
			return nil, nil, err
		}
	}
	// Aggregator stage: each shard ships its noisy counts to the
	// collector, which merges them associatively — a tree, a chain or
	// any interleaving of arrivals produces byte-identical state.
	for _, shard := range aggs {
		if _, err := client.SubmitAggregate(ctx, shard, nil); err != nil {
			return nil, nil, err
		}
	}
	// Estimator stage: the collector decodes the merged counts once and
	// serves the current histogram.
	est, _, err := client.Estimate(ctx)
	if err != nil {
		return nil, nil, err
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		return nil, nil, err
	}
	return est, stats, nil
}

func main() {
	const (
		d      = 12
		eps    = 2.1
		shards = 4 // independent aggregation shards
	)
	ds, err := synth.NYCGreenTaxiLike(rng.New(2016), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	// Use the dense part B (the paper's NYC part with 42k pickups).
	pts := make([]dpspatial.Point, 0)
	for _, p := range ds.Extract(ds.Parts[1]) {
		pts = append(pts, dpspatial.Point{X: p.X, Y: p.Y})
	}
	dom, err := dpspatial.DomainOver(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, pts)
	normTruth := truth.Clone().Normalize()

	fmt.Printf("Private taxi-demand estimation: %d pickups, %d×%d grid, eps=%.1f, %d shards through an HTTP collector\n\n",
		len(pts), d, d, eps, shards)
	fmt.Println("True demand:")
	fmt.Print(normTruth.Render())

	type build func() (dpspatial.Mechanism, error)
	mechanisms := []struct {
		name  string
		build build
	}{
		{"DAM", func() (dpspatial.Mechanism, error) { return dpspatial.NewDAM(dom, eps) }},
		{"DAM-NS", func() (dpspatial.Mechanism, error) { return dpspatial.NewDAMNS(dom, eps) }},
		{"HUEM", func() (dpspatial.Mechanism, error) { return dpspatial.NewHUEM(dom, eps) }},
		{"MDSW", func() (dpspatial.Mechanism, error) { return dpspatial.NewMDSW(dom, eps) }},
	}
	fmt.Printf("\n%-8s %10s\n", "method", "W2 error")
	for _, m := range mechanisms {
		mech, err := m.build()
		if err != nil {
			log.Fatal(err)
		}
		rm, err := dpspatial.AsReporting(mech)
		if err != nil {
			log.Fatal(err)
		}
		// Average a few collection rounds: LDP noise dominates at this n.
		const rounds = 3
		total := 0.0
		for round := uint64(0); round < rounds; round++ {
			est, stats, err := collectRound(rm, dom, pts, shards, 100+round)
			if err != nil {
				log.Fatal(err)
			}
			if stats.AggregateShards != shards || stats.Reports != float64(len(pts)) {
				log.Fatalf("collector merged %d shards / %g reports, expected %d / %d",
					stats.AggregateShards, stats.Reports, shards, len(pts))
			}
			w2, err := dpspatial.Wasserstein2Sinkhorn(normTruth, est)
			if err != nil {
				log.Fatal(err)
			}
			total += w2
		}
		fmt.Printf("%-8s %10.4f\n", m.name, total/rounds)
	}
	fmt.Println("\nLower is better: DAM's disk reporting keeps demand mass near its true")
	fmt.Println("location, so dispatch decisions based on the private map stay sound.")
}
