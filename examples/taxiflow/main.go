// Taxiflow: private demand estimation for a ride-hailing service (the
// paper's introduction scenario), run over the distributed report
// lifecycle the way a production deployment would.
//
// Drivers' pickup locations are sensitive. Each pickup is randomised on
// device — one compact LDP Report per driver — and the reports stream to
// several independent aggregation shards. The shards hold only noisy
// counts (safe for untrusted infrastructure), merge associatively in any
// order, and the merged aggregate is decoded once by the estimation
// service. The example compares DAM, HUEM, DAM-NS and MDSW over the same
// noisy setting and reports their Wasserstein errors — the smaller, the
// better the dispatch decisions downstream.
package main

import (
	"fmt"
	"log"

	"dpspatial"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

func main() {
	const (
		d      = 12
		eps    = 2.1
		shards = 4 // independent aggregation shards
	)
	ds, err := synth.NYCGreenTaxiLike(rng.New(2016), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	// Use the dense part B (the paper's NYC part with 42k pickups).
	pts := make([]dpspatial.Point, 0)
	for _, p := range ds.Extract(ds.Parts[1]) {
		pts = append(pts, dpspatial.Point{X: p.X, Y: p.Y})
	}
	dom, err := dpspatial.DomainOver(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, pts)
	normTruth := truth.Clone().Normalize()

	fmt.Printf("Private taxi-demand estimation: %d pickups, %d×%d grid, eps=%.1f, %d aggregation shards\n\n",
		len(pts), d, d, eps, shards)
	fmt.Println("True demand:")
	fmt.Print(normTruth.Render())

	type build func() (dpspatial.Mechanism, error)
	mechanisms := []struct {
		name  string
		build build
	}{
		{"DAM", func() (dpspatial.Mechanism, error) { return dpspatial.NewDAM(dom, eps) }},
		{"DAM-NS", func() (dpspatial.Mechanism, error) { return dpspatial.NewDAMNS(dom, eps) }},
		{"HUEM", func() (dpspatial.Mechanism, error) { return dpspatial.NewHUEM(dom, eps) }},
		{"MDSW", func() (dpspatial.Mechanism, error) { return dpspatial.NewMDSW(dom, eps) }},
	}
	fmt.Printf("\n%-8s %10s\n", "method", "W2 error")
	for _, m := range mechanisms {
		mech, err := m.build()
		if err != nil {
			log.Fatal(err)
		}
		rm, err := dpspatial.AsReporting(mech)
		if err != nil {
			log.Fatal(err)
		}
		// Average a few collection rounds: LDP noise dominates at this n.
		const rounds = 3
		total := 0.0
		for round := uint64(0); round < rounds; round++ {
			// Client stage: every driver encodes one report on device and
			// ships it to one of the shards (round-robin here; any
			// assignment works — aggregation is order-independent).
			aggs := make([]*dpspatial.Aggregate, shards)
			for s := range aggs {
				aggs[s] = rm.NewAggregate()
			}
			r := dpspatial.NewRand(100 + round)
			for u, p := range pts {
				rep, err := rm.Report(dom.Index(dom.CellOf(p)), r)
				if err != nil {
					log.Fatal(err)
				}
				if err := aggs[u%shards].Add(rep); err != nil {
					log.Fatal(err)
				}
			}
			// Aggregator stage: shards merge pairwise — associative and
			// commutative, so a tree, a chain or a stream all agree.
			merged := aggs[0]
			for _, shard := range aggs[1:] {
				if err := merged.Merge(shard); err != nil {
					log.Fatal(err)
				}
			}
			// Estimator stage: decode the merged noisy counts once.
			est, err := rm.EstimateFromAggregate(merged)
			if err != nil {
				log.Fatal(err)
			}
			w2, err := dpspatial.Wasserstein2Sinkhorn(normTruth, est)
			if err != nil {
				log.Fatal(err)
			}
			total += w2
		}
		fmt.Printf("%-8s %10.4f\n", m.name, total/rounds)
	}
	fmt.Println("\nLower is better: DAM's disk reporting keeps demand mass near its true")
	fmt.Println("location, so dispatch decisions based on the private map stay sound.")
}
