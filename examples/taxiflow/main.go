// Taxiflow: private demand estimation for a ride-hailing service (the
// paper's introduction scenario), run through a real collector fleet
// the way a production deployment would.
//
// Drivers' pickup locations are sensitive. Each pickup is randomised on
// device — one compact LDP Report per driver — and the reports stream to
// several independent aggregation shards. The shards hold only noisy
// counts (safe for untrusted infrastructure) and ship their aggregates
// over HTTP, in the deterministic DPA2 binary wire format, to a fleet
// supervisor (internal/fleet) that routes each submission to one of two
// collector daemons (internal/collector), then hierarchically merges the
// members' aggregates and serves the decoded estimate. The example
// compares DAM, HUEM, DAM-NS and MDSW over the same noisy setting and
// reports their Wasserstein errors — the smaller, the better the
// dispatch decisions downstream.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

// collectRound plays one collection epoch over the fleet: every driver
// reports to one of the shards, each shard submits its aggregate to the
// supervisor over HTTP — which routes it to one of the collector
// members — and the fleet estimate is fetched back. The fetched
// histogram is byte-identical to decoding the merged shards in process:
// the supervisor's first decode hierarchically merges every member's
// aggregate and cold-starts EM, so neither the member count nor the
// routing changes a single bit of the output.
func collectRound(rm dpspatial.ReportingMechanism, mechName string, dom dpspatial.Domain,
	pts []dpspatial.Point, shards, members int, eps float64, seed uint64) (*dpspatial.Histogram, *dpspatial.CollectorStats, error) {
	// One fresh fleet per epoch: a long-running deployment would instead
	// keep merging and let the supervisor's warm-started cadence
	// refreshes absorb new shards (see `damctl supervise`).
	memberURLs := make([]string, members)
	for i := range memberURLs {
		coll, err := collector.New(collector.Config{Mechanism: rm})
		if err != nil {
			return nil, nil, err
		}
		srv := httptest.NewServer(coll)
		defer srv.Close()
		memberURLs[i] = srv.URL
	}
	_, sup, err := dpspatial.NewFleetPipeline(mechName, dom, eps, memberURLs)
	if err != nil {
		return nil, nil, err
	}
	defer sup.Close()
	supSrv := httptest.NewServer(sup)
	defer supSrv.Close()
	client := dpspatial.NewCollectorClient(supSrv.URL)
	ctx := context.Background()

	// Client stage: every driver encodes one report on device and ships
	// it to one of the shards (round-robin here; any assignment works —
	// aggregation is order-independent).
	aggs := make([]*dpspatial.Aggregate, shards)
	for s := range aggs {
		aggs[s] = rm.NewAggregate()
	}
	r := dpspatial.NewRand(seed)
	for u, p := range pts {
		rep, err := rm.Report(dom.Index(dom.CellOf(p)), r)
		if err != nil {
			return nil, nil, err
		}
		if err := aggs[u%shards].Add(rep); err != nil {
			return nil, nil, err
		}
	}
	// Aggregator stage: each shard ships its noisy counts to the
	// supervisor, which routes them across the collector fleet — a
	// tree, a chain or any interleaving of arrivals produces
	// byte-identical merged state.
	for _, shard := range aggs {
		if _, err := client.SubmitAggregate(ctx, shard, nil); err != nil {
			return nil, nil, err
		}
	}
	// Estimator stage: the supervisor pulls each member's aggregate,
	// merges hierarchically, decodes once, and serves the fleet
	// histogram.
	est, _, err := client.Estimate(ctx)
	if err != nil {
		return nil, nil, err
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		return nil, nil, err
	}
	return est, stats, nil
}

func main() {
	const (
		d       = 12
		eps     = 2.1
		shards  = 4 // independent aggregation shards
		members = 2 // collector daemons behind the supervisor
	)
	ds, err := synth.NYCGreenTaxiLike(rng.New(2016), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	// Use the dense part B (the paper's NYC part with 42k pickups).
	pts := make([]dpspatial.Point, 0)
	for _, p := range ds.Extract(ds.Parts[1]) {
		pts = append(pts, dpspatial.Point{X: p.X, Y: p.Y})
	}
	dom, err := dpspatial.DomainOver(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, pts)
	normTruth := truth.Clone().Normalize()

	fmt.Printf("Private taxi-demand estimation: %d pickups, %d×%d grid, eps=%.1f, %d shards through a %d-collector fleet\n\n",
		len(pts), d, d, eps, shards, members)
	fmt.Println("True demand:")
	fmt.Print(normTruth.Render())

	mechanisms := []struct {
		name string
	}{
		{"DAM"}, {"DAM-NS"}, {"HUEM"}, {"MDSW"},
	}
	fmt.Printf("\n%-8s %10s\n", "method", "W2 error")
	for _, m := range mechanisms {
		mech, err := dpspatial.NewMechanism(m.name, dom, eps)
		if err != nil {
			log.Fatal(err)
		}
		rm, err := dpspatial.AsReporting(mech)
		if err != nil {
			log.Fatal(err)
		}
		// Average a few collection rounds: LDP noise dominates at this n.
		const rounds = 3
		total := 0.0
		for round := uint64(0); round < rounds; round++ {
			est, stats, err := collectRound(rm, m.name, dom, pts, shards, members, eps, 100+round)
			if err != nil {
				log.Fatal(err)
			}
			if stats.Generation != shards || stats.Reports != float64(len(pts)) {
				log.Fatalf("fleet routed %d shards / %g reports, expected %d / %d",
					stats.Generation, stats.Reports, shards, len(pts))
			}
			w2, err := dpspatial.Wasserstein2Sinkhorn(normTruth, est)
			if err != nil {
				log.Fatal(err)
			}
			total += w2
		}
		fmt.Printf("%-8s %10.4f\n", m.name, total/rounds)
	}
	fmt.Println("\nLower is better: DAM's disk reporting keeps demand mass near its true")
	fmt.Println("location, so dispatch decisions based on the private map stay sound.")
}
