// Taxiflow: private demand estimation for a ride-hailing service (the
// paper's introduction scenario), comparing the mechanisms head to head.
//
// Drivers' pickup locations are sensitive. Each pickup is randomised on
// device; the platform estimates the demand distribution to position
// supply. The example runs DAM, HUEM, DAM-NS and MDSW over the same noisy
// setting and reports their Wasserstein errors — the smaller, the better
// the dispatch decisions downstream.
package main

import (
	"fmt"
	"log"

	"dpspatial"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

func main() {
	const (
		d   = 12
		eps = 2.1
	)
	ds, err := synth.NYCGreenTaxiLike(rng.New(2016), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	// Use the dense part B (the paper's NYC part with 42k pickups).
	pts := make([]dpspatial.Point, 0)
	for _, p := range ds.Extract(ds.Parts[1]) {
		pts = append(pts, dpspatial.Point{X: p.X, Y: p.Y})
	}
	dom, err := dpspatial.DomainOver(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, pts)
	normTruth := truth.Clone().Normalize()

	fmt.Printf("Private taxi-demand estimation: %d pickups, %d×%d grid, eps=%.1f\n\n",
		len(pts), d, d, eps)
	fmt.Println("True demand:")
	fmt.Print(normTruth.Render())

	type build func() (dpspatial.Mechanism, error)
	mechanisms := []struct {
		name  string
		build build
	}{
		{"DAM", func() (dpspatial.Mechanism, error) { return dpspatial.NewDAM(dom, eps) }},
		{"DAM-NS", func() (dpspatial.Mechanism, error) { return dpspatial.NewDAMNS(dom, eps) }},
		{"HUEM", func() (dpspatial.Mechanism, error) { return dpspatial.NewHUEM(dom, eps) }},
		{"MDSW", func() (dpspatial.Mechanism, error) { return dpspatial.NewMDSW(dom, eps) }},
	}
	fmt.Printf("\n%-8s %10s\n", "method", "W2 error")
	for _, m := range mechanisms {
		mech, err := m.build()
		if err != nil {
			log.Fatal(err)
		}
		// Average a few collection rounds: LDP noise dominates at this n.
		const rounds = 3
		total := 0.0
		for round := uint64(0); round < rounds; round++ {
			est, err := mech.EstimateHist(truth, dpspatial.NewRand(100+round))
			if err != nil {
				log.Fatal(err)
			}
			w2, err := dpspatial.Wasserstein2Sinkhorn(normTruth, est)
			if err != nil {
				log.Fatal(err)
			}
			total += w2
		}
		fmt.Printf("%-8s %10.4f\n", m.name, total/rounds)
	}
	fmt.Println("\nLower is better: DAM's disk reporting keeps demand mass near its true")
	fmt.Println("location, so dispatch decisions based on the private map stay sound.")
}
