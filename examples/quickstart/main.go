// Quickstart: estimate a spatial distribution under ε-LDP in three calls.
//
// A service has user locations it is not allowed to collect in the clear.
// Each (simulated) user randomises their own grid cell with the Disk Area
// Mechanism; the analyst recovers the density map from the noisy reports
// and never sees a raw location.
package main

import (
	"fmt"
	"log"

	"dpspatial"
)

func main() {
	// Simulated sensitive data: 40k users around two hot spots.
	r := dpspatial.NewRand(11)
	points := make([]dpspatial.Point, 0, 40000)
	for i := 0; i < 30000; i++ {
		points = append(points, dpspatial.Point{
			X: 2 + 0.5*r.NormFloat64(),
			Y: 2 + 0.5*r.NormFloat64(),
		})
	}
	for i := 0; i < 10000; i++ {
		points = append(points, dpspatial.Point{
			X: 7 + 0.3*r.NormFloat64(),
			Y: 6 + 0.3*r.NormFloat64(),
		})
	}

	// One call: fit a 12×12 grid, perturb every user's cell under 2.1-LDP
	// with DAM, and EM-decode the noisy counts.
	est, err := dpspatial.Estimate(points, 12, 2.1, dpspatial.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Privately estimated density (darker = more users):")
	fmt.Print(est.Render())

	// How close did we get? Compare against the (non-private) truth.
	dom := est.Dom
	truth := dpspatial.HistFromPoints(dom, points).Normalize()
	w2, err := dpspatial.Wasserstein2Sinkhorn(truth, est)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nW2 distance to the true distribution: %.4f cell units\n", w2)
	fmt.Println("(each user's report satisfied 2.1-LDP; the analyst never saw a raw location)")
}
