// Crimemap: the paper's motivating scenario (Example 1) — estimate a
// city's shooting/crime density from locally randomised incident
// locations, then find the hot spots.
//
// The police hold incident locations they cannot release. Each incident
// is reported through DAM under ε-LDP; the analyst recovers the density
// per extraction part (the paper's A/B/C squares) and ranks hot-spot
// cells. Because DAM preserves the spatial ordinal relationship, nearby
// cells absorb each other's noise instead of scattering it city-wide.
package main

import (
	"fmt"
	"log"
	"sort"

	"dpspatial"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

func main() {
	const (
		d   = 15
		eps = 3.5
	)
	// Offline stand-in for the Chicago Crime 2022 extract (see DESIGN.md).
	ds, err := synth.ChicagoCrimeLike(rng.New(2022), 0.1)
	if err != nil {
		log.Fatal(err)
	}

	for _, part := range ds.Parts {
		pts := make([]dpspatial.Point, 0)
		for _, p := range ds.Extract(part) {
			pts = append(pts, dpspatial.Point{X: p.X, Y: p.Y})
		}
		dom, err := dpspatial.DomainOver(pts, d)
		if err != nil {
			log.Fatal(err)
		}
		truth := dpspatial.HistFromPoints(dom, pts)
		mech, err := dpspatial.NewDAM(dom, eps)
		if err != nil {
			log.Fatal(err)
		}
		est, err := mech.EstimateHist(truth, dpspatial.NewRand(7))
		if err != nil {
			log.Fatal(err)
		}
		w2, err := dpspatial.Wasserstein2Sinkhorn(truth.Clone().Normalize(), est)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== Part %s: %d incidents, %d×%d grid, eps=%.1f ==\n",
			part.Name, len(pts), d, d, eps)
		fmt.Printf("W2(true, private estimate) = %.4f cell units\n", w2)
		fmt.Println("Top 5 private hot-spot cells (probability):")
		type hot struct {
			cell dpspatial.Cell
			p    float64
		}
		hots := make([]hot, 0, len(est.Mass))
		for i, m := range est.Mass {
			hots = append(hots, hot{cell: est.Dom.CellAt(i), p: m})
		}
		sort.Slice(hots, func(i, j int) bool { return hots[i].p > hots[j].p })
		for _, h := range hots[:5] {
			truthRank := truth.At(h.cell) / truth.Total()
			fmt.Printf("  cell (%2d,%2d): est %.4f (true %.4f)\n",
				h.cell.X, h.cell.Y, h.p, truthRank)
		}
		fmt.Println()
	}
}
