// Rangequery: private range counting over a spatial distribution — the
// composition the paper points at in Section II (DAM + hierarchical
// range-query methods).
//
// An analyst wants "how many users are in this rectangle?" for arbitrary
// rectangles, under LDP. The example compares three routes: answering
// over the DAM-estimated density, over an AHEAD-style noisy hierarchy,
// and over a flat categorical (CFO) estimate.
package main

import (
	"fmt"
	"log"

	"dpspatial"
	"dpspatial/internal/baselines"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

func main() {
	const (
		d   = 12
		eps = 2.0
	)
	pts, err := synth.City(rng.New(7), synth.CityConfig{
		N: 50000, Streets: 10, Hotspots: 6, StreetFrac: 0.7, Jitter: 0.004, HotSigma: 0.025,
	})
	if err != nil {
		log.Fatal(err)
	}
	dom, err := dpspatial.DomainOver(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, pts)
	normTruth := truth.Clone().Normalize()

	// Route 1: DAM density estimate, then sum cells.
	dam, err := dpspatial.NewDAM(dom, eps)
	if err != nil {
		log.Fatal(err)
	}
	damEst, err := dam.EstimateHist(truth, dpspatial.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}

	// Route 2: AHEAD hierarchy (answers big rectangles via few nodes).
	ahead, err := rangequery.NewAHEAD(dom, eps)
	if err != nil {
		log.Fatal(err)
	}
	aheadEst, err := ahead.EstimateHist(truth, rng.New(2))
	if err != nil {
		log.Fatal(err)
	}

	// Route 3: flat categorical oracle.
	cfo, err := baselines.NewCFO(dom, eps)
	if err != nil {
		log.Fatal(err)
	}
	cfoEst, err := cfo.EstimateHist(truth, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}

	workload, err := rangequery.RandomWorkload(d, 300, rng.New(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Private range counting: %d users, %d×%d grid, eps=%.1f, %d queries\n\n",
		len(pts), d, d, eps, len(workload))
	fmt.Printf("%-8s %14s\n", "route", "range MSE")
	for _, route := range []struct {
		name string
		est  *dpspatial.Histogram
	}{
		{"DAM", damEst},
		{"AHEAD", aheadEst},
		{"CFO", cfoEst},
	} {
		mse, err := rangequery.MSE(normTruth, route.est, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %14.6f\n", route.name, mse)
	}

	// Show one concrete query.
	q := rangequery.Query{X0: 2, Y0: 2, X1: 8, Y1: 8}
	want, err := rangequery.Answer(normTruth, q)
	if err != nil {
		log.Fatal(err)
	}
	got, err := rangequery.Answer(damEst, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExample query [%d..%d]×[%d..%d]: true share %.3f, DAM answer %.3f\n",
		q.X0, q.X1, q.Y0, q.Y1, want, got)
}
