// Rangequery: private range counting over a spatial distribution — the
// composition the paper points at in Section II (DAM + hierarchical
// range-query methods) — run end to end through the report lifecycle.
//
// An analyst wants "how many users are in this rectangle?" for arbitrary
// rectangles, under LDP. Every user encodes one report on device; the
// reports stream in shards over HTTP loopback to an in-process collector
// daemon (internal/collector), exactly like `damctl report | damctl
// submit` against `damctl serve`. The example compares three routes —
// the DAM-estimated density, an AHEAD-style noisy hierarchy, and a flat
// categorical (CFO) estimate — and then answers concrete queries live
// from the collectors' GET /v1/query endpoint, checking every served
// answer against the in-process reference.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"dpspatial"
	"dpspatial/internal/collector"
	"dpspatial/internal/fo"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

// reportShards is how many report-shard submissions each mechanism's
// stream is split across — aggregation is order-independent, so any
// sharding produces the identical merged state.
const reportShards = 4

// streamEstimate replays the monolithic pipeline's report stream — one
// report per user, in the same cell-major order and from the same seeded
// stream EstimateHist consumes — through a loopback HTTP collector, and
// returns the estimate the collector serves plus a live client for
// follow-up /v1/query calls. The caller owns closeFn.
func streamEstimate(rm dpspatial.ReportingMechanism, truth *dpspatial.Histogram, seed uint64) (
	est *dpspatial.Histogram, client *collector.Client, closeFn func(), err error) {
	coll, err := collector.New(collector.Config{Mechanism: rm})
	if err != nil {
		return nil, nil, nil, err
	}
	srv := httptest.NewServer(coll)
	defer func() {
		if err != nil {
			srv.Close()
		}
	}()
	client = collector.NewClient(srv.URL)

	// Client stage: every user reports once; shards fill round-robin
	// like `damctl report --shards`.
	shards := make([][]fo.Report, reportShards)
	r := rng.New(seed)
	user := 0
	for i, c := range truth.Mass {
		for k := 0; k < int(c); k++ {
			rep, rerr := rm.Report(i, r)
			if rerr != nil {
				return nil, nil, nil, rerr
			}
			shards[user%reportShards] = append(shards[user%reportShards], rep)
			user++
		}
	}
	ctx := context.Background()
	for _, shard := range shards {
		if _, err = client.SubmitReports(ctx, nil, shard); err != nil {
			return nil, nil, nil, err
		}
	}
	est, _, err = client.Estimate(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	return est, client, srv.Close, nil
}

// mustMatch asserts the served histogram is byte-identical to the
// monolithic EstimateHist output — the lifecycle refactor's contract.
func mustMatch(name string, served, monolithic *dpspatial.Histogram) {
	if len(served.Mass) != len(monolithic.Mass) {
		log.Fatalf("%s: served %d cells, monolithic %d", name, len(served.Mass), len(monolithic.Mass))
	}
	for i := range served.Mass {
		if served.Mass[i] != monolithic.Mass[i] {
			log.Fatalf("%s: served estimate diverges from the monolithic path at cell %d: %g != %g",
				name, i, served.Mass[i], monolithic.Mass[i])
		}
	}
}

func main() {
	const (
		d   = 12
		eps = 2.0
	)
	pts, err := synth.City(rng.New(7), synth.CityConfig{
		N: 50000, Streets: 10, Hotspots: 6, StreetFrac: 0.7, Jitter: 0.004, HotSigma: 0.025,
	})
	if err != nil {
		log.Fatal(err)
	}
	dom, err := dpspatial.DomainOver(pts, d)
	if err != nil {
		log.Fatal(err)
	}
	truth := dpspatial.HistFromPoints(dom, pts)
	normTruth := truth.Clone().Normalize()
	ctx := context.Background()

	// Each route is one mechanism streamed through its own collector:
	// DAM density, AHEAD hierarchy, flat categorical oracle.
	routes := []struct {
		name string
		seed uint64
	}{
		{"DAM", 1},
		{"AHEAD", 2},
		{"CFO", 3},
	}

	workload, err := rangequery.RandomWorkload(d, 300, rng.New(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Private range counting: %d users, %d×%d grid, eps=%.1f, %d queries, %d report shards per route\n\n",
		len(pts), d, d, eps, len(workload), reportShards)
	fmt.Printf("%-8s %14s\n", "route", "range MSE")

	clients := make(map[string]*collector.Client)
	mechs := make(map[string]dpspatial.ReportingMechanism)
	ests := make(map[string]*dpspatial.Histogram)
	for _, route := range routes {
		mech, err := dpspatial.NewMechanism(route.name, dom, eps)
		if err != nil {
			log.Fatal(err)
		}
		rm, err := dpspatial.AsReporting(mech)
		if err != nil {
			log.Fatal(err)
		}
		est, client, closeFn, err := streamEstimate(rm, truth, route.seed)
		if err != nil {
			log.Fatal(err)
		}
		defer closeFn()

		// The served estimate must reproduce the in-process pipeline
		// bit for bit: same seed, same cell-major stream, same decode.
		monolithic, err := rm.EstimateHist(truth, rng.New(route.seed))
		if err != nil {
			log.Fatal(err)
		}
		mustMatch(route.name, est, monolithic)

		mse, err := rangequery.MSE(normTruth, est, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %14.6f\n", route.name, mse)
		clients[route.name] = client
		mechs[route.name] = rm
		ests[route.name] = est
	}

	// Answer one concrete rectangle live from each collector's
	// /v1/query endpoint. DAM answers over its histogram; AHEAD answers
	// over the noisy quadtree (count units — few nodes cover a big
	// rectangle), which we check against decoding the same aggregate in
	// process.
	q := rangequery.Query{X0: 2, Y0: 2, X1: 8, Y1: 8}
	want, err := rangequery.Answer(normTruth, q)
	if err != nil {
		log.Fatal(err)
	}
	damResp, err := clients["DAM"].QueryRange(ctx, q.X0, q.Y0, q.X1, q.Y1)
	if err != nil {
		log.Fatal(err)
	}
	if ref, err := rangequery.Answer(ests["DAM"], q); err != nil {
		log.Fatal(err)
	} else if damResp.Range.Value != ref {
		log.Fatalf("DAM /v1/query answered %g, in-process reference %g", damResp.Range.Value, ref)
	}
	fmt.Printf("\nExample query [%d..%d]×[%d..%d]: true share %.3f, DAM /v1/query (%s basis) %.3f\n",
		q.X0, q.X1, q.Y0, q.Y1, want, damResp.Basis, damResp.Range.Value)

	aheadResp, err := clients["AHEAD"].QueryRange(ctx, q.X0, q.Y0, q.X1, q.Y1)
	if err != nil {
		log.Fatal(err)
	}
	localAgg, err := dpspatial.NewAggregateFor(mechs["AHEAD"])
	if err != nil {
		log.Fatal(err)
	}
	if err := dpspatial.AccumulateHist(mechs["AHEAD"], localAgg, truth, rng.New(2)); err != nil {
		log.Fatal(err)
	}
	localResp, err := collector.AnswerQueryFromAggregate(mechs["AHEAD"], localAgg, collector.QueryRequest{
		Type: collector.QueryTypeRange, Range: q,
	})
	if err != nil {
		log.Fatal(err)
	}
	if aheadResp.Basis != collector.QueryBasisTree || aheadResp.Range.Value != localResp.Range.Value {
		log.Fatalf("AHEAD /v1/query answered %g over %q, in-process tree decode %g",
			aheadResp.Range.Value, aheadResp.Basis, localResp.Range.Value)
	}
	fmt.Printf("AHEAD answers the same rectangle over its %s basis: %.1f of %d users (true %d)\n",
		aheadResp.Basis, aheadResp.Range.Value, len(pts), int(want*float64(len(pts))))

	// Top-k heavy hitters straight from the DAM collector.
	top, err := clients["DAM"].QueryTopK(ctx, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDAM /v1/query top-3 cells:")
	for _, c := range top.TopK.Cells {
		fmt.Printf("  (%2d,%2d) share %.3f\n", c.X, c.Y, c.Mass)
	}
	fmt.Println("\nEvery served answer above was checked byte-for-byte against the")
	fmt.Println("monolithic in-process pipeline on the same report stream.")
}
