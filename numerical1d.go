package dpspatial

import (
	"fmt"

	"dpspatial/internal/mdsw"
	"dpspatial/internal/transport"
)

// Estimate1D estimates the distribution of one-dimensional numerical data
// under ε-LDP with the Square Wave mechanism and EM-Smoothing decoding
// (Li et al., SIGMOD 2020) — the 1-D building block MDSW extends and the
// paper's DAM generalises to the plane. Values are bucketised into d
// equal buckets over [min, max]; the returned slice is the estimated
// probability per bucket.
func Estimate1D(values []float64, min, max float64, d int, eps float64, seed uint64) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("dpspatial: no values")
	}
	if max <= min {
		return nil, fmt.Errorf("dpspatial: invalid range [%v, %v]", min, max)
	}
	if d < 1 {
		return nil, fmt.Errorf("dpspatial: invalid bucket count %d", d)
	}
	sw, err := mdsw.NewSW(d, eps)
	if err != nil {
		return nil, err
	}
	r := NewRand(seed)
	counts := make([]float64, sw.NumOutputs())
	width := (max - min) / float64(d)
	for _, v := range values {
		bucket := int((v - min) / width)
		if bucket < 0 {
			bucket = 0
		}
		if bucket >= d {
			bucket = d - 1
		}
		counts[sw.Perturb(bucket, r)]++
	}
	return sw.Estimate(counts)
}

// Wasserstein1D returns Wₚᵖ between two discrete 1-D distributions given
// as per-bucket masses over the same integer bucket positions (quantile
// coupling, exact for convex costs).
func Wasserstein1D(a, b []float64, p float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dpspatial: length mismatch %d vs %d", len(a), len(b))
	}
	return transport.W1D(transport.Marginal1D(a), transport.Marginal1D(b), p)
}
