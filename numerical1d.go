package dpspatial

import (
	"fmt"

	"dpspatial/internal/mdsw"
	"dpspatial/internal/transport"
)

// Estimate1D estimates the distribution of one-dimensional numerical data
// under ε-LDP with the Square Wave mechanism and EM-Smoothing decoding
// (Li et al., SIGMOD 2020) — the 1-D building block MDSW extends and the
// paper's DAM generalises to the plane. Values are bucketised into d
// equal buckets over [min, max]; the returned slice is the estimated
// probability per bucket.
//
// It runs the same client / aggregator / estimator lifecycle as the 2-D
// mechanisms: each value becomes one LDP Report accumulated into an
// Aggregate, which EM then decodes. For sharded collection build the SW
// reporter yourself via NewSW1D, merge per-shard aggregates, and decode
// once with Estimate1DFromAggregate; this one-call form (one process,
// one shard) consumes the historical RNG stream exactly, so the noisy
// counts are byte-identical across releases (the EM decode itself runs
// on the structured channel, whose re-associated float sums agree with
// the historical dense decode to ~1e-9, not bitwise).
func Estimate1D(values []float64, min, max float64, d int, eps float64, seed uint64) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("dpspatial: no values")
	}
	if max <= min {
		return nil, fmt.Errorf("dpspatial: invalid range [%v, %v]", min, max)
	}
	sw, err := NewSW1D(d, eps)
	if err != nil {
		return nil, err
	}
	r := NewRand(seed)
	agg := sw.NewAggregate()
	width := (max - min) / float64(d)
	for _, v := range values {
		bucket := int((v - min) / width)
		if bucket < 0 {
			bucket = 0
		}
		if bucket >= d {
			bucket = d - 1
		}
		rep, err := sw.Report(bucket, r)
		if err != nil {
			return nil, err
		}
		if err := agg.Add(rep); err != nil {
			return nil, err
		}
	}
	return sw.EstimateFromAggregate(agg)
}

// NewSW1D builds the 1-D Square Wave reporter/estimator over d buckets
// with budget eps — the lifecycle-capable building block behind
// Estimate1D. Its Report/NewAggregate/EstimateFromAggregate stages can
// run in separate processes, exactly like the 2-D mechanisms'.
func NewSW1D(d int, eps float64) (*mdsw.SW, error) {
	if d < 1 {
		return nil, fmt.Errorf("dpspatial: invalid bucket count %d", d)
	}
	return mdsw.NewSW(d, eps)
}

// Estimate1DFromAggregate decodes an accumulated (possibly merged) 1-D
// aggregate with the Square Wave EMS estimator — the estimator stage of
// the 1-D lifecycle.
func Estimate1DFromAggregate(sw *mdsw.SW, agg *Aggregate) ([]float64, error) {
	return sw.EstimateFromAggregate(agg)
}

// Wasserstein1D returns Wₚᵖ between two discrete 1-D distributions given
// as per-bucket masses over the same integer bucket positions (quantile
// coupling, exact for convex costs).
func Wasserstein1D(a, b []float64, p float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dpspatial: length mismatch %d vs %d", len(a), len(b))
	}
	return transport.W1D(transport.Marginal1D(a), transport.Marginal1D(b), p)
}
