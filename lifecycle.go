package dpspatial

import (
	"fmt"
	"os"
	"time"

	"dpspatial/internal/collector"
	"dpspatial/internal/em"
	"dpspatial/internal/fleet"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/trace"
)

// This file surfaces the three-stage report lifecycle — client,
// aggregator, estimator — that every mechanism's EstimateHist is built
// on. The stages can run in separate processes: a device encodes one
// Report, any number of aggregation shards Add reports and Merge with
// each other (associative and commutative, so grouping and order don't
// matter), and the estimator decodes the merged Aggregate.

// Report is one user's client-side LDP report — the compact artifact a
// device ships to the aggregation service. Each report satisfies the
// mechanism's local privacy guarantee on its own.
type Report = fo.Report

// Aggregate is a mergeable, serializable accumulation of reports: the
// server side of the lifecycle. Use Add for single reports, Merge to
// combine shards, and MarshalBinary / encoding/json for transport.
type Aggregate = fo.Aggregate

// Reporter is the client layer: Scheme identifies the report format,
// NumInputs / ReportShape describe the domains, and Report encodes one
// user's input cell index into an LDP report.
type Reporter = fo.Reporter

// ReportingMechanism is a Mechanism that exposes the full report
// lifecycle. Every mechanism this package constructs implements it.
type ReportingMechanism interface {
	Mechanism
	Reporter
	// NewAggregate allocates an empty aggregate for this mechanism's
	// reports.
	NewAggregate() *Aggregate
	// EstimateFromAggregate decodes an accumulated aggregate (one shard
	// or a merge of many) into the estimated spatial distribution.
	EstimateFromAggregate(agg *Aggregate) (*Histogram, error)
}

// AsReporting exposes a mechanism's report lifecycle, or an error if the
// mechanism does not support per-report collection.
func AsReporting(m Mechanism) (ReportingMechanism, error) {
	rm, ok := m.(ReportingMechanism)
	if !ok {
		return nil, fmt.Errorf("dpspatial: %T does not expose the report lifecycle", m)
	}
	return rm, nil
}

// NewAggregateFor allocates an empty aggregate for the mechanism's
// reports — shorthand for AsReporting + NewAggregate.
func NewAggregateFor(m Mechanism) (*Aggregate, error) {
	rm, err := AsReporting(m)
	if err != nil {
		return nil, err
	}
	return rm.NewAggregate(), nil
}

// EstimateFromAggregate decodes an accumulated aggregate with the
// mechanism's estimator — shorthand for AsReporting +
// EstimateFromAggregate.
func EstimateFromAggregate(m Mechanism, agg *Aggregate) (*Histogram, error) {
	rm, err := AsReporting(m)
	if err != nil {
		return nil, err
	}
	return rm.EstimateFromAggregate(agg)
}

// EstimateStats reports how an EM decode terminated: the number of
// iterations executed, the final L1 change, and whether the tolerance
// was reached. Incremental pipelines monitor Iterations to see the
// warm-start saving.
type EstimateStats = em.Stats

// EstimateFromAggregateWarm decodes an accumulated aggregate starting EM
// from a previous estimate instead of from scratch — the incremental
// path for streaming pipelines that re-estimate as shards keep merging.
// A nil init is a cold start. Warm-starting from the estimate of the
// pre-merge aggregate converges in measurably fewer iterations than a
// cold start while reaching the same fixed point. Supported by the
// DAM-family mechanisms.
func EstimateFromAggregateWarm(m Mechanism, agg *Aggregate, init *Histogram) (*Histogram, EstimateStats, error) {
	type warmStarter interface {
		EstimateFromAggregateWarm(agg *fo.Aggregate, init *grid.Hist2D) (*grid.Hist2D, em.Stats, error)
	}
	ws, ok := m.(warmStarter)
	if !ok {
		return nil, EstimateStats{}, fmt.Errorf("dpspatial: %T does not support warm-started estimation", m)
	}
	return ws.EstimateFromAggregateWarm(agg, init)
}

// AccumulateHist reports every user of a true count histogram through
// the mechanism's client layer into agg, sequentially on r's stream —
// the in-process stand-in for a fleet of devices reporting to one shard.
func AccumulateHist(m Mechanism, agg *Aggregate, truth *Histogram, r *Rand) error {
	rm, err := AsReporting(m)
	if err != nil {
		return err
	}
	if truth.Dom.NumCells() != rm.NumInputs() {
		return fmt.Errorf("dpspatial: histogram has %d cells, mechanism expects %d",
			truth.Dom.NumCells(), rm.NumInputs())
	}
	return fo.Accumulate(rm, agg, truth.Mass, r)
}

// --- Collector service client ---
//
// internal/collector wraps the aggregator and estimator stages in a
// long-running HTTP daemon (`damctl serve`): shards POST reports and
// DPA-encoded aggregates, the daemon merges them associatively and keeps
// a current estimate via warm-started EM on a merge cadence. These
// aliases are the client side of that service.

// CollectorClient submits report and aggregate shards to a collector
// daemon over HTTP and fetches the merged estimate, aggregate and stats.
type CollectorClient = collector.Client

// NewCollectorClient returns a client for the collector daemon at
// baseURL (e.g. "http://127.0.0.1:8080").
func NewCollectorClient(baseURL string) *CollectorClient {
	return collector.NewClient(baseURL)
}

// CollectorStats are the counters GET /v1/stats serves: shards merged,
// decodes run, the EM iterations saved by warm-started refreshes, and —
// on a collector running with a durable data directory — the
// snapshot/WAL durability block (records replayed at recovery, snapshot
// age, recovery duration).
type CollectorStats = collector.Stats

// CollectorPipeline is the pipeline metadata a collector needs to adopt
// a mechanism from a submission: mechanism name, grid, budget and report
// scheme — the same header line the CLI report/aggregate files carry.
type CollectorPipeline = collector.Pipeline

// NewCollectorPipeline describes the named mechanism's report pipeline
// over the domain — the metadata a client attaches to shard submissions
// so a collector started without a mechanism can adopt one — and
// returns the mechanism it describes, so callers that go on to report
// or serve with it need not rebuild it. SEM-Geo-I records its
// calibrated Geo-I budget so the collector rebuilds without re-running
// the calibration bisection.
func NewCollectorPipeline(mechName string, dom Domain, eps float64) (*CollectorPipeline, ReportingMechanism, error) {
	p := &CollectorPipeline{
		Mech: mechName,
		D:    dom.D,
		Eps:  eps,
		Domain: collector.DomainSpec{
			MinX: dom.MinX, MinY: dom.MinY, Side: dom.Side,
		},
	}
	if mechName == "SEM-Geo-I" {
		// Memoized, so NewMechanism's own calibration below reuses it.
		epsGeo, err := CalibrateSEMGeoI(dom, eps)
		if err != nil {
			return nil, nil, err
		}
		p.EpsGeo = epsGeo
	}
	m, err := NewMechanism(mechName, dom, eps)
	if err != nil {
		return nil, nil, err
	}
	rm, err := AsReporting(m)
	if err != nil {
		return nil, nil, err
	}
	p.Scheme = rm.Scheme()
	p.Shape = rm.ReportShape()
	return p, rm, nil
}

// NewMechanismFromPipeline rebuilds the estimator a pipeline header
// describes and verifies it agrees with the recorded report scheme —
// the adoption hook collectors and fleet supervisors run on a first
// submission. SEM-Geo-I's recorded Geo-I budget is reused, so the
// rebuild never re-runs the calibration bisection.
func NewMechanismFromPipeline(p *CollectorPipeline) (ReportingMechanism, error) {
	dom, err := p.GridDomain()
	if err != nil {
		return nil, err
	}
	var mech Mechanism
	if p.Mech == "SEM-Geo-I" && p.EpsGeo > 0 {
		mech, err = NewSEMGeoI(dom, p.EpsGeo)
	} else {
		mech, err = NewMechanism(p.Mech, dom, p.Eps)
	}
	if err != nil {
		return nil, err
	}
	rm, err := AsReporting(mech)
	if err != nil {
		return nil, err
	}
	if rm.Scheme() != p.Scheme {
		return nil, fmt.Errorf("dpspatial: rebuilt mechanism scheme %q does not match pipeline scheme %q", rm.Scheme(), p.Scheme)
	}
	return rm, nil
}

// --- Fleet supervisor ---
//
// internal/fleet is the tier above the collector service: a supervisor
// daemon (`damctl supervise`) fronting N collectors, routing submissions
// across the fleet and serving the estimate decoded from the
// hierarchical merge of every member's aggregate. It speaks the
// collector wire protocol, so CollectorClient (and `damctl submit` /
// `estimate --from-url`) point at a supervisor transparently.

// FleetSupervisor routes shard submissions across a fleet of collector
// daemons and serves the hierarchically merged fleet estimate. It is an
// http.Handler; call Start/Close around the serving lifetime to run the
// health-probe + merge cadence loop.
type FleetSupervisor = fleet.Supervisor

// FleetStats are the counters the supervisor's GET /v1/stats serves:
// routed submissions, failovers, per-member health, and the EM
// iterations saved by warm-started fleet refreshes.
type FleetStats = fleet.Stats

// FleetMemberStats is one member's entry in FleetStats.
type FleetMemberStats = fleet.MemberStats

// FleetOption adjusts a fleet supervisor's configuration.
type FleetOption func(*fleet.Config)

// WithFleetPolicy picks the routing policy: "round-robin" (default) or
// "hash" (consistent hash of the submission body over a virtual-node
// ring). The fleet estimate is byte-identical under either.
func WithFleetPolicy(policy string) FleetOption {
	return func(c *fleet.Config) { c.Policy = policy }
}

// WithFleetCadence sets the background health-probe and merge +
// warm-re-estimate period (0 = pull only on demand).
func WithFleetCadence(d time.Duration) FleetOption {
	return func(c *fleet.Config) { c.Cadence = d }
}

// WithFleetAuthToken sets the fleet's shared bearer-token secret: the
// supervisor requires it on its own endpoints and presents it to
// members started with the same --auth-token.
func WithFleetAuthToken(token string) FleetOption {
	return func(c *fleet.Config) { c.AuthToken = token }
}

// WithFleetMetrics gates the supervisor's GET /metrics exposition
// endpoint (enabled by default). Disabling only unroutes the endpoint;
// the supervisor keeps accounting internally either way.
func WithFleetMetrics(enabled bool) FleetOption {
	return func(c *fleet.Config) { c.DisableMetrics = !enabled }
}

// WithFleetTracing gates the supervisor's in-memory request tracing and
// its GET /v1/traces surface (enabled by default). Disabling removes
// the endpoint and skips span recording entirely; requests then carry
// no X-Dpspatial-Trace-Id response header from this tier, though
// traceparent propagation to members still happens via the client.
func WithFleetTracing(enabled bool) FleetOption {
	return func(c *fleet.Config) { c.DisableTraces = !enabled }
}

// WithFleetTraceBuffer sets how many completed traces the supervisor
// retains in memory for GET /v1/traces (0 or negative = the default
// capacity). The buffer is a ring: new traces evict the oldest.
func WithFleetTraceBuffer(capacity int) FleetOption {
	return func(c *fleet.Config) { c.TraceCapacity = capacity }
}

// WithFleetSlowLog enables structured slow-request logging on the
// supervisor: every request taking at least threshold emits one line to
// stderr carrying the method, path, status, duration and trace ID — the
// join key into GET /v1/traces. A zero threshold logs every request; a
// negative threshold disables the log. jsonFormat selects one-line JSON
// objects over the plain-text format.
func WithFleetSlowLog(threshold time.Duration, jsonFormat bool) FleetOption {
	return func(c *fleet.Config) {
		if threshold < 0 {
			c.SlowLog = nil
			return
		}
		c.SlowLog = &trace.SlowLogger{W: os.Stderr, Threshold: threshold, JSON: jsonFormat}
	}
}

// WithFleetPprof mounts net/http/pprof's profiling handlers under
// /debug/pprof/ on the supervisor, behind the same bearer token as the
// data endpoints (disabled by default).
func WithFleetPprof(enabled bool) FleetOption {
	return func(c *fleet.Config) { c.EnablePprof = enabled }
}

// NewFleetPipeline builds a supervisor fronting the collectors at
// memberURLs, pre-built around the named mechanism over the domain, and
// returns the fleet-wide pinned pipeline alongside it. The supervisor
// injects the pipeline into forwarded submissions, so members may start
// bare (`damctl serve` with no --mech) and adopt on first contact. The
// fleet estimate is byte-identical to EstimateFromAggregate on the
// union of all submitted shards, for any member count, routing policy
// and arrival interleaving.
func NewFleetPipeline(mechName string, dom Domain, eps float64, memberURLs []string, opts ...FleetOption) (*CollectorPipeline, *FleetSupervisor, error) {
	p, rm, err := NewCollectorPipeline(mechName, dom, eps)
	if err != nil {
		return nil, nil, err
	}
	cfg := fleet.Config{Members: memberURLs, Mechanism: rm, Pipeline: p}
	for _, opt := range opts {
		opt(&cfg)
	}
	sup, err := fleet.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, sup, nil
}

// NewFleetSupervisor builds a supervisor with no pre-built mechanism:
// the fleet adopts its pipeline from the first accepted submission that
// carries pipeline metadata, transactionally — a rejected submission
// can never lock the fleet.
func NewFleetSupervisor(memberURLs []string, opts ...FleetOption) (*FleetSupervisor, error) {
	cfg := fleet.Config{
		Members: memberURLs,
		Build: func(p *collector.Pipeline) (collector.Estimator, error) {
			return NewMechanismFromPipeline(p)
		},
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return fleet.New(cfg)
}
