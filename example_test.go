package dpspatial_test

import (
	"fmt"

	"dpspatial"
)

// ExampleEstimate shows the one-call pipeline: simulate users around a
// hot spot, estimate their distribution under 3.5-LDP, and read off the
// modal cell.
func ExampleEstimate() {
	r := dpspatial.NewRand(5)
	points := make([]dpspatial.Point, 20000)
	for i := range points {
		points[i] = dpspatial.Point{
			X: 3 + 0.4*r.NormFloat64(),
			Y: 7 + 0.4*r.NormFloat64(),
		}
	}
	est, err := dpspatial.Estimate(points, 9, 3.5, dpspatial.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	best := 0
	for i := range est.Mass {
		if est.Mass[i] > est.Mass[best] {
			best = i
		}
	}
	c := est.Dom.CellAt(best)
	fmt.Printf("hottest cell contains the true centre: %v\n",
		c == est.Dom.CellOf(dpspatial.Point{X: 3, Y: 7}))
	// Output:
	// hottest cell contains the true centre: true
}

// ExampleOptimalRadius evaluates the paper's closed-form optimal disk
// radius b̌ at the default setting (ε=3.5, 15-cell domain), which the
// paper reports as ≈3 cells.
func ExampleOptimalRadius() {
	b, err := dpspatial.OptimalRadius(3.5, 15)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("b̌ = %.1f cells\n", b)
	// Output:
	// b̌ = 3.5 cells
}

// ExampleNewDAM drives the mechanism step by step: bucketise, perturb
// every user, decode, and measure the recovery error.
func ExampleNewDAM() {
	dom, err := dpspatial.NewDomain(0, 0, 8, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	truth := dpspatial.HistFromPoints(dom, nil)
	truth.Set(dpspatial.Cell{X: 2, Y: 2}, 30000)
	truth.Set(dpspatial.Cell{X: 6, Y: 5}, 10000)

	mech, err := dpspatial.NewDAM(dom, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	est, err := mech.EstimateHist(truth, dpspatial.NewRand(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	w2, err := dpspatial.Wasserstein2(truth.Clone().Normalize(), est)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("recovered within one cell: %v\n", w2 < 1)
	// Output:
	// recovered within one cell: true
}
