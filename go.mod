module dpspatial

go 1.24
