#!/usr/bin/env sh
# benchjson.sh — convert `go test -bench` text output into the repo's
# BENCH_*.json record shape, so CI runs land as importable records next
# to the hand-written BENCH_pr*.json files (see ROADMAP: the CI bench
# job is the multi-core measurement surface; commit-time records are
# 1-core).
#
# Usage: scripts/benchjson.sh bench.txt [sha]
#
# Writes BENCH_ci_<sha>.json to the current directory and prints the
# path. The env block (goos/goarch/pkg/cpu) comes from the bench.txt
# header lines; gomaxprocs/numcpu come from BenchmarkRunnerInfo's
# custom metrics, which record the parallelism the suite actually ran
# with rather than what the runner advertises.
#
# POSIX sh + awk only: the CI image needs nothing beyond the Go
# toolchain this repo already requires.
set -eu

in=${1:?usage: benchjson.sh bench.txt [sha]}
sha=${2:-${GITHUB_SHA:-local}}
short=$(printf '%s' "$sha" | cut -c1-12)
out="BENCH_ci_${short}.json"
date=$(date -u +%Y-%m-%d)

awk -v sha="$sha" -v date="$date" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
# Header lines: goos: linux / goarch: amd64 / pkg: dpspatial / cpu: ...
/^goos: /   { goos = substr($0, 7); next }
/^goarch: / { goarch = substr($0, 9); next }
/^pkg: /    { pkg = substr($0, 6); next }
/^cpu: /    { cpu = substr($0, 6); next }
/^Benchmark/ {
    # Name, iterations, then (value unit) pairs: ns/op first, custom
    # metrics (ReportMetric) after. Strip the -<procs> suffix go test
    # appends when GOMAXPROCS > 1 so names match the BENCH_pr records.
    name = $1
    sub(/-[0-9]+$/, "", name)
    n++
    names[n] = name
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        key = unit
        if (unit == "ns/op") key = "ns_per_op"
        gsub(/\//, "_per_", key)
        if (line != "") line = line ",\n"
        line = line sprintf("   \"%s\": %s", jesc(key), $i)
        if (name == "BenchmarkRunnerInfo" && unit == "gomaxprocs") gomaxprocs = $i
        if (name == "BenchmarkRunnerInfo" && unit == "numcpu")     numcpu = $i
    }
    metrics[n] = line
    next
}
END {
    if (n == 0) { print "benchjson: no Benchmark lines in input" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf " \"source\": \"ci\",\n"
    printf " \"sha\": \"%s\",\n", jesc(sha)
    printf " \"date\": \"%s\",\n", date
    printf " \"benchtime\": \"1x\",\n"
    printf " \"env\": {\n"
    printf "  \"goos\": \"%s\",\n", jesc(goos)
    printf "  \"goarch\": \"%s\",\n", jesc(goarch)
    printf "  \"pkg\": \"%s\",\n", jesc(pkg)
    printf "  \"cpu\": \"%s\",\n", jesc(cpu)
    printf "  \"gomaxprocs\": %s,\n", (gomaxprocs != "" ? gomaxprocs : "null")
    printf "  \"numcpu\": %s\n",     (numcpu != "" ? numcpu : "null")
    printf " },\n"
    printf " \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        printf "  \"%s\": {\n%s\n  }%s\n", jesc(names[i]), metrics[i], (i < n ? "," : "")
    }
    printf " }\n}\n"
}
' "$in" > "$out"

echo "$out"
