package mdsw

import (
	"fmt"
	"math"

	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// MDSW is the multi-dimensional Square Wave mechanism: the privacy budget
// is split evenly between the two coordinates (sequential composition, so
// the whole report satisfies ε-LDP), each marginal is estimated with
// SW-EMS, and the joint is reconstructed as the product of marginals.
type MDSW struct {
	dom grid.Domain
	eps float64
	swx *SW
	swy *SW
}

// NewMDSW builds the 2-D mechanism over the domain's d×d grid.
func NewMDSW(dom grid.Domain, eps float64) (*MDSW, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("mdsw: invalid epsilon %v", eps)
	}
	swx, err := NewSW(dom.D, eps/2)
	if err != nil {
		return nil, err
	}
	swy, err := NewSW(dom.D, eps/2)
	if err != nil {
		return nil, err
	}
	return &MDSW{dom: dom, eps: eps, swx: swx, swy: swy}, nil
}

// Name returns the mechanism's display name.
func (m *MDSW) Name() string { return "MDSW" }

// Epsilon returns the total budget.
func (m *MDSW) Epsilon() float64 { return m.eps }

// Domain returns the input grid.
func (m *MDSW) Domain() grid.Domain { return m.dom }

// Report is one user's noisy output: a perturbed bucket per dimension.
type Report struct {
	X, Y int
}

// Perturb randomises one user's cell (given as a flat input index).
func (m *MDSW) Perturb(input int, r *rng.RNG) Report {
	c := m.dom.CellAt(input)
	return Report{X: m.swx.Perturb(c.X, r), Y: m.swy.Perturb(c.Y, r)}
}

// EstimateHist runs the full pipeline on a true count histogram: perturb
// every user, estimate both marginals with SW-EMS, and return the product
// joint over the input grid.
func (m *MDSW) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != m.dom.D {
		return nil, fmt.Errorf("mdsw: histogram d=%d, mechanism d=%d", truth.Dom.D, m.dom.D)
	}
	countsX := make([]float64, m.swx.NumOutputs())
	countsY := make([]float64, m.swy.NumOutputs())
	for i, c := range truth.Mass {
		if c < 0 || c != math.Trunc(c) {
			return nil, fmt.Errorf("mdsw: invalid count %v at cell %d", c, i)
		}
		for k := 0; k < int(c); k++ {
			rep := m.Perturb(i, r)
			countsX[rep.X]++
			countsY[rep.Y]++
		}
	}
	fx, err := m.swx.Estimate(countsX)
	if err != nil {
		return nil, err
	}
	fy, err := m.swy.Estimate(countsY)
	if err != nil {
		return nil, err
	}
	est := grid.NewHist(m.dom)
	for y := 0; y < m.dom.D; y++ {
		for x := 0; x < m.dom.D; x++ {
			est.Mass[y*m.dom.D+x] = fx[x] * fy[y]
		}
	}
	return est, nil
}
