package mdsw

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// MDSW is the multi-dimensional Square Wave mechanism: the privacy budget
// is split evenly between the two coordinates (sequential composition, so
// the whole report satisfies ε-LDP), each marginal is estimated with
// SW-EMS, and the joint is reconstructed as the product of marginals.
type MDSW struct {
	dom     grid.Domain
	eps     float64
	swx     *SW
	swy     *SW
	workers int // collection fan-out: 1 = sequential, 0 = GOMAXPROCS
}

// Option configures mechanism construction.
type Option func(*config)

type config struct {
	workers *int
}

// WithWorkers routes EstimateHist's collection step through
// CollectParallel with this many workers (0 = GOMAXPROCS). The default of
// 1 keeps collection sequential on the caller's RNG stream; any other
// value draws per-worker streams, so results are reproducible only for a
// fixed seed and worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = &n }
}

// NewMDSW builds the 2-D mechanism over the domain's d×d grid.
func NewMDSW(dom grid.Domain, eps float64, opts ...Option) (*MDSW, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("mdsw: invalid epsilon %v", eps)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	workers := 1
	if cfg.workers != nil {
		workers = *cfg.workers
		if workers < 0 {
			return nil, fmt.Errorf("mdsw: negative worker count %d", workers)
		}
	}
	swx, err := NewSW(dom.D, eps/2)
	if err != nil {
		return nil, err
	}
	swy, err := NewSW(dom.D, eps/2)
	if err != nil {
		return nil, err
	}
	return &MDSW{dom: dom, eps: eps, swx: swx, swy: swy, workers: workers}, nil
}

// Name returns the mechanism's display name.
func (m *MDSW) Name() string { return "MDSW" }

// Epsilon returns the total budget.
func (m *MDSW) Epsilon() float64 { return m.eps }

// Domain returns the input grid.
func (m *MDSW) Domain() grid.Domain { return m.dom }

// AxisReport is one user's noisy output: a perturbed bucket per
// dimension.
type AxisReport struct {
	X, Y int
}

// Perturb randomises one user's cell (given as a flat input index).
func (m *MDSW) Perturb(input int, r *rng.RNG) AxisReport {
	c := m.dom.CellAt(input)
	return AxisReport{X: m.swx.Perturb(c.X, r), Y: m.swy.Perturb(c.Y, r)}
}

// NumInputs implements fo.Reporter.
func (m *MDSW) NumInputs() int { return m.dom.NumCells() }

// Scheme implements fo.Reporter.
func (m *MDSW) Scheme() string { return fmt.Sprintf("mdsw d=%d eps=%g", m.dom.D, m.eps) }

// ReportShape implements fo.Reporter: two merge-compatible planes, the X
// and Y marginal output buckets of one ε-LDP report.
func (m *MDSW) ReportShape() []int {
	return []int{m.swx.NumOutputs(), m.swy.NumOutputs()}
}

// Report implements fo.Reporter: both axis draws of one user, packaged
// as a two-plane report (same RNG consumption as Perturb, so sequential
// pipelines stay byte-identical).
func (m *MDSW) Report(input int, r *rng.RNG) (fo.Report, error) {
	if input < 0 || input >= m.dom.NumCells() {
		return fo.Report{}, fmt.Errorf("mdsw: input cell %d outside [0, %d)", input, m.dom.NumCells())
	}
	rep := m.Perturb(input, r)
	return fo.Report{Planes: [][]int{{rep.X}, {rep.Y}}}, nil
}

// NewAggregate allocates an empty two-plane aggregate for this
// mechanism's reports.
func (m *MDSW) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(m) }

// CollectParallel perturbs every user with the per-user draws fanned out
// across workers and returns the aggregated per-bucket marginal counts
// (X, Y). Each axis reports only its own coordinate, so the 2-D counts
// reduce to per-axis marginal true counts pushed through the cached
// per-axis alias samplers by fo.CollectParallelAlias — one deterministic
// stream family per (axis, worker), reproducible for a fixed seed and
// worker count, though the streams differ from the sequential
// EstimateHist path. workers ≤ 0 selects GOMAXPROCS.
func (m *MDSW) CollectParallel(trueCounts []float64, seed uint64, workers int) ([]float64, []float64, error) {
	d := m.dom.D
	if len(trueCounts) != m.dom.NumCells() {
		return nil, nil, fmt.Errorf("mdsw: %d true counts for %d cells", len(trueCounts), m.dom.NumCells())
	}
	for i, c := range trueCounts {
		if c < 0 || c != math.Trunc(c) {
			return nil, nil, fmt.Errorf("mdsw: invalid count %v at cell %d", c, i)
		}
	}
	margX := make([]float64, d)
	margY := make([]float64, d)
	for i, c := range trueCounts {
		cell := m.dom.CellAt(i)
		margX[cell.X] += c
		margY[cell.Y] += c
	}
	samplersX, err := m.swx.Samplers()
	if err != nil {
		return nil, nil, err
	}
	samplersY, err := m.swy.Samplers()
	if err != nil {
		return nil, nil, err
	}
	countsX, err := fo.CollectParallelAlias(samplersX, m.swx.NumOutputs(), margX, seed, workers)
	if err != nil {
		return nil, nil, err
	}
	countsY, err := fo.CollectParallelAlias(samplersY, m.swy.NumOutputs(), margY, seed^0xd1b54a32d192ed03, workers)
	if err != nil {
		return nil, nil, err
	}
	return countsX, countsY, nil
}

// EstimateFromAggregate decodes an accumulated two-plane aggregate (one
// shard or a merge of many): estimate both marginals with SW-EMS and
// return the product joint over the input grid.
func (m *MDSW) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	if err := agg.Compatible(m); err != nil {
		return nil, fmt.Errorf("mdsw: %w", err)
	}
	fx, err := m.swx.Estimate(agg.Planes[0])
	if err != nil {
		return nil, err
	}
	fy, err := m.swy.Estimate(agg.Planes[1])
	if err != nil {
		return nil, err
	}
	est := grid.NewHist(m.dom)
	for y := 0; y < m.dom.D; y++ {
		for x := 0; x < m.dom.D; x++ {
			est.Mass[y*m.dom.D+x] = fx[x] * fy[y]
		}
	}
	return est, nil
}

// EstimateHist runs the full report lifecycle on a true count histogram:
// every user's two-axis report accumulates into one aggregate, which is
// then decoded marginal-by-marginal. With WithWorkers ≠ 1 the collection
// step fans out through CollectParallel, seeded from the caller's stream.
func (m *MDSW) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != m.dom.D {
		return nil, fmt.Errorf("mdsw: histogram d=%d, mechanism d=%d", truth.Dom.D, m.dom.D)
	}
	var agg *fo.Aggregate
	if m.workers != 1 {
		countsX, countsY, err := m.CollectParallel(truth.Mass, r.Uint64(), m.workers)
		if err != nil {
			return nil, err
		}
		agg, err = fo.AggregateFromCounts(m.Scheme(), countsX, countsY)
		if err != nil {
			return nil, err
		}
	} else {
		agg = m.NewAggregate()
		if err := fo.Accumulate(m, agg, truth.Mass, r); err != nil {
			return nil, err
		}
	}
	return m.EstimateFromAggregate(agg)
}
