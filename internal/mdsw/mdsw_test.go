package mdsw

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func testDomain(t *testing.T, d int) grid.Domain {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestSWWaveWidthKnownValues(t *testing.T) {
	// ε→0 limit is 1/2; b decreases with ε and tends to 0.
	b, err := SWWaveWidth(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-3 {
		t.Fatalf("small-eps b = %v, want 0.5", b)
	}
	prev := b
	for _, eps := range []float64{0.5, 1, 2, 4, 8} {
		b, err := SWWaveWidth(eps)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Fatalf("b(%v)=%v not decreasing from %v", eps, b, prev)
		}
		prev = b
	}
	if prev > 0.05 {
		t.Fatalf("large-eps b = %v, want near 0", prev)
	}
}

func TestSWWaveWidthErrors(t *testing.T) {
	if _, err := SWWaveWidth(0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := SWWaveWidth(math.Inf(1)); err == nil {
		t.Fatal("eps=Inf accepted")
	}
}

func TestSWChannelRowStochastic(t *testing.T) {
	for _, d := range []int{1, 4, 16} {
		for _, eps := range []float64{0.35, 1.75, 4} {
			s, err := NewSW(d, eps)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Channel().Validate(); err != nil {
				t.Fatalf("d=%d eps=%v: %v", d, eps, err)
			}
		}
	}
}

func TestSWSatisfiesLDP(t *testing.T) {
	for _, d := range []int{4, 10} {
		for _, eps := range []float64{0.35, 1.75, 3} {
			s, err := NewSW(d, eps)
			if err != nil {
				t.Fatal(err)
			}
			ratio := s.Channel().MaxRatio()
			// Bucket-level integration can only average densities, so the
			// worst-case ratio is at most e^ε (plus normalisation slack).
			if ratio > math.Exp(eps)*(1+1e-6) {
				t.Fatalf("d=%d eps=%v: ratio %v > e^ε %v", d, eps, ratio, math.Exp(eps))
			}
		}
	}
}

func TestSWHighProbabilityNearTruth(t *testing.T) {
	s, err := NewSW(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch := s.Channel()
	// Output bucket aligned with the true bucket must outweigh a distant
	// bucket.
	in := 5
	near := ch.At(in, in+s.pad)
	far := ch.At(in, s.pad) // bucket 0
	if near <= far {
		t.Fatalf("near prob %v not above far prob %v", near, far)
	}
}

func TestSWPerturbMatchesChannel(t *testing.T) {
	s, err := NewSW(6, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	const trials = 100000
	counts := make([]float64, s.NumOutputs())
	for i := 0; i < trials; i++ {
		counts[s.Perturb(3, r)]++
	}
	for j := range counts {
		want := s.Channel().At(3, j)
		if math.Abs(counts[j]/trials-want) > 0.01 {
			t.Fatalf("output %d freq %v, want %v", j, counts[j]/trials, want)
		}
	}
}

func TestSWEstimateRecoversDistribution(t *testing.T) {
	s, err := NewSW(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{0.02, 0.08, 0.2, 0.3, 0.2, 0.12, 0.05, 0.03}
	r := rng.New(3)
	counts := make([]float64, s.NumOutputs())
	const n = 200000
	for i := 0; i < n; i++ {
		counts[s.Perturb(rng.WeightedChoice(r, truth), r)]++
	}
	est, err := s.Estimate(counts)
	if err != nil {
		t.Fatal(err)
	}
	// EMS trades a smoothing bias for variance, so allow a modest band.
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.08 {
			t.Fatalf("estimate %v deviates from truth %v", est, truth)
		}
	}
}

func TestNewSWErrors(t *testing.T) {
	if _, err := NewSW(0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewSW(4, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestMDSWEstimateIsProductDistribution(t *testing.T) {
	dom := testDomain(t, 5)
	m, err := NewMDSW(dom, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 1}, 3000)
	truth.Set(geom.Cell{X: 3, Y: 3}, 3000)
	est, err := m.EstimateHist(truth, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Total()-1) > 1e-9 {
		t.Fatalf("estimate total %v", est.Total())
	}
	// A product distribution has rank 1: mass(x,y)·mass(x',y') =
	// mass(x,y')·mass(x',y).
	d := dom.D
	for x := 0; x < d-1; x++ {
		for y := 0; y < d-1; y++ {
			lhs := est.Mass[y*d+x] * est.Mass[(y+1)*d+x+1]
			rhs := est.Mass[y*d+x+1] * est.Mass[(y+1)*d+x]
			if math.Abs(lhs-rhs) > 1e-12 {
				t.Fatalf("estimate is not rank-1 at (%d,%d): %v vs %v", x, y, lhs, rhs)
			}
		}
	}
}

func TestMDSWLosesCorrelationButKeepsMarginals(t *testing.T) {
	// Diagonal truth: MDSW must recover both marginals (≈ uniform along
	// each axis) but cannot recover the diagonal correlation — the defining
	// failure mode the paper exploits.
	dom := testDomain(t, 4)
	m, err := NewMDSW(dom, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	for i := 0; i < 4; i++ {
		truth.Set(geom.Cell{X: i, Y: i}, 20000)
	}
	est, err := m.EstimateHist(truth, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	mx := est.MarginalX()
	for i, v := range mx {
		if math.Abs(v-0.25) > 0.05 {
			t.Fatalf("marginal X[%d] = %v, want ≈0.25", i, v)
		}
	}
	// Diagonal mass of the product estimate ≈ Σ 1/16 per diagonal cell =
	// 0.25, far below the true 1.0.
	diag := 0.0
	for i := 0; i < 4; i++ {
		diag += est.At(geom.Cell{X: i, Y: i})
	}
	if diag > 0.5 {
		t.Fatalf("product estimate kept diagonal correlation: %v", diag)
	}
}

func TestMDSWErrors(t *testing.T) {
	dom := testDomain(t, 3)
	if _, err := NewMDSW(dom, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	m, err := NewMDSW(dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := grid.NewHist(testDomain(t, 4))
	if _, err := m.EstimateHist(other, rng.New(1)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	bad := grid.NewHist(dom)
	bad.Mass[0] = -2
	if _, err := m.EstimateHist(bad, rng.New(1)); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestMDSWPerturbInRange(t *testing.T) {
	dom := testDomain(t, 6)
	m, err := NewMDSW(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for i := 0; i < 1000; i++ {
		rep := m.Perturb(r.Intn(dom.NumCells()), r)
		if rep.X < 0 || rep.X >= m.swx.NumOutputs() || rep.Y < 0 || rep.Y >= m.swy.NumOutputs() {
			t.Fatalf("report %v out of range", rep)
		}
	}
}
