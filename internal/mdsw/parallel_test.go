package mdsw

import (
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func TestCollectParallelConservesUsers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMDSW(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 2}, 1234)
	truth.Set(geom.Cell{X: 4, Y: 4}, 4321)
	for _, workers := range []int{1, 2, 7, 0} {
		countsX, countsY, err := m.CollectParallel(truth.Mass, 9, workers)
		if err != nil {
			t.Fatal(err)
		}
		var totalX, totalY float64
		for _, c := range countsX {
			totalX += c
		}
		for _, c := range countsY {
			totalY += c
		}
		if totalX != 5555 || totalY != 5555 {
			t.Fatalf("workers=%d: collected (%v, %v) marginal reports, want 5555 each", workers, totalX, totalY)
		}
	}
}

func TestCollectParallelDeterministicPerSeedAndWorkers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMDSW(dom, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 2, Y: 2}, 2000)
	ax, ay, err := m.CollectParallel(truth.Mass, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	bx, by, err := m.CollectParallel(truth.Mass, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ax {
		if ax[i] != bx[i] {
			t.Fatal("same seed and worker count diverged on X")
		}
	}
	for i := range ay {
		if ay[i] != by[i] {
			t.Fatal("same seed and worker count diverged on Y")
		}
	}
}

func TestCollectParallelRejectsInvalid(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMDSW(dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.CollectParallel(make([]float64, 2), 1, 2); err == nil {
		t.Fatal("wrong length accepted")
	}
	bad := make([]float64, dom.NumCells())
	bad[0] = -1
	if _, _, err := m.CollectParallel(bad, 1, 2); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestEstimateHistWithWorkers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMDSW(dom, 2, WithWorkers(-1)); err == nil {
		t.Fatal("negative worker count accepted")
	}
	m, err := NewMDSW(dom, 2, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 1}, 3000)
	truth.Set(geom.Cell{X: 4, Y: 2}, 2000)
	a, err := m.EstimateHist(truth, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstimateHist(truth, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range a.Mass {
		if a.Mass[i] != b.Mass[i] {
			t.Fatal("same seed and worker count diverged")
		}
		sum += a.Mass[i]
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("estimate not normalised: total %v", sum)
	}
}
