package mdsw

import (
	"math"
	"testing"

	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// TestSWLinearMatchesDense: the structured Square Wave channel must be
// the dense channel bit for bit.
func TestSWLinearMatchesDense(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 3} {
		s, err := NewSW(16, eps)
		if err != nil {
			t.Fatal(err)
		}
		lin, dense := s.Linear(), s.Channel()
		if lin.NumInputs() != dense.In || lin.NumOutputs() != dense.Out {
			t.Fatalf("eps=%v: dimensions differ", eps)
		}
		for i := 0; i < dense.In; i++ {
			got, want := lin.Row(i), dense.Row(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("eps=%v row %d col %d: %v != %v", eps, i, j, got[j], want[j])
				}
			}
		}
		// The compaction must actually be sparse: the wave window spans
		// ~2b·d buckets, far fewer than the padded output domain for
		// informative budgets.
		if nnz, dense := lin.NNZ(), lin.NumInputs()*lin.NumOutputs(); nnz >= dense {
			t.Fatalf("eps=%v: %d overrides for a %d-entry matrix", eps, nnz, dense)
		}
	}
}

// TestSWReportLifecycleMatchesMonolithic: accumulating per-value reports
// into an aggregate and decoding it must reproduce the historical
// Perturb-and-count pipeline exactly — same RNG stream, same counts,
// same estimate.
func TestSWReportLifecycleMatchesMonolithic(t *testing.T) {
	s, err := NewSW(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, 4000)
	vr := rng.New(3)
	for i := range values {
		values[i] = vr.Intn(10)
	}

	// Historical path: Perturb into a count vector.
	r1 := rng.New(17)
	counts := make([]float64, s.NumOutputs())
	for _, v := range values {
		counts[s.Perturb(v, r1)]++
	}
	wantEst, err := s.Estimate(counts)
	if err != nil {
		t.Fatal(err)
	}

	// Lifecycle path: Report → Aggregate (two shards, merged) → decode.
	r2 := rng.New(17)
	shards := []*fo.Aggregate{s.NewAggregate(), s.NewAggregate()}
	for i, v := range values {
		rep, err := s.Report(v, r2)
		if err != nil {
			t.Fatal(err)
		}
		if err := shards[i%2].Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	merged := shards[0].Clone()
	if err := merged.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	if merged.N != float64(len(values)) {
		t.Fatalf("aggregate N = %v, want %d", merged.N, len(values))
	}
	for j := range counts {
		if merged.Planes[0][j] != counts[j] {
			t.Fatalf("bucket %d: aggregate %v, monolithic %v", j, merged.Planes[0][j], counts[j])
		}
	}
	gotEst, err := s.EstimateFromAggregate(merged)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantEst {
		if math.Abs(gotEst[i]-wantEst[i]) > 1e-15 {
			t.Fatalf("bucket %d: lifecycle estimate %v, monolithic %v", i, gotEst[i], wantEst[i])
		}
	}
}

func TestSWReportRejectsBadInput(t *testing.T) {
	s, err := NewSW(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if _, err := s.Report(-1, r); err == nil {
		t.Fatal("negative bucket accepted")
	}
	if _, err := s.Report(6, r); err == nil {
		t.Fatal("out-of-range bucket accepted")
	}
}

func TestSWEstimateFromAggregateRejectsIncompatible(t *testing.T) {
	a, err := NewSW(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSW(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg := a.NewAggregate()
	rep, err := a.Report(2, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(rep); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EstimateFromAggregate(agg); err == nil {
		t.Fatal("incompatible aggregate accepted")
	}
}
