// Package mdsw implements the Multi-dimensional Square Wave baseline of
// Yang et al. (VLDB 2020), built on the Square Wave mechanism with
// EM-Smoothing estimation of Li et al. (SIGMOD 2020): each spatial
// coordinate is perturbed independently with half the privacy budget and
// the joint distribution is recovered as the product of the per-dimension
// EMS estimates. This is the paper's MDSW comparator — it preserves ordinal
// structure within each axis but loses the cross-dimension correlation,
// which is exactly the weakness DAM addresses.
package mdsw

import (
	"fmt"
	"math"
	"sync"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// SW is the 1-D Square Wave mechanism over a domain discretised into d
// buckets of width 1/d (input domain [0,1]).
//
// A value v reports within distance b with density p = e^ε·q and elsewhere
// in [−b, 1+b] with density q = 1/(2be^ε + 1); the wave width is the
// information-optimal b of Li et al.:
//
//	b = (ε·e^ε − e^ε + 1) / (2e^ε·(e^ε − 1 − ε)).
type SW struct {
	d   int
	eps float64
	b   float64 // wave half-width in [0,1] units
	pad int     // output buckets added on each side
	// linear is the exact bucket channel in uniform-plus-sparse form:
	// each row is the pure-low integral everywhere except the buckets
	// touched by the high-density window or the domain-edge clipping.
	// Estimation runs on it; the dense matrix materialises only on
	// demand.
	linear *fo.UniformSparse

	denseOnce sync.Once
	dense     *fo.Channel

	samplersOnce sync.Once
	samplers     []*rng.Alias
	samplersErr  error
}

// SWWaveWidth returns the optimal half-width b for budget eps.
func SWWaveWidth(eps float64) (float64, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return 0, fmt.Errorf("mdsw: invalid epsilon %v", eps)
	}
	// Written via expm1 to avoid catastrophic cancellation at small ε:
	// numerator ε·e^ε − (e^ε − 1) and denominator term e^ε − 1 − ε are
	// both O(ε²) while e^ε − 1 is O(ε).
	ee := math.Exp(eps)
	em1 := math.Expm1(eps)
	den := 2 * ee * (em1 - eps)
	if den <= 0 {
		// ε underflow below float precision: b → 1/2 in the ε→0 limit.
		return 0.5, nil
	}
	return (eps*ee - em1) / den, nil
}

// NewSW builds a Square Wave oracle over d buckets with budget eps.
func NewSW(d int, eps float64) (*SW, error) {
	if d < 1 {
		return nil, fmt.Errorf("mdsw: invalid bucket count %d", d)
	}
	b, err := SWWaveWidth(eps)
	if err != nil {
		return nil, err
	}
	s := &SW{d: d, eps: eps, b: b}
	s.pad = int(math.Ceil(b * float64(d)))
	if err := s.buildChannel(); err != nil {
		return nil, err
	}
	if err := s.linear.Validate(); err != nil {
		return nil, fmt.Errorf("mdsw: internal channel invalid: %w", err)
	}
	return s, nil
}

// buildChannel integrates the square wave exactly over each output bucket.
// Output bucket j (j = 0..d+2·pad−1) spans
// [(j−pad)/d, (j−pad+1)/d] ⊇ [−b, 1+b]. Each row is computed densely in
// a scratch buffer and compacted to base-plus-overrides, so the stored
// channel is O(d·window) instead of O(d·(d+2·pad)) while materialised
// rows stay bit-identical to the historical dense matrix.
func (s *SW) buildChannel() error {
	ee := math.Exp(s.eps)
	q := 1 / (2*s.b*ee + 1)
	p := ee * q
	nOut := s.d + 2*s.pad
	b := fo.NewUniformSparseBuilder(s.d, nOut)
	row := make([]float64, nOut)
	w := 1 / float64(s.d)
	for i := 0; i < s.d; i++ {
		v := (float64(i) + 0.5) * w // input bucket centre
		lo, hi := v-s.b, v+s.b      // high-density window
		for j := 0; j < nOut; j++ {
			a := float64(j-s.pad) * w
			bEdge := a + w
			// Clip the output bucket to the legal output domain
			// [−b, 1+b]: the edge buckets may extend past it.
			oa, ob := math.Max(a, -s.b), math.Min(bEdge, 1+s.b)
			if ob <= oa {
				row[j] = 0
				continue
			}
			highLen := math.Max(0, math.Min(ob, hi)-math.Max(oa, lo))
			lowLen := (ob - oa) - highLen
			row[j] = p*highLen + q*lowLen
		}
		// Absorb clipping slack (ends of the domain) into exact
		// normalisation.
		sum := 0.0
		for _, x := range row {
			sum += x
		}
		for j := range row {
			row[j] /= sum
		}
		b.CompactRow(row)
	}
	linear, err := b.Build()
	if err != nil {
		return fmt.Errorf("mdsw: %w", err)
	}
	s.linear = linear
	return nil
}

// NumInputs returns d.
func (s *SW) NumInputs() int { return s.d }

// NumOutputs returns the padded output bucket count.
func (s *SW) NumOutputs() int { return s.d + 2*s.pad }

// Epsilon returns the budget.
func (s *SW) Epsilon() float64 { return s.eps }

// WaveWidth returns the continuous half-width b.
func (s *SW) WaveWidth() float64 { return s.b }

// Linear exposes the exact bucket-level channel in its structured
// uniform-plus-sparse form — the representation estimation runs on.
func (s *SW) Linear() *fo.UniformSparse { return s.linear }

// Channel materialises the dense bucket-level channel on first use
// (shared; treat as read-only). Estimation never needs it.
func (s *SW) Channel() *fo.Channel {
	s.denseOnce.Do(func() {
		s.dense = s.linear.Dense()
	})
	return s.dense
}

// Samplers returns the per-input-bucket alias tables, building them once
// on first use. The returned slice is shared; treat it as read-only.
func (s *SW) Samplers() ([]*rng.Alias, error) {
	s.samplersOnce.Do(func() {
		s.samplers, s.samplersErr = s.linear.Samplers()
	})
	return s.samplers, s.samplersErr
}

// Perturb randomises one input bucket into an output bucket. It keeps
// the historical single-uniform WeightedChoice draw over the dense row,
// so every sequential pipeline built on it (MDSW reports, Estimate1D)
// stays byte-identical across releases.
func (s *SW) Perturb(input int, r *rng.RNG) int {
	return rng.WeightedChoice(r, s.Channel().Row(input))
}

// Estimate recovers the input bucket distribution from output counts via
// EM with the 1-D binomial smoothing of Li et al. (the EMS estimator),
// running on the structured channel (whose re-associated float sums
// agree with the historical dense decode to ~1e-9, not bitwise).
func (s *SW) Estimate(counts []float64) ([]float64, error) {
	return em.Estimate(s.linear, counts, &em.Options{Smoothing: em.Smoother1D()})
}

// Scheme implements fo.Reporter: the report format is fixed by the
// bucket count and budget (which determine the wave width and padding).
func (s *SW) Scheme() string {
	return fmt.Sprintf("mdsw/sw d=%d eps=%g", s.d, s.eps)
}

// ReportShape implements fo.Reporter: one plane of padded bucket counts.
func (s *SW) ReportShape() []int { return []int{s.NumOutputs()} }

// Report implements fo.Reporter: encode one user's input bucket into an
// LDP report. It wraps Perturb, so a report loop consumes exactly the
// stream the historical collect-monolithic path did.
func (s *SW) Report(input int, r *rng.RNG) (fo.Report, error) {
	if input < 0 || input >= s.d {
		return fo.Report{}, fmt.Errorf("mdsw: input bucket %d outside [0, %d)", input, s.d)
	}
	return fo.SingleIndexReport(s.Perturb(input, r)), nil
}

// NewAggregate allocates an empty aggregate for this oracle's reports.
func (s *SW) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(s) }

// EstimateFromAggregate decodes an accumulated aggregate (one shard or a
// merge of many) into the estimated bucket distribution — the estimator
// stage of the 1-D report lifecycle.
func (s *SW) EstimateFromAggregate(agg *fo.Aggregate) ([]float64, error) {
	if err := agg.Compatible(s); err != nil {
		return nil, fmt.Errorf("mdsw: %w", err)
	}
	return s.Estimate(agg.Planes[0])
}
