// Package mdsw implements the Multi-dimensional Square Wave baseline of
// Yang et al. (VLDB 2020), built on the Square Wave mechanism with
// EM-Smoothing estimation of Li et al. (SIGMOD 2020): each spatial
// coordinate is perturbed independently with half the privacy budget and
// the joint distribution is recovered as the product of the per-dimension
// EMS estimates. This is the paper's MDSW comparator — it preserves ordinal
// structure within each axis but loses the cross-dimension correlation,
// which is exactly the weakness DAM addresses.
package mdsw

import (
	"fmt"
	"math"
	"sync"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// SW is the 1-D Square Wave mechanism over a domain discretised into d
// buckets of width 1/d (input domain [0,1]).
//
// A value v reports within distance b with density p = e^ε·q and elsewhere
// in [−b, 1+b] with density q = 1/(2be^ε + 1); the wave width is the
// information-optimal b of Li et al.:
//
//	b = (ε·e^ε − e^ε + 1) / (2e^ε·(e^ε − 1 − ε)).
type SW struct {
	d       int
	eps     float64
	b       float64 // wave half-width in [0,1] units
	pad     int     // output buckets added on each side
	channel *fo.Channel

	samplersOnce sync.Once
	samplers     []*rng.Alias
	samplersErr  error
}

// SWWaveWidth returns the optimal half-width b for budget eps.
func SWWaveWidth(eps float64) (float64, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return 0, fmt.Errorf("mdsw: invalid epsilon %v", eps)
	}
	// Written via expm1 to avoid catastrophic cancellation at small ε:
	// numerator ε·e^ε − (e^ε − 1) and denominator term e^ε − 1 − ε are
	// both O(ε²) while e^ε − 1 is O(ε).
	ee := math.Exp(eps)
	em1 := math.Expm1(eps)
	den := 2 * ee * (em1 - eps)
	if den <= 0 {
		// ε underflow below float precision: b → 1/2 in the ε→0 limit.
		return 0.5, nil
	}
	return (eps*ee - em1) / den, nil
}

// NewSW builds a Square Wave oracle over d buckets with budget eps.
func NewSW(d int, eps float64) (*SW, error) {
	if d < 1 {
		return nil, fmt.Errorf("mdsw: invalid bucket count %d", d)
	}
	b, err := SWWaveWidth(eps)
	if err != nil {
		return nil, err
	}
	s := &SW{d: d, eps: eps, b: b}
	s.pad = int(math.Ceil(b * float64(d)))
	s.buildChannel()
	if err := s.channel.Validate(); err != nil {
		return nil, fmt.Errorf("mdsw: internal channel invalid: %w", err)
	}
	return s, nil
}

// buildChannel integrates the square wave exactly over each output bucket.
// Output bucket j (j = 0..d+2·pad−1) spans
// [(j−pad)/d, (j−pad+1)/d] ⊇ [−b, 1+b].
func (s *SW) buildChannel() {
	ee := math.Exp(s.eps)
	q := 1 / (2*s.b*ee + 1)
	p := ee * q
	nOut := s.d + 2*s.pad
	ch := fo.NewChannel(s.d, nOut)
	w := 1 / float64(s.d)
	for i := 0; i < s.d; i++ {
		v := (float64(i) + 0.5) * w // input bucket centre
		lo, hi := v-s.b, v+s.b      // high-density window
		row := ch.Row(i)
		for j := 0; j < nOut; j++ {
			a := float64(j-s.pad) * w
			bEdge := a + w
			// Clip the output bucket to the legal output domain
			// [−b, 1+b]: the edge buckets may extend past it.
			oa, ob := math.Max(a, -s.b), math.Min(bEdge, 1+s.b)
			if ob <= oa {
				row[j] = 0
				continue
			}
			highLen := math.Max(0, math.Min(ob, hi)-math.Max(oa, lo))
			lowLen := (ob - oa) - highLen
			row[j] = p*highLen + q*lowLen
		}
		// Absorb clipping slack (ends of the domain) into exact
		// normalisation.
		sum := 0.0
		for _, x := range row {
			sum += x
		}
		for j := range row {
			row[j] /= sum
		}
	}
	s.channel = ch
}

// NumInputs returns d.
func (s *SW) NumInputs() int { return s.d }

// NumOutputs returns the padded output bucket count.
func (s *SW) NumOutputs() int { return s.d + 2*s.pad }

// Epsilon returns the budget.
func (s *SW) Epsilon() float64 { return s.eps }

// WaveWidth returns the continuous half-width b.
func (s *SW) WaveWidth() float64 { return s.b }

// Channel exposes the exact bucket-level channel.
func (s *SW) Channel() *fo.Channel { return s.channel }

// Samplers returns the per-input-bucket alias tables, building them once
// on first use. The returned slice is shared; treat it as read-only.
func (s *SW) Samplers() ([]*rng.Alias, error) {
	s.samplersOnce.Do(func() {
		s.samplers, s.samplersErr = s.channel.Samplers()
	})
	return s.samplers, s.samplersErr
}

// Perturb randomises one input bucket into an output bucket.
func (s *SW) Perturb(input int, r *rng.RNG) int {
	return rng.WeightedChoice(r, s.channel.Row(input))
}

// Estimate recovers the input bucket distribution from output counts via
// EM with the 1-D binomial smoothing of Li et al. (the EMS estimator).
func (s *SW) Estimate(counts []float64) ([]float64, error) {
	return em.Estimate(s.channel, counts, &em.Options{Smoothing: em.Smoother1D()})
}
