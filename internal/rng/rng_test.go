package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent continuation.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split stream mirrors parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, expected)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	table, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(23)
	const draws = 400000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[table.Draw(r)]++
	}
	for i, w := range weights {
		got := counts[i] / draws
		want := w / 10
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("category %d: frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewAlias([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := NewAlias([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf weight accepted")
	}
}

func TestAliasSingleCategory(t *testing.T) {
	table, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(29)
	for i := 0; i < 100; i++ {
		if table.Draw(r) != 0 {
			t.Fatal("single-category draw not 0")
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	table, err := NewAlias([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := New(31)
	for i := 0; i < 100000; i++ {
		if table.Draw(r) == 1 {
			t.Fatal("zero-weight category drawn")
		}
	}
}

func TestWeightedChoiceMatchesAlias(t *testing.T) {
	weights := []float64{0.5, 0.25, 0.25}
	r := New(37)
	const draws = 200000
	counts := make([]float64, 3)
	for i := 0; i < draws; i++ {
		counts[WeightedChoice(r, weights)]++
	}
	for i, w := range weights {
		if math.Abs(counts[i]/draws-w) > 0.005 {
			t.Fatalf("category %d: frequency %v, want %v", i, counts[i]/draws, w)
		}
	}
}

func TestMultinomialConservesTrials(t *testing.T) {
	r := New(41)
	counts, err := Multinomial(r, 12345, []float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 12345 {
		t.Fatalf("multinomial total %d, want 12345", total)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(43)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAliasProbabilitiesNormalised(t *testing.T) {
	r := New(47)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		table, err := NewAlias(weights)
		if err != nil {
			return false
		}
		v := table.Draw(r)
		return v >= 0 && v < len(weights) && weights[v] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
