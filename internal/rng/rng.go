// Package rng provides deterministic pseudo-random streams and the sampling
// primitives shared by every mechanism in this repository: uniform and
// weighted choice, alias tables for O(1) categorical draws, and the
// continuous variates (Gaussian, exponential, Zipf-like) used by the
// synthetic workload generators.
//
// All mechanisms take an explicit *rng.RNG so experiments are reproducible
// bit-for-bit given a seed. The generator is splitmix64 seeded xoshiro256**,
// implemented locally so the repository has no dependency on the evolving
// math/rand seeding behaviour.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; derive per-goroutine streams with Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, which guarantees
// well-distributed internal state even for small or adjacent seeds.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child stream. The child's sequence is
// decorrelated from the parent's continuation because the derivation
// consumes parent state through the output function.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
