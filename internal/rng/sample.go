package rng

import (
	"fmt"
	"math"
)

// Alias is a Walker alias table: O(n) construction, O(1) categorical
// sampling. Mechanisms build one table per input cell and then perturb
// hundreds of thousands of reports through it.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalised. It returns an error if all weights are
// zero, any weight is negative or not finite, or the slice is empty.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: all weights are zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Numerical residue: these columns are effectively full.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// Draw samples one index from the table's categorical distribution.
func (a *Alias) Draw(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len reports the number of categories in the table.
func (a *Alias) Len() int { return len(a.prob) }

// WeightedChoice samples an index proportional to weights without building
// a table. Use for one-off draws; use Alias for repeated draws. It panics
// on an empty or all-zero weight slice.
func WeightedChoice(r *RNG, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("rng: weighted choice over zero-mass weights")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Multinomial distributes n trials across categories proportional to
// weights, drawing each trial independently through an alias table.
// It returns per-category counts.
func Multinomial(r *RNG, n int, weights []float64) ([]int, error) {
	table, err := NewAlias(weights)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[table.Draw(r)]++
	}
	return counts, nil
}
