package trajectory

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// PivotTrace is the collection-based trajectory baseline: each user
// subsamples up to MaxPivots pivot points of their trajectory (always
// including the endpoints), perturbs each pivot's grid cell with GRR under
// an even split of the privacy budget, and the analyst reconstructs the
// trajectory by walking straight cell paths between consecutive reported
// pivots. Splitting ε across several pivots is what caps its accuracy in
// Figure 14.
type PivotTrace struct {
	dom       grid.Domain
	eps       float64
	maxPivots int
}

// NewPivotTrace builds the baseline over the evaluation grid.
func NewPivotTrace(dom grid.Domain, eps float64, maxPivots int) (*PivotTrace, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("trajectory: invalid epsilon %v", eps)
	}
	if maxPivots < 2 {
		return nil, fmt.Errorf("trajectory: need at least 2 pivots, got %d", maxPivots)
	}
	return &PivotTrace{dom: dom, eps: eps, maxPivots: maxPivots}, nil
}

// Name returns the mechanism's display name.
func (p *PivotTrace) Name() string { return "PivotTrace" }

// Reconstruct perturbs each trajectory's pivots and rebuilds the point
// sequences from the noisy reports. It shares reconstructOne with the
// report lifecycle, so its draw stream and output are byte-identical to
// the historical monolithic path.
func (p *PivotTrace) Reconstruct(trajs []Trajectory, r *rng.RNG) ([]Trajectory, error) {
	if len(trajs) == 0 {
		return nil, fmt.Errorf("trajectory: no trajectories")
	}
	out := make([]Trajectory, 0, len(trajs))
	for _, tr := range trajs {
		rec, err := p.reconstructOne(tr, r)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// reconstructOne runs the full client-side protocol for one trajectory:
// perturb the pivots under an even ε split, then walk straight cell
// paths between the noisy pivots. An empty trajectory reconstructs as
// empty without consuming randomness.
func (p *PivotTrace) reconstructOne(tr Trajectory, r *rng.RNG) (Trajectory, error) {
	if len(tr) == 0 {
		return Trajectory{}, nil
	}
	n := p.dom.NumCells()
	pivots := p.selectPivots(tr)
	perPivot := p.eps / float64(len(pivots))
	var noisy []geom.Cell
	if n < 2 {
		// Degenerate single-cell grid: nothing to randomise.
		for range pivots {
			noisy = append(noisy, geom.Cell{})
		}
	} else {
		g, err := fo.NewGRR(n, perPivot)
		if err != nil {
			return nil, err
		}
		for _, pv := range pivots {
			noisy = append(noisy, p.dom.CellAt(g.Perturb(p.dom.Index(p.dom.CellOf(pv)), r)))
		}
	}
	// Reconstruct: straight cell walks between consecutive pivots,
	// stretched to roughly preserve the original length.
	segLen := (len(tr) + len(pivots) - 2) / maxi(1, len(pivots)-1)
	rec := Trajectory{}
	for i := 0; i < len(noisy)-1; i++ {
		rec = append(rec, p.walk(noisy[i], noisy[i+1], segLen)...)
	}
	rec = append(rec, p.dom.CellCenter(noisy[len(noisy)-1]))
	return rec, nil
}

// Scheme implements fo.Reporter.
func (p *PivotTrace) Scheme() string {
	return fmt.Sprintf("trajectory/pivottrace d=%d eps=%g pivots=%d", p.dom.D, p.eps, p.maxPivots)
}

// NumInputs implements fo.Reporter: grid cells (a cell input reports as
// a single-point trajectory at the cell centre).
func (p *PivotTrace) NumInputs() int { return p.dom.NumCells() }

// ReportShape implements fo.Reporter: one plane of d² reconstructed-point
// counts.
func (p *PivotTrace) ReportShape() []int { return []int{p.dom.NumCells()} }

// ReportTrajectory encodes one user's full trajectory into an LDP
// report: the pivots are perturbed and the straight-path reconstruction
// runs client-side (both depend only on the user's own data and the
// noisy pivots), and the report lists the grid cell of every
// reconstructed point. The aggregate is therefore exactly the point
// histogram of the reconstructed trajectories. An empty trajectory
// yields an empty report.
func (p *PivotTrace) ReportTrajectory(tr Trajectory, r *rng.RNG) (fo.Report, error) {
	rec, err := p.reconstructOne(tr, r)
	if err != nil {
		return fo.Report{}, err
	}
	idxs := make([]int, 0, len(rec))
	for _, pt := range rec {
		idxs = append(idxs, p.dom.Index(p.dom.CellOf(pt)))
	}
	return fo.Report{Planes: [][]int{idxs}}, nil
}

// Report implements fo.Reporter: a grid-cell input reports as the
// single-point trajectory at that cell's centre.
func (p *PivotTrace) Report(input int, r *rng.RNG) (fo.Report, error) {
	if input < 0 || input >= p.dom.NumCells() {
		return fo.Report{}, fmt.Errorf("trajectory: input cell %d outside [0, %d)", input, p.dom.NumCells())
	}
	return p.ReportTrajectory(Trajectory{p.dom.CellCenter(p.dom.CellAt(input))}, r)
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (p *PivotTrace) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(p) }

// EstimateFromAggregate decodes an accumulated aggregate — the point
// histogram of the client-side reconstructions — into the estimated
// spatial distribution.
func (p *PivotTrace) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	if err := agg.Compatible(p); err != nil {
		return nil, fmt.Errorf("trajectory: %w", err)
	}
	h, err := grid.HistFromMass(p.dom, append([]float64(nil), agg.Planes[0]...))
	if err != nil {
		return nil, err
	}
	return h.Normalize(), nil
}

// EstimateHist satisfies the harness Estimator contract over a true
// count histogram: every user reports their cell as a single-point
// trajectory through the client layer, and the aggregate decodes into
// the estimated distribution.
func (p *PivotTrace) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != p.dom.D {
		return nil, fmt.Errorf("trajectory: histogram d=%d, mechanism d=%d", truth.Dom.D, p.dom.D)
	}
	agg := p.NewAggregate()
	if err := fo.Accumulate(p, agg, truth.Mass, r); err != nil {
		return nil, err
	}
	return p.EstimateFromAggregate(agg)
}

// selectPivots returns up to maxPivots points including both endpoints,
// evenly spaced along the trajectory.
func (p *PivotTrace) selectPivots(tr Trajectory) []geom.Point {
	if len(tr) == 1 {
		return []geom.Point{tr[0], tr[0]}
	}
	count := p.maxPivots
	if count > len(tr) {
		count = len(tr)
	}
	pivots := make([]geom.Point, count)
	for i := 0; i < count; i++ {
		idx := i * (len(tr) - 1) / (count - 1)
		pivots[i] = tr[idx]
	}
	return pivots
}

// walk emits `steps` points along the straight line between two cells
// (excluding the destination, which the next segment emits).
func (p *PivotTrace) walk(from, to geom.Cell, steps int) Trajectory {
	if steps < 1 {
		steps = 1
	}
	a := p.dom.CellCenter(from)
	b := p.dom.CellCenter(to)
	out := make(Trajectory, 0, steps)
	for s := 0; s < steps; s++ {
		t := float64(s) / float64(steps)
		out = append(out, geom.Point{
			X: a.X + t*(b.X-a.X),
			Y: a.Y + t*(b.Y-a.Y),
		})
	}
	return out
}
