package trajectory

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// PivotTrace is the collection-based trajectory baseline: each user
// subsamples up to MaxPivots pivot points of their trajectory (always
// including the endpoints), perturbs each pivot's grid cell with GRR under
// an even split of the privacy budget, and the analyst reconstructs the
// trajectory by walking straight cell paths between consecutive reported
// pivots. Splitting ε across several pivots is what caps its accuracy in
// Figure 14.
type PivotTrace struct {
	dom       grid.Domain
	eps       float64
	maxPivots int
}

// NewPivotTrace builds the baseline over the evaluation grid.
func NewPivotTrace(dom grid.Domain, eps float64, maxPivots int) (*PivotTrace, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("trajectory: invalid epsilon %v", eps)
	}
	if maxPivots < 2 {
		return nil, fmt.Errorf("trajectory: need at least 2 pivots, got %d", maxPivots)
	}
	return &PivotTrace{dom: dom, eps: eps, maxPivots: maxPivots}, nil
}

// Name returns the mechanism's display name.
func (p *PivotTrace) Name() string { return "PivotTrace" }

// Reconstruct perturbs each trajectory's pivots and rebuilds the point
// sequences from the noisy reports.
func (p *PivotTrace) Reconstruct(trajs []Trajectory, r *rng.RNG) ([]Trajectory, error) {
	if len(trajs) == 0 {
		return nil, fmt.Errorf("trajectory: no trajectories")
	}
	n := p.dom.NumCells()
	out := make([]Trajectory, 0, len(trajs))
	for _, tr := range trajs {
		if len(tr) == 0 {
			out = append(out, Trajectory{})
			continue
		}
		pivots := p.selectPivots(tr)
		perPivot := p.eps / float64(len(pivots))
		var noisy []geom.Cell
		if n < 2 {
			// Degenerate single-cell grid: nothing to randomise.
			for range pivots {
				noisy = append(noisy, geom.Cell{})
			}
		} else {
			g, err := fo.NewGRR(n, perPivot)
			if err != nil {
				return nil, err
			}
			for _, pv := range pivots {
				noisy = append(noisy, p.dom.CellAt(g.Perturb(p.dom.Index(p.dom.CellOf(pv)), r)))
			}
		}
		// Reconstruct: straight cell walks between consecutive pivots,
		// stretched to roughly preserve the original length.
		segLen := (len(tr) + len(pivots) - 2) / maxi(1, len(pivots)-1)
		rec := Trajectory{}
		for i := 0; i < len(noisy)-1; i++ {
			rec = append(rec, p.walk(noisy[i], noisy[i+1], segLen)...)
		}
		rec = append(rec, p.dom.CellCenter(noisy[len(noisy)-1]))
		out = append(out, rec)
	}
	return out, nil
}

// selectPivots returns up to maxPivots points including both endpoints,
// evenly spaced along the trajectory.
func (p *PivotTrace) selectPivots(tr Trajectory) []geom.Point {
	if len(tr) == 1 {
		return []geom.Point{tr[0], tr[0]}
	}
	count := p.maxPivots
	if count > len(tr) {
		count = len(tr)
	}
	pivots := make([]geom.Point, count)
	for i := 0; i < count; i++ {
		idx := i * (len(tr) - 1) / (count - 1)
		pivots[i] = tr[idx]
	}
	return pivots
}

// walk emits `steps` points along the straight line between two cells
// (excluding the destination, which the next segment emits).
func (p *PivotTrace) walk(from, to geom.Cell, steps int) Trajectory {
	if steps < 1 {
		steps = 1
	}
	a := p.dom.CellCenter(from)
	b := p.dom.CellCenter(to)
	out := make(Trajectory, 0, steps)
	for s := 0; s < steps; s++ {
		t := float64(s) / float64(steps)
		out = append(out, geom.Point{
			X: a.X + t*(b.X-a.X),
			Y: a.Y + t*(b.Y-a.Y),
		})
	}
	return out
}
