package trajectory

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// LDPTrace is the synthesis-based trajectory baseline: each user spends
// ε/3 on reporting the start cell, ε/3 on the trajectory length bucket and
// ε/3 on one uniformly sampled (cell, direction) transition, all under
// LDP (OUE for the large domains, GRR for the small one). The analyst
// estimates a first-order mobility model and synthesises trajectories
// from it. The heavy spend on direction information is exactly why its
// point-distribution recovery trails DAM in Figure 14.
type LDPTrace struct {
	dom        grid.Domain
	eps        float64
	lenBuckets int
	maxLen     int
}

// NewLDPTrace builds the baseline over the evaluation grid.
func NewLDPTrace(dom grid.Domain, eps float64, maxLen int) (*LDPTrace, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("trajectory: invalid epsilon %v", eps)
	}
	if maxLen < 2 {
		return nil, fmt.Errorf("trajectory: max length %d too small", maxLen)
	}
	return &LDPTrace{dom: dom, eps: eps, lenBuckets: 8, maxLen: maxLen}, nil
}

// Name returns the mechanism's display name.
func (l *LDPTrace) Name() string { return "LDPTrace" }

// directions are the 8 neighbour moves.
var directions = [8]geom.Cell{
	{X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: -1, Y: 1},
	{X: -1, Y: 0}, {X: -1, Y: -1}, {X: 0, Y: -1}, {X: 1, Y: -1},
}

// Synthesize collects the noisy mobility model from the true trajectories
// and returns the same number of synthetic trajectories drawn from it.
func (l *LDPTrace) Synthesize(trajs []Trajectory, r *rng.RNG) ([]Trajectory, error) {
	if len(trajs) == 0 {
		return nil, fmt.Errorf("trajectory: no trajectories")
	}
	n := l.dom.NumCells()
	epsPart := l.eps / 3

	startOUE, err := fo.NewOUE(maxi(2, n), epsPart)
	if err != nil {
		return nil, err
	}
	lenGRR, err := fo.NewGRR(l.lenBuckets, epsPart)
	if err != nil {
		return nil, err
	}
	transOUE, err := fo.NewOUE(maxi(2, n*len(directions)), epsPart)
	if err != nil {
		return nil, err
	}

	startSupport := make([]float64, startOUE.NumCategories())
	lenCounts := make([]float64, l.lenBuckets)
	transSupport := make([]float64, transOUE.NumCategories())
	users := 0.0
	transUsers := 0.0

	for _, tr := range trajs {
		if len(tr) == 0 {
			continue
		}
		users++
		startCell := l.dom.Index(l.dom.CellOf(tr[0]))
		if err := startOUE.AccumulateBits(startOUE.PerturbBits(startCell, r), startSupport); err != nil {
			return nil, err
		}
		lenCounts[lenGRR.Perturb(l.lenBucket(len(tr)), r)]++
		if len(tr) >= 2 {
			// One uniformly sampled transition per user.
			i := r.Intn(len(tr) - 1)
			from := l.dom.CellOf(tr[i])
			to := l.dom.CellOf(tr[i+1])
			dir := dirIndex(to.Sub(from))
			if dir >= 0 {
				transUsers++
				idx := l.dom.Index(from)*len(directions) + dir
				if err := transOUE.AccumulateBits(transOUE.PerturbBits(idx, r), transSupport); err != nil {
					return nil, err
				}
			}
		}
	}
	if users == 0 {
		return nil, fmt.Errorf("trajectory: all trajectories empty")
	}

	startDist, err := startOUE.EstimateBits(startSupport, users)
	if err != nil {
		return nil, err
	}
	lenDist, err := lenGRR.Estimate(lenCounts)
	if err != nil {
		return nil, err
	}
	var transDist []float64
	if transUsers > 0 {
		transDist, err = transOUE.EstimateBits(transSupport, transUsers)
		if err != nil {
			return nil, err
		}
	} else {
		transDist = make([]float64, transOUE.NumCategories())
	}

	return l.sample(len(trajs), startDist, lenDist, transDist, r)
}

func (l *LDPTrace) sample(count int, startDist, lenDist, transDist []float64, r *rng.RNG) ([]Trajectory, error) {
	n := l.dom.NumCells()
	startTable, err := rng.NewAlias(startDist[:n])
	if err != nil {
		// All-zero start estimate: fall back to uniform.
		uni := make([]float64, n)
		for i := range uni {
			uni[i] = 1
		}
		if startTable, err = rng.NewAlias(uni); err != nil {
			return nil, err
		}
	}
	out := make([]Trajectory, 0, count)
	for t := 0; t < count; t++ {
		length := l.sampleLength(lenDist, r)
		cur := l.dom.CellAt(startTable.Draw(r))
		traj := make(Trajectory, 0, length)
		for step := 0; step < length; step++ {
			traj = append(traj, l.dom.CellCenter(cur))
			cur = l.step(cur, transDist, r)
		}
		out = append(out, traj)
	}
	return out, nil
}

// step draws the next cell from the estimated conditional direction
// distribution of the current cell, falling back to a uniform valid move.
func (l *LDPTrace) step(cur geom.Cell, transDist []float64, r *rng.RNG) geom.Cell {
	base := l.dom.Index(cur) * len(directions)
	weights := make([]float64, 0, len(directions))
	cand := make([]geom.Cell, 0, len(directions))
	totalW := 0.0
	for di, d := range directions {
		next := cur.Add(d)
		if !l.dom.Contains(next) {
			continue
		}
		w := transDist[base+di]
		weights = append(weights, w)
		cand = append(cand, next)
		totalW += w
	}
	if len(cand) == 0 {
		return cur
	}
	if totalW <= 0 {
		return cand[r.Intn(len(cand))]
	}
	return cand[rng.WeightedChoice(r, weights)]
}

func (l *LDPTrace) lenBucket(length int) int {
	b := (length - 1) * l.lenBuckets / l.maxLen
	if b < 0 {
		b = 0
	}
	if b >= l.lenBuckets {
		b = l.lenBuckets - 1
	}
	return b
}

func (l *LDPTrace) sampleLength(lenDist []float64, r *rng.RNG) int {
	b := rng.WeightedChoice(r, lenDist)
	lo := b*l.maxLen/l.lenBuckets + 1
	hi := (b + 1) * l.maxLen / l.lenBuckets
	if hi < lo {
		hi = lo
	}
	length := lo + r.Intn(hi-lo+1)
	if length < 2 {
		length = 2
	}
	return length
}

// dirIndex maps a cell offset to its direction index, or -1 when the
// offset is not one of the 8 unit moves (bucketised trajectories may jump
// when the sampling grid is finer than the evaluation grid — those
// transitions carry no usable direction signal).
func dirIndex(off geom.Cell) int {
	for i, d := range directions {
		if d == off {
			return i
		}
	}
	return -1
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
