package trajectory

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// LDPTrace is the synthesis-based trajectory baseline: each user spends
// ε/3 on reporting the start cell, ε/3 on the trajectory length bucket and
// ε/3 on one uniformly sampled (cell, direction) transition, all under
// LDP (OUE for the large domains, GRR for the small one). The analyst
// estimates a first-order mobility model and synthesises trajectories
// from it. The heavy spend on direction information is exactly why its
// point-distribution recovery trails DAM in Figure 14.
type LDPTrace struct {
	dom        grid.Domain
	eps        float64
	lenBuckets int
	maxLen     int
	// The three oracles are fixed by (d, ε), so they are built once here
	// and shared by every report and decode.
	startOUE *fo.OUE
	lenGRR   *fo.GRR
	transOUE *fo.OUE
}

// NewLDPTrace builds the baseline over the evaluation grid.
func NewLDPTrace(dom grid.Domain, eps float64, maxLen int) (*LDPTrace, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("trajectory: invalid epsilon %v", eps)
	}
	if maxLen < 2 {
		return nil, fmt.Errorf("trajectory: max length %d too small", maxLen)
	}
	l := &LDPTrace{dom: dom, eps: eps, lenBuckets: 8, maxLen: maxLen}
	n := dom.NumCells()
	epsPart := eps / 3
	var err error
	if l.startOUE, err = fo.NewOUE(maxi(2, n), epsPart); err != nil {
		return nil, err
	}
	if l.lenGRR, err = fo.NewGRR(l.lenBuckets, epsPart); err != nil {
		return nil, err
	}
	if l.transOUE, err = fo.NewOUE(maxi(2, n*len(directions)), epsPart); err != nil {
		return nil, err
	}
	return l, nil
}

// Name returns the mechanism's display name.
func (l *LDPTrace) Name() string { return "LDPTrace" }

// directions are the 8 neighbour moves.
var directions = [8]geom.Cell{
	{X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: -1, Y: 1},
	{X: -1, Y: 0}, {X: -1, Y: -1}, {X: 0, Y: -1}, {X: 1, Y: -1},
}

// The aggregate's four planes: the start-cell OUE support, the
// length-bucket GRR counts, the transition OUE support, and a one-slot
// counter of users who contributed a usable transition (OUE's estimator
// needs that sub-population size, and a single shared slot merges across
// shards like any other count).
const (
	ldpPlaneStart = iota
	ldpPlaneLen
	ldpPlaneTrans
	ldpPlaneTransUsers
)

// Scheme implements fo.Reporter.
func (l *LDPTrace) Scheme() string {
	return fmt.Sprintf("trajectory/ldptrace d=%d eps=%g maxlen=%d", l.dom.D, l.eps, l.maxLen)
}

// NumInputs implements fo.Reporter: grid cells (a cell input reports as
// a single-point trajectory at the cell centre).
func (l *LDPTrace) NumInputs() int { return l.dom.NumCells() }

// ReportShape implements fo.Reporter.
func (l *LDPTrace) ReportShape() []int {
	return []int{l.startOUE.NumCategories(), l.lenBuckets, l.transOUE.NumCategories(), 1}
}

// ReportTrajectory encodes one user's full trajectory into an LDP
// report: ε/3 on the start cell (OUE), ε/3 on the length bucket (GRR),
// ε/3 on one uniformly sampled transition (OUE) — on the identical draw
// stream the monolithic Synthesize loop has always consumed.
func (l *LDPTrace) ReportTrajectory(tr Trajectory, r *rng.RNG) (fo.Report, error) {
	if len(tr) == 0 {
		return fo.Report{}, fmt.Errorf("trajectory: empty trajectory has no report")
	}
	planes := make([][]int, 4)
	startCell := l.dom.Index(l.dom.CellOf(tr[0]))
	planes[ldpPlaneStart] = setBits(l.startOUE.PerturbBits(startCell, r))
	planes[ldpPlaneLen] = []int{l.lenGRR.Perturb(l.lenBucket(len(tr)), r)}
	if len(tr) >= 2 {
		// One uniformly sampled transition per user.
		i := r.Intn(len(tr) - 1)
		from := l.dom.CellOf(tr[i])
		to := l.dom.CellOf(tr[i+1])
		dir := dirIndex(to.Sub(from))
		if dir >= 0 {
			idx := l.dom.Index(from)*len(directions) + dir
			planes[ldpPlaneTrans] = setBits(l.transOUE.PerturbBits(idx, r))
			planes[ldpPlaneTransUsers] = []int{0}
		}
	}
	return fo.Report{Planes: planes}, nil
}

// Report implements fo.Reporter: a grid-cell input reports as the
// single-point trajectory at that cell's centre.
func (l *LDPTrace) Report(input int, r *rng.RNG) (fo.Report, error) {
	if input < 0 || input >= l.dom.NumCells() {
		return fo.Report{}, fmt.Errorf("trajectory: input cell %d outside [0, %d)", input, l.dom.NumCells())
	}
	return l.ReportTrajectory(Trajectory{l.dom.CellCenter(l.dom.CellAt(input))}, r)
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (l *LDPTrace) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(l) }

// decodeModel recovers the mobility model (start, length and transition
// distributions) from an accumulated aggregate.
func (l *LDPTrace) decodeModel(agg *fo.Aggregate) (startDist, lenDist, transDist []float64, err error) {
	if err := agg.Compatible(l); err != nil {
		return nil, nil, nil, fmt.Errorf("trajectory: %w", err)
	}
	if agg.N == 0 {
		return nil, nil, nil, fmt.Errorf("trajectory: all trajectories empty")
	}
	startDist, err = l.startOUE.EstimateBits(agg.Planes[ldpPlaneStart], agg.N)
	if err != nil {
		return nil, nil, nil, err
	}
	lenDist, err = l.lenGRR.Estimate(agg.Planes[ldpPlaneLen])
	if err != nil {
		return nil, nil, nil, err
	}
	transUsers := agg.Planes[ldpPlaneTransUsers][0]
	if transUsers > 0 {
		transDist, err = l.transOUE.EstimateBits(agg.Planes[ldpPlaneTrans], transUsers)
		if err != nil {
			return nil, nil, nil, err
		}
	} else {
		transDist = make([]float64, l.transOUE.NumCategories())
	}
	return startDist, lenDist, transDist, nil
}

// ldptraceSynthSeed pins EstimateFromAggregate's synthesis stream, so
// every decoder of the same aggregate derives the same histogram.
const ldptraceSynthSeed = 0x1d9712ace

// EstimateFromAggregate decodes an accumulated aggregate into the
// estimated spatial distribution: synthesise one trajectory per absorbed
// report from the decoded mobility model (on a pinned stream — the
// aggregate alone determines the output) and bucket the points.
func (l *LDPTrace) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	startDist, lenDist, transDist, err := l.decodeModel(agg)
	if err != nil {
		return nil, err
	}
	synth, err := l.sample(int(agg.N), startDist, lenDist, transDist, rng.New(ldptraceSynthSeed))
	if err != nil {
		return nil, err
	}
	return PointHist(l.dom, synth).Normalize(), nil
}

// EstimateHist satisfies the harness Estimator contract over a true
// count histogram: every user reports their cell as a single-point
// trajectory through the client layer, and the aggregate decodes into
// the estimated distribution.
func (l *LDPTrace) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != l.dom.D {
		return nil, fmt.Errorf("trajectory: histogram d=%d, mechanism d=%d", truth.Dom.D, l.dom.D)
	}
	agg := l.NewAggregate()
	if err := fo.Accumulate(l, agg, truth.Mass, r); err != nil {
		return nil, err
	}
	return l.EstimateFromAggregate(agg)
}

// Synthesize collects the noisy mobility model from the true trajectories
// and returns the same number of synthetic trajectories drawn from it. It
// is a thin wrapper over the report lifecycle — one ReportTrajectory per
// non-empty trajectory into one aggregate, decoded into the model —
// with a report stream and output byte-identical to the historical
// monolithic path.
func (l *LDPTrace) Synthesize(trajs []Trajectory, r *rng.RNG) ([]Trajectory, error) {
	if len(trajs) == 0 {
		return nil, fmt.Errorf("trajectory: no trajectories")
	}
	agg := l.NewAggregate()
	for _, tr := range trajs {
		if len(tr) == 0 {
			continue
		}
		rep, err := l.ReportTrajectory(tr, r)
		if err != nil {
			return nil, err
		}
		if err := agg.Add(rep); err != nil {
			return nil, err
		}
	}
	startDist, lenDist, transDist, err := l.decodeModel(agg)
	if err != nil {
		return nil, err
	}
	return l.sample(len(trajs), startDist, lenDist, transDist, r)
}

// setBits returns the indices of the set bits of an OUE report.
func setBits(bits []bool) []int {
	set := make([]int, 0, 4)
	for j, b := range bits {
		if b {
			set = append(set, j)
		}
	}
	return set
}

func (l *LDPTrace) sample(count int, startDist, lenDist, transDist []float64, r *rng.RNG) ([]Trajectory, error) {
	n := l.dom.NumCells()
	startTable, err := rng.NewAlias(startDist[:n])
	if err != nil {
		// All-zero start estimate: fall back to uniform.
		uni := make([]float64, n)
		for i := range uni {
			uni[i] = 1
		}
		if startTable, err = rng.NewAlias(uni); err != nil {
			return nil, err
		}
	}
	out := make([]Trajectory, 0, count)
	for t := 0; t < count; t++ {
		length := l.sampleLength(lenDist, r)
		cur := l.dom.CellAt(startTable.Draw(r))
		traj := make(Trajectory, 0, length)
		for step := 0; step < length; step++ {
			traj = append(traj, l.dom.CellCenter(cur))
			cur = l.step(cur, transDist, r)
		}
		out = append(out, traj)
	}
	return out, nil
}

// step draws the next cell from the estimated conditional direction
// distribution of the current cell, falling back to a uniform valid move.
func (l *LDPTrace) step(cur geom.Cell, transDist []float64, r *rng.RNG) geom.Cell {
	base := l.dom.Index(cur) * len(directions)
	weights := make([]float64, 0, len(directions))
	cand := make([]geom.Cell, 0, len(directions))
	totalW := 0.0
	for di, d := range directions {
		next := cur.Add(d)
		if !l.dom.Contains(next) {
			continue
		}
		w := transDist[base+di]
		weights = append(weights, w)
		cand = append(cand, next)
		totalW += w
	}
	if len(cand) == 0 {
		return cur
	}
	if totalW <= 0 {
		return cand[r.Intn(len(cand))]
	}
	return cand[rng.WeightedChoice(r, weights)]
}

func (l *LDPTrace) lenBucket(length int) int {
	b := (length - 1) * l.lenBuckets / l.maxLen
	if b < 0 {
		b = 0
	}
	if b >= l.lenBuckets {
		b = l.lenBuckets - 1
	}
	return b
}

func (l *LDPTrace) sampleLength(lenDist []float64, r *rng.RNG) int {
	b := rng.WeightedChoice(r, lenDist)
	lo := b*l.maxLen/l.lenBuckets + 1
	hi := (b + 1) * l.maxLen / l.lenBuckets
	if hi < lo {
		hi = lo
	}
	length := lo + r.Intn(hi-lo+1)
	if length < 2 {
		length = 2
	}
	return length
}

// dirIndex maps a cell offset to its direction index, or -1 when the
// offset is not one of the 8 unit moves (bucketised trajectories may jump
// when the sampling grid is finer than the evaluation grid — those
// transitions carry no usable direction signal).
func dirIndex(off geom.Cell) int {
	for i, d := range directions {
		if d == off {
			return i
		}
	}
	return -1
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
