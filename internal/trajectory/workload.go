// Package trajectory implements the Appendix-D comparison: a trajectory
// workload generator that follows the paper's seven-step protocol on a
// point dataset, plus simplified-but-faithful re-implementations of the
// two trajectory-collection baselines — LDPTrace (Du et al., VLDB 2023:
// estimate a grid mobility model under LDP, then synthesise trajectories)
// and PivotTrace (Zhang et al., VLDB 2023: perturb sampled pivot points
// and reconstruct by interpolation). Both are evaluated, as in the paper,
// by the Wasserstein distance between the point distributions of the true
// and reconstructed trajectories.
package trajectory

import (
	"fmt"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// Trajectory is an ordered sequence of continuous points.
type Trajectory []geom.Point

// WorkloadConfig controls the Appendix-D trajectory sampler.
type WorkloadConfig struct {
	GridD   int // sampling grid resolution (the paper uses 300)
	NumTraj int // number of trajectories (paper: 1000)
	MinLen  int // minimum trajectory length (paper: 2)
	MaxLen  int // maximum trajectory length (paper: 200)
}

func (c WorkloadConfig) validate() error {
	if c.GridD < 2 {
		return fmt.Errorf("trajectory: grid resolution %d too small", c.GridD)
	}
	if c.NumTraj < 1 {
		return fmt.Errorf("trajectory: need at least one trajectory")
	}
	if c.MinLen < 2 || c.MaxLen < c.MinLen {
		return fmt.Errorf("trajectory: invalid length range [%d, %d]", c.MinLen, c.MaxLen)
	}
	return nil
}

// Generate samples trajectories from a point dataset following Appendix D:
// divide the domain into a GridD×GridD grid, pick start cells and lengths,
// then walk to neighbouring cells with probability proportional to their
// point counts, emitting one random point from each visited cell.
func Generate(points []geom.Point, cfg WorkloadConfig, r *rng.RNG) ([]Trajectory, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("trajectory: empty point set")
	}
	dom, err := grid.SquareDomain(points, cfg.GridD)
	if err != nil {
		return nil, err
	}
	// Map grid cell -> points within it.
	cellPoints := make(map[int][]geom.Point)
	for _, p := range points {
		idx := dom.Index(dom.CellOf(p))
		cellPoints[idx] = append(cellPoints[idx], p)
	}
	occupied := make([]int, 0, len(cellPoints))
	occWeights := make([]float64, 0, len(cellPoints))
	for idx, pts := range cellPoints {
		occupied = append(occupied, idx)
		occWeights = append(occWeights, float64(len(pts)))
	}
	// Deterministic order for reproducibility (map iteration is random).
	sortTogether(occupied, occWeights)
	startTable, err := rng.NewAlias(occWeights)
	if err != nil {
		return nil, err
	}

	trajs := make([]Trajectory, 0, cfg.NumTraj)
	for t := 0; t < cfg.NumTraj; t++ {
		length := cfg.MinLen + r.Intn(cfg.MaxLen-cfg.MinLen+1)
		cur := occupied[startTable.Draw(r)]
		traj := make(Trajectory, 0, length)
		for step := 0; step < length; step++ {
			pts := cellPoints[cur]
			traj = append(traj, pts[r.Intn(len(pts))])
			next, ok := pickNeighbour(dom, cellPoints, cur, r)
			if !ok {
				break // isolated cell: trajectory ends early
			}
			cur = next
		}
		trajs = append(trajs, traj)
	}
	return trajs, nil
}

// pickNeighbour chooses one of the 8 neighbouring cells with probability
// proportional to its point count. It reports false if no neighbour holds
// points.
func pickNeighbour(dom grid.Domain, cellPoints map[int][]geom.Point, cur int, r *rng.RNG) (int, bool) {
	c := dom.CellAt(cur)
	var cand []int
	var weights []float64
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := geom.Cell{X: c.X + dx, Y: c.Y + dy}
			if !dom.Contains(n) {
				continue
			}
			idx := dom.Index(n)
			if pts := cellPoints[idx]; len(pts) > 0 {
				cand = append(cand, idx)
				weights = append(weights, float64(len(pts)))
			}
		}
	}
	if len(cand) == 0 {
		return 0, false
	}
	return cand[rng.WeightedChoice(r, weights)], true
}

func sortTogether(idx []int, w []float64) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			w[j], w[j-1] = w[j-1], w[j]
		}
	}
}

// PointHist buckets every trajectory point into a d×d histogram over the
// given domain — steps (2)/(5) of the Appendix-D protocol.
func PointHist(dom grid.Domain, trajs []Trajectory) *grid.Hist2D {
	h := grid.NewHist(dom)
	for _, tr := range trajs {
		for _, p := range tr {
			h.Mass[dom.Index(dom.CellOf(p))]++
		}
	}
	return h
}

// Points flattens trajectories into a single point slice.
func Points(trajs []Trajectory) []geom.Point {
	var out []geom.Point
	for _, tr := range trajs {
		out = append(out, tr...)
	}
	return out
}
