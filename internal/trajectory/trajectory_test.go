package trajectory

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/synth"
)

func workloadPoints(t *testing.T) []geom.Point {
	t.Helper()
	pts, err := synth.City(rng.New(42), synth.CityConfig{
		N: 20000, Streets: 8, Hotspots: 4, StreetFrac: 0.7, Jitter: 0.005, HotSigma: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func defaultConfig() WorkloadConfig {
	return WorkloadConfig{GridD: 50, NumTraj: 200, MinLen: 2, MaxLen: 40}
}

func TestGenerateBasicShape(t *testing.T) {
	trajs, err := Generate(workloadPoints(t), defaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 200 {
		t.Fatalf("got %d trajectories", len(trajs))
	}
	for i, tr := range trajs {
		if len(tr) < 1 || len(tr) > 40 {
			t.Fatalf("trajectory %d has length %d", i, len(tr))
		}
	}
}

func TestGenerateStepsAreLocal(t *testing.T) {
	pts := workloadPoints(t)
	cfg := defaultConfig()
	trajs, err := Generate(pts, cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	dom, err := grid.SquareDomain(pts, cfg.GridD)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trajs {
		for i := 1; i < len(tr); i++ {
			a, b := dom.CellOf(tr[i-1]), dom.CellOf(tr[i])
			if absInt(a.X-b.X) > 1 || absInt(a.Y-b.Y) > 1 {
				t.Fatalf("non-adjacent step from %v to %v", a, b)
			}
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestGenerateValidation(t *testing.T) {
	pts := workloadPoints(t)
	r := rng.New(3)
	if _, err := Generate(nil, defaultConfig(), r); err == nil {
		t.Fatal("empty points accepted")
	}
	bad := defaultConfig()
	bad.GridD = 1
	if _, err := Generate(pts, bad, r); err == nil {
		t.Fatal("grid d=1 accepted")
	}
	bad = defaultConfig()
	bad.NumTraj = 0
	if _, err := Generate(pts, bad, r); err == nil {
		t.Fatal("zero trajectories accepted")
	}
	bad = defaultConfig()
	bad.MinLen, bad.MaxLen = 5, 3
	if _, err := Generate(pts, bad, r); err == nil {
		t.Fatal("inverted length range accepted")
	}
}

func TestPointHistCountsAllPoints(t *testing.T) {
	trajs := []Trajectory{
		{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}},
		{{X: 0.9, Y: 0.9}},
	}
	dom, err := grid.NewDomain(0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := PointHist(dom, trajs)
	if h.Total() != 3 {
		t.Fatalf("hist total %v, want 3", h.Total())
	}
}

func TestPointsFlatten(t *testing.T) {
	trajs := []Trajectory{{{X: 1, Y: 1}}, {{X: 2, Y: 2}, {X: 3, Y: 3}}}
	if got := len(Points(trajs)); got != 3 {
		t.Fatalf("flattened %d points", got)
	}
}

func evalDomain(t *testing.T, pts []geom.Point, d int) grid.Domain {
	t.Helper()
	dom, err := grid.SquareDomain(pts, d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestLDPTraceSynthesizeShape(t *testing.T) {
	pts := workloadPoints(t)
	trajs, err := Generate(pts, defaultConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	dom := evalDomain(t, pts, 10)
	l, err := NewLDPTrace(dom, 1.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	synths, err := l.Synthesize(trajs, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(synths) != len(trajs) {
		t.Fatalf("synthesised %d trajectories for %d inputs", len(synths), len(trajs))
	}
	for _, tr := range synths {
		for i := 1; i < len(tr); i++ {
			a, b := dom.CellOf(tr[i-1]), dom.CellOf(tr[i])
			if absInt(a.X-b.X) > 1 || absInt(a.Y-b.Y) > 1 {
				t.Fatalf("synthetic step from %v to %v not adjacent", a, b)
			}
		}
	}
}

func TestLDPTraceRecoversBetterWithMoreBudget(t *testing.T) {
	pts := workloadPoints(t)
	trajs, err := Generate(pts, defaultConfig(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	dom := evalDomain(t, pts, 8)
	truth := PointHist(dom, trajs).Normalize()
	tvAt := func(eps float64, seed uint64) float64 {
		l, err := NewLDPTrace(dom, eps, 40)
		if err != nil {
			t.Fatal(err)
		}
		synths, err := l.Synthesize(trajs, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		est := PointHist(dom, synths).Normalize()
		tv, err := grid.TotalVariation(truth, est)
		if err != nil {
			t.Fatal(err)
		}
		return tv
	}
	// Average a few runs to dampen noise.
	low, high := 0.0, 0.0
	for s := uint64(0); s < 3; s++ {
		low += tvAt(0.3, 10+s)
		high += tvAt(8, 20+s)
	}
	if high >= low {
		t.Fatalf("more budget did not help: TV(eps=8)=%v vs TV(eps=0.3)=%v", high/3, low/3)
	}
}

func TestLDPTraceErrors(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLDPTrace(dom, 0, 40); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewLDPTrace(dom, 1, 1); err == nil {
		t.Fatal("maxLen=1 accepted")
	}
	l, err := NewLDPTrace(dom, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Synthesize(nil, rng.New(1)); err == nil {
		t.Fatal("empty trajectory set accepted")
	}
}

func TestLDPTraceLengthBuckets(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLDPTrace(dom, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	for length := 1; length <= 40; length++ {
		b := l.lenBucket(length)
		if b < 0 || b >= l.lenBuckets {
			t.Fatalf("length %d maps to bucket %d", length, b)
		}
	}
	if l.lenBucket(1) != 0 {
		t.Fatal("shortest length not in first bucket")
	}
	if l.lenBucket(40) != l.lenBuckets-1 {
		t.Fatal("longest length not in last bucket")
	}
}

func TestDirIndexRoundTrip(t *testing.T) {
	for i, d := range directions {
		if got := dirIndex(d); got != i {
			t.Fatalf("direction %v maps to %d, want %d", d, got, i)
		}
	}
	if dirIndex(geom.Cell{X: 2, Y: 0}) != -1 {
		t.Fatal("non-unit offset mapped to a direction")
	}
	if dirIndex(geom.Cell{X: 0, Y: 0}) != -1 {
		t.Fatal("zero offset mapped to a direction")
	}
}

func TestPivotTraceReconstructShape(t *testing.T) {
	pts := workloadPoints(t)
	trajs, err := Generate(pts, defaultConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	dom := evalDomain(t, pts, 10)
	p, err := NewPivotTrace(dom, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := p.Reconstruct(trajs, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(trajs) {
		t.Fatalf("reconstructed %d for %d inputs", len(recs), len(trajs))
	}
	for i, rec := range recs {
		if len(trajs[i]) > 0 && len(rec) == 0 {
			t.Fatalf("trajectory %d reconstructed empty", i)
		}
		for _, pt := range rec {
			c := dom.CellOf(pt)
			if !dom.Contains(c) {
				t.Fatalf("reconstructed point %v outside domain", pt)
			}
		}
	}
}

func TestPivotTraceSelectPivots(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPivotTrace(dom, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := make(Trajectory, 10)
	for i := range tr {
		tr[i] = geom.Point{X: float64(i) / 10, Y: 0.5}
	}
	pivots := p.selectPivots(tr)
	if len(pivots) != 4 {
		t.Fatalf("got %d pivots", len(pivots))
	}
	if pivots[0] != tr[0] || pivots[3] != tr[9] {
		t.Fatal("pivots must include both endpoints")
	}
	// Short trajectory: fewer pivots, but at least the endpoints.
	short := Trajectory{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}
	pv := p.selectPivots(short)
	if len(pv) != 2 {
		t.Fatalf("short trajectory got %d pivots", len(pv))
	}
	single := Trajectory{{X: 0.3, Y: 0.3}}
	if got := p.selectPivots(single); len(got) != 2 {
		t.Fatalf("single-point trajectory got %d pivots", len(got))
	}
}

func TestPivotTraceErrors(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPivotTrace(dom, -1, 4); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := NewPivotTrace(dom, 1, 1); err == nil {
		t.Fatal("single pivot accepted")
	}
	p, err := NewPivotTrace(dom, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reconstruct(nil, rng.New(1)); err == nil {
		t.Fatal("empty trajectory set accepted")
	}
}

func TestPivotTraceWalkLength(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPivotTrace(dom, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	seg := p.walk(geom.Cell{X: 0, Y: 0}, geom.Cell{X: 5, Y: 5}, 5)
	if len(seg) != 5 {
		t.Fatalf("walk emitted %d points, want 5", len(seg))
	}
	// Points advance monotonically towards the target.
	for i := 1; i < len(seg); i++ {
		if seg[i].X < seg[i-1].X || seg[i].Y < seg[i-1].Y {
			t.Fatalf("walk not monotone at %d: %v -> %v", i, seg[i-1], seg[i])
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	pts := workloadPoints(t)
	a, err := Generate(pts, defaultConfig(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(pts, defaultConfig(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic workload size")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("trajectory %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("trajectory %d point %d differs", i, j)
			}
		}
	}
}

func TestLDPTraceBeatsNothingButKeepsMass(t *testing.T) {
	// Even at tiny budgets, the synthesised point histogram must be a
	// valid distribution over the domain.
	pts := workloadPoints(t)
	trajs, err := Generate(pts, defaultConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	dom := evalDomain(t, pts, 6)
	l, err := NewLDPTrace(dom, 0.1, 40)
	if err != nil {
		t.Fatal(err)
	}
	synths, err := l.Synthesize(trajs, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	h := PointHist(dom, synths).Normalize()
	if math.Abs(h.Total()-1) > 1e-9 {
		t.Fatalf("synthetic hist total %v", h.Total())
	}
}
