// Package metrics is a small, dependency-free metrics registry with
// Prometheus text exposition — the operator surface behind the collector
// and fleet tiers' GET /metrics endpoints, built in the same spirit as
// internal/fft: everything the service needs, nothing imported for it.
//
// Three instrument kinds cover the operational counters the tiers
// compute: monotone Counters, settable Gauges, and fixed-bucket
// Histograms (cumulative, with _sum and _count, like Prometheus client
// histograms). Each comes in a plain single-series form, a labelled Vec
// form, and — for counters and gauges — a func-backed form whose value
// is read at scrape time, which is how durable-store counters are
// surfaced without the store depending on this package.
//
// Exposition is deterministic: families are emitted in lexicographic
// name order, series within a family in lexicographic label order, and
// all values are rendered with fmt. Two scrapes of a quiesced registry
// are therefore byte-identical — pinned by a golden test, and the
// property CI's smoke greps rely on.
//
// Update paths are lock-free (atomic compare-and-swap on float bits), so
// instruments can be bumped while holding service locks without any
// ordering relationship to the scrape path: WriteTo takes the registry
// lock and may call scrape funcs that take service locks, while service
// code holding those locks only ever touches leaf atomics.
//
// OpenMetrics exemplars (attaching a trace ID to individual histogram
// observations) are deliberately NOT implemented: exemplars record the
// last-seen trace per bucket, which would make two scrapes of a
// quiesced registry differ byte-for-byte and break the determinism
// contract above. The metrics↔traces join runs the other way instead —
// GET /v1/traces filters by duration/outcome, and the slow-request log
// carries the trace ID alongside the latency that the histograms only
// see in aggregate.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition TYPE of a metric family.
type Kind string

// The exposition TYPE strings.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// value is a float64 updated with atomic CAS on its bit pattern — the
// leaf cell under every instrument.
type value struct{ bits atomic.Uint64 }

func (v *value) add(delta float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v value }

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds delta, which must be non-negative for the exposition to stay
// a valid counter; the registry does not enforce it.
func (c *Counter) Add(delta float64) { c.v.add(delta) }

// Value returns the current count — the test-assertion surface.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v value }

// Set replaces the value.
func (g *Gauge) Set(x float64) { g.v.set(x) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram is a fixed-bucket cumulative histogram: Observe counts each
// observation into every bucket whose upper bound is >= the value, plus
// the implicit +Inf bucket, and accumulates _sum and _count.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    value
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i].Add(1)
		}
	}
	h.inf.Add(1)
	h.sum.add(x)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.inf.Load() }

// series is one label-set instance inside a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64 // scrape-time value (counter/gauge funcs)
}

// family is one named metric with its help text, kind and series set.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or fetches, when name is already registered with the
// identical shape) a family. Re-registering with a different kind or
// label set is a programming error and panics — metric names are a
// stable contract, not runtime input.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("metrics: %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// get returns the family's series for the label values, creating it on
// first use.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets))}
	}
	f.series[key] = s
	return s
}

// Counter registers (or fetches) a single-series counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).get(nil).counter
}

// Gauge registers (or fetches) a single-series gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).get(nil).gauge
}

// Histogram registers (or fetches) a single-series histogram over the
// given bucket upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, nil, buckets).get(nil).hist
}

// CounterFunc registers a counter whose value is fn() at scrape time —
// for monotone values another subsystem already counts (the durable
// store's WAL counters). fn runs under the registry lock; it may take
// its own locks but must never scrape this registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindCounter, nil, nil)
	f.get(nil).fn = fn
}

// GaugeFunc registers a gauge whose value is fn() at scrape time, under
// the same rules as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.get(nil).fn = fn
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the label values, creating it on first
// use. Values are cached; With on a hot path costs one map lookup.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).counter
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues).gauge
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labelled histogram family over
// the given bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the histogram for the label values, creating it on first
// use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).hist
}

// DefBuckets are the default latency buckets (seconds) of the HTTP and
// decode timing histograms — Prometheus client_golang's defaults, so
// dashboards written against the usual boundaries transfer.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// escapeLabel renders a label value inside double quotes: backslash,
// quote and newline are escaped per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp renders a HELP line payload: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value. fmt's %g is the shortest
// round-tripping form, so re-scraping and re-rendering is stable.
func formatValue(x float64) string {
	if math.IsInf(x, +1) {
		return "+Inf"
	}
	if math.IsInf(x, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", x)
}

// labelString renders a {k="v",...} block from parallel key/value
// slices, empty when there are no labels.
func labelString(keys, values []string, extraKey, extraValue string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(values[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// values, histograms as cumulative _bucket/_sum/_count. The output for
// an unchanged registry is byte-identical between calls.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var total int64
	for _, name := range names {
		f := fams[name]
		n, err := f.write(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// write renders one family.
func (f *family) write(w io.Writer) (int64, error) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]*series, len(keys))
	for i, k := range keys {
		ordered[i] = f.series[k]
	}
	f.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range ordered {
		switch f.kind {
		case KindCounter, KindGauge:
			x := 0.0
			switch {
			case s.fn != nil:
				x = s.fn()
			case s.counter != nil:
				x = s.counter.Value()
			case s.gauge != nil:
				x = s.gauge.Value()
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", ""), formatValue(x))
		case KindHistogram:
			h := s.hist
			for i, bound := range h.bounds {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelValues, "le", formatValue(bound)), h.counts[i].Load())
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "le", "+Inf"), h.inf.Load())
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), formatValue(h.sum.load()))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
				labelString(f.labels, s.labelValues, "", ""), h.inf.Load())
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Handler serves the exposition over HTTP — GET only, text/plain with
// the exposition-format version parameter.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
