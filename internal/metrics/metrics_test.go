package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestGoldenExposition pins the exact text exposition: family ordering,
// series ordering, label escaping, histogram framing. The byte-level
// contract is what CI's smoke greps and the collector golden test build
// on, so a change here is a wire-format change.
func TestGoldenExposition(t *testing.T) {
	r := New()
	// Registered deliberately out of name order: exposition must sort.
	g := r.Gauge("zz_gauge", "a gauge")
	g.Set(2.5)
	c := r.Counter("aa_total", "a counter")
	c.Inc()
	c.Add(2)
	v := r.CounterVec("mid_total", "a labelled counter", "path", "code")
	v.With("/v1/report", "200").Add(3)
	v.With("/v1/aggregate", "409").Inc()
	h := r.Histogram("lat_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("fn_gauge", `escaped "help" with \ and
newline`, func() float64 { return 7 })

	want := `# HELP aa_total a counter
# TYPE aa_total counter
aa_total 3
# HELP fn_gauge escaped "help" with \\ and\nnewline
# TYPE fn_gauge gauge
fn_gauge 7
# HELP lat_seconds a histogram
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 5.55
lat_seconds_count 3
# HELP mid_total a labelled counter
# TYPE mid_total counter
mid_total{path="/v1/aggregate",code="409"} 1
mid_total{path="/v1/report",code="200"} 3
# HELP zz_gauge a gauge
# TYPE zz_gauge gauge
zz_gauge 2.5
`
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestDeterministicRepeatedScrapes asserts the headline property: an
// unchanged registry renders byte-identically, scrape after scrape.
func TestDeterministicRepeatedScrapes(t *testing.T) {
	r := New()
	v := r.CounterVec("x_total", "x", "a", "b")
	for _, lv := range [][2]string{{"p", "q"}, {"p", "r"}, {"z", "a"}, {"", "empty"}} {
		v.With(lv[0], lv[1]).Inc()
	}
	h := r.HistogramVec("h_seconds", "h", DefBuckets, "mode")
	h.With("cold").Observe(0.3)
	h.With("warm").Observe(0.01)

	var first strings.Builder
	if _, err := r.WriteTo(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again strings.Builder
		if _, err := r.WriteTo(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("scrape %d differs from the first:\n%s\nvs\n%s", i+2, again.String(), first.String())
		}
	}
}

// TestHandler serves the exposition over HTTP with the format content
// type, and refuses non-GET.
func TestHandler(t *testing.T) {
	r := New()
	r.Counter("one_total", "one").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q is not the exposition format", ct)
	}
	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST /metrics answered %d, want 405", post.StatusCode)
	}
}

// TestConcurrentUpdatesAndScrapes hammers every instrument kind from
// many goroutines while scraping concurrently — the -race guarantee the
// collector relies on when submissions and scrapes overlap — then checks
// no increment was lost.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	v := r.CounterVec("v_total", "v", "worker")
	h := r.Histogram("h_seconds", "h", []float64{0.5})

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				v.With(lbl).Inc()
				h.Observe(float64(i%2) * 0.9)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if _, err := r.WriteTo(&b); err != nil {
					t.Errorf("WriteTo: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter lost updates: %g != %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := v.With(string(rune('a' + w))).Value(); got != perWorker {
			t.Errorf("vec series %d lost updates: %g != %d", w, got, perWorker)
		}
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram lost observations: %d != %d", got, workers*perWorker)
	}
}

// TestReregisterSameShape returns the same family; a different shape
// panics — names are a stable contract.
func TestReregisterSameShape(t *testing.T) {
	r := New()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second registration, same shape")
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("re-registration did not return the same series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("dup_total", "wrong kind")
}
