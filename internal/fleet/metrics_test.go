package fleet_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"dpspatial/internal/collector"
	"dpspatial/internal/fleet"
)

// These tests pin the supervisor's /metrics surface to the routing and
// caching behaviors the rest of the fleet suite proves: the shared
// collector-tier families must move in lockstep with the supervisor's
// exactly-once and hash-keyed-cache semantics, and the fleet-only
// per-member series must agree with /v1/stats.

// scrapeFleetMetrics GETs the supervisor's /metrics exposition.
func scrapeFleetMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + collector.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// fleetSeries extracts one series' value by its exact rendered name; a
// missing series fails the test.
func fleetSeries(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != series {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: unparsable value %q", series, val)
		}
		return f
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, exposition)
	return 0
}

// fleetSeriesSum sums a family's series across all label values.
func fleetSeriesSum(t *testing.T, exposition, family string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		base, _, _ := strings.Cut(name, "{")
		if base != family {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: unparsable value %q", name, val)
		}
		sum += f
	}
	return sum
}

// TestFleetMetricsLockstep drives a two-member fleet through routed
// submissions, a duplicate replay and cached estimates, then checks the
// supervisor's counters: accepted equals routed submissions (and their
// per-member sum), the replay counts once as a duplicate, repeated
// estimates at an unchanged member-state hash are cache hits, and the
// hash-generation counter shows exactly one distinct fleet state.
func TestFleetMetricsLockstep(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	f := startFleet(t, 2, mech, pipeline, nil)
	ctx := context.Background()
	shards := accumulateShards(t, mech, 4, 33)

	ids := make([]string, len(shards))
	for i, s := range shards {
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = collector.NewSubmissionID()
		if _, err := f.client.SubmitAggregateBlobWithID(ctx, blob, nil, ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Replay the first submission under its original ID.
	blob, err := shards[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	replay, err := f.client.SubmitAggregateBlobWithID(ctx, blob, nil, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Duplicate {
		t.Fatal("replayed ID not marked duplicate")
	}
	// First estimate decodes; the second is a hash-keyed cache hit.
	if _, _, err := f.client.Estimate(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.client.Estimate(ctx); err != nil {
		t.Fatal(err)
	}

	exp := scrapeFleetMetrics(t, f.client.BaseURL)
	if got := fleetSeries(t, exp, `dpspatial_submissions_total{outcome="accepted"}`); got != 4 {
		t.Fatalf("accepted = %g after 4 routed submissions, want 4", got)
	}
	if got := fleetSeries(t, exp, `dpspatial_submissions_total{outcome="duplicate"}`); got != 1 {
		t.Fatalf("duplicate = %g after one replay, want 1", got)
	}
	if got := fleetSeriesSum(t, exp, "dpspatial_fleet_member_routed_total"); got != 4 {
		t.Fatalf("per-member routed sum = %g, want 4 (the replay must not route)", got)
	}
	if got := fleetSeries(t, exp, "dpspatial_fleet_members"); got != 2 {
		t.Fatalf("fleet members gauge = %g, want 2", got)
	}
	for _, srv := range f.members {
		healthy := `dpspatial_fleet_member_healthy{member="` + srv.URL + `"}`
		if got := fleetSeries(t, exp, healthy); got != 1 {
			t.Fatalf("%s = %g, want 1", healthy, got)
		}
	}
	if got := fleetSeries(t, exp, `dpspatial_query_cache_misses_total{kind="estimate"}`); got != 1 {
		t.Fatalf("estimate cache misses = %g, want 1", got)
	}
	if got := fleetSeries(t, exp, `dpspatial_query_cache_hits_total{kind="estimate"}`); got != 1 {
		t.Fatalf("estimate cache hits = %g, want 1", got)
	}
	if got := fleetSeries(t, exp, "dpspatial_fleet_state_hash_generations_total"); got != 1 {
		t.Fatalf("state-hash generations = %g after one decoded fleet state, want 1", got)
	}
	if got := fleetSeries(t, exp, `dpspatial_decodes_total{mode="cold"}`); got != 1 {
		t.Fatalf("cold decodes = %g, want 1", got)
	}
	if got := fleetSeries(t, exp, "dpspatial_generation"); got != 4 {
		t.Fatalf("fleet generation gauge = %g, want 4", got)
	}

	// Quiesced supervisor: consecutive scrapes are byte-identical.
	if again := scrapeFleetMetrics(t, f.client.BaseURL); again != exp {
		t.Fatal("two scrapes of a quiesced supervisor differ")
	}
}

// TestFleetMetricsFailoverAndRecovery takes a shard-holding member down
// and checks the failover and health series move with the routing layer:
// the down member's healthy gauge drops to 0 and its failover counter
// moves while submissions keep landing on the survivor, and its return
// shows up as a recovery.
func TestFleetMetricsFailoverAndRecovery(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 3, 7)

	gates := make([]*gate, 2)
	urls := make([]string, 2)
	for i := range gates {
		c, err := collector.New(collector.Config{Build: damBuild(t)})
		if err != nil {
			t.Fatal(err)
		}
		gates[i] = &gate{next: c}
		srv := httptest.NewServer(gates[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	sup, err := fleet.New(fleet.Config{
		Members: urls, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(func() { supSrv.Close(); sup.Close() })
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	resp0, err := client.SubmitAggregate(ctx, shards[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	downIdx := 1
	if resp0.Member == urls[0] {
		downIdx = 0
	}
	gates[downIdx].down.Store(true)
	for _, s := range shards[1:] {
		if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatalf("submission with one member down should fail over: %v", err)
		}
	}

	exp := scrapeFleetMetrics(t, supSrv.URL)
	if got := fleetSeries(t, exp, "dpspatial_fleet_failovers_total"); got < 1 {
		t.Fatalf("fleet failovers = %g with a member down, want >= 1", got)
	}
	downFailovers := `dpspatial_fleet_member_failovers_total{member="` + urls[downIdx] + `"}`
	if got := fleetSeries(t, exp, downFailovers); got < 1 {
		t.Fatalf("%s = %g, want >= 1", downFailovers, got)
	}
	downHealthy := `dpspatial_fleet_member_healthy{member="` + urls[downIdx] + `"}`
	if got := fleetSeries(t, exp, downHealthy); got != 0 {
		t.Fatalf("%s = %g while gated down, want 0", downHealthy, got)
	}
	if got := fleetSeries(t, exp, `dpspatial_submissions_total{outcome="accepted"}`); got != 3 {
		t.Fatalf("accepted = %g (failover must not drop submissions), want 3", got)
	}

	// Member returns: the next successful exchange marks it healthy and
	// counts the unhealthy→healthy transition as a recovery.
	gates[downIdx].down.Store(false)
	if _, _, err := client.Estimate(ctx); err != nil {
		t.Fatal(err)
	}
	exp = scrapeFleetMetrics(t, supSrv.URL)
	if got := fleetSeries(t, exp, downHealthy); got != 1 {
		t.Fatalf("%s = %g after recovery, want 1", downHealthy, got)
	}
	downRecoveries := `dpspatial_fleet_member_recoveries_total{member="` + urls[downIdx] + `"}`
	if got := fleetSeries(t, exp, downRecoveries); got < 1 {
		t.Fatalf("%s = %g after the member rejoined, want >= 1", downRecoveries, got)
	}
}
