package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpspatial/internal/collector"
	"dpspatial/internal/durable"
	"dpspatial/internal/fleet"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
)

func newDAM(t *testing.T, d int, eps float64) *sam.Mechanism {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sam.NewDAM(dom, eps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func damPipeline(mech *sam.Mechanism, d int, eps float64) *collector.Pipeline {
	return &collector.Pipeline{
		Mech: "DAM", D: d, Eps: eps,
		Scheme: mech.Scheme(), Shape: mech.ReportShape(),
		Domain: collector.DomainSpec{MinX: 0, MinY: 0, Side: 1},
	}
}

func damBuild(t *testing.T) func(p *collector.Pipeline) (collector.Estimator, error) {
	t.Helper()
	return func(p *collector.Pipeline) (collector.Estimator, error) {
		dom, err := p.GridDomain()
		if err != nil {
			return nil, err
		}
		if p.Mech != "DAM" {
			return nil, fmt.Errorf("test builder only builds DAM, not %q", p.Mech)
		}
		return sam.NewDAM(dom, p.Eps)
	}
}

// testFleet is a supervisor fronting n real collectors, all over
// httptest HTTP.
type testFleet struct {
	sup     *fleet.Supervisor
	client  *collector.Client // points at the supervisor
	members []*httptest.Server
}

// startFleet wires n adopt-mode collectors under a supervisor. A nil
// mech starts the supervisor in adopt mode too; otherwise the fleet is
// pre-built and pinned to mech's pipeline.
func startFleet(t *testing.T, n int, mech *sam.Mechanism, pipeline *collector.Pipeline, opts func(*fleet.Config)) *testFleet {
	t.Helper()
	f := &testFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		c, err := collector.New(collector.Config{Build: damBuild(t)})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(c)
		t.Cleanup(srv.Close)
		f.members = append(f.members, srv)
		urls[i] = srv.URL
	}
	cfg := fleet.Config{Members: urls}
	if mech != nil {
		cfg.Mechanism = mech
		cfg.Pipeline = pipeline
	} else {
		cfg.Build = damBuild(t)
	}
	if opts != nil {
		opts(&cfg)
	}
	sup, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sup)
	t.Cleanup(func() { srv.Close(); sup.Close() })
	f.sup = sup
	f.client = collector.NewClient(srv.URL)
	return f
}

// accumulateShards streams deterministic reports through the
// mechanism's client layer, round-robin over the requested number of
// shard aggregates, on a single RNG stream.
func accumulateShards(t *testing.T, mech *sam.Mechanism, shards int, seed uint64) []*fo.Aggregate {
	t.Helper()
	out := make([]*fo.Aggregate, shards)
	for s := range out {
		out[s] = mech.NewAggregate()
	}
	r := rng.New(seed)
	user := 0
	for i := 0; i < mech.NumInputs(); i++ {
		for k := 0; k < 3+(i*5)%11; k++ {
			rep, err := mech.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := out[user%shards].Add(rep); err != nil {
				t.Fatal(err)
			}
			user++
		}
	}
	return out
}

func mergeAll(t *testing.T, mech *sam.Mechanism, shards []*fo.Aggregate) *fo.Aggregate {
	t.Helper()
	merged := mech.NewAggregate()
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	return merged
}

// collectReports draws n raw reports for report-stream submissions.
func collectReports(t *testing.T, mech *sam.Mechanism, n int, seed uint64) []fo.Report {
	t.Helper()
	r := rng.New(seed)
	out := make([]fo.Report, 0, n)
	for i := 0; i < n; i++ {
		rep, err := mech.Report(i%mech.NumInputs(), r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rep)
	}
	return out
}

// TestFleetEstimateByteIdenticalToInProcess is the acceptance check one
// level up from the collector's: shards routed through a supervisor —
// for any member count and either routing policy — decode to exactly
// the histogram EstimateFromAggregate produces on the union of the same
// shards in process. The fleet's first decode is a hierarchical merge
// followed by a cold start, so this holds bit-for-bit.
func TestFleetEstimateByteIdenticalToInProcess(t *testing.T) {
	mech := newDAM(t, 6, 1.5)
	pipeline := damPipeline(mech, 6, 1.5)
	shards := accumulateShards(t, mech, 4, 11)
	reports := collectReports(t, mech, 150, 17)
	inproc := mergeAll(t, mech, shards)
	for _, rep := range reports {
		if err := inproc.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	want, err := mech.EstimateFromAggregate(inproc)
	if err != nil {
		t.Fatal(err)
	}

	for _, members := range []int{1, 2, 3} {
		for _, policy := range fleet.Policies() {
			t.Run(fmt.Sprintf("members=%d/%s", members, policy), func(t *testing.T) {
				f := startFleet(t, members, newDAM(t, 6, 1.5), pipeline, func(c *fleet.Config) {
					c.Policy = policy
				})
				ctx := context.Background()
				// Mix the framings: binary aggregate shards without
				// metadata (the supervisor injects the pin) and one
				// report stream shard.
				for _, s := range shards {
					if _, err := f.client.SubmitAggregate(ctx, s, nil); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := f.client.SubmitReports(ctx, pipeline, reports); err != nil {
					t.Fatal(err)
				}
				got, meta, err := f.client.Estimate(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if meta.Warm {
					t.Fatal("first fleet decode should be a cold start")
				}
				if meta.Reports != inproc.N {
					t.Fatalf("fleet merged %g reports, want %g", meta.Reports, inproc.N)
				}
				if got.Dom != want.Dom {
					t.Fatalf("domain mismatch: %+v vs %+v", got.Dom, want.Dom)
				}
				if !reflect.DeepEqual(got.Mass, want.Mass) {
					t.Fatal("fleet estimate is not byte-identical to the in-process EstimateFromAggregate")
				}
				// The fleet-merged aggregate blob equals the in-process
				// union's encoding, so supervisors chain losslessly.
				merged, err := f.client.FetchAggregate(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(merged, inproc) {
					t.Fatal("fleet-merged aggregate differs from the in-process union")
				}
			})
		}
	}
}

// TestFleetConcurrentRandomizedByteIdentity randomises both the member
// assignment (hash routing over shuffled submission order) and the
// arrival interleaving (concurrent goroutines), across several trials:
// every trial's fleet estimate must be byte-identical to the serial
// in-process decode of the union.
func TestFleetConcurrentRandomizedByteIdentity(t *testing.T) {
	mech := newDAM(t, 5, 2.0)
	pipeline := damPipeline(mech, 5, 2.0)
	shards := accumulateShards(t, mech, 8, 23)
	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}

	shuffle := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4; trial++ {
		policy := fleet.Policies()[trial%len(fleet.Policies())]
		f := startFleet(t, 3, newDAM(t, 5, 2.0), pipeline, func(c *fleet.Config) {
			c.Policy = policy
		})
		ctx := context.Background()
		order := shuffle.Perm(len(shards))
		var wg sync.WaitGroup
		errs := make(chan error, len(shards))
		for _, i := range order {
			wg.Add(1)
			go func(shard *fo.Aggregate) {
				defer wg.Done()
				if _, err := f.client.SubmitAggregate(ctx, shard, nil); err != nil {
					errs <- err
				}
			}(shards[i])
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		got, _, err := f.client.Estimate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Mass, want.Mass) {
			t.Fatalf("trial %d (%s): concurrent randomized fleet estimate differs from the serial decode", trial, policy)
		}
	}
}

// TestFleetMixedVersionShards routes a legacy DPA1 blob and a DPA2 blob
// through the supervisor and checks the fleet estimate matches the
// all-DPA2 union — mixed-version fleets merge transparently.
func TestFleetMixedVersionShards(t *testing.T) {
	mech := newDAM(t, 5, 1.2)
	pipeline := damPipeline(mech, 5, 1.2)
	shards := accumulateShards(t, mech, 2, 31)
	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}

	f := startFleet(t, 2, newDAM(t, 5, 1.2), pipeline, nil)
	ctx := context.Background()
	v1, err := shards[0].MarshalBinaryV1()
	if err != nil {
		t.Fatal(err)
	}
	if string(v1[:4]) != "DPA1" {
		t.Fatalf("legacy blob has magic %q", v1[:4])
	}
	if _, err := f.client.SubmitAggregateBlob(ctx, v1, nil); err != nil {
		t.Fatalf("DPA1 submission rejected by the fleet: %v", err)
	}
	if _, err := f.client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("mixed DPA1/DPA2 fleet estimate differs from the all-DPA2 union decode")
	}
}

// TestFleetTransactionalAdoption starts an adopt-mode supervisor over
// adopt-mode members: rejected first submissions must lock neither the
// fleet nor any member, a valid one pins the pipeline fleet-wide, and
// mismatched later submissions are refused at the supervisor.
func TestFleetTransactionalAdoption(t *testing.T) {
	mech := newDAM(t, 5, 1.5)
	pipeline := damPipeline(mech, 5, 1.5)
	f := startFleet(t, 2, nil, nil, nil)
	ctx := context.Background()
	shards := accumulateShards(t, mech, 2, 3)

	// No metadata, no pin: refused before any member sees it.
	if _, err := f.client.SubmitAggregate(ctx, shards[0], nil); err == nil {
		t.Fatal("headerless submission before adoption should fail")
	}
	// A valid header on a blob of the wrong shape: the member must
	// reject the shard, and the rejection must roll back adoption
	// everywhere.
	foreign := newDAM(t, 6, 2.0)
	if _, err := f.client.SubmitAggregate(ctx, foreign.NewAggregate(), pipeline); err == nil {
		t.Fatal("mismatched blob should be rejected")
	}
	stats, err := f.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scheme != "" {
		t.Fatalf("rejected submission locked the fleet to %q", stats.Scheme)
	}

	// A valid first submission adopts fleet-wide.
	if _, err := f.client.SubmitAggregate(ctx, shards[0], pipeline); err != nil {
		t.Fatal(err)
	}
	// A later bare-blob submission routed to the *other* member works
	// too: the supervisor injects the pinned pipeline, so the fresh
	// member adopts on contact.
	if _, err := f.client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	// Same scheme, different domain: refused once pinned.
	other := *pipeline
	other.Domain = collector.DomainSpec{MinX: 40.7, MinY: -74.0, Side: 0.2}
	if _, err := f.client.SubmitAggregate(ctx, shards[1], &other); err == nil {
		t.Fatal("same-scheme shard from a different domain should be refused")
	}
	// And the fleet estimate covers both members' shards.
	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := f.client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("adopted fleet's estimate differs from the in-process union decode")
	}
}

// gate wraps a member handler so tests can take the member down (every
// request answers 503) and bring it back, without tearing down the
// listener.
type gate struct {
	down atomic.Bool
	next http.Handler
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		http.Error(w, `{"error":"member down for maintenance"}`, http.StatusServiceUnavailable)
		return
	}
	g.next.ServeHTTP(w, r)
}

// TestFleetFailoverAndEstimateSafety takes a member down and checks (a)
// submissions fail over to the surviving member and are counted, (b)
// the estimate refuses with 503 while a member holding routed shards is
// away — serving a partial union would silently drop data — and (c)
// everything recovers when the member returns.
func TestFleetFailoverAndEstimateSafety(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 3, 7)

	gates := make([]*gate, 2)
	urls := make([]string, 2)
	for i := range gates {
		c, err := collector.New(collector.Config{Build: damBuild(t)})
		if err != nil {
			t.Fatal(err)
		}
		gates[i] = &gate{next: c}
		srv := httptest.NewServer(gates[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	sup, err := fleet.New(fleet.Config{
		Members: urls, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(supSrv.Close)
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	// Shard 0 lands on some member; take THAT member down and submit
	// two more — both must fail over to the surviving one.
	resp0, err := client.SubmitAggregate(ctx, shards[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	downIdx := 1
	if resp0.Member == urls[0] {
		downIdx = 0
	}
	gates[downIdx].down.Store(true)
	for _, s := range shards[1:] {
		resp, err := client.SubmitAggregate(ctx, s, nil)
		if err != nil {
			t.Fatalf("submission with one member down should fail over: %v", err)
		}
		if resp.Member == urls[downIdx] {
			t.Fatal("submission reported the down member as its route")
		}
	}
	stats := fetchFleetStats(t, supSrv.URL)
	if stats.Failovers == 0 {
		t.Fatal("failovers not counted")
	}
	downReported := false
	for _, m := range stats.Members {
		if m.URL == urls[downIdx] && !m.Healthy {
			downReported = true
		}
	}
	if !downReported {
		t.Fatal("down member not reported unhealthy in fleet stats")
	}

	// The down member holds shard 0, so the estimate must refuse rather
	// than serve a partial union that silently drops it.
	if _, _, err := client.Estimate(ctx); err == nil {
		t.Fatal("estimate with a shard-holding member down should fail")
	}

	// Member returns: the estimate covers all three shards again.
	gates[downIdx].down.Store(false)
	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("post-recovery fleet estimate differs from the in-process union decode")
	}
}

// TestFleetEstimateSurvivesEmptyMemberDown takes a member down BEFORE
// it ever accepted a shard: submissions fail over and the estimate
// still serves — an unreachable member that provably holds nothing
// routed must not block the fleet.
func TestFleetEstimateSurvivesEmptyMemberDown(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 2, 19)

	gates := make([]*gate, 2)
	urls := make([]string, 2)
	for i := range gates {
		c, err := collector.New(collector.Config{Build: damBuild(t)})
		if err != nil {
			t.Fatal(err)
		}
		gates[i] = &gate{next: c}
		srv := httptest.NewServer(gates[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	gates[1].down.Store(true)
	sup, err := fleet.New(fleet.Config{
		Members: urls, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(supSrv.Close)
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	for _, s := range shards {
		resp, err := client.SubmitAggregate(ctx, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Member != urls[0] {
			t.Fatalf("submission landed on %s, want the live member %s", resp.Member, urls[0])
		}
	}
	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := client.Estimate(ctx)
	if err != nil {
		t.Fatalf("estimate with an empty member down should serve: %v", err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("estimate with an empty member down differs from the union decode")
	}
}

// abortOnce processes the first POST for real but kills the connection
// before any response bytes leave — the lost-ack failure mode a
// supervisor must NOT fail over on (the shard may have merged).
type abortOnce struct {
	mu      sync.Mutex
	aborted bool
	next    http.Handler
}

func (a *abortOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	abort := r.Method == http.MethodPost && !a.aborted
	if abort {
		a.aborted = true
	}
	a.mu.Unlock()
	if abort {
		rec := httptest.NewRecorder()
		a.next.ServeHTTP(rec, r)
		panic(http.ErrAbortHandler)
	}
	a.next.ServeHTTP(w, r)
}

// TestFleetLostAckStickyExactlyOnce drives the double-merge hazard: a
// member merges a shard but its ack is lost. The supervisor must not
// fail the shard over to another member — it pins the submission ID to
// the suspect member and answers 503; the client's retry (same ID)
// routes back, the member's idempotency log replays the ack, and the
// fleet estimate still counts the shard exactly once.
func TestFleetLostAckStickyExactlyOnce(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 2, 37)

	urls := make([]string, 2)
	for i := range urls {
		c, err := collector.New(collector.Config{Build: damBuild(t)})
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = c
		if i == 0 {
			h = &abortOnce{next: c}
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	sup, err := fleet.New(fleet.Config{
		Members: urls, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(supSrv.Close)
	ctx := context.Background()

	// Route shard 0 so it lands on the aborting member 0 (round-robin
	// starts there), with client retries driving the recovery loop.
	client := collector.NewClient(supSrv.URL)
	client.MaxRetries = 3
	client.RetryBackoff = time.Millisecond
	resp, err := client.SubmitAggregate(ctx, shards[0], nil)
	if err != nil {
		t.Fatalf("lost-ack submission should recover via the sticky retry: %v", err)
	}
	if resp.Member != urls[0] {
		t.Fatalf("recovered ack came from %s; the submission must stay pinned to %s", resp.Member, urls[0])
	}
	if !resp.Duplicate {
		t.Fatal("recovered ack should be marked duplicate (the aborted attempt merged)")
	}
	if _, err := client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}

	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("lost-ack recovery double-merged: fleet estimate differs from the single-merge union")
	}
	stats := fetchFleetStats(t, supSrv.URL)
	if stats.Routed != 2 || stats.Duplicates != 1 {
		t.Fatalf("lost-ack recovery miscounted: routed %d, duplicates %d", stats.Routed, stats.Duplicates)
	}
}

// TestFleetStackedSupervisorsUnknownState stacks a supervisor on a
// supervisor and drives the lost-ack case through both tiers: the
// bottom collector merges a shard but its ack dies, the lower
// supervisor answers 503 marked unknown-state, and the UPPER supervisor
// must honour that mark — pinning the lower tier instead of failing the
// shard over to its other member, which would double-merge. The
// client's same-ID retry then recovers the ack through both idempotency
// logs and the fleet estimate counts the shard exactly once.
func TestFleetStackedSupervisorsUnknownState(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 1, 53)

	// Bottom collector C1 loses its first ack after merging.
	c1, err := collector.New(collector.Config{Build: damBuild(t)})
	if err != nil {
		t.Fatal(err)
	}
	c1Srv := httptest.NewServer(&abortOnce{next: c1})
	t.Cleanup(c1Srv.Close)
	// Lower supervisor S1 fronts only C1.
	s1, err := fleet.New(fleet.Config{
		Members: []string{c1Srv.URL}, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1Srv := httptest.NewServer(s1)
	t.Cleanup(s1Srv.Close)
	// A sibling collector C2 the upper tier must NOT fail over to.
	c2, err := collector.New(collector.Config{Build: damBuild(t)})
	if err != nil {
		t.Fatal(err)
	}
	c2Srv := httptest.NewServer(c2)
	t.Cleanup(c2Srv.Close)
	// Upper supervisor S0 fronts S1 (preferred first by round-robin)
	// and C2.
	s0, err := fleet.New(fleet.Config{
		Members: []string{s1Srv.URL, c2Srv.URL}, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	s0Srv := httptest.NewServer(s0)
	t.Cleanup(s0Srv.Close)
	ctx := context.Background()

	client := collector.NewClient(s0Srv.URL)
	client.MaxRetries = 3
	client.RetryBackoff = time.Millisecond
	resp, err := client.SubmitAggregate(ctx, shards[0], nil)
	if err != nil {
		t.Fatalf("stacked lost-ack submission should recover: %v", err)
	}
	if resp.Member != s1Srv.URL {
		t.Fatalf("recovered ack came via %s; must stay pinned to the lower supervisor %s (failover would double-merge)", resp.Member, s1Srv.URL)
	}
	want, err := mech.EstimateFromAggregate(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	got, meta, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reports != shards[0].N {
		t.Fatalf("fleet holds %g reports, want %g (exactly one merge)", meta.Reports, shards[0].N)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("stacked recovery double-merged: estimate differs from the single-shard decode")
	}
}

// TestFleetFailoverOnMemberLocalRefusal checks that a member refusing
// for member-local reasons — here a misconfigured auth token answering
// 401 — does not fail the submission fleet-wide: the supervisor fails
// over to a member that accepts.
func TestFleetFailoverOnMemberLocalRefusal(t *testing.T) {
	mech := newDAM(t, 5, 1.5)
	pipeline := damPipeline(mech, 5, 1.5)
	shards := accumulateShards(t, mech, 2, 43)

	urls := make([]string, 2)
	for i := range urls {
		cfg := collector.Config{Build: damBuild(t)}
		if i == 0 {
			// Member 0 demands a token the supervisor doesn't present.
			cfg.AuthToken = "rotated-out-of-band"
		}
		c, err := collector.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(c)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	sup, err := fleet.New(fleet.Config{
		Members: urls, Mechanism: mech, Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(supSrv.Close)
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	for _, s := range shards {
		resp, err := client.SubmitAggregate(ctx, s, nil)
		if err != nil {
			t.Fatalf("401 from one member should fail over, not fail the fleet: %v", err)
		}
		if resp.Member != urls[1] {
			t.Fatalf("submission landed on %s, want the accepting member %s", resp.Member, urls[1])
		}
	}
	stats := fetchFleetStats(t, supSrv.URL)
	for _, m := range stats.Members {
		if m.URL == urls[0] && m.Healthy {
			t.Fatal("refusing member should be marked unhealthy")
		}
	}
}

// swapHandler lets a test replace a member's backing collector in
// place, simulating a process restart behind a stable URL.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// TestFleetRefusesRestartedEmptyMember restarts a pre-built member
// after it absorbed shards: the fresh process answers GET /v1/aggregate
// with 200 and an empty aggregate, and the estimate must refuse — the
// member was positively seen holding reports, so an empty answer means
// the data is gone, not that there was none.
func TestFleetRefusesRestartedEmptyMember(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 1, 47)

	build := func() http.Handler {
		c, err := collector.New(collector.Config{Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	front := &swapHandler{h: build()}
	srv := httptest.NewServer(front)
	t.Cleanup(srv.Close)
	sup, err := fleet.New(fleet.Config{
		Members: []string{srv.URL}, Mechanism: mech, Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(supSrv.Close)
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	if _, err := client.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Estimate(ctx); err != nil {
		t.Fatal(err)
	}
	// "Restart" the member: same URL, fresh empty state.
	front.swap(build())
	if _, _, err := client.Estimate(ctx); err == nil {
		t.Fatal("estimate after a member lost its shards should refuse, not serve a partial union")
	}
}

// TestFleetSharedSecretAuth runs members and supervisor with the same
// --auth-token: unauthenticated requests bounce at the supervisor AND
// at the members, /healthz stays open, and the authenticated loop —
// supervisor forwarding the shared secret downstream — works end to
// end.
func TestFleetSharedSecretAuth(t *testing.T) {
	const token = "fleet-s3cret"
	mech := newDAM(t, 5, 1.5)
	pipeline := damPipeline(mech, 5, 1.5)
	shards := accumulateShards(t, mech, 2, 13)

	urls := make([]string, 2)
	for i := range urls {
		c, err := collector.New(collector.Config{Build: damBuild(t), AuthToken: token})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(c)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	sup, err := fleet.New(fleet.Config{
		Members: urls, Mechanism: mech, Pipeline: pipeline, AuthToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(supSrv.Close)
	ctx := context.Background()

	// No token: 401 at the supervisor and at a member; /healthz open.
	bare := collector.NewClient(supSrv.URL)
	if _, err := bare.SubmitAggregate(ctx, shards[0], nil); err == nil {
		t.Fatal("tokenless submission should be refused")
	} else {
		var se *collector.StatusError
		if !errors.As(err, &se) || se.StatusCode != http.StatusUnauthorized {
			t.Fatalf("tokenless submission got %v, want 401", err)
		}
	}
	if err := bare.Health(ctx); err != nil {
		t.Fatalf("healthz should not require the token: %v", err)
	}
	bareMember := collector.NewClient(urls[0])
	if _, err := bareMember.Stats(ctx); err == nil {
		t.Fatal("tokenless member stats should be refused")
	}
	// Wrong token: also 401.
	wrong := collector.NewClient(supSrv.URL)
	wrong.AuthToken = "not-the-secret"
	if _, err := wrong.Stats(ctx); err == nil {
		t.Fatal("wrong-token request should be refused")
	}

	// The shared secret unlocks the whole loop.
	authed := collector.NewClient(supSrv.URL)
	authed.AuthToken = token
	for _, s := range shards {
		if _, err := authed.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatal(err)
		}
	}
	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := authed.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("authenticated fleet estimate differs from the in-process union decode")
	}
}

// TestFleetWarmRefreshStats checks the second fleet decode warm-starts
// from the first and that /v1/stats accumulates the iteration saving
// and the per-member routing counters.
func TestFleetWarmRefreshStats(t *testing.T) {
	mech := newDAM(t, 4, 3.5)
	pipeline := damPipeline(mech, 4, 3.5)
	shards := accumulateShards(t, mech, 2, 5)
	f := startFleet(t, 2, mech, pipeline, nil)
	ctx := context.Background()

	if _, err := f.client.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}
	_, meta1, err := f.client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if meta1.Warm {
		t.Fatal("first fleet decode should be cold")
	}
	if _, err := f.client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	_, meta2, err := f.client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.Warm {
		t.Fatal("post-merge fleet decode should warm-start")
	}
	stats, err := f.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reports != shards[0].N+shards[1].N {
		t.Fatalf("fleet absorbed %g reports, want %g", stats.Reports, shards[0].N+shards[1].N)
	}
	if stats.Generation != 2 {
		t.Fatalf("fleet routed %d submissions, want 2", stats.Generation)
	}
}

// fetchFleetStats decodes the supervisor's stats envelope with the
// fleet-specific fields (per-member health, failovers) the generic
// collector client doesn't carry.
func fetchFleetStats(t *testing.T, baseURL string) *fleet.Stats {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet stats returned HTTP %d", resp.StatusCode)
	}
	var stats fleet.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return &stats
}

// TestFleetMemberRestartsWarmFromDataDir is the durability counterpart
// of TestFleetRefusesRestartedEmptyMember: the member runs over a
// durable data directory, dies hard (no snapshot flush), and restarts
// behind the same URL with the same directory. While it is down the
// fleet estimate answers 503; once it rejoins warm, the estimate
// transitions back to 200 with the byte-identical union — no
// re-submission needed — and the supervisor's stats report the rejoin
// and relay the member's durability counters.
func TestFleetMemberRestartsWarmFromDataDir(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 2, 61)
	dir := t.TempDir()

	openMember := func() (http.Handler, *durable.Store) {
		t.Helper()
		st, err := durable.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := collector.New(collector.Config{Build: damBuild(t), Store: st})
		if err != nil {
			t.Fatal(err)
		}
		return c, st
	}
	h1, st1 := openMember()
	front := &swapHandler{h: h1}
	srv := httptest.NewServer(front)
	t.Cleanup(srv.Close)
	sup, err := fleet.New(fleet.Config{
		Members: []string{srv.URL}, Mechanism: mech, Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(supSrv.Close)
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	for _, s := range shards {
		if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatal(err)
		}
	}
	_, want, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// kill -9: the member vanishes mid-flight, WAL unflushed to any
	// snapshot. The estimate must refuse rather than serve a partial
	// union.
	st1.Close()
	front.swap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "connection refused (member down)", http.StatusServiceUnavailable)
	}))
	if _, _, err := client.Estimate(ctx); err == nil {
		t.Fatal("estimate with the only data-holding member down must refuse")
	} else {
		var se *collector.StatusError
		if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("down-member estimate got %v, want 503", err)
		}
	}

	// Warm restart: same URL, same data directory. The WAL replay
	// restores the merged shards, so the next fleet pull revives the
	// member and the estimate is 200 again — byte-identical.
	h2, st2 := openMember()
	t.Cleanup(func() { st2.Close() })
	front.swap(h2)
	_, got, err := client.Estimate(ctx)
	if err != nil {
		t.Fatalf("estimate after warm member restart: %v", err)
	}
	if got.Reports != want.Reports || !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("fleet estimate diverged across the member's crash-restart")
	}

	stats := fetchFleetStats(t, supSrv.URL)
	if len(stats.Members) != 1 {
		t.Fatalf("fleet stats list %d members", len(stats.Members))
	}
	m := stats.Members[0]
	if !m.Healthy || m.Recoveries == 0 {
		t.Fatalf("member rejoin not reflected in stats: %+v", m)
	}
	if m.Durability == nil || m.Durability.RecordsReplayed == 0 {
		t.Fatalf("member durability counters not relayed: %+v", m.Durability)
	}
	if m.Reports != want.Reports {
		t.Fatalf("member reports %g after recovery, want %g", m.Reports, want.Reports)
	}
}
