package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"dpspatial/internal/collector"
	"dpspatial/internal/rangequery"
)

// GET /v1/query one tier up: the supervisor answers the collector's
// query contract from the hierarchical merge of every member's
// aggregate, so the answer is byte-identical to a single collector's
// over the union of all shards — for any member count, routing policy
// and arrival interleaving. A pull that cannot assemble the full union
// (a member holding routed submissions is down) refuses with 503 via
// pullErrorStatus rather than serving a partial answer.

// handleQuery serves GET /v1/query from the fleet-merged state.
func (s *Supervisor) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		collector.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	req, err := collector.ParseQueryRequest(r.URL.Query())
	if err != nil {
		collector.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.answerQuery(r.Context(), req)
	if err != nil {
		status := pullErrorStatus(err)
		if errors.As(err, new(*collector.BadQueryError)) {
			status = http.StatusBadRequest
		}
		collector.WriteError(w, status, err)
		return
	}
	s.met.Queries.With(req.Type).Inc()
	collector.WriteJSON(w, http.StatusOK, resp)
}

// answerQuery mirrors the collector's basis selection over the fleet
// merge: quadtree for TreeEstimator range queries, estimate histogram
// otherwise.
func (s *Supervisor) answerQuery(ctx context.Context, req collector.QueryRequest) (*collector.QueryResponse, error) {
	s.mu.Lock()
	mech := s.mech
	s.mu.Unlock()
	if mech == nil {
		return nil, errNoMechanism
	}
	if te, ok := mech.(collector.TreeEstimator); ok && req.Type == collector.QueryTypeRange {
		tree, gen, n, err := s.rangeTree(ctx, te)
		if err != nil {
			return nil, err
		}
		return collector.AnswerQuery(req, mech.Scheme(), gen, n, tree, nil)
	}
	cur, err := s.refresh(ctx)
	if err != nil {
		return nil, err
	}
	return collector.AnswerQuery(req, mech.Scheme(), cur.gen, cur.n, nil, cur.est)
}

// rangeTree pulls the member aggregates, merges hierarchically and
// decodes the quadtree, reusing the previous decode when the member-blob
// hash is unchanged — the same invalidation rule as the fleet estimate.
// A partial union surfaces as pullMerged's memberDownError (503).
func (s *Supervisor) rangeTree(ctx context.Context, te collector.TreeEstimator) (*rangequery.Quadtree, uint64, float64, error) {
	s.decodeMu.Lock()
	defer s.decodeMu.Unlock()
	merged, hash, err := s.pullMerged(ctx)
	if err != nil {
		return nil, 0, 0, err
	}
	if merged.N == 0 {
		return nil, 0, 0, errNoReports
	}
	s.mu.Lock()
	if s.queryTree != nil && s.queryTreeHash == hash {
		t, gen, n := s.queryTree, s.queryTreeGen, s.queryTreeN
		s.mu.Unlock()
		s.met.QueryCacheHits.With(collector.CacheTree).Inc()
		return t, gen, n, nil
	}
	routed := s.stats.Routed
	s.mu.Unlock()
	s.met.QueryCacheMisses.With(collector.CacheTree).Inc()
	tree, _, err := te.EstimateTreeFromAggregate(merged)
	if err != nil {
		return nil, 0, 0, err
	}
	s.mu.Lock()
	s.queryTree, s.queryTreeHash = tree, hash
	s.queryTreeGen, s.queryTreeN = routed, merged.N
	s.mu.Unlock()
	return tree, routed, merged.N, nil
}
