package fleet

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []*member {
	out := make([]*member, n)
	for i := range out {
		out[i] = &member{url: fmt.Sprintf("http://member-%d:8080", i), healthy: true}
	}
	return out
}

// TestHashRingOrder checks the consistent-hash ring's contract: a key's
// preference order is deterministic, covers every member exactly once,
// and keys spread across members rather than piling on one.
func TestHashRingOrder(t *testing.T) {
	members := ringMembers(5)
	ring := newHashRing(members)
	hits := make(map[string]int)
	for key := 0; key < 2000; key++ {
		body := []byte(fmt.Sprintf("submission-body-%d", key))
		order := ring.order(body)
		if len(order) != len(members) {
			t.Fatalf("order has %d members, want %d", len(order), len(members))
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m.url] {
				t.Fatalf("member %s appears twice in the order", m.url)
			}
			seen[m.url] = true
		}
		again := ring.order(body)
		for i := range order {
			if order[i] != again[i] {
				t.Fatal("hash order is not deterministic")
			}
		}
		hits[order[0].url]++
	}
	for _, m := range members {
		if hits[m.url] == 0 {
			t.Fatalf("member %s never preferred — ring badly unbalanced", m.url)
		}
	}
}

// TestRoundRobinOrder checks the rotation covers members evenly and the
// failover order walks the rest of the fleet.
func TestRoundRobinOrder(t *testing.T) {
	members := ringMembers(3)
	rr := &roundRobin{members: members}
	firsts := make(map[string]int)
	for i := 0; i < 9; i++ {
		order := rr.order(nil)
		if len(order) != 3 {
			t.Fatalf("order has %d members, want 3", len(order))
		}
		firsts[order[0].url]++
	}
	for _, m := range members {
		if firsts[m.url] != 3 {
			t.Fatalf("member %s preferred %d times in 9 picks, want 3", m.url, firsts[m.url])
		}
	}
}

// TestNewRouterRejectsUnknownPolicy pins the config error path.
func TestNewRouterRejectsUnknownPolicy(t *testing.T) {
	if _, err := newRouter("random", ringMembers(2)); err == nil {
		t.Fatal("unknown policy should be rejected")
	}
}
