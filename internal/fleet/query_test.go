package fleet_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dpspatial/internal/collector"
	"dpspatial/internal/fleet"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/rng"
)

// fleetSameAnswer asserts a fleet-served query response carries the
// identical answer block as the in-process reference on the shard
// union. Generation is the fleet's routed counter, checked separately.
func fleetSameAnswer(t *testing.T, label string, got, want *collector.QueryResponse) {
	t.Helper()
	if got.Type != want.Type || got.Scheme != want.Scheme || got.Basis != want.Basis {
		t.Fatalf("%s: served (%s %s %s), reference (%s %s %s)",
			label, got.Type, got.Scheme, got.Basis, want.Type, want.Scheme, want.Basis)
	}
	if got.Reports != want.Reports {
		t.Fatalf("%s: served over %g reports, reference %g", label, got.Reports, want.Reports)
	}
	if !reflect.DeepEqual(got.Range, want.Range) {
		t.Fatalf("%s: served range answer %+v, reference %+v", label, got.Range, want.Range)
	}
	if !reflect.DeepEqual(got.TopK, want.TopK) {
		t.Fatalf("%s: served top-k answer %+v, reference %+v", label, got.TopK, want.TopK)
	}
}

// TestFleetQueryByteIdenticalToInProcess is the /v1/query acceptance
// check one tier up: for any member count and either routing policy,
// range and top-k answers served by the supervisor equal, bit for bit,
// AnswerQueryFromAggregate on the in-process union of the same shards.
func TestFleetQueryByteIdenticalToInProcess(t *testing.T) {
	mech := newDAM(t, 6, 1.5)
	pipeline := damPipeline(mech, 6, 1.5)
	shards := accumulateShards(t, mech, 4, 11)
	union := mergeAll(t, mech, shards)

	rangeReq := collector.QueryRequest{
		Type:  collector.QueryTypeRange,
		Range: rangequery.Query{X0: 0, Y0: 1, X1: 3, Y1: 4},
	}
	topkReq := collector.QueryRequest{Type: collector.QueryTypeTopK, K: 6}
	wantRange, err := collector.AnswerQueryFromAggregate(mech, union, rangeReq)
	if err != nil {
		t.Fatal(err)
	}
	wantTopK, err := collector.AnswerQueryFromAggregate(mech, union, topkReq)
	if err != nil {
		t.Fatal(err)
	}

	for _, members := range []int{1, 2, 3} {
		for _, policy := range fleet.Policies() {
			t.Run(fmt.Sprintf("members=%d/%s", members, policy), func(t *testing.T) {
				f := startFleet(t, members, newDAM(t, 6, 1.5), pipeline, func(c *fleet.Config) {
					c.Policy = policy
				})
				ctx := context.Background()
				for _, s := range shards {
					if _, err := f.client.SubmitAggregate(ctx, s, nil); err != nil {
						t.Fatal(err)
					}
				}
				gotRange, err := f.client.Query(ctx, rangeReq)
				if err != nil {
					t.Fatal(err)
				}
				fleetSameAnswer(t, "range", gotRange, wantRange)
				gotTopK, err := f.client.Query(ctx, topkReq)
				if err != nil {
					t.Fatal(err)
				}
				fleetSameAnswer(t, "topk", gotTopK, wantTopK)
				if gotRange.Generation != uint64(len(shards)) {
					t.Fatalf("fleet served generation %d, want routed count %d",
						gotRange.Generation, len(shards))
				}
			})
		}
	}
}

// TestFleetQueryAHEADTreeBasis serves tree-basis range answers through
// a two-member AHEAD fleet: the supervisor's quadtree over the
// hierarchically merged member aggregates must answer exactly like the
// in-process decode of the union, and keep doing so after more shards
// arrive (the member-state hash invalidates the cached tree).
func TestFleetQueryAHEADTreeBasis(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rangequery.NewAHEAD(dom, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pipeline := &collector.Pipeline{
		Mech: "AHEAD", D: 8, Eps: 1.5,
		Scheme: a.Scheme(), Shape: a.ReportShape(),
		Domain: collector.DomainSpec{MinX: 0, MinY: 0, Side: 1},
	}

	// Two pre-built members under a pre-built supervisor — all sharing
	// the mechanism is fine: decodes build fresh trees.
	urls := make([]string, 2)
	for i := range urls {
		c, err := collector.New(collector.Config{Mechanism: a})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(c)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	sup, err := fleet.New(fleet.Config{Members: urls, Mechanism: a, Pipeline: pipeline})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(func() { supSrv.Close(); sup.Close() })
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	// Accumulate three shards on one stream; submit two, query, submit
	// the third, query again.
	shards := make([]*fo.Aggregate, 3)
	r := rng.New(41)
	for s := range shards {
		shards[s] = a.NewAggregate()
	}
	user := 0
	for i := 0; i < a.NumInputs(); i++ {
		for k := 0; k < 2+(i*3)%7; k++ {
			rep, err := a.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := shards[user%3].Add(rep); err != nil {
				t.Fatal(err)
			}
			user++
		}
	}
	req := collector.QueryRequest{
		Type:  collector.QueryTypeRange,
		Range: rangequery.Query{X0: 2, Y0: 0, X1: 7, Y1: 5},
	}

	for _, s := range shards[:2] {
		if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatal(err)
		}
	}
	union2 := shards[0].Clone()
	if err := union2.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	got2, err := client.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := collector.AnswerQueryFromAggregate(a, union2, req)
	if err != nil {
		t.Fatal(err)
	}
	fleetSameAnswer(t, "two shards", got2, want2)
	if got2.Basis != collector.QueryBasisTree {
		t.Fatalf("fleet AHEAD range answer served over %q, want the tree basis", got2.Basis)
	}

	if _, err := client.SubmitAggregate(ctx, shards[2], nil); err != nil {
		t.Fatal(err)
	}
	union3 := union2.Clone()
	if err := union3.Merge(shards[2]); err != nil {
		t.Fatal(err)
	}
	got3, err := client.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want3, err := collector.AnswerQueryFromAggregate(a, union3, req)
	if err != nil {
		t.Fatal(err)
	}
	fleetSameAnswer(t, "three shards", got3, want3)
}

// TestFleetQueryRefusesPartialUnion takes down a member that holds
// routed shards: /v1/query must answer 503 rather than serve an answer
// over a partial union, and recover once the member returns.
func TestFleetQueryRefusesPartialUnion(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shards := accumulateShards(t, mech, 3, 7)

	gates := make([]*gate, 2)
	urls := make([]string, 2)
	for i := range gates {
		c, err := collector.New(collector.Config{Build: damBuild(t)})
		if err != nil {
			t.Fatal(err)
		}
		gates[i] = &gate{next: c}
		srv := httptest.NewServer(gates[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	sup, err := fleet.New(fleet.Config{
		Members: urls, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	supSrv := httptest.NewServer(sup)
	t.Cleanup(func() { supSrv.Close(); sup.Close() })
	client := collector.NewClient(supSrv.URL)
	ctx := context.Background()

	resp0, err := client.SubmitAggregate(ctx, shards[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	downIdx := 1
	if resp0.Member == urls[0] {
		downIdx = 0
	}
	gates[downIdx].down.Store(true)
	for _, s := range shards[1:] {
		if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatalf("submission with one member down should fail over: %v", err)
		}
	}

	for _, req := range []collector.QueryRequest{
		{Type: collector.QueryTypeRange, Range: rangequery.Query{X0: 0, Y0: 0, X1: 2, Y1: 2}},
		{Type: collector.QueryTypeTopK, K: 3},
	} {
		_, err := client.Query(ctx, req)
		var se *collector.StatusError
		if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s query with a shard-holding member down answered %v, want HTTP 503", req.Type, err)
		}
	}

	// Member returns: the fleet answers over the full union again.
	gates[downIdx].down.Store(false)
	union := mergeAll(t, mech, shards)
	got, err := client.Query(ctx, collector.QueryRequest{Type: collector.QueryTypeTopK, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := collector.AnswerQueryFromAggregate(mech, union, collector.QueryRequest{Type: collector.QueryTypeTopK, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	fleetSameAnswer(t, "post-recovery", got, want)
}
