package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
)

// Routing policies. Both return a full preference order over the fleet,
// not a single pick, so the forwarding loop can fail over past unhealthy
// or refusing members deterministically. The fleet estimate is
// byte-identical under every policy — Merge is associative-commutative
// over exactly-representable counts, so where a shard lands never
// changes what the union decodes to — which is why the policy is purely
// an operational knob.
const (
	// PolicyRoundRobin cycles submissions across members in order — the
	// default, best for evenly spreading decode and merge load.
	PolicyRoundRobin = "round-robin"
	// PolicyHash routes by consistent hash of the submission body over a
	// ring of virtual nodes: the same shard bytes always prefer the same
	// member, and losing a member only reroutes that member's arc.
	PolicyHash = "hash"
)

// Policies lists the routing policies a supervisor accepts.
func Policies() []string { return []string{PolicyRoundRobin, PolicyHash} }

// router yields a preference-ordered slice of members for a submission
// body. Only the hash policy actually reads the bytes.
type router interface {
	// order returns every fleet member, most-preferred first.
	order(body []byte) []*member
}

func newRouter(policy string, members []*member) (router, error) {
	switch policy {
	case "", PolicyRoundRobin:
		return &roundRobin{members: members}, nil
	case PolicyHash:
		return newHashRing(members), nil
	default:
		return nil, fmt.Errorf("fleet: unknown routing policy %q (have %v)", policy, Policies())
	}
}

// roundRobin rotates the preference order one member per submission.
type roundRobin struct {
	members []*member
	next    atomic.Uint64
}

func (r *roundRobin) order([]byte) []*member {
	start := int((r.next.Add(1) - 1) % uint64(len(r.members)))
	out := make([]*member, 0, len(r.members))
	for i := range r.members {
		out = append(out, r.members[(start+i)%len(r.members)])
	}
	return out
}

// hashRing is a consistent-hash ring with virtual nodes: each member
// owns ringVnodes points on the ring, and a submission prefers the
// first member clockwise of its key. Walking the ring yields the
// failover order, so a down member's arc spills to its ring successors
// while every other submission keeps its assignment.
type hashRing struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash uint64
	m    *member
}

const ringVnodes = 64

func newHashRing(members []*member) *hashRing {
	r := &hashRing{n: len(members)}
	for _, m := range members {
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", m.url, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), m: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].m.url < r.points[j].m.url
	})
	return r
}

func (r *hashRing) order(body []byte) []*member {
	h := fnv.New64a()
	_, _ = h.Write(body)
	key := h.Sum64()
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]*member, 0, r.n)
	seen := make(map[*member]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.m] {
			seen[p.m] = true
			out = append(out, p.m)
		}
	}
	return out
}
