package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dpspatial/internal/collector"
	"dpspatial/internal/fleet"
	"dpspatial/internal/trace"
)

// ringTrace polls a tracer's ring for a trace ID: completed traces are
// pushed after the response is written, so the client can hold the ack
// a beat before every tier's ring has the entry.
func ringTrace(t *testing.T, tr *trace.Tracer, id string) *trace.TraceData {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, td := range tr.Snapshot(0, "", 0) {
			if td.TraceID == id {
				return &td
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never reached the %s ring", id, tr.Service())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func traceSpan(td *trace.TraceData, name string) *trace.SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

func hasEvent(sp *trace.SpanData, name string) bool {
	if sp == nil {
		return false
	}
	for _, e := range sp.Events {
		if e.Name == name {
			return true
		}
	}
	return false
}

// TestFleetTraceStackedWithFailover drives ONE submission through a
// stacked topology — outer supervisor → inner supervisor → collector —
// with the outer supervisor's first-preference member down, and asserts
// a single W3C trace ID stitches all three tiers together: the outer
// ring shows the failed attempt plus the failover event, the inner
// supervisor's root span is parented on the outer's surviving route
// attempt, and the collector's root span is parented on the inner's —
// with the merge/ack span chain at the bottom.
func TestFleetTraceStackedWithFailover(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	shard := accumulateShards(t, mech, 1, 23)[0]

	// Bottom tier: one real collector, plus a gated member that answers
	// 503 from the start — the outer supervisor's round-robin prefers it
	// for the first submission and must fail over past it.
	c1, err := collector.New(collector.Config{Build: damBuild(t)})
	if err != nil {
		t.Fatal(err)
	}
	c1Srv := httptest.NewServer(c1)
	t.Cleanup(c1Srv.Close)

	down := &gate{}
	down.down.Store(true)
	downSrv := httptest.NewServer(down)
	t.Cleanup(downSrv.Close)

	// Middle tier: a supervisor fronting just the collector.
	s1, err := fleet.New(fleet.Config{
		Members: []string{c1Srv.URL}, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1Srv := httptest.NewServer(s1)
	t.Cleanup(func() { s1Srv.Close(); s1.Close() })

	// Top tier: the down member first, the inner supervisor second.
	s0, err := fleet.New(fleet.Config{
		Members: []string{downSrv.URL, s1Srv.URL}, Mechanism: newDAM(t, 5, 1.8), Pipeline: pipeline,
	})
	if err != nil {
		t.Fatal(err)
	}
	s0Srv := httptest.NewServer(s0)
	t.Cleanup(func() { s0Srv.Close(); s0.Close() })

	client := collector.NewClient(s0Srv.URL)
	resp, err := client.SubmitAggregate(context.Background(), shard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 32 {
		t.Fatalf("ack trace ID %q is not 32 hex chars", resp.TraceID)
	}

	// One trace ID, three rings.
	outer := ringTrace(t, s0.Tracer(), resp.TraceID)
	inner := ringTrace(t, s1.Tracer(), resp.TraceID)
	leaf := ringTrace(t, c1.Tracer(), resp.TraceID)

	// Outer: root + two route attempts — the failed hop and the
	// survivor — and the failover event pinned on the root span.
	outerRoot := &outer.Spans[0]
	if !hasEvent(outerRoot, "failover") {
		t.Fatalf("outer root span lacks the failover event (events: %+v)", outerRoot.Events)
	}
	var failed, survived *trace.SpanData
	for i := range outer.Spans {
		sp := &outer.Spans[i]
		if sp.Name != "fleet.route.attempt" {
			continue
		}
		if sp.Error != "" {
			failed = sp
		} else {
			survived = sp
		}
	}
	if failed == nil || survived == nil {
		t.Fatalf("outer trace should hold one failed and one surviving route attempt: %+v", outer.Spans)
	}
	if failed.Attrs["member"] != downSrv.URL || survived.Attrs["member"] != s1Srv.URL {
		t.Fatalf("attempt member attrs wrong: failed=%v survived=%v", failed.Attrs["member"], survived.Attrs["member"])
	}
	if failed.ParentSpanID != outerRoot.SpanID || survived.ParentSpanID != outerRoot.SpanID {
		t.Fatal("route attempts not parented on the outer root span")
	}

	// Inner: its root is the REMOTE child of the outer's surviving
	// attempt — the cross-process edge of the trace.
	innerRoot := &inner.Spans[0]
	if !innerRoot.Remote {
		t.Fatal("inner supervisor root span not marked remote")
	}
	if innerRoot.ParentSpanID != survived.SpanID {
		t.Fatalf("inner root parent %s, want the outer surviving attempt %s", innerRoot.ParentSpanID, survived.SpanID)
	}
	innerAttempt := traceSpan(inner, "fleet.route.attempt")
	if innerAttempt == nil || innerAttempt.Error != "" {
		t.Fatalf("inner supervisor route attempt missing or failed: %+v", innerAttempt)
	}

	// Leaf: the collector's root hangs off the inner attempt, with the
	// merge/ack chain below it.
	leafRoot := &leaf.Spans[0]
	if !leafRoot.Remote || leafRoot.ParentSpanID != innerAttempt.SpanID {
		t.Fatalf("collector root (remote=%v parent=%s) not parented on the inner attempt %s",
			leafRoot.Remote, leafRoot.ParentSpanID, innerAttempt.SpanID)
	}
	for _, name := range []string{"collector.body.read", "collector.merge", "collector.ack"} {
		sp := traceSpan(leaf, name)
		if sp == nil {
			t.Fatalf("collector trace lacks the %s span", name)
		}
		if sp.ParentSpanID != leafRoot.SpanID {
			t.Fatalf("%s not parented on the collector root", name)
		}
	}

	// All three tiers agree this is one trace.
	if outer.TraceID != inner.TraceID || inner.TraceID != leaf.TraceID {
		t.Fatal("tiers disagree on the trace ID")
	}
}

// TestFleetTraceScrapeUnderTraffic hammers a supervisor with concurrent
// submissions while scraping /v1/traces in a loop: the ring must stay
// race-free (the -race CI run is the point of this test) and every
// accepted submission must eventually complete a trace.
func TestFleetTraceScrapeUnderTraffic(t *testing.T) {
	mech := newDAM(t, 5, 1.8)
	pipeline := damPipeline(mech, 5, 1.8)
	f := startFleet(t, 2, newDAM(t, 5, 1.8), pipeline, nil)

	shard := accumulateShards(t, mech, 1, 31)[0]
	blob, err := shard.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 4, 20
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := http.Get(f.client.BaseURL + collector.TracesPath + "?min_ms=0")
			if err != nil {
				continue
			}
			body, _ := io.ReadAll(res.Body)
			res.Body.Close()
			var dump struct {
				Traces []trace.TraceData `json:"traces"`
			}
			if err := json.Unmarshal(body, &dump); err != nil {
				t.Errorf("traces scrape not JSON under traffic: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("trace-load-%d-%d", w, i)
				if _, err := f.client.SubmitAggregateBlobWithID(ctx, blob, nil, id); err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	// Every submission completes a trace (pushed post-response, so
	// poll); the ring holds at most its capacity of them.
	deadline := time.Now().Add(5 * time.Second)
	for f.sup.Tracer().Completed() < workers*perWorker {
		if time.Now().After(deadline) {
			t.Fatalf("completed %d traces, want >= %d", f.sup.Tracer().Completed(), workers*perWorker)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(f.sup.Tracer().Snapshot(0, "", 0)); got > trace.DefaultCapacity {
		t.Fatalf("ring snapshot %d entries, over capacity %d", got, trace.DefaultCapacity)
	}
}
