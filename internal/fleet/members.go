package fleet

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"dpspatial/internal/collector"
)

// member is one downstream collector in the fleet: its client, its
// last-known health, and the supervisor-side routing counters. Health is
// advisory — routing prefers healthy members but falls back to unhealthy
// ones when nothing else accepts, so a recovered member rejoins the
// fleet on its first successful exchange even without a probe loop.
type member struct {
	url    string
	client *collector.Client
	// inst mirrors the routing counters into the supervisor's /metrics
	// per-member series; nil (and a no-op) for members built outside a
	// supervisor.
	inst *memberInstruments

	mu         sync.Mutex
	healthy    bool
	lastError  string
	routed     uint64 // submissions this supervisor routed here and the member accepted
	failovers  uint64 // submissions that had to fail over past this member
	recoveries uint64 // unhealthy→healthy transitions: rejoins after an outage
	// nonEmpty latches once the member was ever observed holding merged
	// reports (via an aggregate pull or its stats) — including shards
	// that reached it outside this supervisor, or before a supervisor
	// restart wiped the routed counter. An unreachable member with this
	// set must fail the fleet estimate: its data cannot be proven
	// absent from the union.
	nonEmpty bool
}

func newMember(url, authToken string, httpClient *http.Client) *member {
	c := collector.NewClient(url)
	c.AuthToken = authToken
	c.HTTPClient = httpClient
	return &member{url: strings.TrimRight(url, "/"), client: c, healthy: true}
}

func (m *member) isHealthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthy
}

func (m *member) markHealthy() {
	m.mu.Lock()
	if !m.healthy {
		m.recoveries++
		m.inst.countRecovery()
	}
	m.healthy, m.lastError = true, ""
	m.inst.setHealthy(true)
	m.mu.Unlock()
}

func (m *member) markUnhealthy(err error) {
	m.mu.Lock()
	m.healthy = false
	if err != nil {
		m.lastError = err.Error()
	}
	m.inst.setHealthy(false)
	m.mu.Unlock()
}

func (m *member) countRouted() {
	m.mu.Lock()
	m.routed++
	m.inst.countRouted()
	m.mu.Unlock()
}

func (m *member) countFailover() {
	m.mu.Lock()
	m.failovers++
	m.inst.countFailover()
	m.mu.Unlock()
}

// noteNonEmpty latches the member as having been seen with data.
func (m *member) noteNonEmpty() {
	m.mu.Lock()
	m.nonEmpty = true
	m.mu.Unlock()
}

// mayHoldData reports whether an unreachable member could hold shards
// the fleet estimate must cover: the supervisor routed submissions to
// it, or it was ever observed non-empty.
func (m *member) mayHoldData() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routed > 0 || m.nonEmpty
}

// isNonEmpty reports whether the member was ever positively observed
// holding reports — the signal that a later N=0 answer means data loss
// (a restart), not a genuinely empty member.
func (m *member) isNonEmpty() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nonEmpty
}

func (m *member) snapshot() MemberStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemberStats{
		URL:        m.url,
		Healthy:    m.healthy,
		LastError:  m.lastError,
		Routed:     m.routed,
		Failovers:  m.failovers,
		Recoveries: m.recoveries,
	}
}

// probe refreshes the member's health flag off its /healthz.
func (m *member) probe(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := m.client.Health(ctx); err != nil {
		m.markUnhealthy(err)
		return
	}
	m.markHealthy()
}
