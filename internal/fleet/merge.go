package fleet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"dpspatial/internal/collector"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/trace"
)

// The merge loop: the supervisor never sees individual reports after
// routing them — it pulls each member's canonical aggregate as a DPA2
// blob (GET /v1/aggregate, the same chaining primitive hierarchical
// collectors already used) and merges the blobs into the fleet
// aggregate. Because every member aggregate is itself a merge of the
// shards routed to it, the pull is a hierarchical merge of the union of
// all shards, and the cold first decode is byte-identical to an
// in-process EstimateFromAggregate over that union.

// memberDownError marks a pull that failed because a member holding
// routed submissions could not contribute its aggregate: serving an
// estimate without it would silently drop shards, so the supervisor
// answers 503 instead.
type memberDownError struct {
	url string
	err error
}

func (e *memberDownError) Error() string {
	return fmt.Sprintf("fleet member %s holds routed submissions but cannot serve its aggregate: %v", e.url, e.err)
}
func (e *memberDownError) Unwrap() error { return e.err }

// errNoMechanism / errNoReports are the pre-adoption refusals, mapped to
// 409 like the collector's.
var (
	errNoMechanism = errors.New("fleet has no mechanism yet; submit a shard with pipeline metadata first")
	errNoReports   = errors.New("no reports merged across the fleet yet")
)

// pullErrorStatus maps a pull/refresh error to an HTTP status: the
// pre-adoption state refusals are 409 (a collector answers the same
// way, so stacking supervisors read it as "holds nothing yet"),
// missing member data is 503, and everything else — a corrupt blob, a
// merge failure — is 502: a gateway-side data error that must NOT look
// like an empty member to the tier above.
func pullErrorStatus(err error) int {
	switch {
	case errors.As(err, new(*memberDownError)):
		return http.StatusServiceUnavailable
	case errors.Is(err, errNoMechanism), errors.Is(err, errNoReports):
		return http.StatusConflict
	default:
		return http.StatusBadGateway
	}
}

// pullMerged fetches every member's canonical aggregate and merges them
// in fleet order. It returns the merged aggregate plus a hash over the
// raw member blobs, which names the fleet aggregate state: an unchanged
// hash across pulls means no member absorbed anything new, so the
// previous decode can be reused.
//
// A member that answers 409 (no mechanism yet) contributes nothing and
// is skipped — unless the supervisor routed submissions to it or ever
// observed it holding data (shards may also reach members directly, or
// predate a supervisor restart), in which case its data is gone (a
// restart) and the pull fails rather than serving an estimate that
// silently misses shards. The same applies to unreachable members. The
// residual blind spot is a member that held data but was never once
// observed by this supervisor process before going down — closing it
// would take persisted membership state.
func (s *Supervisor) pullMerged(ctx context.Context) (*fo.Aggregate, uint64, error) {
	s.mu.Lock()
	mech := s.mech
	s.mu.Unlock()
	if mech == nil {
		return nil, 0, errNoMechanism
	}
	// One span covers the whole fan-out pull + fold; a traced request
	// context records it, the cadence loop's background context no-ops.
	pullSpan := trace.SpanFrom(ctx).Child("fleet.pull")
	defer pullSpan.End()
	pullSpan.SetAttr(trace.Int("members", int64(len(s.members))))
	// Fetch every member concurrently — one slow member then delays the
	// pull by its own latency, not the fleet's sum — and fold the
	// results in fleet order, so the merge and its hash stay
	// deterministic.
	type pullResult struct {
		blob []byte
		err  error
	}
	results := make([]pullResult, len(s.members))
	var wg sync.WaitGroup
	for i, m := range s.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			blob, err := m.client.FetchAggregateBlob(ctx)
			results[i] = pullResult{blob: blob, err: err}
		}(i, m)
	}
	wg.Wait()

	merged := mech.NewAggregate()
	h := fnv.New64a()
	var lenbuf [8]byte
	for i, m := range s.members {
		blob, err := results[i].blob, results[i].err
		if err != nil {
			if ctx.Err() != nil {
				// The caller went away; that says nothing about the
				// member's health, so don't demote it.
				return nil, 0, ctx.Err()
			}
			var se *collector.StatusError
			if errors.As(err, &se) && se.StatusCode == http.StatusConflict {
				// Member has no mechanism, so it merged nothing — fine
				// unless we know it ever held shards.
				if m.mayHoldData() {
					return nil, 0, &memberDownError{url: m.url, err: err}
				}
				continue
			}
			m.markUnhealthy(err)
			if m.mayHoldData() {
				return nil, 0, &memberDownError{url: m.url, err: err}
			}
			continue
		}
		m.markHealthy()
		shard := &fo.Aggregate{}
		if err := shard.UnmarshalBinary(blob); err != nil {
			return nil, 0, fmt.Errorf("member %s served a bad aggregate: %w", m.url, err)
		}
		if shard.N > 0 {
			m.noteNonEmpty()
		} else if m.isNonEmpty() {
			// A successful pull of an EMPTY aggregate from a member
			// positively seen holding reports means the data is gone —
			// a restarted pre-built member answers 200 with N=0. Refuse
			// like an unreachable member rather than silently serving a
			// partial union.
			return nil, 0, &memberDownError{url: m.url,
				err: errors.New("member reports an empty aggregate after previously holding shards (restarted?)")}
		}
		if err := merged.Merge(shard); err != nil {
			return nil, 0, fmt.Errorf("member %s aggregate does not merge: %w", m.url, err)
		}
		binary.LittleEndian.PutUint64(lenbuf[:], uint64(len(blob)))
		_, _ = h.Write(lenbuf[:])
		_, _ = h.Write(blob)
	}
	return merged, h.Sum64(), nil
}

// estimateState is one decoded fleet estimate plus the metadata of the
// decode that produced it.
type estimateState struct {
	est   *grid.Hist2D
	gen   uint64
	n     float64
	iters int
	warm  bool
}

// refresh brings the fleet estimate up to the current member state,
// pulling the member aggregates and decoding at most once. The first
// decode is cold — EstimateFromAggregate semantics over the union of
// shards — and later decodes warm-start from the previous estimate when
// the mechanism supports it, with the iteration saving accumulated in
// the stats exactly like a single collector's.
func (s *Supervisor) refresh(ctx context.Context) (estimateState, error) {
	s.decodeMu.Lock()
	defer s.decodeMu.Unlock()

	merged, hash, err := s.pullMerged(ctx)
	if err != nil {
		return estimateState{}, err
	}
	if merged.N == 0 {
		return estimateState{}, errNoReports
	}
	s.mu.Lock()
	if s.est != nil && s.estHash == hash {
		cur := estimateState{est: s.est, gen: s.estGen, n: s.estN, iters: s.estIters, warm: s.estWarm}
		s.mu.Unlock()
		s.met.QueryCacheHits.With(collector.CacheEstimate).Inc()
		trace.SpanFrom(ctx).Event("estimate.cache.hit", trace.Int("generation", int64(cur.gen)))
		return cur, nil
	}
	init := s.est
	mech := s.mech
	routed := s.stats.Routed
	s.mu.Unlock()
	s.met.QueryCacheMisses.With(collector.CacheEstimate).Inc()

	decodeSpan := trace.SpanFrom(ctx).Child("fleet.em.decode")
	t0 := time.Now()
	est, iters, warm, err := collector.DecodeEstimate(mech, merged, init)
	if err != nil {
		decodeSpan.Fail(err)
		decodeSpan.End()
		return estimateState{}, err
	}
	elapsed := time.Since(t0)
	mode := collector.DecodeCold
	if warm {
		mode = collector.DecodeWarm
	}
	decodeSpan.SetAttr(trace.String("mode", mode), trace.Int("iterations", int64(iters)))
	decodeSpan.End()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.estHash != hash {
		s.stateHashGens.Inc()
	}
	s.est, s.estHash, s.estGen, s.estN = est, hash, routed, merged.N
	s.estIters, s.estWarm = iters, warm
	savedBefore := s.stats.IterationsSaved
	s.stats.Account(iters, warm)
	s.met.ObserveDecode(elapsed, iters, warm, s.stats.IterationsSaved-savedBefore)
	return estimateState{est: est, gen: routed, n: merged.N, iters: iters, warm: warm}, nil
}
