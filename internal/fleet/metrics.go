package fleet

import (
	"dpspatial/internal/metrics"
)

// The supervisor's /metrics surface: the collector tier's shared
// families (registered through collector.NewServiceMetrics, so one
// dashboard reads both tiers) plus the fleet-only series — per-member
// relabelings of the routing counters and the member-state hash
// generation. Per-member series carry the member's base URL as the
// "member" label; membership is fixed at construction, so the label set
// is bounded by the fleet size.

// memberInstruments are one member's pre-resolved per-member series;
// the member mirrors its supervisor-side counters into them on the same
// transitions that move MemberStats, so /metrics and /v1/stats cannot
// disagree. A nil receiver (members built outside a supervisor, as some
// tests do) makes every update a no-op.
type memberInstruments struct {
	healthy    *metrics.Gauge
	routed     *metrics.Counter
	failovers  *metrics.Counter
	recoveries *metrics.Counter
}

func (mi *memberInstruments) setHealthy(up bool) {
	if mi == nil {
		return
	}
	if up {
		mi.healthy.Set(1)
	} else {
		mi.healthy.Set(0)
	}
}

func (mi *memberInstruments) countRouted() {
	if mi != nil {
		mi.routed.Inc()
	}
}

func (mi *memberInstruments) countFailover() {
	if mi != nil {
		mi.failovers.Inc()
	}
}

func (mi *memberInstruments) countRecovery() {
	if mi != nil {
		mi.recoveries.Inc()
	}
}

// registerFleetMetrics registers the fleet-only families and attaches
// per-member instruments. Called from New after the member list is
// final.
func (s *Supervisor) registerFleetMetrics() {
	healthy := s.reg.GaugeVec("dpspatial_fleet_member_healthy",
		"Last-known liveness of each fleet member (1 = healthy, 0 = unhealthy).",
		"member")
	routed := s.reg.CounterVec("dpspatial_fleet_member_routed_total",
		"Submissions this supervisor routed to each member and the member accepted.",
		"member")
	failovers := s.reg.CounterVec("dpspatial_fleet_member_failovers_total",
		"Submissions that failed transiently at each member and moved on in routing order.",
		"member")
	recoveries := s.reg.CounterVec("dpspatial_fleet_member_recoveries_total",
		"Each member's unhealthy-to-healthy transitions: outages it rejoined the fleet from.",
		"member")
	for _, m := range s.members {
		m.inst = &memberInstruments{
			healthy:    healthy.With(m.url),
			routed:     routed.With(m.url),
			failovers:  failovers.With(m.url),
			recoveries: recoveries.With(m.url),
		}
		m.inst.setHealthy(m.isHealthy())
	}
	s.fleetFailovers = s.reg.Counter("dpspatial_fleet_failovers_total",
		"Submission attempts that failed over past a member, fleet-wide.")
	s.stateHashGens = s.reg.Counter("dpspatial_fleet_state_hash_generations_total",
		"Distinct member-state hashes decoded: how many times the fleet-wide member-blob hash changed and forced a fresh decode.")
	s.reg.Gauge("dpspatial_fleet_members",
		"Configured fleet members.").Set(float64(len(s.members)))
	s.reg.GaugeFunc("dpspatial_generation",
		"Submissions accepted by a member via this supervisor (the fleet generation).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.stats.Routed)
		})
	s.reg.GaugeFunc("dpspatial_estimate_generation",
		"Routed-submission count the served fleet estimate was decoded at (0 = no estimate yet).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.estGen)
		})
}

// Metrics returns the supervisor's metric registry — what GET /metrics
// serves.
func (s *Supervisor) Metrics() *metrics.Registry { return s.reg }
