// Package fleet is the supervisor tier above internal/collector: one
// daemon fronting N downstream collector members, so submission decoding
// and merging stop serialising behind a single canonical aggregate.
//
// The supervisor speaks the collector's own wire protocol — POST
// /v1/report and /v1/aggregate accept the same framings, GET
// /v1/estimate, /v1/aggregate, /v1/stats and /healthz serve the same
// envelopes — so clients, `damctl submit` and `damctl estimate
// --from-url` point at a supervisor transparently, and supervisors chain
// under bigger supervisors exactly like collectors chain under a
// supervisor. Submissions are routed across the fleet (round-robin or
// consistent hash, failing over past unhealthy members off /healthz),
// and the estimate is decoded from the hierarchical merge of every
// member's canonical aggregate, pulled as DPA2 blobs.
//
// The collector's headline invariant carries over one level up: because
// fo.Aggregate.Merge is associative and commutative over exactly
// representable counts, the fleet-merged aggregate — and therefore the
// cold first decode — is byte-identical to EstimateFromAggregate on the
// union of all shards, for any member count, routing policy, and arrival
// interleaving. Later refreshes warm-start from the previous estimate on
// the merge cadence, like a single collector's.
//
// One pipeline is enforced fleet-wide with the collector's transactional
// adopt-from-first-submission semantics: pre-adoption submissions are
// serialised, the candidate mechanism is only committed after a member
// accepted the shard, and the supervisor injects the pinned pipeline
// metadata into forwarded submissions so every member — whichever one
// routing picks, even a freshly started one — adopts the same pipeline.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dpspatial/internal/collector"
	"dpspatial/internal/durable"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/metrics"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/trace"
)

// Config configures a fleet supervisor.
type Config struct {
	// Members are the base URLs of the downstream collectors, e.g.
	// "http://10.0.0.1:8080". At least one is required.
	Members []string
	// Mechanism, if non-nil, locks the fleet to this estimator from the
	// start; Pipeline must then carry its metadata, which the supervisor
	// injects into forwarded submissions so members adopt it too.
	Mechanism collector.Estimator
	// Pipeline is the fleet-wide pinned pipeline metadata. Required with
	// Mechanism; ignored with Build (the pin comes from the first
	// accepted submission instead).
	Pipeline *collector.Pipeline
	// Build, if set and Mechanism is nil, lets the supervisor adopt the
	// fleet's mechanism from the first accepted submission that carries
	// pipeline metadata. Until then, submissions without metadata are
	// rejected with 409.
	Build func(p *collector.Pipeline) (collector.Estimator, error)
	// Policy picks the routing policy: PolicyRoundRobin (default) or
	// PolicyHash.
	Policy string
	// Cadence is the background period of the member health probes and
	// the hierarchical merge + warm re-estimate. Zero disables the loop;
	// GET /v1/estimate still pulls and refreshes on demand.
	Cadence time.Duration
	// AuthToken, when non-empty, is the fleet's shared secret: the
	// supervisor requires it as a bearer token on every endpoint except
	// GET /healthz, and presents it to members, which run with the same
	// --auth-token.
	AuthToken string
	// MaxBodyBytes caps accepted request bodies (default 64 MiB).
	MaxBodyBytes int64
	// HTTPClient is used for member requests (default
	// http.DefaultClient).
	HTTPClient *http.Client
	// DisableMetrics leaves GET /metrics unrouted (404). The supervisor
	// still accounts internally; only the exposition endpoint is gated.
	DisableMetrics bool
	// DisableTraces turns request tracing off entirely: no spans are
	// recorded and GET /v1/traces is unrouted (404).
	DisableTraces bool
	// TraceCapacity bounds the completed-trace ring GET /v1/traces
	// serves (0 = trace.DefaultCapacity).
	TraceCapacity int
	// SlowLog, when non-nil, emits one structured log line (carrying
	// the trace ID) per request at or over its threshold.
	SlowLog *trace.SlowLogger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ behind the
	// bearer gate, excluded from accounting and tracing. Off by default.
	EnablePprof bool
}

// Supervisor is the fleet daemon. It implements http.Handler; run it
// under any http.Server, and call Start/Close around the serving
// lifetime to run the probe + merge cadence loop.
type Supervisor struct {
	cfg     Config
	mux     *http.ServeMux
	handler http.Handler
	members []*member
	router  router

	// adoptMu serialises submissions that arrive before a mechanism is
	// pinned, making fleet-wide adoption transactional: one candidate in
	// flight at a time, committed only after a member accepted its
	// shard, so a rejected first submission can never lock the fleet —
	// or any member — to its pipeline.
	adoptMu sync.Mutex

	// mu guards the mutable supervisor state; never held across network
	// calls or EM decodes.
	mu       sync.Mutex
	mech     collector.Estimator
	pipeline *collector.Pipeline
	stats    Stats
	acks     *collector.AckLog  // idempotency log: submission ID → ack
	inflight map[string]bool    // submission IDs currently being forwarded
	sticky   map[string]*member // unknown-state submissions pinned to the member that may hold them
	est      *grid.Hist2D       // fleet estimate (nil until first decode)
	estHash  uint64             // member-blob hash of the pull est was decoded from
	estGen   uint64             // routed-submission count at that pull
	estN     float64
	estIters int
	estWarm  bool

	// queryTree caches the quadtree decode backing /v1/query range
	// answers for TreeEstimator mechanisms, keyed by the member-blob
	// hash of the pull it was decoded from.
	queryTree     *rangequery.Quadtree
	queryTreeHash uint64
	queryTreeGen  uint64
	queryTreeN    float64

	// decodeMu serialises pull+decode cycles so concurrent GET
	// /v1/estimate requests do not duplicate EM work.
	decodeMu sync.Mutex

	// reg is the /metrics registry; met the collector-tier shared
	// instrument set registered on it; the two counters are the
	// fleet-only families registerFleetMetrics adds.
	reg            *metrics.Registry
	met            *collector.ServiceMetrics
	fleetFailovers *metrics.Counter
	stateHashGens  *metrics.Counter

	// tracer records per-request span trees (root per request, child per
	// routed attempt) into the ring GET /v1/traces serves; nil when
	// tracing is disabled.
	tracer *trace.Tracer

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a supervisor over the configured members.
func New(cfg Config) (*Supervisor, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fleet: config needs at least one member URL")
	}
	if cfg.Mechanism == nil && cfg.Build == nil {
		return nil, fmt.Errorf("fleet: config needs a Mechanism or a Build hook")
	}
	if cfg.Mechanism != nil && cfg.Pipeline == nil {
		return nil, fmt.Errorf("fleet: a pre-built Mechanism needs its Pipeline metadata (members adopt from it)")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = collector.DefaultMaxBodyBytes
	}
	s := &Supervisor{
		cfg:      cfg,
		stop:     make(chan struct{}),
		acks:     collector.NewAckLog(collector.DedupWindow),
		inflight: make(map[string]bool),
		sticky:   make(map[string]*member),
	}
	s.reg = metrics.New()
	s.met = collector.NewServiceMetrics(s.reg)
	seen := make(map[string]bool, len(cfg.Members))
	for _, url := range cfg.Members {
		m := newMember(url, cfg.AuthToken, cfg.HTTPClient)
		if seen[m.url] {
			return nil, fmt.Errorf("fleet: duplicate member %s", m.url)
		}
		seen[m.url] = true
		s.members = append(s.members, m)
	}
	r, err := newRouter(cfg.Policy, s.members)
	if err != nil {
		return nil, err
	}
	s.router = r
	if cfg.Mechanism != nil {
		s.mech = cfg.Mechanism
		pin := *cfg.Pipeline
		s.pipeline = &pin
		s.stats.Scheme = s.mech.Scheme()
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyRoundRobin
	}
	s.stats.Policy = cfg.Policy
	s.stats.CadenceMillis = cfg.Cadence.Milliseconds()
	s.registerFleetMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/report", s.handleReport)
	s.mux.HandleFunc("/v1/aggregate", s.handleAggregate)
	s.mux.HandleFunc("/v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	if !cfg.DisableMetrics {
		s.mux.Handle(collector.MetricsPath, s.reg.Handler())
	}
	if !cfg.DisableTraces {
		s.tracer = trace.NewTracer("supervisor", cfg.TraceCapacity)
		s.mux.Handle(collector.TracesPath, s.tracer.Handler())
	}
	if cfg.EnablePprof {
		collector.MountPprof(s.mux)
	}
	s.handler = trace.Middleware(s.tracer, cfg.SlowLog, collector.UntracedPath,
		collector.InstrumentHTTP(s.met, collector.RequireBearer(cfg.AuthToken, s.mux)))
	return s, nil
}

// Tracer exposes the supervisor's completed-trace ring — nil when the
// supervisor was built with DisableTraces.
func (s *Supervisor) Tracer() *trace.Tracer { return s.tracer }

// ServeHTTP implements http.Handler.
func (s *Supervisor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Start launches the background cadence loop: probe every member's
// /healthz, then pull and warm-refresh the fleet estimate. No-op when
// the configured cadence is zero.
func (s *Supervisor) Start() {
	if s.cfg.Cadence <= 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(s.cfg.Cadence)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				// Bound each tick so a hung member cannot wedge the
				// loop; probes carry their own shorter timeout.
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				s.probeMembers(ctx)
				// Refresh errors surface on the next GET; the loop only
				// keeps the estimate warm.
				_, _ = s.refresh(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the cadence loop. The handler stays usable.
func (s *Supervisor) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// submissionKind distinguishes the two POST framings the fleet routes.
type submissionKind int

const (
	kindReport submissionKind = iota
	kindAggregate
)

func (k submissionKind) String() string {
	if k == kindReport {
		return "report"
	}
	return "aggregate"
}

// handleReport routes a report stream (the collector's POST /v1/report
// framing) to one fleet member. A stream of bare report lines gets the
// pinned pipeline header injected, so routing never depends on which
// member happens to hold a mechanism already.
func (s *Supervisor) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		collector.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	if prev, ok := s.replayedAck(r); ok {
		collector.WriteJSON(w, http.StatusOK, &prev)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	first := body
	if i := bytes.IndexByte(body, '\n'); i >= 0 {
		first = body[:i]
	}
	if len(bytes.TrimSpace(first)) == 0 {
		collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("empty report stream"))
		return
	}
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(first, &probe); err != nil {
		collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("first line is neither a pipeline header nor a report: %v", err))
		return
	}
	var hdr *collector.Pipeline
	hasHdr := false
	switch probe.Format {
	case collector.ReportsFormat:
		hdr = &collector.Pipeline{}
		if err := json.Unmarshal(first, hdr); err != nil {
			collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad pipeline header: %v", err))
			return
		}
		hasHdr = true
	case "":
		var rep fo.Report
		if err := json.Unmarshal(first, &rep); err != nil {
			collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad report line: %v", err))
			return
		}
	default:
		collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", probe.Format))
		return
	}
	s.routeSubmission(w, r, kindReport, body, hdr, hasHdr)
}

// handleAggregate routes a DPA1/DPA2 blob submission (POST) or serves
// the hierarchically merged fleet aggregate (GET, DPA2 blob — the
// chaining primitive for stacking supervisors).
func (s *Supervisor) handleAggregate(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
	case http.MethodGet:
		s.serveAggregate(w, r)
		return
	default:
		collector.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST only"))
		return
	}
	if prev, ok := s.replayedAck(r); ok {
		collector.WriteJSON(w, http.StatusOK, &prev)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	if !bytes.HasPrefix(body, []byte("DPA")) {
		collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("fo: not a binary aggregate (bad magic)"))
		return
	}
	var hdr *collector.Pipeline
	if raw := r.Header.Get(collector.PipelineHeader); raw != "" {
		hdr = &collector.Pipeline{}
		if err := json.Unmarshal([]byte(raw), hdr); err != nil {
			collector.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad %s header: %v", collector.PipelineHeader, err))
			return
		}
	}
	s.routeSubmission(w, r, kindAggregate, body, hdr, hdr != nil)
}

// routeSubmission validates a parsed submission against the fleet
// pipeline (building a candidate mechanism on first contact), forwards
// it to a member with failover, and commits the routing counters — and,
// for a first submission, the fleet-wide adoption — only after a member
// accepted the shard. Submissions are keyed by an idempotency ID:
// client-supplied, or minted here and echoed back in the
// X-Dpspatial-Submission-Id response header (including on the 503 for
// an unknown-state failure), so any client that replays the echoed ID
// gets exactly-once semantics. A replayed ID answers with the original
// ack, and an ID whose first attempt died mid-response stays pinned to
// the member that may have merged it; a retry WITHOUT the ID cannot be
// recognised as a replay and may merge again — the Client and damctl
// always send one.
func (s *Supervisor) routeSubmission(w http.ResponseWriter, r *http.Request, kind submissionKind, body []byte, hdr *collector.Pipeline, bodyHasHdr bool) {
	span := trace.SpanFrom(r.Context())
	id := r.Header.Get(collector.SubmissionIDHeader)
	if id == "" {
		id = collector.NewSubmissionID()
	}
	span.SetAttr(trace.String("submissionId", id), trace.String("shardKind", kind.String()))
	w.Header().Set(collector.SubmissionIDHeader, id)
	// Reserve the ID before forwarding: a concurrent submission with
	// the same ID would otherwise also miss the ack log and be routed —
	// possibly to a different member — merging the shard twice. The
	// loser is told to retry; by then the winner's ack is in the log.
	s.mu.Lock()
	if prev, ok := s.acks.Get(id); ok {
		s.stats.Duplicates++
		s.met.Submissions.With(collector.SubmissionDuplicate).Inc()
		s.mu.Unlock()
		span.Event("duplicate.replay", trace.String("originalTraceId", prev.TraceID))
		collector.WriteJSON(w, http.StatusOK, &prev)
		return
	}
	if s.inflight[id] {
		s.mu.Unlock()
		// The concurrent attempt's outcome is undetermined, so mark the
		// refusal for any supervisor one tier up.
		w.Header().Set(collector.SubmissionStateHeader, collector.SubmissionStateUnknown)
		span.Event("inflight.conflict")
		collector.WriteError(w, http.StatusServiceUnavailable,
			fmt.Errorf("a submission with this ID is already in flight; retry to collect its ack"))
		return
	}
	s.inflight[id] = true
	locked := s.mech != nil
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inflight, id)
		s.mu.Unlock()
	}()
	if !locked {
		// Serialise pre-adoption traffic; a concurrent submission may
		// have pinned the fleet while we waited for the lock.
		s.adoptMu.Lock()
		defer s.adoptMu.Unlock()
	}
	s.mu.Lock()
	mech, pipeline := s.mech, s.pipeline
	s.mu.Unlock()

	var candidate collector.Estimator
	if mech != nil {
		if err := checkAgainstPin(mech, pipeline, hdr); err != nil {
			collector.WriteError(w, http.StatusConflict, err)
			return
		}
	} else {
		if hdr == nil {
			collector.WriteError(w, http.StatusConflict, fmt.Errorf("fleet has no pipeline yet; submit a shard with pipeline metadata first"))
			return
		}
		built, err := s.cfg.Build(hdr)
		if err != nil {
			collector.WriteError(w, http.StatusConflict, fmt.Errorf("building mechanism from pipeline: %w", err))
			return
		}
		if hdr.Scheme != "" && built.Scheme() != hdr.Scheme {
			collector.WriteError(w, http.StatusConflict, fmt.Errorf("rebuilt mechanism scheme %q does not match submitted scheme %q", built.Scheme(), hdr.Scheme))
			return
		}
		candidate = built
		pin := *hdr
		pipeline = &pin
	}

	// Inject the fleet pipeline into payloads that don't carry metadata,
	// so whichever member routing picks — even one that started bare —
	// can adopt and cross-check the shard.
	forwardBody := body
	forwardHdr := hdr
	if kind == kindReport && !bodyHasHdr && pipeline != nil {
		line, err := marshalHeaderLine(pipeline)
		if err != nil {
			collector.WriteError(w, http.StatusInternalServerError, err)
			return
		}
		forwardBody = append(line, body...)
	}
	if kind == kindAggregate && forwardHdr == nil {
		forwardHdr = pipeline
	}

	resp, m, status, err := s.forward(r.Context(), kind, forwardBody, forwardHdr, body, id)
	if err != nil {
		if errors.As(err, new(*unknownStateError)) {
			w.Header().Set(collector.SubmissionStateHeader, collector.SubmissionStateUnknown)
		}
		collector.WriteError(w, status, err)
		return
	}

	s.mu.Lock()
	if candidate != nil && s.mech == nil {
		s.mech = candidate
		s.pipeline = pipeline
		s.stats.Scheme = candidate.Scheme()
	}
	// A Duplicate ack with a sticky pin on this member is the lost-ack
	// case: the member merged the shard on the aborted first attempt
	// and this replay recovered the ack — the routing was never
	// counted, so count it now. A Duplicate without a pin is a genuine
	// replay of an already-acked submission and counts nothing.
	recovered := resp.Duplicate && s.sticky[id] == m
	if resp.Duplicate {
		s.stats.Duplicates++
		s.met.Submissions.With(collector.SubmissionDuplicate).Inc()
	}
	if !resp.Duplicate || recovered {
		s.stats.Routed++
		s.met.Submissions.With(collector.SubmissionAccepted).Inc()
		if kind == kindReport {
			s.stats.ReportShards++
		} else {
			s.stats.AggregateShards++
		}
		resp.Generation = s.stats.Routed
		m.countRouted()
	}
	if resp.Reports > 0 {
		// The ack proves the member holds reports now: latch it, so a
		// later empty or unreachable answer is recognised as data loss.
		m.noteNonEmpty()
	}
	resp.Member = m.url
	// The member echoes the shared trace ID when it traces; when it does
	// not (tracing disabled downstream), stamp the supervisor's own so
	// the client always gets a usable /v1/traces key.
	if tid := span.TraceID(); tid != "" && resp.TraceID == "" {
		resp.TraceID = tid
	}
	s.acks.Put(id, *resp)
	delete(s.sticky, id)
	s.mu.Unlock()
	collector.WriteJSON(w, http.StatusOK, resp)
}

// checkAgainstPin validates a submission's metadata (which may be nil)
// against the locked fleet mechanism and pinned pipeline, mirroring the
// collector's own post-adoption checks so refusals happen at the
// supervisor instead of burning a round trip to a member.
func checkAgainstPin(mech collector.Estimator, pipeline, hdr *collector.Pipeline) error {
	if hdr == nil {
		return nil
	}
	if hdr.Scheme != "" && hdr.Scheme != mech.Scheme() {
		return fmt.Errorf("submission scheme %q does not match fleet scheme %q", hdr.Scheme, mech.Scheme())
	}
	if pipeline != nil {
		return pipeline.Compatible(hdr)
	}
	return nil
}

// marshalHeaderLine renders the pinned pipeline as a reports-framing
// header line.
func marshalHeaderLine(p *collector.Pipeline) ([]byte, error) {
	hdr := *p
	hdr.Format = collector.ReportsFormat
	line, err := json.Marshal(&hdr)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// forward tries members in the router's preference order — healthy ones
// first, then (as a last-ditch revival pass) any member not yet tried
// in this call, so a recovered member rejoins without waiting for a
// probe and a member that just failed is not immediately re-tried.
//
// Failover is only safe when the shard provably did not merge at the
// attempted member, so each outcome is classified:
//
//   - 400/409: the member understood the submission and refused it —
//     every member enforcing the same pinned pipeline would; final.
//   - any other 4xx (401 from a misconfigured token, a proxy 404), or
//     a 5xx carrying the collector's JSON error envelope: the member's
//     stack answered before merging — a member-local problem; mark
//     unhealthy and fail over.
//   - dial-phase transport failure: the request never reached the
//     member; mark unhealthy and fail over.
//   - anything else — a reset or truncated response after sending, or
//     an envelope-less 5xx (a reverse proxy's 502/504 can arrive AFTER
//     the member behind it merged): the member MAY hold the shard.
//     Failing over would risk a double merge, so the submission ID is
//     pinned to this member and the client told to retry — the replay
//     routes back here and the member's idempotency log answers
//     exactly once.
//
// routeBody is the submission as the client sent it (before any header
// injection), so the hash policy keys on the client's bytes.
func (s *Supervisor) forward(ctx context.Context, kind submissionKind, body []byte, hdr *collector.Pipeline, routeBody []byte, id string) (*collector.SubmitResponse, *member, int, error) {
	span := trace.SpanFrom(ctx)
	s.mu.Lock()
	pinned := s.sticky[id]
	s.mu.Unlock()
	order := s.router.order(routeBody)
	if pinned != nil {
		// An earlier attempt of this ID died mid-response at pinned:
		// only it may answer, or the shard could merge twice.
		order = []*member{pinned}
		span.Event("sticky.replay", trace.String("member", pinned.url))
	}
	var lastErr error
	tried := make(map[*member]bool, len(order))
	for pass := 0; pass < 2; pass++ {
		for _, m := range order {
			if tried[m] || (pass == 0 && !m.isHealthy()) {
				continue
			}
			tried[m] = true
			// Each routed attempt is its own child span, and the member
			// call runs under it — so the traceparent the member joins
			// names THIS attempt as the remote parent, and a member's
			// /v1/traces entry nests under the exact hop that produced it.
			attempt := span.Child("fleet.route.attempt")
			attempt.SetAttr(trace.String("member", m.url))
			actx := trace.ContextWithSpan(ctx, attempt)
			var resp *collector.SubmitResponse
			var err error
			if kind == kindReport {
				resp, err = m.client.SubmitReportStreamWithID(actx, bytes.NewReader(body), id)
			} else {
				resp, err = m.client.SubmitAggregateBlobWithID(actx, body, hdr, id)
			}
			if err == nil {
				attempt.End()
				m.markHealthy()
				return resp, m, 0, nil
			}
			attempt.Fail(err)
			attempt.End()
			if ctx.Err() != nil {
				// The caller went away mid-attempt; that says nothing
				// about the member's health. Its handler may still
				// finish processing the in-flight body, so pin the ID
				// to it — a retry of the same ID must route back here.
				s.pinSticky(id, m)
				span.Event("sticky.pin", trace.String("member", m.url), trace.String("reason", "request cancelled mid-attempt"))
				return nil, m, http.StatusServiceUnavailable, &unknownStateError{
					fmt.Errorf("request cancelled while member %s was processing; retry with the same submission ID", m.url)}
			}
			var se *collector.StatusError
			switch {
			case errors.As(err, &se) && se.SubmissionStateUnknown:
				// The member is itself a supervisor (tiers stack) and
				// says the shard may already be merged below it:
				// failing over would risk a double merge.
				m.markUnhealthy(err)
				s.pinSticky(id, m)
				span.Event("sticky.pin", trace.String("member", m.url), trace.String("reason", "member reports unknown submission state"))
				return nil, m, http.StatusServiceUnavailable, &unknownStateError{
					fmt.Errorf("member %s reports this submission's state as unknown; retry with the same submission ID", m.url)}
			case errors.As(err, &se) && (se.StatusCode == http.StatusBadRequest || se.StatusCode == http.StatusConflict):
				// The member's submission handler runs its replay check
				// before any validation, so a 400/409 proves this ID
				// never merged there — any sticky pin is resolved.
				s.mu.Lock()
				delete(s.sticky, id)
				s.mu.Unlock()
				return nil, m, se.StatusCode, fmt.Errorf("member %s: %v", m.url, memberMessage(se))
			case errors.As(err, &se) && (se.StatusCode < 500 || se.Message != ""),
				collector.RequestNotSent(err):
				// The member's own stack answered non-2xx before any
				// merge (4xx, or a 5xx with the collector's error
				// envelope and no unknown-state mark), or the request
				// never reached it: safe to try the next one.
				m.markUnhealthy(err)
				m.countFailover()
				s.mu.Lock()
				s.stats.Failovers++
				s.mu.Unlock()
				s.fleetFailovers.Inc()
				span.Event("failover", trace.String("member", m.url), trace.String("error", err.Error()))
				lastErr = err
			default:
				m.markUnhealthy(err)
				s.pinSticky(id, m)
				span.Event("sticky.pin", trace.String("member", m.url), trace.String("reason", "answer lost after send"))
				return nil, m, http.StatusServiceUnavailable, &unknownStateError{
					fmt.Errorf("member %s may hold this submission but its answer was lost (%v); retry with the same submission ID", m.url, err)}
			}
		}
	}
	if pinned != nil {
		// The pinned member could not answer this retry, so the
		// original attempt's merge state is STILL unknown — a stacked
		// supervisor above must not read this 503 as safe to fail over.
		return nil, pinned, http.StatusServiceUnavailable, &unknownStateError{
			fmt.Errorf("pinned member %s is unreachable and may hold this submission (%v); retry with the same submission ID", pinned.url, lastErr)}
	}
	return nil, nil, http.StatusServiceUnavailable,
		fmt.Errorf("no fleet member accepted the %s submission: %v", kind, lastErr)
}

// unknownStateError marks a refusal whose submission may still have
// merged somewhere below; routeSubmission translates it into the
// X-Dpspatial-Submission-State response header so supervisors stack
// without losing the distinction.
type unknownStateError struct{ err error }

func (e *unknownStateError) Error() string { return e.err.Error() }
func (e *unknownStateError) Unwrap() error { return e.err }

// replayedAck answers a replayed submission ID from the ack log before
// the body is read — a retried max-size shard then costs a header, not
// a 64 MiB upload. routeSubmission re-checks under the in-flight
// reservation, which remains the authoritative gate.
func (s *Supervisor) replayedAck(r *http.Request) (collector.SubmitResponse, bool) {
	id := r.Header.Get(collector.SubmissionIDHeader)
	if id == "" {
		return collector.SubmitResponse{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.acks.Get(id)
	if ok {
		s.stats.Duplicates++
		s.met.Submissions.With(collector.SubmissionDuplicate).Inc()
		span := trace.SpanFrom(r.Context())
		span.SetAttr(trace.String("submissionId", id))
		span.Event("duplicate.replay", trace.String("originalTraceId", prev.TraceID))
	}
	return prev, ok
}

// pinSticky records that the only member allowed to answer a retry of
// this submission ID is m — it may already hold the shard. The pin
// table is bounded like the ack log; dropping an arbitrary stale pin
// trades a theoretical replay hazard for a hard memory cap.
func (s *Supervisor) pinSticky(id string, m *member) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sticky) >= collector.DedupWindow {
		for stale := range s.sticky {
			delete(s.sticky, stale)
			break
		}
	}
	s.sticky[id] = m
}

// memberMessage renders a member's refusal for the client, falling back
// to the full error when the member sent no JSON body.
func memberMessage(se *collector.StatusError) string {
	if se.Message != "" {
		return se.Message
	}
	return se.Error()
}

// probeMembers refreshes every member's health flag off its /healthz.
func (s *Supervisor) probeMembers(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range s.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			m.probe(ctx)
		}(m)
	}
	wg.Wait()
}

func (s *Supervisor) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		collector.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.Lock()
	scheme := s.stats.Scheme
	s.mu.Unlock()
	healthy := 0
	for _, m := range s.members {
		if m.isHealthy() {
			healthy++
		}
	}
	collector.WriteJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "role": "supervisor", "scheme": scheme,
		"members": len(s.members), "healthy": healthy,
	})
}

// handleEstimate pulls every member's aggregate, merges hierarchically,
// and serves the decoded fleet histogram — cold on the first decode,
// warm-started afterwards.
func (s *Supervisor) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		collector.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	cur, err := s.refresh(r.Context())
	if err != nil {
		collector.WriteError(w, pullErrorStatus(err), err)
		return
	}
	s.mu.Lock()
	scheme := s.stats.Scheme
	s.mu.Unlock()
	est := cur.est
	collector.WriteJSON(w, http.StatusOK, &collector.EstimateResponse{
		Scheme:     scheme,
		Generation: cur.gen,
		Reports:    cur.n,
		D:          est.Dom.D,
		Domain:     collector.DomainSpec{MinX: est.Dom.MinX, MinY: est.Dom.MinY, Side: est.Dom.Side},
		Mass:       est.Mass,
		Iterations: cur.iters,
		Warm:       cur.warm,
	})
}

// serveAggregate serves the fleet-merged aggregate as a DPA2 blob, with
// the pinned pipeline in the response header — byte-compatible with a
// collector's GET /v1/aggregate, so supervisors stack.
func (s *Supervisor) serveAggregate(w http.ResponseWriter, r *http.Request) {
	merged, _, err := s.pullMerged(r.Context())
	if err != nil {
		collector.WriteError(w, pullErrorStatus(err), err)
		return
	}
	blob, err := merged.MarshalBinary()
	if err != nil {
		collector.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	pipeline := s.pipeline
	s.mu.Unlock()
	if pipeline != nil {
		hdr, _ := json.Marshal(pipeline)
		w.Header().Set(collector.PipelineHeader, string(hdr))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

func (s *Supervisor) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		collector.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	s.mu.Lock()
	stats := s.stats
	s.mu.Unlock()
	stats.Generation = stats.Routed
	stats.Members = s.memberStats(r.Context())
	for _, m := range stats.Members {
		stats.Reports += m.Reports
	}
	collector.WriteJSON(w, http.StatusOK, &stats)
}

// memberStats snapshots the supervisor-side counters for every member
// and enriches them with the member's own live /v1/stats (generation,
// absorbed reports) when it answers within the probe timeout.
func (s *Supervisor) memberStats(ctx context.Context) []MemberStats {
	out := make([]MemberStats, len(s.members))
	var wg sync.WaitGroup
	for i, m := range s.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			out[i] = m.snapshot()
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			if ms, err := m.client.Stats(cctx); err == nil {
				out[i].Generation = ms.Generation
				out[i].Reports = ms.Reports
				out[i].Durability = ms.Durability
				if ms.Reports > 0 {
					m.noteNonEmpty()
				}
			}
		}(i, m)
	}
	wg.Wait()
	return out
}

// Stats is the JSON body of the supervisor's GET /v1/stats. The
// generation / reports / scheme keys mirror a collector's stats
// envelope, so collector.Client.Stats pointed at a supervisor decodes
// the fleet-level view of the same counters.
type Stats struct {
	// Scheme is empty until the fleet adopts a mechanism.
	Scheme string `json:"scheme"`
	// Policy is the routing policy in force.
	Policy string `json:"policy"`
	// Routed counts submissions accepted by a member via this
	// supervisor; ReportShards / AggregateShards split it by framing.
	// Generation mirrors Routed under the collector stats key.
	Routed          uint64 `json:"routed"`
	Generation      uint64 `json:"generation"`
	ReportShards    uint64 `json:"reportShards"`
	AggregateShards uint64 `json:"aggregateShards"`
	// Reports sums the report counts the answering members currently
	// hold — the fleet-wide absorbed total when every member answers.
	Reports float64 `json:"reports"`
	// Failovers counts member attempts that failed transiently and made
	// a submission move on to the next member in routing order.
	Failovers uint64 `json:"failovers"`
	// Duplicates counts replayed submission IDs answered from an
	// idempotency log (the supervisor's or a member's) without merging.
	Duplicates uint64 `json:"duplicates,omitempty"`
	// DecodeCounters is the fleet-decode accounting (cold/warm decodes,
	// iterations saved), shared with the collector's stats.
	collector.DecodeCounters
	// CadenceMillis is the configured probe + merge cadence (0 = pull
	// only on demand).
	CadenceMillis int64 `json:"cadenceMillis"`
	// Members reports per-member health and counters, in fleet order.
	Members []MemberStats `json:"members,omitempty"`
}

// MemberStats is one fleet member's entry in the supervisor stats.
type MemberStats struct {
	// URL is the member's base URL.
	URL string `json:"url"`
	// Healthy is the supervisor's last-known liveness of the member.
	Healthy bool `json:"healthy"`
	// LastError is the most recent transient failure, empty when
	// healthy.
	LastError string `json:"lastError,omitempty"`
	// Routed counts submissions this supervisor routed to the member and
	// the member accepted; Failovers counts submissions that failed here
	// transiently and moved on.
	Routed    uint64 `json:"routed"`
	Failovers uint64 `json:"failovers"`
	// Recoveries counts the member's unhealthy→healthy transitions — how
	// many outages it has rejoined the fleet from.
	Recoveries uint64 `json:"recoveries,omitempty"`
	// Generation and Reports mirror the member's own /v1/stats at the
	// time of the query (zero when the member did not answer).
	Generation uint64  `json:"generation"`
	Reports    float64 `json:"reports"`
	// Durability relays the member's own snapshot/WAL counters when it
	// runs with a durable store (nil for in-memory members or when the
	// member did not answer the stats probe).
	Durability *durable.Stats `json:"durability,omitempty"`
}
