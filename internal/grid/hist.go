package grid

import (
	"fmt"
	"math"
	"strings"

	"dpspatial/internal/geom"
)

// Hist2D is a dense histogram (or probability distribution) over the cells
// of a Domain, stored row-major.
type Hist2D struct {
	Dom  Domain
	Mass []float64
}

// NewHist returns an all-zero histogram over the domain.
func NewHist(dom Domain) *Hist2D {
	return &Hist2D{Dom: dom, Mass: make([]float64, dom.NumCells())}
}

// HistFromPoints bucketises points into the domain's cells (Line 5 of
// Algorithm 1) and returns the count histogram.
func HistFromPoints(dom Domain, points []geom.Point) *Hist2D {
	h := NewHist(dom)
	for _, p := range points {
		h.Mass[dom.Index(dom.CellOf(p))]++
	}
	return h
}

// HistFromMass wraps an existing mass vector. It returns an error if the
// length does not match the domain.
func HistFromMass(dom Domain, mass []float64) (*Hist2D, error) {
	if len(mass) != dom.NumCells() {
		return nil, fmt.Errorf("grid: mass length %d != %d cells", len(mass), dom.NumCells())
	}
	return &Hist2D{Dom: dom, Mass: mass}, nil
}

// Clone returns a deep copy.
func (h *Hist2D) Clone() *Hist2D {
	mass := make([]float64, len(h.Mass))
	copy(mass, h.Mass)
	return &Hist2D{Dom: h.Dom, Mass: mass}
}

// Total returns the histogram's total mass.
func (h *Hist2D) Total() float64 {
	total := 0.0
	for _, m := range h.Mass {
		total += m
	}
	return total
}

// Normalize scales the histogram in place to total mass 1 and returns it.
// A zero-mass histogram becomes uniform.
func (h *Hist2D) Normalize() *Hist2D {
	total := h.Total()
	if total <= 0 {
		u := 1 / float64(len(h.Mass))
		for i := range h.Mass {
			h.Mass[i] = u
		}
		return h
	}
	for i := range h.Mass {
		h.Mass[i] /= total
	}
	return h
}

// At returns the mass at a cell.
func (h *Hist2D) At(c geom.Cell) float64 { return h.Mass[h.Dom.Index(c)] }

// Set assigns the mass at a cell.
func (h *Hist2D) Set(c geom.Cell, v float64) { h.Mass[h.Dom.Index(c)] = v }

// MarginalX returns the histogram's marginal along the x axis.
func (h *Hist2D) MarginalX() []float64 {
	m := make([]float64, h.Dom.D)
	for i, v := range h.Mass {
		m[i%h.Dom.D] += v
	}
	return m
}

// MarginalY returns the histogram's marginal along the y axis.
func (h *Hist2D) MarginalY() []float64 {
	m := make([]float64, h.Dom.D)
	for i, v := range h.Mass {
		m[i/h.Dom.D] += v
	}
	return m
}

// TotalVariation returns the total-variation distance between two
// normalised histograms on the same domain shape.
func TotalVariation(a, b *Hist2D) (float64, error) {
	if len(a.Mass) != len(b.Mass) {
		return 0, fmt.Errorf("grid: histogram sizes differ (%d vs %d)", len(a.Mass), len(b.Mass))
	}
	sum := 0.0
	for i := range a.Mass {
		sum += math.Abs(a.Mass[i] - b.Mass[i])
	}
	return sum / 2, nil
}

// KLDivergence returns D(a‖b) in nats for normalised histograms, treating
// 0·log(0/x) as 0 and smoothing b's zeros with eps to keep the value
// finite.
func KLDivergence(a, b *Hist2D, eps float64) (float64, error) {
	if len(a.Mass) != len(b.Mass) {
		return 0, fmt.Errorf("grid: histogram sizes differ (%d vs %d)", len(a.Mass), len(b.Mass))
	}
	sum := 0.0
	for i := range a.Mass {
		p := a.Mass[i]
		if p <= 0 {
			continue
		}
		q := math.Max(b.Mass[i], eps)
		sum += p * math.Log(p/q)
	}
	return sum, nil
}

// Render draws the histogram as a rough ASCII density map (darkest = most
// mass), row y = d-1 on top, for terminal inspection in the examples.
func (h *Hist2D) Render() string {
	const ramp = " .:-=+*#%@"
	maxMass := 0.0
	for _, m := range h.Mass {
		maxMass = math.Max(maxMass, m)
	}
	var sb strings.Builder
	for y := h.Dom.D - 1; y >= 0; y-- {
		for x := 0; x < h.Dom.D; x++ {
			v := h.Mass[y*h.Dom.D+x]
			idx := 0
			if maxMass > 0 {
				idx = int(v / maxMass * float64(len(ramp)-1))
			}
			sb.WriteByte(ramp[idx])
			sb.WriteByte(ramp[idx]) // double width for aspect ratio
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
