package grid

import (
	"math"
	"testing"
	"testing/quick"

	"dpspatial/internal/geom"
	"dpspatial/internal/rng"
)

func mustDomain(t *testing.T, minX, minY, side float64, d int) Domain {
	t.Helper()
	dom, err := NewDomain(minX, minY, side, d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestNewDomainValidation(t *testing.T) {
	if _, err := NewDomain(0, 0, 0, 5); err == nil {
		t.Fatal("zero side accepted")
	}
	if _, err := NewDomain(0, 0, -1, 5); err == nil {
		t.Fatal("negative side accepted")
	}
	if _, err := NewDomain(0, 0, math.NaN(), 5); err == nil {
		t.Fatal("NaN side accepted")
	}
	if _, err := NewDomain(0, 0, 1, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestCellOfCorners(t *testing.T) {
	dom := mustDomain(t, 0, 0, 10, 5)
	cases := []struct {
		p    geom.Point
		want geom.Cell
	}{
		{geom.Point{X: 0, Y: 0}, geom.Cell{X: 0, Y: 0}},
		{geom.Point{X: 1.99, Y: 0}, geom.Cell{X: 0, Y: 0}},
		{geom.Point{X: 2, Y: 0}, geom.Cell{X: 1, Y: 0}},
		{geom.Point{X: 9.99, Y: 9.99}, geom.Cell{X: 4, Y: 4}},
		{geom.Point{X: 10, Y: 10}, geom.Cell{X: 4, Y: 4}},   // max edge clamps in
		{geom.Point{X: -5, Y: 50}, geom.Cell{X: 0, Y: 4}},   // out-of-domain clamps
		{geom.Point{X: 5.0, Y: 7.3}, geom.Cell{X: 2, Y: 3}}, // interior
	}
	for _, c := range cases {
		if got := dom.CellOf(c.p); got != c.want {
			t.Errorf("CellOf(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCellCenterRoundTrip(t *testing.T) {
	dom := mustDomain(t, -3, 2, 7, 9)
	for y := 0; y < dom.D; y++ {
		for x := 0; x < dom.D; x++ {
			c := geom.Cell{X: x, Y: y}
			if got := dom.CellOf(dom.CellCenter(c)); got != c {
				t.Fatalf("centre of %v maps back to %v", c, got)
			}
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 7)
	for i := 0; i < dom.NumCells(); i++ {
		if got := dom.Index(dom.CellAt(i)); got != i {
			t.Fatalf("index %d round-trips to %d", i, got)
		}
	}
}

func TestContains(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 3)
	if !dom.Contains(geom.Cell{X: 0, Y: 0}) || !dom.Contains(geom.Cell{X: 2, Y: 2}) {
		t.Fatal("interior cells reported outside")
	}
	for _, c := range []geom.Cell{{X: -1, Y: 0}, {X: 0, Y: -1}, {X: 3, Y: 0}, {X: 0, Y: 3}} {
		if dom.Contains(c) {
			t.Fatalf("cell %v reported inside", c)
		}
	}
}

func TestSquareDomainCoversPoints(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 2}, {X: 4, Y: -1}, {X: 3, Y: 8}}
	dom, err := SquareDomain(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		c := dom.CellOf(p)
		if !dom.Contains(c) {
			t.Fatalf("point %v maps outside domain", p)
		}
	}
	if dom.Side < 9 { // y spread is 9
		t.Fatalf("side %v does not cover the spread", dom.Side)
	}
}

func TestSquareDomainDegenerate(t *testing.T) {
	if _, err := SquareDomain(nil, 4); err == nil {
		t.Fatal("empty point set accepted")
	}
	dom, err := SquareDomain([]geom.Point{{X: 3, Y: 3}, {X: 3, Y: 3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Side <= 0 {
		t.Fatalf("degenerate point set produced side %v", dom.Side)
	}
}

func TestHistFromPointsCounts(t *testing.T) {
	dom := mustDomain(t, 0, 0, 2, 2)
	pts := []geom.Point{{X: 0.5, Y: 0.5}, {X: 0.6, Y: 0.4}, {X: 1.5, Y: 1.5}}
	h := HistFromPoints(dom, pts)
	if h.At(geom.Cell{X: 0, Y: 0}) != 2 {
		t.Fatalf("cell (0,0) count %v", h.At(geom.Cell{X: 0, Y: 0}))
	}
	if h.At(geom.Cell{X: 1, Y: 1}) != 1 {
		t.Fatalf("cell (1,1) count %v", h.At(geom.Cell{X: 1, Y: 1}))
	}
	if h.Total() != 3 {
		t.Fatalf("total %v", h.Total())
	}
}

func TestNormalize(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 2)
	h := NewHist(dom)
	h.Set(geom.Cell{X: 0, Y: 0}, 3)
	h.Set(geom.Cell{X: 1, Y: 1}, 1)
	h.Normalize()
	if math.Abs(h.Total()-1) > 1e-12 {
		t.Fatalf("normalised total %v", h.Total())
	}
	if math.Abs(h.At(geom.Cell{X: 0, Y: 0})-0.75) > 1e-12 {
		t.Fatalf("normalised mass %v", h.At(geom.Cell{X: 0, Y: 0}))
	}
}

func TestNormalizeZeroMassBecomesUniform(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 3)
	h := NewHist(dom).Normalize()
	for _, m := range h.Mass {
		if math.Abs(m-1.0/9) > 1e-12 {
			t.Fatalf("zero-mass normalisation produced %v", m)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 2)
	h := NewHist(dom)
	h.Set(geom.Cell{X: 0, Y: 0}, 5)
	c := h.Clone()
	c.Set(geom.Cell{X: 0, Y: 0}, 7)
	if h.At(geom.Cell{X: 0, Y: 0}) != 5 {
		t.Fatal("clone shares storage with original")
	}
}

func TestMarginals(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 2)
	h := NewHist(dom)
	h.Set(geom.Cell{X: 0, Y: 0}, 1)
	h.Set(geom.Cell{X: 1, Y: 0}, 2)
	h.Set(geom.Cell{X: 0, Y: 1}, 3)
	h.Set(geom.Cell{X: 1, Y: 1}, 4)
	mx := h.MarginalX()
	my := h.MarginalY()
	if mx[0] != 4 || mx[1] != 6 {
		t.Fatalf("marginal X %v", mx)
	}
	if my[0] != 3 || my[1] != 7 {
		t.Fatalf("marginal Y %v", my)
	}
}

func TestTotalVariation(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 2)
	a := NewHist(dom)
	b := NewHist(dom)
	a.Set(geom.Cell{X: 0, Y: 0}, 1)
	b.Set(geom.Cell{X: 1, Y: 1}, 1)
	tv, err := TotalVariation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tv != 1 {
		t.Fatalf("disjoint TV = %v, want 1", tv)
	}
	tv, err = TotalVariation(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if tv != 0 {
		t.Fatalf("self TV = %v, want 0", tv)
	}
}

func TestTotalVariationSizeMismatch(t *testing.T) {
	a := NewHist(mustDomain(t, 0, 0, 1, 2))
	b := NewHist(mustDomain(t, 0, 0, 1, 3))
	if _, err := TotalVariation(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestKLDivergence(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 2)
	a := NewHist(dom)
	for i := range a.Mass {
		a.Mass[i] = 0.25
	}
	kl, err := KLDivergence(a, a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kl) > 1e-12 {
		t.Fatalf("self-KL %v", kl)
	}
	b := a.Clone()
	b.Mass[0], b.Mass[1] = 0.4, 0.1
	kl, err = KLDivergence(a, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if kl <= 0 {
		t.Fatalf("KL to different distribution %v, want > 0", kl)
	}
}

func TestRenderShape(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 4)
	h := NewHist(dom)
	h.Set(geom.Cell{X: 0, Y: 0}, 1)
	out := h.Render()
	lines := 0
	for _, ch := range out {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 4 {
		t.Fatalf("render has %d lines, want 4", lines)
	}
}

func TestQuickCellOfAlwaysInDomain(t *testing.T) {
	dom := mustDomain(t, -10, -10, 20, 13)
	f := func(xr, yr int16) bool {
		p := geom.Point{X: float64(xr) / 100, Y: float64(yr) / 100}
		return dom.Contains(dom.CellOf(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMarginalsConserveMass(t *testing.T) {
	dom := mustDomain(t, 0, 0, 1, 5)
	r := rng.New(99)
	f := func() bool {
		h := NewHist(dom)
		for i := range h.Mass {
			h.Mass[i] = r.Float64()
		}
		total := h.Total()
		sumX, sumY := 0.0, 0.0
		for _, v := range h.MarginalX() {
			sumX += v
		}
		for _, v := range h.MarginalY() {
			sumY += v
		}
		return math.Abs(sumX-total) < 1e-9 && math.Abs(sumY-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
