// Package grid provides the bucketisation substrate of Section VI: square
// spatial domains divided into d×d unit cells, dense 2-D histograms over
// those cells, and the conversions between continuous points, cell
// coordinates and flat indices that every mechanism and metric in this
// repository shares.
package grid

import (
	"fmt"
	"math"

	"dpspatial/internal/geom"
)

// Domain is a square spatial region [MinX, MinX+Side] × [MinY, MinY+Side]
// divided into D×D grid cells (the paper's discrete side length d). Cell
// (0,0) is the lower-left cell.
type Domain struct {
	MinX, MinY float64
	Side       float64 // side length L of the square region
	D          int     // number of cells along each side
}

// NewDomain validates and returns a domain. Side must be positive and
// d ≥ 1.
func NewDomain(minX, minY, side float64, d int) (Domain, error) {
	if side <= 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return Domain{}, fmt.Errorf("grid: invalid side length %v", side)
	}
	if d < 1 {
		return Domain{}, fmt.Errorf("grid: invalid cell count d=%d", d)
	}
	return Domain{MinX: minX, MinY: minY, Side: side, D: d}, nil
}

// SquareDomain returns the smallest axis-aligned square domain with d×d
// cells that covers all points. It returns an error for an empty point set.
func SquareDomain(points []geom.Point, d int) (Domain, error) {
	if len(points) == 0 {
		return Domain{}, fmt.Errorf("grid: cannot fit a domain to zero points")
	}
	minX, minY := points[0].X, points[0].Y
	maxX, maxY := minX, minY
	for _, p := range points[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	side := math.Max(maxX-minX, maxY-minY)
	if side == 0 {
		side = 1 // all points identical: any positive side works
	}
	return NewDomain(minX, minY, side, d)
}

// CellSize returns the side length g of one grid cell.
func (dom Domain) CellSize() float64 { return dom.Side / float64(dom.D) }

// NumCells returns the number of cells d².
func (dom Domain) NumCells() int { return dom.D * dom.D }

// CellOf maps a continuous point to its grid cell, clamping points on or
// beyond the domain border into the border cells (points exactly on the
// maximum edge belong to the last cell).
func (dom Domain) CellOf(p geom.Point) geom.Cell {
	g := dom.CellSize()
	x := int(math.Floor((p.X - dom.MinX) / g))
	y := int(math.Floor((p.Y - dom.MinY) / g))
	return geom.Cell{X: clampInt(x, 0, dom.D-1), Y: clampInt(y, 0, dom.D-1)}
}

// CellCenter returns the continuous coordinates of a cell's centre.
func (dom Domain) CellCenter(c geom.Cell) geom.Point {
	g := dom.CellSize()
	return geom.Point{
		X: dom.MinX + (float64(c.X)+0.5)*g,
		Y: dom.MinY + (float64(c.Y)+0.5)*g,
	}
}

// Index flattens a cell to a row-major index in [0, d²).
func (dom Domain) Index(c geom.Cell) int { return c.Y*dom.D + c.X }

// CellAt inverts Index.
func (dom Domain) CellAt(idx int) geom.Cell {
	return geom.Cell{X: idx % dom.D, Y: idx / dom.D}
}

// Contains reports whether the cell lies inside the grid.
func (dom Domain) Contains(c geom.Cell) bool {
	return c.X >= 0 && c.X < dom.D && c.Y >= 0 && c.Y < dom.D
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
