package fft

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDFT computes the unscaled forward DFT by the O(n²) definition.
func naiveDFT(re, im []float64) ([]float64, []float64) {
	n := len(re)
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	for k := 0; k < n; k++ {
		var sr, si float64
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			sr += re[j]*c - im[j]*s
			si += re[j]*s + im[j]*c
		}
		outRe[k] = sr
		outIm[k] = si
	}
	return outRe, outIm
}

func maxAbs(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		wantRe, wantIm := naiveDFT(re, im)
		p.Forward(re, im)
		if d := maxAbs(re, wantRe); d > 1e-10 {
			t.Errorf("n=%d: forward re deviates by %g", n, d)
		}
		if d := maxAbs(im, wantIm); d > 1e-10 {
			t.Errorf("n=%d: forward im deviates by %g", n, d)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 8, 32, 256} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		origRe := make([]float64, n)
		origIm := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
			origRe[i] = re[i]
			origIm[i] = im[i]
		}
		p.Forward(re, im)
		p.Inverse(re, im)
		if d := maxAbs(re, origRe); d > 1e-12 {
			t.Errorf("n=%d: round-trip re deviates by %g", n, d)
		}
		if d := maxAbs(im, origIm); d > 1e-12 {
			t.Errorf("n=%d: round-trip im deviates by %g", n, d)
		}
	}
}

func TestPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) succeeded, want error", n)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	p1, _ := NewPlan(n)
	p2, _ := NewPlan(n)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.NormFloat64()
		im[i] = rng.NormFloat64()
	}
	r1 := append([]float64(nil), re...)
	i1 := append([]float64(nil), im...)
	r2 := append([]float64(nil), re...)
	i2 := append([]float64(nil), im...)
	p1.Forward(r1, i1)
	p2.Forward(r2, i2)
	for i := range r1 {
		if r1[i] != r2[i] || i1[i] != i2[i] {
			t.Fatalf("two plans disagree bit-for-bit at %d", i)
		}
	}
}

// naiveConv computes the circular convolution or correlation directly.
func naiveConv(n int, src, kernel []float64, correlate bool) []float64 {
	out := make([]float64, n*n)
	for cy := 0; cy < n; cy++ {
		for cx := 0; cx < n; cx++ {
			var sum float64
			for sy := 0; sy < n; sy++ {
				for sx := 0; sx < n; sx++ {
					var ky, kx int
					if correlate {
						ky, kx = (sy-cy+n)%n, (sx-cx+n)%n
					} else {
						ky, kx = (cy-sy+n)%n, (cx-sx+n)%n
					}
					sum += src[sy*n+sx] * kernel[ky*n+kx]
				}
			}
			out[cy*n+cx] = sum
		}
	}
	return out
}

func TestRealConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, correlate := range []bool{false, true} {
			kernel := make([]float64, n*n)
			src := make([]float64, n*n)
			for i := range kernel {
				kernel[i] = rng.Float64()
				src[i] = rng.Float64()
			}
			c, err := NewRealConv2D(n, kernel)
			if err != nil {
				t.Fatalf("NewRealConv2D(%d): %v", n, err)
			}
			want := naiveConv(n, src, kernel, correlate)
			got := make([]float64, n*n)
			c.Apply(src, got, n, c.NewScratch(), correlate)
			if d := maxAbs(got, want); d > 1e-10 {
				t.Errorf("n=%d correlate=%v: conv deviates by %g", n, correlate, d)
			}
		}
	}
}

func TestRealConv2DEvenKernel(t *testing.T) {
	// An even kernel (k(-t) = k(t) circularly) makes convolution equal
	// correlation; the convolver should detect it and still be exact.
	rng := rand.New(rand.NewSource(13))
	n := 16
	kernel := make([]float64, n*n)
	for y := 0; y <= n/2; y++ {
		for x := 0; x <= n/2; x++ {
			v := rng.Float64()
			kernel[y*n+x] = v
			kernel[((n-y)%n)*n+(n-x)%n] = v
			kernel[y*n+(n-x)%n] = v
			kernel[((n-y)%n)*n+x] = v
		}
	}
	c, err := NewRealConv2D(n, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if !c.even {
		t.Fatal("even kernel not detected")
	}
	src := make([]float64, n*n)
	for i := range src {
		src[i] = rng.Float64()
	}
	want := naiveConv(n, src, kernel, false)
	got := make([]float64, n*n)
	c.Apply(src, got, n, c.NewScratch(), false)
	if d := maxAbs(got, want); d > 1e-10 {
		t.Errorf("even-kernel conv deviates by %g", d)
	}
	// Correlation must give the same answer for an even kernel.
	got2 := make([]float64, n*n)
	c.Apply(src, got2, n, c.NewScratch(), true)
	for i := range got {
		if got[i] != got2[i] {
			t.Fatal("even-kernel conv and correlation differ")
		}
	}
}

func TestRealConv2DRowPruning(t *testing.T) {
	// With rows=r, src rows ≥ r must be ignored and dst rows [0, r)
	// must match the full transform of the zero-padded input.
	rng := rand.New(rand.NewSource(17))
	n := 16
	for _, rows := range []int{1, 3, 7, 10, 16} {
		kernel := make([]float64, n*n)
		src := make([]float64, n*n)
		for i := range kernel {
			kernel[i] = rng.Float64()
			src[i] = rng.NormFloat64() // garbage beyond rows must be ignored
		}
		padded := make([]float64, n*n)
		copy(padded, src[:rows*n])
		want := naiveConv(n, padded, kernel, false)
		c, err := NewRealConv2D(n, kernel)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n*n)
		c.Apply(src, got, rows, c.NewScratch(), false)
		if d := maxAbs(got[:rows*n], want[:rows*n]); d > 1e-10 {
			t.Errorf("rows=%d: pruned conv deviates by %g", rows, d)
		}
	}
}

func TestRealConv2DScratchReuse(t *testing.T) {
	// A scratch carries no state between calls: the second Apply with
	// the same input must reproduce the first bit-for-bit, even after a
	// different intervening workload.
	rng := rand.New(rand.NewSource(19))
	n := 8
	kernel := make([]float64, n*n)
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range kernel {
		kernel[i] = rng.Float64()
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	c, err := NewRealConv2D(n, kernel)
	if err != nil {
		t.Fatal(err)
	}
	s := c.NewScratch()
	first := make([]float64, n*n)
	c.Apply(a, first, n, s, false)
	c.Apply(b, make([]float64, n*n), 5, s, true)
	again := make([]float64, n*n)
	c.Apply(a, again, n, s, false)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("scratch reuse changed output at %d", i)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 79: 128, 128: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
