// Package fft implements the small, deterministic, dependency-free fast
// Fourier transform that backs the convolutional channel engine
// (fo.ConvChannel): an iterative radix-2 complex FFT over split
// real/imaginary float64 slices, plus a 2-D real-input circular convolver
// with a precomputed kernel spectrum.
//
// Design constraints, in order:
//
//   - Deterministic: no scratch sharing across goroutines inside a plan,
//     no parallelism, no architecture-dependent code paths — the same
//     input always produces the same bits on every machine, which the
//     byte-identical estimate guarantees of the collector and fleet tiers
//     rely on.
//   - Allocation-free in steady state: plans and scratch are reusable;
//     the EM loop runs thousands of transforms per decode.
//   - Small: power-of-two sizes only. Convolutions of a g×g grid embed in
//     the next power of two ≥ 2g−1, so arbitrary grid sides are served by
//     pow2 transforms.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan is a 1-D complex FFT of a fixed power-of-two size, operating in
// place on split re/im slices. A Plan is immutable after construction and
// safe for concurrent use (it holds no mutable state).
type Plan struct {
	n   int
	rev []int32 // bit-reversal permutation
	// Per-stage twiddle tables, concatenated: stage size s ≥ 8 stores its
	// s/2 factors e^{-2πik/s} contiguously, so the hot butterfly loop
	// streams twiddles instead of striding through one size-n table.
	stre, stim []float64
	stageOff   []int   // offset of each stage's table, indexed by log2(size)
	inv        float64 // 1/n
}

// NewPlan builds a plan for transforms of size n (a power of two ≥ 1).
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a positive power of two", n)
	}
	p := &Plan{n: n, inv: 1 / float64(n)}
	lg := bits.TrailingZeros(uint(n))
	p.rev = make([]int32, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse32(uint32(i)) >> (32 - lg))
	}
	if n == 1 {
		p.rev[0] = 0
	}
	p.stageOff = make([]int, lg+1)
	for size := 8; size <= n; size <<= 1 {
		p.stageOff[bits.TrailingZeros(uint(size))] = len(p.stre)
		for k := 0; k < size/2; k++ {
			ang := -2 * math.Pi * float64(k) / float64(size)
			p.stre = append(p.stre, math.Cos(ang))
			p.stim = append(p.stim, math.Sin(ang))
		}
	}
	return p, nil
}

// Size returns the transform size.
func (p *Plan) Size() int { return p.n }

// Forward computes the unscaled forward DFT of re/im (length n) in place:
// X_k = Σ_j x_j · e^{-2πijk/n}.
func (p *Plan) Forward(re, im []float64) {
	n := p.n
	if n == 1 {
		return
	}
	re = re[:n]
	im = im[:n]
	for i, r := range p.rev {
		if int32(i) < r {
			re[i], re[r] = re[r], re[i]
			im[i], im[r] = im[r], im[i]
		}
	}
	// Stage size=2: all twiddles are 1 — pure add/sub pairs.
	for k := 0; k < n; k += 2 {
		ar, ai := re[k], im[k]
		br, bi := re[k+1], im[k+1]
		re[k], im[k] = ar+br, ai+bi
		re[k+1], im[k+1] = ar-br, ai-bi
	}
	if n == 2 {
		return
	}
	// Stage size=4: twiddles are 1 and -i.
	for k := 0; k < n; k += 4 {
		ar, ai := re[k], im[k]
		br, bi := re[k+2], im[k+2]
		re[k], im[k] = ar+br, ai+bi
		re[k+2], im[k+2] = ar-br, ai-bi
		ar, ai = re[k+1], im[k+1]
		// (-i)·(x + iy) = y − ix
		tr, ti := im[k+3], -re[k+3]
		re[k+1], im[k+1] = ar+tr, ai+ti
		re[k+3], im[k+3] = ar-tr, ai-ti
	}
	// General stages, streaming each stage's contiguous twiddle table.
	lg := 3
	for size := 8; size <= n; size <<= 1 {
		half := size >> 1
		off := p.stageOff[lg]
		wre := p.stre[off : off+half : off+half]
		wim := p.stim[off : off+half : off+half]
		for start := 0; start < n; start += size {
			lo := re[start : start+half : start+half]
			li := im[start : start+half : start+half]
			hi := re[start+half : start+size : start+size]
			hiI := im[start+half : start+size : start+size]
			for k := 0; k < half; k++ {
				wr, wi := wre[k], wim[k]
				xr, xi := hi[k], hiI[k]
				tr := xr*wr - xi*wi
				ti := xr*wi + xi*wr
				ur, ui := lo[k], li[k]
				lo[k] = ur + tr
				li[k] = ui + ti
				hi[k] = ur - tr
				hiI[k] = ui - ti
			}
		}
		lg++
	}
}

// Forward2 computes the forward DFT of two independent signals in one
// interleaved pass: the twiddle stream is shared and the butterfly loop
// carries twice the independent arithmetic, which hides floating-point
// latency on the 2-D passes where transforms always come in batches.
// Bit-identical to two Forward calls.
func (p *Plan) Forward2(re1, im1, re2, im2 []float64) {
	n := p.n
	if n == 1 {
		return
	}
	re1, im1 = re1[:n], im1[:n]
	re2, im2 = re2[:n], im2[:n]
	for i, r := range p.rev {
		if int32(i) < r {
			re1[i], re1[r] = re1[r], re1[i]
			im1[i], im1[r] = im1[r], im1[i]
			re2[i], re2[r] = re2[r], re2[i]
			im2[i], im2[r] = im2[r], im2[i]
		}
	}
	for k := 0; k < n; k += 2 {
		ar, ai := re1[k], im1[k]
		br, bi := re1[k+1], im1[k+1]
		re1[k], im1[k] = ar+br, ai+bi
		re1[k+1], im1[k+1] = ar-br, ai-bi
		cr, ci := re2[k], im2[k]
		dr, di := re2[k+1], im2[k+1]
		re2[k], im2[k] = cr+dr, ci+di
		re2[k+1], im2[k+1] = cr-dr, ci-di
	}
	if n == 2 {
		return
	}
	for k := 0; k < n; k += 4 {
		ar, ai := re1[k], im1[k]
		br, bi := re1[k+2], im1[k+2]
		re1[k], im1[k] = ar+br, ai+bi
		re1[k+2], im1[k+2] = ar-br, ai-bi
		ar, ai = re1[k+1], im1[k+1]
		tr, ti := im1[k+3], -re1[k+3]
		re1[k+1], im1[k+1] = ar+tr, ai+ti
		re1[k+3], im1[k+3] = ar-tr, ai-ti
		ar, ai = re2[k], im2[k]
		br, bi = re2[k+2], im2[k+2]
		re2[k], im2[k] = ar+br, ai+bi
		re2[k+2], im2[k+2] = ar-br, ai-bi
		ar, ai = re2[k+1], im2[k+1]
		tr, ti = im2[k+3], -re2[k+3]
		re2[k+1], im2[k+1] = ar+tr, ai+ti
		re2[k+3], im2[k+3] = ar-tr, ai-ti
	}
	lg := 3
	for size := 8; size <= n; size <<= 1 {
		half := size >> 1
		off := p.stageOff[lg]
		wre := p.stre[off : off+half : off+half]
		wim := p.stim[off : off+half : off+half]
		for start := 0; start < n; start += size {
			lo1 := re1[start : start+half : start+half]
			li1 := im1[start : start+half : start+half]
			hi1 := re1[start+half : start+size : start+size]
			hj1 := im1[start+half : start+size : start+size]
			lo2 := re2[start : start+half : start+half]
			li2 := im2[start : start+half : start+half]
			hi2 := re2[start+half : start+size : start+size]
			hj2 := im2[start+half : start+size : start+size]
			for k := 0; k < half; k++ {
				wr, wi := wre[k], wim[k]
				xr, xi := hi1[k], hj1[k]
				tr := xr*wr - xi*wi
				ti := xr*wi + xi*wr
				ur, ui := lo1[k], li1[k]
				lo1[k] = ur + tr
				li1[k] = ui + ti
				hi1[k] = ur - tr
				hj1[k] = ui - ti
				yr, yi := hi2[k], hj2[k]
				sr := yr*wr - yi*wi
				si := yr*wi + yi*wr
				vr, vi := lo2[k], li2[k]
				lo2[k] = vr + sr
				li2[k] = vi + si
				hi2[k] = vr - sr
				hj2[k] = vi - si
			}
		}
		lg++
	}
}

// Inverse computes the scaled inverse DFT of re/im in place:
// x_j = (1/n) Σ_k X_k · e^{+2πijk/n}. It uses the swap identity
// IDFT(X) = swap(DFT(swap(X)))/n, so Forward and Inverse share one
// twiddle table and one code path.
func (p *Plan) Inverse(re, im []float64) {
	p.Forward(im, re)
	s := p.inv
	for i := range re[:p.n] {
		re[i] *= s
		im[i] *= s
	}
}

// Inverse2 is the two-signal interleaved Inverse, bit-identical to two
// Inverse calls.
func (p *Plan) Inverse2(re1, im1, re2, im2 []float64) {
	p.Forward2(im1, re1, im2, re2)
	s := p.inv
	for i := range re1[:p.n] {
		re1[i] *= s
		im1[i] *= s
	}
	for i := range re2[:p.n] {
		re2[i] *= s
		im2[i] *= s
	}
}

// inverseRaw / inverseRaw2 are the unscaled inverse transforms (the swap
// identity without the 1/n pass). The 2-D convolver pre-folds both
// dimensions' scalings into the kernel spectrum, so its inverse passes
// skip the per-element scaling sweeps entirely.
func (p *Plan) inverseRaw(re, im []float64)              { p.Forward(im, re) }
func (p *Plan) inverseRaw2(re1, im1, re2, im2 []float64) { p.Forward2(im1, re1, im2, re2) }

// ConvScratch is the per-call working memory of a RealConv2D. Scratch is
// NOT safe for concurrent use; callers that convolve from several
// goroutines hold one scratch each (fo.ConvChannel pools them).
type ConvScratch struct {
	sre, sim   []float64 // half-spectrum, (n/2+1) columns × n rows, column-major
	zre, zim   []float64 // one packed row pair
	z2re, z2im []float64 // second packed row pair for the interleaved passes
}

// RealConv2D performs circular 2-D convolution (or correlation) of real
// n×n grids against a fixed real kernel, with the kernel's spectrum
// precomputed once at construction. The transform is real-input
// optimised twice over: spatial rows are packed two at a time into one
// complex FFT (the classic two-for-one split), and only the n/2+1
// non-redundant spectral columns of the Hermitian half-spectrum are ever
// transformed, multiplied or inverted.
type RealConv2D struct {
	n    int
	plan *Plan
	kre  []float64 // kernel half-spectrum, same layout as ConvScratch
	kim  []float64
	// even reports that the kernel satisfies k(-t) = k(t) (circularly),
	// so its spectrum is exactly real: kim is discarded, the pointwise
	// multiply runs at half cost, and convolution equals correlation.
	even bool
}

// NewRealConv2D builds a convolver for an n×n grid from the kernel given
// as a row-major n×n real array (kernel[y*n+x] is the kernel value at
// circular displacement (x, y)). n must be a power of two.
func NewRealConv2D(n int, kernel []float64) (*RealConv2D, error) {
	if len(kernel) != n*n {
		return nil, fmt.Errorf("fft: kernel has %d entries for a %d×%d grid", len(kernel), n, n)
	}
	plan, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	c := &RealConv2D{n: n, plan: plan}
	c.even = kernelEven(n, kernel)
	half := n/2 + 1
	c.kre = make([]float64, half*n)
	c.kim = make([]float64, half*n)
	s := c.NewScratch()
	c.forward2D(kernel, n, s)
	// Fold both dimensions' inverse-FFT scalings (1/n each) into the
	// kernel spectrum once, so every Apply skips two full scaling sweeps.
	scale := plan.inv * plan.inv
	for i := range c.kre {
		c.kre[i] = s.sre[i] * scale
		c.kim[i] = s.sim[i] * scale
	}
	if c.even {
		// The spectrum of a real even signal is real; the residual
		// imaginary parts are pure rounding noise, so dropping them
		// both halves the multiply cost and removes that noise.
		for i := range c.kim {
			c.kim[i] = 0
		}
	}
	return c, nil
}

// kernelEven reports whether kernel[(-t) mod n] == kernel[t] exactly.
func kernelEven(n int, kernel []float64) bool {
	for y := 0; y < n; y++ {
		my := ((n - y) % n) * n
		for x := 0; x < n; x++ {
			if kernel[y*n+x] != kernel[my+(n-x)%n] {
				return false
			}
		}
	}
	return true
}

// NewScratch allocates working memory for Apply. One scratch serves any
// number of sequential Apply calls.
func (c *RealConv2D) NewScratch() *ConvScratch {
	half := c.n/2 + 1
	return &ConvScratch{
		sre:  make([]float64, half*c.n),
		sim:  make([]float64, half*c.n),
		zre:  make([]float64, c.n),
		zim:  make([]float64, c.n),
		z2re: make([]float64, c.n),
		z2im: make([]float64, c.n),
	}
}

// Size returns the grid side n.
func (c *RealConv2D) Size() int { return c.n }

// Apply computes dst = src ⊛ kernel (circular convolution) when correlate
// is false, or the circular cross-correlation Σ_s src(s)·kernel(s−t) when
// correlate is true. src and dst are row-major n×n real arrays (they may
// alias). rows prunes the transform: only src rows [0, rows) are read
// (the rest are treated as zero) and only dst rows [0, rows) are written
// — the EM sweeps embed a g×g grid in the top-left corner of the n×n
// circulant, so the remaining rows carry no information either way.
func (c *RealConv2D) Apply(src, dst []float64, rows int, s *ConvScratch, correlate bool) {
	n := c.n
	if rows > n {
		rows = n
	}
	if n == 1 {
		dst[0] = src[0] * c.kre[0]
		return
	}
	c.forward2D(src, rows, s)
	c.multiplySpectrum(s, correlate)
	c.inverse2D(dst, rows, s)
}

// forward2D fills s.sre/s.sim with the half-spectrum of src (rows [0,
// rows) significant), in column-major layout: column kx ∈ [0, n/2] lives
// at s.sre[kx*n : (kx+1)*n].
func (c *RealConv2D) forward2D(src []float64, rows int, s *ConvScratch) {
	n := c.n
	half := n / 2
	// Row pass: two real rows per complex FFT, two FFTs per interleaved
	// Forward2 call.
	r := 0
	for ; r+2 < rows; r += 4 {
		c.packRow(src, rows, r, s.zre, s.zim)
		c.packRow(src, rows, r+2, s.z2re, s.z2im)
		c.plan.Forward2(s.zre, s.zim, s.z2re, s.z2im)
		c.scatterRow(r, s.zre, s.zim, s)
		c.scatterRow(r+2, s.z2re, s.z2im, s)
	}
	if r < rows {
		c.packRow(src, rows, r, s.zre, s.zim)
		c.plan.Forward(s.zre, s.zim)
		c.scatterRow(r, s.zre, s.zim, s)
	}
	// Column pass: zero the unwritten tail rows, then transform each
	// spectral column (contiguous in this layout), pairwise.
	kx := 0
	for ; kx+1 <= half; kx += 2 {
		c1, c2 := kx*n, (kx+1)*n
		cre1 := s.sre[c1 : c1+n]
		cim1 := s.sim[c1 : c1+n]
		cre2 := s.sre[c2 : c2+n]
		cim2 := s.sim[c2 : c2+n]
		for t := rows; t < n; t++ {
			cre1[t] = 0
			cim1[t] = 0
			cre2[t] = 0
			cim2[t] = 0
		}
		c.plan.Forward2(cre1, cim1, cre2, cim2)
	}
	if kx <= half {
		col := kx * n
		cre := s.sre[col : col+n]
		cim := s.sim[col : col+n]
		for t := rows; t < n; t++ {
			cre[t] = 0
			cim[t] = 0
		}
		c.plan.Forward(cre, cim)
	}
}

// packRow loads the real row pair (r, r+1) into one complex signal,
// zero-filling rows beyond the significant range.
func (c *RealConv2D) packRow(src []float64, rows, r int, zre, zim []float64) {
	n := c.n
	copy(zre, src[r*n:(r+1)*n])
	if r+1 < rows {
		copy(zim, src[(r+1)*n:(r+2)*n])
	} else {
		for i := range zim {
			zim[i] = 0
		}
	}
}

// scatterRow separates a packed row pair's spectrum into its two
// Hermitian halves — X0 = (Z + conj(Z̃))/2, X1 = (Z − conj(Z̃))/2i — and
// scatters them into the spectral columns at rows r and r+1.
func (c *RealConv2D) scatterRow(r int, zre, zim []float64, s *ConvScratch) {
	n := c.n
	half := n / 2
	mask := n - 1
	for kx := 0; kx <= half; kx++ {
		m := (n - kx) & mask
		ar, ai := zre[kx], zim[kx]
		br, bi := zre[m], -zim[m]
		col := kx * n
		s.sre[col+r] = (ar + br) / 2
		s.sim[col+r] = (ai + bi) / 2
		if r+1 < n {
			s.sre[col+r+1] = (ai - bi) / 2
			s.sim[col+r+1] = (br - ar) / 2
		}
	}
}

// multiplySpectrum multiplies the half-spectrum in s by the kernel
// spectrum (conjugated for correlation).
func (c *RealConv2D) multiplySpectrum(s *ConvScratch, correlate bool) {
	if c.even {
		// Real kernel spectrum: conj(K) = K, one multiply per float.
		for i, k := range c.kre {
			s.sre[i] *= k
			s.sim[i] *= k
		}
		return
	}
	sign := 1.0
	if correlate {
		sign = -1
	}
	for i, kr := range c.kre {
		ki := sign * c.kim[i]
		ar, ai := s.sre[i], s.sim[i]
		s.sre[i] = ar*kr - ai*ki
		s.sim[i] = ar*ki + ai*kr
	}
}

// inverse2D inverts the half-spectrum in s back to real space, writing
// dst rows [0, rows).
func (c *RealConv2D) inverse2D(dst []float64, rows int, s *ConvScratch) {
	n := c.n
	half := n / 2
	// Inverse column pass, pairwise. The 1/n scalings of both inverse
	// passes were folded into the kernel spectrum at construction, so the
	// raw (unscaled) transforms apply here and in the row pass below.
	kx := 0
	for ; kx+1 <= half; kx += 2 {
		c1, c2 := kx*n, (kx+1)*n
		c.plan.inverseRaw2(s.sre[c1:c1+n], s.sim[c1:c1+n], s.sre[c2:c2+n], s.sim[c2:c2+n])
	}
	if kx <= half {
		col := kx * n
		c.plan.inverseRaw(s.sre[col:col+n], s.sim[col:col+n])
	}
	// Inverse row pass: reconstruct the full row spectrum of a packed row
	// pair from the Hermitian halves, invert, and unpack two real rows —
	// again two packed pairs per interleaved call.
	r := 0
	for ; r+2 < rows; r += 4 {
		c.gatherRow(r, s.zre, s.zim, s)
		c.gatherRow(r+2, s.z2re, s.z2im, s)
		c.plan.inverseRaw2(s.zre, s.zim, s.z2re, s.z2im)
		c.unpackRow(dst, rows, r, s.zre, s.zim)
		c.unpackRow(dst, rows, r+2, s.z2re, s.z2im)
	}
	if r < rows {
		c.gatherRow(r, s.zre, s.zim, s)
		c.plan.inverseRaw(s.zre, s.zim)
		c.unpackRow(dst, rows, r, s.zre, s.zim)
	}
}

// gatherRow rebuilds the packed complex row spectrum Z = X0 + i·X1 for
// the row pair (r, r+1) from the Hermitian half-spectrum columns.
func (c *RealConv2D) gatherRow(r int, zre, zim []float64, s *ConvScratch) {
	n := c.n
	half := n / 2
	r1 := r + 1
	if r1 >= n {
		r1 = r
	}
	for kx := 0; kx <= half; kx++ {
		col := kx * n
		zre[kx] = s.sre[col+r] - s.sim[col+r1]
		zim[kx] = s.sim[col+r] + s.sre[col+r1]
	}
	for kx := 1; kx < half; kx++ {
		col := kx * n
		// Z[n−kx] = conj(X0[kx]) + i·conj(X1[kx])
		zre[n-kx] = s.sre[col+r] + s.sim[col+r1]
		zim[n-kx] = -s.sim[col+r] + s.sre[col+r1]
	}
}

// unpackRow writes the two real rows of an inverted packed pair.
func (c *RealConv2D) unpackRow(dst []float64, rows, r int, zre, zim []float64) {
	n := c.n
	copy(dst[r*n:(r+1)*n], zre)
	if r+1 < rows {
		copy(dst[(r+1)*n:(r+2)*n], zim)
	}
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
