package synth

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/rng"
)

func TestNormalMomentsAndCorrelation(t *testing.T) {
	r := rng.New(1)
	pts, err := Normal(r, 100000, 0, 0, 1, 1, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		syy += p.Y * p.Y
		sxy += p.X * p.Y
	}
	n := float64(len(pts))
	mx, my := sx/n, sy/n
	vx, vy := sxx/n-mx*mx, syy/n-my*my
	cov := sxy/n - mx*my
	if math.Abs(mx) > 0.02 || math.Abs(my) > 0.02 {
		t.Fatalf("means (%v, %v) too far from 0", mx, my)
	}
	if math.Abs(vx-1) > 0.05 || math.Abs(vy-1) > 0.05 {
		t.Fatalf("variances (%v, %v) too far from 1", vx, vy)
	}
	if rho := cov / math.Sqrt(vx*vy); math.Abs(rho-0.5) > 0.03 {
		t.Fatalf("correlation %v, want 0.5", rho)
	}
}

func TestNormalRespectsClip(t *testing.T) {
	r := rng.New(2)
	pts, err := Normal(r, 20000, 0, 0, 2, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p.X) >= 3 || math.Abs(p.Y) >= 3 {
			t.Fatalf("point %v escaped clip square", p)
		}
	}
}

func TestNormalErrors(t *testing.T) {
	r := rng.New(3)
	if _, err := Normal(r, -1, 0, 0, 1, 1, 0, 5); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := Normal(r, 10, 0, 0, 1, 1, 1, 5); err == nil {
		t.Fatal("rho=1 accepted")
	}
	if _, err := Normal(r, 10, 0, 0, 0, 1, 0, 5); err == nil {
		t.Fatal("zero sigma accepted")
	}
}

func TestSkewZipfCDF(t *testing.T) {
	r := rng.New(5)
	pts, err := SkewZipf(r, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Verify F(x) = log2(x+1) at a few quantiles.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		count := 0
		for _, p := range pts {
			if p.X <= x {
				count++
			}
		}
		got := float64(count) / float64(len(pts))
		want := math.Log2(x + 1)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("F(%v) = %v, want %v", x, got, want)
		}
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatalf("point %v outside [0,1)²", p)
		}
	}
}

func TestSkewZipfSkewsTowardOrigin(t *testing.T) {
	r := rng.New(7)
	pts, err := SkewZipf(r, 50000)
	if err != nil {
		t.Fatal(err)
	}
	low, high := 0, 0
	for _, p := range pts {
		if p.X < 0.5 {
			low++
		} else {
			high++
		}
	}
	if low <= high {
		t.Fatalf("Zipf not skewed: %d low vs %d high", low, high)
	}
}

func TestMNormalThreeModes(t *testing.T) {
	r := rng.New(9)
	pts, err := MNormal(r, 90000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 90000 {
		t.Fatalf("got %d points", len(pts))
	}
	// Count points near each designed centre: each component should hold
	// roughly a third of the mass within radius 2.
	centres := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 3}, {X: 1.5, Y: -1}}
	for _, c := range centres {
		near := 0
		for _, p := range pts {
			if p.Dist(c) < 2 {
				near++
			}
		}
		if near < 20000 {
			t.Fatalf("component at %v holds only %d points", c, near)
		}
	}
}

func TestCityPointsOnUnitSquare(t *testing.T) {
	r := rng.New(11)
	pts, err := City(r, CityConfig{N: 20000, Streets: 10, Hotspots: 5, StreetFrac: 0.7, Jitter: 0.004, HotSigma: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatalf("point %v outside unit square", p)
		}
	}
}

func TestCityIsConcentrated(t *testing.T) {
	// City points should be far more concentrated than uniform: the top
	// 10% of cells of a 20×20 grid should hold well over half the mass.
	r := rng.New(13)
	pts, err := City(r, CityConfig{N: 50000, Streets: 10, Hotspots: 5, StreetFrac: 0.75, Jitter: 0.004, HotSigma: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	const d = 20
	counts := make([]int, d*d)
	for _, p := range pts {
		x := int(p.X * d)
		y := int(p.Y * d)
		counts[y*d+x]++
	}
	// Partial selection: count mass in the 40 largest cells.
	top := make([]int, len(counts))
	copy(top, counts)
	for i := 0; i < 40; i++ {
		maxJ := i
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[maxJ] {
				maxJ = j
			}
		}
		top[i], top[maxJ] = top[maxJ], top[i]
	}
	sumTop := 0
	for i := 0; i < 40; i++ {
		sumTop += top[i]
	}
	// Under a uniform distribution the top 40 of 400 cells would hold
	// ~10% of the mass; the street/hot-spot structure concentrates far
	// more than that.
	if float64(sumTop) < 0.35*float64(len(pts)) {
		t.Fatalf("top 10%% of cells hold only %d/%d points", sumTop, len(pts))
	}
}

func TestCityConfigValidation(t *testing.T) {
	r := rng.New(15)
	if _, err := City(r, CityConfig{N: -1, Streets: 2, Hotspots: 2}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := City(r, CityConfig{N: 10, Streets: 0, Hotspots: 2}); err == nil {
		t.Fatal("zero streets accepted")
	}
	if _, err := City(r, CityConfig{N: 10, Streets: 2, Hotspots: 2, StreetFrac: 1.5}); err == nil {
		t.Fatal("street fraction >1 accepted")
	}
}

func TestChicagoCrimeLikePartCounts(t *testing.T) {
	r := rng.New(17)
	ds, err := ChicagoCrimeLike(r, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Parts) != 3 {
		t.Fatalf("got %d parts", len(ds.Parts))
	}
	wantTotals := []int{2166, 1736, 691} // 1% of Table III
	for i, part := range ds.Parts {
		got := len(ds.Extract(part))
		if math.Abs(float64(got-wantTotals[i])) > 3 {
			t.Fatalf("part %s has %d points, want ≈%d", part.Name, got, wantTotals[i])
		}
	}
}

func TestNYCGreenTaxiLikeRelativeDensities(t *testing.T) {
	r := rng.New(19)
	ds, err := NYCGreenTaxiLike(r, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a := len(ds.Extract(ds.Parts[0]))
	b := len(ds.Extract(ds.Parts[1]))
	c := len(ds.Extract(ds.Parts[2]))
	// Part B dominates in the real data (42,195 vs ~10k each).
	if !(b > 3*a && b > 3*c) {
		t.Fatalf("NYC part densities %d/%d/%d do not match Table III shape", a, b, c)
	}
}

func TestPartsAreDisjoint(t *testing.T) {
	r := rng.New(21)
	ds, err := ChicagoCrimeLike(r, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, part := range ds.Parts {
		total += len(ds.Extract(part))
	}
	if total != len(ds.Points) {
		t.Fatalf("parts cover %d of %d points", total, len(ds.Points))
	}
}

func TestScaleOf(t *testing.T) {
	if Scale(0.5).Of(100) != 50 {
		t.Fatal("scale 0.5 of 100")
	}
	if Scale(0).Of(100) != 100 {
		t.Fatal("zero scale should default to 1")
	}
	if Scale(1e-9).Of(100) != 1 {
		t.Fatal("tiny scale should floor at 1 point")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a, err := City(rng.New(23), CityConfig{N: 100, Streets: 3, Hotspots: 2, StreetFrac: 0.5, Jitter: 0.01, HotSigma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := City(rng.New(23), CityConfig{N: 100, Streets: 3, Hotspots: 2, StreetFrac: 0.5, Jitter: 0.01, HotSigma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different cities")
		}
	}
}
