// Package synth generates the evaluation workloads of Section VII-A.
//
// The three synthetic families follow the paper exactly:
//
//   - Normal(µx, µy, σx, σy, ρ): correlated 2-D Gaussian points, clipped
//     to a square range;
//   - SZipf: per-dimension skew-Zipf points with CDF log₂(x+1) on [0,1);
//   - MNormal: a three-component Gaussian mixture.
//
// The two real datasets (Chicago Crime 2022, NYC Green Taxi 2016) are
// served from city open-data portals and are unavailable offline, so this
// package provides *city-like* generators that reproduce what the
// mechanisms are sensitive to — points concentrated along a road network
// with skewed hot spots, split into three rectangular parts A/B/C with the
// paper's relative densities (Table III). DESIGN.md records the
// substitution.
package synth

import (
	"fmt"
	"math"

	"dpspatial/internal/geom"
	"dpspatial/internal/rng"
)

// Dataset is a named point cloud, optionally pre-split into parts
// (Table III's A/B/C squares).
type Dataset struct {
	Name   string
	Points []geom.Point
	Parts  []Part
}

// Part is a named square extraction region of a dataset.
type Part struct {
	Name string
	Rect geom.Rect
}

// Extract returns the points of the dataset falling inside the part.
func (d *Dataset) Extract(p Part) []geom.Point {
	var out []geom.Point
	for _, pt := range d.Points {
		if p.Rect.Contains(pt) {
			out = append(out, pt)
		}
	}
	return out
}

// Normal draws n points from a correlated 2-D Gaussian
// (µx, µy, σx², σy², ρ), rejecting points outside the clip square
// [−clip, clip]² — the paper's Normal(0,0,1,1,0.5) keeps points within
// (−5, 5)².
func Normal(r *rng.RNG, n int, muX, muY, sigX, sigY, rho, clip float64) ([]geom.Point, error) {
	if n < 0 {
		return nil, fmt.Errorf("synth: negative count %d", n)
	}
	if rho <= -1 || rho >= 1 {
		return nil, fmt.Errorf("synth: correlation %v outside (-1, 1)", rho)
	}
	if sigX <= 0 || sigY <= 0 {
		return nil, fmt.Errorf("synth: non-positive standard deviation")
	}
	pts := make([]geom.Point, 0, n)
	c := math.Sqrt(1 - rho*rho)
	for len(pts) < n {
		z1, z2 := r.NormFloat64(), r.NormFloat64()
		x := muX + sigX*z1
		y := muY + sigY*(rho*z1+c*z2)
		if clip > 0 && (math.Abs(x-muX) >= clip || math.Abs(y-muY) >= clip) {
			continue
		}
		pts = append(pts, geom.Point{X: x, Y: y})
	}
	return pts, nil
}

// SkewZipf draws n points whose coordinates independently follow the skew
// Zipf law of Section VII-A with CDF F(x) = log₂(x+1) on [0, 1): inverse
// sampling gives x = 2^U − 1.
func SkewZipf(r *rng.RNG, n int) ([]geom.Point, error) {
	if n < 0 {
		return nil, fmt.Errorf("synth: negative count %d", n)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: math.Exp2(r.Float64()) - 1,
			Y: math.Exp2(r.Float64()) - 1,
		}
	}
	return pts, nil
}

// MNormal draws the paper's multi-centre normal mixture: three components
// of count n/3 each with correlations 0.5, 0 and −0.2. The paper's
// reported point range ([−4.25, 6.18] × [−4.32, 6.44]) implies distinct
// centres even though the text lists all three at the origin, so the
// components are placed at (0,0), (3,3) and (1.5,−1) to reproduce the
// multi-modal shape.
func MNormal(r *rng.RNG, n int) ([]geom.Point, error) {
	if n < 0 {
		return nil, fmt.Errorf("synth: negative count %d", n)
	}
	type comp struct {
		muX, muY, rho float64
	}
	comps := []comp{{0, 0, 0.5}, {3, 3, 0}, {1.5, -1, -0.2}}
	pts := make([]geom.Point, 0, n)
	for i, c := range comps {
		cnt := n / 3
		if i == len(comps)-1 {
			cnt = n - len(pts)
		}
		sub, err := Normal(r, cnt, c.muX, c.muY, 1, 1, c.rho, 4.5)
		if err != nil {
			return nil, err
		}
		pts = append(pts, sub...)
	}
	return pts, nil
}
