package synth

import (
	"fmt"
	"math"

	"dpspatial/internal/geom"
	"dpspatial/internal/rng"
)

// CityConfig shapes a city-like point cloud: points clustered along an
// axis-aligned street grid plus Gaussian hot spots, the structure the
// paper's real datasets (crime events on Chicago's street grid, taxi
// pickups on Manhattan's) exhibit and that the shrinkage method exploits.
type CityConfig struct {
	N          int     // total point count
	Streets    int     // streets per axis
	Hotspots   int     // number of hot-spot clusters
	StreetFrac float64 // fraction of points on streets (rest in hot spots)
	Jitter     float64 // perpendicular street jitter (domain units)
	HotSigma   float64 // hot-spot spread (domain units)
}

func (c CityConfig) validate() error {
	if c.N < 0 {
		return fmt.Errorf("synth: negative count %d", c.N)
	}
	if c.Streets < 1 || c.Hotspots < 1 {
		return fmt.Errorf("synth: need at least one street and hot spot")
	}
	if c.StreetFrac < 0 || c.StreetFrac > 1 {
		return fmt.Errorf("synth: street fraction %v outside [0,1]", c.StreetFrac)
	}
	return nil
}

// City generates a city-like point cloud on [0,1]². Street positions,
// street popularity (Zipf-weighted) and hot-spot centres are drawn from r,
// so a fixed seed yields a fixed city.
func City(r *rng.RNG, cfg CityConfig) ([]geom.Point, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Street layout: positions in [0.05, 0.95], Zipf-ish popularity.
	hPos := make([]float64, cfg.Streets)
	vPos := make([]float64, cfg.Streets)
	weights := make([]float64, 2*cfg.Streets)
	for i := 0; i < cfg.Streets; i++ {
		hPos[i] = 0.05 + 0.9*r.Float64()
		vPos[i] = 0.05 + 0.9*r.Float64()
		weights[i] = 1 / float64(i+1)
		weights[cfg.Streets+i] = 1 / float64(i+1)
	}
	streetTable, err := rng.NewAlias(weights)
	if err != nil {
		return nil, err
	}
	// Hot spots near street intersections.
	type spot struct{ x, y float64 }
	spots := make([]spot, cfg.Hotspots)
	spotW := make([]float64, cfg.Hotspots)
	for i := range spots {
		spots[i] = spot{x: hPos[r.Intn(cfg.Streets)], y: vPos[r.Intn(cfg.Streets)]}
		spotW[i] = 1 / float64(i+1)
	}
	spotTable, err := rng.NewAlias(spotW)
	if err != nil {
		return nil, err
	}

	clamp := func(v float64) float64 { return math.Min(0.999999, math.Max(0, v)) }
	pts := make([]geom.Point, 0, cfg.N)
	for len(pts) < cfg.N {
		if r.Float64() < cfg.StreetFrac {
			s := streetTable.Draw(r)
			along := r.Float64()
			off := r.NormFloat64() * cfg.Jitter
			if s < cfg.Streets { // horizontal street: fixed y
				pts = append(pts, geom.Point{X: clamp(along), Y: clamp(hPos[s] + off)})
			} else {
				pts = append(pts, geom.Point{X: clamp(vPos[s-cfg.Streets] + off), Y: clamp(along)})
			}
		} else {
			sp := spots[spotTable.Draw(r)]
			pts = append(pts, geom.Point{
				X: clamp(sp.x + r.NormFloat64()*cfg.HotSigma),
				Y: clamp(sp.y + r.NormFloat64()*cfg.HotSigma),
			})
		}
	}
	return pts, nil
}

// Scale controls dataset sizes: 1.0 reproduces the paper's point counts,
// smaller values subsample proportionally (the mechanisms' comparison is
// insensitive to absolute counts beyond sampling noise).
type Scale float64

func (s Scale) Of(n int) int {
	if s <= 0 {
		s = 1
	}
	v := int(math.Round(float64(s) * float64(n)))
	if v < 1 {
		v = 1
	}
	return v
}

// ChicagoCrimeLike builds the Crime stand-in: a dense city with three
// extraction parts whose point densities mirror Table III
// (216,595 / 173,552 / 69,068 at Scale 1).
func ChicagoCrimeLike(r *rng.RNG, scale Scale) (*Dataset, error) {
	return cityDataset(r, "Crime", scale, [3]int{216595, 173552, 69068}, CityConfig{
		Streets: 14, Hotspots: 10, StreetFrac: 0.75, Jitter: 0.004, HotSigma: 0.03,
	})
}

// NYCGreenTaxiLike builds the NYC stand-in with Table III part counts
// (10,561 / 42,195 / 9,186 at Scale 1).
func NYCGreenTaxiLike(r *rng.RNG, scale Scale) (*Dataset, error) {
	return cityDataset(r, "NYC", scale, [3]int{10561, 42195, 9186}, CityConfig{
		Streets: 18, Hotspots: 6, StreetFrac: 0.8, Jitter: 0.003, HotSigma: 0.02,
	})
}

// cityDataset builds three city blocks, one per part, placed in disjoint
// unit squares of a 3×1 strip, so each part is a square sub-domain exactly
// like the paper's A/B/C extractions.
func cityDataset(r *rng.RNG, name string, scale Scale, counts [3]int, cfg CityConfig) (*Dataset, error) {
	ds := &Dataset{Name: name}
	labels := [3]string{"A", "B", "C"}
	for i := 0; i < 3; i++ {
		cfg.N = scale.Of(counts[i])
		pts, err := City(r.Split(), cfg)
		if err != nil {
			return nil, err
		}
		offX := float64(i)
		for _, p := range pts {
			ds.Points = append(ds.Points, geom.Point{X: p.X + offX, Y: p.Y})
		}
		ds.Parts = append(ds.Parts, Part{
			Name: labels[i],
			Rect: geom.Rect{MinX: offX, MinY: 0, MaxX: offX + 1, MaxY: 1},
		})
	}
	return ds, nil
}
