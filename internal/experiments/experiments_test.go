package experiments

import (
	"math"
	"strings"
	"testing"
)

// fastConfig keeps harness tests in the seconds range.
func fastConfig() Config {
	return Config{
		Scale:         0.002,
		Repeats:       1,
		Seed:          7,
		MaxPoints:     2000,
		LPCalibration: false,
	}
}

func TestDatasetPartsGenerate(t *testing.T) {
	s := NewSuite(fastConfig())
	for _, name := range DatasetNames() {
		parts, err := s.parts(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(parts) == 0 {
			t.Fatalf("%s: no parts", name)
		}
		for _, p := range parts {
			if len(p.points) == 0 {
				t.Fatalf("%s part %s: no points", name, p.name)
			}
			if len(p.points) > 2000 {
				t.Fatalf("%s part %s: cap not applied (%d points)", name, p.name, len(p.points))
			}
		}
	}
	if _, err := s.parts("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTruthHistMatchesPartSize(t *testing.T) {
	s := NewSuite(fastConfig())
	parts, err := s.parts("Normal")
	if err != nil {
		t.Fatal(err)
	}
	h, err := parts[0].truthHist(6)
	if err != nil {
		t.Fatal(err)
	}
	if int(h.Total()) != len(parts[0].points) {
		t.Fatalf("hist total %v for %d points", h.Total(), len(parts[0].points))
	}
}

func TestEvalOneAllMechanisms(t *testing.T) {
	s := NewSuite(fastConfig())
	for _, mech := range MechanismNames() {
		w2, err := s.evalOne(mech, "SZipf", 3, 2.0, MetricExact)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if w2 < 0 || math.IsNaN(w2) || w2 > 5 {
			t.Fatalf("%s: implausible W2 %v on a 3x3 grid", mech, w2)
		}
	}
	if _, err := s.evalOne("nope", "SZipf", 3, 2, MetricExact); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestEvalOneDeterministic(t *testing.T) {
	a := NewSuite(fastConfig())
	b := NewSuite(fastConfig())
	w1, err := a.evalOne("DAM", "Normal", 4, 2, MetricExact)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := b.evalOne("DAM", "Normal", 4, 2, MetricExact)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatalf("same config produced %v and %v", w1, w2)
	}
}

func TestDAMBeatsMDSWOnCorrelatedData(t *testing.T) {
	// The paper's headline claim at a small but non-trivial setting.
	cfg := fastConfig()
	cfg.Repeats = 2
	cfg.MaxPoints = 4000
	cfg.Scale = 0.01
	s := NewSuite(cfg)
	dam, err := s.evalOne("DAM", "Normal", 5, 3.5, MetricExact)
	if err != nil {
		t.Fatal(err)
	}
	mdswW2, err := s.evalOne("MDSW", "Normal", 5, 3.5, MetricExact)
	if err != nil {
		t.Fatal(err)
	}
	if dam >= mdswW2 {
		t.Fatalf("DAM W2 %v not below MDSW %v", dam, mdswW2)
	}
}

func TestFig8Shape(t *testing.T) {
	// Figure 8 at reduced size: just verify the runner produces aligned
	// series over the multipliers for every dataset.
	cfg := fastConfig()
	s := NewSuite(cfg)
	fig, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(DatasetNames()) {
		t.Fatalf("fig8 has %d series", len(fig.Series))
	}
	for _, series := range fig.Series {
		if len(series.X) != len(RadiusMultipliers) || len(series.Y) != len(series.X) {
			t.Fatalf("series %s misaligned", series.Label)
		}
		for _, y := range series.Y {
			if y < 0 || math.IsNaN(y) {
				t.Fatalf("series %s has invalid W2 %v", series.Label, y)
			}
		}
	}
}

func TestFig9SmallDPanel(t *testing.T) {
	s := NewSuite(fastConfig())
	fig, err := s.Fig9SmallD("SZipf")
	if err != nil {
		t.Fatal(err)
	}
	if fig.Name != "fig9d" {
		t.Fatalf("panel name %s, want fig9d (SZipf is 4th dataset)", fig.Name)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("got %d series", len(fig.Series))
	}
}

func TestFig14Runners(t *testing.T) {
	cfg := fastConfig()
	s := NewSuite(cfg)
	// Single point each to keep runtime small: use the internal eval.
	for _, mech := range TrajectoryMechanismNames() {
		w2, err := s.evalTrajectory(mech, 5, 1.5)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if w2 < 0 || math.IsNaN(w2) {
			t.Fatalf("%s: invalid W2 %v", mech, w2)
		}
	}
	if _, err := s.evalTrajectory("nope", 5, 1.5); err == nil {
		t.Fatal("unknown trajectory mechanism accepted")
	}
}

func TestTables(t *testing.T) {
	s := NewSuite(fastConfig())
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 6 {
		t.Fatalf("table 3 has %d rows, want 6 (2 datasets × 3 parts)", len(t3.Rows))
	}
	t4 := s.Table4()
	if len(t4.Rows) != 3 {
		t.Fatalf("table 4 has %d rows", len(t4.Rows))
	}
	t5 := s.Table5()
	if len(t5.Rows) != 2 {
		t.Fatalf("table 5 has %d rows", len(t5.Rows))
	}
	if !strings.Contains(t3.Format(), "Crime") {
		t.Fatal("table 3 formatting lost dataset names")
	}
}

func TestFigureFormat(t *testing.T) {
	fig := &Figure{
		Name: "figX", Title: "demo", XLabel: "d", YLabel: "W2",
		Series: []Series{
			{Label: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Label: "B", X: []float64{1, 2}, Y: []float64{0.7}},
		},
	}
	out := fig.Format()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "0.5000") {
		t.Fatalf("unexpected format output:\n%s", out)
	}
	if !strings.Contains(out, "-") { // missing value placeholder
		t.Fatal("missing-value placeholder absent")
	}
}

func TestSemCalibrationCachesAndOrdersPrivacy(t *testing.T) {
	cfg := fastConfig()
	cfg.LPCalibration = true
	s := NewSuite(cfg)
	e1, err := s.semEpsilon(3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.semEpsilon(3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("calibration cache miss")
	}
	// A larger DAM budget (less privacy) must calibrate to a larger SEM
	// budget.
	e3, err := s.semEpsilon(3, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if e3 <= e1 {
		t.Fatalf("eps'=%v for eps=5 not above eps'=%v for eps=2", e3, e1)
	}
}

func TestSummarizeShapes(t *testing.T) {
	figs := map[string]*Figure{
		"fig9a": {
			Name: "fig9a",
			Series: []Series{
				{Label: "DAM", X: []float64{1, 2}, Y: []float64{0.1, 0.2}},
				{Label: "MDSW", X: []float64{1, 2}, Y: []float64{0.3, 0.4}},
				{Label: "HUEM", X: []float64{1, 2}, Y: []float64{0.2, 0.3}},
			},
		},
		"fig8": {
			Name: "fig8",
			Series: []Series{
				{Label: "Crime", X: []float64{0.33, 0.67, 1, 1.33, 1.67}, Y: []float64{0.5, 0.3, 0.2, 0.3, 0.5}},
			},
		},
	}
	lines := SummarizeShapes(figs)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "PASS") {
		t.Fatalf("expected passing claims, got:\n%s", joined)
	}
	// Flip DAM and MDSW: the claim must now diverge.
	figs["fig9a"].Series[0].Y = []float64{0.5, 0.6}
	lines = SummarizeShapes(figs)
	joined = strings.Join(lines, "\n")
	if !strings.Contains(joined, "DIVERGES") {
		t.Fatalf("expected diverging claim, got:\n%s", joined)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale <= 0 || c.Repeats < 1 || c.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if _, err := (Config{}).W2(nil, nil, Metric(99)); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
