package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func tinyConfig() Config {
	return Config{
		Scale:         0.002,
		Repeats:       1,
		Seed:          11,
		MaxPoints:     1500,
		LPCalibration: false,
	}
}

func TestAblationShrinkageProducesAllDatasets(t *testing.T) {
	s := NewSuite(tinyConfig())
	tab, err := s.AblationShrinkage()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(DatasetNames()) {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, col := range []int{1, 2} {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v < 0 {
				t.Fatalf("row %v has invalid W2 %q", row, row[col])
			}
		}
	}
}

func TestAblationPostprocessRuns(t *testing.T) {
	s := NewSuite(tinyConfig())
	tab, err := s.AblationPostprocess("SZipf")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("SZipf should have one part, got %d rows", len(tab.Rows))
	}
	if len(tab.Rows[0]) != 3 {
		t.Fatalf("row %v should have EM and EMS columns", tab.Rows[0])
	}
}

func TestAblationBaselinesOrdering(t *testing.T) {
	cfg := tinyConfig()
	cfg.Repeats = 2
	cfg.MaxPoints = 4000
	cfg.Scale = 0.01
	s := NewSuite(cfg)
	tab, err := s.AblationBaselines("Normal", 6, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		vals[row[0]] = v
	}
	// The categorical strawman must lose to the distance-aware DAM.
	if vals["DAM"] >= vals["CFO"] {
		t.Fatalf("DAM W2 %v not below CFO %v", vals["DAM"], vals["CFO"])
	}
	if len(vals) != 6 {
		t.Fatalf("expected 6 mechanisms, got %v", vals)
	}
	if _, ok := vals["AdaptiveGrid"]; !ok {
		t.Fatalf("AdaptiveGrid missing from %v", vals)
	}
}

func TestRangeQueryExperimentSeriesShape(t *testing.T) {
	s := NewSuite(tinyConfig())
	fig, err := s.RangeQueryExperiment("SZipf", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("got %d series", len(fig.Series))
	}
	labels := map[string]bool{}
	for _, series := range fig.Series {
		labels[series.Label] = true
		if len(series.X) == 0 {
			t.Fatalf("series %s empty", series.Label)
		}
		for _, y := range series.Y {
			if y < 0 {
				t.Fatalf("series %s has negative MSE", series.Label)
			}
		}
	}
	for _, want := range []string{"DAM", "AHEAD", "CFO"} {
		if !labels[want] {
			t.Fatalf("missing series %q", want)
		}
	}
	if !strings.Contains(fig.Format(), "selectivity") {
		t.Fatal("figure format lost the x label")
	}
}
