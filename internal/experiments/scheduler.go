package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// This file is the suite's trial scheduler: every figure, table and
// ablation decomposes its work into cells (one mechanism at one setting)
// and trials (one (part, repeat) measurement inside a cell), and both
// layers fan out over one bounded worker pool shared by the whole suite.
//
// Reproducibility contract: each trial derives its RNG stream from the
// trial's identity — (seed, part index, repeat, mechanism hash) — never
// from the worker that happens to execute it, and every reduction runs
// in deterministic trial order. Suite output is therefore byte-identical
// for a fixed seed regardless of the worker count, and identical to the
// sequential evaluation order the harness used before parallelisation.

// pool bounds concurrent trial execution suite-wide.
type pool struct {
	sem chan struct{}
}

func newPool(workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &pool{sem: make(chan struct{}, workers)}
}

// run executes jobs 0..n-1 under the pool's concurrency bound and returns
// the lowest-index error, if any. Jobs write their results into
// caller-owned slots indexed by job, so output ordering — including
// floating-point reduction order — is independent of scheduling. Jobs
// must not call run themselves; the suite fans work out in flat phases
// instead of nesting (a job blocking on child jobs while holding a worker
// slot would deadlock a full pool).
func (p *pool) run(n int, job func(i int) error) error {
	if n == 0 {
		return nil
	}
	if cap(p.sem) == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			p.sem <- struct{}{}
			defer func() { <-p.sem }()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTrialPhases is the generic two-phase fan-out: phase 1 builds one
// plan per cell (plan(i) returns the cell's trial count), phase 2 runs
// every (cell, trial) pair, both under the suite's pool. It returns each
// cell's trial results in deterministic (cell, trial) order. Neither
// callback may fan out further — nesting would deadlock the pool.
func (s *Suite) runTrialPhases(cells int, plan func(i int) (int, error), trial func(i, j int) (float64, error)) ([][]float64, error) {
	counts := make([]int, cells)
	if err := s.pool.run(cells, func(i int) error {
		n, err := plan(i)
		counts[i] = n
		return err
	}); err != nil {
		return nil, err
	}
	offsets := make([]int, cells+1)
	for i, n := range counts {
		offsets[i+1] = offsets[i] + n
	}
	flat := make([]float64, offsets[cells])
	if err := s.pool.run(len(flat), func(t int) error {
		ci := sort.SearchInts(offsets[1:], t+1)
		v, err := trial(ci, t-offsets[ci])
		flat[t] = v
		return err
	}); err != nil {
		return nil, err
	}
	out := make([][]float64, cells)
	for i := range out {
		out[i] = flat[offsets[i]:offsets[i+1]:offsets[i+1]]
	}
	return out, nil
}

// evalCell is one (mechanism × setting) measurement: the mean W₂ over
// the dataset's parts and the configured repeats.
type evalCell struct {
	dataset string
	d       int
	metric  Metric
	label   string // optional error-context prefix
	build   func(dom grid.Domain) (Estimator, error)
	seedAt  func(pi, rep int) uint64
}

func (c evalCell) errf(err error) error {
	if err == nil || c.label == "" {
		return err
	}
	return fmt.Errorf("%s: %w", c.label, err)
}

// cellPlan is an evalCell with its per-part inputs materialised.
type cellPlan struct {
	cell   evalCell
	truths []*grid.Hist2D
	norms  []*grid.Hist2D
	mechs  []Estimator
}

func (s *Suite) planCell(c evalCell) (*cellPlan, error) {
	parts, err := s.parts(c.dataset)
	if err != nil {
		return nil, c.errf(err)
	}
	p := &cellPlan{cell: c}
	for _, part := range parts {
		truth, err := part.truthHist(c.d)
		if err != nil {
			return nil, c.errf(err)
		}
		mech, err := c.build(truth.Dom)
		if err != nil {
			return nil, c.errf(err)
		}
		p.truths = append(p.truths, truth)
		p.norms = append(p.norms, truth.Clone().Normalize())
		p.mechs = append(p.mechs, mech)
	}
	return p, nil
}

// trial runs the cell's j-th (part, repeat) measurement. Mechanisms are
// shared across a cell's trials — they are read-only after construction.
func (s *Suite) cellTrial(p *cellPlan, j int) (float64, error) {
	pi, rep := j/s.cfg.Repeats, j%s.cfg.Repeats
	r := rng.New(p.cell.seedAt(pi, rep))
	est, err := p.mechs[pi].EstimateHist(p.truths[pi], r)
	if err != nil {
		return 0, p.cell.errf(err)
	}
	w2, err := s.cfg.W2(p.norms[pi], est, p.cell.metric)
	return w2, p.cell.errf(err)
}

// runCells evaluates every cell on the suite's pool and returns their
// mean W₂ values in cell order, identical for any worker count.
func (s *Suite) runCells(cells []evalCell) ([]float64, error) {
	plans := make([]*cellPlan, len(cells))
	results, err := s.runTrialPhases(len(cells),
		func(i int) (int, error) {
			p, err := s.planCell(cells[i])
			if err != nil {
				return 0, err
			}
			plans[i] = p
			return len(p.truths) * s.cfg.Repeats, nil
		},
		func(i, j int) (float64, error) {
			return s.cellTrial(plans[i], j)
		})
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(cells))
	for i, vs := range results {
		means[i] = mean(vs)
	}
	return means, nil
}

// mechCell is the standard comparison cell: one named mechanism at (d,
// eps), with the per-trial seed derivation the sequential harness used —
// kept verbatim so figures reproduce the pre-parallelisation output.
func (s *Suite) mechCell(mechName, dataset string, d int, eps float64, metric Metric) evalCell {
	return evalCell{
		dataset: dataset,
		d:       d,
		metric:  metric,
		build: func(dom grid.Domain) (Estimator, error) {
			return s.buildMechanism(mechName, dom, eps)
		},
		seedAt: func(pi, rep int) uint64 {
			return s.cfg.Seed + uint64(rep)*1000003 + uint64(pi)*7919 ^ hashName(mechName+dataset)
		},
	}
}

func mean(vs []float64) float64 {
	total := 0.0
	for _, v := range vs {
		total += v
	}
	return total / float64(len(vs))
}
