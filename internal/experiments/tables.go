package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Table3 reproduces Table III: the range and point counts of the real
// datasets' extraction parts (on the city-like stand-ins, so ranges are
// unit squares in the strip coordinate system).
func (s *Suite) Table3() (*Table, error) {
	t := &Table{
		Name:   "table3",
		Title:  "Ranges and point counts of dataset parts (city-like stand-ins)",
		Header: []string{"Dataset", "Part", "Range", "Points"},
	}
	for _, dataset := range []string{"Crime", "NYC"} {
		parts, err := s.parts(dataset)
		if err != nil {
			return nil, err
		}
		for i, p := range parts {
			rangeStr := fmt.Sprintf("[%d,%d]x[0,1]", i, i+1)
			t.Rows = append(t.Rows, []string{
				dataset, p.name, rangeStr, strconv.Itoa(len(p.points)),
			})
		}
	}
	return t, nil
}

// Table4 reproduces Table IV: the experimental parameter grid, defaults
// marked.
func (s *Suite) Table4() *Table {
	return &Table{
		Name:   "table4",
		Title:  "Experimental settings (defaults in [brackets])",
		Header: []string{"Parameter", "Values"},
		Rows: [][]string{
			{"norm distance b", "0.33b̌, 0.67b̌, [b̌], 1.33b̌, 1.67b̌"},
			{"discrete side length d", "1, 2, 3, 4, 5, 10, [15], 20"},
			{"privacy budget eps", "0.7, 1.4, 2.1, 2.8, [3.5], 5, 6, 7, 8, 9"},
		},
	}
}

// Table5 reproduces Table V: the trajectory experiment settings.
func (s *Suite) Table5() *Table {
	return &Table{
		Name:   "table5",
		Title:  "Trajectory experimental settings (defaults in [brackets])",
		Header: []string{"Parameter", "Values"},
		Rows: [][]string{
			{"discrete side length d", "1, 5, 10, [15], 20"},
			{"privacy budget eps", "0.5, 1.0, [1.5], 2.0, 2.5"},
		},
	}
}

// SummarizeShapes audits a set of figures against the paper's qualitative
// claims and returns human-readable pass/fail lines in figure-name order
// — the paper-vs-measured record that EXPERIMENTS.md captures.
func SummarizeShapes(figs map[string]*Figure) []string {
	var out []string
	check := func(name, claim string, ok bool) {
		status := "PASS"
		if !ok {
			status = "DIVERGES"
		}
		out = append(out, fmt.Sprintf("%-8s %-9s %s", name, status, claim))
	}
	seriesY := func(f *Figure, label string) []float64 {
		for _, s := range f.Series {
			if s.Label == label {
				return s.Y
			}
		}
		return nil
	}
	dominates := func(f *Figure, winner, loser string, slack float64) bool {
		w, l := seriesY(f, winner), seriesY(f, loser)
		if w == nil || l == nil || len(w) != len(l) {
			return false
		}
		for i := range w {
			if w[i] > l[i]+slack {
				return false
			}
		}
		return true
	}
	names := make([]string, 0, len(figs))
	for name := range figs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := figs[name]
		if f == nil {
			continue
		}
		switch {
		case name == "fig8":
			// U-shape: minimum not at the extremes for most datasets.
			good := 0
			for _, s := range f.Series {
				minIdx := argmin(s.Y)
				if minIdx > 0 && minIdx < len(s.Y)-1 {
					good++
				}
			}
			check(name, "W2 vs b is U-shaped with interior minimum", good*2 >= len(f.Series))
		case strings.HasPrefix(name, "fig9") && hasSeries(f, "MDSW"):
			check(name, "DAM always beats MDSW", dominates(f, "DAM", "MDSW", 1e-9))
			check(name, "DAM beats HUEM (ordinal-structure gain)", dominates(f, "DAM", "HUEM", 0.02))
		case strings.HasPrefix(name, "fig14"):
			check(name, "DAM beats LDPTrace and PivotTrace",
				dominates(f, "DAM", "LDPTrace", 1e-9) && dominates(f, "DAM", "PivotTrace", 1e-9))
		}
	}
	return out
}

func hasSeries(f *Figure, label string) bool {
	for _, s := range f.Series {
		if s.Label == label {
			return true
		}
	}
	return false
}

func argmin(v []float64) int {
	best := 0
	for i := range v {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}
