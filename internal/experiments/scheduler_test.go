package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestPoolRunBoundsConcurrency(t *testing.T) {
	p := newPool(3)
	var cur, max atomic.Int64
	err := p.run(64, func(i int) error {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > 3 {
		t.Fatalf("observed %d concurrent jobs with 3 workers", got)
	}
}

func TestPoolRunReturnsLowestIndexError(t *testing.T) {
	p := newPool(4)
	boom := func(i int) error {
		if i == 2 || i == 7 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	}
	err := p.run(10, boom)
	if err == nil || err.Error() != "job 2 failed" {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
	if err := p.run(0, boom); err != nil {
		t.Fatalf("empty run errored: %v", err)
	}
}

func TestRunTrialPhasesOrdersResults(t *testing.T) {
	s := NewSuite(fastConfig())
	results, err := s.runTrialPhases(3,
		func(i int) (int, error) { return i + 1, nil }, // 1, 2, 3 trials
		func(i, j int) (float64, error) { return float64(10*i + j), nil })
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0}, {10, 11}, {20, 21, 22}}
	for i := range want {
		if len(results[i]) != len(want[i]) {
			t.Fatalf("cell %d has %d results, want %d", i, len(results[i]), len(want[i]))
		}
		for j := range want[i] {
			if results[i][j] != want[i][j] {
				t.Fatalf("cell %d trial %d = %v, want %v", i, j, results[i][j], want[i][j])
			}
		}
	}
	wantErr := errors.New("plan failed")
	if _, err := s.runTrialPhases(1,
		func(i int) (int, error) { return 0, wantErr },
		func(i, j int) (float64, error) { return 0, nil }); !errors.Is(err, wantErr) {
		t.Fatalf("plan error not propagated: %v", err)
	}
}

// TestSuiteOutputWorkerCountInvariant is the scheduler's reproducibility
// contract: per-trial RNG streams derive from the trial's identity, so a
// figure renders byte-identically no matter how many workers execute it.
func TestSuiteOutputWorkerCountInvariant(t *testing.T) {
	render := func(workers int) string {
		cfg := fastConfig()
		cfg.Workers = workers
		s := NewSuite(cfg)
		fig, err := s.Fig9SmallD("SZipf")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fig.Format()
	}
	want := render(1)
	for _, workers := range []int{2, 5} {
		if got := render(workers); got != want {
			t.Fatalf("workers=%d output diverged:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

func TestAblationWorkerCountInvariant(t *testing.T) {
	render := func(workers int) string {
		cfg := tinyConfig()
		cfg.Workers = workers
		s := NewSuite(cfg)
		tab, err := s.AblationBaselines("SZipf", 5, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tab.Format()
	}
	if a, b := render(1), render(4); a != b {
		t.Fatalf("worker count changed the table:\n%s\nvs:\n%s", a, b)
	}
}
