package experiments

import (
	"encoding/json"
	"testing"
)

func TestFigureJSONRoundTrip(t *testing.T) {
	fig := &Figure{
		Name: "figX", Title: "demo", XLabel: "d", YLabel: "W2",
		Series: []Series{{Label: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
	}
	out, err := fig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Figure
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != fig.Name || len(back.Series) != 1 || back.Series[0].Y[1] != 0.25 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tab := &Table{
		Name: "tabX", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	out, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows[0][1] != "2" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
