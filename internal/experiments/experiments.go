// Package experiments reproduces the evaluation of Section VII and the
// appendices: one runner per figure and table, each returning the same
// series the paper plots so the harness (cmd/damctl, bench_test.go) can
// print paper-shaped output.
//
// Conventions mirroring the paper's setup:
//
//   - the real datasets are evaluated per part (A/B/C squares) and the
//     mean W₂ across parts is reported;
//   - SEM-Geo-I's budget ε' is calibrated so its Local Privacy equals
//     DAM's at the same settings (Section VII-B), with results cached per
//     (d, ε);
//   - W₂ is computed exactly via the transportation LP for small grids and
//     with Sinkhorn for large ones, exactly as the paper switches methods.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/localprivacy"
	"dpspatial/internal/mdsw"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
	"dpspatial/internal/semgeoi"
	"dpspatial/internal/synth"
	"dpspatial/internal/trajectory"
	"dpspatial/internal/transport"
)

// Estimator is the common collect-and-estimate contract every compared
// mechanism satisfies.
type Estimator interface {
	Name() string
	EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error)
}

// Config controls workload sizes and measurement fidelity.
type Config struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full size).
	Scale synth.Scale
	// Repeats averages each measurement over this many runs (paper: 10).
	Repeats int
	// Seed drives all randomness deterministically.
	Seed uint64
	// MaxPoints caps the number of users per dataset part (0 = no cap).
	// Mechanism comparisons are insensitive to the cap beyond sampling
	// noise; it bounds harness runtime.
	MaxPoints int
	// LPCalibration enables Local-Privacy calibration of SEM-Geo-I's ε'
	// against DAM (Section VII-B). When disabled, ε' = ε directly.
	LPCalibration bool
	// SinkhornReg overrides the entropic regularisation (0 = default).
	SinkhornReg float64
	// Workers bounds the suite's concurrent trial execution (0 =
	// GOMAXPROCS). Per-trial RNG streams derive from the trial's identity,
	// not its worker, so results are byte-identical for any value.
	Workers int
}

// DefaultConfig returns a configuration sized for minutes-scale harness
// runs; pass Scale: 1 and Repeats: 10 to match the paper's setup exactly.
func DefaultConfig() Config {
	return Config{
		Scale:         0.05,
		Repeats:       2,
		Seed:          2025,
		MaxPoints:     40000,
		LPCalibration: true,
	}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Repeats < 1 {
		c.Repeats = 1
	}
	if c.Seed == 0 {
		c.Seed = 2025
	}
	return c
}

// Series is one plotted line: a label and aligned X/Y points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced figure panel.
type Figure struct {
	Name   string // e.g. "fig9a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table is a reproduced table.
type Table struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders a figure as aligned text, one row per X value.
func (f *Figure) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.Name, f.Title)
	fmt.Fprintf(&sb, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteByte('\n')
	if len(f.Series) == 0 {
		return sb.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&sb, "%-10.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&sb, "%14.4f", s.Y[i])
			} else {
				fmt.Fprintf(&sb, "%14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Format renders a table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.Name, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Metric selects the W₂ computation method.
type Metric int

const (
	// MetricExact solves the transportation LP (Equation 17).
	MetricExact Metric = iota
	// MetricSinkhorn uses entropy-regularised approximation (Cuturi).
	MetricSinkhorn
	// MetricSinkhornDebiased subtracts the entropic self-transport floor
	// (Sinkhorn divergence) — used where convergence towards zero is the
	// claim under test (the large-ε panels).
	MetricSinkhornDebiased
)

// W2 measures the 2-Wasserstein distance between normalised histograms
// with the selected method.
func (c Config) W2(a, b *grid.Hist2D, m Metric) (float64, error) {
	switch m {
	case MetricExact:
		return transport.W2Exact(a, b)
	case MetricSinkhorn, MetricSinkhornDebiased:
		opts := &transport.SinkhornOptions{
			Reg:    c.SinkhornReg,
			Debias: m == MetricSinkhornDebiased,
		}
		return transport.W2Sinkhorn(a, b, opts)
	default:
		return 0, fmt.Errorf("experiments: unknown metric %d", m)
	}
}

// Suite carries lazily generated datasets and calibration caches, and
// owns the bounded worker pool every runner fans its trials out over.
type Suite struct {
	cfg  Config
	pool *pool

	mu       sync.Mutex            // guards the lazy caches below
	datasets map[string][]partData // name -> parts
	semCache map[string]float64    // "d/eps" -> calibrated ε'

	trajCache  []trajectory.Trajectory // Appendix-D workload (lazy)
	trajPoints []geom.Point
}

type partData struct {
	name   string
	points []geom.Point
}

// NewSuite builds a suite with the given configuration.
func NewSuite(cfg Config) *Suite {
	cfg = cfg.withDefaults()
	return &Suite{
		cfg:      cfg,
		pool:     newPool(cfg.Workers),
		datasets: map[string][]partData{},
		semCache: map[string]float64{},
	}
}

// Config returns the suite's effective configuration.
func (s *Suite) Config() Config { return s.cfg }

// DatasetNames lists the five evaluation datasets in paper order.
func DatasetNames() []string {
	return []string{"Crime", "NYC", "Normal", "SZipf", "MNormal"}
}

// MechanismNames lists the compared mechanisms in the paper's legend
// order.
func MechanismNames() []string {
	return []string{"SEM-Geo-I", "MDSW", "HUEM", "DAM-NS", "DAM"}
}

// parts returns (and caches) the dataset's parts. Generation runs under
// the cache lock: each dataset is generated exactly once, from an RNG
// stream derived from its name, so the result is independent of which
// trial asks first.
func (s *Suite) parts(name string) ([]partData, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.datasets[name]; ok {
		return p, nil
	}
	r := rng.New(s.cfg.Seed ^ hashName(name))
	var parts []partData
	switch name {
	case "Crime":
		ds, err := synth.ChicagoCrimeLike(r, s.cfg.Scale)
		if err != nil {
			return nil, err
		}
		parts = splitParts(ds)
	case "NYC":
		ds, err := synth.NYCGreenTaxiLike(r, s.cfg.Scale)
		if err != nil {
			return nil, err
		}
		parts = splitParts(ds)
	case "Normal":
		pts, err := synth.Normal(r, s.cfg.Scale.Of(300000), 0, 0, 1, 1, 0.5, 5)
		if err != nil {
			return nil, err
		}
		parts = []partData{{name: "all", points: pts}}
	case "SZipf":
		pts, err := synth.SkewZipf(r, s.cfg.Scale.Of(100000))
		if err != nil {
			return nil, err
		}
		parts = []partData{{name: "all", points: pts}}
	case "MNormal":
		pts, err := synth.MNormal(r, s.cfg.Scale.Of(300000))
		if err != nil {
			return nil, err
		}
		parts = []partData{{name: "all", points: pts}}
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	if s.cfg.MaxPoints > 0 {
		for i := range parts {
			if len(parts[i].points) > s.cfg.MaxPoints {
				// Deterministic thinning preserves the distribution.
				stride := float64(len(parts[i].points)) / float64(s.cfg.MaxPoints)
				thinned := make([]geom.Point, 0, s.cfg.MaxPoints)
				for k := 0; k < s.cfg.MaxPoints; k++ {
					thinned = append(thinned, parts[i].points[int(float64(k)*stride)])
				}
				parts[i].points = thinned
			}
		}
	}
	s.datasets[name] = parts
	return parts, nil
}

func splitParts(ds *synth.Dataset) []partData {
	parts := make([]partData, 0, len(ds.Parts))
	for _, p := range ds.Parts {
		parts = append(parts, partData{name: p.Name, points: ds.Extract(p)})
	}
	return parts
}

// truthHist buckets one part into a d×d histogram over its own square
// bounds (the paper estimates each part on its own domain).
func (p partData) truthHist(d int) (*grid.Hist2D, error) {
	if len(p.points) == 0 {
		return nil, fmt.Errorf("experiments: part %s has no points", p.name)
	}
	minX, minY := p.points[0].X, p.points[0].Y
	maxX, maxY := minX, minY
	for _, pt := range p.points[1:] {
		minX = math.Min(minX, pt.X)
		minY = math.Min(minY, pt.Y)
		maxX = math.Max(maxX, pt.X)
		maxY = math.Max(maxY, pt.Y)
	}
	side := math.Max(maxX-minX, maxY-minY)
	if side == 0 {
		side = 1
	}
	dom, err := grid.NewDomain(minX, minY, side, d)
	if err != nil {
		return nil, err
	}
	h := grid.NewHist(dom)
	g := dom.CellSize()
	for _, pt := range p.points {
		x := clampIdx(int((pt.X-minX)/g), d)
		y := clampIdx(int((pt.Y-minY)/g), d)
		h.Mass[y*d+x]++
	}
	return h, nil
}

func clampIdx(v, d int) int {
	if v < 0 {
		return 0
	}
	if v >= d {
		return d - 1
	}
	return v
}

// semEpsilon returns SEM-Geo-I's budget for the given grid and ε,
// LP-calibrated against DAM when enabled (cached). Concurrent misses on
// the same key calibrate independently — the search is deterministic, so
// they store the same value.
func (s *Suite) semEpsilon(d int, eps float64) (float64, error) {
	if !s.cfg.LPCalibration {
		return eps, nil
	}
	if d == 1 {
		// A single-cell grid leaks nothing regardless of budget: every
		// mechanism is the constant channel, so calibration is moot.
		return eps, nil
	}
	key := fmt.Sprintf("%d/%g", d, eps)
	s.mu.Lock()
	if v, ok := s.semCache[key]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		return 0, err
	}
	dam, err := sam.NewDAM(dom, eps)
	if err != nil {
		return 0, err
	}
	target, err := localprivacy.Compute(dom, dam.Channel())
	if err != nil {
		return 0, err
	}
	if target <= 0 {
		return eps, nil
	}
	build := func(x float64) (*fo.Channel, error) {
		m, err := semgeoi.New(dom, x)
		if err != nil {
			return nil, err
		}
		return m.Channel(), nil
	}
	epsPrime, err := localprivacy.Calibrate(dom, target, build, 1e-2, 60)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.semCache[key] = epsPrime
	s.mu.Unlock()
	return epsPrime, nil
}

// buildMechanism constructs one of the five compared estimators for the
// given domain and budget.
func (s *Suite) buildMechanism(name string, dom grid.Domain, eps float64) (Estimator, error) {
	switch name {
	case "DAM":
		return sam.NewDAM(dom, eps)
	case "DAM-NS":
		return sam.NewDAMNS(dom, eps)
	case "HUEM":
		return sam.NewHUEM(dom, eps)
	case "MDSW":
		return mdsw.NewMDSW(dom, eps)
	case "SEM-Geo-I":
		epsPrime, err := s.semEpsilon(dom.D, eps)
		if err != nil {
			return nil, err
		}
		return semgeoi.New(dom, epsPrime)
	default:
		return nil, fmt.Errorf("experiments: unknown mechanism %q", name)
	}
}

// evalOne measures the mean W₂ of a mechanism on one dataset at (d, eps):
// averaged over the dataset's parts and the configured repeats, with the
// trials fanned out over the suite's worker pool.
func (s *Suite) evalOne(mechName, dataset string, d int, eps float64, metric Metric) (float64, error) {
	means, err := s.runCells([]evalCell{s.mechCell(mechName, dataset, d, eps, metric)})
	if err != nil {
		return 0, err
	}
	return means[0], nil
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
