package experiments

import (
	"fmt"

	"dpspatial/internal/baselines"
	"dpspatial/internal/grid"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
)

// AblationShrinkage quantifies the gain of the border-shrinkage method
// (Section VI) — DAM vs DAM-NS across datasets at the default setting —
// the design choice DESIGN.md calls out. All (dataset × mechanism) cells
// evaluate concurrently on the suite's pool.
func (s *Suite) AblationShrinkage() (*Table, error) {
	t := &Table{
		Name:   "ablation-shrink",
		Title:  fmt.Sprintf("Border shrinkage: W2 at d=%d, eps=%g", DefaultD, DefaultEps),
		Header: []string{"Dataset", "DAM-NS", "DAM", "Gain %"},
	}
	datasets := DatasetNames()
	cells := make([]evalCell, 0, 2*len(datasets))
	for _, dataset := range datasets {
		cells = append(cells,
			s.mechCell("DAM-NS", dataset, DefaultD, DefaultEps, MetricSinkhorn),
			s.mechCell("DAM", dataset, DefaultD, DefaultEps, MetricSinkhorn))
	}
	means, err := s.runCells(cells)
	if err != nil {
		return nil, err
	}
	for di, dataset := range datasets {
		ns, dam := means[2*di], means[2*di+1]
		gain := 0.0
		if ns > 0 {
			gain = (ns - dam) / ns * 100
		}
		t.Rows = append(t.Rows, []string{
			dataset,
			fmt.Sprintf("%.4f", ns),
			fmt.Sprintf("%.4f", dam),
			fmt.Sprintf("%+.1f", gain),
		})
	}
	return t, nil
}

// AblationPostprocess compares plain EM against EM-with-2-D-smoothing
// decoding for DAM.
func (s *Suite) AblationPostprocess(dataset string) (*Table, error) {
	parts, err := s.parts(dataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "ablation-post",
		Title:  fmt.Sprintf("Post-processing on %s: EM vs EMS (d=%d, eps=%g)", dataset, DefaultD, DefaultEps),
		Header: []string{"Part", "EM", "EMS"},
	}
	// One cell per (part, decoder); each runs the configured repeats. The
	// per-trial stream matches the sequential harness: it depends on the
	// part and repeat only, so EM and EMS decode the same noisy reports.
	type postCell struct {
		pi     int
		smooth bool
		truth  *grid.Hist2D
		norm   *grid.Hist2D
		mech   *sam.Mechanism
	}
	cells := make([]*postCell, 0, 2*len(parts))
	for pi := range parts {
		cells = append(cells, &postCell{pi: pi}, &postCell{pi: pi, smooth: true})
	}
	results, err := s.runTrialPhases(len(cells),
		func(i int) (int, error) {
			c := cells[i]
			truth, err := parts[c.pi].truthHist(DefaultD)
			if err != nil {
				return 0, err
			}
			var opts []sam.Option
			if c.smooth {
				opts = append(opts, sam.WithSmoothing())
			}
			mech, err := sam.NewDAM(truth.Dom, DefaultEps, opts...)
			if err != nil {
				return 0, err
			}
			c.truth, c.norm, c.mech = truth, truth.Clone().Normalize(), mech
			return s.cfg.Repeats, nil
		},
		func(i, rep int) (float64, error) {
			c := cells[i]
			r := rng.New(s.cfg.Seed + uint64(rep)*31 + uint64(c.pi))
			est, err := c.mech.EstimateHist(c.truth, r)
			if err != nil {
				return 0, err
			}
			return s.cfg.W2(c.norm, est, MetricSinkhorn)
		})
	if err != nil {
		return nil, err
	}
	for pi, part := range parts {
		t.Rows = append(t.Rows, []string{
			part.name,
			fmt.Sprintf("%.4f", mean(results[2*pi])),
			fmt.Sprintf("%.4f", mean(results[2*pi+1])),
		})
	}
	return t, nil
}

// AblationBaselines widens the comparison to the Table I design space:
// the categorical CFO strawman, the continuous Geo-I planar Laplace, the
// AHEAD hierarchy, MDSW and DAM on one dataset.
func (s *Suite) AblationBaselines(dataset string, d int, eps float64) (*Table, error) {
	t := &Table{
		Name:   "ablation-baselines",
		Title:  fmt.Sprintf("Design space on %s (d=%d, eps=%g)", dataset, d, eps),
		Header: []string{"Mechanism", "W2", "Privacy notion"},
	}
	type entry struct {
		name   string
		notion string
		build  func(dom grid.Domain) (Estimator, error)
	}
	mechanisms := []entry{
		{"CFO", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return baselines.NewCFO(dom, eps) }},
		{"AdaptiveGrid", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return baselines.NewAdaptiveGrid(dom, eps) }},
		{"MDSW", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return s.buildMechanism("MDSW", dom, eps) }},
		{"AHEAD", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return rangequery.NewAHEAD(dom, eps) }},
		{"PlanarLaplace", "eps-Geo-I", func(dom grid.Domain) (Estimator, error) { return baselines.NewPlanarLaplace(dom, eps) }},
		{"DAM", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return s.buildMechanism("DAM", dom, eps) }},
	}
	cells := make([]evalCell, 0, len(mechanisms))
	for _, m := range mechanisms {
		name := m.name
		cells = append(cells, evalCell{
			dataset: dataset,
			d:       d,
			metric:  MetricSinkhorn,
			label:   fmt.Sprintf("%s on %s", name, dataset),
			build:   m.build,
			seedAt: func(pi, rep int) uint64 {
				return s.cfg.Seed + uint64(rep)*53 + uint64(pi)*97 ^ hashName(name)
			},
		})
	}
	means, err := s.runCells(cells)
	if err != nil {
		return nil, err
	}
	for mi, m := range mechanisms {
		t.Rows = append(t.Rows, []string{
			m.name, fmt.Sprintf("%.4f", means[mi]), m.notion,
		})
	}
	return t, nil
}

// RangeQueryExperiment measures the private range-query MSE (the
// Section II composition claim): answers over the DAM estimate vs the
// AHEAD hierarchy vs the flat CFO estimate, across query selectivities.
func (s *Suite) RangeQueryExperiment(dataset string, d int, eps float64) (*Figure, error) {
	parts, err := s.parts(dataset)
	if err != nil {
		return nil, err
	}
	part := parts[0]
	truth, err := part.truthHist(d)
	if err != nil {
		return nil, err
	}
	normTruth := truth.Clone().Normalize()
	r := rng.New(s.cfg.Seed ^ 0x52515859)
	workload, err := rangequery.RandomWorkload(d, 200, r)
	if err != nil {
		return nil, err
	}
	// Bucket queries by selectivity (fraction of cells covered).
	buckets := []float64{0.05, 0.1, 0.2, 0.4, 1.0}
	bucketOf := func(q rangequery.Query) int {
		sel := float64(q.Area()) / float64(d*d)
		for i, limit := range buckets {
			if sel <= limit {
				return i
			}
		}
		return len(buckets) - 1
	}

	// The three estimation pipelines are independent (each owns a stream
	// derived from the seed and its slot), so they run concurrently.
	type estEntry struct {
		name  string
		build func(dom grid.Domain) (Estimator, error)
		est   *grid.Hist2D
	}
	estimators := []estEntry{
		{name: "DAM", build: func(dom grid.Domain) (Estimator, error) { return sam.NewDAM(dom, eps) }},
		{name: "AHEAD", build: func(dom grid.Domain) (Estimator, error) { return rangequery.NewAHEAD(dom, eps) }},
		{name: "CFO", build: func(dom grid.Domain) (Estimator, error) { return baselines.NewCFO(dom, eps) }},
	}
	if err := s.pool.run(len(estimators), func(i int) error {
		mech, err := estimators[i].build(truth.Dom)
		if err != nil {
			return err
		}
		est, err := mech.EstimateHist(truth, rng.New(s.cfg.Seed+uint64(i)+1))
		if err != nil {
			return err
		}
		estimators[i].est = est
		return nil
	}); err != nil {
		return nil, err
	}

	fig := &Figure{
		Name:   "rangequery",
		Title:  fmt.Sprintf("Range-query MSE on %s part %s (d=%d, eps=%g)", dataset, part.name, d, eps),
		XLabel: "selectivity≤",
		YLabel: "MSE",
	}
	for _, e := range estimators {
		series := Series{Label: e.name}
		for bi, limit := range buckets {
			var qs []rangequery.Query
			for _, q := range workload {
				if bucketOf(q) == bi {
					qs = append(qs, q)
				}
			}
			if len(qs) == 0 {
				continue
			}
			mse, err := rangequery.MSE(normTruth, e.est, qs)
			if err != nil {
				return nil, err
			}
			series.X = append(series.X, limit)
			series.Y = append(series.Y, mse)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
