package experiments

import (
	"fmt"

	"dpspatial/internal/baselines"
	"dpspatial/internal/grid"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
)

// AblationShrinkage quantifies the gain of the border-shrinkage method
// (Section VI) — DAM vs DAM-NS across datasets at the default setting —
// the design choice DESIGN.md calls out.
func (s *Suite) AblationShrinkage() (*Table, error) {
	t := &Table{
		Name:   "ablation-shrink",
		Title:  fmt.Sprintf("Border shrinkage: W2 at d=%d, eps=%g", DefaultD, DefaultEps),
		Header: []string{"Dataset", "DAM-NS", "DAM", "Gain %"},
	}
	for _, dataset := range DatasetNames() {
		ns, err := s.evalOne("DAM-NS", dataset, DefaultD, DefaultEps, MetricSinkhorn)
		if err != nil {
			return nil, err
		}
		dam, err := s.evalOne("DAM", dataset, DefaultD, DefaultEps, MetricSinkhorn)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if ns > 0 {
			gain = (ns - dam) / ns * 100
		}
		t.Rows = append(t.Rows, []string{
			dataset,
			fmt.Sprintf("%.4f", ns),
			fmt.Sprintf("%.4f", dam),
			fmt.Sprintf("%+.1f", gain),
		})
	}
	return t, nil
}

// AblationPostprocess compares plain EM against EM-with-2-D-smoothing
// decoding for DAM.
func (s *Suite) AblationPostprocess(dataset string) (*Table, error) {
	parts, err := s.parts(dataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "ablation-post",
		Title:  fmt.Sprintf("Post-processing on %s: EM vs EMS (d=%d, eps=%g)", dataset, DefaultD, DefaultEps),
		Header: []string{"Part", "EM", "EMS"},
	}
	for pi, part := range parts {
		truth, err := part.truthHist(DefaultD)
		if err != nil {
			return nil, err
		}
		normTruth := truth.Clone().Normalize()
		plain, err := sam.NewDAM(truth.Dom, DefaultEps)
		if err != nil {
			return nil, err
		}
		smooth, err := sam.NewDAM(truth.Dom, DefaultEps, sam.WithSmoothing())
		if err != nil {
			return nil, err
		}
		row := []string{part.name}
		for _, mech := range []*sam.Mechanism{plain, smooth} {
			total := 0.0
			for rep := 0; rep < s.cfg.Repeats; rep++ {
				r := rng.New(s.cfg.Seed + uint64(rep)*31 + uint64(pi))
				est, err := mech.EstimateHist(truth, r)
				if err != nil {
					return nil, err
				}
				w2, err := s.cfg.W2(normTruth, est, MetricSinkhorn)
				if err != nil {
					return nil, err
				}
				total += w2
			}
			row = append(row, fmt.Sprintf("%.4f", total/float64(s.cfg.Repeats)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationBaselines widens the comparison to the Table I design space:
// the categorical CFO strawman, the continuous Geo-I planar Laplace, the
// AHEAD hierarchy, MDSW and DAM on one dataset.
func (s *Suite) AblationBaselines(dataset string, d int, eps float64) (*Table, error) {
	parts, err := s.parts(dataset)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "ablation-baselines",
		Title:  fmt.Sprintf("Design space on %s (d=%d, eps=%g)", dataset, d, eps),
		Header: []string{"Mechanism", "W2", "Privacy notion"},
	}
	type entry struct {
		name   string
		notion string
		build  func(dom grid.Domain) (Estimator, error)
	}
	mechanisms := []entry{
		{"CFO", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return baselines.NewCFO(dom, eps) }},
		{"AdaptiveGrid", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return baselines.NewAdaptiveGrid(dom, eps) }},
		{"MDSW", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return s.buildMechanism("MDSW", dom, eps) }},
		{"AHEAD", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return rangequery.NewAHEAD(dom, eps) }},
		{"PlanarLaplace", "eps-Geo-I", func(dom grid.Domain) (Estimator, error) { return baselines.NewPlanarLaplace(dom, eps) }},
		{"DAM", "eps-LDP", func(dom grid.Domain) (Estimator, error) { return s.buildMechanism("DAM", dom, eps) }},
	}
	for _, m := range mechanisms {
		total := 0.0
		count := 0
		for pi, part := range parts {
			truth, err := part.truthHist(d)
			if err != nil {
				return nil, err
			}
			mech, err := m.build(truth.Dom)
			if err != nil {
				return nil, err
			}
			normTruth := truth.Clone().Normalize()
			for rep := 0; rep < s.cfg.Repeats; rep++ {
				r := rng.New(s.cfg.Seed + uint64(rep)*53 + uint64(pi)*97 ^ hashName(m.name))
				est, err := mech.EstimateHist(truth, r)
				if err != nil {
					return nil, err
				}
				w2, err := s.cfg.W2(normTruth, est, MetricSinkhorn)
				if err != nil {
					return nil, err
				}
				total += w2
				count++
			}
		}
		t.Rows = append(t.Rows, []string{
			m.name, fmt.Sprintf("%.4f", total/float64(count)), m.notion,
		})
	}
	return t, nil
}

// RangeQueryExperiment measures the private range-query MSE (the
// Section II composition claim): answers over the DAM estimate vs the
// AHEAD hierarchy vs the flat CFO estimate, across query selectivities.
func (s *Suite) RangeQueryExperiment(dataset string, d int, eps float64) (*Figure, error) {
	parts, err := s.parts(dataset)
	if err != nil {
		return nil, err
	}
	part := parts[0]
	truth, err := part.truthHist(d)
	if err != nil {
		return nil, err
	}
	normTruth := truth.Clone().Normalize()
	r := rng.New(s.cfg.Seed ^ 0x52515859)
	workload, err := rangequery.RandomWorkload(d, 200, r)
	if err != nil {
		return nil, err
	}
	// Bucket queries by selectivity (fraction of cells covered).
	buckets := []float64{0.05, 0.1, 0.2, 0.4, 1.0}
	bucketOf := func(q rangequery.Query) int {
		sel := float64(q.Area()) / float64(d*d)
		for i, limit := range buckets {
			if sel <= limit {
				return i
			}
		}
		return len(buckets) - 1
	}

	type estEntry struct {
		name string
		est  *grid.Hist2D
	}
	var estimators []estEntry

	dam, err := sam.NewDAM(truth.Dom, eps)
	if err != nil {
		return nil, err
	}
	damEst, err := dam.EstimateHist(truth, rng.New(s.cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	estimators = append(estimators, estEntry{"DAM", damEst})

	ahead, err := rangequery.NewAHEAD(truth.Dom, eps)
	if err != nil {
		return nil, err
	}
	aheadEst, err := ahead.EstimateHist(truth, rng.New(s.cfg.Seed+2))
	if err != nil {
		return nil, err
	}
	estimators = append(estimators, estEntry{"AHEAD", aheadEst})

	cfo, err := baselines.NewCFO(truth.Dom, eps)
	if err != nil {
		return nil, err
	}
	cfoEst, err := cfo.EstimateHist(truth, rng.New(s.cfg.Seed+3))
	if err != nil {
		return nil, err
	}
	estimators = append(estimators, estEntry{"CFO", cfoEst})

	fig := &Figure{
		Name:   "rangequery",
		Title:  fmt.Sprintf("Range-query MSE on %s part %s (d=%d, eps=%g)", dataset, part.name, d, eps),
		XLabel: "selectivity≤",
		YLabel: "MSE",
	}
	for _, e := range estimators {
		series := Series{Label: e.name}
		for bi, limit := range buckets {
			var qs []rangequery.Query
			for _, q := range workload {
				if bucketOf(q) == bi {
					qs = append(qs, q)
				}
			}
			if len(qs) == 0 {
				continue
			}
			mse, err := rangequery.MSE(normTruth, e.est, qs)
			if err != nil {
				return nil, err
			}
			series.X = append(series.X, limit)
			series.Y = append(series.Y, mse)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}
