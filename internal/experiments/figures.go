package experiments

import (
	"fmt"
	"math"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
	"dpspatial/internal/trajectory"
)

// Paper parameter grids (Table IV).
var (
	// SmallDValues drives Figure 9(a–e).
	SmallDValues = []int{1, 2, 3, 4, 5}
	// LargeDValues drives Figure 9(f–j) and Figure 13(b).
	LargeDValues = []int{1, 5, 10, 15, 20}
	// SmallEpsValues drives Figure 9(k–o).
	SmallEpsValues = []float64{0.7, 1.4, 2.1, 2.8, 3.5}
	// LargeEpsValues drives Figure 9(p–t).
	LargeEpsValues = []float64{5, 6, 7, 8, 9}
	// RadiusMultipliers drives Figure 8.
	RadiusMultipliers = []float64{0.33, 0.67, 1.0, 1.33, 1.67}
	// DefaultD and DefaultEps are Table IV's defaults.
	DefaultD   = 15
	DefaultEps = 3.5
)

// Fig8 reproduces Figure 8: W₂ of DAM as the radius b sweeps multiples of
// the optimal b̌, at d=15 and ε=3.5, one series per dataset. All
// (dataset × multiplier) cells evaluate concurrently on the suite's pool.
func (s *Suite) Fig8() (*Figure, error) {
	fig := &Figure{
		Name:   "fig8",
		Title:  "Wasserstein distances with b varied (DAM, d=15, eps=3.5)",
		XLabel: "b/b̌",
		YLabel: "W2",
	}
	bOpt, err := sam.OptimalB(DefaultEps, float64(DefaultD))
	if err != nil {
		return nil, err
	}
	datasets := DatasetNames()
	var cells []evalCell
	for _, dataset := range datasets {
		for _, mult := range RadiusMultipliers {
			cells = append(cells, s.radiusCell(dataset, DefaultD, DefaultEps, int(math.Floor(mult*bOpt))))
		}
	}
	means, err := s.runCells(cells)
	if err != nil {
		return nil, err
	}
	for di, dataset := range datasets {
		series := Series{Label: dataset}
		for mi, mult := range RadiusMultipliers {
			series.X = append(series.X, mult)
			series.Y = append(series.Y, means[di*len(RadiusMultipliers)+mi])
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// radiusCell measures DAM with an explicit b̂ (Figure 8's sweep).
func (s *Suite) radiusCell(dataset string, d int, eps float64, bHat int) evalCell {
	return evalCell{
		dataset: dataset,
		d:       d,
		metric:  MetricSinkhorn,
		label:   fmt.Sprintf("DAM(b=%d) on %s", bHat, dataset),
		build: func(dom grid.Domain) (Estimator, error) {
			return sam.NewDAM(dom, eps, sam.WithBHat(bHat))
		},
		seedAt: func(pi, rep int) uint64 {
			return s.cfg.Seed + uint64(rep)*999983 + uint64(pi)*7919 + uint64(bHat)
		},
	}
}

// evalDAMWithRadius runs one Figure 8 cell (kept for tests and ad-hoc
// sweeps).
func (s *Suite) evalDAMWithRadius(dataset string, d int, eps float64, bHat int) (float64, error) {
	means, err := s.runCells([]evalCell{s.radiusCell(dataset, d, eps, bHat)})
	if err != nil {
		return 0, err
	}
	return means[0], nil
}

// sweep runs a family of mechanisms across X values for one dataset,
// with every (mechanism × x × part × repeat) trial fanned out over the
// suite's pool.
func (s *Suite) sweep(dataset string, mechs []string, xs []float64,
	dOf func(x float64) int, epsOf func(x float64) float64, metric Metric) ([]Series, error) {
	cells := make([]evalCell, 0, len(mechs)*len(xs))
	for _, mech := range mechs {
		for _, x := range xs {
			c := s.mechCell(mech, dataset, dOf(x), epsOf(x), metric)
			c.label = fmt.Sprintf("%s on %s at x=%v", mech, dataset, x)
			cells = append(cells, c)
		}
	}
	means, err := s.runCells(cells)
	if err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(mechs))
	for mi, mech := range mechs {
		series := Series{Label: mech}
		for xi, x := range xs {
			series.X = append(series.X, x)
			series.Y = append(series.Y, means[mi*len(xs)+xi])
		}
		out = append(out, series)
	}
	return out, nil
}

func panelLetter(figBase string, dataset string, offset int) string {
	idx := 0
	for i, n := range DatasetNames() {
		if n == dataset {
			idx = i
		}
	}
	return fmt.Sprintf("%s%c", figBase, 'a'+offset+idx)
}

// Fig9SmallD reproduces Figure 9(a–e): all five mechanisms, d ∈ 1..5,
// ε=3.5, exact W₂ via LP.
func (s *Suite) Fig9SmallD(dataset string) (*Figure, error) {
	xs := intsToFloats(SmallDValues)
	series, err := s.sweep(dataset, MechanismNames(), xs,
		func(x float64) int { return int(x) },
		func(x float64) float64 { return DefaultEps },
		MetricExact)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 0),
		Title:  fmt.Sprintf("W2 vs small d on %s (eps=3.5, exact LP)", dataset),
		XLabel: "d", YLabel: "W2", Series: series,
	}, nil
}

// Fig9LargeD reproduces Figure 9(f–j): SEM-Geo-I vs DAM at larger d,
// ε=5, Sinkhorn W₂.
func (s *Suite) Fig9LargeD(dataset string) (*Figure, error) {
	xs := intsToFloats(LargeDValues)
	series, err := s.sweep(dataset, []string{"SEM-Geo-I", "DAM"}, xs,
		func(x float64) int { return int(x) },
		func(x float64) float64 { return 5 },
		MetricSinkhorn)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 5),
		Title:  fmt.Sprintf("W2 vs large d on %s (eps=5, Sinkhorn)", dataset),
		XLabel: "d", YLabel: "W2", Series: series,
	}, nil
}

// Fig9SmallEps reproduces Figure 9(k–o): all five mechanisms, ε ∈
// 0.7..3.5 at d=15.
func (s *Suite) Fig9SmallEps(dataset string) (*Figure, error) {
	series, err := s.sweep(dataset, MechanismNames(), SmallEpsValues,
		func(x float64) int { return DefaultD },
		func(x float64) float64 { return x },
		MetricSinkhorn)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 10),
		Title:  fmt.Sprintf("W2 vs small eps on %s (d=15)", dataset),
		XLabel: "eps", YLabel: "W2", Series: series,
	}, nil
}

// Fig9LargeEps reproduces Figure 9(p–t): SEM-Geo-I vs DAM, ε ∈ 5..9 at
// d=15, Sinkhorn.
func (s *Suite) Fig9LargeEps(dataset string) (*Figure, error) {
	series, err := s.sweep(dataset, []string{"SEM-Geo-I", "DAM"}, LargeEpsValues,
		func(x float64) int { return DefaultD },
		func(x float64) float64 { return x },
		MetricSinkhornDebiased)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 15),
		Title:  fmt.Sprintf("W2 vs large eps on %s (d=15, Sinkhorn)", dataset),
		XLabel: "eps", YLabel: "W2", Series: series,
	}, nil
}

// Fig13 reproduces the full-domain Crime panels of Appendix C: the same
// four sweeps evaluated on the whole Crime domain instead of per part.
func (s *Suite) Fig13(panel string) (*Figure, error) {
	name, err := s.ensureFullCrime()
	if err != nil {
		return nil, err
	}
	switch panel {
	case "a":
		xs := intsToFloats(SmallDValues)
		series, err := s.sweep(name, MechanismNames(), xs,
			func(x float64) int { return int(x) },
			func(x float64) float64 { return DefaultEps }, MetricExact)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13a", Title: "Full-domain Crime: W2 vs small d",
			XLabel: "d", YLabel: "W2", Series: series}, nil
	case "b":
		xs := intsToFloats(LargeDValues)
		series, err := s.sweep(name, []string{"SEM-Geo-I", "DAM"}, xs,
			func(x float64) int { return int(x) },
			func(x float64) float64 { return 5 }, MetricSinkhorn)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13b", Title: "Full-domain Crime: W2 vs large d",
			XLabel: "d", YLabel: "W2", Series: series}, nil
	case "c":
		series, err := s.sweep(name, MechanismNames(), SmallEpsValues,
			func(x float64) int { return DefaultD },
			func(x float64) float64 { return x }, MetricSinkhorn)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13c", Title: "Full-domain Crime: W2 vs small eps",
			XLabel: "eps", YLabel: "W2", Series: series}, nil
	case "d":
		series, err := s.sweep(name, []string{"SEM-Geo-I", "DAM"}, LargeEpsValues,
			func(x float64) int { return DefaultD },
			func(x float64) float64 { return x }, MetricSinkhornDebiased)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13d", Title: "Full-domain Crime: W2 vs large eps",
			XLabel: "eps", YLabel: "W2", Series: series}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown fig13 panel %q", panel)
	}
}

// ensureFullCrime registers (once, under the cache lock) the
// concatenation of every Crime part as the dedicated dataset "CrimeFull":
// the full domain the Appendix-C panels evaluate.
func (s *Suite) ensureFullCrime() (string, error) {
	const name = "CrimeFull"
	parts, err := s.parts("Crime")
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; !ok {
		var all partData
		all.name = "full"
		for _, p := range parts {
			all.points = append(all.points, p.points...)
		}
		s.datasets[name] = []partData{all}
	}
	return name, nil
}

// Trajectory experiment parameters (Table V).
var (
	// TrajectoryDValues drives Figure 14(a).
	TrajectoryDValues = []int{1, 5, 10, 15, 20}
	// TrajectoryEpsValues drives Figure 14(b).
	TrajectoryEpsValues = []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	// TrajectoryDefaultD and TrajectoryDefaultEps are the defaults.
	TrajectoryDefaultD   = 15
	TrajectoryDefaultEps = 1.5
)

// trajWorkload builds (and caches) the Appendix-D trajectory workload on
// the NYC-like dataset. Generation is deterministic (its stream derives
// from the seed alone), so concurrent first callers would store identical
// values; runners still pre-warm it once to avoid duplicated work.
func (s *Suite) trajWorkload() ([]trajectory.Trajectory, []geom.Point, error) {
	s.mu.Lock()
	if s.trajCache != nil {
		trajs, pts := s.trajCache, s.trajPoints
		s.mu.Unlock()
		return trajs, pts, nil
	}
	s.mu.Unlock()
	parts, err := s.parts("NYC")
	if err != nil {
		return nil, nil, err
	}
	var pts []geom.Point
	for _, p := range parts {
		pts = append(pts, p.points...)
	}
	cfg := trajectory.WorkloadConfig{
		// The paper samples on a 300×300 grid; scale the resolution with
		// the thinned dataset so cells stay dense enough to walk.
		GridD:   trajGridD(len(pts)),
		NumTraj: 1000,
		MinLen:  2,
		MaxLen:  200,
	}
	trajs, err := trajectory.Generate(pts, cfg, rng.New(s.cfg.Seed^0x72616a))
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.trajCache = trajs
	s.trajPoints = pts
	s.mu.Unlock()
	return trajs, pts, nil
}

// trajGridD picks a sampling-grid resolution with ≈2 points per occupied
// cell at the configured dataset scale, capped at the paper's 300.
func trajGridD(numPoints int) int {
	d := int(math.Sqrt(float64(numPoints) / 2))
	if d < 10 {
		d = 10
	}
	if d > 300 {
		d = 300
	}
	return d
}

// trajPlan is one trajectory cell's materialised inputs: the cached
// workload bucketed on the cell's sampling domain.
type trajPlan struct {
	mech  string
	eps   float64
	dom   grid.Domain
	trajs []trajectory.Trajectory
	truth *grid.Hist2D
}

func (s *Suite) planTrajectory(mech string, d int, eps float64) (*trajPlan, error) {
	switch mech {
	case "LDPTrace", "PivotTrace", "DAM":
	default:
		return nil, fmt.Errorf("experiments: unknown trajectory mechanism %q", mech)
	}
	trajs, pts, err := s.trajWorkload()
	if err != nil {
		return nil, err
	}
	dom, err := grid.SquareDomain(pts, d)
	if err != nil {
		return nil, err
	}
	return &trajPlan{
		mech:  mech,
		eps:   eps,
		dom:   dom,
		trajs: trajs,
		truth: trajectory.PointHist(dom, trajs).Normalize(),
	}, nil
}

// trajTrial runs one repeat of the seven-step protocol of Appendix D.
func (s *Suite) trajTrial(p *trajPlan, rep int) (float64, error) {
	r := rng.New(s.cfg.Seed + uint64(rep)*104729 ^ hashName(p.mech))
	var rec []trajectory.Trajectory
	switch p.mech {
	case "LDPTrace":
		l, err := trajectory.NewLDPTrace(p.dom, p.eps, 200)
		if err != nil {
			return 0, err
		}
		if rec, err = l.Synthesize(p.trajs, r); err != nil {
			return 0, err
		}
	case "PivotTrace":
		pt, err := trajectory.NewPivotTrace(p.dom, p.eps, 4)
		if err != nil {
			return 0, err
		}
		if rec, err = pt.Reconstruct(p.trajs, r); err != nil {
			return 0, err
		}
	case "DAM":
		// DAM treats every trajectory point as an independent user
		// report (the paper's point-statistics transformation).
		m, err := sam.NewDAM(p.dom, p.eps)
		if err != nil {
			return 0, err
		}
		est, err := m.EstimateHist(trajectory.PointHist(p.dom, p.trajs), r)
		if err != nil {
			return 0, err
		}
		return s.cfg.W2(p.truth, est, MetricSinkhorn)
	}
	est := trajectory.PointHist(p.dom, rec).Normalize()
	return s.cfg.W2(p.truth, est, MetricSinkhorn)
}

// runTrajectoryCells evaluates trajectory cells (mechanism at d, eps) on
// the suite's pool and returns their mean W₂ values in cell order.
func (s *Suite) runTrajectoryCells(mechs []string, ds []int, epss []float64) ([]float64, error) {
	// Pre-warm the shared workload once so concurrent plans hit the cache.
	if _, _, err := s.trajWorkload(); err != nil {
		return nil, err
	}
	plans := make([]*trajPlan, len(mechs))
	results, err := s.runTrialPhases(len(mechs),
		func(i int) (int, error) {
			p, err := s.planTrajectory(mechs[i], ds[i], epss[i])
			if err != nil {
				return 0, err
			}
			plans[i] = p
			return s.cfg.Repeats, nil
		},
		func(i, rep int) (float64, error) {
			return s.trajTrial(plans[i], rep)
		})
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(results))
	for i, vs := range results {
		means[i] = mean(vs)
	}
	return means, nil
}

// evalTrajectory measures the point-distribution W₂ of one trajectory
// mechanism at (d, eps) following the seven-step protocol of Appendix D.
func (s *Suite) evalTrajectory(mech string, d int, eps float64) (float64, error) {
	means, err := s.runTrajectoryCells([]string{mech}, []int{d}, []float64{eps})
	if err != nil {
		return 0, err
	}
	return means[0], nil
}

// TrajectoryMechanismNames lists the Figure 14 legend.
func TrajectoryMechanismNames() []string {
	return []string{"LDPTrace", "PivotTrace", "DAM"}
}

// Fig14a reproduces Figure 14(a): trajectory W₂ vs d at ε=1.5, all
// (mechanism × d × repeat) trials fanned out over the suite's pool.
func (s *Suite) Fig14a() (*Figure, error) {
	fig := &Figure{
		Name:   "fig14a",
		Title:  "Trajectory W2 vs d on NYC (eps=1.5)",
		XLabel: "d", YLabel: "W2",
	}
	names := TrajectoryMechanismNames()
	var mechs []string
	var ds []int
	var epss []float64
	for _, mech := range names {
		for _, d := range TrajectoryDValues {
			mechs = append(mechs, mech)
			ds = append(ds, d)
			epss = append(epss, TrajectoryDefaultEps)
		}
	}
	means, err := s.runTrajectoryCells(mechs, ds, epss)
	if err != nil {
		return nil, err
	}
	for mi, mech := range names {
		series := Series{Label: mech}
		for di, d := range TrajectoryDValues {
			series.X = append(series.X, float64(d))
			series.Y = append(series.Y, means[mi*len(TrajectoryDValues)+di])
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig14b reproduces Figure 14(b): trajectory W₂ vs ε at d=15.
func (s *Suite) Fig14b() (*Figure, error) {
	fig := &Figure{
		Name:   "fig14b",
		Title:  "Trajectory W2 vs eps on NYC (d=15)",
		XLabel: "eps", YLabel: "W2",
	}
	names := TrajectoryMechanismNames()
	var mechs []string
	var ds []int
	var epss []float64
	for _, mech := range names {
		for _, eps := range TrajectoryEpsValues {
			mechs = append(mechs, mech)
			ds = append(ds, TrajectoryDefaultD)
			epss = append(epss, eps)
		}
	}
	means, err := s.runTrajectoryCells(mechs, ds, epss)
	if err != nil {
		return nil, err
	}
	for mi, mech := range names {
		series := Series{Label: mech}
		for ei, eps := range TrajectoryEpsValues {
			series.X = append(series.X, eps)
			series.Y = append(series.Y, means[mi*len(TrajectoryEpsValues)+ei])
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

func intsToFloats(vs []int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}
