package experiments

import (
	"fmt"
	"math"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
	"dpspatial/internal/trajectory"
)

// Paper parameter grids (Table IV).
var (
	// SmallDValues drives Figure 9(a–e).
	SmallDValues = []int{1, 2, 3, 4, 5}
	// LargeDValues drives Figure 9(f–j) and Figure 13(b).
	LargeDValues = []int{1, 5, 10, 15, 20}
	// SmallEpsValues drives Figure 9(k–o).
	SmallEpsValues = []float64{0.7, 1.4, 2.1, 2.8, 3.5}
	// LargeEpsValues drives Figure 9(p–t).
	LargeEpsValues = []float64{5, 6, 7, 8, 9}
	// RadiusMultipliers drives Figure 8.
	RadiusMultipliers = []float64{0.33, 0.67, 1.0, 1.33, 1.67}
	// DefaultD and DefaultEps are Table IV's defaults.
	DefaultD   = 15
	DefaultEps = 3.5
)

// Fig8 reproduces Figure 8: W₂ of DAM as the radius b sweeps multiples of
// the optimal b̌, at d=15 and ε=3.5, one series per dataset.
func (s *Suite) Fig8() (*Figure, error) {
	fig := &Figure{
		Name:   "fig8",
		Title:  "Wasserstein distances with b varied (DAM, d=15, eps=3.5)",
		XLabel: "b/b̌",
		YLabel: "W2",
	}
	bOpt, err := sam.OptimalB(DefaultEps, float64(DefaultD))
	if err != nil {
		return nil, err
	}
	for _, dataset := range DatasetNames() {
		series := Series{Label: dataset}
		for _, mult := range RadiusMultipliers {
			bHat := int(math.Floor(mult * bOpt))
			w2, err := s.evalDAMWithRadius(dataset, DefaultD, DefaultEps, bHat)
			if err != nil {
				return nil, err
			}
			series.X = append(series.X, mult)
			series.Y = append(series.Y, w2)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// evalDAMWithRadius runs DAM with an explicit b̂ (Figure 8's sweep).
func (s *Suite) evalDAMWithRadius(dataset string, d int, eps float64, bHat int) (float64, error) {
	parts, err := s.parts(dataset)
	if err != nil {
		return 0, err
	}
	total := 0.0
	count := 0
	for pi, part := range parts {
		truth, err := part.truthHist(d)
		if err != nil {
			return 0, err
		}
		mech, err := sam.NewDAM(truth.Dom, eps, sam.WithBHat(bHat))
		if err != nil {
			return 0, err
		}
		normTruth := truth.Clone().Normalize()
		for rep := 0; rep < s.cfg.Repeats; rep++ {
			r := rng.New(s.cfg.Seed + uint64(rep)*999983 + uint64(pi)*7919 + uint64(bHat))
			est, err := mech.EstimateHist(truth, r)
			if err != nil {
				return 0, err
			}
			w2, err := s.cfg.W2(normTruth, est, MetricSinkhorn)
			if err != nil {
				return 0, err
			}
			total += w2
			count++
		}
	}
	return total / float64(count), nil
}

// sweep runs a family of mechanisms across X values for one dataset.
func (s *Suite) sweep(dataset string, mechs []string, xs []float64,
	dOf func(x float64) int, epsOf func(x float64) float64, metric Metric) ([]Series, error) {
	out := make([]Series, 0, len(mechs))
	for _, mech := range mechs {
		series := Series{Label: mech}
		for _, x := range xs {
			w2, err := s.evalOne(mech, dataset, dOf(x), epsOf(x), metric)
			if err != nil {
				return nil, fmt.Errorf("%s on %s at x=%v: %w", mech, dataset, x, err)
			}
			series.X = append(series.X, x)
			series.Y = append(series.Y, w2)
		}
		out = append(out, series)
	}
	return out, nil
}

func panelLetter(figBase string, dataset string, offset int) string {
	idx := 0
	for i, n := range DatasetNames() {
		if n == dataset {
			idx = i
		}
	}
	return fmt.Sprintf("%s%c", figBase, 'a'+offset+idx)
}

// Fig9SmallD reproduces Figure 9(a–e): all five mechanisms, d ∈ 1..5,
// ε=3.5, exact W₂ via LP.
func (s *Suite) Fig9SmallD(dataset string) (*Figure, error) {
	xs := intsToFloats(SmallDValues)
	series, err := s.sweep(dataset, MechanismNames(), xs,
		func(x float64) int { return int(x) },
		func(x float64) float64 { return DefaultEps },
		MetricExact)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 0),
		Title:  fmt.Sprintf("W2 vs small d on %s (eps=3.5, exact LP)", dataset),
		XLabel: "d", YLabel: "W2", Series: series,
	}, nil
}

// Fig9LargeD reproduces Figure 9(f–j): SEM-Geo-I vs DAM at larger d,
// ε=5, Sinkhorn W₂.
func (s *Suite) Fig9LargeD(dataset string) (*Figure, error) {
	xs := intsToFloats(LargeDValues)
	series, err := s.sweep(dataset, []string{"SEM-Geo-I", "DAM"}, xs,
		func(x float64) int { return int(x) },
		func(x float64) float64 { return 5 },
		MetricSinkhorn)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 5),
		Title:  fmt.Sprintf("W2 vs large d on %s (eps=5, Sinkhorn)", dataset),
		XLabel: "d", YLabel: "W2", Series: series,
	}, nil
}

// Fig9SmallEps reproduces Figure 9(k–o): all five mechanisms, ε ∈
// 0.7..3.5 at d=15.
func (s *Suite) Fig9SmallEps(dataset string) (*Figure, error) {
	series, err := s.sweep(dataset, MechanismNames(), SmallEpsValues,
		func(x float64) int { return DefaultD },
		func(x float64) float64 { return x },
		MetricSinkhorn)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 10),
		Title:  fmt.Sprintf("W2 vs small eps on %s (d=15)", dataset),
		XLabel: "eps", YLabel: "W2", Series: series,
	}, nil
}

// Fig9LargeEps reproduces Figure 9(p–t): SEM-Geo-I vs DAM, ε ∈ 5..9 at
// d=15, Sinkhorn.
func (s *Suite) Fig9LargeEps(dataset string) (*Figure, error) {
	series, err := s.sweep(dataset, []string{"SEM-Geo-I", "DAM"}, LargeEpsValues,
		func(x float64) int { return DefaultD },
		func(x float64) float64 { return x },
		MetricSinkhornDebiased)
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   panelLetter("fig9", dataset, 15),
		Title:  fmt.Sprintf("W2 vs large eps on %s (d=15, Sinkhorn)", dataset),
		XLabel: "eps", YLabel: "W2", Series: series,
	}, nil
}

// Fig13 reproduces the full-domain Crime panels of Appendix C: the same
// four sweeps evaluated on the whole Crime domain instead of per part.
func (s *Suite) Fig13(panel string) (*Figure, error) {
	// Full domain = all points of every part as one square domain. We
	// register it as a synthetic dataset part under a dedicated name.
	const name = "CrimeFull"
	if _, ok := s.datasets[name]; !ok {
		parts, err := s.parts("Crime")
		if err != nil {
			return nil, err
		}
		var all partData
		all.name = "full"
		for _, p := range parts {
			all.points = append(all.points, p.points...)
		}
		s.datasets[name] = []partData{all}
	}
	switch panel {
	case "a":
		xs := intsToFloats(SmallDValues)
		series, err := s.sweep(name, MechanismNames(), xs,
			func(x float64) int { return int(x) },
			func(x float64) float64 { return DefaultEps }, MetricExact)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13a", Title: "Full-domain Crime: W2 vs small d",
			XLabel: "d", YLabel: "W2", Series: series}, nil
	case "b":
		xs := intsToFloats(LargeDValues)
		series, err := s.sweep(name, []string{"SEM-Geo-I", "DAM"}, xs,
			func(x float64) int { return int(x) },
			func(x float64) float64 { return 5 }, MetricSinkhorn)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13b", Title: "Full-domain Crime: W2 vs large d",
			XLabel: "d", YLabel: "W2", Series: series}, nil
	case "c":
		series, err := s.sweep(name, MechanismNames(), SmallEpsValues,
			func(x float64) int { return DefaultD },
			func(x float64) float64 { return x }, MetricSinkhorn)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13c", Title: "Full-domain Crime: W2 vs small eps",
			XLabel: "eps", YLabel: "W2", Series: series}, nil
	case "d":
		series, err := s.sweep(name, []string{"SEM-Geo-I", "DAM"}, LargeEpsValues,
			func(x float64) int { return DefaultD },
			func(x float64) float64 { return x }, MetricSinkhornDebiased)
		if err != nil {
			return nil, err
		}
		return &Figure{Name: "fig13d", Title: "Full-domain Crime: W2 vs large eps",
			XLabel: "eps", YLabel: "W2", Series: series}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown fig13 panel %q", panel)
	}
}

// Trajectory experiment parameters (Table V).
var (
	// TrajectoryDValues drives Figure 14(a).
	TrajectoryDValues = []int{1, 5, 10, 15, 20}
	// TrajectoryEpsValues drives Figure 14(b).
	TrajectoryEpsValues = []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	// TrajectoryDefaultD and TrajectoryDefaultEps are the defaults.
	TrajectoryDefaultD   = 15
	TrajectoryDefaultEps = 1.5
)

// trajWorkload builds (and caches) the Appendix-D trajectory workload on
// the NYC-like dataset.
func (s *Suite) trajWorkload() ([]trajectory.Trajectory, []geom.Point, error) {
	if s.trajCache != nil {
		return s.trajCache, s.trajPoints, nil
	}
	parts, err := s.parts("NYC")
	if err != nil {
		return nil, nil, err
	}
	var pts []geom.Point
	for _, p := range parts {
		pts = append(pts, p.points...)
	}
	cfg := trajectory.WorkloadConfig{
		// The paper samples on a 300×300 grid; scale the resolution with
		// the thinned dataset so cells stay dense enough to walk.
		GridD:   trajGridD(len(pts)),
		NumTraj: 1000,
		MinLen:  2,
		MaxLen:  200,
	}
	trajs, err := trajectory.Generate(pts, cfg, rng.New(s.cfg.Seed^0x72616a))
	if err != nil {
		return nil, nil, err
	}
	s.trajCache = trajs
	s.trajPoints = pts
	return trajs, pts, nil
}

// trajGridD picks a sampling-grid resolution with ≈2 points per occupied
// cell at the configured dataset scale, capped at the paper's 300.
func trajGridD(numPoints int) int {
	d := int(math.Sqrt(float64(numPoints) / 2))
	if d < 10 {
		d = 10
	}
	if d > 300 {
		d = 300
	}
	return d
}

// evalTrajectory measures the point-distribution W₂ of one trajectory
// mechanism at (d, eps) following the seven-step protocol of Appendix D.
func (s *Suite) evalTrajectory(mech string, d int, eps float64) (float64, error) {
	trajs, pts, err := s.trajWorkload()
	if err != nil {
		return 0, err
	}
	dom, err := grid.SquareDomain(pts, d)
	if err != nil {
		return 0, err
	}
	truth := trajectory.PointHist(dom, trajs).Normalize()

	total := 0.0
	for rep := 0; rep < s.cfg.Repeats; rep++ {
		r := rng.New(s.cfg.Seed + uint64(rep)*104729 ^ hashName(mech))
		var rec []trajectory.Trajectory
		switch mech {
		case "LDPTrace":
			l, err := trajectory.NewLDPTrace(dom, eps, 200)
			if err != nil {
				return 0, err
			}
			if rec, err = l.Synthesize(trajs, r); err != nil {
				return 0, err
			}
		case "PivotTrace":
			p, err := trajectory.NewPivotTrace(dom, eps, 4)
			if err != nil {
				return 0, err
			}
			if rec, err = p.Reconstruct(trajs, r); err != nil {
				return 0, err
			}
		case "DAM":
			// DAM treats every trajectory point as an independent user
			// report (the paper's point-statistics transformation).
			m, err := sam.NewDAM(dom, eps)
			if err != nil {
				return 0, err
			}
			est, err := m.EstimateHist(trajectory.PointHist(dom, trajs), r)
			if err != nil {
				return 0, err
			}
			w2, err := s.cfg.W2(truth, est, MetricSinkhorn)
			if err != nil {
				return 0, err
			}
			total += w2
			continue
		default:
			return 0, fmt.Errorf("experiments: unknown trajectory mechanism %q", mech)
		}
		est := trajectory.PointHist(dom, rec).Normalize()
		w2, err := s.cfg.W2(truth, est, MetricSinkhorn)
		if err != nil {
			return 0, err
		}
		total += w2
	}
	return total / float64(s.cfg.Repeats), nil
}

// TrajectoryMechanismNames lists the Figure 14 legend.
func TrajectoryMechanismNames() []string {
	return []string{"LDPTrace", "PivotTrace", "DAM"}
}

// Fig14a reproduces Figure 14(a): trajectory W₂ vs d at ε=1.5.
func (s *Suite) Fig14a() (*Figure, error) {
	fig := &Figure{
		Name:   "fig14a",
		Title:  "Trajectory W2 vs d on NYC (eps=1.5)",
		XLabel: "d", YLabel: "W2",
	}
	for _, mech := range TrajectoryMechanismNames() {
		series := Series{Label: mech}
		for _, d := range TrajectoryDValues {
			w2, err := s.evalTrajectory(mech, d, TrajectoryDefaultEps)
			if err != nil {
				return nil, err
			}
			series.X = append(series.X, float64(d))
			series.Y = append(series.Y, w2)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig14b reproduces Figure 14(b): trajectory W₂ vs ε at d=15.
func (s *Suite) Fig14b() (*Figure, error) {
	fig := &Figure{
		Name:   "fig14b",
		Title:  "Trajectory W2 vs eps on NYC (d=15)",
		XLabel: "eps", YLabel: "W2",
	}
	for _, mech := range TrajectoryMechanismNames() {
		series := Series{Label: mech}
		for _, eps := range TrajectoryEpsValues {
			w2, err := s.evalTrajectory(mech, TrajectoryDefaultD, eps)
			if err != nil {
				return nil, err
			}
			series.X = append(series.X, eps)
			series.Y = append(series.Y, w2)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

func intsToFloats(vs []int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}
