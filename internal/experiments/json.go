package experiments

import "encoding/json"

// JSON renders a figure as deterministic JSON for downstream plotting
// tools.
func (f *Figure) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// JSON renders a table as deterministic JSON.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}
