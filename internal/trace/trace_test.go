package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatal("NewSpanContext returned an invalid context")
	}
	got, err := ParseTraceparent(sc.Traceparent())
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", sc.Traceparent(), err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestParseTraceparentKnown(t *testing.T) {
	sc, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	if sc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %q", sc.TraceIDString())
	}
	if sc.SpanIDString() != "00f067aa0ba902b7" {
		t.Fatalf("span ID = %q", sc.SpanIDString())
	}
	if sc.Flags != 1 {
		t.Fatalf("flags = %d", sc.Flags)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // 3 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version ff
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",    // short flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",     // short trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // version 00 with 5 fields
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", s)
		}
	}
	// A future version with extra fields is accepted.
	if _, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestRootJoinsRemoteTrace(t *testing.T) {
	tr := NewTracer("test", 8)
	remote := NewSpanContext()
	root := tr.Root("GET /x", remote)
	if root.TraceID() != remote.TraceIDString() {
		t.Fatalf("root trace ID %s, want remote %s", root.TraceID(), remote.TraceIDString())
	}
	root.End()
	traces := tr.Snapshot(0, "", 0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	if traces[0].Spans[0].ParentSpanID != remote.SpanIDString() || !traces[0].Spans[0].Remote {
		t.Fatalf("root span parent = %+v, want remote parent %s", traces[0].Spans[0], remote.SpanIDString())
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer("test", 8)
	root := tr.Root("POST /v1/report", SpanContext{})
	root.SetAttr(String("submissionId", "abc"))
	child := root.Child("collector.wal.append")
	child.SetAttr(Int("walBytes", 512))
	child.End()
	fail := root.Child("collector.merge")
	fail.Fail(errors.New("boom"))
	fail.End()
	root.Event("duplicate.replay", String("id", "abc"))
	root.SetStatus(200)
	root.End()

	traces := tr.Snapshot(0, "", 0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	td := traces[0]
	if td.Outcome != OutcomeOK {
		t.Fatalf("outcome = %q", td.Outcome)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	rootSpan := td.Spans[0]
	if rootSpan.Name != "POST /v1/report" || rootSpan.ParentSpanID != "" {
		t.Fatalf("root span = %+v", rootSpan)
	}
	if rootSpan.Attrs["submissionId"] != "abc" {
		t.Fatalf("root attrs = %v", rootSpan.Attrs)
	}
	if len(rootSpan.Events) != 1 || rootSpan.Events[0].Name != "duplicate.replay" {
		t.Fatalf("root events = %+v", rootSpan.Events)
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans[1:] {
		byName[s.Name] = s
	}
	wal := byName["collector.wal.append"]
	if wal.ParentSpanID != rootSpan.SpanID {
		t.Fatalf("wal span parent %q, want root %q", wal.ParentSpanID, rootSpan.SpanID)
	}
	if v, ok := wal.Attrs["walBytes"].(int64); !ok || v != 512 {
		t.Fatalf("wal attrs = %v", wal.Attrs)
	}
	if byName["collector.merge"].Error != "boom" {
		t.Fatalf("merge span error = %q", byName["collector.merge"].Error)
	}
}

func TestErrorOutcome(t *testing.T) {
	tr := NewTracer("test", 8)
	root := tr.Root("POST /v1/report", SpanContext{})
	root.SetStatus(503)
	root.End()
	traces := tr.Snapshot(0, OutcomeError, 0)
	if len(traces) != 1 || traces[0].Outcome != OutcomeError {
		t.Fatalf("error filter: %+v", traces)
	}
	if got := tr.Snapshot(0, OutcomeOK, 0); len(got) != 0 {
		t.Fatalf("ok filter returned %d traces", len(got))
	}
}

func TestRingBoundedNewestFirst(t *testing.T) {
	tr := NewTracer("test", 4)
	for i := 0; i < 10; i++ {
		root := tr.Root(fmt.Sprintf("req-%d", i), SpanContext{})
		root.End()
	}
	if tr.Completed() != 10 {
		t.Fatalf("Completed = %d, want 10", tr.Completed())
	}
	traces := tr.Snapshot(0, "", 0)
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	for i, want := range []string{"req-9", "req-8", "req-7", "req-6"} {
		if traces[i].Root != want {
			t.Fatalf("traces[%d] = %q, want %q (newest first)", i, traces[i].Root, want)
		}
	}
	if got := tr.Snapshot(0, "", 2); len(got) != 2 || got[0].Root != "req-9" {
		t.Fatalf("limit=2 snapshot: %+v", got)
	}
}

func TestSnapshotMinDuration(t *testing.T) {
	tr := NewTracer("test", 8)
	fast := tr.Root("fast", SpanContext{})
	fast.End()
	slow := tr.Root("slow", SpanContext{})
	time.Sleep(15 * time.Millisecond)
	slow.End()
	traces := tr.Snapshot(10*time.Millisecond, "", 0)
	if len(traces) != 1 || traces[0].Root != "slow" {
		t.Fatalf("min-duration filter: %+v", traces)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	root := tr.Root("x", SpanContext{})
	if root != nil {
		t.Fatal("nil tracer minted a span")
	}
	// Every method must no-op on nil.
	root.SetAttr(String("k", "v"))
	root.SetStatus(200)
	root.Fail(errors.New("x"))
	root.Event("e")
	child := root.Child("c")
	child.End()
	root.End()
	if root.TraceID() != "" || root.Context().Valid() {
		t.Fatal("nil span leaked identity")
	}
	if tr.Snapshot(0, "", 0) != nil || tr.Completed() != 0 || tr.Service() != "" {
		t.Fatal("nil tracer leaked state")
	}
	var sl *SlowLogger
	sl.Log("svc", "tid", "GET", "/x", 200, time.Second)
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := Outgoing(ctx); ok {
		t.Fatal("empty context has an outgoing trace")
	}
	sc := NewSpanContext()
	ctx = ContextWithRemote(ctx, sc)
	got, ok := Outgoing(ctx)
	if !ok || got != sc {
		t.Fatalf("Outgoing(remote) = %+v, %v", got, ok)
	}
	tr := NewTracer("test", 4)
	span := tr.Root("op", SpanContext{})
	ctx = ContextWithSpan(ctx, span)
	if SpanFrom(ctx) != span {
		t.Fatal("SpanFrom lost the span")
	}
	got, ok = Outgoing(ctx)
	if !ok || got != span.Context() {
		t.Fatal("local span must win over remote context")
	}
	span.End()
}

func TestConcurrentRecordAndScrape(t *testing.T) {
	tr := NewTracer("test", 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.Root(fmt.Sprintf("g%d-%d", g, i), SpanContext{})
				// Children ending on a different goroutine than the root,
				// like the fleet's concurrent member pulls.
				var cw sync.WaitGroup
				for c := 0; c < 3; c++ {
					child := root.Child("child")
					cw.Add(1)
					go func() {
						defer cw.Done()
						child.SetAttr(Int("i", int64(c)))
						child.End()
					}()
				}
				cw.Wait()
				root.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot(0, "", 0)
			}
		}
	}()
	// Let the scraper overlap the writers, then stop it and wait for all.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if tr.Completed() != 800 {
		t.Fatalf("Completed = %d, want 800", tr.Completed())
	}
	for _, td := range tr.Snapshot(0, "", 0) {
		if len(td.Spans) != 4 {
			t.Fatalf("trace %s has %d spans, want 4", td.TraceID, len(td.Spans))
		}
	}
}

func TestHandlerFiltersAndErrors(t *testing.T) {
	tr := NewTracer("collector", 8)
	ok := tr.Root("POST /v1/report", SpanContext{})
	ok.SetStatus(200)
	ok.End()
	bad := tr.Root("POST /v1/aggregate", SpanContext{})
	bad.SetStatus(409)
	bad.End()

	h := tr.Handler()
	get := func(url string) (*httptest.ResponseRecorder, map[string]any) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
		var body map[string]any
		if rr.Code == http.StatusOK {
			if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
				t.Fatalf("bad JSON from %s: %v", url, err)
			}
		}
		return rr, body
	}

	rr, body := get("/v1/traces")
	if rr.Code != 200 || body["count"].(float64) != 2 || body["service"] != "collector" {
		t.Fatalf("unfiltered: code %d body %v", rr.Code, body)
	}
	_, body = get("/v1/traces?outcome=error")
	if body["count"].(float64) != 1 {
		t.Fatalf("outcome=error count %v", body["count"])
	}
	_, body = get("/v1/traces?min_ms=100000")
	if body["count"].(float64) != 0 {
		t.Fatalf("min_ms huge count %v", body["count"])
	}
	_, body = get("/v1/traces?min_ms=0&limit=1")
	if body["count"].(float64) != 1 {
		t.Fatalf("limit=1 count %v", body["count"])
	}
	for _, url := range []string{"/v1/traces?min_ms=x", "/v1/traces?min_ms=-1", "/v1/traces?outcome=weird", "/v1/traces?limit=x"} {
		if rr, _ := get(url); rr.Code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", url, rr.Code)
		}
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/traces", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: code %d, want 405", rr.Code)
	}
}

func TestMiddleware(t *testing.T) {
	tr := NewTracer("collector", 8)
	var slowBuf bytes.Buffer
	slow := &SlowLogger{W: &slowBuf, JSON: true, Threshold: 0}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		span := SpanFrom(r.Context())
		if r.URL.Path == "/metrics" {
			if span != nil {
				t.Error("skipped path has a span in context")
			}
			w.WriteHeader(http.StatusOK)
			return
		}
		if span == nil {
			t.Error("no span in handler context")
		}
		child := span.Child("inner.op")
		child.End()
		w.WriteHeader(http.StatusAccepted)
	})
	skip := func(path string) bool { return path == "/metrics" }
	h := Middleware(tr, slow, skip, inner)

	remote := NewSpanContext()
	req := httptest.NewRequest(http.MethodPost, "/v1/report", strings.NewReader("x"))
	req.Header.Set(TraceparentHeader, remote.Traceparent())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)

	gotID := rr.Header().Get(TraceIDHeader)
	if gotID != remote.TraceIDString() {
		t.Fatalf("echoed trace ID %q, want joined remote %q", gotID, remote.TraceIDString())
	}
	traces := tr.Snapshot(0, "", 0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	td := traces[0]
	if td.Root != "POST /v1/report" || td.TraceID != remote.TraceIDString() {
		t.Fatalf("trace = %+v", td)
	}
	if td.Spans[0].Status != http.StatusAccepted {
		t.Fatalf("root status = %d", td.Spans[0].Status)
	}
	if len(td.Spans) != 2 || td.Spans[1].Name != "inner.op" {
		t.Fatalf("spans = %+v", td.Spans)
	}

	var line map[string]any
	if err := json.Unmarshal(slowBuf.Bytes(), &line); err != nil {
		t.Fatalf("slow log not JSON: %v (%q)", err, slowBuf.String())
	}
	if line["traceId"] != gotID || line["path"] != "/v1/report" || line["status"].(float64) != 202 {
		t.Fatalf("slow line = %v", line)
	}

	// Skipped path: no trace, no header, no log.
	slowBuf.Reset()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Header().Get(TraceIDHeader) != "" {
		t.Fatal("skipped path got a trace header")
	}
	if tr.Completed() != 1 {
		t.Fatalf("skipped path recorded a trace: %d", tr.Completed())
	}
	if slowBuf.Len() != 0 {
		t.Fatal("skipped path logged")
	}
}

func TestSlowLoggerThresholdAndText(t *testing.T) {
	var buf bytes.Buffer
	l := &SlowLogger{W: &buf, Threshold: 100 * time.Millisecond}
	l.Log("collector", "tid", "GET", "/x", 200, 50*time.Millisecond)
	if buf.Len() != 0 {
		t.Fatal("sub-threshold request logged")
	}
	l.Log("collector", "abcdef", "GET", "/x", 200, 150*time.Millisecond)
	line := buf.String()
	for _, want := range []string{"slow request", "service=collector", "path=/x", "status=200", "traceId=abcdef"} {
		if !strings.Contains(line, want) {
			t.Fatalf("text line %q missing %q", line, want)
		}
	}
}

func TestMiddlewareNilTracerPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(204) })
	h := Middleware(nil, nil, nil, inner)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rr.Code != 204 || rr.Header().Get(TraceIDHeader) != "" {
		t.Fatalf("nil-tracer middleware altered the response: %d %q", rr.Code, rr.Header().Get(TraceIDHeader))
	}
}
