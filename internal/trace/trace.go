// Package trace is the dependency-free request-tracing layer under the
// collector and fleet tiers: W3C trace-context propagation, in-process
// span recording, and a bounded in-memory ring of completed traces that
// GET /v1/traces serves.
//
// The model is deliberately small. A request owns one root span (opened
// by the HTTP middleware); handlers hang child spans and point-in-time
// events off it for the phases worth attributing — body read, WAL
// append+fsync, merge, ack, EM decode, per-member routing attempts.
// When the root span ends, the whole trace is assembled and pushed into
// the tracer's ring, newest first. Cross-tier causality rides the W3C
// `traceparent` header: the client mints one per submission, every tier
// joins the incoming trace instead of starting its own, and each tier
// echoes the trace ID back in the X-Dpspatial-Trace-Id response header
// — so one submission shows up under ONE trace ID at the client, the
// supervisor, and the member it was routed to.
//
// Span recording is allocation-light (no background goroutines, no
// timers; one ring slot per completed trace) and safe under concurrent
// traffic: spans of one trace may start and end on different goroutines
// (the fleet's concurrent member pulls do), and scraping the ring never
// blocks recording. All Span methods are nil-receiver safe, so code
// paths without an active trace — the cadence loops — cost a nil check
// and nothing else.
package trace

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mathrand "math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Wire headers of the tracing layer.
const (
	// TraceparentHeader is the W3C trace-context request header:
	// "00-<32 hex trace id>-<16 hex parent span id>-<2 hex flags>".
	TraceparentHeader = "traceparent"
	// TraceIDHeader is the response header every traced endpoint echoes
	// the request's trace ID in, so a client can join its submission to
	// the server-side /v1/traces entry without parsing any body.
	TraceIDHeader = "X-Dpspatial-Trace-Id"
)

// DefaultCapacity is the completed-trace ring size a Tracer gets when
// constructed with a non-positive capacity.
const DefaultCapacity = 256

// Outcome values of a completed trace, filterable via ?outcome= on
// /v1/traces.
const (
	// OutcomeOK marks a trace whose root span ended with a status below
	// 400 and no recorded error.
	OutcomeOK = "ok"
	// OutcomeError marks a trace whose root span failed: a 4xx/5xx
	// status or an explicit error.
	OutcomeError = "error"
)

// SpanContext identifies one span's position in a distributed trace:
// the shared 16-byte trace ID and this span's 8-byte ID.
type SpanContext struct {
	// TraceID is shared by every span of the trace, across processes.
	TraceID [16]byte
	// SpanID identifies this span within the trace.
	SpanID [8]byte
	// Flags is the W3C trace-flags byte (bit 0 = sampled).
	Flags byte
}

// Valid reports whether the context carries a usable (nonzero) trace
// and span ID.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [16]byte{} && sc.SpanID != [8]byte{}
}

// TraceIDString renders the trace ID as 32 lowercase hex characters —
// the form the traceparent header, the X-Dpspatial-Trace-Id echo and
// /v1/traces all use.
func (sc SpanContext) TraceIDString() string { return hex.EncodeToString(sc.TraceID[:]) }

// SpanIDString renders the span ID as 16 lowercase hex characters.
func (sc SpanContext) SpanIDString() string { return hex.EncodeToString(sc.SpanID[:]) }

// Traceparent renders the context as a version-00 W3C traceparent
// header value.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceIDString(), sc.SpanIDString(), sc.Flags)
}

// NewSpanContext mints a fresh sampled context with random trace and
// span IDs — what a client does before its first hop of a new trace.
func NewSpanContext() SpanContext {
	var sc SpanContext
	fillRandom(sc.TraceID[:])
	fillRandom(sc.SpanID[:])
	sc.Flags = 1
	return sc
}

// fillRandom fills b with random bytes, never all zero (the W3C
// invalid-ID value). math/rand/v2's global generator is ChaCha8 seeded
// from the OS entropy pool and lock-free per P, so minting IDs costs no
// syscall on the submission hot path.
func fillRandom(b []byte) {
	for {
		zero := true
		for i := 0; i < len(b); i += 8 {
			v := mathrand.Uint64()
			for j := i; j < len(b) && j < i+8; j++ {
				b[j] = byte(v)
				v >>= 8
				if b[j] != 0 {
					zero = false
				}
			}
		}
		if !zero {
			return
		}
	}
}

// ParseTraceparent parses a W3C traceparent header value. Future
// versions (anything but "ff") are accepted as long as the four
// version-00 fields parse; an all-zero trace or span ID is invalid per
// the spec and refused.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return sc, fmt.Errorf("trace: traceparent %q: want 4 dash-separated fields, got %d", s, len(parts))
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isHex(version) {
		return sc, fmt.Errorf("trace: traceparent %q: bad version field", s)
	}
	if version == "ff" {
		return sc, fmt.Errorf("trace: traceparent %q: version ff is forbidden", s)
	}
	if version == "00" && len(parts) != 4 {
		return sc, fmt.Errorf("trace: traceparent %q: version 00 has exactly 4 fields", s)
	}
	if len(traceID) != 32 || !isHex(traceID) {
		return sc, fmt.Errorf("trace: traceparent %q: trace ID must be 32 hex characters", s)
	}
	if len(spanID) != 16 || !isHex(spanID) {
		return sc, fmt.Errorf("trace: traceparent %q: span ID must be 16 hex characters", s)
	}
	if len(flags) != 2 || !isHex(flags) {
		return sc, fmt.Errorf("trace: traceparent %q: flags must be 2 hex characters", s)
	}
	hex.Decode(sc.TraceID[:], []byte(traceID))
	hex.Decode(sc.SpanID[:], []byte(spanID))
	var fb [1]byte
	hex.Decode(fb[:], []byte(flags))
	sc.Flags = fb[0]
	if sc.TraceID == [16]byte{} {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: all-zero trace ID is invalid", s)
	}
	if sc.SpanID == [8]byte{} {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q: all-zero span ID is invalid", s)
	}
	return sc, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Attr is one key-value annotation on a span or event. Values are
// stringified at JSON time; keep them to strings, integers, floats and
// booleans.
type Attr struct {
	// Key names the attribute.
	Key string
	// Value is the attribute payload.
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// EventData is one point-in-time annotation inside a span — how
// failover hops and sticky pins are recorded without opening a span per
// incident.
type EventData struct {
	// Name labels the event (e.g. "failover", "sticky.pin").
	Name string `json:"name"`
	// OffsetMs is the event's time since the span started.
	OffsetMs float64 `json:"offsetMs"`
	// Attrs carries the event annotations.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// SpanData is the completed, immutable form of one span as /v1/traces
// serves it.
type SpanData struct {
	// Name is the span's operation name (e.g. "collector.wal.append").
	Name string `json:"name"`
	// SpanID and ParentSpanID place the span in the trace tree; a root
	// span's ParentSpanID names the REMOTE parent (the upstream tier's
	// span) when the request carried a traceparent, and is empty when
	// this tier started the trace.
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	// Remote marks a ParentSpanID that lives in another process — set on
	// a root span joined to an incoming traceparent.
	Remote bool `json:"remoteParent,omitempty"`
	// Start is the span's wall-clock start (RFC 3339, nanoseconds).
	Start time.Time `json:"start"`
	// DurationMs is the span's monotonic-clock duration.
	DurationMs float64 `json:"durationMs"`
	// Status is the HTTP-shaped status of the span (0 = unset; root
	// spans carry the response status).
	Status int `json:"status,omitempty"`
	// Error is the recorded failure, empty on success.
	Error string `json:"error,omitempty"`
	// Attrs carries the span annotations (submission ID, member,
	// generation, WAL bytes, ...).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Events are the span's point-in-time annotations, in order.
	Events []EventData `json:"events,omitempty"`
}

// TraceData is one completed trace: the root span plus every child
// recorded in this process, in start order.
type TraceData struct {
	// TraceID is the 32-hex-character distributed trace ID.
	TraceID string `json:"traceId"`
	// Service is the recording tier ("collector", "supervisor").
	Service string `json:"service"`
	// Root is the root span's name — "POST /v1/report" shaped.
	Root string `json:"root"`
	// Start is the root span's wall-clock start.
	Start time.Time `json:"start"`
	// DurationMs is the root span's duration.
	DurationMs float64 `json:"durationMs"`
	// Outcome is OutcomeOK or OutcomeError, from the root span.
	Outcome string `json:"outcome"`
	// Spans holds the root span first, then the children in end order.
	Spans []SpanData `json:"spans"`
}

// Tracer records completed traces for one service tier into a bounded
// ring. The zero value is not usable; construct with NewTracer. A nil
// *Tracer is safe to call and records nothing.
type Tracer struct {
	service string

	mu    sync.Mutex
	ring  []TraceData // ring[(head-1-i) mod cap] is the i-th newest
	head  int         // next write position
	count int         // filled slots, <= cap(ring)
	total uint64      // completed traces ever, monotonic
}

// NewTracer builds a tracer for the named service tier with a
// completed-trace ring of the given capacity (<= 0 selects
// DefaultCapacity).
func NewTracer(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{service: service, ring: make([]TraceData, capacity)}
}

// Service reports the tier name the tracer records under.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Root opens the root span of a new local trace. A valid remote context
// joins the incoming distributed trace (same trace ID, remote parent);
// an invalid one starts a fresh trace. End the returned span to commit
// the whole trace to the ring.
func (t *Tracer) Root(name string, remote SpanContext) *Span {
	if t == nil {
		return nil
	}
	sc := NewSpanContext()
	remoteParent := ""
	if remote.Valid() {
		sc.TraceID = remote.TraceID
		sc.Flags = remote.Flags | 1
		remoteParent = remote.SpanIDString()
	}
	rec := &traceRec{tracer: t}
	s := &Span{
		rec:    rec,
		sc:     sc,
		parent: remoteParent,
		remote: remoteParent != "",
		name:   name,
		start:  time.Now(),
	}
	rec.root = s
	rec.open = 1
	return s
}

// traceRec accumulates the completed spans of one in-flight trace. Its
// mutex serialises children ending on different goroutines against each
// other and against the final assembly.
type traceRec struct {
	tracer *Tracer
	root   *Span

	mu    sync.Mutex
	done  []SpanData
	open  int  // spans started and not yet ended (root included)
	ended bool // root has ended; the trace is committed
}

// Span is one in-flight operation of a trace. All methods are safe on a
// nil receiver (no-ops), so untraced code paths need no conditionals.
// A span's own fields are mutated only by the goroutine driving that
// operation; cross-goroutine coordination happens in the traceRec.
type Span struct {
	rec    *traceRec
	sc     SpanContext
	parent string // parent span ID, hex ("" = root of a fresh trace)
	remote bool
	name   string
	start  time.Time
	status int
	err    string
	attrs  []Attr
	events []EventData
	ended  bool
}

// Context returns the span's trace context — what Outgoing injects into
// the traceparent header of downstream requests.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's 32-hex-character trace ID, empty on a nil
// span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceIDString()
}

// Child opens a sub-span under s. Ending the child records it into the
// trace; children left open when the root ends are dropped (they would
// have no duration).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	sc := s.sc
	fillRandom(sc.SpanID[:])
	c := &Span{
		rec:    s.rec,
		sc:     sc,
		parent: s.sc.SpanIDString(),
		name:   name,
		start:  time.Now(),
	}
	s.rec.mu.Lock()
	s.rec.open++
	s.rec.mu.Unlock()
	return c
}

// SetAttr annotates the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// SetStatus records the span's HTTP-shaped status code.
func (s *Span) SetStatus(code int) {
	if s == nil || s.ended {
		return
	}
	s.status = code
}

// Fail records an error on the span; a failed root span makes the
// trace's outcome OutcomeError.
func (s *Span) Fail(err error) {
	if s == nil || s.ended || err == nil {
		return
	}
	s.err = err.Error()
}

// Event records a point-in-time annotation at the current offset into
// the span — failover hops and sticky pins are events, not spans.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	s.events = append(s.events, EventData{
		Name:     name,
		OffsetMs: float64(time.Since(s.start)) / float64(time.Millisecond),
		Attrs:    attrMap(attrs),
	})
}

// End completes the span. Ending a child records it into its trace;
// ending the root assembles the trace (root first, children in end
// order) and commits it to the tracer's ring. End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start)
	rec := s.rec
	data := SpanData{
		Name:         s.name,
		SpanID:       s.sc.SpanIDString(),
		ParentSpanID: s.parent,
		Remote:       s.remote,
		Start:        s.start,
		DurationMs:   float64(d) / float64(time.Millisecond),
		Status:       s.status,
		Error:        s.err,
		Attrs:        attrMap(s.attrs),
		Events:       s.events,
	}
	rec.mu.Lock()
	rec.open--
	if s == rec.root {
		if !rec.ended {
			rec.ended = true
			spans := make([]SpanData, 0, len(rec.done)+1)
			spans = append(spans, data)
			spans = append(spans, rec.done...)
			rec.done = nil
			rec.mu.Unlock()
			outcome := OutcomeOK
			if s.err != "" || s.status >= 400 {
				outcome = OutcomeError
			}
			rec.tracer.push(TraceData{
				TraceID:    s.sc.TraceIDString(),
				Service:    rec.tracer.service,
				Root:       s.name,
				Start:      s.start,
				DurationMs: data.DurationMs,
				Outcome:    outcome,
				Spans:      spans,
			})
			return
		}
		rec.mu.Unlock()
		return
	}
	if !rec.ended {
		rec.done = append(rec.done, data)
	}
	rec.mu.Unlock()
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// push commits one completed trace into the ring.
func (t *Tracer) push(td TraceData) {
	t.mu.Lock()
	t.ring[t.head] = td
	t.head = (t.head + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	t.total++
	t.mu.Unlock()
}

// Completed reports how many traces the tracer has ever committed — the
// monotonic counter behind tests and capacity tuning; the ring itself
// keeps only the newest.
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns up to limit completed traces, newest first, keeping
// only those at least minDur long and (when outcome is non-empty)
// matching the outcome. limit <= 0 means the whole ring. The returned
// slice shares no mutable state with the ring.
func (t *Tracer) Snapshot(minDur time.Duration, outcome string, limit int) []TraceData {
	if t == nil {
		return nil
	}
	minMs := float64(minDur) / float64(time.Millisecond)
	t.mu.Lock()
	defer t.mu.Unlock()
	if limit <= 0 || limit > t.count {
		limit = t.count
	}
	out := make([]TraceData, 0, limit)
	for i := 0; i < t.count && len(out) < limit; i++ {
		td := t.ring[(t.head-1-i+len(t.ring))%len(t.ring)]
		if td.DurationMs < minMs {
			continue
		}
		if outcome != "" && td.Outcome != outcome {
			continue
		}
		out = append(out, td)
	}
	return out
}

// --- Context plumbing ---

type spanKey struct{}
type remoteKey struct{}

// ContextWithSpan returns a context carrying the span; SpanFrom and
// Outgoing recover it downstream.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's active span, or nil — and nil is safe
// to use: every Span method no-ops on it.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithRemote attaches a bare remote trace context — what a
// client that has no local tracer mints before its first hop, so the
// whole distributed trace still shares one ID.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// Outgoing resolves the trace context an outbound request should
// propagate: the active local span's, or a remote context attached with
// ContextWithRemote.
func Outgoing(ctx context.Context) (SpanContext, bool) {
	if s := SpanFrom(ctx); s != nil {
		return s.sc, true
	}
	if ctx != nil {
		if sc, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
			return sc, true
		}
	}
	return SpanContext{}, false
}

// --- HTTP surface ---

// Handler serves the tracer's ring as JSON: newest first, filterable
// with ?min_ms=<float> (minimum root duration) and ?outcome=ok|error,
// bounded with ?limit=<n>. Mount it behind the same auth gate as the
// data endpoints and EXCLUDE it from request accounting — scraping
// traces must perturb neither the metrics nor the ring.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMethodNotAllowed)
			_, _ = io.WriteString(w, `{"error":"GET only"}`+"\n")
			return
		}
		q := r.URL.Query()
		var minDur time.Duration
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_, _ = io.WriteString(w, `{"error":"min_ms must be a non-negative number"}`+"\n")
				return
			}
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
		outcome := q.Get("outcome")
		if outcome != "" && outcome != OutcomeOK && outcome != OutcomeError {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_, _ = io.WriteString(w, `{"error":"outcome must be ok or error"}`+"\n")
			return
		}
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_, _ = io.WriteString(w, `{"error":"limit must be a non-negative integer"}`+"\n")
				return
			}
			limit = n
		}
		traces := t.Snapshot(minDur, outcome, limit)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		_ = enc.Encode(map[string]any{
			"service": t.Service(),
			"count":   len(traces),
			"traces":  traces,
		})
	})
}

// Middleware wraps a tier's full handler chain with request tracing: a
// root span per request (joined to the incoming traceparent when one
// parses), the trace ID echoed in the X-Dpspatial-Trace-Id response
// header, the response status recorded on the span, and — when slow is
// non-nil — a structured log line for requests at or over the slow
// threshold. Paths for which skip returns true pass through untouched:
// the metrics, traces and pprof surfaces must not generate traffic in
// the very ring and series they expose, and health probes would drown
// the ring in noise.
func Middleware(t *Tracer, slow *SlowLogger, skip func(path string) bool, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if skip != nil && skip(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		var remote SpanContext
		if tp := r.Header.Get(TraceparentHeader); tp != "" {
			if sc, err := ParseTraceparent(tp); err == nil {
				remote = sc
			}
		}
		span := t.Root(r.Method+" "+r.URL.Path, remote)
		span.SetAttr(String("method", r.Method), String("path", r.URL.Path))
		w.Header().Set(TraceIDHeader, span.TraceID())
		rec := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ContextWithSpan(r.Context(), span)))
		code := rec.status
		if code == 0 {
			code = http.StatusOK
		}
		span.SetStatus(code)
		span.End()
		slow.Log(t.Service(), span.TraceID(), r.Method, r.URL.Path, code, time.Since(start))
	})
}

// statusWriter captures the response status for the root span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// SlowLogger emits one structured log line per request at or over its
// threshold, each carrying the trace ID — the join key between the log
// stream and /v1/traces. A nil *SlowLogger is disabled.
type SlowLogger struct {
	// W receives the log lines (typically os.Stderr).
	W io.Writer
	// Threshold is the minimum request duration to log; zero logs every
	// request (the --slow-ms 0 debug mode).
	Threshold time.Duration
	// JSON switches lines from logfmt-shaped text to one JSON object per
	// line (--log-format=json).
	JSON bool

	mu sync.Mutex
}

// Log writes one slow-request line if d meets the threshold. Safe on a
// nil receiver and for concurrent use.
func (l *SlowLogger) Log(service, traceID, method, path string, status int, d time.Duration) {
	if l == nil || l.W == nil || d < l.Threshold {
		return
	}
	ms := float64(d) / float64(time.Millisecond)
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	var line string
	if l.JSON {
		b, err := json.Marshal(map[string]any{
			"ts":         ts,
			"level":      "warn",
			"msg":        "slow request",
			"service":    service,
			"method":     method,
			"path":       path,
			"status":     status,
			"durationMs": ms,
			"traceId":    traceID,
		})
		if err != nil {
			return
		}
		line = string(b) + "\n"
	} else {
		line = fmt.Sprintf("%s WARN slow request service=%s method=%s path=%s status=%d durationMs=%.3f traceId=%s\n",
			ts, service, method, path, status, ms, traceID)
	}
	l.mu.Lock()
	_, _ = io.WriteString(l.W, line)
	l.mu.Unlock()
}
