// Package durable is the crash-safe persistence layer under the
// collector tier: periodic atomic snapshots of an opaque state blob
// (the canonical DPA2 aggregate plus caller metadata and the ack log)
// with a CRC-framed append-only write-ahead log recording every
// accepted submission between snapshots.
//
// The contract the collector builds its exactly-once guarantee on:
//
//   - Append returns only after the record batch is fsync'd, so a
//     submission is acknowledged only once a crash cannot lose it.
//   - WriteSnapshot is atomic (temp file, fsync, rename, directory
//     fsync): a crash at any point leaves either the previous snapshot
//     or the new one, never a torn mixture.
//   - Every record carries a monotonically increasing sequence number
//     and the snapshot records the sequence it covers, so a crash
//     between the snapshot rename and the WAL reset replays nothing
//     twice — stale records are recognised by sequence and skipped.
//   - Recovery tolerates exactly one kind of damage: an incomplete
//     final WAL write (the torn tail a kill -9 mid-append leaves). Any
//     other inconsistency — a CRC failure followed by intact records, a
//     sequence gap, a corrupt snapshot — refuses loudly rather than
//     silently serving partial state.
//
// The engine is deliberately generic: it stores byte payloads and never
// interprets them, so the collector keeps ownership of its own wire
// formats (Pipeline JSON, DPA2 blobs, ack envelopes) and the package
// has no dependency on the service layers above it.
package durable

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// On-disk layout inside the data directory.
const (
	// WALFile is the append-only record log.
	WALFile = "wal.log"
	// SnapshotFile is the last complete snapshot; it only ever appears
	// by atomic rename of SnapshotTmpFile.
	SnapshotFile = "snapshot.dam"
	// SnapshotTmpFile is the in-progress snapshot; one left behind by a
	// crash before the rename is discarded on Open.
	SnapshotTmpFile = SnapshotFile + ".tmp"
)

// Record types. The engine persists the type byte verbatim; the
// collector defines what each means.
const (
	// RecordPipeline carries the pinned pipeline metadata (JSON in Meta)
	// so a restarted process can rebuild its mechanism before replaying
	// submissions.
	RecordPipeline byte = 1
	// RecordSubmission carries one accepted shard: the submission's
	// idempotency ID, the ack envelope (Meta) and the shard blob (Blob).
	RecordSubmission byte = 2
)

// Record is one WAL entry. Seq is assigned by Append and reported back
// on recovery; callers set Type, ID, Meta and Blob.
type Record struct {
	Seq  uint64
	Type byte
	ID   string
	Meta []byte
	Blob []byte
}

// AckEntry is one remembered ack in a snapshot's idempotency log,
// oldest first — the order the collector's FIFO eviction needs.
type AckEntry struct {
	ID  string
	Ack []byte
}

// Snapshot is the full collector state at a sequence point.
type Snapshot struct {
	// Seq is the last WAL sequence the snapshot covers: recovery replays
	// only records with a higher sequence.
	Seq uint64
	// TakenAt is when the snapshot was written (operator surface only;
	// recovery does not depend on it).
	TakenAt time.Time
	// Meta is caller-defined metadata (the collector stores pipeline +
	// counters as JSON).
	Meta []byte
	// State is the caller's opaque state blob (the canonical DPA2
	// aggregate).
	State []byte
	// Acks is the idempotency log, oldest first.
	Acks []AckEntry
}

// Recovery is what Open found on disk, ready to replay.
type Recovery struct {
	// Snapshot is the last complete snapshot, nil when none exists.
	Snapshot *Snapshot
	// Records are the WAL records not covered by the snapshot, in append
	// order.
	Records []Record
	// TornTailBytes counts bytes of an incomplete final WAL write that
	// were discarded — the residue of a crash mid-append. The records
	// they belonged to were never acknowledged, so discarding loses
	// nothing a client was promised.
	TornTailBytes int64
}

// Hooks are fault-injection points for crash-schedule tests: a non-nil
// hook returning an error aborts the operation at that point, exactly
// as a crash there would. Production code leaves them nil.
type Hooks struct {
	// BeforeSnapshotRename fires after the temp snapshot is written and
	// fsync'd, before the atomic rename.
	BeforeSnapshotRename func() error
	// AfterSnapshotRename fires after the rename and directory fsync,
	// before the WAL is reset.
	AfterSnapshotRename func() error
}

// Stats is the operator surface of one store, served through /v1/stats.
type Stats struct {
	// SnapshotSeq is the sequence covered by the snapshot on disk
	// (0 = none yet); WALSeq is the last appended sequence.
	SnapshotSeq uint64 `json:"snapshotSeq"`
	WALSeq      uint64 `json:"walSeq"`
	// RecordsSinceSnapshot is the replay cost of a crash right now.
	RecordsSinceSnapshot uint64 `json:"recordsSinceSnapshot"`
	// RecordsAppended / SnapshotsWritten count this process's writes.
	RecordsAppended  uint64 `json:"recordsAppended"`
	SnapshotsWritten uint64 `json:"snapshotsWritten"`
	// WALFsyncs counts fsyncs issued on the WAL file by this process —
	// one per Append batch plus one per post-snapshot reset — the
	// durability cost an operator trades against the snapshot cadence.
	// WALBytesWritten is the total bytes this process appended to the
	// WAL, headers included (unlike WALBytes it never shrinks on reset).
	WALFsyncs       uint64 `json:"walFsyncs"`
	WALBytesWritten uint64 `json:"walBytesWritten"`
	// RecordsReplayed is how many WAL records the startup recovery
	// replayed; TornTailBytes the discarded incomplete final write.
	RecordsReplayed int   `json:"recordsReplayed"`
	TornTailBytes   int64 `json:"tornTailBytes,omitempty"`
	// RecoveryMillis is the wall time of the startup recovery, including
	// the caller's replay once it reports it.
	RecoveryMillis int64 `json:"recoveryMillis"`
	// SnapshotAgeMillis is the age of the snapshot on disk at the time
	// of the stats call (-1 = no snapshot yet).
	SnapshotAgeMillis int64 `json:"snapshotAgeMillis"`
	// WALBytes is the current WAL file size.
	WALBytes int64 `json:"walBytes"`
	// LastError records the most recent append or snapshot failure.
	LastError string `json:"lastError,omitempty"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Store is one open data directory. All methods are safe for concurrent
// use; Append and WriteSnapshot serialise internally.
type Store struct {
	// Hooks inject crash points for fault tests; set them between Open
	// and first use.
	Hooks Hooks

	dir string

	mu          sync.Mutex
	wal         *os.File
	seq         uint64 // last assigned sequence
	snapSeq     uint64 // sequence covered by the snapshot on disk
	snapTakenAt time.Time
	walBytes    int64
	stats       Stats
	recovery    *Recovery
	recoverT0   time.Time
}

// Open opens (creating if needed) a data directory, validates what it
// holds, truncates a torn WAL tail, and stages the recovered state for
// TakeRecovery. It refuses — rather than silently dropping state — on
// any damage other than an incomplete final WAL write.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{dir: dir, recoverT0: time.Now()}

	// A temp snapshot is a crash before the rename: the WAL still covers
	// everything it would have, so it is pure garbage.
	if err := os.Remove(filepath.Join(dir, SnapshotTmpFile)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: removing stale snapshot temp: %w", err)
	}

	rec := &Recovery{}
	snapData, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	switch {
	case err == nil:
		snap, derr := decodeSnapshot(snapData)
		if derr != nil {
			return nil, fmt.Errorf("durable: snapshot %s: %w", SnapshotFile, derr)
		}
		rec.Snapshot = snap
		s.snapSeq = snap.Seq
		s.snapTakenAt = snap.TakenAt
		s.seq = snap.Seq
	case os.IsNotExist(err):
	default:
		return nil, fmt.Errorf("durable: %w", err)
	}

	walPath := filepath.Join(dir, WALFile)
	walData, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: %w", err)
	}
	recs, validEnd, perr := parseWAL(walData)
	if perr != nil {
		return nil, fmt.Errorf("durable: WAL %s: %w", WALFile, perr)
	}
	rec.TornTailBytes = int64(len(walData)) - validEnd

	// Relate the WAL to the snapshot: records at or below the snapshot
	// sequence are from a crash between the snapshot rename and the WAL
	// reset — covered, skip them. Anything above must continue exactly
	// at snapSeq+1 or state is missing.
	for _, r := range recs {
		if r.Seq <= s.snapSeq {
			continue
		}
		if r.Seq != s.seq+1 {
			return nil, fmt.Errorf("durable: WAL record sequence %d does not follow %d: records are missing", r.Seq, s.seq)
		}
		rec.Records = append(rec.Records, r)
		s.seq = r.Seq
	}

	// Physically drop the torn tail before appending anything, so new
	// records never land after garbage bytes.
	if rec.TornTailBytes > 0 {
		if err := os.Truncate(walPath, validEnd); err != nil {
			return nil, fmt.Errorf("durable: truncating torn WAL tail: %w", err)
		}
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if validEnd == 0 {
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: writing WAL header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: %w", err)
		}
		validEnd = int64(len(walMagic))
		s.stats.WALFsyncs++
		s.stats.WALBytesWritten += uint64(len(walMagic))
	}
	s.wal = f
	s.walBytes = validEnd
	s.stats.RecordsReplayed = len(rec.Records)
	s.stats.TornTailBytes = rec.TornTailBytes
	s.recovery = rec
	return s, nil
}

// TakeRecovery returns the state Open found, once; later calls return
// nil. The caller replays it and then calls NoteRecovered so the replay
// duration lands in the stats.
func (s *Store) TakeRecovery() *Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.recovery
	s.recovery = nil
	return rec
}

// NoteRecovered records the end of the caller's replay, closing the
// recovery-duration measurement started at Open.
func (s *Store) NoteRecovered() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.RecoveryMillis = time.Since(s.recoverT0).Milliseconds()
}

// AppendInfo describes one completed Append batch — the span hook the
// tracing layer hangs WAL attributes off (bytes framed, records
// written, time spent inside the fsync).
type AppendInfo struct {
	// Records is the number of records framed into the batch.
	Records int
	// Bytes is the framed batch size written to the WAL.
	Bytes int64
	// Fsync is the wall-clock duration of the batch's fsync alone.
	Fsync time.Duration
}

// Append assigns sequence numbers to the records, writes them as one
// CRC-framed batch, and fsyncs before returning — the caller may
// acknowledge the submission only after Append returns nil. On error
// the on-disk state is at worst a torn tail, which the next Open
// discards. The returned AppendInfo sizes the batch and its fsync for
// the caller's tracing span; it is zero on error.
func (s *Store) Append(recs ...Record) (AppendInfo, error) {
	if len(recs) == 0 {
		return AppendInfo{}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	for i := range recs {
		recs[i].Seq = s.seq + uint64(i) + 1
		buf = appendFramedRecord(buf, &recs[i])
	}
	if _, err := s.wal.Write(buf); err != nil {
		s.stats.LastError = err.Error()
		return AppendInfo{}, fmt.Errorf("durable: WAL append: %w", err)
	}
	syncT0 := time.Now()
	if err := s.wal.Sync(); err != nil {
		s.stats.LastError = err.Error()
		return AppendInfo{}, fmt.Errorf("durable: WAL fsync: %w", err)
	}
	syncD := time.Since(syncT0)
	s.seq += uint64(len(recs))
	s.walBytes += int64(len(buf))
	s.stats.RecordsAppended += uint64(len(recs))
	s.stats.WALFsyncs++
	s.stats.WALBytesWritten += uint64(len(buf))
	return AppendInfo{Records: len(recs), Bytes: int64(len(buf)), Fsync: syncD}, nil
}

// RecordsSinceSnapshot reports the replay cost of a crash right now —
// the collector's snapshot-cadence trigger.
func (s *Store) RecordsSinceSnapshot() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq - s.snapSeq
}

// WriteSnapshot atomically persists a snapshot of the caller's state at
// the current sequence and resets the WAL. A crash at any point leaves
// a directory Open recovers to the identical state: before the rename
// the old snapshot + full WAL win; after it, stale WAL records are
// skipped by sequence.
func (s *Store) WriteSnapshot(meta, state []byte, acks []AckEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &Snapshot{Seq: s.seq, TakenAt: time.Now(), Meta: meta, State: state, Acks: acks}
	data := encodeSnapshot(snap)

	tmp := filepath.Join(s.dir, SnapshotTmpFile)
	final := filepath.Join(s.dir, SnapshotFile)
	if err := s.writeSnapshotFile(tmp, data); err != nil {
		s.stats.LastError = err.Error()
		return err
	}
	if h := s.Hooks.BeforeSnapshotRename; h != nil {
		if err := h(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		s.stats.LastError = err.Error()
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		s.stats.LastError = err.Error()
		return err
	}
	// The snapshot is durable from here on: even if the WAL reset below
	// does not happen, recovery skips the now-covered records.
	s.snapSeq = snap.Seq
	s.snapTakenAt = snap.TakenAt
	s.stats.SnapshotsWritten++
	if h := s.Hooks.AfterSnapshotRename; h != nil {
		if err := h(); err != nil {
			return err
		}
	}
	if err := s.resetWALLocked(); err != nil {
		s.stats.LastError = err.Error()
		return err
	}
	return nil
}

func (s *Store) writeSnapshotFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// resetWALLocked empties the log after a successful snapshot. The open
// O_APPEND handle keeps appending at the (new) end after the truncate.
func (s *Store) resetWALLocked() error {
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("durable: WAL reset: %w", err)
	}
	if _, err := s.wal.Write(walMagic); err != nil {
		return fmt.Errorf("durable: WAL header: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("durable: WAL fsync: %w", err)
	}
	s.walBytes = int64(len(walMagic))
	s.stats.WALFsyncs++
	s.stats.WALBytesWritten += uint64(len(walMagic))
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: directory fsync: %w", err)
	}
	return nil
}

// Stats snapshots the operator counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.SnapshotSeq = s.snapSeq
	st.WALSeq = s.seq
	st.RecordsSinceSnapshot = s.seq - s.snapSeq
	st.WALBytes = s.walBytes
	if s.snapTakenAt.IsZero() {
		st.SnapshotAgeMillis = -1
	} else {
		st.SnapshotAgeMillis = time.Since(s.snapTakenAt).Milliseconds()
	}
	return st
}

// Close closes the WAL handle. It does NOT write a snapshot — the
// collector flushes one first when shutting down gracefully.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// RecordEnds returns the byte offset just past each complete CRC-valid
// record in the WAL at path — the crash-point enumeration fault tests
// truncate at. The first boundary (the file header) is included.
func RecordEnds(path string) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, _, err := parseWAL(data)
	if err != nil {
		return nil, err
	}
	ends := []int64{int64(len(walMagic))}
	off := int64(len(walMagic))
	for _, r := range recs {
		off += int64(framedRecordSize(&r))
		ends = append(ends, off)
	}
	return ends, nil
}
