package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// A snapshot file is one self-checking blob:
//
//	magic(8) | uvarint seq | takenAt unixnano (8 LE) |
//	uvarint len(meta) meta | uvarint len(state) state |
//	uvarint numAcks { uvarint len(id) id | uvarint len(ack) ack }* |
//	uint32 LE CRC32-C over everything before it
//
// It only ever reaches SnapshotFile by atomic rename of a fully written
// and fsync'd temp file, so a snapshot that exists is complete — the
// trailing CRC guards against bit rot, not torn writes, and any
// mismatch refuses recovery.
var snapshotMagic = []byte("DPSNAP01")

func encodeSnapshot(snap *Snapshot) []byte {
	var out []byte
	out = append(out, snapshotMagic...)
	out = binary.AppendUvarint(out, snap.Seq)
	out = binary.LittleEndian.AppendUint64(out, uint64(snap.TakenAt.UnixNano()))
	out = binary.AppendUvarint(out, uint64(len(snap.Meta)))
	out = append(out, snap.Meta...)
	out = binary.AppendUvarint(out, uint64(len(snap.State)))
	out = append(out, snap.State...)
	out = binary.AppendUvarint(out, uint64(len(snap.Acks)))
	for _, e := range snap.Acks {
		out = binary.AppendUvarint(out, uint64(len(e.ID)))
		out = append(out, e.ID...)
		out = binary.AppendUvarint(out, uint64(len(e.Ack)))
		out = append(out, e.Ack...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("file of %d bytes is too short for a snapshot", len(data))
	}
	if string(data[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, fmt.Errorf("bad snapshot magic %q", data[:len(snapshotMagic)])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("snapshot fails its CRC: refusing to recover from corrupt state")
	}
	rest := body[len(snapshotMagic):]
	snap := &Snapshot{}
	seq, used := binary.Uvarint(rest)
	if used <= 0 {
		return nil, fmt.Errorf("truncated snapshot sequence")
	}
	snap.Seq = seq
	rest = rest[used:]
	if len(rest) < 8 {
		return nil, fmt.Errorf("truncated snapshot timestamp")
	}
	snap.TakenAt = time.Unix(0, int64(binary.LittleEndian.Uint64(rest[:8])))
	rest = rest[8:]
	var err error
	if snap.Meta, rest, err = readChunk(rest, "snapshot meta"); err != nil {
		return nil, err
	}
	if snap.State, rest, err = readChunk(rest, "snapshot state"); err != nil {
		return nil, err
	}
	numAcks, used := binary.Uvarint(rest)
	if used <= 0 || numAcks > uint64(len(rest)) {
		return nil, fmt.Errorf("truncated snapshot ack count")
	}
	rest = rest[used:]
	snap.Acks = make([]AckEntry, 0, numAcks)
	for i := uint64(0); i < numAcks; i++ {
		var id, ack []byte
		if id, rest, err = readChunk(rest, "ack id"); err != nil {
			return nil, err
		}
		if ack, rest, err = readChunk(rest, "ack body"); err != nil {
			return nil, err
		}
		snap.Acks = append(snap.Acks, AckEntry{ID: string(id), Ack: ack})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in snapshot", len(rest))
	}
	return snap, nil
}
