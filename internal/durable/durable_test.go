package durable

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// --- golden encodings ---
//
// The on-disk formats are a compatibility surface: a collector restarted
// from a newer binary must replay directories the older one wrote. These
// bytes must never change without a new magic.

func TestGoldenRecordEncoding(t *testing.T) {
	rec := Record{Seq: 7, Type: RecordSubmission, ID: "sub-1", Meta: []byte(`{"k":1}`), Blob: []byte{0xde, 0xad}}
	const want = "1a0000003474fcca020700000000000000057375622d31077b226b223a317d02dead"
	if got := hex.EncodeToString(appendFramedRecord(nil, &rec)); got != want {
		t.Fatalf("framed record encoding changed:\n got %s\nwant %s", got, want)
	}
	if n := framedRecordSize(&rec); n != len(want)/2 {
		t.Fatalf("framedRecordSize = %d, want %d", n, len(want)/2)
	}
}

func TestGoldenSnapshotEncoding(t *testing.T) {
	snap := &Snapshot{
		Seq:     3,
		TakenAt: time.Unix(0, 1700000000000000000),
		Meta:    []byte(`{"m":2}`),
		State:   []byte{0xbe, 0xef},
		Acks:    []AckEntry{{ID: "a", Ack: []byte(`{"ok":true}`)}},
	}
	const want = "4450534e415030310300002a36fe9c9717077b226d223a327d02beef0101610b7b226f6b223a747275657d8a6aa849"
	if got := hex.EncodeToString(encodeSnapshot(snap)); got != want {
		t.Fatalf("snapshot encoding changed:\n got %s\nwant %s", got, want)
	}
	back, err := decodeSnapshot(encodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != snap.Seq || !back.TakenAt.Equal(snap.TakenAt) ||
		!bytes.Equal(back.Meta, snap.Meta) || !bytes.Equal(back.State, snap.State) ||
		len(back.Acks) != 1 || back.Acks[0].ID != "a" || !bytes.Equal(back.Acks[0].Ack, snap.Acks[0].Ack) {
		t.Fatalf("snapshot round trip mismatch: %+v", back)
	}
}

// --- lifecycle round trips ---

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Type: RecordSubmission,
			ID:   fmt.Sprintf("sub-%02d", i),
			Meta: []byte(fmt.Sprintf(`{"gen":%d}`, i+1)),
			Blob: bytes.Repeat([]byte{byte(i)}, 16+i),
		}
	}
	return recs
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	if rec := st.TakeRecovery(); rec == nil || rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	want := testRecords(5)
	for i := range want {
		info, err := st.Append(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if info.Records != 1 || info.Bytes <= 0 {
			t.Fatalf("AppendInfo = %+v, want 1 record with positive bytes", info)
		}
	}
	if info, err := st.Append(); err != nil || info != (AppendInfo{}) {
		t.Fatalf("empty Append = %+v, %v; want zero info, nil error", info, err)
	}
	// Simulate a crash: reopen without Close.
	st2 := mustOpen(t, dir)
	rec := st2.TakeRecovery()
	if rec.Snapshot != nil {
		t.Fatalf("unexpected snapshot: %+v", rec.Snapshot)
	}
	if rec.TornTailBytes != 0 {
		t.Fatalf("TornTailBytes = %d on a clean log", rec.TornTailBytes)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) || r.ID != want[i].ID ||
			!bytes.Equal(r.Meta, want[i].Meta) || !bytes.Equal(r.Blob, want[i].Blob) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	if rec2 := st2.TakeRecovery(); rec2 != nil {
		t.Fatal("TakeRecovery must return nil the second time")
	}
	// Appends continue the sequence after recovery.
	if _, err := st2.Append(Record{Type: RecordPipeline, Meta: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	st3 := mustOpen(t, dir)
	got := st3.TakeRecovery().Records
	if len(got) != 6 || got[5].Seq != 6 || got[5].Type != RecordPipeline {
		t.Fatalf("post-recovery append lost: %+v", got)
	}
}

func TestSnapshotRoundTripAndWALReset(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	for _, r := range testRecords(3) {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	acks := []AckEntry{{ID: "a", Ack: []byte("1")}, {ID: "b", Ack: []byte("2")}}
	if err := st.WriteSnapshot([]byte("meta"), []byte("state"), acks); err != nil {
		t.Fatal(err)
	}
	if n := st.RecordsSinceSnapshot(); n != 0 {
		t.Fatalf("RecordsSinceSnapshot = %d after snapshot", n)
	}
	// Two post-snapshot records must replay on top of the snapshot.
	if _, err := st.Append(Record{Type: RecordSubmission, ID: "after"}); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir)
	rec := st2.TakeRecovery()
	if rec.Snapshot == nil {
		t.Fatal("snapshot lost")
	}
	if rec.Snapshot.Seq != 3 || string(rec.Snapshot.Meta) != "meta" || string(rec.Snapshot.State) != "state" {
		t.Fatalf("snapshot mismatch: %+v", rec.Snapshot)
	}
	if len(rec.Snapshot.Acks) != 2 || rec.Snapshot.Acks[0].ID != "a" || rec.Snapshot.Acks[1].ID != "b" {
		t.Fatalf("acks mismatch: %+v", rec.Snapshot.Acks)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 4 || rec.Records[0].ID != "after" {
		t.Fatalf("post-snapshot records mismatch: %+v", rec.Records)
	}
}

func TestStatsSurface(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	if s := st.Stats(); s.SnapshotAgeMillis != -1 {
		t.Fatalf("SnapshotAgeMillis = %d before any snapshot", s.SnapshotAgeMillis)
	}
	if _, err := st.Append(testRecords(2)...); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.WALSeq != 2 || s.RecordsAppended != 2 || s.RecordsSinceSnapshot != 2 {
		t.Fatalf("stats after appends: %+v", s)
	}
	if s.WALBytes <= int64(len(walMagic)) {
		t.Fatalf("WALBytes = %d", s.WALBytes)
	}
	if err := st.WriteSnapshot(nil, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	s = st.Stats()
	if s.SnapshotSeq != 2 || s.SnapshotsWritten != 1 || s.RecordsSinceSnapshot != 0 || s.SnapshotAgeMillis < 0 {
		t.Fatalf("stats after snapshot: %+v", s)
	}
}

// --- torn tails: the one tolerated damage ---

func TestTornTailToleratedAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	st := mustOpen(t, master)
	st.TakeRecovery()
	recs := testRecords(3)
	for _, r := range recs {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(master, WALFile)
	ends, err := RecordEnds(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) != 4 {
		t.Fatalf("RecordEnds = %v, want 4 boundaries", ends)
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point inside the final record loses exactly that
	// unacknowledged record and keeps the two before it.
	for cut := ends[2]; cut < ends[3]; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, WALFile), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2 := mustOpen(t, dir)
		rec := st2.TakeRecovery()
		if len(rec.Records) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(rec.Records))
		}
		if want := ends[3] - max(cut, ends[2]); cut > ends[2] && rec.TornTailBytes != cut-ends[2] {
			t.Fatalf("cut at %d: TornTailBytes = %d, want %d (full tail %d)", cut, rec.TornTailBytes, cut-ends[2], want)
		}
		// The torn bytes must be physically gone so new appends never
		// land after garbage.
		if fi, err := os.Stat(filepath.Join(dir, WALFile)); err != nil || fi.Size() != ends[2] {
			t.Fatalf("cut at %d: WAL size %d after open, want %d", cut, fi.Size(), ends[2])
		}
		if _, err := st2.Append(Record{Type: RecordSubmission, ID: "new"}); err != nil {
			t.Fatal(err)
		}
		st3 := mustOpen(t, dir)
		got := st3.TakeRecovery().Records
		if len(got) != 3 || got[2].ID != "new" || got[2].Seq != 3 {
			t.Fatalf("cut at %d: append after torn tail: %+v", cut, got)
		}
	}
}

func TestCorruptFinalRecordTreatedAsTorn(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	for _, r := range testRecords(2) {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	walPath := filepath.Join(dir, WALFile)
	data, _ := os.ReadFile(walPath)
	// Flip a byte in the FINAL record's payload: all bytes present, CRC
	// wrong — indistinguishable from a partially persisted last write.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir)
	rec := st2.TakeRecovery()
	if len(rec.Records) != 1 || rec.TornTailBytes == 0 {
		t.Fatalf("corrupt final record: %d records, %d torn bytes", len(rec.Records), rec.TornTailBytes)
	}
}

// --- refusals: anything a torn final write cannot explain ---

func TestBadCRCMidLogRefuses(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	for _, r := range testRecords(3) {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	walPath := filepath.Join(dir, WALFile)
	ends, err := RecordEnds(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(walPath)
	data[ends[0]+frameOverhead+2] ^= 0xff // payload byte of record 1
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("mid-log corruption must refuse, got %v", err)
	}
}

func TestSequenceGapRefuses(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	for _, r := range testRecords(3) {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	walPath := filepath.Join(dir, WALFile)
	ends, err := RecordEnds(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(walPath)
	// Splice out the middle record: every frame stays CRC-valid but the
	// sequence jumps 1 → 3.
	spliced := append(append([]byte{}, data[:ends[1]]...), data[ends[2]:]...)
	if err := os.WriteFile(walPath, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("sequence gap must refuse, got %v", err)
	}
}

func TestCorruptSnapshotRefuses(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	if _, err := st.Append(testRecords(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot([]byte("m"), []byte("s"), nil); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, SnapshotFile)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt snapshot must refuse, got %v", err)
	}
}

func TestBadWALMagicRefuses(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALFile), []byte("NOTAWALF"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic must refuse, got %v", err)
	}
}

// --- crash windows around the snapshot rename ---

func TestCrashBeforeSnapshotRenameKeepsOldState(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	for _, r := range testRecords(2) {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("crash injected before rename")
	st.Hooks.BeforeSnapshotRename = func() error { return boom }
	if err := st.WriteSnapshot([]byte("m"), []byte("s"), nil); err != boom {
		t.Fatalf("WriteSnapshot error = %v, want injected crash", err)
	}
	// The abandoned temp file must not count as a snapshot.
	st2 := mustOpen(t, dir)
	rec := st2.TakeRecovery()
	if rec.Snapshot != nil {
		t.Fatalf("pre-rename crash surfaced a snapshot: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("replayed %d records, want 2", len(rec.Records))
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotTmpFile)); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot temp survived Open: %v", err)
	}
}

func TestCrashAfterSnapshotRenameSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.TakeRecovery()
	for _, r := range testRecords(2) {
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("crash injected after rename")
	st.Hooks.AfterSnapshotRename = func() error { return boom }
	if err := st.WriteSnapshot([]byte("m"), []byte("s"), nil); err != boom {
		t.Fatalf("WriteSnapshot error = %v, want injected crash", err)
	}
	// The snapshot is durable but the WAL was never reset: recovery must
	// recognise the covered records by sequence and replay nothing.
	st2 := mustOpen(t, dir)
	rec := st2.TakeRecovery()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 2 {
		t.Fatalf("post-rename crash lost the snapshot: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("covered records replayed twice: %+v", rec.Records)
	}
	// New appends continue above the snapshot sequence.
	if _, err := st2.Append(Record{Type: RecordSubmission, ID: "post"}); err != nil {
		t.Fatal(err)
	}
	st3 := mustOpen(t, dir)
	rec3 := st3.TakeRecovery()
	if len(rec3.Records) != 1 || rec3.Records[0].Seq != 3 {
		t.Fatalf("append after covered WAL: %+v", rec3.Records)
	}
}
