package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The WAL is a magic header followed by framed records:
//
//	[uint32 LE payload length][uint32 LE CRC32-C of payload][payload]
//
// with each payload:
//
//	type(1) | seq(8 LE) | uvarint len(id) id | uvarint len(meta) meta |
//	uvarint len(blob) blob
//
// Appends are single write(2) calls followed by fsync, so a crash can
// only leave an incomplete suffix — which parseWAL discards as the torn
// tail. A CRC failure on anything OTHER than the final record cannot be
// a torn write and refuses recovery.
var walMagic = []byte("DPWAL001")

// frameOverhead is the length + CRC prefix of each record.
const frameOverhead = 8

// appendFramedRecord encodes rec (with Seq already assigned) onto buf.
func appendFramedRecord(buf []byte, rec *Record) []byte {
	payload := encodeRecordPayload(rec)
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// framedRecordSize is the on-disk size of one record.
func framedRecordSize(rec *Record) int {
	return frameOverhead + len(encodeRecordPayload(rec))
}

func encodeRecordPayload(rec *Record) []byte {
	size := 1 + 8 +
		uvarintLen(uint64(len(rec.ID))) + len(rec.ID) +
		uvarintLen(uint64(len(rec.Meta))) + len(rec.Meta) +
		uvarintLen(uint64(len(rec.Blob))) + len(rec.Blob)
	out := make([]byte, 0, size)
	out = append(out, rec.Type)
	out = binary.LittleEndian.AppendUint64(out, rec.Seq)
	out = binary.AppendUvarint(out, uint64(len(rec.ID)))
	out = append(out, rec.ID...)
	out = binary.AppendUvarint(out, uint64(len(rec.Meta)))
	out = append(out, rec.Meta...)
	out = binary.AppendUvarint(out, uint64(len(rec.Blob)))
	out = append(out, rec.Blob...)
	return out
}

func uvarintLen(v uint64) int {
	var b [binary.MaxVarintLen64]byte
	return binary.PutUvarint(b[:], v)
}

func decodeRecordPayload(payload []byte) (Record, error) {
	var rec Record
	if len(payload) < 9 {
		return rec, fmt.Errorf("record payload of %d bytes is too short", len(payload))
	}
	rec.Type = payload[0]
	if rec.Type != RecordPipeline && rec.Type != RecordSubmission {
		return rec, fmt.Errorf("unknown record type %d", rec.Type)
	}
	rec.Seq = binary.LittleEndian.Uint64(payload[1:9])
	rest := payload[9:]
	var err error
	var id []byte
	if id, rest, err = readChunk(rest, "id"); err != nil {
		return rec, err
	}
	rec.ID = string(id)
	if rec.Meta, rest, err = readChunk(rest, "meta"); err != nil {
		return rec, err
	}
	if rec.Blob, rest, err = readChunk(rest, "blob"); err != nil {
		return rec, err
	}
	if len(rest) != 0 {
		return rec, fmt.Errorf("%d trailing bytes in record payload", len(rest))
	}
	return rec, nil
}

func readChunk(data []byte, what string) ([]byte, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > uint64(len(data)-used) {
		return nil, nil, fmt.Errorf("truncated record %s", what)
	}
	return data[used : used+int(n)], data[used+int(n):], nil
}

// parseWAL walks the framed records in data. It returns the decoded
// records, the offset of the first byte NOT covered by a complete valid
// record (the truncation point for a torn tail), and an error for any
// damage a torn final write cannot explain: a CRC or structural failure
// with more bytes following, a sequence break, a bad header.
func parseWAL(data []byte) ([]Record, int64, error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(walMagic) {
		// A crash while creating the file can leave a partial header;
		// nothing was ever acknowledged out of it.
		return nil, 0, nil
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		return nil, 0, fmt.Errorf("bad WAL magic %q", data[:len(walMagic)])
	}
	var recs []Record
	off := int64(len(walMagic))
	total := int64(len(data))
	var prevSeq uint64
	for off < total {
		if total-off < frameOverhead {
			return recs, off, nil // torn tail: partial frame header
		}
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if off+frameOverhead+plen > total {
			return recs, off, nil // torn tail: payload bytes missing
		}
		payload := data[off+frameOverhead : off+frameOverhead+plen]
		end := off + frameOverhead + plen
		if crc32.Checksum(payload, crcTable) != wantCRC {
			if end == total {
				// The final record's bytes are all present but wrong: a
				// partially persisted last write. It was never
				// acknowledged, so discard it like a truncation.
				return recs, off, nil
			}
			return nil, 0, fmt.Errorf("record %d at offset %d fails its CRC with intact records after it: the log is corrupt, refusing to drop acknowledged state", len(recs)+1, off)
		}
		rec, err := decodeRecordPayload(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("record %d at offset %d: %w", len(recs)+1, off, err)
		}
		if prevSeq != 0 && rec.Seq != prevSeq+1 {
			return nil, 0, fmt.Errorf("record at offset %d has sequence %d after %d: records are missing", off, rec.Seq, prevSeq)
		}
		prevSeq = rec.Seq
		recs = append(recs, rec)
		off = end
	}
	return recs, off, nil
}
