package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiskFootprintZeroRadius(t *testing.T) {
	fp := DiskFootprint(0)
	if len(fp) != 1 || fp[0].Off != (Cell{0, 0}) || fp[0].HighArea != 1 {
		t.Fatalf("b=0 footprint should be the single centre cell, got %+v", fp)
	}
}

func TestDiskFootprintContainsCentre(t *testing.T) {
	for _, b := range []float64{0, 0.3, 1, 2.5, 7} {
		found := false
		for _, c := range DiskFootprint(b) {
			if c.Off == (Cell{0, 0}) {
				found = true
				if c.HighArea != 1 {
					t.Fatalf("b=%v centre cell not pure high", b)
				}
			}
		}
		if !found {
			t.Fatalf("b=%v footprint missing centre cell", b)
		}
	}
}

func TestDiskFootprintSymmetry(t *testing.T) {
	for _, b := range []float64{1, 2, 3, 5, 7} {
		fp := DiskFootprint(b)
		areas := map[Cell]float64{}
		for _, c := range fp {
			areas[c.Off] = c.HighArea
		}
		for _, c := range fp {
			for _, sym := range []Cell{
				{-c.Off.X, c.Off.Y}, {c.Off.X, -c.Off.Y},
				{-c.Off.X, -c.Off.Y}, {c.Off.Y, c.Off.X},
			} {
				a, ok := areas[sym]
				if !ok {
					t.Fatalf("b=%v: cell %v in footprint but %v missing", b, c.Off, sym)
				}
				if math.Abs(a-c.HighArea) > 1e-12 {
					t.Fatalf("b=%v: asymmetric areas %v=%v vs %v=%v", b, c.Off, c.HighArea, sym, a)
				}
			}
		}
	}
}

func TestPureHighCellsHaveCentreInside(t *testing.T) {
	for _, b := range []float64{1, 2, 3.5, 6} {
		for _, c := range DiskFootprint(b) {
			d := c.Off.CenterDist(Cell{0, 0})
			if c.HighArea == 1 && c.Off != (Cell{0, 0}) && d > b+1e-12 {
				t.Fatalf("b=%v: pure-high cell %v has centre distance %v > b", b, c.Off, d)
			}
			if c.Mixed() && d <= b {
				t.Fatalf("b=%v: mixed cell %v has centre inside", b, c.Off)
			}
		}
	}
}

func TestMixedCellsIntersectCircle(t *testing.T) {
	for _, b := range []float64{2, 3, 5, 7} {
		for _, c := range DiskFootprint(b) {
			if !c.Mixed() {
				continue
			}
			min := CellRect(c.Off).minDistToOrigin()
			if min >= b {
				t.Fatalf("b=%v: mixed cell %v does not intersect circle (min dist %v)", b, c.Off, min)
			}
			if c.HighArea < 0 || c.HighArea > 1 {
				t.Fatalf("b=%v: mixed cell %v area %v out of [0,1]", b, c.Off, c.HighArea)
			}
		}
	}
}

func TestShrunkenAreaMatchesTheoremExample(t *testing.T) {
	// For b=7 the strict-quarter mixed cells are (7,1), (7,2), (7,3), (6,4)
	// (Figure 6 of the paper).
	want := map[Cell]bool{{7, 1}: true, {7, 2}: true, {7, 3}: true, {6, 4}: true}
	got := map[Cell]bool{}
	for _, c := range DiskFootprint(7) {
		if c.Mixed() && c.Off.X > c.Off.Y && c.Off.Y >= 1 {
			got[c.Off] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("strict quarter mixed cells = %v, want %v", got, want)
	}
	for c := range want {
		if !got[c] {
			t.Fatalf("missing mixed cell %v", c)
		}
	}
}

func strictQuarter(c Cell) bool { return c.X > c.Y && c.Y >= 1 }

// The closed-form counting theorems (VI.3, VI.4) use a "cell whose bottom
// border is crossed by the circle" convention, which disagrees with the
// centre-based classification of Section VI-A for a handful of boundary
// rows at some radii (e.g. b=6, row 3). The mechanisms use the direct
// rasterisation (Section VI-A convention); the closed forms are exercised
// against the paper's own worked example plus bounded-deviation and
// geometric-consistency properties.

func TestQuarterMixedCountFigure6Example(t *testing.T) {
	if got := QuarterMixedCount(7); got != 4 {
		t.Fatalf("b=7 quarter mixed count %d, want 4 (Figure 6)", got)
	}
	want := map[Cell]bool{{7, 1}: true, {7, 2}: true, {7, 3}: true, {6, 4}: true}
	got := QuarterMixedIndices(7)
	if len(got) != len(want) {
		t.Fatalf("b=7 mixed indices %v, want %v", got, want)
	}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("b=7 unexpected mixed index %v", c)
		}
	}
}

func TestQuarterMixedIndicesAreBorderCells(t *testing.T) {
	// Every closed-form index must be a cell actually touched by the
	// circle boundary: min corner distance < b ≤ max corner distance.
	for b := 1; b <= 40; b++ {
		for _, c := range QuarterMixedIndices(b) {
			if !strictQuarter(c) {
				t.Fatalf("b=%d: index %v outside the strict quarter", b, c)
			}
			r := CellRect(c)
			if r.minDistToOrigin() >= float64(b) || r.maxDistToOrigin() < float64(b) {
				t.Fatalf("b=%d: index %v not crossed by the circle (min %v, max %v)",
					b, c, r.minDistToOrigin(), r.maxDistToOrigin())
			}
		}
	}
}

func TestQuarterMixedCountNearEnumeration(t *testing.T) {
	for b := 1; b <= 40; b++ {
		count := 0
		for _, c := range DiskFootprint(float64(b)) {
			if c.Mixed() && strictQuarter(c.Off) {
				count++
			}
		}
		cf := QuarterMixedCount(b)
		slack := 1 + b/5
		if cf < count-slack || cf > count+slack {
			t.Fatalf("b=%d: closed form %d too far from enumeration %d", b, cf, count)
		}
	}
}

func TestQuarterPureHighCountFigure6Example(t *testing.T) {
	if got := QuarterPureHighCount(7); got != 13 {
		t.Fatalf("b=7 quarter pure-high count %d, want 13 (Figure 6)", got)
	}
}

func TestQuarterPureHighCountNearEnumeration(t *testing.T) {
	for b := 1; b <= 40; b++ {
		count := 0
		for _, c := range DiskFootprint(float64(b)) {
			if !c.Mixed() && strictQuarter(c.Off) {
				count++
			}
		}
		cf := QuarterPureHighCount(b)
		slack := 1 + b/5
		if cf < count-slack || cf > count+slack {
			t.Fatalf("b=%d: closed form %d too far from enumeration %d", b, cf, count)
		}
	}
}

func TestDiagonalShrunkenAreaMatchesGeneral(t *testing.T) {
	for b := 1; b <= 40; b++ {
		// Find the diagonal border cell (k+1, k+1) if it is mixed.
		var got float64 = -1
		for _, c := range DiskFootprint(float64(b)) {
			if c.Off.X == c.Off.Y && c.Off.X > 0 && c.Mixed() {
				got = c.HighArea
			}
		}
		want := DiagonalShrunkenArea(b)
		if got < 0 {
			// No mixed diagonal cell: the closed form must report a full
			// cell (the border cell is pure high, area folded as 1).
			if want != 1 {
				t.Fatalf("b=%d: no mixed diagonal cell but closed form %v", b, want)
			}
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("b=%d: diagonal area %v, closed form %v", b, got, want)
		}
	}
}

func TestShrunkenAreaDecreasesOutward(t *testing.T) {
	// Cells further outside the circle along the same ray shrink more.
	b := 6.0
	inner := ShrunkenArea(b, 6, 2)
	outer := ShrunkenArea(b, 9, 3)
	if outer >= inner {
		t.Fatalf("outward cell should have smaller shrunken area: inner=%v outer=%v", inner, outer)
	}
}

func TestDiskFootprintNSOnlyWholeCells(t *testing.T) {
	for _, b := range []float64{1, 2, 3, 5} {
		fpNS := DiskFootprintNS(b)
		for _, c := range fpNS {
			if c.HighArea != 1 {
				t.Fatalf("b=%v: NS footprint has fractional cell %+v", b, c)
			}
			if d := c.Off.CenterDist(Cell{0, 0}); d > b && c.Off != (Cell{0, 0}) {
				t.Fatalf("b=%v: NS cell %v centre outside", b, c.Off)
			}
		}
		// NS footprint must be a subset of the shrunken footprint.
		full := map[Cell]bool{}
		for _, c := range DiskFootprint(b) {
			full[c.Off] = true
		}
		for _, c := range fpNS {
			if !full[c.Off] {
				t.Fatalf("b=%v: NS cell %v not in shrunken footprint", b, c.Off)
			}
		}
	}
}

func TestHighAreaBetweenInscribedAndCircumscribed(t *testing.T) {
	// The footprint's high area approximates the disk area πb²; for the
	// shrunken construction it must stay within the square bounds
	// (2b+1)² ≥ S_H and at least the inscribed square.
	for b := 1; b <= 20; b++ {
		s := HighArea(DiskFootprint(float64(b)))
		disk := math.Pi * float64(b) * float64(b)
		if s < disk*0.8 || s > disk*1.9 {
			t.Fatalf("b=%d: high area %v implausible vs πb²=%v", b, s, disk)
		}
	}
}

func TestHighAreaApproachesDiskArea(t *testing.T) {
	// Relative error of the rasterised area against πb² shrinks with b.
	errAt := func(b float64) float64 {
		return math.Abs(HighArea(DiskFootprint(b))-math.Pi*b*b) / (math.Pi * b * b)
	}
	if errAt(30) > errAt(3) {
		t.Fatalf("rasterisation error did not shrink: e(3)=%v e(30)=%v", errAt(3), errAt(30))
	}
	if errAt(30) > 0.05 {
		t.Fatalf("rasterisation error at b=30 too large: %v", errAt(30))
	}
}

func TestQuickShrunkenAreaInUnitRange(t *testing.T) {
	f := func(bRaw, xRaw, yRaw uint8) bool {
		b := float64(bRaw%50) + 1
		x := int(xRaw % 60)
		y := int(yRaw % 60)
		a := ShrunkenArea(b, x, y)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellGeometryBasics(t *testing.T) {
	c := Cell{3, -2}
	if c.Center() != (Point{3, -2}) {
		t.Fatalf("centre %v", c.Center())
	}
	r := CellRect(c)
	if r.Area() != 1 {
		t.Fatalf("cell area %v", r.Area())
	}
	if !r.Contains(Point{3, -2}) {
		t.Fatal("cell rect does not contain its centre")
	}
	if got := (Cell{1, 1}).Add(Cell{2, 3}); got != (Cell{3, 4}) {
		t.Fatalf("Add: %v", got)
	}
	if got := (Cell{3, 4}).Sub(Cell{1, 1}); got != (Cell{2, 3}) {
		t.Fatalf("Sub: %v", got)
	}
	if d := (Cell{0, 0}).CenterDist(Cell{3, 4}); d != 5 {
		t.Fatalf("CenterDist: %v", d)
	}
}

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist: %v", d)
	}
}

func TestRectDistancesToOrigin(t *testing.T) {
	r := Rect{MinX: 2, MinY: 3, MaxX: 4, MaxY: 5}
	if got := r.minDistToOrigin(); math.Abs(got-math.Hypot(2, 3)) > 1e-12 {
		t.Fatalf("min dist %v", got)
	}
	if got := r.maxDistToOrigin(); math.Abs(got-math.Hypot(4, 5)) > 1e-12 {
		t.Fatalf("max dist %v", got)
	}
	origin := Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}
	if got := origin.minDistToOrigin(); got != 0 {
		t.Fatalf("min dist for containing rect %v", got)
	}
}
