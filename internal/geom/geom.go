// Package geom implements the planar geometry substrate of the paper:
// points, grid cells, disk rasterisation over unit cells, and the border
// shrinkage construction of Section VI (Theorems VI.1–VI.4) that turns the
// continuous Disk Area Mechanism into a grid mechanism without breaking
// ε-LDP.
package geom

import "math"

// Point is a location in the continuous plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean (2-norm) distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Cell is a grid cell index. The cell occupies the unit square
// [X-1/2, X+1/2] x [Y-1/2, Y+1/2] with its centre at integer coordinates,
// matching the paper's convention ("the coordinate unit is reset to the
// side length of a grid cell, and we use the central point of a cell to
// represent its position").
type Cell struct {
	X, Y int
}

// Center returns the cell's central point.
func (c Cell) Center() Point { return Point{float64(c.X), float64(c.Y)} }

// Add translates the cell by an offset.
func (c Cell) Add(o Cell) Cell { return Cell{c.X + o.X, c.Y + o.Y} }

// Sub returns the offset from o to c.
func (c Cell) Sub(o Cell) Cell { return Cell{c.X - o.X, c.Y - o.Y} }

// CenterDist returns the Euclidean distance between the centres of two
// cells.
func (c Cell) CenterDist(o Cell) float64 {
	dx := float64(c.X - o.X)
	dy := float64(c.Y - o.Y)
	return math.Hypot(dx, dy)
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// CellRect returns the unit square occupied by the cell.
func CellRect(c Cell) Rect {
	return Rect{
		MinX: float64(c.X) - 0.5,
		MinY: float64(c.Y) - 0.5,
		MaxX: float64(c.X) + 0.5,
		MaxY: float64(c.Y) + 0.5,
	}
}

// Area returns the rectangle's area (zero for inverted rectangles).
func (r Rect) Area() float64 {
	w := r.MaxX - r.MinX
	h := r.MaxY - r.MinY
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Contains reports whether the point lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// minDistToOrigin returns the smallest distance from the origin to any
// point of the rectangle; 0 if the rectangle contains the origin.
func (r Rect) minDistToOrigin() float64 {
	dx := math.Max(0, math.Max(r.MinX, -r.MaxX))
	dy := math.Max(0, math.Max(r.MinY, -r.MaxY))
	return math.Hypot(dx, dy)
}

// maxDistToOrigin returns the largest distance from the origin to any point
// of the rectangle (always a corner).
func (r Rect) maxDistToOrigin() float64 {
	dx := math.Max(math.Abs(r.MinX), math.Abs(r.MaxX))
	dy := math.Max(math.Abs(r.MinY), math.Abs(r.MaxY))
	return math.Hypot(dx, dy)
}
