package geom

import "math"

// DiskCell is one cell of a rasterised disk footprint. HighArea is the
// fraction of the cell's unit area assigned to the high-probability region:
// 1 for pure high-probability cells (centre inside the circle), a value in
// (0, 1] for mixed border cells (the shrunken rectangle of Theorem VI.1).
type DiskCell struct {
	Off      Cell    // offset from the disk centre cell
	HighArea float64 // fraction of the cell reported at the high probability
}

// Mixed reports whether the cell is a border (mixed-probability) cell.
func (d DiskCell) Mixed() bool { return d.HighArea < 1 }

// ShrunkenArea implements Theorem VI.1: for a circle of radius b centred at
// cell (0,0) and a border cell whose centre (x, y) lies outside the circle
// while the cell still intersects it, the shrunken high-probability
// rectangle has area 4(δ|x|+1/2)(δ|y|+1/2) with δ = b/√(x²+y²) − 1. Each
// side is clamped to the unit cell, which realises the diagonal special
// case of Equation (14).
func ShrunkenArea(b float64, x, y int) float64 {
	ax, ay := math.Abs(float64(x)), math.Abs(float64(y))
	r := math.Hypot(ax, ay)
	if r == 0 {
		return 1
	}
	delta := b/r - 1
	w := clamp01(2 * (delta*ax + 0.5))
	h := clamp01(2 * (delta*ay + 0.5))
	return w * h
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// DiskFootprint rasterises a disk of radius b (in cell units, b ≥ 0)
// centred at cell (0, 0):
//
//   - cells whose centre lies inside or on the circle are pure
//     high-probability cells (HighArea = 1);
//   - cells that intersect the circle with their centre outside are mixed
//     cells carrying the shrunken area of Theorem VI.1;
//   - all other cells are excluded (they belong to the low-probability
//     region).
//
// The centre cell (0,0) is always part of the footprint, so the footprint
// is non-empty even for b = 0 (where DAM degenerates to randomized
// response over the grid). Cells are emitted in row-major order for
// deterministic downstream construction.
func DiskFootprint(b float64) []DiskCell {
	return footprint(b, true)
}

// DiskFootprintNS is the non-shrunken variant used by DAM-NS: border cells
// are classified purely by their centre, so the footprint contains only
// whole cells (HighArea = 1 everywhere).
func DiskFootprintNS(b float64) []DiskCell {
	return footprint(b, false)
}

func footprint(b float64, shrink bool) []DiskCell {
	if b < 0 {
		b = 0
	}
	reach := int(math.Ceil(b)) + 1
	var cells []DiskCell
	for y := -reach; y <= reach; y++ {
		for x := -reach; x <= reach; x++ {
			c := Cell{x, y}
			centerDist := math.Hypot(float64(x), float64(y))
			switch {
			case centerDist <= b || (x == 0 && y == 0):
				cells = append(cells, DiskCell{Off: c, HighArea: 1})
			case shrink && CellRect(c).minDistToOrigin() < b:
				// Border cells stay in the footprint even when the shrunken
				// rectangle degenerates to zero area: Theorem VI.2's
				// low-area bookkeeping counts every circle-intersecting
				// cell, and a zero-area cell simply reports at the low
				// probability.
				cells = append(cells, DiskCell{Off: c, HighArea: ShrunkenArea(b, x, y)})
			}
		}
	}
	return cells
}

// HighArea returns the footprint's total high-probability area
// Σ HighArea — the quantity S_H of Section VI before adding the
// low-probability complement.
func HighArea(fp []DiskCell) float64 {
	total := 0.0
	for _, c := range fp {
		total += c.HighArea
	}
	return total
}

// MixedComplementArea returns Σ (1 − HighArea) over mixed cells: the part
// of the border cells assigned to the low-probability region (A_{m,q}).
func MixedComplementArea(fp []DiskCell) float64 {
	total := 0.0
	for _, c := range fp {
		total += 1 - c.HighArea
	}
	return total
}

// --- Closed forms of Theorems VI.2–VI.4 (used as cross-checks and for the
// --- O(1) bookkeeping the paper performs; the mechanisms themselves use
// --- the direct rasterisation above).

// PureLowAreaClosedForm implements Theorem VI.2: for a square input domain
// of integer side d and integer radius b, the pure low-probability area is
// d² + 4bd − 4b − 1.
func PureLowAreaClosedForm(d, b int) int {
	return d*d + 4*b*d - 4*b - 1
}

// QuarterMixedCount implements Theorem VI.3's counting formula: the number
// of mixed cells strictly between directions 0 and π/4 for integer radius
// b ≥ 1.
func QuarterMixedCount(b int) int {
	bb := float64(b)
	h := math.Ceil(bb/math.Sqrt2 - 0.5)
	r1 := math.Floor(bb/math.Sqrt2-0.5)*math.Sqrt2 + 1/math.Sqrt2
	r := math.Sqrt(r1*r1 + 1 + math.Sqrt2*r1)
	return int(h) - int(math.Floor(r/bb))
}

// QuarterMixedIndices implements Theorem VI.3's index formula: the cell
// indices of the strict-quarter mixed cells, one per horizontal line,
// (⌈√(b²−(i−1/2)²)−1/2⌉, i) for i = 1..QuarterMixedCount(b).
func QuarterMixedIndices(b int) []Cell {
	n := QuarterMixedCount(b)
	cells := make([]Cell, 0, n)
	bb := float64(b)
	for i := 1; i <= n; i++ {
		yi := float64(i) - 0.5
		x := int(math.Ceil(math.Sqrt(bb*bb-yi*yi) - 0.5))
		cells = append(cells, Cell{x, i})
	}
	return cells
}

// QuarterPureHighCount implements Theorem VI.4 with an erratum correction:
// the number of pure high-probability cells strictly between directions 0
// and π/4 for integer radius b ≥ 1 (0 < y < x, centre distance ≤ b).
//
// Erratum: the formula as printed in the paper evaluates to the count
// including the diagonal pure-high cells — for b = 7 it yields 17 while the
// paper's own Figure 6 example states |E^(p)| = 13 (and the S_H formula of
// Section VI-A counts the diagonal separately, so using the printed value
// there would double-count). We therefore subtract the ⌊b/√2⌋ diagonal
// pure-high cells; the result matches both the Figure 6 example and direct
// enumeration for all radii.
func QuarterPureHighCount(b int) int {
	bb := float64(b)
	h := math.Ceil(bb/math.Sqrt2 - 0.5)
	m := QuarterMixedCount(b)
	sum := 0.0
	for i := 1; i <= m; i++ {
		yi := float64(i) - 0.5
		sum += math.Ceil(math.Sqrt(bb*bb-yi*yi) - 0.5)
	}
	printed := int(0.5*h*(h-2*float64(m)-1) + sum)
	diagonal := int(math.Floor(bb / math.Sqrt2))
	return printed - diagonal
}

// DiagonalShrunkenArea implements Equation (14): the shrunken area of the
// border cell lying exactly on the π/4 diagonal for integer radius b.
func DiagonalShrunkenArea(b int) float64 {
	bp := float64(b)/math.Sqrt2 - 0.5
	k := math.Floor(bp)
	if bp-k < 0.5 {
		return 4 * (bp - k) * (bp - k)
	}
	return 1
}
