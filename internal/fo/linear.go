package fo

import (
	"fmt"
	"math"
	"sort"

	"dpspatial/internal/rng"
)

// LinearChannel is the linear-operator view of a row-stochastic channel
// M: everything estimation needs without committing to a dense In×Out
// matrix. The EM engine consumes channels exclusively through this
// interface, so a channel whose rows are uniform-plus-sparse (the DAM
// family, Square Wave) or two-valued (GRR) can run its E and M sweeps in
// O(In + nnz) instead of O(In·Out).
//
// Forward and Backward are the two sweeps of one EM iteration:
//
//	Forward:  out_j = Σ_i p_i · M_ij   (predicted output mixture, Mᵀp)
//	Backward: out_i = Σ_j M_ij · w_j   (per-input responsibility, M·w)
//
// Row materialises row i for sampling, validation and inspection; the
// returned slice may be shared or freshly allocated — treat it as
// read-only and do not hold it across calls.
type LinearChannel interface {
	// NumInputs returns the input domain size.
	NumInputs() int
	// NumOutputs returns the output domain size.
	NumOutputs() int
	// Forward computes out = Mᵀp (len(p) = NumInputs, len(out) =
	// NumOutputs). out is overwritten.
	Forward(p, out []float64)
	// Backward computes out = M·w (len(w) = NumOutputs, len(out) =
	// NumInputs). out is overwritten.
	Backward(w, out []float64)
	// Row materialises M's i-th row.
	Row(i int) []float64
}

// BlockChannel extends LinearChannel with row-block partial sweeps, the
// primitive the deterministic parallel EM engine schedules. Blocks are
// half-open input-row ranges [lo, hi).
type BlockChannel interface {
	LinearChannel
	// ForwardBlock accumulates Σ_{i∈[lo,hi)} p_i·row_i into out (out is
	// NOT zeroed: partial results from disjoint blocks sum to Forward).
	ForwardBlock(lo, hi int, p, out []float64)
	// BackwardBlock writes out[i] = row_i · w for every i in [lo, hi),
	// leaving the rest of out untouched.
	BackwardBlock(lo, hi int, w, out []float64)
}

// --- Dense *Channel as a LinearChannel ---

var (
	_ BlockChannel = (*Channel)(nil)
	_ BlockChannel = (*UniformSparse)(nil)
	_ BlockChannel = (*TwoValue)(nil)
)

// NumInputs implements LinearChannel.
func (c *Channel) NumInputs() int { return c.In }

// NumOutputs implements LinearChannel.
func (c *Channel) NumOutputs() int { return c.Out }

// Forward implements LinearChannel: out = Mᵀp by dense row sweeps.
func (c *Channel) Forward(p, out []float64) {
	for j := range out {
		out[j] = 0
	}
	c.ForwardBlock(0, c.In, p, out)
}

// ForwardBlock implements BlockChannel.
func (c *Channel) ForwardBlock(lo, hi int, p, out []float64) {
	for i := lo; i < hi; i++ {
		pi := p[i]
		if pi == 0 {
			continue
		}
		row := c.Row(i)
		for j, m := range row {
			out[j] += pi * m
		}
	}
}

// Backward implements LinearChannel: out = M·w.
func (c *Channel) Backward(w, out []float64) {
	c.BackwardBlock(0, c.In, w, out)
}

// BackwardBlock implements BlockChannel.
func (c *Channel) BackwardBlock(lo, hi int, w, out []float64) {
	for i := lo; i < hi; i++ {
		row := c.Row(i)
		acc := 0.0
		for j, m := range row {
			if wj := w[j]; wj != 0 {
				acc += m * wj
			}
		}
		out[i] = acc
	}
}

// --- UniformSparse ---

// UniformSparse is a channel whose every row is a per-row base value plus
// a handful of sparse overrides — the natural form of the SAM family
// (every output cell reports at q̂ except the wave-offset cells) and of
// Square Wave rows in 1-D. Rows are stored CSR-style: overrides for row i
// live in idx/val[rowStart[i]:rowStart[i+1]], sorted by output index, and
// carry the absolute probability (not a delta), so Row materialisation
// and alias sampling reproduce the dense matrix bit for bit.
//
// Forward and Backward cost O(In + Out + nnz) instead of O(In·Out), and
// the whole structure occupies O(In + nnz) memory — for a d×d grid with a
// fixed wave footprint that is O(d²) instead of the dense O(d⁴).
type UniformSparse struct {
	in, out  int
	base     []float64 // len in: the uniform value of row i
	rowStart []int     // len in+1: override extent per row
	idx      []int32   // override output indices, sorted within a row
	val      []float64 // override absolute probabilities

	// Run-length view of idx, built once at Build: overrides at
	// consecutive output indices collapse into runs, so the sweeps do
	// contiguous-range accumulation over val (bounds-check-eliminated
	// slice loops) instead of a per-element int32 index gather. Wave
	// footprints are contiguous per grid row, so the DAM family averages
	// a handful of runs per row. The sweep arithmetic visits the same
	// entries in the same order either way — results are bit-identical.
	runRowStart []int   // len in+1: run extent per row
	runStart    []int32 // first output index of each run
	runLen      []int32 // entries in each run (val stays the backing store)
}

// UniformSparseBuilder accumulates rows for a UniformSparse channel in
// input order.
type UniformSparseBuilder struct {
	u    *UniformSparse
	rows int
	err  error
}

// NewUniformSparseBuilder starts a builder for an in×out channel.
func NewUniformSparseBuilder(in, out int) *UniformSparseBuilder {
	b := &UniformSparseBuilder{u: &UniformSparse{
		in:       in,
		out:      out,
		base:     make([]float64, 0, in),
		rowStart: make([]int, 1, in+1),
	}}
	if in < 1 || out < 1 {
		b.err = fmt.Errorf("fo: uniform-sparse channel needs positive dimensions, got %d×%d", in, out)
	}
	return b
}

// Row appends the next input row: base probability plus overrides at the
// given output indices (absolute values, not deltas). idx need not be
// sorted; duplicate or out-of-range indices fail at Build.
func (b *UniformSparseBuilder) Row(base float64, idx []int, val []float64) {
	if b.err != nil {
		return
	}
	if len(idx) != len(val) {
		b.err = fmt.Errorf("fo: row %d has %d override indices but %d values", b.rows, len(idx), len(val))
		return
	}
	if b.rows >= b.u.in {
		b.err = fmt.Errorf("fo: more than %d rows appended", b.u.in)
		return
	}
	type ov struct {
		j int
		v float64
	}
	ovs := make([]ov, len(idx))
	for k, j := range idx {
		ovs[k] = ov{j: j, v: val[k]}
	}
	sort.Slice(ovs, func(a, c int) bool { return ovs[a].j < ovs[c].j })
	for k, o := range ovs {
		if o.j < 0 || o.j >= b.u.out {
			b.err = fmt.Errorf("fo: row %d override index %d outside [0, %d)", b.rows, o.j, b.u.out)
			return
		}
		if k > 0 && ovs[k-1].j == o.j {
			b.err = fmt.Errorf("fo: row %d has duplicate override index %d", b.rows, o.j)
			return
		}
		b.u.idx = append(b.u.idx, int32(o.j))
		b.u.val = append(b.u.val, o.v)
	}
	b.u.base = append(b.u.base, base)
	b.u.rowStart = append(b.u.rowStart, len(b.u.idx))
	b.rows++
}

// CompactRow appends a dense row, factoring it automatically into its
// modal value (the base) plus overrides for every entry that differs —
// the bridge for channels computed densely row by row (Square Wave). The
// materialised Row is bit-identical to the input.
func (b *UniformSparseBuilder) CompactRow(row []float64) {
	if b.err != nil {
		return
	}
	if len(row) != b.u.out {
		b.err = fmt.Errorf("fo: row %d has %d entries, channel has %d outputs", b.rows, len(row), b.u.out)
		return
	}
	base := modalValue(row)
	var idx []int
	var val []float64
	for j, v := range row {
		if v != base {
			idx = append(idx, j)
			val = append(val, v)
		}
	}
	b.Row(base, idx, val)
}

// modalValue returns the most frequent float64 in row (ties broken by
// first occurrence order after sorting — deterministic).
func modalValue(row []float64) float64 {
	sorted := append([]float64(nil), row...)
	sort.Float64s(sorted)
	best, bestN := sorted[0], 1
	cur, curN := sorted[0], 1
	for _, v := range sorted[1:] {
		if v == cur {
			curN++
		} else {
			cur, curN = v, 1
		}
		if curN > bestN {
			best, bestN = cur, curN
		}
	}
	return best
}

// Build finalises the channel. Every row must have been appended.
func (b *UniformSparseBuilder) Build() (*UniformSparse, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.rows != b.u.in {
		return nil, fmt.Errorf("fo: %d rows appended, channel has %d inputs", b.rows, b.u.in)
	}
	u := b.u
	u.runRowStart = make([]int, u.in+1)
	for i := 0; i < u.in; i++ {
		for k := u.rowStart[i]; k < u.rowStart[i+1]; {
			end := k + 1
			for end < u.rowStart[i+1] && u.idx[end] == u.idx[end-1]+1 {
				end++
			}
			u.runStart = append(u.runStart, u.idx[k])
			u.runLen = append(u.runLen, int32(end-k))
			k = end
		}
		u.runRowStart[i+1] = len(u.runStart)
	}
	return u, nil
}

// NumInputs implements LinearChannel.
func (u *UniformSparse) NumInputs() int { return u.in }

// NumOutputs implements LinearChannel.
func (u *UniformSparse) NumOutputs() int { return u.out }

// NNZ returns the total number of stored overrides.
func (u *UniformSparse) NNZ() int { return len(u.idx) }

// Base returns row i's uniform value.
func (u *UniformSparse) Base(i int) float64 { return u.base[i] }

// Row implements LinearChannel, materialising row i into a fresh slice.
func (u *UniformSparse) Row(i int) []float64 {
	row := make([]float64, u.out)
	u.RowInto(i, row)
	return row
}

// RowInto materialises row i into dst (len NumOutputs), avoiding the
// allocation of Row for callers that sweep many rows.
func (u *UniformSparse) RowInto(i int, dst []float64) {
	base := u.base[i]
	for j := range dst {
		dst[j] = base
	}
	for k := u.rowStart[i]; k < u.rowStart[i+1]; k++ {
		dst[u.idx[k]] = u.val[k]
	}
}

// Forward implements LinearChannel in O(In + Out + nnz): the base parts
// of all rows contribute the single constant Σ_i p_i·base_i to every
// output, and each override shifts p_i·(val − base_i) onto its column.
func (u *UniformSparse) Forward(p, out []float64) {
	for j := range out {
		out[j] = 0
	}
	u.ForwardBlock(0, u.in, p, out)
}

// ForwardBlock implements BlockChannel. Override corrections accumulate
// run by run: each run is a contiguous out/val slice pair, so the inner
// loop is a straight fused multiply-add stream with no index gather.
func (u *UniformSparse) ForwardBlock(lo, hi int, p, out []float64) {
	baseMass := 0.0
	for i := lo; i < hi; i++ {
		baseMass += p[i] * u.base[i]
	}
	if baseMass != 0 {
		for j := range out {
			out[j] += baseMass
		}
	}
	for i := lo; i < hi; i++ {
		pi := p[i]
		if pi == 0 {
			continue
		}
		base := u.base[i]
		k := u.rowStart[i]
		for r := u.runRowStart[i]; r < u.runRowStart[i+1]; r++ {
			j0 := int(u.runStart[r])
			l := int(u.runLen[r])
			o := out[j0 : j0+l]
			v := u.val[k : k+l : k+l]
			for x := range o {
				o[x] += pi * (v[x] - base)
			}
			k += l
		}
	}
}

// Backward implements LinearChannel in O(In + Out + nnz): row i's dot
// with w is base_i·Σ_j w_j plus the override corrections.
func (u *UniformSparse) Backward(w, out []float64) {
	u.BackwardBlock(0, u.in, w, out)
}

// BackwardBlock implements BlockChannel, with the same run-length
// contiguous accumulation as ForwardBlock.
func (u *UniformSparse) BackwardBlock(lo, hi int, w, out []float64) {
	wSum := 0.0
	for _, wj := range w {
		wSum += wj
	}
	for i := lo; i < hi; i++ {
		base := u.base[i]
		acc := base * wSum
		k := u.rowStart[i]
		for r := u.runRowStart[i]; r < u.runRowStart[i+1]; r++ {
			j0 := int(u.runStart[r])
			l := int(u.runLen[r])
			ws := w[j0 : j0+l : j0+l]
			v := u.val[k : k+l : k+l]
			for x, wx := range ws {
				acc += (v[x] - base) * wx
			}
			k += l
		}
		out[i] = acc
	}
}

// Validate checks that every row is a probability distribution, in
// O(In + nnz) using the closed per-row sum base·(Out − nnz_i) + Σ val.
func (u *UniformSparse) Validate() error {
	for i := 0; i < u.in; i++ {
		base := u.base[i]
		if base < 0 || math.IsNaN(base) {
			return fmt.Errorf("fo: channel row %d has invalid base %v", i, base)
		}
		nnz := u.rowStart[i+1] - u.rowStart[i]
		sum := base * float64(u.out-nnz)
		for k := u.rowStart[i]; k < u.rowStart[i+1]; k++ {
			v := u.val[k]
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("fo: channel row %d has invalid entry %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("fo: channel row %d sums to %v", i, sum)
		}
	}
	return nil
}

// MaxRatio returns the worst-case likelihood ratio, as Channel.MaxRatio,
// working off materialised rows on demand (no dense matrix is retained).
func (u *UniformSparse) MaxRatio() float64 { return maxRatioByRows(u) }

// Samplers builds one alias table per materialised row for O(1)
// perturbation — identical tables to the dense channel's, without ever
// holding more than one dense row.
func (u *UniformSparse) Samplers() ([]*rng.Alias, error) { return samplersByRows(u) }

// Dense materialises the full dense channel (for callers that genuinely
// need the matrix, e.g. the local-privacy adversary).
func (u *UniformSparse) Dense() *Channel {
	ch := NewChannel(u.in, u.out)
	for i := 0; i < u.in; i++ {
		u.RowInto(i, ch.Row(i))
	}
	return ch
}

// --- TwoValue ---

// TwoValue is the closed form of generalized randomized response: a k×k
// channel with diag on the diagonal and off everywhere else. Forward and
// Backward cost O(k).
type TwoValue struct {
	k         int
	diag, off float64
}

// NewTwoValue builds the channel; rows must be probability distributions
// (diag + (k−1)·off = 1 within 1e-9).
func NewTwoValue(k int, diag, off float64) (*TwoValue, error) {
	if k < 1 {
		return nil, fmt.Errorf("fo: two-value channel needs k >= 1, got %d", k)
	}
	if diag < 0 || off < 0 || math.IsNaN(diag) || math.IsNaN(off) {
		return nil, fmt.Errorf("fo: invalid two-value probabilities (%v, %v)", diag, off)
	}
	if sum := diag + float64(k-1)*off; math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("fo: two-value row sums to %v", sum)
	}
	return &TwoValue{k: k, diag: diag, off: off}, nil
}

// NumInputs implements LinearChannel.
func (t *TwoValue) NumInputs() int { return t.k }

// NumOutputs implements LinearChannel.
func (t *TwoValue) NumOutputs() int { return t.k }

// PQ returns (diag, off).
func (t *TwoValue) PQ() (float64, float64) { return t.diag, t.off }

// Row implements LinearChannel.
func (t *TwoValue) Row(i int) []float64 {
	row := make([]float64, t.k)
	for j := range row {
		row[j] = t.off
	}
	row[i] = t.diag
	return row
}

// Forward implements LinearChannel: out_j = off·Σp + (diag − off)·p_j.
func (t *TwoValue) Forward(p, out []float64) {
	for j := range out {
		out[j] = 0
	}
	t.ForwardBlock(0, t.k, p, out)
}

// ForwardBlock implements BlockChannel.
func (t *TwoValue) ForwardBlock(lo, hi int, p, out []float64) {
	mass := 0.0
	for i := lo; i < hi; i++ {
		mass += p[i]
	}
	if mass != 0 {
		for j := range out {
			out[j] += t.off * mass
		}
	}
	d := t.diag - t.off
	for i := lo; i < hi; i++ {
		out[i] += d * p[i]
	}
}

// Backward implements LinearChannel: out_i = off·Σw + (diag − off)·w_i.
func (t *TwoValue) Backward(w, out []float64) {
	t.BackwardBlock(0, t.k, w, out)
}

// BackwardBlock implements BlockChannel.
func (t *TwoValue) BackwardBlock(lo, hi int, w, out []float64) {
	wSum := 0.0
	for _, wj := range w {
		wSum += wj
	}
	d := t.diag - t.off
	for i := lo; i < hi; i++ {
		out[i] = t.off*wSum + d*w[i]
	}
}

// Validate checks the row-distribution invariant (guaranteed by
// construction; provided for interface parity).
func (t *TwoValue) Validate() error {
	if sum := t.diag + float64(t.k-1)*t.off; math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("fo: two-value row sums to %v", sum)
	}
	return nil
}

// MaxRatio returns the closed-form worst-case likelihood ratio diag/off
// (+Inf when off = 0 and k > 1).
func (t *TwoValue) MaxRatio() float64 {
	if t.k == 1 {
		return 1
	}
	hi, lo := t.diag, t.off
	if hi < lo {
		hi, lo = lo, hi
	}
	if lo == 0 {
		if hi == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return hi / lo
}

// --- Generic helpers over materialised rows ---

// maxRatioByRows computes Channel.MaxRatio semantics for any
// LinearChannel by streaming one row at a time and tracking per-column
// extrema, using O(Out) working memory.
func maxRatioByRows(c LinearChannel) float64 {
	in, out := c.NumInputs(), c.NumOutputs()
	minV := make([]float64, out)
	maxV := make([]float64, out)
	for j := range minV {
		minV[j] = math.Inf(1)
	}
	for i := 0; i < in; i++ {
		for j, v := range c.Row(i) {
			if v < minV[j] {
				minV[j] = v
			}
			if v > maxV[j] {
				maxV[j] = v
			}
		}
	}
	worst := 1.0
	for j := 0; j < out; j++ {
		if maxV[j] == 0 {
			continue
		}
		if minV[j] == 0 {
			return math.Inf(1)
		}
		if ratio := maxV[j] / minV[j]; ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// samplersByRows builds one alias table per materialised row.
func samplersByRows(c LinearChannel) ([]*rng.Alias, error) {
	in := c.NumInputs()
	tables := make([]*rng.Alias, in)
	for i := 0; i < in; i++ {
		t, err := rng.NewAlias(c.Row(i))
		if err != nil {
			return nil, fmt.Errorf("fo: row %d: %w", i, err)
		}
		tables[i] = t
	}
	return tables, nil
}

// MaxRatioLinear returns the worst-case likelihood ratio of any linear
// channel (dense channels use their own storage-sharing fast path).
func MaxRatioLinear(c LinearChannel) float64 {
	if d, ok := c.(*Channel); ok {
		return d.MaxRatio()
	}
	type ratioer interface{ MaxRatio() float64 }
	if r, ok := c.(ratioer); ok {
		return r.MaxRatio()
	}
	return maxRatioByRows(c)
}

// ValidateLinear checks the row-stochastic invariant of any linear
// channel via materialised rows.
func ValidateLinear(c LinearChannel) error {
	type validator interface{ Validate() error }
	if v, ok := c.(validator); ok {
		return v.Validate()
	}
	in := c.NumInputs()
	for i := 0; i < in; i++ {
		sum := 0.0
		for _, v := range c.Row(i) {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("fo: channel row %d has invalid entry %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("fo: channel row %d sums to %v", i, sum)
		}
	}
	return nil
}
