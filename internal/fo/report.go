package fo

import (
	"fmt"

	"dpspatial/internal/rng"
)

// Report is one user's client-side LDP report — the compact artifact a
// device ships to the aggregation service. For each reporting plane it
// lists the output indices the report supports: channel mechanisms emit
// one plane with one index, MDSW emits two single-index planes (the X and
// Y marginals of one ε-LDP report), and OUE emits one plane with one
// index per set bit.
type Report struct {
	Planes [][]int `json:"planes"`
}

// SingleIndexReport wraps one output index of a single-plane mechanism.
func SingleIndexReport(j int) Report {
	return Report{Planes: [][]int{{j}}}
}

// Reporter is the client layer of the report lifecycle: it encodes one
// user's input into an LDP report that any compatible Aggregate can
// absorb. Every report drawn from a Reporter satisfies the mechanism's
// local privacy guarantee on its own, so reports may be shipped, stored
// and aggregated by untrusted infrastructure.
type Reporter interface {
	// Scheme identifies the report format (mechanism family and the
	// parameters that fix the output domain). Aggregates record it and
	// refuse to merge across schemes.
	Scheme() string
	// NumInputs returns the input domain size.
	NumInputs() int
	// ReportShape returns the count-vector length of each reporting
	// plane.
	ReportShape() []int
	// Report encodes one user's input index into an LDP report.
	Report(input int, r *rng.RNG) (Report, error)
}

// Accumulate streams every user of a per-input count vector through the
// client layer into agg — the sequential reference aggregation (client
// Report → server Add), consuming r in input-cell order. It is the
// in-process stand-in for millions of devices reporting to one shard.
func Accumulate(rep Reporter, agg *Aggregate, trueCounts []float64, r *rng.RNG) error {
	if len(trueCounts) != rep.NumInputs() {
		return fmt.Errorf("fo: %d true counts for %d inputs", len(trueCounts), rep.NumInputs())
	}
	for i, c := range trueCounts {
		if err := validCount(c, i); err != nil {
			return err
		}
		for k := 0; k < int(c); k++ {
			report, err := rep.Report(i, r)
			if err != nil {
				return err
			}
			if err := agg.Add(report); err != nil {
				return err
			}
		}
	}
	return nil
}
