package fo

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"dpspatial/internal/rng"
)

func grrAggregate(t *testing.T, g *GRR, n int, seed uint64) *Aggregate {
	t.Helper()
	agg := NewAggregateFor(g)
	r := rng.New(seed)
	for u := 0; u < n; u++ {
		rep, err := g.Report(u%g.NumInputs(), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	return agg
}

func TestAggregateAddCountsReports(t *testing.T) {
	g, err := NewGRR(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	agg := grrAggregate(t, g, 200, 1)
	if agg.N != 200 {
		t.Fatalf("N = %v, want 200", agg.N)
	}
	total := 0.0
	for _, c := range agg.Planes[0] {
		total += c
	}
	if total != 200 {
		t.Fatalf("plane total = %v, want 200", total)
	}
	if agg.Scheme != g.Scheme() {
		t.Fatalf("scheme %q, want %q", agg.Scheme, g.Scheme())
	}
}

func TestAggregateMergeMatchesSingleShard(t *testing.T) {
	g, err := NewGRR(7, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// One stream of reports, split round-robin across 3 shards, must
	// aggregate to the same counts as a single shard.
	r := rng.New(9)
	single := NewAggregateFor(g)
	shards := []*Aggregate{NewAggregateFor(g), NewAggregateFor(g), NewAggregateFor(g)}
	for u := 0; u < 500; u++ {
		rep, err := g.Report(u%7, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := single.Add(rep); err != nil {
			t.Fatal(err)
		}
		if err := shards[u%3].Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	// ((s0 ⊕ s1) ⊕ s2) and (s0 ⊕ (s1 ⊕ s2)) and (s2 ⊕ s0 ⊕ s1).
	left := shards[0].Clone()
	if err := left.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(shards[2]); err != nil {
		t.Fatal(err)
	}
	rightInner := shards[1].Clone()
	if err := rightInner.Merge(shards[2]); err != nil {
		t.Fatal(err)
	}
	right := shards[0].Clone()
	if err := right.Merge(rightInner); err != nil {
		t.Fatal(err)
	}
	perm := shards[2].Clone()
	if err := perm.Merge(shards[0]); err != nil {
		t.Fatal(err)
	}
	if err := perm.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*Aggregate{"left": left, "right": right, "perm": perm} {
		if !reflect.DeepEqual(got, single) {
			t.Fatalf("%s-assoc merge differs from single-shard aggregation", name)
		}
	}
}

func TestAggregateMergeRejectsIncompatible(t *testing.T) {
	g5, _ := NewGRR(5, 1.0)
	g7, _ := NewGRR(7, 1.0)
	a, b := NewAggregateFor(g5), NewAggregateFor(g7)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different schemes should fail")
	}
	c := NewAggregateFor(g5)
	c.Scheme = a.Scheme
	c.Planes = [][]float64{make([]float64, 6)}
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different plane sizes should fail")
	}
}

func TestAggregateAddRejectsBadReports(t *testing.T) {
	g, _ := NewGRR(5, 1.0)
	agg := NewAggregateFor(g)
	if err := agg.Add(Report{Planes: [][]int{{0}, {1}}}); err == nil {
		t.Fatal("wrong plane count should fail")
	}
	if err := agg.Add(Report{Planes: [][]int{{5}}}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if err := agg.Add(Report{Planes: [][]int{{-1}}}); err == nil {
		t.Fatal("negative index should fail")
	}
	if agg.N != 0 {
		t.Fatalf("failed adds must not count reports, N = %v", agg.N)
	}
}

func TestAggregateBinaryRoundTrip(t *testing.T) {
	g, err := NewGRR(6, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	agg := grrAggregate(t, g, 300, 4)
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("binary round-trip changed the aggregate")
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blob, blob2) {
		t.Fatal("binary encoding is not deterministic")
	}
}

func TestAggregateBinaryRejectsGarbage(t *testing.T) {
	var a Aggregate
	if err := a.UnmarshalBinary([]byte("not an aggregate")); err == nil {
		t.Fatal("bad magic should fail")
	}
	g, _ := NewGRR(4, 1.0)
	blob, err := NewAggregateFor(g).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated payload should fail")
	}
	if err := a.UnmarshalBinary(append(blob, 0)); err == nil {
		t.Fatal("trailing bytes should fail")
	}
	// A plane size whose byte length overflows uint64 must error, not
	// panic in make().
	evil := append([]byte{}, aggregateMagic...)
	evil = append(evil, 0) // empty scheme
	evil = append(evil, 1) // one plane
	evil = binary.AppendUvarint(evil, 1<<61)
	if err := a.UnmarshalBinary(evil); err == nil {
		t.Fatal("overflowing plane size should fail")
	}
}

// TestAggregateGoldenBlobs pins both wire layouts against fixed byte
// strings, independently of the in-tree encoders: fleets hold DPA1/DPA2
// blobs encoded by past releases, so a consistent drift of encoder and
// decoder together must fail here even though round-trip tests stay
// green.
func TestAggregateGoldenBlobs(t *testing.T) {
	agg := &Aggregate{Scheme: "grr/3 eps=2", Planes: [][]float64{{1, 0, 2}}, N: 3}
	golden := map[string]string{
		// magic, uvarint scheme len, scheme, uvarint plane count, then
		// per plane: uvarint len, len × little-endian float64; then N.
		"DPA1": "445041310b6772722f33206570733d3201" +
			"03000000000000f03f00000000000000000000000000000040" +
			"0000000000000840",
		// v2 adds a per-plane encoding byte; this plane is mostly
		// non-zero but sparse (index/value pairs) is still 5 bytes
		// cheaper than dense at len 3 with one zero.
		"DPA2": "445041320b6772722f33206570733d3201" +
			"010302" + "00000000000000f03f" + "020000000000000040" +
			"0000000000000840",
	}
	for version, wantHex := range golden {
		want, err := hex.DecodeString(wantHex)
		if err != nil {
			t.Fatal(err)
		}
		var blob []byte
		if version == "DPA1" {
			blob, err = agg.MarshalBinaryV1()
		} else {
			blob, err = agg.MarshalBinary()
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, want) {
			t.Errorf("%s encoding drifted from the golden blob:\n got %x\nwant %x", version, blob, want)
		}
		var back Aggregate
		if err := back.UnmarshalBinary(want); err != nil {
			t.Errorf("golden %s blob no longer decodes: %v", version, err)
		} else if !reflect.DeepEqual(&back, agg) {
			t.Errorf("golden %s blob decoded to %+v", version, &back)
		}
	}
}

func TestAggregateDecodesLegacyV1(t *testing.T) {
	g, err := NewGRR(6, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	agg := grrAggregate(t, g, 300, 4)
	blobV1, err := agg.MarshalBinaryV1()
	if err != nil {
		t.Fatal(err)
	}
	if string(blobV1[:4]) != "DPA1" {
		t.Fatalf("legacy encoder wrote magic %q", blobV1[:4])
	}
	var back Aggregate
	if err := back.UnmarshalBinary(blobV1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("legacy DPA1 decode changed the aggregate")
	}
	// And the v2 re-encode of the decoded value round-trips too.
	blob, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var again Aggregate
	if err := again.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&again, agg) {
		t.Fatal("v1→v2 re-encode changed the aggregate")
	}
}

func TestAggregateSparsePlaneCompaction(t *testing.T) {
	// A mostly-zero plane (the large-d regime) must be stored as
	// index/value pairs: far smaller than the dense 8 bytes/cell, with a
	// lossless, deterministic round trip.
	plane := make([]float64, 4096)
	plane[3] = 17
	plane[1024] = 1
	plane[4095] = 250
	agg := &Aggregate{Scheme: "sparse-test", Planes: [][]float64{plane}, N: 268}
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= 8*len(plane) {
		t.Fatalf("sparse plane encoded to %d bytes, dense would be %d", len(blob), 8*len(plane))
	}
	var back Aggregate
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("sparse round-trip changed the aggregate")
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blob, blob2) {
		t.Fatal("sparse encoding is not deterministic")
	}
}

func TestAggregateDensePlaneStaysDense(t *testing.T) {
	// A plane with no zeros must not pay the sparse index overhead.
	plane := []float64{5, 1, 9, 2, 7, 3}
	agg := &Aggregate{Scheme: "dense-test", Planes: [][]float64{plane}, N: 27}
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("dense round-trip changed the aggregate")
	}
	// magic + schemeLen + scheme + planeCount + encoding + planeLen +
	// 6 float64s + N: the plane payload must be exactly dense-sized.
	wantLen := 4 + 1 + len("dense-test") + 1 + 1 + 1 + 8*6 + 8
	if len(blob) != wantLen {
		t.Fatalf("dense encoding is %d bytes, want %d", len(blob), wantLen)
	}
}

func TestAggregateMixedEncodingPlanes(t *testing.T) {
	// One sparse and one dense plane in the same aggregate: each plane
	// picks its own encoding independently.
	sparse := make([]float64, 512)
	sparse[100] = 40
	dense := []float64{10, 10, 10, 10}
	agg := &Aggregate{Scheme: "mixed", Planes: [][]float64{sparse, dense}, N: 40}
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("mixed-encoding round-trip changed the aggregate")
	}
}

func TestAggregateBinaryRejectsBadV2(t *testing.T) {
	var a Aggregate
	// Unknown future version.
	if err := a.UnmarshalBinary([]byte("DPA3\x00\x00")); err == nil {
		t.Fatal("unknown format version should fail")
	}
	// Unknown plane encoding byte.
	evil := append([]byte{}, aggregateMagicV2...)
	evil = append(evil, 0) // empty scheme
	evil = append(evil, 1) // one plane
	evil = append(evil, 7) // bogus encoding
	evil = append(evil, 0) // size
	if err := a.UnmarshalBinary(evil); err == nil {
		t.Fatal("unknown plane encoding should fail")
	}
	// Sparse entry count exceeding the plane size.
	evil = append([]byte{}, aggregateMagicV2...)
	evil = append(evil, 0, 1, planeSparse)
	evil = binary.AppendUvarint(evil, 4)  // size 4
	evil = binary.AppendUvarint(evil, 10) // nnz 10 > size
	if err := a.UnmarshalBinary(evil); err == nil {
		t.Fatal("overflowing sparse entry count should fail")
	}
	// Out-of-order sparse indices.
	evil = append([]byte{}, aggregateMagicV2...)
	evil = append(evil, 0, 1, planeSparse)
	evil = binary.AppendUvarint(evil, 8) // size
	evil = binary.AppendUvarint(evil, 2) // nnz
	evil = binary.AppendUvarint(evil, 5)
	evil = binary.LittleEndian.AppendUint64(evil, math.Float64bits(1))
	evil = binary.AppendUvarint(evil, 3) // decreasing index
	evil = binary.LittleEndian.AppendUint64(evil, math.Float64bits(1))
	if err := a.UnmarshalBinary(evil); err == nil {
		t.Fatal("out-of-order sparse indices should fail")
	}
}

func TestAggregateJSONRoundTrip(t *testing.T) {
	g, err := NewGRR(6, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	agg := grrAggregate(t, g, 120, 8)
	blob, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("JSON round-trip changed the aggregate")
	}
	blob2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("JSON encoding is not deterministic")
	}
}

func TestAggregateFromCountsValidates(t *testing.T) {
	if _, err := AggregateFromCounts("s"); err == nil {
		t.Fatal("zero planes should fail")
	}
	if _, err := AggregateFromCounts("s", []float64{1, 2}, []float64{4}); err == nil {
		t.Fatal("mismatched plane totals should fail")
	}
	if _, err := AggregateFromCounts("s", []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN count should fail")
	}
	agg, err := AggregateFromCounts("s", []float64{1, 2}, []float64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if agg.N != 3 {
		t.Fatalf("N = %v, want 3", agg.N)
	}
}

func TestAccumulateMatchesManualLoop(t *testing.T) {
	g, err := NewGRR(5, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := []float64{10, 0, 25, 3, 7}
	agg := NewAggregateFor(g)
	if err := Accumulate(g, agg, trueCounts, rng.New(21)); err != nil {
		t.Fatal(err)
	}
	manual := NewAggregateFor(g)
	r := rng.New(21)
	for i, c := range trueCounts {
		for k := 0; k < int(c); k++ {
			rep, err := g.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := manual.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(agg, manual) {
		t.Fatal("Accumulate differs from the manual report loop")
	}
	if err := Accumulate(g, NewAggregateFor(g), []float64{1, 2}, rng.New(1)); err == nil {
		t.Fatal("wrong count length should fail")
	}
	if err := Accumulate(g, NewAggregateFor(g), []float64{1, -1, 0, 0, 0}, rng.New(1)); err == nil {
		t.Fatal("negative count should fail")
	}
}

func TestOUEReporterAggregate(t *testing.T) {
	o, err := NewOUE(6, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := []float64{4000, 0, 1000, 0, 3000, 2000}
	agg := NewAggregateFor(o)
	if err := Accumulate(o, agg, trueCounts, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	if agg.N != 10000 {
		t.Fatalf("N = %v, want 10000", agg.N)
	}
	est, err := o.EstimateAggregate(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4, 0, 0.1, 0, 0.3, 0.2}
	for i := range want {
		if math.Abs(est[i]-want[i]) > 0.05 {
			t.Fatalf("category %d: estimate %v, want ≈ %v", i, est[i], want[i])
		}
	}
}
