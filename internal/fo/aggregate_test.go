package fo

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"dpspatial/internal/rng"
)

func grrAggregate(t *testing.T, g *GRR, n int, seed uint64) *Aggregate {
	t.Helper()
	agg := NewAggregateFor(g)
	r := rng.New(seed)
	for u := 0; u < n; u++ {
		rep, err := g.Report(u%g.NumInputs(), r)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	return agg
}

func TestAggregateAddCountsReports(t *testing.T) {
	g, err := NewGRR(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	agg := grrAggregate(t, g, 200, 1)
	if agg.N != 200 {
		t.Fatalf("N = %v, want 200", agg.N)
	}
	total := 0.0
	for _, c := range agg.Planes[0] {
		total += c
	}
	if total != 200 {
		t.Fatalf("plane total = %v, want 200", total)
	}
	if agg.Scheme != g.Scheme() {
		t.Fatalf("scheme %q, want %q", agg.Scheme, g.Scheme())
	}
}

func TestAggregateMergeMatchesSingleShard(t *testing.T) {
	g, err := NewGRR(7, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// One stream of reports, split round-robin across 3 shards, must
	// aggregate to the same counts as a single shard.
	r := rng.New(9)
	single := NewAggregateFor(g)
	shards := []*Aggregate{NewAggregateFor(g), NewAggregateFor(g), NewAggregateFor(g)}
	for u := 0; u < 500; u++ {
		rep, err := g.Report(u%7, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := single.Add(rep); err != nil {
			t.Fatal(err)
		}
		if err := shards[u%3].Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	// ((s0 ⊕ s1) ⊕ s2) and (s0 ⊕ (s1 ⊕ s2)) and (s2 ⊕ s0 ⊕ s1).
	left := shards[0].Clone()
	if err := left.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(shards[2]); err != nil {
		t.Fatal(err)
	}
	rightInner := shards[1].Clone()
	if err := rightInner.Merge(shards[2]); err != nil {
		t.Fatal(err)
	}
	right := shards[0].Clone()
	if err := right.Merge(rightInner); err != nil {
		t.Fatal(err)
	}
	perm := shards[2].Clone()
	if err := perm.Merge(shards[0]); err != nil {
		t.Fatal(err)
	}
	if err := perm.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*Aggregate{"left": left, "right": right, "perm": perm} {
		if !reflect.DeepEqual(got, single) {
			t.Fatalf("%s-assoc merge differs from single-shard aggregation", name)
		}
	}
}

func TestAggregateMergeRejectsIncompatible(t *testing.T) {
	g5, _ := NewGRR(5, 1.0)
	g7, _ := NewGRR(7, 1.0)
	a, b := NewAggregateFor(g5), NewAggregateFor(g7)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different schemes should fail")
	}
	c := NewAggregateFor(g5)
	c.Scheme = a.Scheme
	c.Planes = [][]float64{make([]float64, 6)}
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different plane sizes should fail")
	}
}

func TestAggregateAddRejectsBadReports(t *testing.T) {
	g, _ := NewGRR(5, 1.0)
	agg := NewAggregateFor(g)
	if err := agg.Add(Report{Planes: [][]int{{0}, {1}}}); err == nil {
		t.Fatal("wrong plane count should fail")
	}
	if err := agg.Add(Report{Planes: [][]int{{5}}}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if err := agg.Add(Report{Planes: [][]int{{-1}}}); err == nil {
		t.Fatal("negative index should fail")
	}
	if agg.N != 0 {
		t.Fatalf("failed adds must not count reports, N = %v", agg.N)
	}
}

func TestAggregateBinaryRoundTrip(t *testing.T) {
	g, err := NewGRR(6, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	agg := grrAggregate(t, g, 300, 4)
	blob, err := agg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("binary round-trip changed the aggregate")
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blob, blob2) {
		t.Fatal("binary encoding is not deterministic")
	}
}

func TestAggregateBinaryRejectsGarbage(t *testing.T) {
	var a Aggregate
	if err := a.UnmarshalBinary([]byte("not an aggregate")); err == nil {
		t.Fatal("bad magic should fail")
	}
	g, _ := NewGRR(4, 1.0)
	blob, err := NewAggregateFor(g).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated payload should fail")
	}
	if err := a.UnmarshalBinary(append(blob, 0)); err == nil {
		t.Fatal("trailing bytes should fail")
	}
	// A plane size whose byte length overflows uint64 must error, not
	// panic in make().
	evil := append([]byte{}, aggregateMagic...)
	evil = append(evil, 0) // empty scheme
	evil = append(evil, 1) // one plane
	evil = binary.AppendUvarint(evil, 1<<61)
	if err := a.UnmarshalBinary(evil); err == nil {
		t.Fatal("overflowing plane size should fail")
	}
}

func TestAggregateJSONRoundTrip(t *testing.T) {
	g, err := NewGRR(6, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	agg := grrAggregate(t, g, 120, 8)
	blob, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	var back Aggregate
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, agg) {
		t.Fatal("JSON round-trip changed the aggregate")
	}
	blob2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("JSON encoding is not deterministic")
	}
}

func TestAggregateFromCountsValidates(t *testing.T) {
	if _, err := AggregateFromCounts("s"); err == nil {
		t.Fatal("zero planes should fail")
	}
	if _, err := AggregateFromCounts("s", []float64{1, 2}, []float64{4}); err == nil {
		t.Fatal("mismatched plane totals should fail")
	}
	if _, err := AggregateFromCounts("s", []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN count should fail")
	}
	agg, err := AggregateFromCounts("s", []float64{1, 2}, []float64{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if agg.N != 3 {
		t.Fatalf("N = %v, want 3", agg.N)
	}
}

func TestAccumulateMatchesManualLoop(t *testing.T) {
	g, err := NewGRR(5, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := []float64{10, 0, 25, 3, 7}
	agg := NewAggregateFor(g)
	if err := Accumulate(g, agg, trueCounts, rng.New(21)); err != nil {
		t.Fatal(err)
	}
	manual := NewAggregateFor(g)
	r := rng.New(21)
	for i, c := range trueCounts {
		for k := 0; k < int(c); k++ {
			rep, err := g.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := manual.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(agg, manual) {
		t.Fatal("Accumulate differs from the manual report loop")
	}
	if err := Accumulate(g, NewAggregateFor(g), []float64{1, 2}, rng.New(1)); err == nil {
		t.Fatal("wrong count length should fail")
	}
	if err := Accumulate(g, NewAggregateFor(g), []float64{1, -1, 0, 0, 0}, rng.New(1)); err == nil {
		t.Fatal("negative count should fail")
	}
}

func TestOUEReporterAggregate(t *testing.T) {
	o, err := NewOUE(6, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := []float64{4000, 0, 1000, 0, 3000, 2000}
	agg := NewAggregateFor(o)
	if err := Accumulate(o, agg, trueCounts, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	if agg.N != 10000 {
		t.Fatalf("N = %v, want 10000", agg.N)
	}
	est, err := o.EstimateAggregate(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4, 0, 0.1, 0, 0.3, 0.2}
	for i := range want {
		if math.Abs(est[i]-want[i]) > 0.05 {
			t.Fatalf("category %d: estimate %v, want ≈ %v", i, est[i], want[i])
		}
	}
}
