package fo

import (
	"fmt"
	"math"

	"dpspatial/internal/rng"
)

// OUE is optimized unary encoding (Wang et al. 2017): each user reports a
// perturbed bit vector. The true bit stays 1 with probability 1/2; every
// other bit flips to 1 with probability 1/(e^ε+1). OUE's estimation
// variance is independent of the domain size, which makes it the oracle of
// choice for the large transition domains in the trajectory baselines.
//
// Perturb returns a packed bit vector; PerturbBits exposes it directly.
// The Oracle interface's integer-output contract is satisfied by treating
// each (user, bit) support observation through EstimateBits.
type OUE struct {
	k   int
	eps float64
	p   float64 // Pr[bit stays 1 | true]
	q   float64 // Pr[bit becomes 1 | false]
}

// NewOUE returns an OUE oracle over k categories with budget eps > 0.
func NewOUE(k int, eps float64) (*OUE, error) {
	if k < 2 {
		return nil, fmt.Errorf("fo: OUE needs k >= 2, got %d", k)
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("fo: invalid epsilon %v", eps)
	}
	return &OUE{k: k, eps: eps, p: 0.5, q: 1 / (math.Exp(eps) + 1)}, nil
}

// NumCategories returns the domain size k.
func (o *OUE) NumCategories() int { return o.k }

// NumInputs implements Reporter.
func (o *OUE) NumInputs() int { return o.k }

// Epsilon returns the privacy budget.
func (o *OUE) Epsilon() float64 { return o.eps }

// PerturbBits randomises one user's value into a reported bit vector.
func (o *OUE) PerturbBits(input int, r *rng.RNG) []bool {
	bits := make([]bool, o.k)
	for j := 0; j < o.k; j++ {
		if j == input {
			bits[j] = r.Float64() < o.p
		} else {
			bits[j] = r.Float64() < o.q
		}
	}
	return bits
}

// AccumulateBits adds a reported bit vector into per-category support
// counts.
func (o *OUE) AccumulateBits(bits []bool, support []float64) error {
	if len(bits) != o.k || len(support) != o.k {
		return fmt.Errorf("fo: OUE bit/support length mismatch")
	}
	for j, b := range bits {
		if b {
			support[j]++
		}
	}
	return nil
}

// Scheme implements Reporter.
func (o *OUE) Scheme() string { return fmt.Sprintf("fo/oue k=%d eps=%g", o.k, o.eps) }

// ReportShape implements Reporter: one support plane of k counts.
func (o *OUE) ReportShape() []int { return []int{o.k} }

// Report implements Reporter: the set bits of one user's perturbed unary
// encoding, as support indices.
func (o *OUE) Report(input int, r *rng.RNG) (Report, error) {
	if input < 0 || input >= o.k {
		return Report{}, fmt.Errorf("fo: OUE input %d outside [0, %d)", input, o.k)
	}
	bits := o.PerturbBits(input, r)
	set := make([]int, 0, 4)
	for j, b := range bits {
		if b {
			set = append(set, j)
		}
	}
	return Report{Planes: [][]int{set}}, nil
}

// EstimateAggregate recovers frequencies from an accumulated aggregate,
// using the aggregate's report count as the user total.
func (o *OUE) EstimateAggregate(agg *Aggregate) ([]float64, error) {
	if err := agg.Compatible(o); err != nil {
		return nil, err
	}
	return o.EstimateBits(agg.Planes[0], agg.N)
}

// EstimateBits recovers normalised frequencies from support counts over n
// users: f̂_j = (s_j/n − q)/(p − q), projected onto the simplex.
func (o *OUE) EstimateBits(support []float64, n float64) ([]float64, error) {
	if len(support) != o.k {
		return nil, fmt.Errorf("fo: OUE expects %d supports, got %d", o.k, len(support))
	}
	if n <= 0 {
		return nil, fmt.Errorf("fo: no reports")
	}
	est := make([]float64, o.k)
	for j, s := range support {
		est[j] = (s/n - o.q) / (o.p - o.q)
	}
	ProjectSimplex(est)
	return est, nil
}
