package fo

import (
	"math"
	"testing"

	"dpspatial/internal/rng"
)

// randomUniformSparse builds a valid random uniform-plus-sparse channel:
// every row has a positive base and a random set of overrides,
// normalised so the row sums to one.
func randomUniformSparse(t *testing.T, r *rng.RNG, in, out int) *UniformSparse {
	t.Helper()
	b := NewUniformSparseBuilder(in, out)
	for i := 0; i < in; i++ {
		nnz := r.Intn(out/2 + 1)
		cols := r.Perm(out)[:nnz]
		w0 := 0.1 + r.Float64()
		raw := make([]float64, nnz)
		total := w0 * float64(out-nnz)
		for k := range raw {
			raw[k] = r.Float64() * 3
			total += raw[k]
		}
		idx := make([]int, nnz)
		val := make([]float64, nnz)
		for k, c := range cols {
			idx[k] = c
			val[k] = raw[k] / total
		}
		b.Row(w0/total, idx, val)
	}
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestUniformSparseMatchesDense(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		in, out := 2+r.Intn(30), 2+r.Intn(40)
		u := randomUniformSparse(t, r, in, out)
		dense := u.Dense()

		if u.NumInputs() != dense.In || u.NumOutputs() != dense.Out {
			t.Fatalf("dimensions differ: %dx%d vs %dx%d", u.NumInputs(), u.NumOutputs(), dense.In, dense.Out)
		}
		// Rows materialise bit-identically.
		for i := 0; i < in; i++ {
			got, want := u.Row(i), dense.Row(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("row %d col %d: %v != %v", i, j, got[j], want[j])
				}
			}
		}
		if err := u.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := dense.Validate(); err != nil {
			t.Fatal(err)
		}

		// Forward and Backward agree with the dense sweeps to float
		// accumulation error.
		p := make([]float64, in)
		for i := range p {
			p[i] = r.Float64()
		}
		w := make([]float64, out)
		for j := range w {
			w[j] = r.Float64() * 5
		}
		fwdU, fwdD := make([]float64, out), make([]float64, out)
		u.Forward(p, fwdU)
		dense.Forward(p, fwdD)
		if d := maxAbsDiff(fwdU, fwdD); d > 1e-12 {
			t.Fatalf("Forward diverges by %v", d)
		}
		bwdU, bwdD := make([]float64, in), make([]float64, in)
		u.Backward(w, bwdU)
		dense.Backward(w, bwdD)
		if d := maxAbsDiff(bwdU, bwdD); d > 1e-12 {
			t.Fatalf("Backward diverges by %v", d)
		}

		// MaxRatio matches the dense computation exactly (same extrema).
		if got, want := u.MaxRatio(), dense.MaxRatio(); got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("MaxRatio %v != dense %v", got, want)
		}
	}
}

func TestUniformSparseBlockOpsComposeToFull(t *testing.T) {
	r := rng.New(23)
	u := randomUniformSparse(t, r, 37, 19)
	p := make([]float64, 37)
	for i := range p {
		p[i] = r.Float64()
	}
	w := make([]float64, 19)
	for j := range w {
		w[j] = r.Float64()
	}
	full := make([]float64, 19)
	u.Forward(p, full)
	blocked := make([]float64, 19)
	for lo := 0; lo < 37; lo += 5 {
		hi := lo + 5
		if hi > 37 {
			hi = 37
		}
		u.ForwardBlock(lo, hi, p, blocked)
	}
	if d := maxAbsDiff(full, blocked); d > 1e-12 {
		t.Fatalf("blocked Forward diverges by %v", d)
	}
	fullB := make([]float64, 37)
	u.Backward(w, fullB)
	blockedB := make([]float64, 37)
	for lo := 0; lo < 37; lo += 4 {
		hi := lo + 4
		if hi > 37 {
			hi = 37
		}
		u.BackwardBlock(lo, hi, w, blockedB)
	}
	for i := range fullB {
		if fullB[i] != blockedB[i] {
			t.Fatalf("blocked Backward differs at %d: %v != %v", i, blockedB[i], fullB[i])
		}
	}
}

func TestCompactRowRoundTrips(t *testing.T) {
	// CompactRow must reproduce arbitrary dense rows bit for bit,
	// whatever value happens to be modal.
	rows := [][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{0.5, 0.125, 0.125, 0.25},
		{0, 0, 0.5, 0.5},
		{1, 0, 0, 0},
	}
	b := NewUniformSparseBuilder(len(rows), 4)
	for _, row := range rows {
		b.CompactRow(row)
	}
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range rows {
		got := u.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	// The all-equal row must compact to zero overrides.
	if u.rowStart[1] != u.rowStart[0] {
		t.Fatalf("uniform row stored %d overrides", u.rowStart[1]-u.rowStart[0])
	}
}

func TestUniformSparseBuilderRejectsBadRows(t *testing.T) {
	b := NewUniformSparseBuilder(2, 3)
	b.Row(0.2, []int{0, 0}, []float64{0.3, 0.3})
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate override index accepted")
	}
	b = NewUniformSparseBuilder(2, 3)
	b.Row(0.2, []int{5}, []float64{0.3})
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range override index accepted")
	}
	b = NewUniformSparseBuilder(2, 3)
	b.Row(1.0/3, nil, nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("missing rows accepted")
	}
	b = NewUniformSparseBuilder(1, 3)
	b.Row(0.2, []int{1}, []float64{0.3, 0.4})
	if _, err := b.Build(); err == nil {
		t.Fatal("mismatched idx/val lengths accepted")
	}
}

func TestUniformSparseValidateCatchesBadDistributions(t *testing.T) {
	b := NewUniformSparseBuilder(1, 4)
	b.Row(0.5, nil, nil) // sums to 2
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	b = NewUniformSparseBuilder(1, 4)
	b.Row(0.5, []int{0, 1}, []float64{-0.25, 0.75}) // negative entry, sums to 1.5... adjust
	u, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestUniformSparseSamplersMatchDense(t *testing.T) {
	r := rng.New(31)
	u := randomUniformSparse(t, r, 12, 9)
	dense := u.Dense()
	sparseTabs, err := u.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	denseTabs, err := dense.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	// Identical rows must yield identical draw sequences.
	for i := range sparseTabs {
		r1, r2 := rng.New(uint64(100+i)), rng.New(uint64(100+i))
		for k := 0; k < 200; k++ {
			if a, b := sparseTabs[i].Draw(r1), denseTabs[i].Draw(r2); a != b {
				t.Fatalf("row %d draw %d: %d != %d", i, k, a, b)
			}
		}
	}
}

func TestTwoValueMatchesDenseGRR(t *testing.T) {
	g, err := NewGRR(7, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	tv := g.Linear()
	dense := g.Channel()
	for i := 0; i < 7; i++ {
		got, want := tv.Row(i), dense.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	if err := tv.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	p := make([]float64, 7)
	w := make([]float64, 7)
	for i := range p {
		p[i] = r.Float64()
		w[i] = r.Float64() * 2
	}
	fwdT, fwdD := make([]float64, 7), make([]float64, 7)
	tv.Forward(p, fwdT)
	dense.Forward(p, fwdD)
	if d := maxAbsDiff(fwdT, fwdD); d > 1e-12 {
		t.Fatalf("Forward diverges by %v", d)
	}
	bwdT, bwdD := make([]float64, 7), make([]float64, 7)
	tv.Backward(w, bwdT)
	dense.Backward(w, bwdD)
	if d := maxAbsDiff(bwdT, bwdD); d > 1e-12 {
		t.Fatalf("Backward diverges by %v", d)
	}
	// Closed-form ratio p/q equals the dense scan.
	if got, want := tv.MaxRatio(), dense.MaxRatio(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxRatio %v != dense %v", got, want)
	}
}

func TestTwoValueConstruction(t *testing.T) {
	if _, err := NewTwoValue(0, 1, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewTwoValue(4, 0.5, 0.5); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	if _, err := NewTwoValue(3, -0.5, 0.75); err == nil {
		t.Fatal("negative probability accepted")
	}
	tv, err := NewTwoValue(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tv.MaxRatio() != 1 {
		t.Fatalf("k=1 ratio %v", tv.MaxRatio())
	}
}
