package fo

import (
	"fmt"
	"math"

	"dpspatial/internal/rng"
)

// GRR is generalized randomized response (k-RR): the categorical frequency
// oracle the paper's CFO baselines build on. The true value is reported
// with probability p = e^ε/(e^ε+k-1); any other value with probability
// q = 1/(e^ε+k-1).
type GRR struct {
	k    int
	eps  float64
	p, q float64
}

// NewGRR returns a k-ary randomized-response oracle with budget eps > 0.
func NewGRR(k int, eps float64) (*GRR, error) {
	if k < 2 {
		return nil, fmt.Errorf("fo: GRR needs k >= 2, got %d", k)
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("fo: invalid epsilon %v", eps)
	}
	ee := math.Exp(eps)
	return &GRR{
		k:   k,
		eps: eps,
		p:   ee / (ee + float64(k) - 1),
		q:   1 / (ee + float64(k) - 1),
	}, nil
}

// NumInputs implements Oracle.
func (g *GRR) NumInputs() int { return g.k }

// NumOutputs implements Oracle.
func (g *GRR) NumOutputs() int { return g.k }

// Epsilon implements Oracle.
func (g *GRR) Epsilon() float64 { return g.eps }

// TruthProb returns p, the probability of reporting truthfully.
func (g *GRR) TruthProb() float64 { return g.p }

// LieProb returns q, the probability of reporting any specific other value.
func (g *GRR) LieProb() float64 { return g.q }

// Perturb implements Oracle.
func (g *GRR) Perturb(input int, r *rng.RNG) int {
	if r.Float64() < g.p {
		return input
	}
	// Uniform over the k-1 other values.
	v := r.Intn(g.k - 1)
	if v >= input {
		v++
	}
	return v
}

// Estimate implements Oracle with the standard unbiased inversion
// f̂_i = (c_i/n − q) / (p − q), clipped to the simplex.
func (g *GRR) Estimate(counts []float64) ([]float64, error) {
	if len(counts) != g.k {
		return nil, fmt.Errorf("fo: GRR expects %d counts, got %d", g.k, len(counts))
	}
	n := 0.0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("fo: negative count %v", c)
		}
		n += c
	}
	if n == 0 {
		return nil, fmt.Errorf("fo: no reports")
	}
	est := make([]float64, g.k)
	for i, c := range counts {
		est[i] = (c/n - g.q) / (g.p - g.q)
	}
	ProjectSimplex(est)
	return est, nil
}

// Scheme implements Reporter.
func (g *GRR) Scheme() string { return fmt.Sprintf("fo/grr k=%d eps=%g", g.k, g.eps) }

// ReportShape implements Reporter: one plane of k counts.
func (g *GRR) ReportShape() []int { return []int{g.k} }

// Report implements Reporter: one user's randomised-response output.
func (g *GRR) Report(input int, r *rng.RNG) (Report, error) {
	if input < 0 || input >= g.k {
		return Report{}, fmt.Errorf("fo: GRR input %d outside [0, %d)", input, g.k)
	}
	return SingleIndexReport(g.Perturb(input, r)), nil
}

// EstimateAggregate recovers frequencies from an accumulated aggregate.
func (g *GRR) EstimateAggregate(agg *Aggregate) ([]float64, error) {
	if err := agg.Compatible(g); err != nil {
		return nil, err
	}
	return g.Estimate(agg.Planes[0])
}

// Linear returns GRR's channel in its two-valued closed form (p on the
// diagonal, q elsewhere), which EM sweeps in O(k) instead of the dense
// O(k²).
func (g *GRR) Linear() *TwoValue {
	t, err := NewTwoValue(g.k, g.p, g.q)
	if err != nil {
		// Unreachable: p + (k−1)·q = 1 by construction.
		panic(fmt.Sprintf("fo: GRR channel invalid: %v", err))
	}
	return t
}

// Channel returns GRR's explicit channel matrix.
func (g *GRR) Channel() *Channel {
	ch := NewChannel(g.k, g.k)
	for i := 0; i < g.k; i++ {
		for j := 0; j < g.k; j++ {
			if i == j {
				ch.Set(i, j, g.p)
			} else {
				ch.Set(i, j, g.q)
			}
		}
	}
	return ch
}

// ProjectSimplex clips negatives to zero and renormalises in place — the
// standard post-processing step that keeps unbiased LDP estimates valid
// probability vectors.
func ProjectSimplex(v []float64) {
	total := 0.0
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		} else {
			total += x
		}
	}
	if total <= 0 {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i := range v {
		v[i] /= total
	}
}
