// Package fo implements the Frequency Oracle substrate of the paper
// (Section III): the FO = <T, E> protocol with a randomised reporting
// function T and an estimation function E. It provides the categorical
// oracles the related work builds on — generalized randomized response
// (GRR / k-RR) and optimized unary encoding (OUE) — plus the generic
// channel-matrix abstraction every spatial mechanism in this repository
// reduces to.
package fo

import (
	"fmt"
	"math"

	"dpspatial/internal/rng"
)

// Oracle is the FO = <T, E> protocol: Perturb is FO.T (randomise one
// user's value), Estimate is FO.E (recover a frequency vector over the
// input domain from the aggregated noisy reports).
type Oracle interface {
	// NumInputs returns the input domain size.
	NumInputs() int
	// NumOutputs returns the output domain size.
	NumOutputs() int
	// Perturb randomises a single input index into an output index.
	Perturb(input int, r *rng.RNG) int
	// Estimate recovers normalised input-domain frequencies from output
	// counts (len NumOutputs, total n users).
	Estimate(counts []float64) ([]float64, error)
	// Epsilon returns the privacy budget the oracle satisfies.
	Epsilon() float64
}

// Channel is a row-stochastic matrix M where M[i][j] = Pr[output j |
// input i]. It is the common representation that sampling, unbiased
// estimation, EM post-processing and the privacy checks all consume.
type Channel struct {
	In, Out int
	M       []float64 // row-major, In × Out
}

// NewChannel allocates a zero channel.
func NewChannel(in, out int) *Channel {
	return &Channel{In: in, Out: out, M: make([]float64, in*out)}
}

// At returns M[i][j].
func (c *Channel) At(i, j int) float64 { return c.M[i*c.Out+j] }

// Set assigns M[i][j].
func (c *Channel) Set(i, j int, v float64) { c.M[i*c.Out+j] = v }

// Row returns the i-th row slice (shared storage).
func (c *Channel) Row(i int) []float64 { return c.M[i*c.Out : (i+1)*c.Out] }

// Validate checks that every row is a probability distribution.
func (c *Channel) Validate() error {
	for i := 0; i < c.In; i++ {
		sum := 0.0
		for _, v := range c.Row(i) {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("fo: channel row %d has invalid entry %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("fo: channel row %d sums to %v", i, sum)
		}
	}
	return nil
}

// MaxRatio returns the worst-case likelihood ratio
// max_j max_{i1,i2} M[i1][j]/M[i2][j]: an ε-LDP channel must satisfy
// MaxRatio ≤ e^ε. Zero-probability outputs shared by all inputs are
// skipped; an output reachable from one input but not another yields +Inf.
func (c *Channel) MaxRatio() float64 {
	worst := 1.0
	for j := 0; j < c.Out; j++ {
		minV, maxV := math.Inf(1), 0.0
		for i := 0; i < c.In; i++ {
			v := c.At(i, j)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if maxV == 0 {
			continue
		}
		if minV == 0 {
			return math.Inf(1)
		}
		if ratio := maxV / minV; ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// Samplers builds one alias table per input row for O(1) perturbation.
func (c *Channel) Samplers() ([]*rng.Alias, error) {
	tables := make([]*rng.Alias, c.In)
	for i := 0; i < c.In; i++ {
		t, err := rng.NewAlias(c.Row(i))
		if err != nil {
			return nil, fmt.Errorf("fo: row %d: %w", i, err)
		}
		tables[i] = t
	}
	return tables, nil
}

// Apply returns the exact output distribution M^T · p for an input
// distribution p.
func (c *Channel) Apply(p []float64) ([]float64, error) {
	if len(p) != c.In {
		return nil, fmt.Errorf("fo: input length %d != %d", len(p), c.In)
	}
	out := make([]float64, c.Out)
	for i := 0; i < c.In; i++ {
		pi := p[i]
		if pi == 0 {
			continue
		}
		row := c.Row(i)
		for j, v := range row {
			out[j] += pi * v
		}
	}
	return out, nil
}
