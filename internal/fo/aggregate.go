package fo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Aggregate is the server side of the report lifecycle: per-plane output
// counts accumulated from individual reports. Add and Merge are
// associative and commutative, so aggregation can be sharded across
// machines and merged in any grouping or order with a bit-identical
// result (counts are small integers, exactly representable in float64),
// and the deterministic binary/JSON encodings make aggregates safe to
// ship between processes.
type Aggregate struct {
	// Scheme is the report format this aggregate accumulates; Merge
	// refuses to combine aggregates with different schemes.
	Scheme string `json:"scheme"`
	// Planes holds one count vector per reporting plane.
	Planes [][]float64 `json:"planes"`
	// N is the number of reports absorbed (directly or via Merge). It is
	// the user count estimators such as OUE's need alongside the counts.
	N float64 `json:"n"`
}

// NewAggregateFor allocates an empty aggregate matching the reporter's
// scheme and plane shape.
func NewAggregateFor(rep Reporter) *Aggregate {
	shape := rep.ReportShape()
	planes := make([][]float64, len(shape))
	for i, n := range shape {
		planes[i] = make([]float64, n)
	}
	return &Aggregate{Scheme: rep.Scheme(), Planes: planes}
}

// AggregateFromCounts wraps already-aggregated per-plane counts (for
// example from a parallel bulk collection). Every plane must carry the
// same total, which becomes N. This is only correct for reporters that
// emit exactly one index per plane per report (every spatial mechanism);
// multi-index reporters like OUE must Add reports individually so N
// counts users, not support observations.
func AggregateFromCounts(scheme string, planes ...[]float64) (*Aggregate, error) {
	if len(planes) == 0 {
		return nil, fmt.Errorf("fo: aggregate needs at least one plane")
	}
	n := 0.0
	for p, counts := range planes {
		total := 0.0
		for i, c := range counts {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("fo: invalid count %v at plane %d index %d", c, p, i)
			}
			total += c
		}
		if p == 0 {
			n = total
		} else if total != n {
			return nil, fmt.Errorf("fo: plane %d totals %v reports, plane 0 has %v", p, total, n)
		}
	}
	cloned := make([][]float64, len(planes))
	for i, counts := range planes {
		cloned[i] = append([]float64(nil), counts...)
	}
	return &Aggregate{Scheme: scheme, Planes: cloned, N: n}, nil
}

// Add absorbs one report.
func (a *Aggregate) Add(rep Report) error {
	if len(rep.Planes) != len(a.Planes) {
		return fmt.Errorf("fo: report has %d planes, aggregate %d", len(rep.Planes), len(a.Planes))
	}
	for p, idxs := range rep.Planes {
		for _, j := range idxs {
			if j < 0 || j >= len(a.Planes[p]) {
				return fmt.Errorf("fo: report index %d outside plane %d (size %d)", j, p, len(a.Planes[p]))
			}
		}
	}
	for p, idxs := range rep.Planes {
		for _, j := range idxs {
			a.Planes[p][j]++
		}
	}
	a.N++
	return nil
}

// Merge folds another shard's aggregate into this one. Both operands
// must share the scheme and plane shape; b is left unchanged.
func (a *Aggregate) Merge(b *Aggregate) error {
	if a.Scheme != b.Scheme {
		return fmt.Errorf("fo: cannot merge scheme %q into %q", b.Scheme, a.Scheme)
	}
	if len(a.Planes) != len(b.Planes) {
		return fmt.Errorf("fo: merge plane count mismatch (%d vs %d)", len(a.Planes), len(b.Planes))
	}
	for p := range a.Planes {
		if len(a.Planes[p]) != len(b.Planes[p]) {
			return fmt.Errorf("fo: merge plane %d size mismatch (%d vs %d)", p, len(a.Planes[p]), len(b.Planes[p]))
		}
	}
	for p := range a.Planes {
		for j, v := range b.Planes[p] {
			a.Planes[p][j] += v
		}
	}
	a.N += b.N
	return nil
}

// Clone returns a deep copy.
func (a *Aggregate) Clone() *Aggregate {
	planes := make([][]float64, len(a.Planes))
	for i, p := range a.Planes {
		planes[i] = append([]float64(nil), p...)
	}
	return &Aggregate{Scheme: a.Scheme, Planes: planes, N: a.N}
}

// Compatible reports whether the aggregate can be decoded by the
// reporter's estimator: same scheme and plane shape.
func (a *Aggregate) Compatible(rep Reporter) error {
	if a.Scheme != rep.Scheme() {
		return fmt.Errorf("fo: aggregate scheme %q, mechanism scheme %q", a.Scheme, rep.Scheme())
	}
	shape := rep.ReportShape()
	if len(a.Planes) != len(shape) {
		return fmt.Errorf("fo: aggregate has %d planes, mechanism expects %d", len(a.Planes), len(shape))
	}
	for p, n := range shape {
		if len(a.Planes[p]) != n {
			return fmt.Errorf("fo: aggregate plane %d has %d counts, mechanism expects %d", p, len(a.Planes[p]), n)
		}
	}
	return nil
}

// Every binary-encoded aggregate opens with "DPA" plus a format-version
// byte. Version 1 stores each plane as a dense float64 vector; version 2
// prefixes each plane with an encoding byte and stores mostly-zero
// planes as index/value pairs, so large-domain aggregates stop shipping
// dense zero runs over the wire. UnmarshalBinary accepts both.
var (
	aggregateMagic   = []byte("DPA1")
	aggregateMagicV2 = []byte("DPA2")
)

// Per-plane encodings of the version-2 format.
const (
	planeDense  = 0 // uvarint len, len × float64
	planeSparse = 1 // uvarint len, uvarint nnz, nnz × (uvarint index, float64); indices strictly increasing
)

// maxSparsePlaneCells bounds the allocation a sparse-encoded plane may
// request: its logical size is intentionally decoupled from the payload
// length, so a hostile blob could otherwise name a plane of 2⁶¹ cells.
// 2²⁸ cells (2 GiB dense) is far beyond any grid this system builds.
const maxSparsePlaneCells = 1 << 28

// sparseEncodedSize returns the byte cost of sparse-encoding a plane
// (excluding the shared length prefix); callers compare it against the
// dense cost 8·len and pick the smaller encoding.
func sparseEncodedSize(plane []float64) int {
	size := 0
	nnz := 0
	for j, v := range plane {
		if v != 0 {
			nnz++
			size += uvarintLen(uint64(j)) + 8
		}
	}
	return size + uvarintLen(uint64(nnz))
}

func uvarintLen(v uint64) int {
	var b [binary.MaxVarintLen64]byte
	return binary.PutUvarint(b[:], v)
}

// MarshalBinary encodes the aggregate deterministically in the version-2
// format: magic, scheme, plane count, then each plane with an encoding
// byte — dense (length-prefixed little-endian float64 vector) or sparse
// (index/value pairs), whichever is smaller — then N. The same aggregate
// always yields the same bytes.
func (a *Aggregate) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(aggregateMagicV2)
	writeUvarint(&buf, uint64(len(a.Scheme)))
	buf.WriteString(a.Scheme)
	writeUvarint(&buf, uint64(len(a.Planes)))
	var b [8]byte
	for _, plane := range a.Planes {
		if sparseEncodedSize(plane) < 8*len(plane) {
			buf.WriteByte(planeSparse)
			writeUvarint(&buf, uint64(len(plane)))
			nnz := 0
			for _, v := range plane {
				if v != 0 {
					nnz++
				}
			}
			writeUvarint(&buf, uint64(nnz))
			for j, v := range plane {
				if v == 0 {
					continue
				}
				writeUvarint(&buf, uint64(j))
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				buf.Write(b[:])
			}
		} else {
			buf.WriteByte(planeDense)
			writeUvarint(&buf, uint64(len(plane)))
			for _, v := range plane {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				buf.Write(b[:])
			}
		}
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(a.N))
	buf.Write(b[:])
	return buf.Bytes(), nil
}

// MarshalBinaryV1 encodes the aggregate in the legacy DPA1 format: every
// plane dense, no per-plane encoding byte. Kept for fleets that still
// run version-1 shards (UnmarshalBinary accepts both, so mixed-version
// submissions merge transparently) and for compatibility tests.
func (a *Aggregate) MarshalBinaryV1() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(aggregateMagic)
	writeUvarint(&buf, uint64(len(a.Scheme)))
	buf.WriteString(a.Scheme)
	writeUvarint(&buf, uint64(len(a.Planes)))
	var b [8]byte
	for _, plane := range a.Planes {
		writeUvarint(&buf, uint64(len(plane)))
		for _, v := range plane {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			buf.Write(b[:])
		}
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(a.N))
	buf.Write(b[:])
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes either binary format version in place.
func (a *Aggregate) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, len(aggregateMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("fo: not a binary aggregate (bad magic)")
	}
	var version int
	switch {
	case bytes.Equal(magic, aggregateMagic):
		version = 1
	case bytes.Equal(magic, aggregateMagicV2):
		version = 2
	default:
		return fmt.Errorf("fo: not a binary aggregate (bad magic)")
	}
	schemeLen, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("fo: truncated aggregate scheme length: %v", err)
	}
	if schemeLen > uint64(r.Len()) {
		return fmt.Errorf("fo: aggregate scheme length %d exceeds payload", schemeLen)
	}
	scheme := make([]byte, schemeLen)
	if _, err := io.ReadFull(r, scheme); err != nil {
		return fmt.Errorf("fo: truncated aggregate scheme: %v", err)
	}
	numPlanes, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("fo: truncated plane count: %v", err)
	}
	if numPlanes > uint64(r.Len()) {
		return fmt.Errorf("fo: plane count %d exceeds payload", numPlanes)
	}
	planes := make([][]float64, numPlanes)
	for p := range planes {
		encoding := byte(planeDense)
		if version >= 2 {
			enc, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("fo: truncated plane %d encoding: %v", p, err)
			}
			encoding = enc
		}
		size, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("fo: truncated plane %d size: %v", p, err)
		}
		switch encoding {
		case planeDense:
			if size > uint64(r.Len())/8 {
				return fmt.Errorf("fo: plane %d size %d exceeds payload", p, size)
			}
			planes[p] = make([]float64, size)
			for j := range planes[p] {
				var b [8]byte
				if _, err := io.ReadFull(r, b[:]); err != nil {
					return fmt.Errorf("fo: truncated plane %d: %v", p, err)
				}
				planes[p][j] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
			}
		case planeSparse:
			// The logical size is decoupled from the payload length (that
			// is the point of the encoding), so bound the allocation by a
			// sanity cap instead.
			if size > maxSparsePlaneCells {
				return fmt.Errorf("fo: plane %d sparse size %d exceeds the %d-cell cap", p, size, maxSparsePlaneCells)
			}
			nnz, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("fo: truncated plane %d entry count: %v", p, err)
			}
			if nnz > size || nnz > uint64(r.Len())/9 {
				return fmt.Errorf("fo: plane %d has %d sparse entries for size %d", p, nnz, size)
			}
			planes[p] = make([]float64, size)
			prev := -1
			for k := uint64(0); k < nnz; k++ {
				j, err := binary.ReadUvarint(r)
				if err != nil {
					return fmt.Errorf("fo: truncated plane %d sparse index: %v", p, err)
				}
				if j >= size || int(j) <= prev {
					return fmt.Errorf("fo: plane %d sparse index %d out of order or range", p, j)
				}
				prev = int(j)
				var b [8]byte
				if _, err := io.ReadFull(r, b[:]); err != nil {
					return fmt.Errorf("fo: truncated plane %d sparse value: %v", p, err)
				}
				planes[p][j] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
			}
		default:
			return fmt.Errorf("fo: plane %d has unknown encoding %d", p, encoding)
		}
	}
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("fo: truncated report count: %v", err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("fo: %d trailing bytes after aggregate", r.Len())
	}
	a.Scheme = string(scheme)
	a.Planes = planes
	a.N = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	return nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	buf.Write(b[:binary.PutUvarint(b[:], v)])
}

// validCount rejects negative or non-integral per-cell user counts.
func validCount(c float64, cell int) error {
	if c < 0 || c != math.Trunc(c) {
		return fmt.Errorf("fo: invalid count %v at cell %d", c, cell)
	}
	return nil
}
