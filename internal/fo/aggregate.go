package fo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Aggregate is the server side of the report lifecycle: per-plane output
// counts accumulated from individual reports. Add and Merge are
// associative and commutative, so aggregation can be sharded across
// machines and merged in any grouping or order with a bit-identical
// result (counts are small integers, exactly representable in float64),
// and the deterministic binary/JSON encodings make aggregates safe to
// ship between processes.
type Aggregate struct {
	// Scheme is the report format this aggregate accumulates; Merge
	// refuses to combine aggregates with different schemes.
	Scheme string `json:"scheme"`
	// Planes holds one count vector per reporting plane.
	Planes [][]float64 `json:"planes"`
	// N is the number of reports absorbed (directly or via Merge). It is
	// the user count estimators such as OUE's need alongside the counts.
	N float64 `json:"n"`
}

// NewAggregateFor allocates an empty aggregate matching the reporter's
// scheme and plane shape.
func NewAggregateFor(rep Reporter) *Aggregate {
	shape := rep.ReportShape()
	planes := make([][]float64, len(shape))
	for i, n := range shape {
		planes[i] = make([]float64, n)
	}
	return &Aggregate{Scheme: rep.Scheme(), Planes: planes}
}

// AggregateFromCounts wraps already-aggregated per-plane counts (for
// example from a parallel bulk collection). Every plane must carry the
// same total, which becomes N. This is only correct for reporters that
// emit exactly one index per plane per report (every spatial mechanism);
// multi-index reporters like OUE must Add reports individually so N
// counts users, not support observations.
func AggregateFromCounts(scheme string, planes ...[]float64) (*Aggregate, error) {
	if len(planes) == 0 {
		return nil, fmt.Errorf("fo: aggregate needs at least one plane")
	}
	n := 0.0
	for p, counts := range planes {
		total := 0.0
		for i, c := range counts {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("fo: invalid count %v at plane %d index %d", c, p, i)
			}
			total += c
		}
		if p == 0 {
			n = total
		} else if total != n {
			return nil, fmt.Errorf("fo: plane %d totals %v reports, plane 0 has %v", p, total, n)
		}
	}
	cloned := make([][]float64, len(planes))
	for i, counts := range planes {
		cloned[i] = append([]float64(nil), counts...)
	}
	return &Aggregate{Scheme: scheme, Planes: cloned, N: n}, nil
}

// Add absorbs one report.
func (a *Aggregate) Add(rep Report) error {
	if len(rep.Planes) != len(a.Planes) {
		return fmt.Errorf("fo: report has %d planes, aggregate %d", len(rep.Planes), len(a.Planes))
	}
	for p, idxs := range rep.Planes {
		for _, j := range idxs {
			if j < 0 || j >= len(a.Planes[p]) {
				return fmt.Errorf("fo: report index %d outside plane %d (size %d)", j, p, len(a.Planes[p]))
			}
		}
	}
	for p, idxs := range rep.Planes {
		for _, j := range idxs {
			a.Planes[p][j]++
		}
	}
	a.N++
	return nil
}

// Merge folds another shard's aggregate into this one. Both operands
// must share the scheme and plane shape; b is left unchanged.
func (a *Aggregate) Merge(b *Aggregate) error {
	if a.Scheme != b.Scheme {
		return fmt.Errorf("fo: cannot merge scheme %q into %q", b.Scheme, a.Scheme)
	}
	if len(a.Planes) != len(b.Planes) {
		return fmt.Errorf("fo: merge plane count mismatch (%d vs %d)", len(a.Planes), len(b.Planes))
	}
	for p := range a.Planes {
		if len(a.Planes[p]) != len(b.Planes[p]) {
			return fmt.Errorf("fo: merge plane %d size mismatch (%d vs %d)", p, len(a.Planes[p]), len(b.Planes[p]))
		}
	}
	for p := range a.Planes {
		for j, v := range b.Planes[p] {
			a.Planes[p][j] += v
		}
	}
	a.N += b.N
	return nil
}

// Clone returns a deep copy.
func (a *Aggregate) Clone() *Aggregate {
	planes := make([][]float64, len(a.Planes))
	for i, p := range a.Planes {
		planes[i] = append([]float64(nil), p...)
	}
	return &Aggregate{Scheme: a.Scheme, Planes: planes, N: a.N}
}

// Compatible reports whether the aggregate can be decoded by the
// reporter's estimator: same scheme and plane shape.
func (a *Aggregate) Compatible(rep Reporter) error {
	if a.Scheme != rep.Scheme() {
		return fmt.Errorf("fo: aggregate scheme %q, mechanism scheme %q", a.Scheme, rep.Scheme())
	}
	shape := rep.ReportShape()
	if len(a.Planes) != len(shape) {
		return fmt.Errorf("fo: aggregate has %d planes, mechanism expects %d", len(a.Planes), len(shape))
	}
	for p, n := range shape {
		if len(a.Planes[p]) != n {
			return fmt.Errorf("fo: aggregate plane %d has %d counts, mechanism expects %d", p, len(a.Planes[p]), n)
		}
	}
	return nil
}

// aggregateMagic opens every binary-encoded aggregate ("DPA" + version).
var aggregateMagic = []byte("DPA1")

// MarshalBinary encodes the aggregate deterministically: magic, scheme,
// plane count, then each plane as a length-prefixed little-endian float64
// vector, then N. The same aggregate always yields the same bytes.
func (a *Aggregate) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(aggregateMagic)
	writeUvarint(&buf, uint64(len(a.Scheme)))
	buf.WriteString(a.Scheme)
	writeUvarint(&buf, uint64(len(a.Planes)))
	for _, plane := range a.Planes {
		writeUvarint(&buf, uint64(len(plane)))
		for _, v := range plane {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			buf.Write(b[:])
		}
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(a.N))
	buf.Write(b[:])
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes MarshalBinary's format in place.
func (a *Aggregate) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, len(aggregateMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, aggregateMagic) {
		return fmt.Errorf("fo: not a binary aggregate (bad magic)")
	}
	schemeLen, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("fo: truncated aggregate scheme length: %v", err)
	}
	if schemeLen > uint64(r.Len()) {
		return fmt.Errorf("fo: aggregate scheme length %d exceeds payload", schemeLen)
	}
	scheme := make([]byte, schemeLen)
	if _, err := io.ReadFull(r, scheme); err != nil {
		return fmt.Errorf("fo: truncated aggregate scheme: %v", err)
	}
	numPlanes, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("fo: truncated plane count: %v", err)
	}
	if numPlanes > uint64(r.Len()) {
		return fmt.Errorf("fo: plane count %d exceeds payload", numPlanes)
	}
	planes := make([][]float64, numPlanes)
	for p := range planes {
		size, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("fo: truncated plane %d size: %v", p, err)
		}
		if size > uint64(r.Len())/8 {
			return fmt.Errorf("fo: plane %d size %d exceeds payload", p, size)
		}
		planes[p] = make([]float64, size)
		for j := range planes[p] {
			var b [8]byte
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return fmt.Errorf("fo: truncated plane %d: %v", p, err)
			}
			planes[p][j] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		}
	}
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("fo: truncated report count: %v", err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("fo: %d trailing bytes after aggregate", r.Len())
	}
	a.Scheme = string(scheme)
	a.Planes = planes
	a.N = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	return nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	buf.Write(b[:binary.PutUvarint(b[:], v)])
}

// validCount rejects negative or non-integral per-cell user counts.
func validCount(c float64, cell int) error {
	if c < 0 || c != math.Trunc(c) {
		return fmt.Errorf("fo: invalid count %v at cell %d", c, cell)
	}
	return nil
}
