package fo

import (
	"fmt"
	"runtime"
	"sync"

	"dpspatial/internal/rng"
)

// CollectParallel simulates per-user categorical reporting through the
// channel with the per-user draws fanned out across workers. Input cells
// are partitioned into contiguous chunks, one per worker, and worker w
// owns the deterministic stream rng.New(seed ^ (w+1)·φ) — so the
// aggregate counts are reproducible for a fixed seed and worker count,
// though they differ from a sequential single-stream collection.
//
// workers ≤ 0 selects GOMAXPROCS.
func CollectParallel(ch *Channel, trueCounts []float64, seed uint64, workers int) ([]float64, error) {
	samplers, err := ch.Samplers()
	if err != nil {
		return nil, err
	}
	return CollectParallelAlias(samplers, ch.Out, trueCounts, seed, workers)
}

// CollectParallelAlias is CollectParallel over prebuilt per-input alias
// samplers (mechanisms cache theirs across trials), drawing into out
// output buckets.
func CollectParallelAlias(samplers []*rng.Alias, out int, trueCounts []float64, seed uint64, workers int) ([]float64, error) {
	if len(trueCounts) != len(samplers) {
		return nil, fmt.Errorf("fo: %d true counts for %d inputs", len(trueCounts), len(samplers))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i, c := range trueCounts {
		if err := validCount(c, i); err != nil {
			return nil, err
		}
	}

	in := len(samplers)
	chunk := (in + workers - 1) / workers
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > in {
			hi = in
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := rng.New(seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
			counts := make([]float64, out)
			for i := lo; i < hi; i++ {
				for k := 0; k < int(trueCounts[i]); k++ {
					counts[samplers[i].Draw(r)]++
				}
			}
			results[w] = counts
		}(w, lo, hi)
	}
	wg.Wait()

	total := make([]float64, out)
	for _, counts := range results {
		for j, v := range counts {
			total[j] += v
		}
	}
	return total, nil
}
