package fo

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dpspatial/internal/rng"
)

// CollectParallel simulates per-user categorical reporting through the
// channel with the per-user draws fanned out across workers. Input cells
// are partitioned into contiguous chunks, one per worker, and worker w
// owns the deterministic stream rng.New(seed ^ (w+1)·φ) — so the
// aggregate counts are reproducible for a fixed seed and worker count,
// though they differ from a sequential single-stream collection.
//
// workers ≤ 0 selects GOMAXPROCS.
func CollectParallel(ch *Channel, trueCounts []float64, seed uint64, workers int) ([]float64, error) {
	if len(trueCounts) != ch.In {
		return nil, fmt.Errorf("fo: %d true counts for %d inputs", len(trueCounts), ch.In)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i, c := range trueCounts {
		if c < 0 || c != math.Trunc(c) {
			return nil, fmt.Errorf("fo: invalid count %v at cell %d", c, i)
		}
	}
	samplers, err := ch.Samplers()
	if err != nil {
		return nil, err
	}

	chunk := (ch.In + workers - 1) / workers
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > ch.In {
			hi = ch.In
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := rng.New(seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
			out := make([]float64, ch.Out)
			for i := lo; i < hi; i++ {
				for k := 0; k < int(trueCounts[i]); k++ {
					out[samplers[i].Draw(r)]++
				}
			}
			results[w] = out
		}(w, lo, hi)
	}
	wg.Wait()

	total := make([]float64, ch.Out)
	for _, out := range results {
		for j, v := range out {
			total[j] += v
		}
	}
	return total, nil
}
