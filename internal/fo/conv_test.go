package fo

import (
	"math"
	"math/rand"
	"testing"

	"dpspatial/internal/rng"
)

// testKernel is the SEM-Geo-I-shaped displacement kernel used throughout
// these tests: exp(-ε·‖t‖/2).
func testKernel(d int, eps float64) []float64 {
	return DisplacementKernel(d, func(dx, dy int) float64 {
		return math.Exp(-eps * math.Hypot(float64(dx), float64(dy)) / 2)
	})
}

// denseFromKernel builds the exact dense channel the legacy construction
// sites produce: row i = kern(c_j − c_i) normalised by the row-major sum.
func denseFromKernel(d int, kern []float64) *Channel {
	w := 2*d - 1
	n := d * d
	ch := NewChannel(n, n)
	for i := 0; i < n; i++ {
		xi, yi := i%d, i/d
		row := ch.Row(i)
		sum := 0.0
		for j := 0; j < n; j++ {
			xj, yj := j%d, j/d
			v := kern[(yj-yi+d-1)*w+(xj-xi+d-1)]
			row[j] = v
			sum += v
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return ch
}

func maxAbsDev(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randomDist(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	sum := 0.0
	for i := range p {
		p[i] = rng.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// TestConvChannelMatchesDense is the core property test: Forward,
// Backward and Row agree with the exact dense channel to ≤ 1e-9 across
// grid sizes, including odd sides (and hence non-power-of-two circulant
// embeddings) and all border cells.
func TestConvChannelMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 11, 16} {
		n := d * d
		kern := testKernel(d, 1.3)
		dense := denseFromKernel(d, kern)
		conv, err := NewConvChannel(d, kern, nil)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if conv.NumInputs() != n || conv.NumOutputs() != n {
			t.Fatalf("d=%d: conv channel is %d×%d", d, conv.NumInputs(), conv.NumOutputs())
		}

		// Row: bit-identical (same addends in the same order).
		for i := 0; i < n; i++ {
			dr := dense.Row(i)
			cr := conv.Row(i)
			for j := range dr {
				if dr[j] != cr[j] {
					t.Fatalf("d=%d: row %d entry %d differs in bits: dense %v conv %v", d, i, j, dr[j], cr[j])
				}
			}
		}

		p := randomDist(rng, n)
		w := make([]float64, n)
		for j := range w {
			w[j] = rng.Float64()
		}

		wantF := make([]float64, n)
		gotF := make([]float64, n)
		dense.Forward(p, wantF)
		conv.Forward(p, gotF)
		if dev := maxAbsDev(gotF, wantF); dev > 1e-9 {
			t.Errorf("d=%d: Forward deviates by %g", d, dev)
		}

		wantB := make([]float64, n)
		gotB := make([]float64, n)
		dense.Backward(w, wantB)
		conv.Backward(w, gotB)
		if dev := maxAbsDev(gotB, wantB); dev > 1e-9 {
			t.Errorf("d=%d: Backward deviates by %g", d, dev)
		}
	}
}

// TestConvChannelBlocksSumToFull checks the BlockChannel contract:
// disjoint ForwardBlock calls sum to Forward, and BackwardBlock fills
// exactly its row range.
func TestConvChannelBlocksSumToFull(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := 7
	n := d * d
	conv, err := NewConvChannel(d, testKernel(d, 0.8), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := randomDist(rng, n)
	w := make([]float64, n)
	for j := range w {
		w[j] = rng.Float64()
	}

	full := make([]float64, n)
	conv.Forward(p, full)
	blocked := make([]float64, n)
	for lo := 0; lo < n; lo += 11 {
		hi := lo + 11
		if hi > n {
			hi = n
		}
		conv.ForwardBlock(lo, hi, p, blocked)
	}
	if dev := maxAbsDev(blocked, full); dev > 1e-9 {
		t.Errorf("sum of ForwardBlock deviates from Forward by %g", dev)
	}

	fullB := make([]float64, n)
	conv.Backward(w, fullB)
	blockedB := make([]float64, n)
	for i := range blockedB {
		blockedB[i] = math.NaN() // must be overwritten in-range only
	}
	conv.BackwardBlock(13, 29, w, blockedB)
	for i := 13; i < 29; i++ {
		if blockedB[i] != fullB[i] {
			t.Errorf("BackwardBlock row %d differs from Backward", i)
		}
	}
	for _, i := range []int{0, 12, 29, n - 1} {
		if !math.IsNaN(blockedB[i]) {
			t.Errorf("BackwardBlock touched out-of-range row %d", i)
		}
	}
}

// TestConvChannelOverrides exercises the sparse correction layer: a few
// border entries are replaced (with the row's remaining mass shifted onto
// the diagonal so rows stay stochastic) and the channel must match the
// equivalently-patched dense matrix.
func TestConvChannelOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := 5
	n := d * d
	kern := testKernel(d, 1.1)
	dense := denseFromKernel(d, kern)

	var ovs []ConvOverride
	for _, i := range []int{0, d - 1, n - d, n - 1, n / 2} {
		row := dense.Row(i)
		// Halve one entry of the row and move the mass onto the diagonal.
		j := (i + 3) % n
		delta := row[j] / 2
		row[j] -= delta
		row[i] += delta
		ovs = append(ovs,
			ConvOverride{Row: i, Col: j, Val: row[j]},
			ConvOverride{Row: i, Col: i, Val: row[i]},
		)
	}
	conv, err := NewConvChannel(d, kern, ovs)
	if err != nil {
		t.Fatal(err)
	}
	if conv.NNZ() != len(ovs) {
		t.Fatalf("NNZ = %d, want %d", conv.NNZ(), len(ovs))
	}
	if err := conv.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	for i := 0; i < n; i++ {
		if dev := maxAbsDev(conv.Row(i), dense.Row(i)); dev != 0 {
			t.Fatalf("overridden row %d deviates by %g", i, dev)
		}
	}

	p := randomDist(rng, n)
	w := make([]float64, n)
	for j := range w {
		w[j] = rng.Float64()
	}
	wantF := make([]float64, n)
	gotF := make([]float64, n)
	dense.Forward(p, wantF)
	conv.Forward(p, gotF)
	if dev := maxAbsDev(gotF, wantF); dev > 1e-9 {
		t.Errorf("override Forward deviates by %g", dev)
	}
	wantB := make([]float64, n)
	gotB := make([]float64, n)
	dense.Backward(w, wantB)
	conv.Backward(w, gotB)
	if dev := maxAbsDev(gotB, wantB); dev > 1e-9 {
		t.Errorf("override Backward deviates by %g", dev)
	}

	// Blocks with overrides still sum to the full sweep.
	blocked := make([]float64, n)
	conv.ForwardBlock(0, n/2, p, blocked)
	conv.ForwardBlock(n/2, n, p, blocked)
	if dev := maxAbsDev(blocked, gotF); dev > 1e-9 {
		t.Errorf("override ForwardBlock sum deviates by %g", dev)
	}
}

func TestConvChannelDenseMaterialisation(t *testing.T) {
	d := 6
	kern := testKernel(d, 2.0)
	conv, err := NewConvChannel(d, kern, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := denseFromKernel(d, kern)
	got := conv.Dense()
	for i := 0; i < conv.NumInputs(); i++ {
		wr, gr := want.Row(i), got.Row(i)
		for j := range wr {
			if wr[j] != gr[j] {
				t.Fatalf("Dense() row %d entry %d differs in bits", i, j)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("materialised dense channel invalid: %v", err)
	}
	if dr, cr := want.MaxRatio(), conv.MaxRatio(); dr != cr {
		t.Errorf("MaxRatio: dense %v conv %v", dr, cr)
	}
}

func TestConvChannelSamplersMatchDense(t *testing.T) {
	d := 4
	kern := testKernel(d, 1.7)
	conv, err := NewConvChannel(d, kern, nil)
	if err != nil {
		t.Fatal(err)
	}
	dense := denseFromKernel(d, kern)
	ds, err := dense.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := LinearSamplers(conv)
	if err != nil {
		t.Fatal(err)
	}
	// Identical tables draw identically from identical streams.
	r1 := rng.New(123)
	r2 := rng.New(123)
	for i := range ds {
		for trial := 0; trial < 64; trial++ {
			if a, b := ds[i].Draw(r1), cs[i].Draw(r2); a != b {
				t.Fatalf("row %d: sampler draw %d differs (%d vs %d)", i, trial, a, b)
			}
		}
	}
}

func TestConvChannelCalibrated(t *testing.T) {
	d := 6
	kern := testKernel(d, 1.0)
	conv, err := NewConvChannel(d, kern, nil)
	if err != nil {
		t.Fatal(err)
	}
	dense := denseFromKernel(d, kern)
	probes := []int{0, d - 1, d*d - 1, d * d / 2}
	if !conv.Calibrated(func(i int, row []float64) { copy(row, dense.Row(i)) }, probes, 0) {
		t.Error("conv channel fails calibration against its own dense form")
	}
	// A channel whose true rows are NOT displacement-invariant must fail
	// the spot check: perturb one probed border row.
	if conv.Calibrated(func(i int, row []float64) {
		copy(row, dense.Row(i))
		if i == 0 {
			row[1] += 1e-6
		}
	}, probes, 1e-9) {
		t.Error("calibration accepted a non-invariant channel")
	}
}

func TestConvChannelConcurrentSweeps(t *testing.T) {
	// Shared channels serve concurrent decodes at the collector tier;
	// concurrent sweeps must be race-free and bit-reproducible.
	rng := rand.New(rand.NewSource(31))
	d := 8
	n := d * d
	conv, err := NewConvChannel(d, testKernel(d, 1.2), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := randomDist(rng, n)
	want := make([]float64, n)
	conv.Forward(p, want)
	const workers = 8
	results := make([][]float64, workers)
	done := make(chan int, workers)
	for g := 0; g < workers; g++ {
		g := g
		go func() {
			out := make([]float64, n)
			for iter := 0; iter < 50; iter++ {
				conv.Forward(p, out)
			}
			results[g] = out
			done <- g
		}()
	}
	for g := 0; g < workers; g++ {
		<-done
	}
	for g, out := range results {
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("worker %d: concurrent Forward differs at %d", g, i)
			}
		}
	}
}

func TestConvChannelRejectsBadInput(t *testing.T) {
	if _, err := NewConvChannel(0, nil, nil); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewConvChannel(3, make([]float64, 24), nil); err == nil {
		t.Error("wrong kernel size accepted")
	}
	kern := testKernel(3, 1)
	bad := append([]float64(nil), kern...)
	bad[0] = -1
	if _, err := NewConvChannel(3, bad, nil); err == nil {
		t.Error("negative kernel entry accepted")
	}
	if _, err := NewConvChannel(3, kern, []ConvOverride{{Row: 99, Col: 0, Val: 0.1}}); err == nil {
		t.Error("out-of-range override accepted")
	}
	if _, err := NewConvChannel(3, kern, []ConvOverride{
		{Row: 1, Col: 2, Val: 0.1}, {Row: 1, Col: 2, Val: 0.2},
	}); err == nil {
		t.Error("duplicate override accepted")
	}
	if _, err := NewConvChannel(3, make([]float64, 25), nil); err == nil {
		t.Error("all-zero kernel accepted (normalisers are zero)")
	}
}
