package fo

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dpspatial/internal/fft"
	"dpspatial/internal/rng"
)

// ConvChannel is the convolutional form of a dense channel over a d×d
// grid whose kernel depends only on the cell displacement: a
// block-Toeplitz-with-Toeplitz-blocks matrix factored as
//
//	M = diag(1/z_i) · K,   K[i,j] = kern(c_j − c_i),
//
// where kern is the (2d−1)×(2d−1) displacement table and z_i is the
// per-row normaliser Σ_j kern(c_j − c_i). The displacement part K is
// exactly translation-invariant everywhere — including the grid borders,
// where only the normaliser z_i changes — so both EM sweeps reduce to one
// circular 2-D convolution on the grid embedded in the next
// power-of-two ≥ 2d−1 circulant:
//
//	Forward:  out = Mᵀp = K·(p/z)        (kern is even: Kᵀ = K)
//	Backward: out = (K⋆w)/z              (⋆ = correlation)
//
// at O(n log n) per sweep instead of the dense O(n²), with the kernel's
// FFT precomputed once at construction.
//
// Rows that do not follow the kernel (exotic per-cell adjustments) are
// carried by a sparse override layer in the same CSR absolute-value form
// as UniformSparse: each override replaces one base entry, and the sweeps
// add the p_i·(val − base_ij) / (val − base_ij)·w_j corrections after the
// convolution. Row materialisation reproduces the exact dense matrix bit
// for bit: base entries are kern(off)/z_i with z_i accumulated in the
// same row-major order as a dense row-sum, so alias samplers built from
// Row are byte-identical to the dense channel's.
//
// A ConvChannel is safe for concurrent sweeps: per-call working memory
// comes from an internal pool, and all construction-time state is
// read-only afterwards.
type ConvChannel struct {
	d, n int // grid side d; n = d² inputs = outputs
	fftN int // circulant side, NextPow2(2d−1)
	kern []float64
	z    []float64
	conv *fft.RealConv2D
	pool sync.Pool

	// Sparse override layer (CSR over input rows, absolute values).
	rowStart []int
	idx      []int32
	val      []float64
	dval     []float64 // val − base entry: the sweep correction
}

var _ BlockChannel = (*ConvChannel)(nil)

// ConvOverride replaces the base entry at (Row, Col) with the absolute
// probability Val.
type ConvOverride struct {
	Row, Col int
	Val      float64
}

// convScratch is one sweep's working memory.
type convScratch struct {
	buf []float64 // fftN×fftN embedding (convolved in place)
	fs  *fft.ConvScratch
}

// DisplacementKernel tabulates f over every displacement (dx, dy) ∈
// [−(d−1), d−1]², in the (2d−1)×(2d−1) row-major layout NewConvChannel
// expects (centre at (d−1, d−1)).
func DisplacementKernel(d int, f func(dx, dy int) float64) []float64 {
	w := 2*d - 1
	kern := make([]float64, w*w)
	for dy := -(d - 1); dy <= d-1; dy++ {
		for dx := -(d - 1); dx <= d-1; dx++ {
			kern[(dy+d-1)*w+(dx+d-1)] = f(dx, dy)
		}
	}
	return kern
}

// NewConvChannel builds the convolutional channel for a d×d grid from the
// (2d−1)×(2d−1) displacement table kern (see DisplacementKernel), plus
// optional per-entry overrides. kern values must be non-negative and
// finite, and every row — base entries kern/z_i with overrides applied —
// must remain a probability distribution (checked by Validate).
func NewConvChannel(d int, kern []float64, overrides []ConvOverride) (*ConvChannel, error) {
	if d < 1 {
		return nil, fmt.Errorf("fo: conv channel needs a positive grid side, got %d", d)
	}
	w := 2*d - 1
	if len(kern) != w*w {
		return nil, fmt.Errorf("fo: conv channel kernel has %d entries, want %d for d=%d", len(kern), w*w, d)
	}
	for _, v := range kern {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("fo: conv channel kernel has invalid entry %v", v)
		}
	}
	n := d * d
	c := &ConvChannel{d: d, n: n, fftN: fft.NextPow2(w), kern: kern}

	// Per-row normalisers, accumulated in row-major output order — the
	// exact addend sequence of a dense row construction, so z (and hence
	// Row) is bit-identical to the dense build it replaces.
	c.z = make([]float64, n)
	for i := 0; i < n; i++ {
		xi, yi := i%d, i/d
		sum := 0.0
		for yj := 0; yj < d; yj++ {
			seg := kern[(yj-yi+d-1)*w+(0-xi+d-1):]
			for xj := 0; xj < d; xj++ {
				sum += seg[xj]
			}
		}
		if sum <= 0 || math.IsInf(sum, 0) || math.IsNaN(sum) {
			return nil, fmt.Errorf("fo: conv channel row %d has invalid normaliser %v", i, sum)
		}
		c.z[i] = sum
	}

	// Embed the kernel in the circulant: displacement t lives at t mod N.
	N := c.fftN
	emb := make([]float64, N*N)
	for dy := -(d - 1); dy <= d-1; dy++ {
		ey := ((dy + N) % N) * N
		for dx := -(d - 1); dx <= d-1; dx++ {
			emb[ey+(dx+N)%N] = kern[(dy+d-1)*w+(dx+d-1)]
		}
	}
	conv, err := fft.NewRealConv2D(N, emb)
	if err != nil {
		return nil, err
	}
	c.conv = conv

	if err := c.setOverrides(overrides); err != nil {
		return nil, err
	}
	return c, nil
}

// setOverrides installs the sparse correction layer in CSR form.
func (c *ConvChannel) setOverrides(overrides []ConvOverride) error {
	c.rowStart = make([]int, c.n+1)
	if len(overrides) == 0 {
		return nil
	}
	ovs := append([]ConvOverride(nil), overrides...)
	sort.Slice(ovs, func(a, b int) bool {
		if ovs[a].Row != ovs[b].Row {
			return ovs[a].Row < ovs[b].Row
		}
		return ovs[a].Col < ovs[b].Col
	})
	c.idx = make([]int32, 0, len(ovs))
	c.val = make([]float64, 0, len(ovs))
	c.dval = make([]float64, 0, len(ovs))
	row := 0
	for k, o := range ovs {
		if o.Row < 0 || o.Row >= c.n || o.Col < 0 || o.Col >= c.n {
			return fmt.Errorf("fo: conv override (%d, %d) outside %d×%d", o.Row, o.Col, c.n, c.n)
		}
		if o.Val < 0 || math.IsNaN(o.Val) {
			return fmt.Errorf("fo: conv override (%d, %d) has invalid value %v", o.Row, o.Col, o.Val)
		}
		if k > 0 && ovs[k-1].Row == o.Row && ovs[k-1].Col == o.Col {
			return fmt.Errorf("fo: duplicate conv override at (%d, %d)", o.Row, o.Col)
		}
		for row < o.Row {
			row++
			c.rowStart[row] = len(c.idx)
		}
		c.idx = append(c.idx, int32(o.Col))
		c.val = append(c.val, o.Val)
		c.dval = append(c.dval, o.Val-c.baseAt(o.Row, o.Col))
	}
	for row < c.n {
		row++
		c.rowStart[row] = len(c.idx)
	}
	return nil
}

// baseAt returns the pre-override entry M_ij = kern(c_j − c_i)/z_i.
func (c *ConvChannel) baseAt(i, j int) float64 {
	d, w := c.d, 2*c.d-1
	dx := j%d - i%d
	dy := j/d - i/d
	return c.kern[(dy+d-1)*w+(dx+d-1)] / c.z[i]
}

// NumInputs implements LinearChannel.
func (c *ConvChannel) NumInputs() int { return c.n }

// NumOutputs implements LinearChannel.
func (c *ConvChannel) NumOutputs() int { return c.n }

// GridSide returns d, the side of the underlying d×d grid.
func (c *ConvChannel) GridSide() int { return c.d }

// Normalizers returns the per-row pre-normalisation masses z_i, exactly
// the row sums a dense construction would have computed. The returned
// slice is the channel's backing store — treat it as read-only.
func (c *ConvChannel) Normalizers() []float64 { return c.z }

// NNZ returns the number of override entries.
func (c *ConvChannel) NNZ() int { return len(c.idx) }

// scratch borrows per-sweep working memory from the pool.
func (c *ConvChannel) scratch() *convScratch {
	if s, ok := c.pool.Get().(*convScratch); ok {
		return s
	}
	return &convScratch{
		buf: make([]float64, c.fftN*c.fftN),
		fs:  c.conv.NewScratch(),
	}
}

// embed writes src (d×d, scaled entry-wise by 1/scale when scale ≠ nil)
// into the top-left corner of the fftN×fftN buffer, zeroing the padding
// columns of the occupied rows. Rows ≥ d are never read by the pruned
// transform, so they need no zeroing.
func (c *ConvChannel) embed(buf, src, scale []float64) {
	d, N := c.d, c.fftN
	for y := 0; y < d; y++ {
		row := src[y*d : (y+1)*d]
		dst := buf[y*N : y*N+N]
		if scale != nil {
			zr := scale[y*d : (y+1)*d]
			for x, v := range row {
				dst[x] = v / zr[x]
			}
		} else {
			copy(dst, row)
		}
		for x := d; x < N; x++ {
			dst[x] = 0
		}
	}
}

// Forward implements LinearChannel: out = Mᵀp = K·(p/z) + override
// corrections, one FFT convolution.
func (c *ConvChannel) Forward(p, out []float64) {
	s := c.scratch()
	c.embed(s.buf, p, c.z)
	c.conv.Apply(s.buf, s.buf, c.d, s.fs, false)
	d, N := c.d, c.fftN
	for y := 0; y < d; y++ {
		copy(out[y*d:(y+1)*d], s.buf[y*N:y*N+d])
	}
	c.pool.Put(s)
	c.forwardOverrides(0, c.n, p, out)
}

// forwardOverrides adds Σ p_i·(val − base_ij) onto the override columns
// for rows i ∈ [lo, hi).
func (c *ConvChannel) forwardOverrides(lo, hi int, p, out []float64) {
	if len(c.idx) == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		pi := p[i]
		if pi == 0 {
			continue
		}
		for k := c.rowStart[i]; k < c.rowStart[i+1]; k++ {
			out[c.idx[k]] += pi * c.dval[k]
		}
	}
}

// Backward implements LinearChannel: out = (K ⋆ w)/z + override
// corrections, one FFT correlation.
func (c *ConvChannel) Backward(w, out []float64) {
	c.backwardRange(0, c.n, w, out)
}

// backwardRange computes Backward for output entries i ∈ [lo, hi) only.
func (c *ConvChannel) backwardRange(lo, hi int, w, out []float64) {
	s := c.scratch()
	c.embed(s.buf, w, nil)
	c.conv.Apply(s.buf, s.buf, c.d, s.fs, true)
	d, N := c.d, c.fftN
	for i := lo; i < hi; i++ {
		out[i] = s.buf[(i/d)*N+i%d] / c.z[i]
	}
	c.pool.Put(s)
	if len(c.idx) == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		acc := out[i]
		for k := c.rowStart[i]; k < c.rowStart[i+1]; k++ {
			acc += c.dval[k] * w[c.idx[k]]
		}
		out[i] = acc
	}
}

// ForwardBlock implements BlockChannel: the rows outside [lo, hi) are
// masked out of the embedding and the convolution runs as usual, so
// disjoint blocks still sum to Forward exactly. Each block pays a full
// FFT pass — the parallel engine only profits from this when blocks run
// concurrently; the EM loop prefers the global sweeps on this channel.
func (c *ConvChannel) ForwardBlock(lo, hi int, p, out []float64) {
	s := c.scratch()
	d, N := c.d, c.fftN
	buf := s.buf
	for y := 0; y < d; y++ {
		row := buf[y*N : y*N+N]
		rowLo := y * d
		for x := 0; x < d; x++ {
			if i := rowLo + x; i >= lo && i < hi {
				row[x] = p[i] / c.z[i]
			} else {
				row[x] = 0
			}
		}
		for x := d; x < N; x++ {
			row[x] = 0
		}
	}
	c.conv.Apply(buf, buf, d, s.fs, false)
	for y := 0; y < d; y++ {
		res := buf[y*N : y*N+d]
		o := out[y*d : (y+1)*d]
		for x, v := range res {
			o[x] += v
		}
	}
	c.pool.Put(s)
	c.forwardOverrides(lo, hi, p, out)
}

// BackwardBlock implements BlockChannel: one full correlation, finishing
// only the rows in [lo, hi).
func (c *ConvChannel) BackwardBlock(lo, hi int, w, out []float64) {
	c.backwardRange(lo, hi, w, out)
}

// Row implements LinearChannel, materialising row i into a fresh slice.
func (c *ConvChannel) Row(i int) []float64 {
	row := make([]float64, c.n)
	c.RowInto(i, row)
	return row
}

// RowInto materialises row i into dst (len NumOutputs) without
// allocating: kern(c_j − c_i)/z_i with overrides applied — bit-identical
// to the dense construction the channel replaces.
func (c *ConvChannel) RowInto(i int, dst []float64) {
	d, w := c.d, 2*c.d-1
	xi, yi := i%d, i/d
	zi := c.z[i]
	for yj := 0; yj < d; yj++ {
		seg := c.kern[(yj-yi+d-1)*w+(0-xi+d-1):]
		out := dst[yj*d : (yj+1)*d]
		for xj := range out {
			out[xj] = seg[xj] / zi
		}
	}
	for k := c.rowStart[i]; k < c.rowStart[i+1]; k++ {
		dst[c.idx[k]] = c.val[k]
	}
}

// Validate checks the row-stochastic invariant. Base rows sum to z_i/z_i
// by construction — exactly 1 up to one rounding per entry, bounded well
// below the 1e-9 channel tolerance — so only the structural invariants
// and the overridden rows (materialised and summed) cost real work:
// O(n + nnz·n) total, never O(n²).
func (c *ConvChannel) Validate() error {
	for i, zi := range c.z {
		if zi <= 0 || math.IsNaN(zi) || math.IsInf(zi, 0) {
			return fmt.Errorf("fo: conv channel row %d has invalid normaliser %v", i, zi)
		}
	}
	if len(c.idx) == 0 {
		return nil
	}
	row := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		if c.rowStart[i] == c.rowStart[i+1] {
			continue
		}
		c.RowInto(i, row)
		sum := 0.0
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("fo: conv channel row %d has invalid entry %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("fo: conv channel row %d sums to %v", i, sum)
		}
	}
	return nil
}

// MaxRatio returns the worst-case likelihood ratio over materialised
// rows, as Channel.MaxRatio.
func (c *ConvChannel) MaxRatio() float64 { return maxRatioByRows(c) }

// Samplers builds one alias table per row — identical tables to the
// dense channel's, one dense row at a time.
func (c *ConvChannel) Samplers() ([]*rng.Alias, error) { return samplersByRows(c) }

// Dense materialises the full dense channel, bit-identical to the legacy
// dense construction (for the local-privacy adversary and audits).
func (c *ConvChannel) Dense() *Channel {
	ch := NewChannel(c.n, c.n)
	for i := 0; i < c.n; i++ {
		c.RowInto(i, ch.Row(i))
	}
	return ch
}

// Calibrated reports whether the channel reproduces the exact rows
// produced by denseRow (which fills its argument with row i of the true
// channel) at every probe row, to within tol max-abs deviation. The
// construction sites use this as the displacement-invariance spot check:
// probe a few border and interior rows, and fall back to the dense build
// on any mismatch (non-square grids, exotic metrics).
func (c *ConvChannel) Calibrated(denseRow func(i int, row []float64), probes []int, tol float64) bool {
	want := make([]float64, c.n)
	got := make([]float64, c.n)
	for _, i := range probes {
		if i < 0 || i >= c.n {
			return false
		}
		denseRow(i, want)
		c.RowInto(i, got)
		for j := range got {
			if d := math.Abs(got[j] - want[j]); !(d <= tol) {
				return false
			}
		}
	}
	return true
}

// LinearSamplers builds per-row alias tables for any linear channel,
// using the channel's own Samplers fast path when it has one.
func LinearSamplers(c LinearChannel) ([]*rng.Alias, error) {
	type samplerer interface {
		Samplers() ([]*rng.Alias, error)
	}
	if s, ok := c.(samplerer); ok {
		return s.Samplers()
	}
	return samplersByRows(c)
}
