package fo

import (
	"math"
	"testing"
	"testing/quick"

	"dpspatial/internal/rng"
)

func TestGRRChannelRowStochastic(t *testing.T) {
	for _, k := range []int{2, 5, 50} {
		for _, eps := range []float64{0.5, 1, 4} {
			g, err := NewGRR(k, eps)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Channel().Validate(); err != nil {
				t.Fatalf("k=%d eps=%v: %v", k, eps, err)
			}
		}
	}
}

func TestGRRSatisfiesLDP(t *testing.T) {
	for _, k := range []int{2, 10, 100} {
		for _, eps := range []float64{0.7, 2.1, 5} {
			g, err := NewGRR(k, eps)
			if err != nil {
				t.Fatal(err)
			}
			ratio := g.Channel().MaxRatio()
			if ratio > math.Exp(eps)*(1+1e-9) {
				t.Fatalf("k=%d eps=%v: ratio %v > e^eps %v", k, eps, ratio, math.Exp(eps))
			}
			// And tightness: GRR uses the full budget.
			if ratio < math.Exp(eps)*(1-1e-9) {
				t.Fatalf("k=%d eps=%v: ratio %v loose vs e^eps %v", k, eps, ratio, math.Exp(eps))
			}
		}
	}
}

func TestGRRPerturbMatchesChannel(t *testing.T) {
	g, err := NewGRR(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	const trials = 200000
	counts := make([]float64, 5)
	for i := 0; i < trials; i++ {
		counts[g.Perturb(2, r)]++
	}
	for j := range counts {
		want := g.Channel().At(2, j)
		got := counts[j] / trials
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("output %d frequency %v, want %v", j, got, want)
		}
	}
}

func TestGRREstimateRecoversDistribution(t *testing.T) {
	g, err := NewGRR(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{0.5, 0.3, 0.15, 0.05}
	r := rng.New(2)
	const n = 300000
	counts := make([]float64, 4)
	for i := 0; i < n; i++ {
		counts[g.Perturb(rng.WeightedChoice(r, truth), r)]++
	}
	est, err := g.Estimate(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.02 {
			t.Fatalf("estimate %v deviates from truth %v", est, truth)
		}
	}
}

func TestGRRErrors(t *testing.T) {
	if _, err := NewGRR(1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := NewGRR(3, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewGRR(3, math.Inf(1)); err == nil {
		t.Fatal("eps=Inf accepted")
	}
	g, _ := NewGRR(3, 1)
	if _, err := g.Estimate([]float64{1, 2}); err == nil {
		t.Fatal("wrong count length accepted")
	}
	if _, err := g.Estimate([]float64{0, 0, 0}); err == nil {
		t.Fatal("zero reports accepted")
	}
	if _, err := g.Estimate([]float64{1, -2, 3}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestProjectSimplex(t *testing.T) {
	v := []float64{0.5, -0.2, 0.7}
	ProjectSimplex(v)
	total := 0.0
	for _, x := range v {
		if x < 0 {
			t.Fatalf("negative entry after projection: %v", v)
		}
		total += x
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("projection total %v", total)
	}
	allNeg := []float64{-1, -2}
	ProjectSimplex(allNeg)
	if math.Abs(allNeg[0]-0.5) > 1e-12 {
		t.Fatalf("all-negative projection %v, want uniform", allNeg)
	}
}

func TestChannelValidateCatchesBadRows(t *testing.T) {
	ch := NewChannel(2, 2)
	ch.Set(0, 0, 0.6)
	ch.Set(0, 1, 0.4)
	ch.Set(1, 0, 0.6)
	ch.Set(1, 1, 0.6)
	if err := ch.Validate(); err == nil {
		t.Fatal("row summing to 1.2 accepted")
	}
	ch.Set(1, 1, -0.2)
	if err := ch.Validate(); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestChannelMaxRatioInfiniteForDisjointSupport(t *testing.T) {
	ch := NewChannel(2, 2)
	ch.Set(0, 0, 1)
	ch.Set(1, 1, 1)
	if !math.IsInf(ch.MaxRatio(), 1) {
		t.Fatal("disjoint-support channel should have infinite ratio")
	}
}

func TestChannelApply(t *testing.T) {
	g, _ := NewGRR(3, 2)
	ch := g.Channel()
	out, err := ch.Apply([]float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-g.TruthProb()) > 1e-12 {
		t.Fatalf("apply output %v", out)
	}
	if _, err := ch.Apply([]float64{1, 0}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestChannelSamplers(t *testing.T) {
	g, _ := NewGRR(4, 1)
	tables, err := g.Channel().Samplers()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d samplers", len(tables))
	}
	r := rng.New(3)
	v := tables[1].Draw(r)
	if v < 0 || v >= 4 {
		t.Fatalf("sampler output %d", v)
	}
}

func TestOUEUnbiasedEstimation(t *testing.T) {
	o, err := NewOUE(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := []float64{0.4, 0.2, 0.2, 0.1, 0.05, 0.05}
	r := rng.New(5)
	const n = 100000
	support := make([]float64, 6)
	for i := 0; i < n; i++ {
		bits := o.PerturbBits(rng.WeightedChoice(r, truth), r)
		if err := o.AccumulateBits(bits, support); err != nil {
			t.Fatal(err)
		}
	}
	est, err := o.EstimateBits(support, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.02 {
			t.Fatalf("OUE estimate %v deviates from truth %v", est, truth)
		}
	}
}

func TestOUEBitFlipProbabilities(t *testing.T) {
	o, err := NewOUE(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const trials = 200000
	trueOnes, falseOnes := 0.0, 0.0
	for i := 0; i < trials; i++ {
		bits := o.PerturbBits(0, r)
		if bits[0] {
			trueOnes++
		}
		if bits[1] {
			falseOnes++
		}
	}
	if math.Abs(trueOnes/trials-0.5) > 0.005 {
		t.Fatalf("true-bit rate %v, want 0.5", trueOnes/trials)
	}
	wantQ := 1 / (math.Exp(1) + 1)
	if math.Abs(falseOnes/trials-wantQ) > 0.005 {
		t.Fatalf("false-bit rate %v, want %v", falseOnes/trials, wantQ)
	}
}

func TestOUEErrors(t *testing.T) {
	if _, err := NewOUE(1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := NewOUE(3, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
	o, _ := NewOUE(3, 1)
	if _, err := o.EstimateBits([]float64{1, 2}, 10); err == nil {
		t.Fatal("wrong support length accepted")
	}
	if _, err := o.EstimateBits([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("zero users accepted")
	}
	if err := o.AccumulateBits([]bool{true}, make([]float64, 3)); err == nil {
		t.Fatal("wrong bit length accepted")
	}
}

func TestQuickGRRPerturbInDomain(t *testing.T) {
	g, _ := NewGRR(7, 1.3)
	r := rng.New(11)
	f := func(in uint8) bool {
		v := g.Perturb(int(in)%7, r)
		return v >= 0 && v < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
