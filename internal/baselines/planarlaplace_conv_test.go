package baselines

import (
	"math"
	"testing"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// TestPlanarLaplaceUsesConvRepresentation: the Laplace kernel is
// displacement-invariant, so calibration must admit the convolutional
// fast path.
func TestPlanarLaplaceUsesConvRepresentation(t *testing.T) {
	p, err := NewPlanarLaplace(testDomain(t, 6), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Linear().(*fo.ConvChannel); !ok {
		t.Errorf("channel is %T, want *fo.ConvChannel", p.Linear())
	}
}

// TestPlanarLaplaceChannelMemoized: two mechanisms on the same (grid, ε)
// share one channel build; a different ε gets its own.
func TestPlanarLaplaceChannelMemoized(t *testing.T) {
	dom := testDomain(t, 5)
	a, err := NewPlanarLaplace(dom, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlanarLaplace(dom, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if a.state != b.state {
		t.Error("same (grid, ε) did not share the memoized channel state")
	}
	sa, err := a.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("memoized mechanisms built distinct sampler tables")
		}
	}
	c, err := NewPlanarLaplace(dom, 1.26)
	if err != nil {
		t.Fatal(err)
	}
	if c.state == a.state {
		t.Error("different ε shared a channel state")
	}
}

// TestPlanarLaplaceConvDecodeMatchesDense: the FFT decode agrees with
// the exact dense decode to ≤ 1e-9, and the conv rows are bit-identical
// to the dense matrix.
func TestPlanarLaplaceConvDecodeMatchesDense(t *testing.T) {
	p, err := NewPlanarLaplace(testDomain(t, 7), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	lin := p.Linear()
	dense := p.Channel()
	for i := 0; i < p.NumInputs(); i++ {
		dr := dense.Row(i)
		cr := lin.Row(i)
		for j := range dr {
			if dr[j] != cr[j] {
				t.Fatalf("row %d entry %d differs in bits", i, j)
			}
		}
	}
	r := rng.New(55)
	counts := make([]float64, p.NumInputs())
	for j := range counts {
		counts[j] = float64(r.Intn(25))
	}
	counts[3] = 7
	got, err := em.Estimate(lin, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Estimate(dense, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > 1e-9 {
			t.Fatalf("decode differs from dense by %g at %d", d, i)
		}
	}
}
