package baselines

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// AdaptiveGrid is the Table-I AG baseline (Qardaji et al., SIGMOD 2014)
// ported to the local model: instead of estimating on the analyst's
// target resolution directly, the mechanism picks its own reporting
// granularity g×g that balances the LDP noise per cell against the
// discretisation error,
//
//	g = ⌈√(n·(e^ε−1)²/(c·e^ε))^{1/2}⌉  (clamped to [1, target d]),
//
// collects an OUE histogram at that granularity, and up-samples the
// estimate to the target grid by uniform splatting. With few users or a
// tight budget it reports coarse and trades resolution for variance —
// the adaptive behaviour AG introduced.
type AdaptiveGrid struct {
	dom   grid.Domain // target resolution
	eps   float64
	c     float64 // granularity constant (AG uses ~10 in the central model)
	gSide int     // chosen reporting granularity (exposed for tests)
}

// NewAdaptiveGrid builds the baseline for the target domain. The
// granularity is finalised per collection because it depends on the user
// count.
func NewAdaptiveGrid(dom grid.Domain, eps float64) (*AdaptiveGrid, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("baselines: invalid epsilon %v", eps)
	}
	return &AdaptiveGrid{dom: dom, eps: eps, c: 10}, nil
}

// Name returns the mechanism's display name.
func (a *AdaptiveGrid) Name() string { return "AdaptiveGrid" }

// Granularity returns the reporting grid side chosen for n users.
func (a *AdaptiveGrid) Granularity(n float64) int {
	if n < 1 {
		return 1
	}
	ee := math.Exp(a.eps)
	// Per-cell OUE standard deviation is √n·2√(e^ε)/(e^ε−1); balancing it
	// against the per-cell mass n/g² gives g⁴ ∝ n(e^ε−1)²/e^ε.
	g := int(math.Ceil(math.Pow(n*(ee-1)*(ee-1)/(a.c*ee), 0.25)))
	if g < 1 {
		g = 1
	}
	if g > a.dom.D {
		g = a.dom.D
	}
	return g
}

// EstimateHist runs the full pipeline: choose granularity, report every
// user's coarse cell through OUE, estimate, and up-sample to the target
// resolution.
func (a *AdaptiveGrid) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != a.dom.D {
		return nil, fmt.Errorf("baselines: histogram d=%d, mechanism d=%d", truth.Dom.D, a.dom.D)
	}
	n := truth.Total()
	if n <= 0 {
		return nil, fmt.Errorf("baselines: no users")
	}
	g := a.Granularity(n)
	a.gSide = g
	d := a.dom.D

	// Coarse cell of a fine cell: proportional split of indices.
	coarseOf := func(fine int) int {
		x, y := fine%d, fine/d
		cx, cy := x*g/d, y*g/d
		return cy*g + cx
	}

	if g == 1 {
		// Everything lands in one coarse cell: the only unbiased answer
		// is uniform over the target grid.
		return grid.NewHist(a.dom).Normalize(), nil
	}
	oue, err := fo.NewOUE(g*g, a.eps)
	if err != nil {
		return nil, err
	}
	support := make([]float64, g*g)
	users := 0.0
	for fine, cnt := range truth.Mass {
		if cnt < 0 || cnt != math.Trunc(cnt) {
			return nil, fmt.Errorf("baselines: invalid count %v at cell %d", cnt, fine)
		}
		coarse := coarseOf(fine)
		for k := 0; k < int(cnt); k++ {
			if err := oue.AccumulateBits(oue.PerturbBits(coarse, r), support); err != nil {
				return nil, err
			}
			users++
		}
	}
	freqs, err := oue.EstimateBits(support, users)
	if err != nil {
		return nil, err
	}

	// Up-sample: spread each coarse cell's mass uniformly over the fine
	// cells it covers.
	est := grid.NewHist(a.dom)
	cover := make([]int, g*g)
	for fine := 0; fine < d*d; fine++ {
		cover[coarseOf(fine)]++
	}
	for fine := 0; fine < d*d; fine++ {
		coarse := coarseOf(fine)
		if cover[coarse] > 0 {
			est.Mass[fine] = freqs[coarse] / float64(cover[coarse])
		}
	}
	return est.Normalize(), nil
}
