package baselines

import (
	"fmt"
	"math"
	"sync"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// PlanarLaplace is the Geo-Indistinguishability mechanism of Andrés et
// al. (CCS 2013): a true location is perturbed by 2-D noise with density
// proportional to exp(−ε·r), which satisfies ε-Geo-I (per cell unit of
// distance here). The continuous report is re-bucketised onto the grid
// and decoded with EM against the cell-to-cell channel.
//
// The channel entry Pr[cell j | cell i] is the planar Laplace density at
// the destination cell centre times the unit cell area, renormalised —
// the standard midpoint discretisation, accurate to O(g²) and exact in
// the limit of fine grids.
type PlanarLaplace struct {
	dom     grid.Domain
	epsGeo  float64
	channel *fo.Channel
	norms   []float64 // per-row pre-normalisation mass Z_i

	samplersOnce sync.Once
	samplers     []*rng.Alias
	samplersErr  error
}

// NewPlanarLaplace builds the mechanism with per-cell-unit budget
// epsGeo > 0.
func NewPlanarLaplace(dom grid.Domain, epsGeo float64) (*PlanarLaplace, error) {
	if epsGeo <= 0 || math.IsNaN(epsGeo) || math.IsInf(epsGeo, 0) {
		return nil, fmt.Errorf("baselines: invalid epsilon %v", epsGeo)
	}
	p := &PlanarLaplace{dom: dom, epsGeo: epsGeo}
	p.buildChannel()
	if err := p.channel.Validate(); err != nil {
		return nil, fmt.Errorf("baselines: internal channel invalid: %w", err)
	}
	return p, nil
}

func (p *PlanarLaplace) buildChannel() {
	n := p.dom.NumCells()
	ch := fo.NewChannel(n, n)
	p.norms = make([]float64, n)
	for i := 0; i < n; i++ {
		ci := p.dom.CellAt(i)
		row := ch.Row(i)
		sum := 0.0
		for j := 0; j < n; j++ {
			w := math.Exp(-p.epsGeo * ci.CenterDist(p.dom.CellAt(j)))
			row[j] = w
			sum += w
		}
		p.norms[i] = sum
		for j := range row {
			row[j] /= sum
		}
	}
	p.channel = ch
}

// Name returns the mechanism's display name.
func (p *PlanarLaplace) Name() string { return "PlanarLaplace" }

// EpsilonGeo returns the per-cell-unit Geo-I budget.
func (p *PlanarLaplace) EpsilonGeo() float64 { return p.epsGeo }

// Channel exposes the discretised cell channel.
func (p *PlanarLaplace) Channel() *fo.Channel { return p.channel }

// Perturb randomises one cell index through the discretised channel.
func (p *PlanarLaplace) Perturb(input int, r *rng.RNG) int {
	return rng.WeightedChoice(r, p.channel.Row(input))
}

// SampleContinuous draws a continuous planar-Laplace perturbation of a
// point, in cell units: the angle is uniform and the radius follows the
// Gamma(2, 1/ε) law of the polar decomposition (inverse CDF via Lambert-W
// style bisection on 1−(1+εr)e^{−εr}).
func (p *PlanarLaplace) SampleContinuous(x, y float64, r *rng.RNG) (float64, float64) {
	theta := 2 * math.Pi * r.Float64()
	u := r.Float64()
	rad := inverseGammaCDF(u, p.epsGeo)
	return x + rad*math.Cos(theta), y + rad*math.Sin(theta)
}

// inverseGammaCDF solves 1 − (1+εr)·e^{−εr} = u for r by bisection.
func inverseGammaCDF(u, eps float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		u = 1 - 1e-12
	}
	cdf := func(r float64) float64 { return 1 - (1+eps*r)*math.Exp(-eps*r) }
	lo, hi := 0.0, 1.0
	for cdf(hi) < u {
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Samplers returns the per-input-cell alias tables for O(1) perturbation,
// building them once on first use (the old per-EstimateHist rebuild paid
// the full O(d⁴) table construction on every call). The tables are built
// from the validated channel rows, so draws are bit-identical to the
// per-call tables'. The returned slice is shared; treat it as read-only.
func (p *PlanarLaplace) Samplers() ([]*rng.Alias, error) {
	p.samplersOnce.Do(func() {
		p.samplers, p.samplersErr = p.channel.Samplers()
	})
	return p.samplers, p.samplersErr
}

// Scheme implements fo.Reporter: the report format is the discretised
// planar-Laplace channel over the d² grid cells.
func (p *PlanarLaplace) Scheme() string {
	return fmt.Sprintf("baselines/planarlaplace d=%d epsgeo=%g", p.dom.D, p.epsGeo)
}

// NumInputs implements fo.Reporter.
func (p *PlanarLaplace) NumInputs() int { return p.dom.NumCells() }

// ReportShape implements fo.Reporter: one plane of d² counts.
func (p *PlanarLaplace) ReportShape() []int { return []int{p.dom.NumCells()} }

// Report implements fo.Reporter: one user's perturbed cell through the
// cached alias samplers — the same draw stream EstimateHist has always
// consumed.
func (p *PlanarLaplace) Report(input int, r *rng.RNG) (fo.Report, error) {
	samplers, err := p.Samplers()
	if err != nil {
		return fo.Report{}, err
	}
	if input < 0 || input >= len(samplers) {
		return fo.Report{}, fmt.Errorf("baselines: input cell %d outside [0, %d)", input, len(samplers))
	}
	return fo.SingleIndexReport(samplers[input].Draw(r)), nil
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (p *PlanarLaplace) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(p) }

// EstimateFromAggregate decodes an accumulated aggregate (one shard or a
// merge of many) via EM on the dense cell channel — the estimator stage
// of the report lifecycle.
func (p *PlanarLaplace) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	if err := agg.Compatible(p); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	est, err := em.Estimate(p.channel, agg.Planes[0], nil)
	if err != nil {
		return nil, err
	}
	return grid.HistFromMass(p.dom, est)
}

// EstimateHist runs the full report lifecycle in-process: accumulate
// every user's report into one aggregate, then estimate from it. The
// report stream and output are byte-identical to the historical
// monolithic path.
func (p *PlanarLaplace) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != p.dom.D {
		return nil, fmt.Errorf("baselines: histogram d=%d, mechanism d=%d", truth.Dom.D, p.dom.D)
	}
	agg := p.NewAggregate()
	if err := fo.Accumulate(p, agg, truth.Mass, r); err != nil {
		return nil, err
	}
	return p.EstimateFromAggregate(agg)
}

// GeoIRatioHolds verifies the discretised channel's Geo-I guarantee
// within tol. The grid restriction renormalises each row by Z_i, so the
// exact bound on Pr[j|i1]/Pr[j|i2] is e^{ε·d(i1,i2)} · Z_{i2}/Z_{i1}
// (triangle inequality on the density, normaliser ratio folded in); the
// normaliser ratio itself is at most e^{ε·d(i1,i2)}, so the mechanism
// satisfies 2ε-Geo-I in the worst case and ε-Geo-I up to border effects —
// exactly the truncation caveat Andrés et al. note.
func (p *PlanarLaplace) GeoIRatioHolds(tol float64) bool {
	n := p.dom.NumCells()
	for i1 := 0; i1 < n; i1++ {
		for i2 := i1 + 1; i2 < n; i2++ {
			normRatio := math.Max(p.norms[i1]/p.norms[i2], p.norms[i2]/p.norms[i1])
			bound := math.Exp(p.epsGeo*p.dom.CellAt(i1).CenterDist(p.dom.CellAt(i2))) * normRatio
			for j := 0; j < n; j++ {
				q1, q2 := p.channel.At(i1, j), p.channel.At(i2, j)
				if q1 == 0 || q2 == 0 {
					return false
				}
				ratio := q1 / q2
				if ratio < 1 {
					ratio = 1 / ratio
				}
				if ratio > bound*(1+tol) {
					return false
				}
			}
		}
	}
	return true
}
