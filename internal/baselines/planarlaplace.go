package baselines

import (
	"fmt"
	"math"
	"sync"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// PlanarLaplace is the Geo-Indistinguishability mechanism of Andrés et
// al. (CCS 2013): a true location is perturbed by 2-D noise with density
// proportional to exp(−ε·r), which satisfies ε-Geo-I (per cell unit of
// distance here). The continuous report is re-bucketised onto the grid
// and decoded with EM against the cell-to-cell channel.
//
// The channel entry Pr[cell j | cell i] is the planar Laplace density at
// the destination cell centre times the unit cell area, renormalised —
// the standard midpoint discretisation, accurate to O(g²) and exact in
// the limit of fine grids.
type PlanarLaplace struct {
	dom    grid.Domain
	epsGeo float64
	state  *plState // shared channel state, memoized per (grid, ε)
}

// plState is the channel state shared by every PlanarLaplace instance
// with the same grid and budget: the channel (convolutional on the fast
// path, dense fallback), the per-row normalisers, the lazily-built alias
// samplers and the lazily-materialised dense matrix. All fields are
// built once and read-only afterwards, so sharing across mechanisms —
// and across goroutines — is safe.
type plState struct {
	channel fo.LinearChannel
	norms   []float64 // per-row pre-normalisation mass Z_i

	samplersOnce sync.Once
	samplers     []*rng.Alias
	samplersErr  error

	denseOnce sync.Once
	dense     *fo.Channel
}

// plKey identifies one memoized channel build (grid.Domain is a small
// comparable value type).
type plKey struct {
	dom grid.Domain
	eps float64
}

var (
	plMu   sync.Mutex
	plMemo = map[plKey]*plState{}
)

// NewPlanarLaplace builds the mechanism with per-cell-unit budget
// epsGeo > 0. The O(n²)-to-build channel is memoized per (grid, ε) —
// the same sync.Once-style caching CalibrateSEMGeoI uses — so repeated
// constructions (per-trial in the experiment harness, per-generation at
// the collector) reuse one shared, immutable channel.
func NewPlanarLaplace(dom grid.Domain, epsGeo float64) (*PlanarLaplace, error) {
	if epsGeo <= 0 || math.IsNaN(epsGeo) || math.IsInf(epsGeo, 0) {
		return nil, fmt.Errorf("baselines: invalid epsilon %v", epsGeo)
	}
	key := plKey{dom: dom, eps: epsGeo}
	plMu.Lock()
	state, ok := plMemo[key]
	plMu.Unlock()
	if !ok {
		state = buildPLState(dom, epsGeo)
		if err := fo.ValidateLinear(state.channel); err != nil {
			return nil, fmt.Errorf("baselines: internal channel invalid: %w", err)
		}
		plMu.Lock()
		if prior, raced := plMemo[key]; raced {
			state = prior // a concurrent build won; adopt it
		} else {
			plMemo[key] = state
		}
		plMu.Unlock()
	}
	return &PlanarLaplace{dom: dom, epsGeo: epsGeo, state: state}, nil
}

// buildPLState constructs the channel. The planar-Laplace kernel
// exp(−ε·dis) depends only on the cell displacement — grid borders
// change only the per-row normaliser Z_i — so the convolutional channel
// applies, with a calibration spot check on corner/edge/centre rows
// guarding the bit-exactness of its rows against the definitional dense
// build; any mismatch falls back to the exact O(n²) construction.
func buildPLState(dom grid.Domain, epsGeo float64) *plState {
	d := dom.D
	exactRow := func(i int, row []float64) float64 {
		ci := dom.CellAt(i)
		sum := 0.0
		for j := range row {
			w := math.Exp(-epsGeo * ci.CenterDist(dom.CellAt(j)))
			row[j] = w
			sum += w
		}
		for j := range row {
			row[j] /= sum
		}
		return sum
	}
	kern := fo.DisplacementKernel(d, func(dx, dy int) float64 {
		return math.Exp(-epsGeo * math.Hypot(float64(dx), float64(dy)))
	})
	if conv, err := fo.NewConvChannel(d, kern, nil); err == nil &&
		conv.Calibrated(func(i int, row []float64) { exactRow(i, row) }, plProbes(d), 0) {
		return &plState{channel: conv, norms: conv.Normalizers()}
	}
	n := dom.NumCells()
	ch := fo.NewChannel(n, n)
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		norms[i] = exactRow(i, ch.Row(i))
	}
	return &plState{channel: ch, norms: norms}
}

// plProbes picks the calibration rows: corners, edge midpoints, centre.
func plProbes(d int) []int {
	n := d * d
	return []int{
		0, d - 1, n - d, n - 1,
		d / 2,
		(d / 2) * d,
		(d/2)*d + d - 1,
		n - d + d/2,
		(d/2)*d + d/2,
	}
}

// Name returns the mechanism's display name.
func (p *PlanarLaplace) Name() string { return "PlanarLaplace" }

// EpsilonGeo returns the per-cell-unit Geo-I budget.
func (p *PlanarLaplace) EpsilonGeo() float64 { return p.epsGeo }

// Channel exposes the discretised cell channel as a dense matrix,
// materialised lazily (and bit-identically to the historical dense
// build) when the mechanism runs on the convolutional fast path.
// Callers that only sweep should prefer Linear.
func (p *PlanarLaplace) Channel() *fo.Channel {
	s := p.state
	s.denseOnce.Do(func() {
		switch ch := s.channel.(type) {
		case *fo.Channel:
			s.dense = ch
		case *fo.ConvChannel:
			s.dense = ch.Dense()
		}
	})
	return s.dense
}

// Linear exposes the channel in its operative representation — the
// convolutional form when calibration admitted it, dense otherwise.
func (p *PlanarLaplace) Linear() fo.LinearChannel { return p.state.channel }

// Perturb randomises one cell index through the discretised channel.
func (p *PlanarLaplace) Perturb(input int, r *rng.RNG) int {
	return rng.WeightedChoice(r, p.state.channel.Row(input))
}

// SampleContinuous draws a continuous planar-Laplace perturbation of a
// point, in cell units: the angle is uniform and the radius follows the
// Gamma(2, 1/ε) law of the polar decomposition (inverse CDF via Lambert-W
// style bisection on 1−(1+εr)e^{−εr}).
func (p *PlanarLaplace) SampleContinuous(x, y float64, r *rng.RNG) (float64, float64) {
	theta := 2 * math.Pi * r.Float64()
	u := r.Float64()
	rad := inverseGammaCDF(u, p.epsGeo)
	return x + rad*math.Cos(theta), y + rad*math.Sin(theta)
}

// inverseGammaCDF solves 1 − (1+εr)·e^{−εr} = u for r by bisection.
func inverseGammaCDF(u, eps float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		u = 1 - 1e-12
	}
	cdf := func(r float64) float64 { return 1 - (1+eps*r)*math.Exp(-eps*r) }
	lo, hi := 0.0, 1.0
	for cdf(hi) < u {
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Samplers returns the per-input-cell alias tables for O(1) perturbation,
// building them once on first use (the old per-EstimateHist rebuild paid
// the full O(d⁴) table construction on every call). The tables are built
// from the validated channel rows, so draws are bit-identical to the
// per-call tables'. The returned slice is shared; treat it as read-only.
func (p *PlanarLaplace) Samplers() ([]*rng.Alias, error) {
	s := p.state
	s.samplersOnce.Do(func() {
		s.samplers, s.samplersErr = fo.LinearSamplers(s.channel)
	})
	return s.samplers, s.samplersErr
}

// Scheme implements fo.Reporter: the report format is the discretised
// planar-Laplace channel over the d² grid cells.
func (p *PlanarLaplace) Scheme() string {
	return fmt.Sprintf("baselines/planarlaplace d=%d epsgeo=%g", p.dom.D, p.epsGeo)
}

// NumInputs implements fo.Reporter.
func (p *PlanarLaplace) NumInputs() int { return p.dom.NumCells() }

// ReportShape implements fo.Reporter: one plane of d² counts.
func (p *PlanarLaplace) ReportShape() []int { return []int{p.dom.NumCells()} }

// Report implements fo.Reporter: one user's perturbed cell through the
// cached alias samplers — the same draw stream EstimateHist has always
// consumed.
func (p *PlanarLaplace) Report(input int, r *rng.RNG) (fo.Report, error) {
	samplers, err := p.Samplers()
	if err != nil {
		return fo.Report{}, err
	}
	if input < 0 || input >= len(samplers) {
		return fo.Report{}, fmt.Errorf("baselines: input cell %d outside [0, %d)", input, len(samplers))
	}
	return fo.SingleIndexReport(samplers[input].Draw(r)), nil
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (p *PlanarLaplace) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(p) }

// EstimateFromAggregate decodes an accumulated aggregate (one shard or a
// merge of many) via EM on the dense cell channel — the estimator stage
// of the report lifecycle.
func (p *PlanarLaplace) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	if err := agg.Compatible(p); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	est, err := em.Estimate(p.state.channel, agg.Planes[0], nil)
	if err != nil {
		return nil, err
	}
	return grid.HistFromMass(p.dom, est)
}

// EstimateHist runs the full report lifecycle in-process: accumulate
// every user's report into one aggregate, then estimate from it. The
// report stream and output are byte-identical to the historical
// monolithic path.
func (p *PlanarLaplace) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != p.dom.D {
		return nil, fmt.Errorf("baselines: histogram d=%d, mechanism d=%d", truth.Dom.D, p.dom.D)
	}
	agg := p.NewAggregate()
	if err := fo.Accumulate(p, agg, truth.Mass, r); err != nil {
		return nil, err
	}
	return p.EstimateFromAggregate(agg)
}

// GeoIRatioHolds verifies the discretised channel's Geo-I guarantee
// within tol. The grid restriction renormalises each row by Z_i, so the
// exact bound on Pr[j|i1]/Pr[j|i2] is e^{ε·d(i1,i2)} · Z_{i2}/Z_{i1}
// (triangle inequality on the density, normaliser ratio folded in); the
// normaliser ratio itself is at most e^{ε·d(i1,i2)}, so the mechanism
// satisfies 2ε-Geo-I in the worst case and ε-Geo-I up to border effects —
// exactly the truncation caveat Andrés et al. note.
func (p *PlanarLaplace) GeoIRatioHolds(tol float64) bool {
	n := p.dom.NumCells()
	norms := p.state.norms
	ch := p.Channel()
	for i1 := 0; i1 < n; i1++ {
		for i2 := i1 + 1; i2 < n; i2++ {
			normRatio := math.Max(norms[i1]/norms[i2], norms[i2]/norms[i1])
			bound := math.Exp(p.epsGeo*p.dom.CellAt(i1).CenterDist(p.dom.CellAt(i2))) * normRatio
			for j := 0; j < n; j++ {
				q1, q2 := ch.At(i1, j), ch.At(i2, j)
				if q1 == 0 || q2 == 0 {
					return false
				}
				ratio := q1 / q2
				if ratio < 1 {
					ratio = 1 / ratio
				}
				if ratio > bound*(1+tol) {
					return false
				}
			}
		}
	}
	return true
}
