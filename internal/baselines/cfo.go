// Package baselines implements the remaining comparison mechanisms of the
// paper's Table I that are not first-class contenders in the headline
// figures but anchor the design space:
//
//   - Bucket+CFO: the categorical frequency oracle applied to grid cells
//     (Wang et al. 2017) — the "spatial data as unrelated symbols"
//     strawman of Example 1;
//   - the planar Laplace mechanism of Geo-Indistinguishability (Andrés et
//     al., CCS 2013) — the continuous Geo-I reporter SEM-Geo-I refines.
//
// Both expose the same Estimator contract as the core mechanisms so the
// harness can ablate against them.
package baselines

import (
	"fmt"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// CFO is the Bucket+CFO baseline: generalized randomized response over
// the d² grid cells with EM decoding. It satisfies ε-LDP but ignores all
// spatial structure — a reported far-away cell is exactly as likely as a
// neighbouring one, the failure mode the paper's Example 1 illustrates.
type CFO struct {
	dom grid.Domain
	grr *fo.GRR
}

// NewCFO builds the categorical baseline.
func NewCFO(dom grid.Domain, eps float64) (*CFO, error) {
	n := dom.NumCells()
	if n < 2 {
		return nil, fmt.Errorf("baselines: CFO needs at least 2 cells")
	}
	grr, err := fo.NewGRR(n, eps)
	if err != nil {
		return nil, err
	}
	return &CFO{dom: dom, grr: grr}, nil
}

// Name returns the mechanism's display name.
func (c *CFO) Name() string { return "CFO" }

// Epsilon returns the budget.
func (c *CFO) Epsilon() float64 { return c.grr.Epsilon() }

// Channel exposes the GRR channel over cells.
func (c *CFO) Channel() *fo.Channel { return c.grr.Channel() }

// Perturb randomises one cell index.
func (c *CFO) Perturb(input int, r *rng.RNG) int { return c.grr.Perturb(input, r) }

// Scheme implements fo.Reporter: the report format is the GRR output over
// the d² grid cells.
func (c *CFO) Scheme() string {
	return fmt.Sprintf("baselines/cfo d=%d eps=%g", c.dom.D, c.grr.Epsilon())
}

// NumInputs implements fo.Reporter.
func (c *CFO) NumInputs() int { return c.dom.NumCells() }

// ReportShape implements fo.Reporter: one plane of d² counts.
func (c *CFO) ReportShape() []int { return []int{c.dom.NumCells()} }

// Report implements fo.Reporter: one user's randomised-response output
// cell, on the same draw stream Perturb has always used.
func (c *CFO) Report(input int, r *rng.RNG) (fo.Report, error) {
	return c.grr.Report(input, r)
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (c *CFO) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(c) }

// EstimateFromAggregate decodes an accumulated aggregate (one shard or a
// merge of many) via EM on the two-valued GRR channel — the estimator
// stage of the report lifecycle.
func (c *CFO) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	if err := agg.Compatible(c); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	est, err := em.Estimate(c.grr.Linear(), agg.Planes[0], nil)
	if err != nil {
		return nil, err
	}
	return grid.HistFromMass(c.dom, est)
}

// EstimateHist runs the full report lifecycle in-process: accumulate
// every user's report into one aggregate, then estimate from it. The
// report stream and output are byte-identical to the historical
// monolithic path.
func (c *CFO) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != c.dom.D {
		return nil, fmt.Errorf("baselines: histogram d=%d, mechanism d=%d", truth.Dom.D, c.dom.D)
	}
	agg := c.NewAggregate()
	if err := fo.Accumulate(c, agg, truth.Mass, r); err != nil {
		return nil, err
	}
	return c.EstimateFromAggregate(agg)
}
