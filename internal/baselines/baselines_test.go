package baselines

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func testDomain(t *testing.T, d int) grid.Domain {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestCFOSatisfiesLDP(t *testing.T) {
	for _, d := range []int{2, 4} {
		for _, eps := range []float64{0.7, 3.5} {
			c, err := NewCFO(testDomain(t, d), eps)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Channel().Validate(); err != nil {
				t.Fatal(err)
			}
			ratio := c.Channel().MaxRatio()
			if math.Abs(ratio-math.Exp(eps)) > 1e-6*math.Exp(eps) {
				t.Fatalf("d=%d eps=%v: ratio %v, want e^ε", d, eps, ratio)
			}
		}
	}
}

func TestCFOIgnoresDistance(t *testing.T) {
	// The defining (mis)feature: a neighbouring cell and a far cell are
	// equally likely outputs.
	dom := testDomain(t, 5)
	c, err := NewCFO(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := dom.Index(geom.Cell{X: 2, Y: 2})
	near := c.Channel().At(in, dom.Index(geom.Cell{X: 3, Y: 2}))
	far := c.Channel().At(in, dom.Index(geom.Cell{X: 0, Y: 4}))
	if near != far {
		t.Fatalf("CFO should be distance-blind: near %v, far %v", near, far)
	}
}

func TestCFOEstimateRecovers(t *testing.T) {
	dom := testDomain(t, 4)
	c, err := NewCFO(dom, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 1}, 30000)
	truth.Set(geom.Cell{X: 2, Y: 3}, 10000)
	est, err := c.EstimateHist(truth, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Clone().Normalize()
	tv, err := grid.TotalVariation(est, want)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.1 {
		t.Fatalf("high-budget CFO recovery TV %v", tv)
	}
}

func TestCFOErrors(t *testing.T) {
	if _, err := NewCFO(testDomain(t, 1), 1); err == nil {
		t.Fatal("single-cell grid accepted")
	}
	if _, err := NewCFO(testDomain(t, 3), 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	c, err := NewCFO(testDomain(t, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	other := grid.NewHist(testDomain(t, 4))
	if _, err := c.EstimateHist(other, rng.New(1)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	bad := grid.NewHist(testDomain(t, 3))
	bad.Mass[0] = 1.5
	if _, err := c.EstimateHist(bad, rng.New(1)); err == nil {
		t.Fatal("fractional count accepted")
	}
}

func TestPlanarLaplaceChannelValidAndOrdered(t *testing.T) {
	dom := testDomain(t, 5)
	p, err := NewPlanarLaplace(dom, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Channel().Validate(); err != nil {
		t.Fatal(err)
	}
	in := dom.Index(geom.Cell{X: 2, Y: 2})
	self := p.Channel().At(in, in)
	near := p.Channel().At(in, dom.Index(geom.Cell{X: 3, Y: 2}))
	far := p.Channel().At(in, dom.Index(geom.Cell{X: 0, Y: 4}))
	if !(self > near && near > far) {
		t.Fatalf("probabilities not distance-ordered: %v %v %v", self, near, far)
	}
}

func TestPlanarLaplaceGeoIBound(t *testing.T) {
	for _, eps := range []float64{0.5, 2} {
		p, err := NewPlanarLaplace(testDomain(t, 4), eps)
		if err != nil {
			t.Fatal(err)
		}
		if !p.GeoIRatioHolds(1e-9) {
			t.Fatalf("eps=%v: Geo-I bound violated", eps)
		}
	}
}

func TestPlanarLaplaceContinuousSampler(t *testing.T) {
	p, err := NewPlanarLaplace(testDomain(t, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	const n = 100000
	var sumR, sumX, sumY float64
	for i := 0; i < n; i++ {
		x, y := p.SampleContinuous(0, 0, r)
		sumR += math.Hypot(x, y)
		sumX += x
		sumY += y
	}
	// Polar planar Laplace: E[r] = 2/ε, E[x] = E[y] = 0.
	if got, want := sumR/n, 2.0/2; math.Abs(got-want) > 0.02 {
		t.Fatalf("mean radius %v, want %v", got, want)
	}
	if math.Abs(sumX/n) > 0.02 || math.Abs(sumY/n) > 0.02 {
		t.Fatalf("noise not centred: (%v, %v)", sumX/n, sumY/n)
	}
}

func TestInverseGammaCDFMonotone(t *testing.T) {
	prev := -1.0
	for _, u := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		r := inverseGammaCDF(u, 1.5)
		if r < prev {
			t.Fatalf("inverse CDF not monotone at u=%v", u)
		}
		prev = r
	}
	if inverseGammaCDF(0, 1) != 0 {
		t.Fatal("u=0 should map to radius 0")
	}
	// Round trip: CDF(inverse(u)) ≈ u.
	for _, u := range []float64{0.25, 0.5, 0.75} {
		r := inverseGammaCDF(u, 2)
		back := 1 - (1+2*r)*math.Exp(-2*r)
		if math.Abs(back-u) > 1e-9 {
			t.Fatalf("round trip u=%v -> r=%v -> %v", u, r, back)
		}
	}
}

func TestPlanarLaplaceEstimateRecovers(t *testing.T) {
	dom := testDomain(t, 4)
	p, err := NewPlanarLaplace(dom, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 0, Y: 0}, 20000)
	truth.Set(geom.Cell{X: 3, Y: 3}, 20000)
	est, err := p.EstimateHist(truth, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Clone().Normalize()
	tv, err := grid.TotalVariation(est, want)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.15 {
		t.Fatalf("high-budget recovery TV %v", tv)
	}
}

func TestPlanarLaplaceErrors(t *testing.T) {
	if _, err := NewPlanarLaplace(testDomain(t, 3), 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewPlanarLaplace(testDomain(t, 3), math.NaN()); err == nil {
		t.Fatal("NaN eps accepted")
	}
	p, err := NewPlanarLaplace(testDomain(t, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	other := grid.NewHist(testDomain(t, 4))
	if _, err := p.EstimateHist(other, rng.New(1)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
}

func TestCFOWorseThanDistanceAwareAtSpreadRecovery(t *testing.T) {
	// Integration sanity: on a two-cluster truth with a moderate budget,
	// the distance-blind CFO's noise floor spreads mass to far cells at
	// the same rate as near ones; planar Laplace keeps it local. Compare
	// the mass leaked to the far corner region.
	dom := testDomain(t, 5)
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 0, Y: 0}, 20000)

	cfo, err := NewCFO(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlanarLaplace(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	estC, err := cfo.EstimateHist(truth, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	estP, err := pl.EstimateHist(truth, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	farMass := func(h *grid.Hist2D) float64 {
		m := 0.0
		for y := 3; y < 5; y++ {
			for x := 3; x < 5; x++ {
				m += h.At(geom.Cell{X: x, Y: y})
			}
		}
		return m
	}
	if farMass(estP) >= farMass(estC) {
		t.Fatalf("planar Laplace leaked more far mass (%v) than CFO (%v)",
			farMass(estP), farMass(estC))
	}
}
