package baselines

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func TestAdaptiveGridGranularityGrowsWithUsersAndBudget(t *testing.T) {
	a, err := NewAdaptiveGrid(testDomain(t, 20), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g1, g2 := a.Granularity(100), a.Granularity(1e6); g2 <= g1 {
		t.Fatalf("granularity did not grow with users: %d vs %d", g1, g2)
	}
	loose, err := NewAdaptiveGrid(testDomain(t, 20), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewAdaptiveGrid(testDomain(t, 20), 4)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Granularity(1e5) <= loose.Granularity(1e5) {
		t.Fatalf("granularity did not grow with budget: %d vs %d",
			loose.Granularity(1e5), tight.Granularity(1e5))
	}
	if a.Granularity(0) != 1 {
		t.Fatal("zero users should give granularity 1")
	}
	if g := a.Granularity(1e12); g > 20 {
		t.Fatalf("granularity %d exceeds target resolution", g)
	}
}

func TestAdaptiveGridEstimateIsDistribution(t *testing.T) {
	dom := testDomain(t, 8)
	a, err := NewAdaptiveGrid(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 1}, 5000)
	truth.Set(geom.Cell{X: 6, Y: 6}, 5000)
	est, err := a.EstimateHist(truth, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Total()-1) > 1e-9 {
		t.Fatalf("estimate total %v", est.Total())
	}
	for _, m := range est.Mass {
		if m < 0 {
			t.Fatal("negative probability")
		}
	}
}

func TestAdaptiveGridRecoversCoarseStructure(t *testing.T) {
	dom := testDomain(t, 8)
	a, err := NewAdaptiveGrid(dom, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	// All mass in the lower-left quadrant.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			truth.Set(geom.Cell{X: x, Y: y}, 2000)
		}
	}
	est, err := a.EstimateHist(truth, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	quadMass := 0.0
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			quadMass += est.At(geom.Cell{X: x, Y: y})
		}
	}
	if quadMass < 0.7 {
		t.Fatalf("lower-left quadrant mass %v, want > 0.7", quadMass)
	}
}

func TestAdaptiveGridFewUsersFallsBackToUniform(t *testing.T) {
	dom := testDomain(t, 10)
	a, err := NewAdaptiveGrid(dom, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 5, Y: 5}, 3)
	est, err := a.EstimateHist(truth, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// With 3 users at eps=0.1, granularity must collapse to 1 and the
	// estimate must be uniform.
	if a.gSide != 1 {
		t.Fatalf("granularity %d for 3 users at eps=0.1", a.gSide)
	}
	for _, m := range est.Mass {
		if math.Abs(m-0.01) > 1e-9 {
			t.Fatalf("non-uniform fallback: %v", m)
		}
	}
}

func TestAdaptiveGridErrors(t *testing.T) {
	if _, err := NewAdaptiveGrid(testDomain(t, 4), 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	a, err := NewAdaptiveGrid(testDomain(t, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	other := grid.NewHist(testDomain(t, 5))
	if _, err := a.EstimateHist(other, rng.New(1)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	empty := grid.NewHist(testDomain(t, 4))
	if _, err := a.EstimateHist(empty, rng.New(1)); err == nil {
		t.Fatal("zero users accepted")
	}
}
