// Package localprivacy implements the Local Privacy (LP) metric of Shokri
// et al. (CCS 2012) as used in Section VII-B (Equations 15–16) to put
// ε-LDP mechanisms (DAM) and ε-Geo-I mechanisms (SEM-Geo-I) on a common
// privacy scale: LP is the expected 2-norm error of a Bayesian adversary
// who observes one noisy report under a uniform prior over input cells.
// Two mechanisms with equal LP leak the same amount of location
// information to this adversary, so their utilities are comparable.
package localprivacy

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
)

// Compute evaluates Equation (16) for a channel whose inputs are the cells
// of dom (uniform prior):
//
//	LP = Σ_{i'} 1/(n·Σ_ĵ Pr(i'|ĵ)) · Σ_{i,î} Pr(i'|i)·Pr(i'|î)·d(î,i)
//
// with d the Euclidean distance between cell centres in cell units. Larger
// LP means more privacy (the adversary's expected error is larger).
func Compute(dom grid.Domain, ch *fo.Channel) (float64, error) {
	n := dom.NumCells()
	if ch.In != n {
		return 0, fmt.Errorf("localprivacy: channel has %d inputs for %d cells", ch.In, n)
	}

	// Pairwise distances.
	dist := make([]float64, n*n)
	for i := 0; i < n; i++ {
		ci := dom.CellAt(i)
		for j := 0; j < n; j++ {
			dist[i*n+j] = ci.CenterDist(dom.CellAt(j))
		}
	}

	// Each output column contributes independently; fan the O(n²) inner
	// sums out across workers (the harness calls this inside a
	// calibration bisection, so it is the hot path at d ≥ 15).
	fn := float64(n)
	workers := runtime.GOMAXPROCS(0)
	if workers > ch.Out {
		workers = ch.Out
	}
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sum := 0.0
			for o := w; o < ch.Out; o += workers {
				colSum := 0.0
				for i := 0; i < n; i++ {
					colSum += ch.At(i, o)
				}
				if colSum == 0 {
					continue // unreachable output
				}
				inner := 0.0
				for i := 0; i < n; i++ {
					pi := ch.At(i, o)
					if pi == 0 {
						continue
					}
					row := dist[i*n:]
					for j := 0; j < n; j++ {
						pj := ch.At(j, o)
						if pj == 0 {
							continue
						}
						inner += pi * pj * row[j]
					}
				}
				sum += inner / (fn * colSum)
			}
			partial[w] = sum
		}(w)
	}
	wg.Wait()
	lp := 0.0
	for _, p := range partial {
		lp += p
	}
	return lp, nil
}

// Calibrate finds the parameter value x (for example SEM-Geo-I's ε') at
// which the channel produced by build has local privacy equal to target,
// by bisection over [lo, hi]. LP must be monotone decreasing in x (more
// budget ⇒ less privacy), which holds for every mechanism family in this
// repository.
func Calibrate(dom grid.Domain, target float64, build func(x float64) (*fo.Channel, error), lo, hi float64) (float64, error) {
	if target <= 0 || math.IsNaN(target) {
		return 0, fmt.Errorf("localprivacy: invalid target %v", target)
	}
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("localprivacy: invalid bracket [%v, %v]", lo, hi)
	}
	lpAt := func(x float64) (float64, error) {
		ch, err := build(x)
		if err != nil {
			return 0, err
		}
		return Compute(dom, ch)
	}
	lpLo, err := lpAt(lo)
	if err != nil {
		return 0, err
	}
	lpHi, err := lpAt(hi)
	if err != nil {
		return 0, err
	}
	// lpLo is the most private end (small budget), lpHi the least.
	if target >= lpLo {
		return lo, nil
	}
	if target <= lpHi {
		return hi, nil
	}
	for iter := 0; iter < 60; iter++ {
		mid := math.Sqrt(lo * hi) // log-space bisection
		lpMid, err := lpAt(mid)
		if err != nil {
			return 0, err
		}
		if math.Abs(lpMid-target) <= 1e-9*math.Max(1, target) {
			return mid, nil
		}
		if lpMid > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-12 {
			break
		}
	}
	return math.Sqrt(lo * hi), nil
}
