package localprivacy

import (
	"math"
	"testing"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/sam"
	"dpspatial/internal/semgeoi"
)

func testDomain(t *testing.T, d int) grid.Domain {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestComputeIdentityChannelHasZeroPrivacy(t *testing.T) {
	// A noiseless channel lets the adversary locate the user exactly:
	// LP = 0.
	dom := testDomain(t, 3)
	n := dom.NumCells()
	ch := fo.NewChannel(n, n)
	for i := 0; i < n; i++ {
		ch.Set(i, i, 1)
	}
	lp, err := Compute(dom, ch)
	if err != nil {
		t.Fatal(err)
	}
	if lp > 1e-12 {
		t.Fatalf("identity-channel LP = %v, want 0", lp)
	}
}

func TestComputeUniformChannelHasMaxPrivacy(t *testing.T) {
	// A channel that ignores its input gives the adversary nothing: LP
	// equals the prior expected distance between two uniform cells.
	dom := testDomain(t, 3)
	n := dom.NumCells()
	ch := fo.NewChannel(n, 1)
	for i := 0; i < n; i++ {
		ch.Set(i, 0, 1)
	}
	lp, err := Compute(dom, ch)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want += dom.CellAt(i).CenterDist(dom.CellAt(j))
		}
	}
	want /= float64(n * n)
	if math.Abs(lp-want) > 1e-9 {
		t.Fatalf("uniform-channel LP = %v, want prior %v", lp, want)
	}
}

func TestComputeMonotoneInEpsilonForDAM(t *testing.T) {
	dom := testDomain(t, 4)
	prev := math.Inf(1)
	for _, eps := range []float64{0.5, 1, 2, 4} {
		m, err := sam.NewDAM(dom, eps)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := Compute(dom, m.Channel())
		if err != nil {
			t.Fatal(err)
		}
		if lp >= prev {
			t.Fatalf("LP(eps=%v)=%v did not decrease from %v", eps, lp, prev)
		}
		prev = lp
	}
}

func TestComputeMonotoneInEpsilonForSEM(t *testing.T) {
	dom := testDomain(t, 4)
	prev := math.Inf(1)
	for _, eps := range []float64{0.3, 1, 3} {
		m, err := semgeoi.New(dom, eps)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := Compute(dom, m.Channel())
		if err != nil {
			t.Fatal(err)
		}
		if lp >= prev {
			t.Fatalf("LP(eps=%v)=%v did not decrease from %v", eps, lp, prev)
		}
		prev = lp
	}
}

func TestComputeChannelSizeMismatch(t *testing.T) {
	dom := testDomain(t, 3)
	ch := fo.NewChannel(4, 4)
	if _, err := Compute(dom, ch); err == nil {
		t.Fatal("wrong channel size accepted")
	}
}

func TestCalibrateMatchesDAMPrivacy(t *testing.T) {
	// The Section VII-B experiment setup: pick ε for DAM, find the ε' at
	// which SEM-Geo-I has equal local privacy.
	dom := testDomain(t, 4)
	dam, err := sam.NewDAM(dom, 2.1)
	if err != nil {
		t.Fatal(err)
	}
	target, err := Compute(dom, dam.Channel())
	if err != nil {
		t.Fatal(err)
	}
	build := func(x float64) (*fo.Channel, error) {
		m, err := semgeoi.New(dom, x)
		if err != nil {
			return nil, err
		}
		return m.Channel(), nil
	}
	epsPrime, err := Calibrate(dom, target, build, 1e-3, 50)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := build(epsPrime)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Compute(dom, ch)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-target) > 0.02*target {
		t.Fatalf("calibrated LP %v, target %v (eps'=%v)", got, target, epsPrime)
	}
}

func TestCalibrateClampsOutOfRangeTargets(t *testing.T) {
	dom := testDomain(t, 3)
	build := func(x float64) (*fo.Channel, error) {
		m, err := semgeoi.New(dom, x)
		if err != nil {
			return nil, err
		}
		return m.Channel(), nil
	}
	// Absurdly high target (more private than the most private bracket
	// end): calibrate returns the bracket's private end.
	x, err := Calibrate(dom, 1e6, build, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0.01 {
		t.Fatalf("high target returned %v, want lo end 0.01", x)
	}
	// Near-zero target: least private end.
	x, err = Calibrate(dom, 1e-9, build, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	if x != 10 {
		t.Fatalf("low target returned %v, want hi end 10", x)
	}
}

func TestCalibrateErrors(t *testing.T) {
	dom := testDomain(t, 3)
	build := func(x float64) (*fo.Channel, error) {
		m, err := semgeoi.New(dom, x)
		if err != nil {
			return nil, err
		}
		return m.Channel(), nil
	}
	if _, err := Calibrate(dom, 0, build, 0.1, 1); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := Calibrate(dom, 1, build, 1, 0.5); err == nil {
		t.Fatal("inverted bracket accepted")
	}
	if _, err := Calibrate(dom, 1, build, 0, 1); err == nil {
		t.Fatal("zero lo accepted")
	}
}
