// Package rangequery implements the private range-query layer the paper
// positions DAM inside (Section II: DAM "can combine with the methods of
// HIO, HDG and AHEAD to further improve the accuracy in private range
// query"):
//
//   - rectangular range queries over grid histograms, answered exactly or
//     through a quadtree decomposition (the 2-D analogue of HIO's
//     hierarchical intervals);
//   - an AHEAD-style adaptive hierarchical estimator: users are split
//     across hierarchy levels, report their node under LDP (OUE), and
//     the level estimates are reconciled with a weighted-averaging
//     consistency pass;
//   - a query-workload generator for MSE evaluation.
package rangequery

import (
	"fmt"

	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// Query is an inclusive cell-aligned rectangle [X0, X1] × [Y0, Y1].
type Query struct {
	X0, Y0, X1, Y1 int
}

// Validate checks the query against a d×d grid.
func (q Query) Validate(d int) error {
	if q.X0 < 0 || q.Y0 < 0 || q.X1 >= d || q.Y1 >= d || q.X0 > q.X1 || q.Y0 > q.Y1 {
		return fmt.Errorf("rangequery: query %+v invalid for d=%d", q, d)
	}
	return nil
}

// Area returns the number of cells the query covers.
func (q Query) Area() int { return (q.X1 - q.X0 + 1) * (q.Y1 - q.Y0 + 1) }

// Answer sums the histogram mass inside the query.
func Answer(h *grid.Hist2D, q Query) (float64, error) {
	if err := q.Validate(h.Dom.D); err != nil {
		return 0, err
	}
	total := 0.0
	d := h.Dom.D
	for y := q.Y0; y <= q.Y1; y++ {
		for x := q.X0; x <= q.X1; x++ {
			total += h.Mass[y*d+x]
		}
	}
	return total, nil
}

// RandomWorkload draws n queries with areas spread across selectivities
// from single cells to half the domain.
func RandomWorkload(d, n int, r *rng.RNG) ([]Query, error) {
	if d < 1 || n < 1 {
		return nil, fmt.Errorf("rangequery: invalid workload size d=%d n=%d", d, n)
	}
	qs := make([]Query, 0, n)
	for len(qs) < n {
		w := 1 + r.Intn(maxInt(1, d/2))
		h := 1 + r.Intn(maxInt(1, d/2))
		x0 := r.Intn(d - w + 1)
		y0 := r.Intn(d - h + 1)
		qs = append(qs, Query{X0: x0, Y0: y0, X1: x0 + w - 1, Y1: y0 + h - 1})
	}
	return qs, nil
}

// MSE evaluates a set of queries against truth and estimate (both
// normalised or both raw — consistently) and returns the mean squared
// error of the answers.
func MSE(truth, est *grid.Hist2D, qs []Query) (float64, error) {
	if len(qs) == 0 {
		return 0, fmt.Errorf("rangequery: empty workload")
	}
	total := 0.0
	for _, q := range qs {
		a, err := Answer(truth, q)
		if err != nil {
			return 0, err
		}
		b, err := Answer(est, q)
		if err != nil {
			return 0, err
		}
		total += (a - b) * (a - b)
	}
	return total / float64(len(qs)), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
