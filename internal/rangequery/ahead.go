package rangequery

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// AHEAD is an adaptive-hierarchical-decomposition estimator in the style
// of Du et al. (CCS 2021), built on the quadtree: the user population is
// split evenly across hierarchy levels, each user reports the id of their
// ancestor node at the assigned level through OUE under the full ε (user
// partitioning, not budget splitting), and the per-level estimates are
// reconciled by inverse-variance weighted averaging bottom-up followed by
// a top-down consistency adjustment (Hay-style), so every parent equals
// the sum of its children.
//
// It answers range queries through the quadtree cover, which is where the
// hierarchy beats flat frequency oracles: a large rectangle is a handful
// of high-level nodes instead of hundreds of noisy cells.
//
// Because the quadtree of a non-power-of-two grid has leaves at different
// depths, "level ℓ" means the frontier at depth ℓ: nodes at depth ℓ plus
// any leaf that bottomed out earlier. A shallow leaf can therefore
// receive estimates from several levels; they are merged by inverse-
// variance weighting.
type AHEAD struct {
	dom grid.Domain
	eps float64
}

// NewAHEAD builds the estimator.
func NewAHEAD(dom grid.Domain, eps float64) (*AHEAD, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("rangequery: invalid epsilon %v", eps)
	}
	return &AHEAD{dom: dom, eps: eps}, nil
}

// Name returns the estimator's display name.
func (a *AHEAD) Name() string { return "AHEAD" }

// estimateEntry is one level's noisy view of a node.
type estimateEntry struct {
	value    float64
	variance float64
}

// EstimateTree collects the noisy hierarchy from a true count histogram
// and returns a consistent quadtree of estimated counts plus the implied
// leaf histogram (leaf values clipped at zero).
func (a *AHEAD) EstimateTree(truth *grid.Hist2D, r *rng.RNG) (*Quadtree, *grid.Hist2D, error) {
	if truth.Dom.D != a.dom.D {
		return nil, nil, fmt.Errorf("rangequery: histogram d=%d, estimator d=%d", truth.Dom.D, a.dom.D)
	}
	tree := BuildQuadtree(truth) // structure; values rewritten below
	levels := tree.Levels
	if levels < 2 {
		return tree, truth.Clone(), nil
	}

	type levelInfo struct {
		nodes   []*Node
		byCell  []int
		support []float64
		oracle  *fo.OUE
		users   float64
	}
	infos := make([]levelInfo, levels)
	for l := 1; l < levels; l++ {
		nodes := tree.Frontier(l)
		byCell := make([]int, a.dom.NumCells())
		for pos, n := range nodes {
			for y := n.Y0; y <= n.Y1; y++ {
				for x := n.X0; x <= n.X1; x++ {
					byCell[y*a.dom.D+x] = pos
				}
			}
		}
		oue, err := fo.NewOUE(maxInt(2, len(nodes)), a.eps)
		if err != nil {
			return nil, nil, err
		}
		infos[l] = levelInfo{
			nodes:   nodes,
			byCell:  byCell,
			support: make([]float64, oue.NumCategories()),
			oracle:  oue,
		}
	}

	// Collect: each user lands on a uniformly random level 1..levels-1
	// and reports their frontier node there.
	totalUsers := 0.0
	for cell, cnt := range truth.Mass {
		if cnt < 0 || cnt != math.Trunc(cnt) {
			return nil, nil, fmt.Errorf("rangequery: invalid count %v at cell %d", cnt, cell)
		}
		for k := 0; k < int(cnt); k++ {
			totalUsers++
			info := &infos[1+r.Intn(levels-1)]
			bits := info.oracle.PerturbBits(info.byCell[cell], r)
			if err := info.oracle.AccumulateBits(bits, info.support); err != nil {
				return nil, nil, err
			}
			info.users++
		}
	}
	if totalUsers == 0 {
		return nil, nil, fmt.Errorf("rangequery: no users")
	}

	// Per-level unbiased estimates (count units) with OUE variance
	// 4e^ε/(n_ℓ(e^ε−1)²) per frequency, appended to each node's list.
	entries := map[*Node][]estimateEntry{}
	ee := math.Exp(a.eps)
	for l := 1; l < levels; l++ {
		info := &infos[l]
		if info.users == 0 {
			continue
		}
		freqs, err := info.oracle.EstimateBits(info.support, info.users)
		if err != nil {
			return nil, nil, err
		}
		varCount := 4 * ee / (info.users * (ee - 1) * (ee - 1)) * totalUsers * totalUsers
		for pos, n := range info.nodes {
			entries[n] = append(entries[n], estimateEntry{
				value:    freqs[pos] * totalUsers,
				variance: varCount,
			})
		}
	}

	// Bottom-up: each node's own entries merge by inverse variance, then
	// combine with the children's reconciled sum.
	est := map[*Node]float64{}
	variance := map[*Node]float64{}
	var up func(n *Node) (float64, float64)
	up = func(n *Node) (float64, float64) {
		own, ownVar := mergeEntries(entries[n])
		if n.isLeaf() {
			if math.IsInf(ownVar, 1) {
				// No level saw this leaf (possible only when every user
				// missed its levels): fall back to zero with huge
				// variance so siblings dominate.
				own = 0
			}
			est[n], variance[n] = own, ownVar
			return own, ownVar
		}
		var childSum, childVar float64
		for _, c := range n.Children {
			v, cv := up(c)
			childSum += v
			childVar += cv
		}
		val, vr := combineTwo(own, ownVar, childSum, childVar)
		est[n], variance[n] = val, vr
		return val, vr
	}
	up(tree.Root)
	est[tree.Root] = totalUsers // the population size is public

	// Top-down consistency: distribute parent-child mismatch evenly.
	var down func(n *Node)
	down = func(n *Node) {
		if n.isLeaf() {
			return
		}
		childSum := 0.0
		for _, c := range n.Children {
			childSum += est[c]
		}
		adj := (est[n] - childSum) / float64(len(n.Children))
		for _, c := range n.Children {
			est[c] += adj
			down(c)
		}
	}
	down(tree.Root)

	var write func(n *Node)
	write = func(n *Node) {
		n.Value = est[n]
		for _, c := range n.Children {
			write(c)
		}
	}
	write(tree.Root)

	leafHist := grid.NewHist(a.dom)
	for _, n := range tree.Leaves() {
		v := est[n]
		if v < 0 {
			v = 0
		}
		for y := n.Y0; y <= n.Y1; y++ {
			for x := n.X0; x <= n.X1; x++ {
				leafHist.Mass[y*a.dom.D+x] = v
			}
		}
	}
	return tree, leafHist, nil
}

// mergeEntries inverse-variance averages a node's per-level estimates;
// an empty list yields (0, +Inf).
func mergeEntries(es []estimateEntry) (float64, float64) {
	if len(es) == 0 {
		return 0, math.Inf(1)
	}
	wSum, acc := 0.0, 0.0
	for _, e := range es {
		if e.variance <= 0 {
			return e.value, 0
		}
		w := 1 / e.variance
		wSum += w
		acc += w * e.value
	}
	return acc / wSum, 1 / wSum
}

// combineTwo inverse-variance combines two estimates, tolerating infinite
// variances (missing information).
func combineTwo(a, av, b, bv float64) (float64, float64) {
	switch {
	case math.IsInf(av, 1) && math.IsInf(bv, 1):
		return (a + b) / 2, av
	case math.IsInf(av, 1):
		return b, bv
	case math.IsInf(bv, 1):
		return a, av
	case av == 0:
		return a, 0
	case bv == 0:
		return b, 0
	default:
		wa, wb := 1/av, 1/bv
		return (wa*a + wb*b) / (wa + wb), 1 / (wa + wb)
	}
}

// EstimateHist satisfies the harness Estimator contract: it returns the
// normalised leaf histogram.
func (a *AHEAD) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	_, leaves, err := a.EstimateTree(truth, r)
	if err != nil {
		return nil, err
	}
	return leaves.Normalize(), nil
}
