package rangequery

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// AHEAD is an adaptive-hierarchical-decomposition estimator in the style
// of Du et al. (CCS 2021), built on the quadtree: the user population is
// split evenly across hierarchy levels, each user reports the id of their
// ancestor node at the assigned level through OUE under the full ε (user
// partitioning, not budget splitting), and the per-level estimates are
// reconciled by inverse-variance weighted averaging bottom-up followed by
// a top-down consistency adjustment (Hay-style), so every parent equals
// the sum of its children.
//
// It answers range queries through the quadtree cover, which is where the
// hierarchy beats flat frequency oracles: a large rectangle is a handful
// of high-level nodes instead of hundreds of noisy cells.
//
// Because the quadtree of a non-power-of-two grid has leaves at different
// depths, "level ℓ" means the frontier at depth ℓ: nodes at depth ℓ plus
// any leaf that bottomed out earlier. A shallow leaf can therefore
// receive estimates from several levels; they are merged by inverse-
// variance weighting.
type AHEAD struct {
	dom    grid.Domain
	eps    float64
	levels int
	// infos[ℓ] (ℓ = 1..levels-1) is the frontier assignment of level ℓ:
	// the quadtree structure depends only on d, so the per-level node
	// lists, cell→frontier-position maps and OUE oracles are fixed at
	// construction and shared by every report and decode.
	infos []levelAssign
}

// levelAssign is one hierarchy level's fixed reporting assignment.
type levelAssign struct {
	nodes  []*Node // template frontier, deterministic order
	byCell []int   // cell index → frontier position
	oracle *fo.OUE
}

// NewAHEAD builds the estimator. The quadtree structure, per-level
// frontiers and OUE oracles are precomputed here — they depend only on
// the grid side, never on the data.
func NewAHEAD(dom grid.Domain, eps float64) (*AHEAD, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("rangequery: invalid epsilon %v", eps)
	}
	a := &AHEAD{dom: dom, eps: eps}
	tmpl := BuildQuadtree(grid.NewHist(dom))
	a.levels = tmpl.Levels
	if a.levels >= 2 {
		a.infos = make([]levelAssign, a.levels)
		for l := 1; l < a.levels; l++ {
			nodes := tmpl.Frontier(l)
			byCell := make([]int, dom.NumCells())
			for pos, n := range nodes {
				for y := n.Y0; y <= n.Y1; y++ {
					for x := n.X0; x <= n.X1; x++ {
						byCell[y*dom.D+x] = pos
					}
				}
			}
			oue, err := fo.NewOUE(maxInt(2, len(nodes)), eps)
			if err != nil {
				return nil, err
			}
			a.infos[l] = levelAssign{nodes: nodes, byCell: byCell, oracle: oue}
		}
	}
	return a, nil
}

// Name returns the estimator's display name.
func (a *AHEAD) Name() string { return "AHEAD" }

// estimateEntry is one level's noisy view of a node.
type estimateEntry struct {
	value    float64
	variance float64
}

// Scheme implements fo.Reporter: the report format is fixed by the grid
// side (which determines the hierarchy) and the budget.
func (a *AHEAD) Scheme() string {
	return fmt.Sprintf("rangequery/ahead d=%d eps=%g", a.dom.D, a.eps)
}

// NumInputs implements fo.Reporter.
func (a *AHEAD) NumInputs() int { return a.dom.NumCells() }

// ReportShape implements fo.Reporter: plane 0 counts users per hierarchy
// level (levels−1 slots), and plane ℓ (ℓ ≥ 1) is level ℓ's OUE support
// vector over its frontier nodes. Each report touches plane 0 and
// exactly one support plane, so per-level user counts and supports merge
// across shards like any other aggregate.
func (a *AHEAD) ReportShape() []int {
	if a.levels < 2 {
		return []int{0}
	}
	shape := make([]int, a.levels)
	shape[0] = a.levels - 1
	for l := 1; l < a.levels; l++ {
		shape[l] = a.infos[l].oracle.NumCategories()
	}
	return shape
}

// Report implements fo.Reporter: the user lands on a uniformly random
// hierarchy level and reports their frontier node there through OUE
// under the full ε — the identical draw stream the monolithic collect
// loop has always consumed.
func (a *AHEAD) Report(input int, r *rng.RNG) (fo.Report, error) {
	if a.levels < 2 {
		return fo.Report{}, fmt.Errorf("rangequery: %d-level hierarchy has no report scheme", a.levels)
	}
	if input < 0 || input >= a.dom.NumCells() {
		return fo.Report{}, fmt.Errorf("rangequery: input cell %d outside [0, %d)", input, a.dom.NumCells())
	}
	l := 1 + r.Intn(a.levels-1)
	info := &a.infos[l]
	bits := info.oracle.PerturbBits(info.byCell[input], r)
	set := make([]int, 0, 4)
	for j, b := range bits {
		if b {
			set = append(set, j)
		}
	}
	planes := make([][]int, a.levels)
	planes[0] = []int{l - 1}
	planes[l] = set
	return fo.Report{Planes: planes}, nil
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (a *AHEAD) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(a) }

// EstimateTree collects the noisy hierarchy from a true count histogram
// and returns a consistent quadtree of estimated counts plus the implied
// leaf histogram (leaf values clipped at zero). It is a thin wrapper
// over the report lifecycle: accumulate every user's report into one
// aggregate, then decode it.
func (a *AHEAD) EstimateTree(truth *grid.Hist2D, r *rng.RNG) (*Quadtree, *grid.Hist2D, error) {
	if truth.Dom.D != a.dom.D {
		return nil, nil, fmt.Errorf("rangequery: histogram d=%d, estimator d=%d", truth.Dom.D, a.dom.D)
	}
	if a.levels < 2 {
		return BuildQuadtree(truth), truth.Clone(), nil
	}
	agg := a.NewAggregate()
	if err := fo.Accumulate(a, agg, truth.Mass, r); err != nil {
		return nil, nil, err
	}
	return a.EstimateTreeFromAggregate(agg)
}

// EstimateTreeFromAggregate decodes an accumulated aggregate (one shard
// or a merge of many) into a consistent quadtree of estimated counts
// plus the implied leaf histogram. Every call builds a fresh tree, so
// decodes of a shared mechanism never race on node values.
func (a *AHEAD) EstimateTreeFromAggregate(agg *fo.Aggregate) (*Quadtree, *grid.Hist2D, error) {
	if err := agg.Compatible(a); err != nil {
		return nil, nil, fmt.Errorf("rangequery: %w", err)
	}
	if a.levels < 2 {
		return nil, nil, fmt.Errorf("rangequery: %d-level hierarchy has no report scheme", a.levels)
	}
	totalUsers := agg.N
	if totalUsers == 0 {
		return nil, nil, fmt.Errorf("rangequery: no users")
	}
	tree := BuildQuadtree(grid.NewHist(a.dom)) // structure; values written below
	levels := a.levels

	// The decode walks the fresh tree's nodes; Frontier order is
	// deterministic, so fresh frontier position pos corresponds to the
	// template node a.infos[l].nodes[pos] the supports were counted over.
	frontiers := make([][]*Node, levels)
	for l := 1; l < levels; l++ {
		frontiers[l] = tree.Frontier(l)
	}

	// Per-level unbiased estimates (count units) with OUE variance
	// 4e^ε/(n_ℓ(e^ε−1)²) per frequency, appended to each node's list.
	entries := map[*Node][]estimateEntry{}
	ee := math.Exp(a.eps)
	for l := 1; l < levels; l++ {
		info := &a.infos[l]
		users := agg.Planes[0][l-1]
		if users == 0 {
			continue
		}
		freqs, err := info.oracle.EstimateBits(agg.Planes[l], users)
		if err != nil {
			return nil, nil, err
		}
		varCount := 4 * ee / (users * (ee - 1) * (ee - 1)) * totalUsers * totalUsers
		for pos, n := range frontiers[l] {
			entries[n] = append(entries[n], estimateEntry{
				value:    freqs[pos] * totalUsers,
				variance: varCount,
			})
		}
	}

	// Bottom-up: each node's own entries merge by inverse variance, then
	// combine with the children's reconciled sum.
	est := map[*Node]float64{}
	variance := map[*Node]float64{}
	var up func(n *Node) (float64, float64)
	up = func(n *Node) (float64, float64) {
		own, ownVar := mergeEntries(entries[n])
		if n.isLeaf() {
			if math.IsInf(ownVar, 1) {
				// No level saw this leaf (possible only when every user
				// missed its levels): fall back to zero with huge
				// variance so siblings dominate.
				own = 0
			}
			est[n], variance[n] = own, ownVar
			return own, ownVar
		}
		var childSum, childVar float64
		for _, c := range n.Children {
			v, cv := up(c)
			childSum += v
			childVar += cv
		}
		val, vr := combineTwo(own, ownVar, childSum, childVar)
		est[n], variance[n] = val, vr
		return val, vr
	}
	up(tree.Root)
	est[tree.Root] = totalUsers // the population size is public

	// Top-down consistency: distribute parent-child mismatch evenly.
	var down func(n *Node)
	down = func(n *Node) {
		if n.isLeaf() {
			return
		}
		childSum := 0.0
		for _, c := range n.Children {
			childSum += est[c]
		}
		adj := (est[n] - childSum) / float64(len(n.Children))
		for _, c := range n.Children {
			est[c] += adj
			down(c)
		}
	}
	down(tree.Root)

	var write func(n *Node)
	write = func(n *Node) {
		n.Value = est[n]
		for _, c := range n.Children {
			write(c)
		}
	}
	write(tree.Root)

	leafHist := grid.NewHist(a.dom)
	for _, n := range tree.Leaves() {
		v := est[n]
		if v < 0 {
			v = 0
		}
		for y := n.Y0; y <= n.Y1; y++ {
			for x := n.X0; x <= n.X1; x++ {
				leafHist.Mass[y*a.dom.D+x] = v
			}
		}
	}
	return tree, leafHist, nil
}

// mergeEntries inverse-variance averages a node's per-level estimates;
// an empty list yields (0, +Inf).
func mergeEntries(es []estimateEntry) (float64, float64) {
	if len(es) == 0 {
		return 0, math.Inf(1)
	}
	wSum, acc := 0.0, 0.0
	for _, e := range es {
		if e.variance <= 0 {
			return e.value, 0
		}
		w := 1 / e.variance
		wSum += w
		acc += w * e.value
	}
	return acc / wSum, 1 / wSum
}

// combineTwo inverse-variance combines two estimates, tolerating infinite
// variances (missing information).
func combineTwo(a, av, b, bv float64) (float64, float64) {
	switch {
	case math.IsInf(av, 1) && math.IsInf(bv, 1):
		return (a + b) / 2, av
	case math.IsInf(av, 1):
		return b, bv
	case math.IsInf(bv, 1):
		return a, av
	case av == 0:
		return a, 0
	case bv == 0:
		return b, 0
	default:
		wa, wb := 1/av, 1/bv
		return (wa*a + wb*b) / (wa + wb), 1 / (wa + wb)
	}
}

// EstimateFromAggregate decodes an accumulated aggregate into the
// normalised leaf histogram — the estimator stage of the report
// lifecycle.
func (a *AHEAD) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	_, leaves, err := a.EstimateTreeFromAggregate(agg)
	if err != nil {
		return nil, err
	}
	return leaves.Normalize(), nil
}

// EstimateHist satisfies the harness Estimator contract: it returns the
// normalised leaf histogram.
func (a *AHEAD) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	_, leaves, err := a.EstimateTree(truth, r)
	if err != nil {
		return nil, err
	}
	return leaves.Normalize(), nil
}
