package rangequery

import (
	"fmt"

	"dpspatial/internal/grid"
)

// Node is one quadtree region with an aggregated value.
type Node struct {
	X0, Y0, X1, Y1 int // inclusive cell bounds
	Value          float64
	Children       []*Node // nil for leaves
	Level          int     // 0 = root
}

func (n *Node) isLeaf() bool { return len(n.Children) == 0 }

func (n *Node) contains(q Query) bool {
	return q.X0 <= n.X0 && n.X1 <= q.X1 && q.Y0 <= n.Y0 && n.Y1 <= q.Y1
}

func (n *Node) overlaps(q Query) bool {
	return n.X0 <= q.X1 && q.X0 <= n.X1 && n.Y0 <= q.Y1 && q.Y0 <= n.Y1
}

// Quadtree is a hierarchical decomposition of a d×d grid: each internal
// node splits its rectangle into up to four halves until single cells
// remain. Arbitrary d is supported via floor/ceil splits.
type Quadtree struct {
	Root   *Node
	D      int
	Levels int
}

// BuildQuadtree aggregates a histogram into a quadtree whose leaf values
// are cell masses and whose internal values are exact subtree sums.
func BuildQuadtree(h *grid.Hist2D) *Quadtree {
	d := h.Dom.D
	t := &Quadtree{D: d}
	t.Root = t.build(h, 0, 0, d-1, d-1, 0)
	return t
}

func (t *Quadtree) build(h *grid.Hist2D, x0, y0, x1, y1, level int) *Node {
	if level+1 > t.Levels {
		t.Levels = level + 1
	}
	n := &Node{X0: x0, Y0: y0, X1: x1, Y1: y1, Level: level}
	if x0 == x1 && y0 == y1 {
		n.Value = h.Mass[y0*t.D+x0]
		return n
	}
	mx := (x0 + x1) / 2
	my := (y0 + y1) / 2
	type span struct{ a, b int }
	xs := []span{{x0, mx}}
	if mx+1 <= x1 {
		xs = append(xs, span{mx + 1, x1})
	}
	ys := []span{{y0, my}}
	if my+1 <= y1 {
		ys = append(ys, span{my + 1, y1})
	}
	for _, sy := range ys {
		for _, sx := range xs {
			child := t.build(h, sx.a, sy.a, sx.b, sy.b, level+1)
			n.Children = append(n.Children, child)
			n.Value += child.Value
		}
	}
	return n
}

// Cover returns the minimal set of maximal nodes whose union is exactly
// the query rectangle — the HIO-style range decomposition.
func (t *Quadtree) Cover(q Query) ([]*Node, error) {
	if err := q.Validate(t.D); err != nil {
		return nil, err
	}
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if !n.overlaps(q) {
			return
		}
		if n.contains(q) || n.isLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out, nil
}

// QueryValue answers a range query by summing the covering nodes' values
// — identical to Answer on the source histogram for an exact tree, and
// the decomposition the AHEAD estimator answers through.
func (t *Quadtree) QueryValue(q Query) (float64, error) {
	nodes, err := t.Cover(q)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, n := range nodes {
		total += n.Value
	}
	return total, nil
}

// NodesAtLevel returns the nodes of one level in deterministic order.
func (t *Quadtree) NodesAtLevel(level int) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Level == level {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Frontier returns the depth-ℓ frontier: nodes at level ℓ plus leaves
// that bottomed out above ℓ. The frontiers partition the grid exactly at
// every depth, which is what the hierarchical estimators report over.
func (t *Quadtree) Frontier(level int) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Level == level || (n.isLeaf() && n.Level < level) {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Leaves returns every leaf (single-cell) node.
func (t *Quadtree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.isLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Validate checks the parent-sum invariant within tol.
func (t *Quadtree) Validate(tol float64) error {
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.isLeaf() {
			return nil
		}
		sum := 0.0
		for _, c := range n.Children {
			sum += c.Value
		}
		if diff := sum - n.Value; diff > tol || diff < -tol {
			return fmt.Errorf("rangequery: node [%d,%d]x[%d,%d] value %v != children sum %v",
				n.X0, n.X1, n.Y0, n.Y1, n.Value, sum)
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root)
}
