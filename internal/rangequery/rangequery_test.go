package rangequery

import (
	"math"
	"testing"
	"testing/quick"

	"dpspatial/internal/baselines"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
)

func testDomain(t *testing.T, d int) grid.Domain {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func randomHist(t *testing.T, d int, seed uint64) *grid.Hist2D {
	t.Helper()
	h := grid.NewHist(testDomain(t, d))
	r := rng.New(seed)
	for i := range h.Mass {
		h.Mass[i] = float64(r.Intn(100))
	}
	return h
}

func TestQueryValidate(t *testing.T) {
	good := Query{X0: 0, Y0: 0, X1: 2, Y1: 2}
	if err := good.Validate(3); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Query{
		{X0: -1, Y0: 0, X1: 1, Y1: 1},
		{X0: 0, Y0: 0, X1: 3, Y1: 1},
		{X0: 2, Y0: 0, X1: 1, Y1: 1},
		{X0: 0, Y0: 2, X1: 1, Y1: 1},
	} {
		if err := bad.Validate(3); err == nil {
			t.Fatalf("query %+v accepted", bad)
		}
	}
	if good.Area() != 9 {
		t.Fatalf("area %d", good.Area())
	}
}

func TestAnswerSums(t *testing.T) {
	h := grid.NewHist(testDomain(t, 3))
	for i := range h.Mass {
		h.Mass[i] = float64(i)
	}
	got, err := Answer(h, Query{X0: 0, Y0: 0, X1: 2, Y1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 36 {
		t.Fatalf("full-domain answer %v, want 36", got)
	}
	got, err = Answer(h, Query{X0: 1, Y0: 1, X1: 2, Y1: 2})
	if err != nil {
		t.Fatal(err)
	}
	// cells (1,1)=4, (2,1)=5, (1,2)=7, (2,2)=8
	if got != 24 {
		t.Fatalf("sub-range answer %v, want 24", got)
	}
}

func TestQuadtreeInvariants(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5, 8, 13} {
		h := randomHist(t, d, uint64(d))
		tree := BuildQuadtree(h)
		if err := tree.Validate(1e-9); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if math.Abs(tree.Root.Value-h.Total()) > 1e-9 {
			t.Fatalf("d=%d: root %v, total %v", d, tree.Root.Value, h.Total())
		}
		leaves := tree.Leaves()
		if len(leaves) != d*d {
			t.Fatalf("d=%d: %d leaves", d, len(leaves))
		}
	}
}

func TestFrontierPartitionsGrid(t *testing.T) {
	for _, d := range []int{3, 5, 8} {
		h := randomHist(t, d, uint64(100+d))
		tree := BuildQuadtree(h)
		for l := 1; l < tree.Levels; l++ {
			covered := make([]int, d*d)
			for _, n := range tree.Frontier(l) {
				for y := n.Y0; y <= n.Y1; y++ {
					for x := n.X0; x <= n.X1; x++ {
						covered[y*d+x]++
					}
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("d=%d level %d: cell %d covered %d times", d, l, i, c)
				}
			}
		}
	}
}

func TestQuadtreeQueryMatchesDirectAnswer(t *testing.T) {
	for _, d := range []int{3, 6, 9} {
		h := randomHist(t, d, uint64(7*d))
		tree := BuildQuadtree(h)
		r := rng.New(uint64(d))
		qs, err := RandomWorkload(d, 50, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			want, err := Answer(h, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tree.QueryValue(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("d=%d query %+v: tree %v, direct %v", d, q, got, want)
			}
		}
	}
}

func TestCoverIsMinimalForFullDomain(t *testing.T) {
	h := randomHist(t, 8, 1)
	tree := BuildQuadtree(h)
	nodes, err := tree.Cover(Query{X0: 0, Y0: 0, X1: 7, Y1: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0] != tree.Root {
		t.Fatalf("full-domain cover has %d nodes", len(nodes))
	}
}

func TestRandomWorkloadBounds(t *testing.T) {
	r := rng.New(5)
	qs, err := RandomWorkload(10, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RandomWorkload(0, 1, r); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := RandomWorkload(5, 0, r); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestMSEZeroForIdentical(t *testing.T) {
	h := randomHist(t, 5, 9)
	r := rng.New(11)
	qs, err := RandomWorkload(5, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	mse, err := MSE(h, h, qs)
	if err != nil {
		t.Fatal(err)
	}
	if mse != 0 {
		t.Fatalf("self MSE %v", mse)
	}
	if _, err := MSE(h, h, nil); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestAHEADTreeConsistentAndNormalised(t *testing.T) {
	dom := testDomain(t, 6)
	a, err := NewAHEAD(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 1}, 4000)
	truth.Set(geom.Cell{X: 4, Y: 4}, 6000)
	tree, leaves, err := a.EstimateTree(truth, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	// Consistency: parents equal children sums after the top-down pass.
	if err := tree.Validate(1e-6); err != nil {
		t.Fatal(err)
	}
	// Root is the public user count.
	if math.Abs(tree.Root.Value-10000) > 1e-6 {
		t.Fatalf("root %v, want 10000", tree.Root.Value)
	}
	if leaves.Total() <= 0 {
		t.Fatal("leaf histogram empty")
	}
}

func TestAHEADRecoversWithLargeBudget(t *testing.T) {
	dom := testDomain(t, 4)
	a, err := NewAHEAD(dom, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 0, Y: 0}, 30000)
	truth.Set(geom.Cell{X: 3, Y: 3}, 10000)
	est, err := a.EstimateHist(truth, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Clone().Normalize()
	tv, err := grid.TotalVariation(est, want)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.15 {
		t.Fatalf("high-budget AHEAD recovery TV %v", tv)
	}
}

func TestAHEADSingleCellGrid(t *testing.T) {
	dom := testDomain(t, 1)
	a, err := NewAHEAD(dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Mass[0] = 100
	tree, leaves, err := a.EstimateTree(truth, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Value != 100 || leaves.Mass[0] != 100 {
		t.Fatalf("d=1 passthrough failed: %v / %v", tree.Root.Value, leaves.Mass[0])
	}
}

func TestAHEADErrors(t *testing.T) {
	dom := testDomain(t, 4)
	if _, err := NewAHEAD(dom, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	a, err := NewAHEAD(dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := grid.NewHist(testDomain(t, 5))
	if _, _, err := a.EstimateTree(other, rng.New(1)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	empty := grid.NewHist(dom)
	if _, _, err := a.EstimateTree(empty, rng.New(1)); err == nil {
		t.Fatal("zero users accepted")
	}
	bad := grid.NewHist(dom)
	bad.Mass[0] = -3
	if _, _, err := a.EstimateTree(bad, rng.New(1)); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestHierarchyBeatsFlatCFOOnLargeRanges(t *testing.T) {
	// The reason hierarchies exist: on large-selectivity queries the
	// quadtree answers through a few high-level nodes while the flat
	// oracle sums hundreds of noisy cells. Compare range MSE, in count
	// units, on large queries.
	dom := testDomain(t, 8)
	truth := grid.NewHist(dom)
	r := rng.New(19)
	for i := range truth.Mass {
		truth.Mass[i] = float64(50 + r.Intn(200))
	}

	a, err := NewAHEAD(dom, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := a.EstimateTree(truth, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}

	cfo, err := baselines.NewCFO(dom, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfoEst, err := cfo.EstimateHist(truth, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	// Scale the CFO's normalised estimate back to counts.
	total := truth.Total()
	for i := range cfoEst.Mass {
		cfoEst.Mass[i] *= total
	}

	// Large queries: at least half the domain.
	queries := []Query{
		{X0: 0, Y0: 0, X1: 7, Y1: 3},
		{X0: 0, Y0: 0, X1: 3, Y1: 7},
		{X0: 2, Y0: 2, X1: 7, Y1: 7},
		{X0: 0, Y0: 2, X1: 7, Y1: 7},
	}
	var mseTree, mseCFO float64
	for _, q := range queries {
		want, err := Answer(truth, q)
		if err != nil {
			t.Fatal(err)
		}
		gotTree, err := tree.QueryValue(q)
		if err != nil {
			t.Fatal(err)
		}
		gotCFO, err := Answer(cfoEst, q)
		if err != nil {
			t.Fatal(err)
		}
		mseTree += (want - gotTree) * (want - gotTree)
		mseCFO += (want - gotCFO) * (want - gotCFO)
	}
	if mseTree >= mseCFO {
		t.Fatalf("hierarchy MSE %v not below flat CFO %v", mseTree, mseCFO)
	}
}

func TestQuickCoverAlwaysExactPartition(t *testing.T) {
	h := randomHist(t, 7, 31)
	tree := BuildQuadtree(h)
	f := func(a, b, c, d uint8) bool {
		x0, x1 := int(a%7), int(b%7)
		y0, y1 := int(c%7), int(d%7)
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		q := Query{X0: x0, Y0: y0, X1: x1, Y1: y1}
		nodes, err := tree.Cover(q)
		if err != nil {
			return false
		}
		// Union of nodes covers each query cell exactly once.
		seen := map[[2]int]int{}
		for _, n := range nodes {
			for y := n.Y0; y <= n.Y1; y++ {
				for x := n.X0; x <= n.X1; x++ {
					seen[[2]int{x, y}]++
				}
			}
		}
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				if seen[[2]int{x, y}] != 1 {
					return false
				}
				delete(seen, [2]int{x, y})
			}
		}
		return len(seen) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDAMEstimateAnswersRangeQueries(t *testing.T) {
	// Integration: the paper's composition claim — run DAM, answer range
	// queries over its estimate, verify the error is bounded and better
	// than uniform guessing.
	dom := testDomain(t, 8)
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 1}, 20000)
	truth.Set(geom.Cell{X: 6, Y: 6}, 20000)
	m, err := sam.NewDAM(dom, 4)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateHist(truth, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	normTruth := truth.Clone().Normalize()
	r := rng.New(41)
	qs, err := RandomWorkload(8, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	mseDAM, err := MSE(normTruth, est, qs)
	if err != nil {
		t.Fatal(err)
	}
	uniform := grid.NewHist(dom).Normalize()
	mseUniform, err := MSE(normTruth, uniform, qs)
	if err != nil {
		t.Fatal(err)
	}
	if mseDAM >= mseUniform {
		t.Fatalf("DAM range MSE %v not below uniform baseline %v", mseDAM, mseUniform)
	}
}
