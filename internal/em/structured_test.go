package em

import (
	"math"
	"testing"

	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// randomUniformSparse builds a valid random uniform-plus-sparse channel.
func randomUniformSparse(t *testing.T, r *rng.RNG, in, out int) *fo.UniformSparse {
	t.Helper()
	b := fo.NewUniformSparseBuilder(in, out)
	for i := 0; i < in; i++ {
		nnz := r.Intn(out/2 + 1)
		cols := r.Perm(out)[:nnz]
		w0 := 0.1 + r.Float64()
		raw := make([]float64, nnz)
		total := w0 * float64(out-nnz)
		for k := range raw {
			raw[k] = r.Float64() * 3
			total += raw[k]
		}
		idx := make([]int, nnz)
		val := make([]float64, nnz)
		for k, c := range cols {
			idx[k] = c
			val[k] = raw[k] / total
		}
		b.Row(w0/total, idx, val)
	}
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func randomCounts(r *rng.RNG, out int) []float64 {
	counts := make([]float64, out)
	for j := range counts {
		if r.Float64() < 0.3 {
			continue // keep some zeros: the M-step guards must agree too
		}
		counts[j] = float64(r.Intn(500))
	}
	counts[r.Intn(out)] += 100 // guarantee mass
	return counts
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestEstimateStructuredMatchesDense is the dense-vs-structured
// agreement property: for random uniform-plus-sparse channels and random
// counts, the structured O(In + nnz) EM kernel must reproduce the dense
// kernel's estimate to within 1e-9.
func TestEstimateStructuredMatchesDense(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 15; trial++ {
		in, out := 3+r.Intn(25), 3+r.Intn(35)
		u := randomUniformSparse(t, r, in, out)
		counts := randomCounts(r, out)
		estDense, err := Estimate(u.Dense(), counts, nil)
		if err != nil {
			t.Fatal(err)
		}
		estSparse, err := Estimate(u, counts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(estDense, estSparse); d > 1e-9 {
			t.Fatalf("trial %d: structured EM diverges from dense by %v", trial, d)
		}
	}
}

// TestEstimateTwoValueMatchesDense: the GRR closed form against its
// dense matrix, with and without smoothing.
func TestEstimateTwoValueMatchesDense(t *testing.T) {
	r := rng.New(43)
	for _, eps := range []float64{0.5, 1, 3} {
		g, err := fo.NewGRR(12, eps)
		if err != nil {
			t.Fatal(err)
		}
		counts := randomCounts(r, 12)
		for _, opts := range []*Options{nil, {Smoothing: Smoother1D()}} {
			estDense, err := Estimate(g.Channel(), counts, opts)
			if err != nil {
				t.Fatal(err)
			}
			estTwo, err := Estimate(g.Linear(), counts, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(estDense, estTwo); d > 1e-9 {
				t.Fatalf("eps=%v: two-value EM diverges from dense by %v", eps, d)
			}
		}
	}
}

// TestEstimateParallelByteIdentical: the block-parallel engine must
// produce exactly the same bytes for every worker count, on dense and
// structured channels, including channels spanning several row blocks.
func TestEstimateParallelByteIdentical(t *testing.T) {
	r := rng.New(47)
	const in, out = 700, 40 // > 2 blocks of 256 rows
	u := randomUniformSparse(t, r, in, out)
	counts := randomCounts(r, out)
	channels := map[string]fo.LinearChannel{
		"structured": u,
		"dense":      u.Dense(),
	}
	for name, ch := range channels {
		var ref []float64
		for _, workers := range []int{2, 3, 5, 16} {
			est, err := Estimate(ch, counts, &Options{Workers: workers, MaxIter: 60})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = est
				continue
			}
			for i := range ref {
				if est[i] != ref[i] {
					t.Fatalf("%s: workers=%d differs from workers=2 at %d: %v != %v",
						name, workers, i, est[i], ref[i])
				}
			}
		}
	}
}

// TestEstimateParallelMatchesSequential: the parallel engine re-orders
// float additions, so it need not be bitwise equal to the sequential
// engine — but it must agree to well beyond estimation accuracy.
func TestEstimateParallelMatchesSequential(t *testing.T) {
	r := rng.New(53)
	u := randomUniformSparse(t, r, 600, 30)
	counts := randomCounts(r, 30)
	seq, err := Estimate(u, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Estimate(u, counts, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(seq, par); d > 1e-9 {
		t.Fatalf("parallel EM diverges from sequential by %v", d)
	}
}

// sampleCounts draws n reports from truth through the channel.
func sampleCounts(t *testing.T, ch fo.LinearChannel, truth []float64, n int, seed uint64) []float64 {
	t.Helper()
	r := rng.New(seed)
	counts := make([]float64, ch.NumOutputs())
	samplers := make([]*rng.Alias, ch.NumInputs())
	for i := range samplers {
		a, err := rng.NewAlias(ch.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		samplers[i] = a
	}
	for k := 0; k < n; k++ {
		in := rng.WeightedChoice(r, truth)
		counts[samplers[in].Draw(r)]++
	}
	return counts
}

// TestEstimateWarmStartConvergesFaster is the incremental-estimation
// regression: after merging a second shard, EM warm-started from the
// first shard's estimate must reach the same fixed point as a cold start
// in measurably fewer iterations. The channel is a GRR with an interior
// MLE so convergence is linear and iteration counts are a meaningful
// comparison (boundary MLEs converge sublinearly, where the L1-delta
// stopping rule makes iteration counts noisy for cold and warm alike).
func TestEstimateWarmStartConvergesFaster(t *testing.T) {
	g, err := fo.NewGRR(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Linear()
	r := rng.New(59)
	truth := make([]float64, 8)
	for i := range truth {
		truth[i] = 0.5 + r.Float64()
	}
	shard1 := sampleCounts(t, u, truth, 50000, 101)
	shard2 := sampleCounts(t, u, truth, 50000, 102)
	merged := make([]float64, len(shard1))
	for j := range merged {
		merged[j] = shard1[j] + shard2[j]
	}
	opts := Options{MaxIter: 100000, Tol: 1e-9}

	est1, stats1, err := EstimateWithStats(u, shard1, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats1.Converged {
		t.Fatalf("first-shard EM did not converge in %d iterations", stats1.Iterations)
	}
	cold, coldStats, err := EstimateWithStats(u, merged, &opts)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := opts
	warmOpts.Init = est1
	warm, warmStats, err := EstimateWithStats(u, merged, &warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !coldStats.Converged || !warmStats.Converged {
		t.Fatalf("EM did not converge (cold %+v, warm %+v)", coldStats, warmStats)
	}
	if warmStats.Iterations >= coldStats.Iterations {
		t.Fatalf("warm start took %d iterations, cold start %d", warmStats.Iterations, coldStats.Iterations)
	}
	if d := maxAbsDiff(cold, warm); d > 1e-6 {
		t.Fatalf("warm start fixed point diverges from cold start by %v", d)
	}
}

func TestEstimateWarmStartValidation(t *testing.T) {
	g, err := fo.NewGRR(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := []float64{10, 20, 30, 20, 10}
	if _, err := Estimate(g.Linear(), counts, &Options{Init: []float64{0.5, 0.5}}); err == nil {
		t.Fatal("wrong-length warm start accepted")
	}
	if _, err := Estimate(g.Linear(), counts, &Options{Init: []float64{0.5, -0.1, 0.2, 0.2, 0.2}}); err == nil {
		t.Fatal("negative warm start accepted")
	}
	// A warm start with zero entries must not freeze support: the floor
	// keeps every input reachable.
	est, err := Estimate(g.Linear(), counts, &Options{Init: []float64{1, 0, 0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range est {
		if v <= 0 {
			t.Fatalf("input %d frozen at %v by zero warm start", i, v)
		}
	}
}
