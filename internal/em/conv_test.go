package em

import (
	"math"
	"testing"

	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// convTestChannel builds a ConvChannel with the SEM-Geo-I kernel shape
// and the exact dense channel it replaces.
func convTestChannel(t *testing.T, d int, eps float64) (*fo.ConvChannel, *fo.Channel) {
	t.Helper()
	kern := fo.DisplacementKernel(d, func(dx, dy int) float64 {
		return math.Exp(-eps * math.Hypot(float64(dx), float64(dy)) / 2)
	})
	conv, err := fo.NewConvChannel(d, kern, nil)
	if err != nil {
		t.Fatalf("NewConvChannel: %v", err)
	}
	return conv, conv.Dense()
}

// TestEstimateConvMatchesDense: the FFT decode must agree with the exact
// dense decode to ≤ 1e-9 across grid sizes, including odd sides.
func TestEstimateConvMatchesDense(t *testing.T) {
	r := rng.New(404)
	for _, d := range []int{3, 5, 8, 11} {
		conv, dense := convTestChannel(t, d, 1.4)
		counts := randomCounts(r, conv.NumOutputs())
		opts := &Options{MaxIter: 60}
		got, err := Estimate(conv, counts, opts)
		if err != nil {
			t.Fatalf("d=%d conv estimate: %v", d, err)
		}
		want, err := Estimate(dense, counts, opts)
		if err != nil {
			t.Fatalf("d=%d dense estimate: %v", d, err)
		}
		if diff := maxAbsDiff(got, want); diff > 1e-9 {
			t.Errorf("d=%d: conv and dense EM estimates differ by %g", d, diff)
		}
	}
}

// TestEstimateConvByteIdenticalAcrossWorkers: the conv decode uses the
// global FFT sweeps for every worker count, so the output must be
// byte-identical — the collector/fleet tiers depend on it.
func TestEstimateConvByteIdenticalAcrossWorkers(t *testing.T) {
	r := rng.New(405)
	conv, _ := convTestChannel(t, 9, 0.9)
	counts := randomCounts(r, conv.NumOutputs())
	base, err := Estimate(conv, counts, &Options{MaxIter: 40, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 16} {
		got, err := Estimate(conv, counts, &Options{MaxIter: 40, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: estimate differs at %d (%v vs %v)", workers, i, got[i], base[i])
			}
		}
	}
}

// TestEstimateConvWarmStart: the warm-start path must work unchanged on
// the conv channel (the windowed/continual estimation tier relies on it).
func TestEstimateConvWarmStart(t *testing.T) {
	r := rng.New(406)
	conv, _ := convTestChannel(t, 7, 1.1)
	counts := randomCounts(r, conv.NumOutputs())
	cold, stats, err := EstimateWithStats(conv, counts, &Options{MaxIter: 200, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Skip("cold decode did not converge; warm-start comparison meaningless")
	}
	_, warmStats, err := EstimateWithStats(conv, counts, &Options{MaxIter: 200, Tol: 1e-10, Init: cold})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Iterations > stats.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warmStats.Iterations, stats.Iterations)
	}
}
