// Package em implements the PostProcess step of Algorithm 1: maximum-
// likelihood estimation of the input distribution from aggregated noisy
// reports via Expectation–Maximisation, plus the EM-with-Smoothing (EMS)
// variant of Li et al. (SIGMOD 2020) that regularises the estimate between
// iterations — in 1-D for the Square Wave baseline and in 2-D for the
// spatial mechanisms.
package em

import (
	"fmt"
	"math"

	"dpspatial/internal/fo"
)

// Options controls the EM iteration.
type Options struct {
	// MaxIter caps the number of EM iterations (default 1000).
	MaxIter int
	// Tol stops iteration when the L1 change between successive estimates
	// falls below it (default 1e-9).
	Tol float64
	// Smoothing, if non-nil, is applied to the estimate after every EM
	// step (the "S" in EMS). It must preserve total mass.
	Smoothing func(p []float64)
}

func (o *Options) withDefaults() Options {
	out := Options{MaxIter: 1000, Tol: 1e-9}
	if o != nil {
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		out.Smoothing = o.Smoothing
	}
	return out
}

// Estimate runs EM on the observed output counts under the given channel
// and returns the maximum-likelihood input distribution (normalised).
//
// Update rule: p'_i ∝ p_i · Σ_j c_j · M_ij / (Σ_k p_k · M_kj).
func Estimate(ch *fo.Channel, counts []float64, opts *Options) ([]float64, error) {
	if len(counts) != ch.Out {
		return nil, fmt.Errorf("em: %d counts for channel with %d outputs", len(counts), ch.Out)
	}
	total := 0.0
	for j, c := range counts {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("em: invalid count %v at %d", c, j)
		}
		total += c
	}
	if total <= 0 {
		return nil, fmt.Errorf("em: no reports")
	}
	o := opts.withDefaults()

	p := make([]float64, ch.In)
	uniform := 1 / float64(ch.In)
	for i := range p {
		p[i] = uniform
	}
	next := make([]float64, ch.In)
	outMix := make([]float64, ch.Out)

	for iter := 0; iter < o.MaxIter; iter++ {
		// E step: predicted output mixture under the current estimate.
		for j := range outMix {
			outMix[j] = 0
		}
		for i := 0; i < ch.In; i++ {
			pi := p[i]
			if pi == 0 {
				continue
			}
			row := ch.Row(i)
			for j, m := range row {
				outMix[j] += pi * m
			}
		}
		// M step.
		for i := 0; i < ch.In; i++ {
			row := ch.Row(i)
			acc := 0.0
			for j, m := range row {
				if counts[j] == 0 || m == 0 {
					continue
				}
				if outMix[j] > 0 {
					acc += counts[j] * m / outMix[j]
				}
			}
			next[i] = p[i] * acc / total
		}
		normalize(next)
		if o.Smoothing != nil {
			o.Smoothing(next)
			normalize(next)
		}
		delta := 0.0
		for i := range p {
			delta += math.Abs(next[i] - p[i])
		}
		copy(p, next)
		if delta < o.Tol {
			break
		}
	}
	return p, nil
}

func normalize(p []float64) {
	total := 0.0
	for _, v := range p {
		total += v
	}
	if total <= 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	for i := range p {
		p[i] /= total
	}
}

// Smoother1D returns a binomial [1,2,1]/4 smoothing kernel over a 1-D
// domain, the EMS smoothing of Li et al. Mass that would leave the domain
// at the borders stays in the border cell, so total mass is conserved
// exactly.
func Smoother1D() func(p []float64) {
	return func(p []float64) {
		n := len(p)
		if n < 3 {
			return
		}
		out := make([]float64, n)
		for i, v := range p {
			left, right := i-1, i+1
			if left < 0 {
				left = 0
			}
			if right >= n {
				right = n - 1
			}
			out[i] += v / 2
			out[left] += v / 4
			out[right] += v / 4
		}
		copy(p, out)
	}
}

// Smoother2D returns the 2-D analogue: each cell spreads its mass with a
// 3×3 binomial kernel (centre 4, edges 2, corners 1, total 16) over a d×d
// row-major grid. Out-of-grid shares stay at the source cell, conserving
// total mass exactly.
func Smoother2D(d int) func(p []float64) {
	return func(p []float64) {
		if d < 2 || len(p) != d*d {
			return
		}
		out := make([]float64, len(p))
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				v := p[y*d+x]
				if v == 0 {
					continue
				}
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						w := 4.0
						if dx != 0 {
							w /= 2
						}
						if dy != 0 {
							w /= 2
						}
						nx, ny := x+dx, y+dy
						if nx < 0 || nx >= d || ny < 0 || ny >= d {
							nx, ny = x, y // reflect leakage back to source
						}
						out[ny*d+nx] += v * w / 16
					}
				}
			}
		}
		copy(p, out)
	}
}
