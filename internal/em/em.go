// Package em implements the PostProcess step of Algorithm 1: maximum-
// likelihood estimation of the input distribution from aggregated noisy
// reports via Expectation–Maximisation, plus the EM-with-Smoothing (EMS)
// variant of Li et al. (SIGMOD 2020) that regularises the estimate between
// iterations — in 1-D for the Square Wave baseline and in 2-D for the
// spatial mechanisms.
//
// The engine consumes channels through fo.LinearChannel, so structured
// channels (uniform-plus-sparse SAM/SW rows, two-valued GRR) run each EM
// sweep in O(In + nnz) instead of the dense O(In·Out). Dense channels
// keep a bit-exact sequential path; Options.Workers > 1 selects a
// deterministic row-block parallel engine whose result is byte-identical
// for every worker count; Options.Init warm-starts the iteration from a
// previous estimate for incremental re-estimation over growing
// aggregates.
package em

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dpspatial/internal/fo"
)

// Options controls the EM iteration.
type Options struct {
	// MaxIter caps the number of EM iterations (default 1000).
	MaxIter int
	// Tol stops iteration when the L1 change between successive estimates
	// falls below it (default 1e-9).
	Tol float64
	// Smoothing, if non-nil, is applied to the estimate after every EM
	// step (the "S" in EMS). It must preserve total mass.
	Smoothing func(p []float64)
	// Init, if non-nil, warm-starts the iteration from this input
	// distribution (length NumInputs) instead of uniform. The slice is
	// copied; entries must be non-negative and are renormalised. Zero
	// entries are floored at a 1e-12 share of uniform mass so a warm
	// start can never permanently erase support the merged data calls
	// for. Warm-starting from the previous estimate after an aggregate
	// merge converges in far fewer iterations than a cold start.
	Init []float64
	// Workers selects the EM engine: values ≤ 1 run the sequential
	// engine (bit-exact with the historical implementation on dense
	// channels); values > 1 run the row-block parallel engine with that
	// many workers. The parallel engine partitions rows into fixed-size
	// blocks and combines per-block partial sums in block order, so its
	// result is byte-identical for every worker count (though it may
	// differ from the sequential engine in the last float64 bits, as any
	// re-associated summation does).
	Workers int
}

// ResolveWorkers maps the public worker-knob convention of this
// codebase (0 = all cores, n ≥ 1 = n workers) onto Options.Workers,
// whose zero value deliberately stays sequential for backward
// compatibility. Every estimation entry point that forwards a
// mechanism-level worker count should pass it through here.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Stats reports how an EM run terminated.
type Stats struct {
	// Iterations is the number of EM updates executed.
	Iterations int
	// Delta is the final L1 change between successive estimates.
	Delta float64
	// Converged reports whether iteration stopped on Tol (as opposed to
	// exhausting MaxIter).
	Converged bool
}

func (o *Options) withDefaults() Options {
	out := Options{MaxIter: 1000, Tol: 1e-9}
	if o != nil {
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		out.Smoothing = o.Smoothing
		out.Init = o.Init
		out.Workers = o.Workers
	}
	return out
}

// Estimate runs EM on the observed output counts under the given channel
// and returns the maximum-likelihood input distribution (normalised).
//
// Update rule: p'_i ∝ p_i · Σ_j c_j · M_ij / (Σ_k p_k · M_kj).
func Estimate(ch fo.LinearChannel, counts []float64, opts *Options) ([]float64, error) {
	p, _, err := EstimateWithStats(ch, counts, opts)
	return p, err
}

// EstimateWithStats is Estimate plus termination statistics — the
// iteration count is what incremental (warm-started) estimation monitors.
func EstimateWithStats(ch fo.LinearChannel, counts []float64, opts *Options) ([]float64, Stats, error) {
	in, out := ch.NumInputs(), ch.NumOutputs()
	if len(counts) != out {
		return nil, Stats{}, fmt.Errorf("em: %d counts for channel with %d outputs", len(counts), out)
	}
	total := 0.0
	for j, c := range counts {
		if c < 0 || math.IsNaN(c) {
			return nil, Stats{}, fmt.Errorf("em: invalid count %v at %d", c, j)
		}
		total += c
	}
	if total <= 0 {
		return nil, Stats{}, fmt.Errorf("em: no reports")
	}
	o := opts.withDefaults()

	p, err := initialEstimate(in, o.Init)
	if err != nil {
		return nil, Stats{}, err
	}

	var step func(p, next []float64)
	if _, ok := ch.(*fo.ConvChannel); ok {
		// The convolutional channel's Forward/Backward are already global
		// O(n log n) FFT sweeps; handing it to the row-block engine would
		// re-run a full transform once per 256-row block. The global
		// sweeps contain no scheduling-dependent reduction, so the
		// estimate is byte-identical for every Options.Workers value.
		step = linearStepper(ch, counts, total)
	} else if bc, ok := ch.(fo.BlockChannel); ok && o.Workers > 1 && in > 1 {
		step = parallelStepper(bc, counts, total, o.Workers)
	} else if dense, ok := ch.(*fo.Channel); ok {
		step = denseStepper(dense, counts, total)
	} else {
		step = linearStepper(ch, counts, total)
	}

	next := make([]float64, in)
	var stats Stats
	for iter := 0; iter < o.MaxIter; iter++ {
		step(p, next)
		normalize(next)
		if o.Smoothing != nil {
			o.Smoothing(next)
			normalize(next)
		}
		delta := 0.0
		for i := range p {
			delta += math.Abs(next[i] - p[i])
		}
		copy(p, next)
		stats.Iterations = iter + 1
		stats.Delta = delta
		if delta < o.Tol {
			stats.Converged = true
			break
		}
	}
	return p, stats, nil
}

// initialEstimate returns the starting distribution: uniform, or a
// floored and renormalised copy of init.
func initialEstimate(in int, init []float64) ([]float64, error) {
	p := make([]float64, in)
	if init == nil {
		uniform := 1 / float64(in)
		for i := range p {
			p[i] = uniform
		}
		return p, nil
	}
	if len(init) != in {
		return nil, fmt.Errorf("em: warm-start estimate has %d entries for channel with %d inputs", len(init), in)
	}
	floor := 1e-12 / float64(in)
	for i, v := range init {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("em: invalid warm-start probability %v at %d", v, i)
		}
		if v < floor {
			v = floor
		}
		p[i] = v
	}
	normalize(p)
	return p, nil
}

// denseStepper reproduces the historical sequential dense iteration bit
// for bit (same loop structure and operation order), so existing
// sequential pipelines remain byte-identical.
func denseStepper(ch *fo.Channel, counts []float64, total float64) func(p, next []float64) {
	outMix := make([]float64, ch.Out)
	return func(p, next []float64) {
		// E step: predicted output mixture under the current estimate.
		for j := range outMix {
			outMix[j] = 0
		}
		for i := 0; i < ch.In; i++ {
			pi := p[i]
			if pi == 0 {
				continue
			}
			row := ch.Row(i)
			for j, m := range row {
				outMix[j] += pi * m
			}
		}
		// M step.
		for i := 0; i < ch.In; i++ {
			row := ch.Row(i)
			acc := 0.0
			for j, m := range row {
				if counts[j] == 0 || m == 0 {
					continue
				}
				if outMix[j] > 0 {
					acc += counts[j] * m / outMix[j]
				}
			}
			next[i] = p[i] * acc / total
		}
	}
}

// linearStepper runs one EM iteration through the channel's Forward and
// Backward sweeps — O(In + Out + nnz) for structured channels.
func linearStepper(ch fo.LinearChannel, counts []float64, total float64) func(p, next []float64) {
	outMix := make([]float64, ch.NumOutputs())
	w := make([]float64, ch.NumOutputs())
	return func(p, next []float64) {
		ch.Forward(p, outMix)
		for j := range w {
			if counts[j] != 0 && outMix[j] > 0 {
				w[j] = counts[j] / outMix[j]
			} else {
				w[j] = 0
			}
		}
		ch.Backward(w, next)
		for i := range next {
			next[i] = p[i] * next[i] / total
		}
	}
}

// emBlockRows is the fixed row-block granularity of the parallel engine.
// It is a constant (not derived from the worker count), so the block
// partition — and therefore the order partial sums are combined in — is
// identical for every worker count.
const emBlockRows = 256

// parallelStepper runs both EM sweeps over fixed row blocks fanned out
// across workers. E-step partials are accumulated per block and merged
// in block order; the M step writes disjoint row ranges. Both are
// deterministic regardless of scheduling, so the estimate is
// byte-identical across worker counts.
func parallelStepper(ch fo.BlockChannel, counts []float64, total float64, workers int) func(p, next []float64) {
	in, out := ch.NumInputs(), ch.NumOutputs()
	numBlocks := (in + emBlockRows - 1) / emBlockRows
	if workers > numBlocks {
		workers = numBlocks
	}
	outMix := make([]float64, out)
	w := make([]float64, out)
	partials := make([][]float64, numBlocks)
	for b := range partials {
		partials[b] = make([]float64, out)
	}
	blockRange := func(b int) (int, int) {
		lo := b * emBlockRows
		hi := lo + emBlockRows
		if hi > in {
			hi = in
		}
		return lo, hi
	}
	runBlocks := func(f func(b int)) {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					b := int(cursor.Add(1)) - 1
					if b >= numBlocks {
						return
					}
					f(b)
				}
			}()
		}
		wg.Wait()
	}
	return func(p, next []float64) {
		// E step: per-block partial output mixtures, merged in block order.
		runBlocks(func(b int) {
			lo, hi := blockRange(b)
			buf := partials[b]
			for j := range buf {
				buf[j] = 0
			}
			ch.ForwardBlock(lo, hi, p, buf)
		})
		for j := range outMix {
			outMix[j] = 0
		}
		for b := 0; b < numBlocks; b++ {
			buf := partials[b]
			for j := range outMix {
				outMix[j] += buf[j]
			}
		}
		for j := range w {
			if counts[j] != 0 && outMix[j] > 0 {
				w[j] = counts[j] / outMix[j]
			} else {
				w[j] = 0
			}
		}
		// M step: disjoint row ranges, inherently deterministic.
		runBlocks(func(b int) {
			lo, hi := blockRange(b)
			ch.BackwardBlock(lo, hi, w, next)
		})
		for i := range next {
			next[i] = p[i] * next[i] / total
		}
	}
}

func normalize(p []float64) {
	total := 0.0
	for _, v := range p {
		total += v
	}
	if total <= 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	for i := range p {
		p[i] /= total
	}
}

// Smoother1D returns a binomial [1,2,1]/4 smoothing kernel over a 1-D
// domain, the EMS smoothing of Li et al. Mass that would leave the domain
// at the borders stays in the border cell, so total mass is conserved
// exactly.
func Smoother1D() func(p []float64) {
	return func(p []float64) {
		n := len(p)
		if n < 3 {
			return
		}
		out := make([]float64, n)
		for i, v := range p {
			left, right := i-1, i+1
			if left < 0 {
				left = 0
			}
			if right >= n {
				right = n - 1
			}
			out[i] += v / 2
			out[left] += v / 4
			out[right] += v / 4
		}
		copy(p, out)
	}
}

// Smoother2D returns the 2-D analogue: each cell spreads its mass with a
// 3×3 binomial kernel (centre 4, edges 2, corners 1, total 16) over a d×d
// row-major grid. Out-of-grid shares stay at the source cell, conserving
// total mass exactly.
func Smoother2D(d int) func(p []float64) {
	return func(p []float64) {
		if d < 2 || len(p) != d*d {
			return
		}
		out := make([]float64, len(p))
		for y := 0; y < d; y++ {
			for x := 0; x < d; x++ {
				v := p[y*d+x]
				if v == 0 {
					continue
				}
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						w := 4.0
						if dx != 0 {
							w /= 2
						}
						if dy != 0 {
							w /= 2
						}
						nx, ny := x+dx, y+dy
						if nx < 0 || nx >= d || ny < 0 || ny >= d {
							nx, ny = x, y // reflect leakage back to source
						}
						out[ny*d+nx] += v * w / 16
					}
				}
			}
		}
		copy(p, out)
	}
}
