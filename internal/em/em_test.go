package em

import (
	"math"
	"testing"

	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

func TestEstimateIdentityChannel(t *testing.T) {
	// With a noiseless channel EM must return the empirical distribution.
	ch := fo.NewChannel(3, 3)
	for i := 0; i < 3; i++ {
		ch.Set(i, i, 1)
	}
	est, err := Estimate(ch, []float64{10, 30, 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.3, 0.6}
	for i := range want {
		if math.Abs(est[i]-want[i]) > 1e-6 {
			t.Fatalf("estimate %v, want %v", est, want)
		}
	}
}

func TestEstimateRecoversThroughGRR(t *testing.T) {
	g, err := fo.NewGRR(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch := g.Channel()
	truth := []float64{0.4, 0.25, 0.2, 0.1, 0.05}
	// Use exact expected counts: EM must invert the channel closely.
	expected, err := ch.Apply(truth)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, len(expected))
	for j, e := range expected {
		counts[j] = e * 1e6
	}
	est, err := Estimate(ch, counts, &Options{MaxIter: 5000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.01 {
			t.Fatalf("estimate %v deviates from truth %v", est, truth)
		}
	}
}

func TestEstimateSampledReports(t *testing.T) {
	g, err := fo.NewGRR(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch := g.Channel()
	truth := []float64{0.55, 0.25, 0.15, 0.05}
	r := rng.New(9)
	samplers, err := ch.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		in := rng.WeightedChoice(r, truth)
		counts[samplers[in].Draw(r)]++
	}
	est, err := Estimate(ch, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.02 {
			t.Fatalf("estimate %v deviates from truth %v", est, truth)
		}
	}
}

func TestEstimateLikelihoodNonDecreasing(t *testing.T) {
	// Run EM step by step and confirm log-likelihood never decreases (a
	// core EM invariant).
	g, err := fo.NewGRR(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch := g.Channel()
	r := rng.New(13)
	counts := make([]float64, 6)
	for j := range counts {
		counts[j] = float64(10 + r.Intn(1000))
	}
	logLik := func(p []float64) float64 {
		ll := 0.0
		for j := 0; j < ch.Out; j++ {
			mix := 0.0
			for i := 0; i < ch.In; i++ {
				mix += p[i] * ch.At(i, j)
			}
			ll += counts[j] * math.Log(mix)
		}
		return ll
	}
	prevLL := math.Inf(-1)
	for iters := 1; iters <= 50; iters += 7 {
		est, err := Estimate(ch, counts, &Options{MaxIter: iters, Tol: 0})
		if err != nil {
			t.Fatal(err)
		}
		ll := logLik(est)
		if ll < prevLL-1e-7 {
			t.Fatalf("likelihood decreased: %v -> %v at %d iters", prevLL, ll, iters)
		}
		prevLL = ll
	}
}

func TestEstimateOutputIsDistribution(t *testing.T) {
	g, _ := fo.NewGRR(8, 0.5)
	ch := g.Channel()
	counts := make([]float64, 8)
	counts[3] = 100
	est, err := Estimate(ch, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range est {
		if v < 0 {
			t.Fatalf("negative probability %v", est)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("estimate total %v", total)
	}
}

func TestEstimateErrors(t *testing.T) {
	g, _ := fo.NewGRR(3, 1)
	ch := g.Channel()
	if _, err := Estimate(ch, []float64{1, 2}, nil); err == nil {
		t.Fatal("wrong count length accepted")
	}
	if _, err := Estimate(ch, []float64{0, 0, 0}, nil); err == nil {
		t.Fatal("zero counts accepted")
	}
	if _, err := Estimate(ch, []float64{1, -1, 1}, nil); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := Estimate(ch, []float64{1, math.NaN(), 1}, nil); err == nil {
		t.Fatal("NaN count accepted")
	}
}

func TestSmoother1DConservesMass(t *testing.T) {
	s := Smoother1D()
	p := []float64{0.5, 0.1, 0.1, 0.1, 0.2}
	s(p)
	total := 0.0
	for _, v := range p {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("1-D smoothing changed mass to %v", total)
	}
}

func TestSmoother1DFlattensSpike(t *testing.T) {
	s := Smoother1D()
	p := []float64{0, 0, 1, 0, 0}
	s(p)
	if p[2] >= 1 {
		t.Fatal("spike not smoothed")
	}
	if p[1] <= 0 || p[3] <= 0 {
		t.Fatal("mass did not spread to neighbours")
	}
}

func TestSmoother1DShortSlices(t *testing.T) {
	s := Smoother1D()
	p := []float64{1}
	s(p)
	if p[0] != 1 {
		t.Fatal("length-1 slice modified")
	}
	q := []float64{0.4, 0.6}
	s(q)
	if q[0] != 0.4 {
		t.Fatal("length-2 slice modified")
	}
}

func TestSmoother2DConservesMass(t *testing.T) {
	const d = 5
	s := Smoother2D(d)
	r := rng.New(17)
	p := make([]float64, d*d)
	for i := range p {
		p[i] = r.Float64()
	}
	total := 0.0
	for _, v := range p {
		total += v
	}
	s(p)
	after := 0.0
	for _, v := range p {
		after += v
	}
	if math.Abs(after-total) > 1e-9 {
		t.Fatalf("2-D smoothing changed mass %v -> %v", total, after)
	}
}

func TestSmoother2DSpreadsSpike(t *testing.T) {
	const d = 5
	s := Smoother2D(d)
	p := make([]float64, d*d)
	p[2*d+2] = 1
	s(p)
	if p[2*d+2] >= 1 {
		t.Fatal("spike not smoothed")
	}
	if p[2*d+3] <= 0 || p[3*d+2] <= 0 {
		t.Fatal("mass did not spread to 2-D neighbours")
	}
}

func TestSmoother2DIgnoresWrongSize(t *testing.T) {
	s := Smoother2D(4)
	p := []float64{1, 2, 3}
	s(p)
	if p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Fatal("wrong-size slice modified")
	}
}

func TestEstimateWithSmoothingStillRecovers(t *testing.T) {
	g, _ := fo.NewGRR(9, 2)
	ch := g.Channel()
	truth := []float64{0.05, 0.1, 0.2, 0.3, 0.2, 0.1, 0.03, 0.01, 0.01}
	expected, err := ch.Apply(truth)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, len(expected))
	for j, e := range expected {
		counts[j] = e * 1e6
	}
	est, err := Estimate(ch, counts, &Options{Smoothing: Smoother1D(), MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	// The EMS fixed point trades likelihood against smoothness, so the
	// estimate is biased towards flatness — but it must still beat the
	// uniform baseline in total variation and keep the mode region right.
	tv := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s / 2
	}
	uniform := make([]float64, len(truth))
	for i := range uniform {
		uniform[i] = 1 / float64(len(truth))
	}
	if tv(est, truth) >= tv(uniform, truth) {
		t.Fatalf("smoothed estimate %v no better than uniform (TV %v vs %v)",
			est, tv(est, truth), tv(uniform, truth))
	}
	argmax := func(v []float64) int {
		best := 0
		for i := range v {
			if v[i] > v[best] {
				best = i
			}
		}
		return best
	}
	if m := argmax(est); m < 2 || m > 4 {
		t.Fatalf("smoothed estimate mode at %d, truth mode at 3 (est %v)", m, est)
	}
}
