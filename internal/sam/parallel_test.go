package sam

import (
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func TestCollectParallelConservesUsers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDAM(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 2}, 1234)
	truth.Set(geom.Cell{X: 4, Y: 4}, 4321)
	for _, workers := range []int{1, 2, 7, 0} {
		noisy, err := m.CollectParallel(truth.Mass, 9, workers)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, c := range noisy {
			total += c
		}
		if total != 5555 {
			t.Fatalf("workers=%d: collected %v, want 5555", workers, total)
		}
	}
}

func TestCollectParallelDeterministicPerSeedAndWorkers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDAM(dom, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 2, Y: 2}, 2000)
	a, err := m.CollectParallel(truth.Mass, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CollectParallel(truth.Mass, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed and worker count diverged")
		}
	}
}

func TestCollectParallelStatisticallyMatchesChannel(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDAM(dom, 2, WithBHat(1))
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, m.NumInputs())
	in := dom.Index(geom.Cell{X: 2, Y: 2})
	truth[in] = 200000
	noisy, err := m.CollectParallel(truth, 13, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range noisy {
		want := m.Channel().At(in, j) * 200000
		if diff := c - want; diff > 5*(want+100) || diff < -0.5*want-500 {
			t.Fatalf("output %d count %v, expected ≈%v", j, c, want)
		}
	}
}

func TestEstimateHistWithWorkers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDAM(dom, 2, WithWorkers(-1)); err == nil {
		t.Fatal("negative worker count accepted")
	}
	m, err := NewDAM(dom, 2, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", m.Workers())
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 3}, 2500)
	truth.Set(geom.Cell{X: 5, Y: 0}, 1500)
	a, err := m.EstimateHist(truth, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstimateHist(truth, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range a.Mass {
		if a.Mass[i] != b.Mass[i] {
			t.Fatal("same seed and worker count diverged")
		}
		sum += a.Mass[i]
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("estimate not normalised: total %v", sum)
	}
}

func TestCollectParallelRejectsInvalid(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDAM(dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CollectParallel(make([]float64, 2), 1, 2); err == nil {
		t.Fatal("wrong length accepted")
	}
	bad := make([]float64, m.NumInputs())
	bad[0] = -1
	if _, err := m.CollectParallel(bad, 1, 2); err == nil {
		t.Fatal("negative count accepted")
	}
}
