package sam

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func testDomain(t *testing.T, d int) grid.Domain {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestDAMProbabilitiesClosedForm(t *testing.T) {
	for _, eps := range []float64{0.7, 2.1, 3.5} {
		for _, b := range []float64{0.1, 0.5, 2} {
			p, q, err := DAMProbabilities(eps, b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p/q-math.Exp(eps)) > 1e-9 {
				t.Fatalf("p/q = %v, want e^eps = %v", p/q, math.Exp(eps))
			}
			// Total mass over the continuous output domain must be 1:
			// πb²·p + (4b+1)·q = 1 for the unit square.
			total := math.Pi*b*b*p + (4*b+1)*q
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("eps=%v b=%v: continuous mass %v", eps, b, total)
			}
		}
	}
}

func TestHUEMQClosedForm(t *testing.T) {
	// Verify ∫∫ W = 1 numerically: 2π∫₀^b q·e^{(1-r/b)ε}·r dr + (4b+1)q = 1.
	for _, eps := range []float64{0.7, 3.5} {
		for _, b := range []float64{0.3, 1.5} {
			q, err := HUEMQ(eps, b)
			if err != nil {
				t.Fatal(err)
			}
			const steps = 200000
			integral := 0.0
			for i := 0; i < steps; i++ {
				r := (float64(i) + 0.5) / steps * b
				w, err := HUEMWave(eps, b, r)
				if err != nil {
					t.Fatal(err)
				}
				integral += 2 * math.Pi * r * w * (b / steps)
			}
			total := integral + (4*b+1)*q
			if math.Abs(total-1) > 1e-3 {
				t.Fatalf("eps=%v b=%v: HUEM mass %v", eps, b, total)
			}
		}
	}
}

func TestHUEMWaveEndpoints(t *testing.T) {
	eps, b := 2.0, 1.5
	q, err := HUEMQ(eps, b)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := HUEMWave(eps, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w0-q*math.Exp(eps)) > 1e-12 {
		t.Fatalf("W(0) = %v, want q·e^ε = %v", w0, q*math.Exp(eps))
	}
	wb, err := HUEMWave(eps, b, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wb-q) > 1e-12 {
		t.Fatalf("W(b) = %v, want q = %v", wb, q)
	}
	wOut, err := HUEMWave(eps, b, 2*b)
	if err != nil {
		t.Fatal(err)
	}
	if wOut != q {
		t.Fatalf("W(2b) = %v, want q", wOut)
	}
	if _, err := HUEMWave(eps, b, -1); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func TestOptimalBLimits(t *testing.T) {
	// ε→0 limit: (2+√(4+π))/π; ε→∞ limit: 0.
	b, err := OptimalB(1e-9, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (2 + math.Sqrt(4+math.Pi)) / math.Pi
	if math.Abs(b-want) > 1e-3 {
		t.Fatalf("small-eps b = %v, want %v", b, want)
	}
	b, err = OptimalB(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b > 0.01 {
		t.Fatalf("large-eps b = %v, want ≈0", b)
	}
}

func TestOptimalBScalesWithL(t *testing.T) {
	b1, err := OptimalB(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b10, err := OptimalB(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b10-10*b1) > 1e-9 {
		t.Fatalf("b(L=10)=%v, want 10·b(L=1)=%v", b10, 10*b1)
	}
}

func TestOptimalBMatchesPaperDefault(t *testing.T) {
	// Paper: with d=15 and ε=3.5 the optimal discrete radius b̌ ≈ 3.
	bh, err := BHat(3.5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if bh != 3 {
		t.Fatalf("BHat(3.5, 15) = %d, want 3", bh)
	}
}

func TestOptimalBMaximisesMutualInfoBound(t *testing.T) {
	for _, eps := range []float64{0.7, 2.1, 3.5, 5} {
		for _, L := range []float64{1, 15} {
			bStar, err := OptimalB(eps, L)
			if err != nil {
				t.Fatal(err)
			}
			gStar, err := MutualInfoBound(eps, bStar, L)
			if err != nil {
				t.Fatal(err)
			}
			for _, scale := range []float64{0.5, 0.8, 1.2, 2} {
				g, err := MutualInfoBound(eps, bStar*scale, L)
				if err != nil {
					t.Fatal(err)
				}
				if g > gStar+1e-9 {
					t.Fatalf("eps=%v L=%v: g(%v·b̌)=%v exceeds g(b̌)=%v",
						eps, L, scale, g, gStar)
				}
			}
		}
	}
}

func TestOptimalBErrors(t *testing.T) {
	if _, err := OptimalB(0, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := OptimalB(1, 0); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := BHat(1, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func allMechanisms(t *testing.T, dom grid.Domain, eps float64, opts ...Option) []*Mechanism {
	t.Helper()
	dam, err := NewDAM(dom, eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewDAMNS(dom, eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	huem, err := NewHUEM(dom, eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return []*Mechanism{dam, ns, huem}
}

func TestMechanismChannelsAreRowStochastic(t *testing.T) {
	for _, d := range []int{1, 3, 8} {
		dom := testDomain(t, d)
		for _, eps := range []float64{0.7, 3.5} {
			for _, m := range allMechanisms(t, dom, eps) {
				if err := m.Channel().Validate(); err != nil {
					t.Fatalf("%s d=%d eps=%v: %v", m.Name(), d, eps, err)
				}
			}
		}
	}
}

func TestMechanismsSatisfyLDP(t *testing.T) {
	// The central privacy claim (Theorem IV.1): every SAM channel's
	// worst-case likelihood ratio is at most e^ε, including shrunken
	// border cells.
	for _, d := range []int{2, 5, 10} {
		dom := testDomain(t, d)
		for _, eps := range []float64{0.7, 2.1, 3.5, 6} {
			for _, m := range allMechanisms(t, dom, eps) {
				ratio := m.Channel().MaxRatio()
				if ratio > math.Exp(eps)*(1+1e-9) {
					t.Fatalf("%s d=%d eps=%v: max ratio %v > e^ε=%v",
						m.Name(), d, eps, ratio, math.Exp(eps))
				}
			}
		}
	}
}

func TestDAMUsesFullBudgetAtCentre(t *testing.T) {
	dom := testDomain(t, 10)
	m, err := NewDAM(dom, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := m.Channel().MaxRatio()
	if ratio < math.Exp(3.5)*(1-1e-6) {
		t.Fatalf("DAM ratio %v loose vs e^ε=%v: wasted budget", ratio, math.Exp(3.5))
	}
}

func TestDAMPQRelationship(t *testing.T) {
	dom := testDomain(t, 10)
	m, err := NewDAM(dom, 2.8)
	if err != nil {
		t.Fatal(err)
	}
	p, q := m.PQ()
	if math.Abs(p/q-math.Exp(2.8)) > 1e-9 {
		t.Fatalf("p̂/q̂ = %v, want e^ε", p/q)
	}
	// Normalisation: S_H·p̂ + S_L·q̂ = 1 by construction; check via the
	// channel rows instead of re-deriving.
	row := m.Channel().Row(0)
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("row mass %v", sum)
	}
}

func TestOutputDomainSizeMatchesTheoremVI2(t *testing.T) {
	// Theorem VI.2: the pure-low area for any input cell is
	// d² + 4b̂d − 4b̂ − 1, so |D̃| = that + |footprint|.
	for _, d := range []int{1, 2, 5, 9} {
		dom := testDomain(t, d)
		for _, bh := range []int{1, 2, 3} {
			m, err := NewDAM(dom, 2, WithBHat(bh))
			if err != nil {
				t.Fatal(err)
			}
			fpSize := len(geom.DiskFootprint(float64(bh)))
			wantLow := geom.PureLowAreaClosedForm(d, bh)
			if got := m.NumOutputs() - fpSize; got != wantLow {
				t.Fatalf("d=%d b̂=%d: pure-low cells %d, Theorem VI.2 says %d",
					d, bh, got, wantLow)
			}
		}
	}
}

func TestMechanismRowsAreTranslates(t *testing.T) {
	// Every input cell's output distribution is the same wave profile
	// translated — the defining property of a SAM.
	dom := testDomain(t, 6)
	m, err := NewDAM(dom, 3, WithBHat(2))
	if err != nil {
		t.Fatal(err)
	}
	ch := m.Channel()
	out := m.OutputCells()
	probAt := func(in int, c geom.Cell) float64 {
		for j, oc := range out {
			if oc == c {
				return ch.At(in, j)
			}
		}
		return -1
	}
	a := dom.Index(geom.Cell{X: 1, Y: 1})
	b := dom.Index(geom.Cell{X: 4, Y: 3})
	for _, off := range []geom.Cell{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 2}, {X: -2, Y: 0}, {X: 2, Y: 2}} {
		pa := probAt(a, geom.Cell{X: 1 + off.X, Y: 1 + off.Y})
		pb := probAt(b, geom.Cell{X: 4 + off.X, Y: 3 + off.Y})
		if math.Abs(pa-pb) > 1e-12 {
			t.Fatalf("offset %v: prob %v at input a but %v at input b", off, pa, pb)
		}
	}
}

func TestHUEMWeightsDecreaseWithDistance(t *testing.T) {
	dom := testDomain(t, 8)
	m, err := NewHUEM(dom, 3, WithBHat(3))
	if err != nil {
		t.Fatal(err)
	}
	// Probability of reporting the true cell must exceed a ring-2 cell,
	// which must exceed a ring-3 cell, which exceeds q̂.
	in := dom.Index(geom.Cell{X: 4, Y: 4})
	ch := m.Channel()
	idx := func(c geom.Cell) int {
		for j, oc := range m.OutputCells() {
			if oc == c {
				return j
			}
		}
		t.Fatalf("cell %v not in output domain", c)
		return -1
	}
	p0 := ch.At(in, idx(geom.Cell{X: 4, Y: 4}))
	p2 := ch.At(in, idx(geom.Cell{X: 6, Y: 4}))
	p3 := ch.At(in, idx(geom.Cell{X: 7, Y: 4}))
	_, q := m.PQ()
	if !(p0 > p2 && p2 > p3 && p3 > q) {
		t.Fatalf("HUEM weights not decreasing: %v, %v, %v vs q %v", p0, p2, p3, q)
	}
}

func TestDAMNSSubsetOfDAMFootprint(t *testing.T) {
	dom := testDomain(t, 6)
	dam, err := NewDAM(dom, 2, WithBHat(2))
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewDAMNS(dom, 2, WithBHat(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.offsets) > len(dam.offsets) {
		t.Fatalf("NS footprint (%d) larger than shrunken (%d)", len(ns.offsets), len(dam.offsets))
	}
}

func TestPerturbMatchesChannel(t *testing.T) {
	dom := testDomain(t, 4)
	m, err := NewDAM(dom, 2, WithBHat(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	in := dom.Index(geom.Cell{X: 2, Y: 2})
	const trials = 100000
	counts := make([]float64, m.NumOutputs())
	for i := 0; i < trials; i++ {
		counts[m.Perturb(in, r)]++
	}
	for j := range counts {
		want := m.Channel().At(in, j)
		got := counts[j] / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("output %d: frequency %v, want %v", j, got, want)
		}
	}
}

func TestCollectConservesUsers(t *testing.T) {
	dom := testDomain(t, 5)
	m, err := NewDAM(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, m.NumInputs())
	truth[7] = 500
	truth[13] = 300
	noisy, err := m.Collect(truth, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range noisy {
		total += c
	}
	if total != 800 {
		t.Fatalf("collected %v reports, want 800", total)
	}
}

func TestCollectRejectsInvalidCounts(t *testing.T) {
	dom := testDomain(t, 3)
	m, err := NewDAM(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]float64, m.NumInputs())
	bad[0] = -1
	if _, err := m.Collect(bad, rng.New(1)); err == nil {
		t.Fatal("negative count accepted")
	}
	bad[0] = 1.5
	if _, err := m.Collect(bad, rng.New(1)); err == nil {
		t.Fatal("fractional count accepted")
	}
	if _, err := m.Collect(make([]float64, 2), rng.New(1)); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestEstimateHistRecoversConcentratedDistribution(t *testing.T) {
	// With a generous budget, the full pipeline must recover a
	// concentrated distribution closely.
	dom := testDomain(t, 5)
	m, err := NewDAM(dom, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 2, Y: 2}, 30000)
	truth.Set(geom.Cell{X: 2, Y: 3}, 20000)
	truth.Set(geom.Cell{X: 3, Y: 2}, 10000)
	est, err := m.EstimateHist(truth, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Clone().Normalize()
	tv, err := grid.TotalVariation(est, want)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.1 {
		t.Fatalf("high-budget recovery TV = %v", tv)
	}
}

func TestEstimateHistDomainMismatch(t *testing.T) {
	m, err := NewDAM(testDomain(t, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(testDomain(t, 5))
	if _, err := m.EstimateHist(truth, rng.New(1)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
}

func TestMechanismConstructionErrors(t *testing.T) {
	dom := testDomain(t, 3)
	if _, err := NewDAM(dom, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewDAM(dom, math.NaN()); err == nil {
		t.Fatal("NaN eps accepted")
	}
	if _, err := NewDAM(dom, 1, WithBHat(-1)); err == nil {
		t.Fatal("negative b̂ accepted")
	}
}

func TestBHatZeroDegeneratesToRandomizedResponse(t *testing.T) {
	// b̂=0: footprint is just the true cell; DAM becomes GRR over the
	// grid with output domain = input domain.
	dom := testDomain(t, 4)
	m, err := NewDAM(dom, 2, WithBHat(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumOutputs() != m.NumInputs() {
		t.Fatalf("b̂=0 output domain %d != input %d", m.NumOutputs(), m.NumInputs())
	}
	p, q := m.PQ()
	k := float64(m.NumInputs())
	wantP := math.Exp(2) / (math.Exp(2) + k - 1)
	if math.Abs(p-wantP) > 1e-9 {
		t.Fatalf("b̂=0 p̂ = %v, want GRR p = %v", p, wantP)
	}
	if math.Abs(p/q-math.Exp(2)) > 1e-9 {
		t.Fatalf("p̂/q̂ = %v", p/q)
	}
}

func TestSmoothingOptionChangesEstimate(t *testing.T) {
	dom := testDomain(t, 5)
	plain, err := NewDAM(dom, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := NewDAM(dom, 1.5, WithSmoothing())
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 2, Y: 2}, 5000)
	noisy, err := plain.Collect(truth.Mass, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Estimate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := smooth.Estimate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 1e-6 {
		t.Fatal("smoothing option has no effect")
	}
}
