package sam

import (
	"dpspatial/internal/fo"
)

// CollectParallel is Collect with the per-user perturbation fanned out
// across workers. Each worker owns a deterministic RNG stream derived
// from (seed, worker index), so the aggregate counts are reproducible for
// a fixed seed and worker count — though they differ from the sequential
// Collect's stream. The chunked fan-out (and the input validation) lives
// in fo.CollectParallelAlias, shared with the other channel mechanisms;
// the alias tables come from the mechanism's once-built cache.
func (m *Mechanism) CollectParallel(trueCounts []float64, seed uint64, workers int) ([]float64, error) {
	samplers, err := m.Samplers()
	if err != nil {
		return nil, err
	}
	return fo.CollectParallelAlias(samplers, m.NumOutputs(), trueCounts, seed, workers)
}
