package sam

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dpspatial/internal/rng"
)

// CollectParallel is Collect with the per-user perturbation fanned out
// across workers. Each worker owns a deterministic RNG stream derived
// from (seed, worker index), so the aggregate counts are reproducible for
// a fixed seed and worker count — though they differ from the sequential
// Collect's stream.
func (m *Mechanism) CollectParallel(trueCounts []float64, seed uint64, workers int) ([]float64, error) {
	if len(trueCounts) != m.NumInputs() {
		return nil, fmt.Errorf("sam: %d true counts for %d cells", len(trueCounts), m.NumInputs())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i, c := range trueCounts {
		if c < 0 || c != math.Trunc(c) {
			return nil, fmt.Errorf("sam: invalid count %v at cell %d", c, i)
		}
	}
	samplers, err := m.Samplers()
	if err != nil {
		return nil, err
	}

	// Partition input cells across workers in contiguous chunks.
	chunk := (m.NumInputs() + workers - 1) / workers
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.NumInputs() {
			hi = m.NumInputs()
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := rng.New(seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
			out := make([]float64, m.NumOutputs())
			for i := lo; i < hi; i++ {
				for k := 0; k < int(trueCounts[i]); k++ {
					out[samplers[i].Draw(r)]++
				}
			}
			results[w] = out
		}(w, lo, hi)
	}
	wg.Wait()

	total := make([]float64, m.NumOutputs())
	for _, out := range results {
		for j, v := range out {
			total[j] += v
		}
	}
	return total, nil
}
