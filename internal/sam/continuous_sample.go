package sam

import (
	"fmt"
	"math"

	"dpspatial/internal/geom"
	"dpspatial/internal/rng"
)

// ContinuousSampler draws reports from the *continuous* SAM mechanisms of
// Sections IV–V over the unit-square input domain: the output domain is
// the rounded square D̃ (the unit square dilated by radius b, Figure 2),
// and the report density is the mechanism's wave function around the true
// point.
type ContinuousSampler struct {
	eps  float64
	b    float64
	huem bool

	diskMass float64 // probability of reporting inside the disk
}

// NewContinuousDAM builds a sampler for continuous DAM (Definition 8)
// with the given budget over a unit-square domain; b ≤ 0 selects the
// optimal b̌.
func NewContinuousDAM(eps, b float64) (*ContinuousSampler, error) {
	return newContinuous(eps, b, false)
}

// NewContinuousHUEM builds a sampler for continuous HUEM (Definition 5).
func NewContinuousHUEM(eps, b float64) (*ContinuousSampler, error) {
	return newContinuous(eps, b, true)
}

func newContinuous(eps, b float64, huem bool) (*ContinuousSampler, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("sam: invalid epsilon %v", eps)
	}
	if b <= 0 {
		var err error
		b, err = OptimalB(eps, 1)
		if err != nil {
			return nil, err
		}
	}
	s := &ContinuousSampler{eps: eps, b: b, huem: huem}
	if huem {
		q, err := HUEMQ(eps, b)
		if err != nil {
			return nil, err
		}
		// Disk mass = 1 − (4b+1)q by Definition 5's normalisation.
		s.diskMass = 1 - (4*b+1)*q
	} else {
		p, _, err := DAMProbabilities(eps, b)
		if err != nil {
			return nil, err
		}
		s.diskMass = math.Pi * b * b * p
	}
	if s.diskMass < 0 || s.diskMass > 1 {
		return nil, fmt.Errorf("sam: degenerate disk mass %v", s.diskMass)
	}
	return s, nil
}

// Epsilon returns the privacy budget.
func (s *ContinuousSampler) Epsilon() float64 { return s.eps }

// Radius returns the high-probability radius b.
func (s *ContinuousSampler) Radius() float64 { return s.b }

// DiskMass returns the probability that a report lands inside the disk
// around the true point.
func (s *ContinuousSampler) DiskMass() float64 { return s.diskMass }

// Sample draws one continuous report for the true point v ∈ [0,1]².
func (s *ContinuousSampler) Sample(v geom.Point, r *rng.RNG) (geom.Point, error) {
	if v.X < 0 || v.X > 1 || v.Y < 0 || v.Y > 1 {
		return geom.Point{}, fmt.Errorf("sam: point %v outside the unit square", v)
	}
	if r.Float64() < s.diskMass {
		return s.sampleDisk(v, r), nil
	}
	// Low region: uniform over D̃ minus the disk, by rejection from the
	// rounded square (the disk occupies πb²/(1+4b+πb²) of it, so the
	// expected retry count is small for every b).
	for {
		p := s.sampleRoundedSquare(r)
		if p.Dist(v) > s.b {
			return p, nil
		}
	}
}

// sampleDisk draws from the wave function restricted to the disk around
// v: uniform for DAM; density ∝ e^{−εr/b} (radially) for HUEM, drawn by
// rejection against the uniform disk with acceptance e^{−εr/b}.
func (s *ContinuousSampler) sampleDisk(v geom.Point, r *rng.RNG) geom.Point {
	for {
		// Uniform point in the disk via radius = b√u.
		rad := s.b * math.Sqrt(r.Float64())
		theta := 2 * math.Pi * r.Float64()
		if s.huem && r.Float64() >= math.Exp(-s.eps*rad/s.b) {
			continue
		}
		return geom.Point{
			X: v.X + rad*math.Cos(theta),
			Y: v.Y + rad*math.Sin(theta),
		}
	}
}

// sampleRoundedSquare draws uniformly from the rounded square D̃: the
// unit square, four b×1 side rectangles and four quarter disks at the
// corners, chosen proportionally to area.
func (s *ContinuousSampler) sampleRoundedSquare(r *rng.RNG) geom.Point {
	b := s.b
	square := 1.0
	side := b // each of the four 1×b side rectangles
	corner := math.Pi * b * b / 4
	total := square + 4*side + 4*corner
	u := r.Float64() * total
	switch {
	case u < square:
		return geom.Point{X: r.Float64(), Y: r.Float64()}
	case u < square+4*side:
		k := int((u - square) / side)
		along := r.Float64()
		off := r.Float64() * b
		switch k {
		case 0: // bottom
			return geom.Point{X: along, Y: -off}
		case 1: // top
			return geom.Point{X: along, Y: 1 + off}
		case 2: // left
			return geom.Point{X: -off, Y: along}
		default: // right
			return geom.Point{X: 1 + off, Y: along}
		}
	default:
		k := int((u - square - 4*side) / corner)
		// Uniform point in a quarter disk around the corner.
		rad := b * math.Sqrt(r.Float64())
		theta := math.Pi / 2 * r.Float64()
		dx := rad * math.Cos(theta)
		dy := rad * math.Sin(theta)
		switch k {
		case 0:
			return geom.Point{X: -dx, Y: -dy} // around (0,0)
		case 1:
			return geom.Point{X: 1 + dx, Y: -dy} // around (1,0)
		case 2:
			return geom.Point{X: -dx, Y: 1 + dy} // around (0,1)
		default:
			return geom.Point{X: 1 + dx, Y: 1 + dy} // around (1,1)
		}
	}
}

// InOutputDomain reports whether a point lies in the rounded square D̃.
func (s *ContinuousSampler) InOutputDomain(p geom.Point) bool {
	cx := clampF(p.X, 0, 1)
	cy := clampF(p.Y, 0, 1)
	return p.Dist(geom.Point{X: cx, Y: cy}) <= s.b+1e-12
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
