package sam

import (
	"math"
	"testing"

	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// TestLinearMatchesDense: the structured channel must be the dense
// channel, bit for bit, for every SAM variant.
func TestLinearMatchesDense(t *testing.T) {
	dom := testDomain(t, 6)
	for name, build := range map[string]func() (*Mechanism, error){
		"DAM":    func() (*Mechanism, error) { return NewDAM(dom, 2.5) },
		"DAM-NS": func() (*Mechanism, error) { return NewDAMNS(dom, 2.5) },
		"HUEM":   func() (*Mechanism, error) { return NewHUEM(dom, 2.5, WithBHat(2)) },
	} {
		m, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lin, dense := m.Linear(), m.Channel()
		if lin.NumInputs() != dense.In || lin.NumOutputs() != dense.Out {
			t.Fatalf("%s: dimensions differ", name)
		}
		for i := 0; i < dense.In; i++ {
			got, want := lin.Row(i), dense.Row(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s: row %d col %d: %v != %v", name, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestDenseMaterialisesLazily: construction must not build the dense
// matrix; only an explicit Channel() call pays for it.
func TestDenseMaterialisesLazily(t *testing.T) {
	dom := testDomain(t, 12)
	m, err := NewDAM(dom, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.dense != nil {
		t.Fatal("dense channel materialised during construction")
	}
	if _, err := m.Samplers(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	m.Perturb(3, r)
	if _, err := m.Estimate(someCounts(m, 5000)); err != nil {
		t.Fatal(err)
	}
	if m.dense != nil {
		t.Fatal("sampling or estimation materialised the dense channel")
	}
	if m.Channel() == nil || m.dense == nil {
		t.Fatal("Channel() did not materialise the dense matrix")
	}
}

func someCounts(m *Mechanism, n int) []float64 {
	r := rng.New(77)
	counts := make([]float64, m.NumOutputs())
	for k := 0; k < n; k++ {
		counts[r.Intn(len(counts))]++
	}
	return counts
}

// TestPerturbMatchesSamplerStream: Perturb must consume exactly the
// cached alias samplers' stream — the same draw Report performs.
func TestPerturbMatchesSamplerStream(t *testing.T) {
	dom := testDomain(t, 5)
	m, err := NewDAM(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	samplers, err := m.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(9), rng.New(9)
	for k := 0; k < 500; k++ {
		in := k % m.NumInputs()
		if got, want := m.Perturb(in, r1), samplers[in].Draw(r2); got != want {
			t.Fatalf("draw %d: Perturb %d, sampler %d", k, got, want)
		}
	}
}

// TestEstimateWorkersByteIdentical: the parallel EM engine must decode
// the same aggregate to the same bytes for every worker count.
func TestEstimateWorkersByteIdentical(t *testing.T) {
	dom := testDomain(t, 8)
	truth := make([]float64, dom.NumCells())
	r := rng.New(5)
	for i := range truth {
		truth[i] = float64(r.Intn(200))
	}
	var ref []float64
	for _, workers := range []int{2, 3, 7} {
		m, err := NewDAM(dom, 2, WithEstimateWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		agg := m.NewAggregate()
		if err := fo.Accumulate(m, agg, truth, rng.New(11)); err != nil {
			t.Fatal(err)
		}
		est, err := m.EstimateFromAggregate(agg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = est.Mass
			continue
		}
		for i := range ref {
			if est.Mass[i] != ref[i] {
				t.Fatalf("workers=%d differs from workers=2 at cell %d: %v != %v",
					workers, i, est.Mass[i], ref[i])
			}
		}
	}
}

// TestEstimateFromAggregateWarmEndToEnd drives the incremental lifecycle
// the ROADMAP asks for: collect shard 1, estimate, merge shard 2, then
// re-estimate warm-started from the pre-merge estimate. The warm start
// must converge to the cold-start fixed point in fewer EM iterations.
func TestEstimateFromAggregateWarmEndToEnd(t *testing.T) {
	// d=4, ε=3.5: informative enough for EM to converge within the
	// default iteration budget, so iteration counts are comparable.
	dom := testDomain(t, 4)
	m, err := NewDAM(dom, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, m.NumInputs())
	r := rng.New(21)
	for i := range truth {
		truth[i] = float64(20 + r.Intn(300))
	}
	shard1 := m.NewAggregate()
	if err := fo.Accumulate(m, shard1, truth, r); err != nil {
		t.Fatal(err)
	}
	shard2 := m.NewAggregate()
	if err := fo.Accumulate(m, shard2, truth, r); err != nil {
		t.Fatal(err)
	}

	est1, stats1, err := m.EstimateFromAggregateWarm(shard1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats1.Converged {
		t.Fatalf("shard-1 estimate did not converge in %d iterations", stats1.Iterations)
	}

	merged := shard1.Clone()
	if err := merged.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	cold, coldStats, err := m.EstimateFromAggregateWarm(merged, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := m.EstimateFromAggregateWarm(merged, est1)
	if err != nil {
		t.Fatal(err)
	}
	if !coldStats.Converged || !warmStats.Converged {
		t.Fatalf("EM did not converge (cold %+v, warm %+v)", coldStats, warmStats)
	}
	if warmStats.Iterations >= coldStats.Iterations {
		t.Fatalf("warm start took %d iterations, cold start took %d",
			warmStats.Iterations, coldStats.Iterations)
	}
	worst := 0.0
	for i := range cold.Mass {
		if d := math.Abs(cold.Mass[i] - warm.Mass[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Fatalf("warm start fixed point diverges from cold start by %v", worst)
	}
	// The warm decode must still reject incompatible inputs.
	if _, _, err := m.EstimateFromAggregateWarm(shard1, nil); err != nil {
		t.Fatal(err)
	}
	other, err := NewDAM(testDomain(t, 3), 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := other.EstimateFromAggregateWarm(shard1, nil); err == nil {
		t.Fatal("incompatible aggregate accepted")
	}
	wrongInit, err := NewDAM(testDomain(t, 3), 3.5)
	if err != nil {
		t.Fatal(err)
	}
	wrongHist, _, err := wrongInit.EstimateFromAggregateWarm(func() *fo.Aggregate {
		agg := wrongInit.NewAggregate()
		tc := make([]float64, wrongInit.NumInputs())
		tc[0] = 10
		if err := fo.Accumulate(wrongInit, agg, tc, rng.New(2)); err != nil {
			t.Fatal(err)
		}
		return agg
	}(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.EstimateFromAggregateWarm(merged, wrongHist); err == nil {
		t.Fatal("warm start from a mismatched domain accepted")
	}
}
