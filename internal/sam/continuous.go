// Package sam implements the paper's core contribution: the Spatial Area
// Mechanism framework (Definition 4) and its instances — the Disk Area
// Mechanism (DAM, Definition 8, proved optimal in Theorem V.2), the Hybrid
// Uniform-Exponential Mechanism (HUEM, Definition 5), and the non-shrunken
// variant DAM-NS — together with the optimal-radius selection of Section
// V-C and the grid discretisation with border shrinkage of Section VI
// (Algorithms 1 and 2).
package sam

import (
	"fmt"
	"math"
)

// DAMProbabilities returns the continuous DAM densities of Definition 8:
// p = e^ε / (πb²e^ε + 4b + 1) inside the disk of radius b and
// q = 1 / (πb²e^ε + 4b + 1) outside, for a unit-square input domain.
func DAMProbabilities(eps, b float64) (p, q float64, err error) {
	if err := checkEpsB(eps, b); err != nil {
		return 0, 0, err
	}
	ee := math.Exp(eps)
	den := math.Pi*b*b*ee + 4*b + 1
	return ee / den, 1 / den, nil
}

// HUEMQ returns the continuous HUEM base density of Definition 5:
// q = ε² / (2π(e^ε−1−ε)b² + 4ε²b + ε²).
func HUEMQ(eps, b float64) (float64, error) {
	if err := checkEpsB(eps, b); err != nil {
		return 0, err
	}
	e2 := eps * eps
	den := 2*math.Pi*(math.Exp(eps)-1-eps)*b*b + 4*e2*b + e2
	return e2 / den, nil
}

// HUEMWave evaluates HUEM's wave function W(z) of Definition 5 at distance
// r from the true point: q·e^{(1−r/b)ε} inside the disk, q outside.
func HUEMWave(eps, b, r float64) (float64, error) {
	q, err := HUEMQ(eps, b)
	if err != nil {
		return 0, err
	}
	if r < 0 {
		return 0, fmt.Errorf("sam: negative distance %v", r)
	}
	if r <= b {
		return q * math.Exp((1-r/b)*eps), nil
	}
	return q, nil
}

func checkEpsB(eps, b float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("sam: invalid epsilon %v", eps)
	}
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return fmt.Errorf("sam: invalid radius %v", b)
	}
	return nil
}

// OptimalB returns the radius b̌ of Section V-C that maximises the mutual-
// information upper bound for an input square of side L:
//
//	b̌ = (2m₂ + √(4m₂² + πe^ε·m₁·m₂)) / (πe^ε·m₁) · L
//
// with m₁ = e^ε−1−ε and m₂ = 1−e^ε+εe^ε. As ε→0 this tends to
// (2+√(4+π))/π · L and as ε→∞ it tends to 0.
func OptimalB(eps, L float64) (float64, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return 0, fmt.Errorf("sam: invalid epsilon %v", eps)
	}
	if L <= 0 || math.IsNaN(L) || math.IsInf(L, 0) {
		return 0, fmt.Errorf("sam: invalid side length %v", L)
	}
	ee := math.Exp(eps)
	m1 := ee - 1 - eps
	m2 := 1 - ee + eps*ee
	if m1 <= 0 || m2 <= 0 {
		// Only possible through floating-point underflow at tiny ε; fall
		// back to the ε→0 limit.
		return (2 + math.Sqrt(4+math.Pi)) / math.Pi * L, nil
	}
	num := 2*m2 + math.Sqrt(4*m2*m2+math.Pi*ee*m1*m2)
	return num / (math.Pi * ee * m1) * L, nil
}

// MutualInfoBound evaluates g(b), the mutual-information upper bound of
// Equation (11) for a side-L input square, in bits. OptimalB maximises
// this function; the tests verify that numerically.
func MutualInfoBound(eps, b, L float64) (float64, error) {
	if err := checkEpsB(eps, b); err != nil {
		return 0, err
	}
	if L <= 0 {
		return 0, fmt.Errorf("sam: invalid side length %v", L)
	}
	ee := math.Exp(eps)
	area := math.Pi*b*b + 4*L*b + L*L
	areaE := math.Pi*b*b*ee + 4*L*b + L*L
	return math.Log2(area/areaE) + math.Pi*b*b*ee*eps*math.Log2(math.E)/areaE, nil
}

// BHat returns the discrete high-probability radius b̂ = ⌊b̌⌋ in cell units
// for a d×d grid (the paper measures b̌ in cell units by setting L = d).
func BHat(eps float64, d int) (int, error) {
	if d < 1 {
		return 0, fmt.Errorf("sam: invalid grid size %d", d)
	}
	b, err := OptimalB(eps, float64(d))
	if err != nil {
		return 0, err
	}
	return int(math.Floor(b)), nil
}
