package sam

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/rng"
)

func TestContinuousDAMDiskMass(t *testing.T) {
	s, err := NewContinuousDAM(3.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := DAMProbabilities(3.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi * 0.2 * 0.2 * p
	if math.Abs(s.DiskMass()-want) > 1e-12 {
		t.Fatalf("disk mass %v, want %v", s.DiskMass(), want)
	}
}

func TestContinuousSampleInOutputDomain(t *testing.T) {
	for _, huem := range []bool{false, true} {
		s, err := newContinuous(2, 0.3, huem)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(1)
		v := geom.Point{X: 0.4, Y: 0.6}
		for i := 0; i < 20000; i++ {
			p, err := s.Sample(v, r)
			if err != nil {
				t.Fatal(err)
			}
			if !s.InOutputDomain(p) {
				t.Fatalf("huem=%v: sample %v outside D̃", huem, p)
			}
		}
	}
}

func TestContinuousSampleRejectsOutsideInput(t *testing.T) {
	s, err := NewContinuousDAM(2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(geom.Point{X: 1.5, Y: 0}, rng.New(1)); err == nil {
		t.Fatal("out-of-domain input accepted")
	}
}

func TestContinuousDAMEmpiricalDiskFraction(t *testing.T) {
	s, err := NewContinuousDAM(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	v := geom.Point{X: 0.5, Y: 0.5}
	const n = 200000
	inside := 0
	for i := 0; i < n; i++ {
		p, err := s.Sample(v, r)
		if err != nil {
			t.Fatal(err)
		}
		if p.Dist(v) <= s.Radius() {
			inside++
		}
	}
	got := float64(inside) / n
	if math.Abs(got-s.DiskMass()) > 0.005 {
		t.Fatalf("empirical disk fraction %v, want %v", got, s.DiskMass())
	}
}

func TestContinuousDAMUniformInsideDisk(t *testing.T) {
	// Within the disk, DAM's density is flat: the radius CDF of accepted
	// in-disk samples must be r²/b².
	s, err := NewContinuousDAM(3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	v := geom.Point{X: 0.5, Y: 0.5}
	const n = 100000
	within := 0
	halfway := 0
	for i := 0; i < n; i++ {
		p, err := s.Sample(v, r)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Dist(v)
		if d <= s.Radius() {
			within++
			if d <= s.Radius()/2 {
				halfway++
			}
		}
	}
	got := float64(halfway) / float64(within)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("P(r ≤ b/2 | disk) = %v, want 0.25 for uniform density", got)
	}
}

func TestContinuousHUEMConcentratesMoreThanDAM(t *testing.T) {
	// HUEM's in-disk density decays with distance, so conditioned on the
	// disk its reports sit closer to the truth than DAM's uniform disk.
	const b = 0.3
	medianInDiskDist := func(huem bool) float64 {
		s, err := newContinuous(3, b, huem)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(7)
		v := geom.Point{X: 0.5, Y: 0.5}
		var dists []float64
		for i := 0; i < 50000; i++ {
			p, err := s.Sample(v, r)
			if err != nil {
				t.Fatal(err)
			}
			if d := p.Dist(v); d <= b {
				dists = append(dists, d)
			}
		}
		// Median via partial selection.
		k := len(dists) / 2
		for i := 0; i <= k; i++ {
			minJ := i
			for j := i + 1; j < len(dists); j++ {
				if dists[j] < dists[minJ] {
					minJ = j
				}
			}
			dists[i], dists[minJ] = dists[minJ], dists[i]
		}
		return dists[k]
	}
	dam := medianInDiskDist(false)
	huem := medianInDiskDist(true)
	if huem >= dam {
		t.Fatalf("HUEM median in-disk distance %v not below DAM %v", huem, dam)
	}
}

func TestContinuousDefaultsToOptimalB(t *testing.T) {
	s, err := NewContinuousDAM(2.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := OptimalB(2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Radius()-want) > 1e-12 {
		t.Fatalf("default radius %v, want b̌ %v", s.Radius(), want)
	}
}

func TestContinuousErrors(t *testing.T) {
	if _, err := NewContinuousDAM(0, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewContinuousHUEM(math.NaN(), 1); err == nil {
		t.Fatal("NaN eps accepted")
	}
}

func TestRoundedSquareSamplerUniformRegions(t *testing.T) {
	// Region frequencies must match the area split of D̃.
	s, err := NewContinuousDAM(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	const n = 300000
	var inSquare, inSides, inCorners int
	for i := 0; i < n; i++ {
		p := s.sampleRoundedSquare(r)
		switch {
		case p.X >= 0 && p.X <= 1 && p.Y >= 0 && p.Y <= 1:
			inSquare++
		case (p.X >= 0 && p.X <= 1) || (p.Y >= 0 && p.Y <= 1):
			inSides++
		default:
			inCorners++
		}
	}
	b := 0.5
	total := 1 + 4*b + math.Pi*b*b
	for _, c := range []struct {
		name string
		got  int
		want float64
	}{
		{"square", inSquare, 1 / total},
		{"sides", inSides, 4 * b / total},
		{"corners", inCorners, math.Pi * b * b / total},
	} {
		frac := float64(c.got) / n
		if math.Abs(frac-c.want) > 0.005 {
			t.Fatalf("%s fraction %v, want %v", c.name, frac, c.want)
		}
	}
}
