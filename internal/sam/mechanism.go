package sam

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// Mechanism is a discretised Spatial Area Mechanism over a d×d grid: a
// family of output distributions, one per input cell, that all share the
// same offset weight profile (the wave function W of Definition 4) and the
// same expanded output domain D̃ (the union of every input cell's disk
// footprint — the discrete analogue of the rounded square of Figure 2).
//
// It implements the Frequency Oracle protocol: Perturb is
// GridAreaResponse (Algorithm 2, realised by per-row alias sampling over
// the exact channel) and Estimate is PostProcess (EM, Algorithm 1).
type Mechanism struct {
	name    string
	dom     grid.Domain
	eps     float64
	bHat    int
	offsets []weightedOffset // wave profile: relative weight w ∈ [1, e^ε]
	out     []geom.Cell      // output domain D̃, deterministic order
	outIdx  map[geom.Cell]int
	pHat    float64 // probability of a unit cell at weight e^ε
	qHat    float64 // probability of a unit cell at weight 1
	// linear is the exact channel in uniform-plus-sparse form: every row
	// is q̂ everywhere except the wave-offset cells. It is the only
	// representation estimation touches, so a large grid never pays for —
	// or stores — the dense d²×|D̃| matrix.
	linear     *fo.UniformSparse
	smooth     bool
	workers    int // collection fan-out: 1 = sequential, 0 = GOMAXPROCS
	estWorkers int // EM row-block fan-out: 1 = sequential, 0 = GOMAXPROCS

	denseOnce sync.Once
	dense     *fo.Channel

	samplersOnce sync.Once
	samplers     []*rng.Alias
	samplersErr  error
}

type weightedOffset struct {
	off    geom.Cell
	weight float64 // relative to q̂; in [1, e^ε]
}

// Option configures mechanism construction.
type Option func(*config)

type config struct {
	bHat       *int
	smooth     bool
	workers    *int
	estWorkers *int
}

// WithBHat overrides the discrete radius b̂ (otherwise ⌊b̌⌋ from Section
// V-C). Used by the Figure 8 radius sweep.
func WithBHat(b int) Option {
	return func(c *config) { c.bHat = &b }
}

// WithSmoothing enables 2-D EMS smoothing during post-processing.
func WithSmoothing() Option {
	return func(c *config) { c.smooth = true }
}

// WithWorkers routes EstimateHist's collection step through
// CollectParallel with this many workers (0 = GOMAXPROCS). The default of
// 1 keeps collection sequential and byte-compatible with Collect's RNG
// stream; any other value draws per-worker streams instead, so results
// are reproducible only for a fixed seed and worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = &n }
}

// WithEstimateWorkers fans the EM decoding step out across n row-block
// workers (0 = GOMAXPROCS). The default of 1 runs the sequential engine;
// the parallel engine is deterministic — byte-identical for every worker
// count — though its re-associated partial sums may differ from the
// sequential engine in the last float64 bits.
func WithEstimateWorkers(n int) Option {
	return func(c *config) { c.estWorkers = &n }
}

// NewDAM builds the discrete Disk Area Mechanism with border shrinkage
// (Section VI).
func NewDAM(dom grid.Domain, eps float64, opts ...Option) (*Mechanism, error) {
	return build("DAM", dom, eps, damWeights(true), opts...)
}

// NewDAMNS builds DAM without shrinkage: border cells are classified
// whole-cell by their centre (the DAM-NS baseline of Section VII-B).
func NewDAMNS(dom grid.Domain, eps float64, opts ...Option) (*Mechanism, error) {
	return build("DAM-NS", dom, eps, damWeights(false), opts...)
}

// NewHUEM builds the discrete Hybrid Uniform-Exponential Mechanism using
// the fan-ring decomposition of Appendix A.
func NewHUEM(dom grid.Domain, eps float64, opts ...Option) (*Mechanism, error) {
	return build("HUEM", dom, eps, huemWeights, opts...)
}

// weightsFunc maps (ε, b̂) to the offset weight profile of a SAM instance.
type weightsFunc func(eps float64, bHat int) []weightedOffset

func damWeights(shrink bool) weightsFunc {
	return func(eps float64, bHat int) []weightedOffset {
		ee := math.Exp(eps)
		var fp []geom.DiskCell
		if shrink {
			fp = geom.DiskFootprint(float64(bHat))
		} else {
			fp = geom.DiskFootprintNS(float64(bHat))
		}
		offs := make([]weightedOffset, 0, len(fp))
		for _, c := range fp {
			// A border cell reports at p̂ on its shrunken area and q̂ on
			// the rest: its aggregate weight interpolates between 1 and
			// e^ε, keeping ε-LDP (Section VI-A).
			w := c.HighArea*ee + (1 - c.HighArea)
			offs = append(offs, weightedOffset{off: c.Off, weight: w})
		}
		return offs
	}
}

// huemWeights realises Appendix A: HUEM's disk is a union of b̂ fan rings;
// ring κ (κ−1 < r ≤ κ) carries relative weight e^{ε(1−(κ−1)/b̂)}, and a
// cell split by ring borders carries the area-weighted mixture of the
// adjacent ring weights.
func huemWeights(eps float64, bHat int) []weightedOffset {
	if bHat == 0 {
		return damWeights(true)(eps, 0)
	}
	// insideArea[κ][off]: fraction of the cell inside circle of radius κ.
	type areaMap map[geom.Cell]float64
	inside := make([]areaMap, bHat+1)
	for k := 1; k <= bHat; k++ {
		inside[k] = areaMap{}
		for _, c := range geom.DiskFootprint(float64(k)) {
			inside[k][c.Off] = c.HighArea
		}
	}
	ringWeight := func(k int) float64 {
		return math.Exp(eps * (1 - float64(k-1)/float64(bHat)))
	}
	offs := make([]weightedOffset, 0, len(inside[bHat]))
	for off := range inside[bHat] {
		w := 0.0
		prev := 0.0
		for k := 1; k <= bHat; k++ {
			a := inside[k][off]
			if a > prev {
				w += (a - prev) * ringWeight(k)
				prev = a
			}
		}
		w += (1 - prev) * 1 // the part outside the disk reports at q̂
		offs = append(offs, weightedOffset{off: off, weight: w})
	}
	return offs
}

func build(name string, dom grid.Domain, eps float64, wf weightsFunc, opts ...Option) (*Mechanism, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("sam: invalid epsilon %v", eps)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	bHat := 0
	if cfg.bHat != nil {
		bHat = *cfg.bHat
		if bHat < 0 {
			return nil, fmt.Errorf("sam: negative radius %d", bHat)
		}
	} else {
		var err error
		bHat, err = BHat(eps, dom.D)
		if err != nil {
			return nil, err
		}
	}

	workers := 1
	if cfg.workers != nil {
		workers = *cfg.workers
		if workers < 0 {
			return nil, fmt.Errorf("sam: negative worker count %d", workers)
		}
	}
	estWorkers := 1
	if cfg.estWorkers != nil {
		estWorkers = *cfg.estWorkers
		if estWorkers < 0 {
			return nil, fmt.Errorf("sam: negative estimate worker count %d", estWorkers)
		}
	}

	m := &Mechanism{name: name, dom: dom, eps: eps, bHat: bHat, smooth: cfg.smooth, workers: workers, estWorkers: estWorkers}
	m.offsets = wf(eps, bHat)
	sort.Slice(m.offsets, func(i, j int) bool {
		a, b := m.offsets[i].off, m.offsets[j].off
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	ee := math.Exp(eps)
	for _, wo := range m.offsets {
		if wo.weight < 1-1e-9 || wo.weight > ee+1e-9 {
			return nil, fmt.Errorf("sam: offset %v weight %v outside [1, e^ε]", wo.off, wo.weight)
		}
	}

	m.buildOutputDomain()
	if err := m.computeProbabilities(); err != nil {
		return nil, err
	}
	if err := m.buildChannel(); err != nil {
		return nil, err
	}
	if err := m.linear.Validate(); err != nil {
		return nil, fmt.Errorf("sam: internal channel invalid: %w", err)
	}
	return m, nil
}

// buildOutputDomain forms D̃ as the union of the footprint translated to
// every input cell — the discrete rounded square.
func (m *Mechanism) buildOutputDomain() {
	seen := map[geom.Cell]bool{}
	for y := 0; y < m.dom.D; y++ {
		for x := 0; x < m.dom.D; x++ {
			base := geom.Cell{X: x, Y: y}
			for _, wo := range m.offsets {
				seen[base.Add(wo.off)] = true
			}
		}
	}
	m.out = make([]geom.Cell, 0, len(seen))
	for c := range seen {
		m.out = append(m.out, c)
	}
	sort.Slice(m.out, func(i, j int) bool {
		if m.out[i].Y != m.out[j].Y {
			return m.out[i].Y < m.out[j].Y
		}
		return m.out[i].X < m.out[j].X
	})
	m.outIdx = make(map[geom.Cell]int, len(m.out))
	for i, c := range m.out {
		m.outIdx[c] = i
	}
}

// computeProbabilities solves for q̂ from the normalisation
// Σ_offsets w·q̂ + (|D̃| − |offsets|)·q̂ = 1, which is identical for every
// input cell because each translated footprint lies fully inside D̃.
func (m *Mechanism) computeProbabilities() error {
	weightSum := 0.0
	for _, wo := range m.offsets {
		weightSum += wo.weight
	}
	lowCells := float64(len(m.out) - len(m.offsets))
	if lowCells < 0 {
		return fmt.Errorf("sam: footprint larger than output domain")
	}
	den := weightSum + lowCells
	if den <= 0 {
		return fmt.Errorf("sam: degenerate normalisation")
	}
	m.qHat = 1 / den
	m.pHat = math.Exp(m.eps) * m.qHat
	return nil
}

// buildChannel assembles the channel directly in uniform-plus-sparse
// form: row i is q̂ on all of D̃ with one override per wave offset. Memory
// and build time are O(d²·|footprint|); the dense matrix is never formed.
func (m *Mechanism) buildChannel() error {
	nIn := m.dom.NumCells()
	nOut := len(m.out)
	b := fo.NewUniformSparseBuilder(nIn, nOut)
	idx := make([]int, len(m.offsets))
	val := make([]float64, len(m.offsets))
	for i := 0; i < nIn; i++ {
		base := m.dom.CellAt(i)
		for k, wo := range m.offsets {
			idx[k] = m.outIdx[base.Add(wo.off)]
			val[k] = wo.weight * m.qHat
		}
		b.Row(m.qHat, idx, val)
	}
	linear, err := b.Build()
	if err != nil {
		return fmt.Errorf("sam: %w", err)
	}
	m.linear = linear
	return nil
}

// Name returns the mechanism's display name.
func (m *Mechanism) Name() string { return m.name }

// Epsilon returns the privacy budget.
func (m *Mechanism) Epsilon() float64 { return m.eps }

// BHat returns the discrete high-probability radius in cell units.
func (m *Mechanism) BHat() int { return m.bHat }

// Domain returns the input grid domain.
func (m *Mechanism) Domain() grid.Domain { return m.dom }

// NumInputs returns d².
func (m *Mechanism) NumInputs() int { return m.dom.NumCells() }

// NumOutputs returns |D̃|.
func (m *Mechanism) NumOutputs() int { return len(m.out) }

// OutputCells returns the output domain in channel order (shared slice;
// do not modify).
func (m *Mechanism) OutputCells() []geom.Cell { return m.out }

// PQ returns the discrete unit-cell probabilities (p̂, q̂).
func (m *Mechanism) PQ() (float64, float64) { return m.pHat, m.qHat }

// Linear returns the exact per-cell reporting channel in its structured
// uniform-plus-sparse form — the representation estimation runs on
// (shared; treat as read-only).
func (m *Mechanism) Linear() *fo.UniformSparse { return m.linear }

// Channel materialises the dense per-cell reporting channel on first use
// (shared; treat as read-only). Estimation never needs it; it exists for
// the local-privacy adversary and for row-level inspection, and costs the
// full O(d²·|D̃|) matrix — prefer Linear.
func (m *Mechanism) Channel() *fo.Channel {
	m.denseOnce.Do(func() {
		m.dense = m.linear.Dense()
	})
	return m.dense
}

// Samplers returns the per-input-cell alias tables for O(1) perturbation,
// building them once on first use (the experiment harness re-collects
// from the same mechanism across repeats). The tables are built from rows
// materialised one at a time, so they are bit-identical to the dense
// channel's without holding the matrix. The returned slice is shared;
// treat it as read-only.
func (m *Mechanism) Samplers() ([]*rng.Alias, error) {
	m.samplersOnce.Do(func() {
		m.samplers, m.samplersErr = m.linear.Samplers()
	})
	return m.samplers, m.samplersErr
}

// Perturb randomises one user's input cell index into an output cell
// index (GridAreaResponse, Algorithm 2: the two-stage weighted sampling
// over {pure-low, shrunken, complement, pure-high} collapses to one exact
// categorical draw over the channel row), through the cached alias
// samplers — O(1) per draw instead of the former O(|D̃|) linear scan.
// The draw consumes the same stream as Report always has; it differs
// from the pre-alias WeightedChoice stream (two uniforms per draw
// instead of one), which only ever fed Perturb-driven test loops.
func (m *Mechanism) Perturb(input int, r *rng.RNG) int {
	samplers, err := m.Samplers()
	if err != nil {
		// Unreachable: the channel is validated at construction, so every
		// row yields a well-formed alias table.
		panic(fmt.Sprintf("sam: samplers unavailable: %v", err))
	}
	return samplers[input].Draw(r)
}

// emOptions assembles the EM options shared by every estimation entry
// point: smoothing and the configured row-block fan-out.
func (m *Mechanism) emOptions() *em.Options {
	opts := &em.Options{Workers: em.ResolveWorkers(m.estWorkers)}
	if m.smooth {
		opts.Smoothing = em.Smoother2D(m.dom.D)
	}
	return opts
}

// Estimate recovers the normalised input distribution from output counts
// via EM (PostProcess of Algorithm 1) on the structured channel, with
// optional 2-D smoothing.
func (m *Mechanism) Estimate(counts []float64) ([]float64, error) {
	return em.Estimate(m.linear, counts, m.emOptions())
}

// Scheme implements fo.Reporter: the report format is fixed by the wave
// profile (mechanism name, grid side, budget, radius).
func (m *Mechanism) Scheme() string {
	return fmt.Sprintf("sam/%s d=%d eps=%g bhat=%d", m.name, m.dom.D, m.eps, m.bHat)
}

// ReportShape implements fo.Reporter: one plane of |D̃| counts.
func (m *Mechanism) ReportShape() []int { return []int{m.NumOutputs()} }

// Report implements fo.Reporter: encode one user's input cell into an
// LDP report (GridAreaResponse via the cached alias samplers — the same
// draw Collect has always used, so sequential pipelines stay
// byte-identical).
func (m *Mechanism) Report(input int, r *rng.RNG) (fo.Report, error) {
	samplers, err := m.Samplers()
	if err != nil {
		return fo.Report{}, err
	}
	if input < 0 || input >= len(samplers) {
		return fo.Report{}, fmt.Errorf("sam: input cell %d outside [0, %d)", input, len(samplers))
	}
	return fo.SingleIndexReport(samplers[input].Draw(r)), nil
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (m *Mechanism) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(m) }

// Collect simulates the full Algorithm 1 pipeline in one process: every
// user in trueCounts (per input cell) reports through the client layer
// into a fresh aggregate, and the noisy counts are returned, indexed by
// output cell.
func (m *Mechanism) Collect(trueCounts []float64, r *rng.RNG) ([]float64, error) {
	agg := m.NewAggregate()
	if err := fo.Accumulate(m, agg, trueCounts, r); err != nil {
		return nil, err
	}
	return agg.Planes[0], nil
}

// Workers returns the configured collection fan-out (1 = sequential).
func (m *Mechanism) Workers() int { return m.workers }

// EstimateFromAggregate decodes an accumulated aggregate (one shard or a
// merge of many) into the estimated input distribution via EM — the
// estimator stage of the report lifecycle.
func (m *Mechanism) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	if err := agg.Compatible(m); err != nil {
		return nil, fmt.Errorf("sam: %w", err)
	}
	est, err := m.Estimate(agg.Planes[0])
	if err != nil {
		return nil, err
	}
	return grid.HistFromMass(m.dom, est)
}

// EstimateFromAggregateWarm decodes an aggregate starting EM from a
// previous estimate instead of uniform — the incremental path for
// streaming pipelines that re-estimate as shards keep merging. A nil
// init is a cold start. The returned stats expose the iteration count a
// streaming caller monitors; warm starts from the pre-merge estimate
// converge in far fewer iterations than cold starts.
func (m *Mechanism) EstimateFromAggregateWarm(agg *fo.Aggregate, init *grid.Hist2D) (*grid.Hist2D, em.Stats, error) {
	if err := agg.Compatible(m); err != nil {
		return nil, em.Stats{}, fmt.Errorf("sam: %w", err)
	}
	opts := m.emOptions()
	if init != nil {
		if init.Dom.D != m.dom.D {
			return nil, em.Stats{}, fmt.Errorf("sam: warm-start histogram d=%d, mechanism d=%d", init.Dom.D, m.dom.D)
		}
		opts.Init = init.Mass
	}
	est, stats, err := em.EstimateWithStats(m.linear, agg.Planes[0], opts)
	if err != nil {
		return nil, stats, err
	}
	h, err := grid.HistFromMass(m.dom, est)
	return h, stats, err
}

// EstimateHist runs the full report lifecycle in-process: accumulate
// every user's report into one aggregate, then estimate from it. With
// WithWorkers ≠ 1 the collection step fans out through CollectParallel,
// seeded from the caller's stream.
func (m *Mechanism) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != m.dom.D {
		return nil, fmt.Errorf("sam: histogram domain d=%d, mechanism d=%d", truth.Dom.D, m.dom.D)
	}
	var agg *fo.Aggregate
	if m.workers == 1 {
		agg = m.NewAggregate()
		if err := fo.Accumulate(m, agg, truth.Mass, r); err != nil {
			return nil, err
		}
	} else {
		noisy, err := m.CollectParallel(truth.Mass, r.Uint64(), m.workers)
		if err != nil {
			return nil, err
		}
		agg, err = fo.AggregateFromCounts(m.Scheme(), noisy)
		if err != nil {
			return nil, err
		}
	}
	return m.EstimateFromAggregate(agg)
}
