package privacy

import (
	"math"
	"sync"
	"testing"
)

func TestChargeSequentialComposition(t *testing.T) {
	a, err := NewAccountant(3.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Charge("x-dim", 1.75); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge("y-dim", 1.75); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("spent %v", got)
	}
	if err := a.Charge("extra", 0.1); err == nil {
		t.Fatal("over-budget spend accepted")
	}
	if got := a.Remaining(); math.Abs(got) > 1e-9 {
		t.Fatalf("remaining %v", got)
	}
}

func TestChargeParallelTakesMax(t *testing.T) {
	a, err := NewAccountant(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ChargeParallel("levels", []float64{1.5, 1.5, 1.5}); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("parallel composition spent %v, want 1.5", got)
	}
}

func TestChargeValidation(t *testing.T) {
	a, _ := NewAccountant(1)
	if err := a.Charge("bad", 0); err == nil {
		t.Fatal("zero spend accepted")
	}
	if err := a.Charge("bad", math.NaN()); err == nil {
		t.Fatal("NaN spend accepted")
	}
	if err := a.ChargeParallel("bad", nil); err == nil {
		t.Fatal("empty parallel branches accepted")
	}
	if err := a.ChargeParallel("bad", []float64{1, -1}); err == nil {
		t.Fatal("negative branch accepted")
	}
	if _, err := NewAccountant(0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewAccountant(math.Inf(1)); err == nil {
		t.Fatal("infinite budget accepted")
	}
}

func TestSplit(t *testing.T) {
	shares, err := Split(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 || math.Abs(shares[0]-1) > 1e-12 {
		t.Fatalf("shares %v", shares)
	}
	total := 0.0
	for _, s := range shares {
		total += s
	}
	if math.Abs(total-3) > 1e-12 {
		t.Fatalf("shares lose budget: %v", total)
	}
	if _, err := Split(0, 2); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := Split(1, 0); err == nil {
		t.Fatal("zero shares accepted")
	}
}

func TestLedgerSortedCopy(t *testing.T) {
	a, _ := NewAccountant(10)
	_ = a.Charge("zeta", 1)
	_ = a.Charge("alpha", 2)
	ledger := a.Ledger()
	if len(ledger) != 2 || ledger[0].Label != "alpha" || ledger[1].Label != "zeta" {
		t.Fatalf("ledger %v", ledger)
	}
	ledger[0].Eps = 99
	if a.Ledger()[0].Eps == 99 {
		t.Fatal("ledger not a copy")
	}
}

func TestConcurrentChargesNeverExceedBudget(t *testing.T) {
	a, _ := NewAccountant(1)
	var wg sync.WaitGroup
	successes := make(chan struct{}, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Charge("worker", 0.1); err == nil {
				successes <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(successes)
	n := 0
	for range successes {
		n++
	}
	if n != 10 {
		t.Fatalf("%d charges of 0.1 succeeded against budget 1", n)
	}
	if a.Spent() > 1+1e-9 {
		t.Fatalf("spent %v exceeds budget", a.Spent())
	}
}
