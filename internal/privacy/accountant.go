// Package privacy provides the budget accounting every deployment of
// these mechanisms needs but papers leave implicit: sequential and
// parallel composition of ε-LDP releases per user, with hard budget caps.
//
// Composition rules (pure LDP):
//   - sequential: releases about the same user's datum add their budgets;
//   - parallel: releases over disjoint sub-populations cost the maximum
//     of their budgets (each user participates in one).
//
// MDSW's per-dimension split and LDPTrace's three-way split are instances
// of sequential composition; AHEAD's level partitioning is parallel
// composition. The Accountant makes those costs explicit and enforceable.
package privacy

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Accountant tracks ε-LDP spending against a total budget. It is safe
// for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	budget float64
	spends []Spend
}

// Spend is one recorded release.
type Spend struct {
	Label string
	Eps   float64
}

// NewAccountant creates an accountant with the given total budget.
func NewAccountant(budget float64) (*Accountant, error) {
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("privacy: invalid budget %v", budget)
	}
	return &Accountant{budget: budget}, nil
}

// Budget returns the total budget.
func (a *Accountant) Budget() float64 {
	return a.budget
}

// Spent returns the sequentially composed total spent so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spentLocked()
}

func (a *Accountant) spentLocked() float64 {
	total := 0.0
	for _, s := range a.spends {
		total += s.Eps
	}
	return total
}

// Remaining returns the unspent budget.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget - a.spentLocked()
}

// Charge records a sequential release of eps, failing when it would
// exceed the budget.
func (a *Accountant) Charge(label string, eps float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("privacy: invalid spend %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spentLocked()+eps > a.budget+1e-12 {
		return fmt.Errorf("privacy: spend %q (%v) exceeds remaining budget %v",
			label, eps, a.budget-a.spentLocked())
	}
	a.spends = append(a.spends, Spend{Label: label, Eps: eps})
	return nil
}

// ChargeParallel records a set of releases over disjoint sub-populations:
// the composed cost is the maximum of the branch budgets.
func (a *Accountant) ChargeParallel(label string, branches []float64) error {
	if len(branches) == 0 {
		return fmt.Errorf("privacy: no parallel branches")
	}
	maxEps := 0.0
	for i, e := range branches {
		if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("privacy: invalid branch %d spend %v", i, e)
		}
		if e > maxEps {
			maxEps = e
		}
	}
	return a.Charge(label, maxEps)
}

// Split divides an ε budget into n equal sequential shares — the helper
// MDSW (n=2) and LDPTrace (n=3) use.
func Split(eps float64, n int) ([]float64, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("privacy: invalid budget %v", eps)
	}
	if n < 1 {
		return nil, fmt.Errorf("privacy: invalid share count %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = eps / float64(n)
	}
	return out, nil
}

// Ledger returns the recorded spends sorted by label (copy).
func (a *Accountant) Ledger() []Spend {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Spend, len(a.spends))
	copy(out, a.spends)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
