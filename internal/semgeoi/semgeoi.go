// Package semgeoi implements the Subset Exponential Mechanism under
// ε-Geo-Indistinguishability (Wang et al., INFOCOM 2017; Andrés et al.,
// CCS 2013) — the paper's strongest comparator.
//
// The mechanism reports, for a true grid cell v, a subset of cells: a ball
// of k cells whose centre c is drawn from the planar exponential channel
// Pr[c | v] ∝ exp(−ε'·dis(c, v)/2), which satisfies ε'-Geo-I (distances in
// cell units). Because the ball shape is fixed, observing the subset is
// equivalent to observing its centre, so the per-centre channel matrix is
// exact and estimation runs EM on it.
//
// Substitution note (recorded in DESIGN.md): the original SEM enumerates
// arbitrary k-subsets, whose output space is n^k — the paper itself limits
// d when ε is small because of this blow-up. Ball-shaped subsets are the
// 2-D analogue of the ordinal intervals used in the 1-D SEM and keep the
// channel exact at every grid size. The subset size k defaults to
// max(1, n/e^ε) following the paper's complexity discussion.
package semgeoi

import (
	"fmt"
	"math"
	"sync"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

// Mechanism is the discrete SEM-Geo-I reporter/estimator over a d×d grid.
type Mechanism struct {
	dom        grid.Domain
	epsGeo     float64          // ε' per unit cell distance
	k          int              // subset size (ball cell count)
	ballR      float64          // ball radius in cell units realising k cells
	channel    fo.LinearChannel // ConvChannel on the fast path, dense fallback
	ballOffs   []geom.Cell
	workers    int // collection fan-out: 1 = sequential, 0 = GOMAXPROCS
	estWorkers int // EM row-block fan-out: 1 = sequential, 0 = GOMAXPROCS

	samplersOnce sync.Once
	samplers     []*rng.Alias
	samplersErr  error

	denseOnce sync.Once
	dense     *fo.Channel
}

// Option configures the mechanism.
type Option func(*config)

type config struct {
	k          *int
	workers    *int
	estWorkers *int
}

// WithSubsetSize overrides the subset size k.
func WithSubsetSize(k int) Option {
	return func(c *config) { c.k = &k }
}

// WithWorkers routes EstimateHist's collection step through
// CollectParallel with this many workers (0 = GOMAXPROCS). The default of
// 1 keeps collection sequential on the caller's RNG stream; any other
// value draws per-worker streams, so results are reproducible only for a
// fixed seed and worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = &n }
}

// WithEstimateWorkers fans the EM decoding step out across n row-block
// workers (0 = GOMAXPROCS). SEM-Geo-I's channel is inherently dense
// (d²×d²), so this is the mechanism with the most to gain from the
// deterministic parallel EM engine; the default of 1 keeps the
// sequential engine and its historical bit pattern.
func WithEstimateWorkers(n int) Option {
	return func(c *config) { c.estWorkers = &n }
}

// New builds SEM-Geo-I with per-cell-unit budget epsGeo > 0.
func New(dom grid.Domain, epsGeo float64, opts ...Option) (*Mechanism, error) {
	if epsGeo <= 0 || math.IsNaN(epsGeo) || math.IsInf(epsGeo, 0) {
		return nil, fmt.Errorf("semgeoi: invalid epsilon %v", epsGeo)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	n := dom.NumCells()
	k := int(math.Max(1, float64(n)/math.Exp(epsGeo)))
	if cfg.k != nil {
		k = *cfg.k
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("semgeoi: subset size %d outside [1, %d]", k, n)
	}
	workers := 1
	if cfg.workers != nil {
		workers = *cfg.workers
		if workers < 0 {
			return nil, fmt.Errorf("semgeoi: negative worker count %d", workers)
		}
	}
	estWorkers := 1
	if cfg.estWorkers != nil {
		estWorkers = *cfg.estWorkers
		if estWorkers < 0 {
			return nil, fmt.Errorf("semgeoi: negative estimate worker count %d", estWorkers)
		}
	}
	m := &Mechanism{dom: dom, epsGeo: epsGeo, k: k, workers: workers, estWorkers: estWorkers}
	m.ballOffs = ballOffsets(k)
	m.ballR = 0
	for _, o := range m.ballOffs {
		m.ballR = math.Max(m.ballR, o.CenterDist(geom.Cell{}))
	}
	m.buildChannel()
	if err := fo.ValidateLinear(m.channel); err != nil {
		return nil, fmt.Errorf("semgeoi: internal channel invalid: %w", err)
	}
	return m, nil
}

// ballOffsets returns the k cell offsets closest to the origin (ties
// broken deterministically), forming a discrete ball of k cells.
func ballOffsets(k int) []geom.Cell {
	reach := 1
	for (2*reach+1)*(2*reach+1) < k {
		reach++
	}
	type distCell struct {
		d float64
		c geom.Cell
	}
	cells := make([]distCell, 0, (2*reach+1)*(2*reach+1))
	for y := -reach; y <= reach; y++ {
		for x := -reach; x <= reach; x++ {
			c := geom.Cell{X: x, Y: y}
			cells = append(cells, distCell{d: c.CenterDist(geom.Cell{}), c: c})
		}
	}
	// Deterministic sort: by distance, then y, then x.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0; j-- {
			a, b := cells[j-1], cells[j]
			if b.d < a.d || (b.d == a.d && (b.c.Y < a.c.Y || (b.c.Y == a.c.Y && b.c.X < a.c.X))) {
				cells[j-1], cells[j] = cells[j], cells[j-1]
			} else {
				break
			}
		}
	}
	offs := make([]geom.Cell, k)
	for i := 0; i < k; i++ {
		offs[i] = cells[i].c
	}
	return offs
}

// buildChannel installs the exact per-centre channel: outputs are the
// same d×d cells (subset centres clamp to the grid).
//
// The kernel exp(−ε'·dis/2) depends only on the cell displacement, so
// the channel factors as diag(1/z_i)·K with K translation-invariant
// everywhere — including the borders, which only change the per-row
// normaliser. The convolutional form (fo.ConvChannel) exploits that for
// O(n log n) EM sweeps; its rows reproduce the dense construction bit
// for bit (same kernel bits, same row-major summation order), which a
// calibration spot check on corner/edge/centre rows enforces before the
// fast path is trusted. On any mismatch — a future non-invariant metric,
// a non-square grid — the exact dense build takes over.
func (m *Mechanism) buildChannel() {
	d := m.dom.D
	kern := fo.DisplacementKernel(d, func(dx, dy int) float64 {
		return math.Exp(-m.epsGeo * math.Hypot(float64(dx), float64(dy)) / 2)
	})
	if conv, err := fo.NewConvChannel(d, kern, nil); err == nil &&
		conv.Calibrated(m.exactRow, calibrationProbes(d), 0) {
		m.channel = conv
		return
	}
	m.channel = m.buildDense()
}

// exactRow fills row with the definitionally exact channel row i, the
// reference the convolutional fast path is calibrated against.
func (m *Mechanism) exactRow(i int, row []float64) {
	vi := m.dom.CellAt(i)
	sum := 0.0
	for j := range row {
		w := math.Exp(-m.epsGeo * vi.CenterDist(m.dom.CellAt(j)) / 2)
		row[j] = w
		sum += w
	}
	for j := range row {
		row[j] /= sum
	}
}

// calibrationProbes picks the spot-check rows: all four corners, an edge
// midpoint on each border, and the grid centre.
func calibrationProbes(d int) []int {
	n := d * d
	return []int{
		0, d - 1, n - d, n - 1, // corners
		d / 2,           // top edge
		(d / 2) * d,     // left edge
		(d/2)*d + d - 1, // right edge
		n - d + d/2,     // bottom edge
		(d/2)*d + d/2,   // centre
	}
}

// buildDense is the exact O(n²) fallback construction.
func (m *Mechanism) buildDense() *fo.Channel {
	n := m.dom.NumCells()
	ch := fo.NewChannel(n, n)
	for i := 0; i < n; i++ {
		m.exactRow(i, ch.Row(i))
	}
	return ch
}

// Name returns the mechanism's display name.
func (m *Mechanism) Name() string { return "SEM-Geo-I" }

// EpsilonGeo returns the per-cell-unit Geo-I budget ε'.
func (m *Mechanism) EpsilonGeo() float64 { return m.epsGeo }

// SubsetSize returns k.
func (m *Mechanism) SubsetSize() int { return m.k }

// Domain returns the input grid.
func (m *Mechanism) Domain() grid.Domain { return m.dom }

// NumInputs returns d².
func (m *Mechanism) NumInputs() int { return m.dom.NumCells() }

// NumOutputs returns the number of distinct subset centres (d²).
func (m *Mechanism) NumOutputs() int { return m.dom.NumCells() }

// Channel exposes the exact per-centre channel as a dense matrix
// (read-only), materialising it lazily — bit-identical to the historical
// dense build — when the mechanism runs on the convolutional fast path.
// Callers that only sweep should prefer Linear.
func (m *Mechanism) Channel() *fo.Channel {
	m.denseOnce.Do(func() {
		switch ch := m.channel.(type) {
		case *fo.Channel:
			m.dense = ch
		case *fo.ConvChannel:
			m.dense = ch.Dense()
		default:
			m.dense = m.buildDense()
		}
	})
	return m.dense
}

// Linear exposes the channel in its operative representation — the
// convolutional form when calibration admitted it, dense otherwise.
func (m *Mechanism) Linear() fo.LinearChannel { return m.channel }

// Perturb draws one noisy subset centre for the given input cell index.
func (m *Mechanism) Perturb(input int, r *rng.RNG) int {
	return rng.WeightedChoice(r, m.channel.Row(input))
}

// Samplers returns the per-input-cell alias tables, building them once on
// first use. The returned slice is shared; treat it as read-only.
func (m *Mechanism) Samplers() ([]*rng.Alias, error) {
	m.samplersOnce.Do(func() {
		m.samplers, m.samplersErr = fo.LinearSamplers(m.channel)
	})
	return m.samplers, m.samplersErr
}

// Scheme implements fo.Reporter.
func (m *Mechanism) Scheme() string {
	return fmt.Sprintf("semgeoi d=%d epsGeo=%g k=%d", m.dom.D, m.epsGeo, m.k)
}

// ReportShape implements fo.Reporter: one plane of subset-centre counts.
func (m *Mechanism) ReportShape() []int { return []int{m.NumOutputs()} }

// Report implements fo.Reporter: one user's noisy subset centre, drawn
// through the cached alias samplers (the same draw the sequential
// pipeline has always used, so it stays byte-identical).
func (m *Mechanism) Report(input int, r *rng.RNG) (fo.Report, error) {
	samplers, err := m.Samplers()
	if err != nil {
		return fo.Report{}, err
	}
	if input < 0 || input >= len(samplers) {
		return fo.Report{}, fmt.Errorf("semgeoi: input cell %d outside [0, %d)", input, len(samplers))
	}
	return fo.SingleIndexReport(samplers[input].Draw(r)), nil
}

// NewAggregate allocates an empty aggregate for this mechanism's reports.
func (m *Mechanism) NewAggregate() *fo.Aggregate { return fo.NewAggregateFor(m) }

// Subset expands a reported centre index into the cells of the reported
// subset, clamped to the grid.
func (m *Mechanism) Subset(center int) []geom.Cell {
	c := m.dom.CellAt(center)
	out := make([]geom.Cell, 0, len(m.ballOffs))
	for _, off := range m.ballOffs {
		cc := c.Add(off)
		cc.X = clampInt(cc.X, 0, m.dom.D-1)
		cc.Y = clampInt(cc.Y, 0, m.dom.D-1)
		out = append(out, cc)
	}
	return out
}

// Estimate recovers the input distribution from per-centre counts via EM.
func (m *Mechanism) Estimate(counts []float64) ([]float64, error) {
	return em.Estimate(m.channel, counts, &em.Options{Workers: em.ResolveWorkers(m.estWorkers)})
}

// CollectParallel simulates every user's subset report with the per-user
// draws fanned out across workers (contiguous input-cell chunks, one
// deterministic RNG stream per worker — reproducible for a fixed seed and
// worker count; validation lives in fo.CollectParallelAlias). workers ≤ 0
// selects GOMAXPROCS.
func (m *Mechanism) CollectParallel(trueCounts []float64, seed uint64, workers int) ([]float64, error) {
	samplers, err := m.Samplers()
	if err != nil {
		return nil, err
	}
	return fo.CollectParallelAlias(samplers, m.NumOutputs(), trueCounts, seed, workers)
}

// EstimateFromAggregate decodes an accumulated aggregate (one shard or a
// merge of many) into the estimated input distribution via EM.
func (m *Mechanism) EstimateFromAggregate(agg *fo.Aggregate) (*grid.Hist2D, error) {
	if err := agg.Compatible(m); err != nil {
		return nil, fmt.Errorf("semgeoi: %w", err)
	}
	est, err := m.Estimate(agg.Planes[0])
	if err != nil {
		return nil, err
	}
	return grid.HistFromMass(m.dom, est)
}

// EstimateHist runs the full report lifecycle in-process. With
// WithWorkers ≠ 1 the collection step fans out through CollectParallel,
// seeded from the caller's stream.
func (m *Mechanism) EstimateHist(truth *grid.Hist2D, r *rng.RNG) (*grid.Hist2D, error) {
	if truth.Dom.D != m.dom.D {
		return nil, fmt.Errorf("semgeoi: histogram d=%d, mechanism d=%d", truth.Dom.D, m.dom.D)
	}
	var agg *fo.Aggregate
	if m.workers != 1 {
		counts, err := m.CollectParallel(truth.Mass, r.Uint64(), m.workers)
		if err != nil {
			return nil, err
		}
		agg, err = fo.AggregateFromCounts(m.Scheme(), counts)
		if err != nil {
			return nil, err
		}
	} else {
		agg = m.NewAggregate()
		if err := fo.Accumulate(m, agg, truth.Mass, r); err != nil {
			return nil, err
		}
	}
	return m.EstimateFromAggregate(agg)
}

// GeoIRatioHolds verifies the Geo-I guarantee on the channel: for every
// output and every input pair, Pr[o|v1]/Pr[o|v2] ≤ e^{ε'·dis(v1,v2)}.
// Exposed for tests and audits.
func (m *Mechanism) GeoIRatioHolds(tol float64) bool {
	n := m.NumInputs()
	ch := m.Channel()
	for i1 := 0; i1 < n; i1++ {
		for i2 := i1 + 1; i2 < n; i2++ {
			bound := math.Exp(m.epsGeo * m.dom.CellAt(i1).CenterDist(m.dom.CellAt(i2)))
			for j := 0; j < m.NumOutputs(); j++ {
				p1, p2 := ch.At(i1, j), ch.At(i2, j)
				if p2 == 0 || p1 == 0 {
					return false
				}
				r := p1 / p2
				if r < 1 {
					r = 1 / r
				}
				if r > bound*(1+tol) {
					return false
				}
			}
		}
	}
	return true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
