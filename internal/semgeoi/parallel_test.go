package semgeoi

import (
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func TestCollectParallelConservesUsers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 2}, 1500)
	truth.Set(geom.Cell{X: 3, Y: 4}, 2500)
	for _, workers := range []int{1, 3, 0} {
		counts, err := m.CollectParallel(truth.Mass, 11, workers)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, c := range counts {
			total += c
		}
		if total != 4000 {
			t.Fatalf("workers=%d: collected %v, want 4000", workers, total)
		}
	}
}

func TestCollectParallelRejectsInvalid(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CollectParallel(make([]float64, 2), 1, 2); err == nil {
		t.Fatal("wrong length accepted")
	}
	bad := make([]float64, dom.NumCells())
	bad[0] = 0.5
	if _, err := m.CollectParallel(bad, 1, 2); err == nil {
		t.Fatal("fractional count accepted")
	}
}

func TestEstimateHistWithWorkers(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dom, 2, WithWorkers(-2)); err == nil {
		t.Fatal("negative worker count accepted")
	}
	m, err := New(dom, 2, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 2, Y: 2}, 4000)
	a, err := m.EstimateHist(truth, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstimateHist(truth, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range a.Mass {
		if a.Mass[i] != b.Mass[i] {
			t.Fatal("same seed and worker count diverged")
		}
		sum += a.Mass[i]
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("estimate not normalised: total %v", sum)
	}
}
