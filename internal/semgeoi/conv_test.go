package semgeoi

import (
	"math"
	"testing"

	"dpspatial/internal/em"
	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
)

// TestChannelUsesConvRepresentation: the exponential kernel is
// displacement-invariant, so the calibration check must admit the
// convolutional fast path on every square grid.
func TestChannelUsesConvRepresentation(t *testing.T) {
	for _, d := range []int{2, 5, 8} {
		m, err := New(testDomain(t, d), 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Linear().(*fo.ConvChannel); !ok {
			t.Errorf("d=%d: channel is %T, want *fo.ConvChannel", d, m.Linear())
		}
	}
}

// TestConvRowsBitIdenticalToDense: Row (and hence Perturb and the alias
// samplers, i.e. every report stream) must reproduce the dense
// construction bit for bit.
func TestConvRowsBitIdenticalToDense(t *testing.T) {
	m, err := New(testDomain(t, 7), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	lin := m.Linear()
	if _, ok := lin.(*fo.ConvChannel); !ok {
		t.Fatalf("channel is %T, want *fo.ConvChannel", lin)
	}
	dense := m.Channel()
	for i := 0; i < m.NumInputs(); i++ {
		dr := dense.Row(i)
		cr := lin.Row(i)
		for j := range dr {
			if dr[j] != cr[j] {
				t.Fatalf("row %d entry %d differs in bits", i, j)
			}
		}
	}
}

// TestConvEstimateMatchesDenseDecode: the FFT decode must agree with the
// exact dense decode to ≤ 1e-9.
func TestConvEstimateMatchesDenseDecode(t *testing.T) {
	m, err := New(testDomain(t, 9), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(88)
	counts := make([]float64, m.NumOutputs())
	for j := range counts {
		counts[j] = float64(r.Intn(40))
	}
	counts[0] = 1 // ensure nonzero total regardless of draws

	got, err := m.Estimate(counts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := em.Estimate(m.Channel(), counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > 1e-9 {
			t.Fatalf("estimate differs from dense decode by %g at %d", d, i)
		}
	}
}
