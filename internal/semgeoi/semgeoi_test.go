package semgeoi

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func testDomain(t *testing.T, d int) grid.Domain {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestChannelRowStochastic(t *testing.T) {
	for _, d := range []int{1, 3, 6} {
		for _, eps := range []float64{0.3, 1, 4} {
			m, err := New(testDomain(t, d), eps)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Channel().Validate(); err != nil {
				t.Fatalf("d=%d eps=%v: %v", d, eps, err)
			}
		}
	}
}

func TestGeoIGuarantee(t *testing.T) {
	for _, d := range []int{3, 5} {
		for _, eps := range []float64{0.5, 2} {
			m, err := New(testDomain(t, d), eps)
			if err != nil {
				t.Fatal(err)
			}
			if !m.GeoIRatioHolds(1e-9) {
				t.Fatalf("d=%d eps=%v: Geo-I ratio violated", d, eps)
			}
		}
	}
}

func TestCloserCellsMoreLikely(t *testing.T) {
	dom := testDomain(t, 7)
	m, err := New(dom, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	in := dom.Index(geom.Cell{X: 3, Y: 3})
	pSelf := m.Channel().At(in, in)
	pNear := m.Channel().At(in, dom.Index(geom.Cell{X: 4, Y: 3}))
	pFar := m.Channel().At(in, dom.Index(geom.Cell{X: 6, Y: 6}))
	if !(pSelf > pNear && pNear > pFar) {
		t.Fatalf("probabilities not distance-ordered: %v, %v, %v", pSelf, pNear, pFar)
	}
}

func TestDefaultSubsetSizeFollowsComplexityRule(t *testing.T) {
	dom := testDomain(t, 5) // n = 25
	m, err := New(dom, 1)   // n/e ≈ 9.2
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Max(1, 25/math.E))
	if m.SubsetSize() != want {
		t.Fatalf("default k = %d, want %d", m.SubsetSize(), want)
	}
	// Large ε collapses the subset to a single cell.
	m, err = New(dom, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.SubsetSize() != 1 {
		t.Fatalf("large-eps k = %d, want 1", m.SubsetSize())
	}
}

func TestSubsetSizeOverrideAndBounds(t *testing.T) {
	dom := testDomain(t, 4)
	m, err := New(dom, 1, WithSubsetSize(5))
	if err != nil {
		t.Fatal(err)
	}
	if m.SubsetSize() != 5 {
		t.Fatalf("k = %d, want 5", m.SubsetSize())
	}
	if got := len(m.Subset(0)); got != 5 {
		t.Fatalf("subset has %d cells, want 5", got)
	}
	if _, err := New(dom, 1, WithSubsetSize(0)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(dom, 1, WithSubsetSize(17)); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestSubsetCellsInsideGrid(t *testing.T) {
	dom := testDomain(t, 4)
	m, err := New(dom, 0.5, WithSubsetSize(9))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NumOutputs(); c++ {
		for _, cell := range m.Subset(c) {
			if !dom.Contains(cell) {
				t.Fatalf("subset of centre %d contains out-of-grid cell %v", c, cell)
			}
		}
	}
}

func TestBallOffsetsAreNearestCells(t *testing.T) {
	offs := ballOffsets(5)
	// The 5 nearest cells to the origin are the centre plus the 4 axis
	// neighbours.
	want := map[geom.Cell]bool{
		{X: 0, Y: 0}: true, {X: 1, Y: 0}: true, {X: -1, Y: 0}: true, {X: 0, Y: 1}: true, {X: 0, Y: -1}: true,
	}
	if len(offs) != 5 {
		t.Fatalf("got %d offsets", len(offs))
	}
	for _, o := range offs {
		if !want[o] {
			t.Fatalf("unexpected ball offset %v", o)
		}
	}
}

func TestPerturbMatchesChannel(t *testing.T) {
	dom := testDomain(t, 4)
	m, err := New(dom, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	in := dom.Index(geom.Cell{X: 1, Y: 2})
	const trials = 100000
	counts := make([]float64, m.NumOutputs())
	for i := 0; i < trials; i++ {
		counts[m.Perturb(in, r)]++
	}
	for j := range counts {
		want := m.Channel().At(in, j)
		if math.Abs(counts[j]/trials-want) > 0.01 {
			t.Fatalf("output %d freq %v, want %v", j, counts[j]/trials, want)
		}
	}
}

func TestEstimateHistRecoversWithLargeBudget(t *testing.T) {
	dom := testDomain(t, 5)
	m, err := New(dom, 8)
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewHist(dom)
	truth.Set(geom.Cell{X: 1, Y: 1}, 20000)
	truth.Set(geom.Cell{X: 3, Y: 3}, 20000)
	est, err := m.EstimateHist(truth, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	want := truth.Clone().Normalize()
	tv, err := grid.TotalVariation(est, want)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.1 {
		t.Fatalf("high-budget recovery TV = %v", tv)
	}
}

func TestErrors(t *testing.T) {
	dom := testDomain(t, 3)
	if _, err := New(dom, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := New(dom, math.NaN()); err == nil {
		t.Fatal("NaN eps accepted")
	}
	m, err := New(dom, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := grid.NewHist(testDomain(t, 4))
	if _, err := m.EstimateHist(other, rng.New(1)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	bad := grid.NewHist(dom)
	bad.Mass[0] = 0.5
	if _, err := m.EstimateHist(bad, rng.New(1)); err == nil {
		t.Fatal("fractional count accepted")
	}
}
