package lp

import (
	"math"
	"sort"
	"testing"

	"dpspatial/internal/rng"
)

func solveOrFail(t *testing.T, supply, demand []float64, cost func(i, j int) float64) *Plan {
	t.Helper()
	plan, err := Solve(supply, demand, cost)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSolveTrivialSingleCell(t *testing.T) {
	plan := solveOrFail(t, []float64{5}, []float64{5}, func(i, j int) float64 { return 3 })
	if math.Abs(plan.Objective-15) > 1e-9 {
		t.Fatalf("objective %v, want 15", plan.Objective)
	}
}

func TestSolveIdentityIsFree(t *testing.T) {
	supply := []float64{1, 2, 3}
	cost := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 1
	}
	plan := solveOrFail(t, supply, supply, cost)
	if plan.Objective > 1e-12 {
		t.Fatalf("identical marginals cost %v, want 0", plan.Objective)
	}
}

func TestSolveKnown2x2(t *testing.T) {
	// Supply (1,1), demand (1,1), costs [[0,2],[2,0]] vs [[2,0],[0,2]]:
	// the optimum pairs up the zero-cost arcs.
	plan := solveOrFail(t, []float64{1, 1}, []float64{1, 1}, func(i, j int) float64 {
		if i == j {
			return 2
		}
		return 0
	})
	if math.Abs(plan.Objective) > 1e-12 {
		t.Fatalf("objective %v, want 0 (swap assignment)", plan.Objective)
	}
}

func TestSolveKnown3x3(t *testing.T) {
	// Classic textbook instance with known optimum.
	supply := []float64{20, 30, 25}
	demand := []float64{10, 35, 30}
	costs := [][]float64{
		{2, 3, 1},
		{5, 4, 8},
		{5, 6, 8},
	}
	plan := solveOrFail(t, supply, demand, func(i, j int) float64 { return costs[i][j] })
	// Verify optimality against brute-force over vertices via LP duality:
	// here we simply check against an exhaustive search on a fine integer
	// grid of feasible plans (flows are integral at vertices for integral
	// marginals).
	best := bruteForce3x3(supply, demand, costs)
	if math.Abs(plan.Objective-best) > 1e-6 {
		t.Fatalf("objective %v, brute force %v", plan.Objective, best)
	}
}

// bruteForce3x3 enumerates all integral feasible plans of a 3x3
// transportation problem (valid because some optimal vertex is integral
// when marginals are integral).
func bruteForce3x3(supply, demand []float64, costs [][]float64) float64 {
	best := math.Inf(1)
	s0, s1 := int(supply[0]), int(supply[1])
	d0, d1 := int(demand[0]), int(demand[1])
	for x00 := 0; x00 <= min(s0, d0); x00++ {
		for x01 := 0; x01 <= min(s0-x00, d1); x01++ {
			x02 := s0 - x00 - x01
			for x10 := 0; x10 <= min(s1, d0-x00); x10++ {
				for x11 := 0; x11 <= min(s1-x10, d1-x01); x11++ {
					x12 := s1 - x10 - x11
					x20 := d0 - x00 - x10
					x21 := d1 - x01 - x11
					x22 := int(supply[2]) - x20 - x21
					if x02 < 0 || x12 < 0 || x20 < 0 || x21 < 0 || x22 < 0 {
						continue
					}
					if x02+x12+x22 != int(demand[2]) {
						continue
					}
					c := float64(x00)*costs[0][0] + float64(x01)*costs[0][1] + float64(x02)*costs[0][2] +
						float64(x10)*costs[1][0] + float64(x11)*costs[1][1] + float64(x12)*costs[1][2] +
						float64(x20)*costs[2][0] + float64(x21)*costs[2][1] + float64(x22)*costs[2][2]
					if c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSolveMatchesMonotoneCouplingOnLine(t *testing.T) {
	// For distributions on a line with convex cost |x-y|^p, the monotone
	// (quantile) coupling is optimal. Compare the LP objective against it.
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(8)
		supply := make([]float64, n)
		demand := make([]float64, n)
		for i := range supply {
			supply[i] = r.Float64()
			demand[i] = r.Float64()
		}
		normalize(supply)
		normalize(demand)
		for _, p := range []float64{1, 2} {
			cost := func(i, j int) float64 {
				return math.Pow(math.Abs(float64(i-j)), p)
			}
			plan := solveOrFail(t, supply, demand, cost)
			want := monotoneCouplingCost(supply, demand, p)
			if math.Abs(plan.Objective-want) > 1e-8 {
				t.Fatalf("trial %d p=%v: LP %v, monotone coupling %v", trial, p, plan.Objective, want)
			}
		}
	}
}

func normalize(v []float64) {
	total := 0.0
	for _, x := range v {
		total += x
	}
	for i := range v {
		v[i] /= total
	}
}

// monotoneCouplingCost computes the optimal 1-D transport cost by pairing
// quantiles in order.
func monotoneCouplingCost(a, b []float64, p float64) float64 {
	i, j := 0, 0
	ra, rb := a[0], b[0]
	cost := 0.0
	for i < len(a) && j < len(b) {
		move := math.Min(ra, rb)
		cost += move * math.Pow(math.Abs(float64(i-j)), p)
		ra -= move
		rb -= move
		if ra <= 1e-15 {
			i++
			if i < len(a) {
				ra = a[i]
			}
		}
		if rb <= 1e-15 {
			j++
			if j < len(b) {
				rb = b[j]
			}
		}
	}
	return cost
}

func TestSolvePlanIsFeasible(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		m, n := 4+r.Intn(5), 4+r.Intn(5)
		supply := make([]float64, m)
		demand := make([]float64, n)
		for i := range supply {
			supply[i] = r.Float64()
		}
		for j := range demand {
			demand[j] = r.Float64()
		}
		normalize(supply)
		normalize(demand)
		costM := make([][]float64, m)
		for i := range costM {
			costM[i] = make([]float64, n)
			for j := range costM[i] {
				costM[i][j] = r.Float64() * 10
			}
		}
		plan := solveOrFail(t, supply, demand, func(i, j int) float64 { return costM[i][j] })
		rowSum := make([]float64, m)
		colSum := make([]float64, n)
		for _, f := range plan.Flows {
			if f.Amount < 0 {
				t.Fatalf("negative flow %v", f)
			}
			rowSum[f.From] += f.Amount
			colSum[f.To] += f.Amount
		}
		for i := range rowSum {
			if math.Abs(rowSum[i]-supply[i]) > 1e-9 {
				t.Fatalf("trial %d: row %d ships %v, supply %v", trial, i, rowSum[i], supply[i])
			}
		}
		for j := range colSum {
			if math.Abs(colSum[j]-demand[j]) > 1e-9 {
				t.Fatalf("trial %d: col %d receives %v, demand %v", trial, j, colSum[j], demand[j])
			}
		}
	}
}

func TestSolveNeverBeatenByRandomFeasiblePlans(t *testing.T) {
	// The LP optimum must lower-bound the cost of arbitrary feasible
	// plans, here independent (product) couplings.
	r := rng.New(13)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(6)
		supply := make([]float64, n)
		demand := make([]float64, n)
		for i := range supply {
			supply[i] = r.Float64() + 0.01
			demand[i] = r.Float64() + 0.01
		}
		normalize(supply)
		normalize(demand)
		costM := make([][]float64, n)
		for i := range costM {
			costM[i] = make([]float64, n)
			for j := range costM[i] {
				costM[i][j] = r.Float64() * 5
			}
		}
		plan := solveOrFail(t, supply, demand, func(i, j int) float64 { return costM[i][j] })
		product := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				product += supply[i] * demand[j] * costM[i][j]
			}
		}
		if plan.Objective > product+1e-9 {
			t.Fatalf("trial %d: LP %v exceeds product coupling %v", trial, plan.Objective, product)
		}
	}
}

func TestSolveDegenerateManyZeros(t *testing.T) {
	supply := []float64{0, 0, 1, 0, 0, 1, 0}
	demand := []float64{1, 0, 0, 0, 1, 0, 0}
	plan := solveOrFail(t, supply, demand, func(i, j int) float64 {
		return math.Abs(float64(i - j))
	})
	// Mass at 2 and 5 must travel to 0 and 4: optimal pairing 2→0 (cost 2)
	// and 5→4 (cost 1) for total 3; the crossed pairing costs 3+5.
	if math.Abs(plan.Objective-3) > 1e-9 {
		t.Fatalf("objective %v, want 3", plan.Objective)
	}
}

func TestSolveRejectsInvalidInput(t *testing.T) {
	cost := func(i, j int) float64 { return 1 }
	if _, err := Solve(nil, []float64{1}, cost); err == nil {
		t.Fatal("empty supply accepted")
	}
	if _, err := Solve([]float64{1}, nil, cost); err == nil {
		t.Fatal("empty demand accepted")
	}
	if _, err := Solve([]float64{-1, 2}, []float64{1}, cost); err == nil {
		t.Fatal("negative supply accepted")
	}
	if _, err := Solve([]float64{1}, []float64{2}, cost); err == nil {
		t.Fatal("unbalanced problem accepted")
	}
	if _, err := Solve([]float64{0}, []float64{0}, cost); err == nil {
		t.Fatal("zero-mass problem accepted")
	}
	if _, err := Solve([]float64{math.NaN()}, []float64{1}, cost); err == nil {
		t.Fatal("NaN supply accepted")
	}
}

func TestSolveSymmetricCostSymmetricObjective(t *testing.T) {
	r := rng.New(17)
	n := 6
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Float64() + 0.1
		b[i] = r.Float64() + 0.1
	}
	normalize(a)
	normalize(b)
	cost := func(i, j int) float64 { d := float64(i - j); return d * d }
	ab := solveOrFail(t, a, b, cost)
	ba := solveOrFail(t, b, a, cost)
	if math.Abs(ab.Objective-ba.Objective) > 1e-9 {
		t.Fatalf("W(a,b)=%v but W(b,a)=%v", ab.Objective, ba.Objective)
	}
}

func TestSolveLargerGridConverges(t *testing.T) {
	// 15x15 grid squared-Euclidean instance (the size the paper solves
	// exactly): must converge and match the monotone lower bound sanity.
	const d = 15
	n := d * d
	r := rng.New(23)
	supply := make([]float64, n)
	demand := make([]float64, n)
	for i := range supply {
		supply[i] = r.Float64()
		demand[i] = r.Float64()
	}
	normalize(supply)
	normalize(demand)
	cost := func(i, j int) float64 {
		xi, yi := i%d, i/d
		xj, yj := j%d, j/d
		dx, dy := float64(xi-xj), float64(yi-yj)
		return dx*dx + dy*dy
	}
	plan := solveOrFail(t, supply, demand, cost)
	if plan.Objective < 0 {
		t.Fatalf("negative objective %v", plan.Objective)
	}
	// Sanity: moving everything at most the grid diameter bounds the cost.
	if plan.Objective > 2*float64(d*d) {
		t.Fatalf("objective %v exceeds diameter bound", plan.Objective)
	}
}

func TestPlanFlowsSortedDeterministic(t *testing.T) {
	supply := []float64{1, 1}
	demand := []float64{1, 1}
	cost := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 1
	}
	p1 := solveOrFail(t, supply, demand, cost)
	p2 := solveOrFail(t, supply, demand, cost)
	key := func(p *Plan) []int {
		var k []int
		for _, f := range p.Flows {
			k = append(k, f.From*100+f.To)
		}
		sort.Ints(k)
		return k
	}
	k1, k2 := key(p1), key(p2)
	if len(k1) != len(k2) {
		t.Fatal("non-deterministic plan structure")
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("non-deterministic plan contents")
		}
	}
}
