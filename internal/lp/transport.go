// Package lp implements a transportation-problem solver: the linear
// program of Equation (17) that the paper solves to obtain exact 2-D
// Wasserstein distances between discrete distributions.
//
// The solver is the classical transportation simplex: a northwest-corner
// initial basic feasible solution followed by MODI (u-v) pivoting on the
// basis spanning tree, with deterministic tie-breaking and an iteration
// cap for anti-cycling safety. Zero-mass rows and columns are filtered
// before solving, which matters in practice because spatial histograms are
// sparse.
package lp

import (
	"fmt"
	"math"
)

// Flow is one nonzero entry of an optimal transportation plan.
type Flow struct {
	From, To int
	Amount   float64
}

// Plan is the result of solving a transportation problem.
type Plan struct {
	Flows     []Flow
	Objective float64
}

const (
	reducedCostTol = 1e-10
	balanceRelTol  = 1e-6
)

// Solve minimises Σ cost(i,j)·x(i,j) subject to row sums = supply, column
// sums = demand, x ≥ 0. Supply and demand must be non-negative and have
// equal totals (within a small relative tolerance; demand is rescaled to
// balance exactly). cost is called with original indices.
func Solve(supply, demand []float64, cost func(i, j int) float64) (*Plan, error) {
	if len(supply) == 0 || len(demand) == 0 {
		return nil, fmt.Errorf("lp: empty supply or demand")
	}
	var supTotal, demTotal float64
	for i, s := range supply {
		if s < 0 || math.IsNaN(s) {
			return nil, fmt.Errorf("lp: invalid supply %v at %d", s, i)
		}
		supTotal += s
	}
	for j, d := range demand {
		if d < 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("lp: invalid demand %v at %d", d, j)
		}
		demTotal += d
	}
	if supTotal <= 0 || demTotal <= 0 {
		return nil, fmt.Errorf("lp: zero total mass")
	}
	if math.Abs(supTotal-demTotal) > balanceRelTol*math.Max(supTotal, demTotal) {
		return nil, fmt.Errorf("lp: unbalanced problem (supply %v, demand %v)", supTotal, demTotal)
	}

	// Filter zero-mass rows/columns; rescale demand to balance exactly.
	rows := make([]int, 0, len(supply))
	for i, s := range supply {
		if s > 0 {
			rows = append(rows, i)
		}
	}
	cols := make([]int, 0, len(demand))
	for j, d := range demand {
		if d > 0 {
			cols = append(cols, j)
		}
	}
	m, n := len(rows), len(cols)
	a := make([]float64, m)
	for k, i := range rows {
		a[k] = supply[i]
	}
	b := make([]float64, n)
	scale := supTotal / demTotal
	for k, j := range cols {
		b[k] = demand[j] * scale
	}

	t := &tableau{
		m: m, n: n,
		a: a, b: b,
		cost: func(i, j int) float64 { return cost(rows[i], cols[j]) },
	}
	if err := t.solve(); err != nil {
		return nil, err
	}

	plan := &Plan{}
	for _, arc := range t.basis {
		if arc.flow > 0 {
			plan.Flows = append(plan.Flows, Flow{
				From:   rows[arc.i],
				To:     cols[arc.j],
				Amount: arc.flow,
			})
			plan.Objective += arc.flow * t.cost(arc.i, arc.j)
		}
	}
	return plan, nil
}

type arc struct {
	i, j int
	flow float64
}

// tableau carries the transportation-simplex state. The basis is a
// spanning tree over m row-nodes and n column-nodes with exactly m+n-1
// arcs (some possibly degenerate with zero flow).
type tableau struct {
	m, n  int
	a, b  []float64
	cost  func(i, j int) float64
	basis []arc

	// adjacency: node id = i for rows, m+j for columns
	adj [][]int // node -> indices into basis
}

func (t *tableau) solve() error {
	t.northwestCorner()
	t.rebuildAdjacency()

	maxIter := 20 * (t.m + t.n) * maxInt(t.m, t.n)
	if maxIter < 1000 {
		maxIter = 1000
	}
	u := make([]float64, t.m)
	v := make([]float64, t.n)
	for iter := 0; iter < maxIter; iter++ {
		t.computeDuals(u, v)
		ei, ej, red := t.findEntering(u, v)
		if red >= -reducedCostTol {
			return nil // optimal
		}
		if err := t.pivot(ei, ej); err != nil {
			return err
		}
	}
	return fmt.Errorf("lp: simplex did not converge within %d iterations", maxIter)
}

// northwestCorner builds an initial basic feasible solution with exactly
// m+n-1 arcs: when a row and column exhaust simultaneously, only the row
// advances and a degenerate zero-flow arc enters the basis at the next
// step.
func (t *tableau) northwestCorner() {
	aRem := make([]float64, t.m)
	copy(aRem, t.a)
	bRem := make([]float64, t.n)
	copy(bRem, t.b)
	t.basis = make([]arc, 0, t.m+t.n-1)
	i, j := 0, 0
	for i < t.m && j < t.n {
		f := math.Min(aRem[i], bRem[j])
		t.basis = append(t.basis, arc{i: i, j: j, flow: f})
		aRem[i] -= f
		bRem[j] -= f
		if i == t.m-1 && j == t.n-1 {
			break
		}
		// Advance exactly one index per step so the basis stays a tree of
		// m+n-1 arcs even under degeneracy.
		if aRem[i] <= bRem[j] && i < t.m-1 || j == t.n-1 {
			i++
		} else {
			j++
		}
	}
}

func (t *tableau) rebuildAdjacency() {
	total := t.m + t.n
	if t.adj == nil {
		t.adj = make([][]int, total)
	}
	for k := range t.adj {
		t.adj[k] = t.adj[k][:0]
	}
	for idx, arc := range t.basis {
		t.adj[arc.i] = append(t.adj[arc.i], idx)
		t.adj[t.m+arc.j] = append(t.adj[t.m+arc.j], idx)
	}
}

// computeDuals solves u_i + v_j = cost(i,j) over the basis tree, rooted at
// row 0 with u_0 = 0.
func (t *tableau) computeDuals(u, v []float64) {
	total := t.m + t.n
	visited := make([]bool, total)
	stack := []int{0}
	u[0] = 0
	visited[0] = true
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range t.adj[node] {
			ar := t.basis[ai]
			var other int
			if node < t.m { // row node: neighbour is the column
				other = t.m + ar.j
				if !visited[other] {
					v[ar.j] = t.cost(ar.i, ar.j) - u[ar.i]
				}
			} else { // column node: neighbour is the row
				other = ar.i
				if !visited[other] {
					u[ar.i] = t.cost(ar.i, ar.j) - v[ar.j]
				}
			}
			if !visited[other] {
				visited[other] = true
				stack = append(stack, other)
			}
		}
	}
}

// findEntering returns the non-basic cell with the most negative reduced
// cost (Dantzig's rule; ties broken by lowest index for determinism).
func (t *tableau) findEntering(u, v []float64) (int, int, float64) {
	bestI, bestJ := -1, -1
	best := 0.0
	inBasis := make(map[int]bool, len(t.basis))
	for _, ar := range t.basis {
		inBasis[ar.i*t.n+ar.j] = true
	}
	for i := 0; i < t.m; i++ {
		for j := 0; j < t.n; j++ {
			if inBasis[i*t.n+j] {
				continue
			}
			red := t.cost(i, j) - u[i] - v[j]
			if red < best {
				best = red
				bestI, bestJ = i, j
			}
		}
	}
	return bestI, bestJ, best
}

// pivot brings (ei, ej) into the basis: find the unique cycle formed with
// the basis tree, shift θ units of flow around it, and drop the arc that
// hits zero.
func (t *tableau) pivot(ei, ej int) error {
	path, err := t.treePath(ei, t.m+ej)
	if err != nil {
		return err
	}
	// The cycle alternates entering(+), path[0](-), path[1](+), ...
	theta := math.Inf(1)
	leaving := -1
	for k, ai := range path {
		if k%2 == 0 { // arcs losing flow
			if t.basis[ai].flow < theta {
				theta = t.basis[ai].flow
				leaving = ai
			}
		}
	}
	if leaving < 0 {
		return fmt.Errorf("lp: pivot found no leaving arc")
	}
	for k, ai := range path {
		if k%2 == 0 {
			t.basis[ai].flow -= theta
		} else {
			t.basis[ai].flow += theta
		}
	}
	t.basis[leaving] = arc{i: ei, j: ej, flow: theta}
	t.rebuildAdjacency()
	return nil
}

// treePath returns the basis arcs along the unique tree path from node
// `from` (a row node) to node `to` (a column node), in order.
func (t *tableau) treePath(from, to int) ([]int, error) {
	total := t.m + t.n
	prevArc := make([]int, total)
	prevNode := make([]int, total)
	for k := range prevArc {
		prevArc[k] = -1
		prevNode[k] = -1
	}
	visited := make([]bool, total)
	queue := []int{from}
	visited[from] = true
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if node == to {
			break
		}
		for _, ai := range t.adj[node] {
			ar := t.basis[ai]
			other := ar.i
			if node < t.m {
				other = t.m + ar.j
			}
			if !visited[other] {
				visited[other] = true
				prevArc[other] = ai
				prevNode[other] = node
				queue = append(queue, other)
			}
		}
	}
	if !visited[to] {
		return nil, fmt.Errorf("lp: basis tree is disconnected")
	}
	var path []int
	for node := to; node != from; node = prevNode[node] {
		path = append(path, prevArc[node])
	}
	// path currently runs to→from; reverse so it runs from→to, matching
	// the alternation convention in pivot (first arc adjacent to `from`).
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
