package transport

import (
	"fmt"
	"math"

	"dpspatial/internal/grid"
)

// SinkhornOptions controls the entropy-regularised solver.
type SinkhornOptions struct {
	// Reg is the entropic regularisation strength λ in squared-cell-unit
	// cost units. Smaller values approximate the exact distance more
	// closely but converge more slowly. Zero selects 0.5 (roughly a
	// 0.7-cell blur), which keeps mechanism orderings intact at the
	// paper's grid sizes; use Debias (or a smaller Reg) when absolute
	// values near zero matter.
	Reg float64
	// MaxIter caps the number of Sinkhorn iterations (default 2000).
	MaxIter int
	// Tol is the marginal violation at which iteration stops
	// (default 1e-7).
	Tol float64
	// Debias computes the Sinkhorn-divergence correction
	// cost(a,b) − ½cost(a,a) − ½cost(b,b), which removes the entropic
	// blur's additive floor (three solves instead of one).
	Debias bool
}

func (o *SinkhornOptions) withDefaults() SinkhornOptions {
	out := SinkhornOptions{Reg: 0, MaxIter: 2000, Tol: 1e-7}
	if o != nil {
		out = *o
	}
	if out.Reg <= 0 {
		out.Reg = 0.5
	}
	if out.MaxIter <= 0 {
		out.MaxIter = 2000
	}
	if out.Tol <= 0 {
		out.Tol = 1e-7
	}
	return out
}

// W2Sinkhorn approximates the 2-norm Wasserstein distance between two
// normalised histograms using log-domain stabilised Sinkhorn iterations.
// The returned value is the transport cost of the regularised plan (not
// including the entropy term), square-rooted, so it converges to W2Exact
// as Reg → 0. With Debias set, the entropic self-transport floor is
// subtracted first (Sinkhorn divergence), so identical inputs score ≈0
// at any regularisation.
func W2Sinkhorn(a, b *grid.Hist2D, opts *SinkhornOptions) (float64, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	o := opts.withDefaults()
	if o.Debias {
		ab, err := sinkhornCost(a, b, o)
		if err != nil {
			return 0, err
		}
		aa, err := sinkhornCost(a, a, o)
		if err != nil {
			return 0, err
		}
		bb, err := sinkhornCost(b, b, o)
		if err != nil {
			return 0, err
		}
		div := ab - (aa+bb)/2
		if div < 0 {
			div = 0
		}
		return math.Sqrt(div), nil
	}
	c, err := sinkhornCost(a, b, o)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(c), nil
}

// sinkhornCost returns the (squared-distance) transport cost of the
// regularised plan between two histograms.
func sinkhornCost(a, b *grid.Hist2D, o SinkhornOptions) (float64, error) {
	d := a.Dom.D
	n := len(a.Mass)

	mu := normalizedCopy(a.Mass)
	nu := normalizedCopy(b.Mass)
	if mu == nil || nu == nil {
		return 0, fmt.Errorf("transport: zero-mass histogram")
	}

	// Squared-Euclidean cost matrix in cell units.
	cost := make([]float64, n*n)
	for i := 0; i < n; i++ {
		xi, yi := i%d, i/d
		for j := 0; j < n; j++ {
			xj, yj := j%d, j/d
			dx, dy := float64(xi-xj), float64(yi-yj)
			cost[i*n+j] = dx*dx + dy*dy
		}
	}

	// Log-domain potentials f, g with kernel K = exp((f_i + g_j - C_ij)/λ).
	f := make([]float64, n)
	g := make([]float64, n)
	logMu := logOf(mu)
	logNu := logOf(nu)
	lam := o.Reg

	row := make([]float64, n)
	for iter := 0; iter < o.MaxIter; iter++ {
		// f_i = λ·log μ_i − λ·logΣ_j exp((g_j − C_ij)/λ)
		for i := 0; i < n; i++ {
			if math.IsInf(logMu[i], -1) {
				f[i] = math.Inf(-1)
				continue
			}
			for j := 0; j < n; j++ {
				row[j] = (g[j] - cost[i*n+j]) / lam
			}
			f[i] = lam*logMu[i] - lam*logSumExp(row)
		}
		// g_j update symmetric.
		for j := 0; j < n; j++ {
			if math.IsInf(logNu[j], -1) {
				g[j] = math.Inf(-1)
				continue
			}
			for i := 0; i < n; i++ {
				row[i] = (f[i] - cost[i*n+j]) / lam
			}
			g[j] = lam*logNu[j] - lam*logSumExp(row)
		}
		if iter%10 == 9 || iter == o.MaxIter-1 {
			if marginalError(f, g, cost, mu, lam, n) < o.Tol {
				break
			}
		}
	}

	// Transport cost of the regularised plan.
	total := 0.0
	for i := 0; i < n; i++ {
		if math.IsInf(f[i], -1) {
			continue
		}
		for j := 0; j < n; j++ {
			if math.IsInf(g[j], -1) {
				continue
			}
			pij := math.Exp((f[i] + g[j] - cost[i*n+j]) / lam)
			if pij > 0 {
				total += pij * cost[i*n+j]
			}
		}
	}
	if total < 0 {
		total = 0
	}
	return total, nil
}

func normalizedCopy(mass []float64) []float64 {
	total := 0.0
	for _, m := range mass {
		total += m
	}
	if total <= 0 {
		return nil
	}
	out := make([]float64, len(mass))
	for i, m := range mass {
		out[i] = m / total
	}
	return out
}

func logOf(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if x > 0 {
			out[i] = math.Log(x)
		} else {
			out[i] = math.Inf(-1)
		}
	}
	return out
}

func logSumExp(v []float64) float64 {
	maxV := math.Inf(-1)
	for _, x := range v {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	sum := 0.0
	for _, x := range v {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// marginalError measures how far the current plan's row marginals are from
// μ (the column marginals match exactly right after the g update).
func marginalError(f, g, cost, mu []float64, lam float64, n int) float64 {
	worst := 0.0
	for i := 0; i < n; i++ {
		if math.IsInf(f[i], -1) {
			continue
		}
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if math.IsInf(g[j], -1) {
				continue
			}
			rowSum += math.Exp((f[i] + g[j] - cost[i*n+j]) / lam)
		}
		if e := math.Abs(rowSum - mu[i]); e > worst {
			worst = e
		}
	}
	return worst
}
