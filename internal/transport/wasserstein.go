// Package transport implements the distance metrics of the paper:
//
//   - exact p-Wasserstein distance between grid histograms via the
//     transportation LP of Equation (17);
//   - the closed-form 1-D Wasserstein distance (quantile coupling) used by
//     the sliced analysis of Section V;
//   - Sinkhorn's entropy-regularised approximation (Cuturi 2013), which
//     the paper uses when d is too large for exact LP;
//   - the Radon projection of planar measures and the sliced Wasserstein
//     distance of Definitions 6–7.
package transport

import (
	"fmt"
	"math"
	"sort"

	"dpspatial/internal/grid"
	"dpspatial/internal/lp"
)

// W2Exact returns the 2-norm Wasserstein distance W₂ = √(W₂²) between two
// normalised histograms on equally-shaped domains, computed exactly via
// the transportation LP with squared-Euclidean cell-centre costs measured
// in cell units (the paper's discrete convention).
func W2Exact(a, b *grid.Hist2D) (float64, error) {
	obj, err := WpExactPow(a, b, 2)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(obj), nil
}

// WpExactPow returns the raw optimal-transport objective Σ‖x−y‖ᵖ·π(x,y)
// (that is, Wₚᵖ, not its p-th root) for normalised histograms.
func WpExactPow(a, b *grid.Hist2D, p float64) (float64, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	d := a.Dom.D
	cost := func(i, j int) float64 {
		xi, yi := i%d, i/d
		xj, yj := j%d, j/d
		dist := math.Hypot(float64(xi-xj), float64(yi-yj))
		return math.Pow(dist, p)
	}
	plan, err := lp.Solve(a.Mass, b.Mass, cost)
	if err != nil {
		return 0, fmt.Errorf("transport: %w", err)
	}
	return plan.Objective, nil
}

func compatible(a, b *grid.Hist2D) error {
	if a.Dom.D != b.Dom.D {
		return fmt.Errorf("transport: domain sizes differ (%d vs %d)", a.Dom.D, b.Dom.D)
	}
	if len(a.Mass) != len(b.Mass) {
		return fmt.Errorf("transport: mass lengths differ")
	}
	return nil
}

// WeightedPoint is a support point of a discrete 1-D measure.
type WeightedPoint struct {
	Pos  float64
	Mass float64
}

// W1D returns Wₚᵖ between two discrete 1-D measures via the monotone
// (quantile) coupling, which is optimal for convex costs on the line. The
// measures are normalised internally. Points need not be sorted.
func W1D(a, b []WeightedPoint, p float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("transport: empty 1-D measure")
	}
	as := normSorted(a)
	bs := normSorted(b)
	if as == nil || bs == nil {
		return 0, fmt.Errorf("transport: zero-mass 1-D measure")
	}
	i, j := 0, 0
	ra, rb := as[0].Mass, bs[0].Mass
	cost := 0.0
	for i < len(as) && j < len(bs) {
		move := math.Min(ra, rb)
		cost += move * math.Pow(math.Abs(as[i].Pos-bs[j].Pos), p)
		ra -= move
		rb -= move
		if ra <= 1e-15 {
			i++
			if i < len(as) {
				ra = as[i].Mass
			}
		}
		if rb <= 1e-15 {
			j++
			if j < len(bs) {
				rb = bs[j].Mass
			}
		}
	}
	return cost, nil
}

func normSorted(pts []WeightedPoint) []WeightedPoint {
	total := 0.0
	for _, p := range pts {
		total += p.Mass
	}
	if total <= 0 {
		return nil
	}
	out := make([]WeightedPoint, 0, len(pts))
	for _, p := range pts {
		if p.Mass > 0 {
			out = append(out, WeightedPoint{Pos: p.Pos, Mass: p.Mass / total})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Marginal1D converts a normalised 1-D mass vector over integer bucket
// positions into a weighted point measure.
func Marginal1D(mass []float64) []WeightedPoint {
	pts := make([]WeightedPoint, 0, len(mass))
	for i, m := range mass {
		if m > 0 {
			pts = append(pts, WeightedPoint{Pos: float64(i), Mass: m})
		}
	}
	return pts
}
