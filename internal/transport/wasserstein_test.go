package transport

import (
	"math"
	"testing"
	"testing/quick"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func newDomain(t *testing.T, d int) grid.Domain {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, float64(d), d)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func uniformHist(dom grid.Domain) *grid.Hist2D {
	h := grid.NewHist(dom)
	for i := range h.Mass {
		h.Mass[i] = 1
	}
	return h.Normalize()
}

func pointHist(dom grid.Domain, c geom.Cell) *grid.Hist2D {
	h := grid.NewHist(dom)
	h.Set(c, 1)
	return h
}

func randomHist(dom grid.Domain, r *rng.RNG) *grid.Hist2D {
	h := grid.NewHist(dom)
	for i := range h.Mass {
		h.Mass[i] = r.Float64()
	}
	return h.Normalize()
}

func TestW2ExactIdenticalIsZero(t *testing.T) {
	dom := newDomain(t, 5)
	r := rng.New(1)
	h := randomHist(dom, r)
	w, err := W2Exact(h, h)
	if err != nil {
		t.Fatal(err)
	}
	if w > 1e-9 {
		t.Fatalf("W2(h,h) = %v, want 0", w)
	}
}

func TestW2ExactPointMasses(t *testing.T) {
	dom := newDomain(t, 6)
	a := pointHist(dom, geom.Cell{X: 0, Y: 0})
	b := pointHist(dom, geom.Cell{X: 3, Y: 4})
	w, err := W2Exact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-5) > 1e-9 {
		t.Fatalf("point-mass W2 = %v, want 5", w)
	}
}

func TestW2ExactSymmetry(t *testing.T) {
	dom := newDomain(t, 5)
	r := rng.New(2)
	a, b := randomHist(dom, r), randomHist(dom, r)
	ab, err := W2Exact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := W2Exact(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab-ba) > 1e-8 {
		t.Fatalf("asymmetric: %v vs %v", ab, ba)
	}
}

func TestW2ExactTriangleInequality(t *testing.T) {
	dom := newDomain(t, 4)
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		a, b, c := randomHist(dom, r), randomHist(dom, r), randomHist(dom, r)
		ab, err := W2Exact(a, b)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := W2Exact(b, c)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := W2Exact(a, c)
		if err != nil {
			t.Fatal(err)
		}
		if ac > ab+bc+1e-8 {
			t.Fatalf("triangle violated: %v > %v + %v", ac, ab, bc)
		}
	}
}

func TestW2ExactMatches1DClosedForm(t *testing.T) {
	// Embed 1-D distributions in the bottom row of the grid: the exact 2-D
	// LP must agree with the quantile-coupling closed form.
	dom := newDomain(t, 8)
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		a, b := grid.NewHist(dom), grid.NewHist(dom)
		for x := 0; x < dom.D; x++ {
			a.Set(geom.Cell{X: x, Y: 0}, r.Float64())
			b.Set(geom.Cell{X: x, Y: 0}, r.Float64())
		}
		a.Normalize()
		b.Normalize()
		exact, err := WpExactPow(a, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		closed, err := W1D(Marginal1D(a.MarginalX()), Marginal1D(b.MarginalX()), 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-closed) > 1e-8 {
			t.Fatalf("trial %d: LP %v, 1-D closed form %v", trial, exact, closed)
		}
	}
}

func TestW2ExactDomainMismatch(t *testing.T) {
	a := uniformHist(newDomain(t, 3))
	b := uniformHist(newDomain(t, 4))
	if _, err := W2Exact(a, b); err == nil {
		t.Fatal("domain mismatch accepted")
	}
}

func TestW1DBasics(t *testing.T) {
	a := []WeightedPoint{{Pos: 0, Mass: 1}}
	b := []WeightedPoint{{Pos: 3, Mass: 1}}
	w, err := W1D(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-3) > 1e-12 {
		t.Fatalf("W1 = %v, want 3", w)
	}
	w, err = W1D(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-9) > 1e-12 {
		t.Fatalf("W2² = %v, want 9", w)
	}
}

func TestW1DUnsortedInput(t *testing.T) {
	a := []WeightedPoint{{Pos: 5, Mass: 0.5}, {Pos: 0, Mass: 0.5}}
	b := []WeightedPoint{{Pos: 0, Mass: 0.5}, {Pos: 5, Mass: 0.5}}
	w, err := W1D(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w > 1e-12 {
		t.Fatalf("identical unsorted measures W = %v, want 0", w)
	}
}

func TestW1DNormalisesMass(t *testing.T) {
	a := []WeightedPoint{{Pos: 0, Mass: 10}}
	b := []WeightedPoint{{Pos: 1, Mass: 2}}
	w, err := W1D(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-12 {
		t.Fatalf("W1 = %v, want 1 after normalisation", w)
	}
}

func TestW1DErrors(t *testing.T) {
	if _, err := W1D(nil, []WeightedPoint{{0, 1}}, 1); err == nil {
		t.Fatal("empty measure accepted")
	}
	if _, err := W1D([]WeightedPoint{{0, 0}}, []WeightedPoint{{0, 1}}, 1); err == nil {
		t.Fatal("zero-mass measure accepted")
	}
}

func TestSinkhornApproximatesExact(t *testing.T) {
	dom := newDomain(t, 6)
	r := rng.New(7)
	for trial := 0; trial < 3; trial++ {
		a, b := randomHist(dom, r), randomHist(dom, r)
		exact, err := W2Exact(a, b)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := W2Sinkhorn(a, b, &SinkhornOptions{Reg: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(approx-exact) > 0.15*math.Max(exact, 0.1) {
			t.Fatalf("trial %d: Sinkhorn %v vs exact %v", trial, approx, exact)
		}
	}
}

func TestSinkhornTightensWithSmallerReg(t *testing.T) {
	dom := newDomain(t, 5)
	r := rng.New(11)
	a, b := randomHist(dom, r), randomHist(dom, r)
	exact, err := W2Exact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := W2Sinkhorn(a, b, &SinkhornOptions{Reg: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := W2Sinkhorn(a, b, &SinkhornOptions{Reg: 0.02, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tight-exact) > math.Abs(loose-exact)+1e-9 {
		t.Fatalf("smaller reg did not tighten: exact %v, loose %v, tight %v", exact, loose, tight)
	}
}

func TestSinkhornIdenticalNearZero(t *testing.T) {
	dom := newDomain(t, 5)
	h := uniformHist(dom)
	w, err := W2Sinkhorn(h, h, &SinkhornOptions{Reg: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if w > 0.3 {
		t.Fatalf("Sinkhorn self-distance %v too large", w)
	}
}

func TestSinkhornPointMassSeparation(t *testing.T) {
	dom := newDomain(t, 6)
	a := pointHist(dom, geom.Cell{X: 0, Y: 0})
	b := pointHist(dom, geom.Cell{X: 3, Y: 4})
	w, err := W2Sinkhorn(a, b, &SinkhornOptions{Reg: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-5) > 0.2 {
		t.Fatalf("Sinkhorn point-mass distance %v, want ≈5", w)
	}
}

func TestRadonProjectConservesMass(t *testing.T) {
	dom := newDomain(t, 5)
	r := rng.New(13)
	h := randomHist(dom, r)
	for _, theta := range []float64{0, math.Pi / 7, math.Pi / 4, math.Pi / 2} {
		pts := RadonProject(h, theta)
		total := 0.0
		for _, p := range pts {
			total += p.Mass
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("θ=%v: projected mass %v", theta, total)
		}
	}
}

func TestRadonProjectAxisAligned(t *testing.T) {
	dom := newDomain(t, 4)
	h := pointHist(dom, geom.Cell{X: 2, Y: 3})
	pts := RadonProject(h, 0)
	if len(pts) != 1 || pts[0].Pos != 2 {
		t.Fatalf("θ=0 projection %v, want position 2", pts)
	}
	pts = RadonProject(h, math.Pi/2)
	if len(pts) != 1 || math.Abs(pts[0].Pos-3) > 1e-9 {
		t.Fatalf("θ=π/2 projection %v, want position 3", pts)
	}
}

func TestSlicedWLowerBoundsW2(t *testing.T) {
	// Each 1-D projection is a contraction, so SW ≤ W (for the same p).
	dom := newDomain(t, 5)
	r := rng.New(17)
	for trial := 0; trial < 5; trial++ {
		a, b := randomHist(dom, r), randomHist(dom, r)
		w2, err := W2Exact(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := SlicedW(a, b, 2, 16)
		if err != nil {
			t.Fatal(err)
		}
		if sw > w2+1e-8 {
			t.Fatalf("trial %d: SW %v exceeds W2 %v", trial, sw, w2)
		}
	}
}

func TestSlicedWIdenticalIsZero(t *testing.T) {
	dom := newDomain(t, 5)
	h := uniformHist(dom)
	sw, err := SlicedW(h, h, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sw > 1e-9 {
		t.Fatalf("SW(h,h) = %v", sw)
	}
}

func TestSlicedWSeparatesDistinct(t *testing.T) {
	dom := newDomain(t, 5)
	a := pointHist(dom, geom.Cell{X: 0, Y: 0})
	b := pointHist(dom, geom.Cell{X: 4, Y: 4})
	sw, err := SlicedW(a, b, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sw < 1 {
		t.Fatalf("SW between distant point masses %v too small", sw)
	}
}

func TestSlicedWErrors(t *testing.T) {
	dom := newDomain(t, 3)
	h := uniformHist(dom)
	if _, err := SlicedW(h, h, 2, 0); err == nil {
		t.Fatal("zero angles accepted")
	}
}

func TestQuickW1DNonNegativeAndZeroOnSelf(t *testing.T) {
	r := rng.New(19)
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]WeightedPoint, 0, len(raw))
		for i, v := range raw {
			if v > 0 {
				pts = append(pts, WeightedPoint{Pos: float64(i), Mass: float64(v)})
			}
		}
		if len(pts) == 0 {
			return true
		}
		self, err := W1D(pts, pts, 2)
		if err != nil || self > 1e-9 {
			return false
		}
		other := make([]WeightedPoint, len(pts))
		copy(other, pts)
		other[r.Intn(len(other))].Pos += 1
		w, err := W1D(pts, other, 2)
		return err == nil && w >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
