package transport

import (
	"fmt"
	"math"

	"dpspatial/internal/grid"
)

// RadonProject computes the Radon transform of a grid histogram along the
// direction θ (Definition 6 for discrete measures): every cell's mass is
// placed at the signed projection of its centre onto the unit vector
// (cos θ, sin θ), yielding a 1-D weighted point measure.
func RadonProject(h *grid.Hist2D, theta float64) []WeightedPoint {
	ux, uy := math.Cos(theta), math.Sin(theta)
	d := h.Dom.D
	pts := make([]WeightedPoint, 0, len(h.Mass))
	for i, m := range h.Mass {
		if m <= 0 {
			continue
		}
		x, y := float64(i%d), float64(i/d)
		pts = append(pts, WeightedPoint{Pos: x*ux + y*uy, Mass: m})
	}
	return pts
}

// SlicedW computes the p-sliced Wasserstein distance SWₚ (Definition 7)
// between two normalised histograms by averaging the 1-D Wasserstein
// distance of their Radon projections over numAngles equally spaced
// directions in [0, π) (projections for θ and θ+π coincide up to sign, so
// the half circle suffices).
//
// The value returned is the p-th root of the average of Wₚᵖ, matching the
// paper's use of SW as a surrogate for Wₚ.
func SlicedW(a, b *grid.Hist2D, p float64, numAngles int) (float64, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	if numAngles < 1 {
		return 0, fmt.Errorf("transport: need at least one projection angle")
	}
	sum := 0.0
	for k := 0; k < numAngles; k++ {
		theta := math.Pi * float64(k) / float64(numAngles)
		pa := RadonProject(a, theta)
		pb := RadonProject(b, theta)
		w, err := W1D(pa, pb, p)
		if err != nil {
			return 0, err
		}
		sum += w
	}
	return math.Pow(sum/float64(numAngles), 1/p), nil
}
