package transport

import (
	"math"
	"testing"

	"dpspatial/internal/geom"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
)

func TestSinkhornDebiasedIdenticalIsZero(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	h := grid.NewHist(dom)
	for i := range h.Mass {
		h.Mass[i] = r.Float64()
	}
	h.Normalize()
	w, err := W2Sinkhorn(h, h, &SinkhornOptions{Debias: true})
	if err != nil {
		t.Fatal(err)
	}
	if w > 1e-6 {
		t.Fatalf("debiased self-distance %v, want ≈0", w)
	}
}

func TestSinkhornDebiasedTracksSmallPerturbations(t *testing.T) {
	// The plain regularised cost has an additive floor that swamps small
	// true distances; the debiased divergence must not.
	dom, err := grid.NewDomain(0, 0, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	a := grid.NewHist(dom)
	for i := range a.Mass {
		a.Mass[i] = 0.5 + r.Float64()
	}
	a.Normalize()
	b := a.Clone()
	b.Mass[5] += 0.002
	b.Normalize()
	exact, err := W2Exact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := W2Sinkhorn(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	debiased, err := W2Sinkhorn(a, b, &SinkhornOptions{Debias: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(debiased-exact) >= math.Abs(plain-exact) {
		t.Fatalf("debiasing did not help: exact %v, plain %v, debiased %v",
			exact, plain, debiased)
	}
	if debiased > 5*exact+0.05 {
		t.Fatalf("debiased %v still far above exact %v", debiased, exact)
	}
}

func TestSinkhornDebiasedPreservesLargeDistances(t *testing.T) {
	dom, err := grid.NewDomain(0, 0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := grid.NewHist(dom)
	b := grid.NewHist(dom)
	a.Set(geom.Cell{X: 0, Y: 0}, 1)
	b.Set(geom.Cell{X: 7, Y: 7}, 1)
	w, err := W2Sinkhorn(a, b, &SinkhornOptions{Debias: true})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Hypot(7, 7)
	if math.Abs(w-want) > 0.5 {
		t.Fatalf("debiased point-mass distance %v, want ≈%v", w, want)
	}
}

func TestSinkhornDefaultRegIsAbsolute(t *testing.T) {
	// The default regularisation must not scale with the grid size: the
	// self-floor on a 15-grid stays comparable to the 6-grid one.
	floor := func(d int) float64 {
		dom, err := grid.NewDomain(0, 0, float64(d), d)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(d))
		h := grid.NewHist(dom)
		for i := range h.Mass {
			h.Mass[i] = r.Float64()
		}
		h.Normalize()
		w, err := W2Sinkhorn(h, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	f6, f15 := floor(6), floor(15)
	if f15 > 3*f6+0.2 {
		t.Fatalf("default-reg floor grows with grid size: %v at d=6, %v at d=15", f6, f15)
	}
}
