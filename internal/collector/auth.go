package collector

import (
	"crypto/subtle"
	"errors"
	"net/http"
	"strings"
)

// errUnauthorized is the body of every 401; it deliberately does not say
// whether a token was missing or merely wrong.
var errUnauthorized = errors.New("missing or invalid bearer token")

// Shared-secret bearer-token auth for the collector and fleet-supervisor
// endpoints. One token is shared across a deployment (clients, the
// supervisor, and every fleet member), set with `--auth-token` on the
// daemons and Client.AuthToken on the client side. /healthz stays open so
// load balancers and the supervisor's liveness probes need no secret —
// it exposes only the scheme string and a generation counter.

// AuthorizeBearer reports whether the request carries the expected
// bearer token. The comparison is constant-time so the token cannot be
// recovered byte-by-byte through timing.
func AuthorizeBearer(r *http.Request, token string) bool {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) < len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(strings.TrimSpace(h[len(prefix):])), []byte(token)) == 1
}

// RequireBearer wraps a handler, refusing every request except GET
// /healthz unless it presents the bearer token. An empty token disables
// the check.
func RequireBearer(token string, next http.Handler) http.Handler {
	if token == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" && !AuthorizeBearer(r, token) {
			writeError(w, http.StatusUnauthorized, errUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}
