package collector_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dpspatial/internal/collector"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/rng"
)

func newAHEAD(t *testing.T, d int, eps float64) *rangequery.AHEAD {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rangequery.NewAHEAD(dom, eps)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// estimatorShards is accumulateShards over any Estimator, for the
// non-DAM mechanisms the query tier serves.
func estimatorShards(t *testing.T, mech collector.Estimator, shards int, seed uint64) []*fo.Aggregate {
	t.Helper()
	out := make([]*fo.Aggregate, shards)
	for s := range out {
		out[s] = mech.NewAggregate()
	}
	r := rng.New(seed)
	user := 0
	for i := 0; i < mech.NumInputs(); i++ {
		for k := 0; k < 5+(i*7)%23; k++ {
			rep, err := mech.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := out[user%shards].Add(rep); err != nil {
				t.Fatal(err)
			}
			user++
		}
	}
	return out
}

// sameAnswer asserts a served query response carries the identical
// answer block as the in-process reference (the Generation field is the
// service's merge counter and intentionally differs from the
// reference's zero).
func sameAnswer(t *testing.T, label string, got, want *collector.QueryResponse) {
	t.Helper()
	if got.Type != want.Type || got.Scheme != want.Scheme || got.Basis != want.Basis {
		t.Fatalf("%s: served (%s %s %s), reference (%s %s %s)",
			label, got.Type, got.Scheme, got.Basis, want.Type, want.Scheme, want.Basis)
	}
	if got.Reports != want.Reports {
		t.Fatalf("%s: served over %g reports, reference %g", label, got.Reports, want.Reports)
	}
	if !reflect.DeepEqual(got.Range, want.Range) {
		t.Fatalf("%s: served range answer %+v, reference %+v", label, got.Range, want.Range)
	}
	if !reflect.DeepEqual(got.TopK, want.TopK) {
		t.Fatalf("%s: served top-k answer %+v, reference %+v", label, got.TopK, want.TopK)
	}
}

// TestQueryMatchesInProcessByteIdentical is the /v1/query acceptance
// check: range and top-k answers served over HTTP equal, bit for bit,
// AnswerQueryFromAggregate on the same shards merged in process.
func TestQueryMatchesInProcessByteIdentical(t *testing.T) {
	mech := newDAM(t, 6, 1.5)
	shards := accumulateShards(t, mech, 3, 11)
	merged := mergeAll(t, mech, shards)

	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	for _, s := range shards {
		if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatal(err)
		}
	}

	rangeReq := collector.QueryRequest{
		Type:  collector.QueryTypeRange,
		Range: rangequery.Query{X0: 1, Y0: 1, X1: 4, Y1: 4},
	}
	topkReq := collector.QueryRequest{Type: collector.QueryTypeTopK, K: 5}
	for _, req := range []collector.QueryRequest{rangeReq, topkReq} {
		got, err := client.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := collector.AnswerQueryFromAggregate(mech, merged, req)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, req.Type, got, want)
		if got.Generation != uint64(len(shards)) {
			t.Fatalf("%s: served generation %d, want %d", req.Type, got.Generation, len(shards))
		}
		if got.Basis != collector.QueryBasisHistogram {
			t.Fatalf("%s: DAM must answer over the histogram basis, got %q", req.Type, got.Basis)
		}
	}

	// The convenience helpers hit the same endpoint.
	viaRange, err := client.QueryRange(ctx, 1, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantRange, err := collector.AnswerQueryFromAggregate(mech, merged, rangeReq)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "QueryRange", viaRange, wantRange)
	viaTopK, err := client.QueryTopK(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantTopK, err := collector.AnswerQueryFromAggregate(mech, merged, topkReq)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "QueryTopK", viaTopK, wantTopK)
}

// TestQueryAHEADTreeBasisAndCacheInvalidation checks that a
// tree-capable mechanism answers range queries over the noisy quadtree
// (count units), that the per-generation tree cache serves repeated
// queries, and that a later merge invalidates it — the re-decoded
// answer must equal the in-process decode of the grown union.
func TestQueryAHEADTreeBasisAndCacheInvalidation(t *testing.T) {
	a := newAHEAD(t, 8, 1.5)
	shards := estimatorShards(t, a, 2, 13)

	client, _ := startServer(t, a, 0)
	ctx := context.Background()
	if _, err := client.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}

	req := collector.QueryRequest{
		Type:  collector.QueryTypeRange,
		Range: rangequery.Query{X0: 1, Y0: 2, X1: 6, Y1: 5},
	}
	got1, err := client.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := collector.AnswerQueryFromAggregate(a, shards[0], req)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "shard0", got1, want1)
	if got1.Basis != collector.QueryBasisTree {
		t.Fatalf("AHEAD range answer served over %q, want the tree basis", got1.Basis)
	}
	// Same generation again: the cached tree must serve the identical
	// answer.
	again, err := client.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "shard0 cached", again, want1)

	// A second merge bumps the generation; the stale tree must not
	// answer for the grown union.
	if _, err := client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	union := shards[0].Clone()
	if err := union.Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	got2, err := client.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := collector.AnswerQueryFromAggregate(a, union, req)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "union", got2, want2)
	if got2.Generation != 2 {
		t.Fatalf("post-merge query served generation %d, want 2", got2.Generation)
	}
	if got1.Range.Value == got2.Range.Value {
		t.Fatal("query answer unchanged after doubling the reports — stale cache?")
	}

	// Top-k has no tree form: it falls back to the histogram basis and
	// still matches the in-process decode.
	topk, err := client.QueryTopK(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantTopK, err := collector.AnswerQueryFromAggregate(a, union,
		collector.QueryRequest{Type: collector.QueryTypeTopK, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "topk", topk, wantTopK)
	if topk.Basis != collector.QueryBasisHistogram {
		t.Fatalf("top-k served over %q, want the histogram basis", topk.Basis)
	}
}

// TestQueryErrors maps the refusal surface: malformed parameters and
// out-of-domain rectangles are 400s, querying before any data is a 409,
// and non-GET methods are 405s.
func TestQueryErrors(t *testing.T) {
	mech := newDAM(t, 5, 1.2)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(client.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// No reports merged yet: a well-formed query is refused with 409.
	if got := status("/v1/query?type=topk&k=3"); got != http.StatusConflict {
		t.Fatalf("pre-data query answered %d, want 409", got)
	}

	for _, s := range accumulateShards(t, mech, 2, 7) {
		if _, err := client.SubmitAggregate(ctx, s, nil); err != nil {
			t.Fatal(err)
		}
	}
	bad := []string{
		"/v1/query",                                    // no type
		"/v1/query?type=bogus&k=3",                     // unknown type
		"/v1/query?type=topk",                          // missing k
		"/v1/query?type=topk&k=0",                      // k < 1
		"/v1/query?type=topk&k=two",                    // unparsable k
		"/v1/query?type=range&x0=1&y0=1&x1=3",          // missing coordinate
		"/v1/query?type=range&x0=a&y0=1&x1=3&y1=3",     // unparsable coordinate
		"/v1/query?type=range&x0=3&y0=1&x1=1&y1=3",     // reversed rectangle
		"/v1/query?type=range&x0=0&y0=0&x1=9&y1=9",     // outside the 5×5 grid
		"/v1/query?type=range&x0=-1&y0=0&x1=2&y1=2",    // negative corner
		"/v1/query?type=range&x0=1&y0=1&x1=3&y1=3&k=0", // bad extra param is ignored, k only read for topk
	}
	for _, path := range bad[:len(bad)-1] {
		if got := status(path); got != http.StatusBadRequest {
			t.Fatalf("%s answered %d, want 400", path, got)
		}
	}
	// The last case is well-formed for type=range: stray k is ignored.
	if got := status(bad[len(bad)-1]); got != http.StatusOK {
		t.Fatalf("%s answered %d, want 200", bad[len(bad)-1], got)
	}

	resp, err := http.Post(client.BaseURL+"/v1/query?type=topk&k=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/query answered %d, want 405", resp.StatusCode)
	}

	// A collector with no mechanism yet refuses with 409, like
	// /v1/estimate.
	adopt, err := collector.New(collector.Config{
		Build: func(p *collector.Pipeline) (collector.Estimator, error) {
			return nil, fmt.Errorf("test: never adopts")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(adopt)
	t.Cleanup(srv.Close)
	resp2, err := http.Get(srv.URL + "/v1/query?type=topk&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("mechanism-less query answered %d, want 409", resp2.StatusCode)
	}
}
