package collector

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dpspatial/internal/durable"
	"dpspatial/internal/fo"
	"dpspatial/internal/trace"
)

// The collector's durable-state formats, layered over the generic
// byte-payload engine of internal/durable:
//
//   - snapshot Meta  = snapshotMeta JSON (scheme, pinned pipeline,
//     generation and shard counters);
//   - snapshot State = the canonical aggregate's DPA1/DPA2 binary
//     encoding — deterministic, so a recovered aggregate is
//     byte-identical to the one that was snapshotted;
//   - snapshot Acks  = the idempotency log, each ack a SubmitResponse
//     JSON, oldest first so FIFO eviction resumes in order;
//   - RecordPipeline Meta = Pipeline JSON, written once when the
//     pipeline is first pinned (and again after every WAL reset until a
//     snapshot covers it);
//   - RecordSubmission    = ID (the submission's idempotency ID),
//     Meta an ackEnvelope JSON, Blob the shard's binary encoding.
//
// The WAL record for a submission is appended and fsync'd BEFORE the
// shard merges and the ack is sent, so an acknowledged submission is
// always recoverable; replay cross-checks each stored ack against the
// regenerated generation and report total, refusing a log that belongs
// to different state.

// snapshotMeta is the collector-owned metadata block of a snapshot.
type snapshotMeta struct {
	Scheme          string    `json:"scheme"`
	Pipeline        *Pipeline `json:"pipeline,omitempty"`
	Generation      uint64    `json:"generation"`
	ReportShards    uint64    `json:"reportShards"`
	AggregateShards uint64    `json:"aggregateShards"`
	DuplicateShards uint64    `json:"duplicateShards"`
}

// ackEnvelope is the Meta payload of a RecordSubmission WAL record: the
// original ack plus which handler accepted the shard, so replay restores
// the idempotency log and the per-kind counters exactly.
type ackEnvelope struct {
	Kind string         `json:"kind"`
	Ack  SubmitResponse `json:"ack"`
}

// shardKind names which submission path accepted a shard; it selects
// the stats counter and is persisted in the ack envelope.
type shardKind int

const (
	shardReport shardKind = iota
	shardAggregate
)

func (k shardKind) String() string {
	if k == shardReport {
		return "report"
	}
	return "aggregate"
}

func shardKindFromString(s string) (shardKind, error) {
	switch s {
	case "report":
		return shardReport, nil
	case "aggregate":
		return shardAggregate, nil
	}
	return 0, fmt.Errorf("unknown shard kind %q", s)
}

func (k shardKind) count(s *Stats) {
	if k == shardReport {
		s.ReportShards++
	} else {
		s.AggregateShards++
	}
}

// storeError marks a submission failure in the durability layer rather
// than the submission itself: the handlers answer 503 (retry the same
// ID later) instead of 409 (the shard is wrong).
type storeError struct{ err error }

func (e *storeError) Error() string { return "durable store: " + e.err.Error() }
func (e *storeError) Unwrap() error { return e.err }

// writeSubmitError maps a commit failure onto the wire: a durability
// failure is a 503 whose submission state is unknown — the WAL write
// may have partially persisted, so only a retry of the SAME submission
// ID is safe, never a failover — while everything else stays the 409
// validation refusal.
func writeSubmitError(w http.ResponseWriter, err error) {
	var se *storeError
	if errors.As(err, &se) {
		w.Header().Set(SubmissionStateHeader, SubmissionStateUnknown)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusConflict, err)
}

// snapshotEvery resolves the configured snapshot cadence.
func (c *Collector) snapshotEvery() int {
	if c.cfg.SnapshotEvery == 0 {
		return DefaultSnapshotEvery
	}
	return c.cfg.SnapshotEvery
}

// recoverFromStore replays the store's recovered state into the
// collector: snapshot first (mechanism, aggregate, counters, ack log),
// then the WAL tail record by record, re-running each submission's
// merge and cross-checking the stored ack against the regenerated
// state. Anything foreign or inconsistent refuses startup — a data
// directory from a different deployment must never merge silently.
// Runs from New, before the collector serves, so the *Locked helpers it
// borrows need no lock yet.
func (c *Collector) recoverFromStore() error {
	rec := c.store.TakeRecovery()
	if rec == nil {
		return nil
	}
	if snap := rec.Snapshot; snap != nil {
		var meta snapshotMeta
		if err := json.Unmarshal(snap.Meta, &meta); err != nil {
			return fmt.Errorf("snapshot metadata: %w", err)
		}
		if err := c.installRecoveredMechanism(meta.Scheme, meta.Pipeline); err != nil {
			return err
		}
		agg := &fo.Aggregate{}
		if err := agg.UnmarshalBinary(snap.State); err != nil {
			return fmt.Errorf("snapshot aggregate: %w", err)
		}
		if err := agg.Compatible(c.mech); err != nil {
			return fmt.Errorf("snapshot aggregate does not fit the collector mechanism: %w", err)
		}
		c.agg = agg
		c.generation = meta.Generation
		c.stats.ReportShards = meta.ReportShards
		c.stats.AggregateShards = meta.AggregateShards
		c.stats.DuplicateShards = meta.DuplicateShards
		for _, e := range snap.Acks {
			var ack SubmitResponse
			if err := json.Unmarshal(e.Ack, &ack); err != nil {
				return fmt.Errorf("snapshot ack %q: %w", e.ID, err)
			}
			c.acks.Put(e.ID, ack)
		}
	}
	for _, r := range rec.Records {
		switch r.Type {
		case durable.RecordPipeline:
			p := &Pipeline{}
			if err := json.Unmarshal(r.Meta, p); err != nil {
				return fmt.Errorf("WAL record %d pipeline: %w", r.Seq, err)
			}
			if err := c.installRecoveredMechanism(p.Scheme, p); err != nil {
				return err
			}
		case durable.RecordSubmission:
			if c.mech == nil {
				return fmt.Errorf("WAL record %d is a submission but no mechanism is configured and no pipeline record precedes it", r.Seq)
			}
			var env ackEnvelope
			if err := json.Unmarshal(r.Meta, &env); err != nil {
				return fmt.Errorf("WAL record %d ack envelope: %w", r.Seq, err)
			}
			kind, err := shardKindFromString(env.Kind)
			if err != nil {
				return fmt.Errorf("WAL record %d: %w", r.Seq, err)
			}
			shard := &fo.Aggregate{}
			if err := shard.UnmarshalBinary(r.Blob); err != nil {
				return fmt.Errorf("WAL record %d shard: %w", r.Seq, err)
			}
			if err := shard.Compatible(c.mech); err != nil {
				return fmt.Errorf("WAL record %d shard does not fit the mechanism: %w", r.Seq, err)
			}
			if err := c.agg.Merge(shard); err != nil {
				return fmt.Errorf("WAL record %d: %w", r.Seq, err)
			}
			c.generation++
			if env.Ack.Generation != c.generation || env.Ack.TotalReports != c.agg.N {
				return fmt.Errorf("WAL record %d ack (generation %d, %g reports) does not match the replayed state (generation %d, %g reports): the log belongs to different state", r.Seq, env.Ack.Generation, env.Ack.TotalReports, c.generation, c.agg.N)
			}
			kind.count(&c.stats)
			c.acks.Put(r.ID, env.Ack)
		default:
			return fmt.Errorf("WAL record %d has unknown type %d", r.Seq, r.Type)
		}
	}
	c.stats.Generation = c.generation
	if c.agg != nil {
		c.stats.Reports = c.agg.N
	}
	c.store.NoteRecovered()
	return nil
}

// installRecoveredMechanism reconciles recovered metadata with the
// configured mechanism. A pre-built Mechanism must agree with the
// stored scheme and pipeline — a mismatch means the data directory
// belongs to a different deployment, and merging foreign state would
// silently corrupt every later estimate, so it refuses. In
// build-on-first-contact mode the stored pipeline rebuilds and installs
// the mechanism exactly as the original adoption did.
func (c *Collector) installRecoveredMechanism(scheme string, p *Pipeline) error {
	if c.mech != nil {
		if scheme != "" && scheme != c.mech.Scheme() {
			return fmt.Errorf("stored state has scheme %q, collector is configured for %q: foreign data directory", scheme, c.mech.Scheme())
		}
		if p != nil {
			if c.pipeline != nil {
				if err := c.pipeline.Compatible(p); err != nil {
					return fmt.Errorf("stored pipeline does not match the configured one: %w", err)
				}
			} else if err := c.checkAndPinPipelineLocked(p); err != nil {
				return fmt.Errorf("stored pipeline does not fit the configured mechanism: %w", err)
			}
		}
	} else {
		if p == nil {
			return fmt.Errorf("stored state carries no pipeline metadata and the collector has no pre-built mechanism")
		}
		mech, err := c.cfg.Build(p)
		if err != nil {
			return fmt.Errorf("rebuilding mechanism from stored pipeline: %w", err)
		}
		if scheme != "" && mech.Scheme() != scheme {
			return fmt.Errorf("rebuilt mechanism scheme %q does not match stored scheme %q", mech.Scheme(), scheme)
		}
		if err := c.adoptLocked(mech, p); err != nil {
			return err
		}
	}
	// The store already holds this pipeline; don't re-log it.
	c.pipelinePersisted = c.pipeline != nil
	return nil
}

// persistShardLocked appends the WAL records for one accepted
// submission — the pipeline pin first, if the store does not hold it
// yet, then the submission itself — as a single fsync'd batch. It runs
// after all validation and BEFORE the merge: once it returns nil the
// submission is durable, and since shard.Compatible already passed, the
// merge that follows cannot fail, so memory and disk cannot diverge.
// Callers hold mu.
func (c *Collector) persistShardLocked(span *trace.Span, shard *fo.Aggregate, resp SubmitResponse, id string, kind shardKind) error {
	if c.store == nil {
		return nil
	}
	var recs []durable.Record
	if !c.pipelinePersisted && c.pipeline != nil {
		meta, err := json.Marshal(c.pipeline)
		if err != nil {
			return &storeError{err}
		}
		recs = append(recs, durable.Record{Type: durable.RecordPipeline, Meta: meta})
	}
	blob, err := shard.MarshalBinary()
	if err != nil {
		return &storeError{err}
	}
	env, err := json.Marshal(&ackEnvelope{Kind: kind.String(), Ack: resp})
	if err != nil {
		return &storeError{err}
	}
	recs = append(recs, durable.Record{Type: durable.RecordSubmission, ID: id, Meta: env, Blob: blob})
	walSpan := span.Child("collector.wal.append")
	info, err := c.store.Append(recs...)
	if err != nil {
		walSpan.Fail(err)
		walSpan.End()
		return &storeError{err}
	}
	walSpan.SetAttr(
		trace.Int("walRecords", int64(info.Records)),
		trace.Int("walBytes", info.Bytes),
		trace.Float("fsyncMs", float64(info.Fsync)/float64(time.Millisecond)),
	)
	walSpan.End()
	c.pipelinePersisted = c.pipeline != nil
	return nil
}

// maybeSnapshotLocked compacts the WAL into a snapshot once the replay
// cost of a crash reaches the configured cadence. A snapshot failure
// must not fail the submission that tripped it — the WAL already holds
// the record — so errors surface only through the store's stats.
// Callers hold mu.
func (c *Collector) maybeSnapshotLocked() {
	if c.store == nil {
		return
	}
	every := c.snapshotEvery()
	if every <= 0 {
		return
	}
	if c.store.RecordsSinceSnapshot() >= uint64(every) {
		_ = c.snapshotLocked()
	}
}

// snapshotLocked atomically persists the full collector state. Callers
// hold mu.
func (c *Collector) snapshotLocked() error {
	if c.store == nil || c.mech == nil {
		return nil
	}
	state, err := c.agg.MarshalBinary()
	if err != nil {
		return &storeError{err}
	}
	meta, err := json.Marshal(&snapshotMeta{
		Scheme:          c.mech.Scheme(),
		Pipeline:        c.pipeline,
		Generation:      c.generation,
		ReportShards:    c.stats.ReportShards,
		AggregateShards: c.stats.AggregateShards,
		DuplicateShards: c.stats.DuplicateShards,
	})
	if err != nil {
		return &storeError{err}
	}
	entries := c.acks.Entries()
	acks := make([]durable.AckEntry, 0, len(entries))
	for _, e := range entries {
		raw, err := json.Marshal(&e.Resp)
		if err != nil {
			return &storeError{err}
		}
		acks = append(acks, durable.AckEntry{ID: e.ID, Ack: raw})
	}
	if err := c.store.WriteSnapshot(meta, state, acks); err != nil {
		return &storeError{err}
	}
	// The snapshot now covers the pipeline; the (reset) WAL need not.
	c.pipelinePersisted = c.pipeline != nil
	return nil
}

// Snapshot forces an immediate durable snapshot of the collector state,
// compacting the WAL. It is a no-op on a collector without a store or
// before a mechanism is installed.
func (c *Collector) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}
