package collector_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpspatial/internal/collector"
	"dpspatial/internal/durable"
	"dpspatial/internal/fo"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
)

func durPipeline(mech *sam.Mechanism, d int, eps float64) *collector.Pipeline {
	return &collector.Pipeline{
		Mech: "DAM", D: d, Eps: eps,
		Scheme: mech.Scheme(), Shape: mech.ReportShape(),
		Domain: collector.DomainSpec{MinX: 0, MinY: 0, Side: 1},
	}
}

func durBuild(t *testing.T) func(p *collector.Pipeline) (collector.Estimator, error) {
	t.Helper()
	return func(p *collector.Pipeline) (collector.Estimator, error) {
		dom, err := p.GridDomain()
		if err != nil {
			return nil, err
		}
		return sam.NewDAM(dom, p.Eps)
	}
}

// startDurable opens (or reopens) dir as a durable store and serves a
// collector over it. The collector is NOT closed automatically — crash
// tests abandon it, which is the point.
func startDurable(t *testing.T, dir string, cfg collector.Config) (*collector.Client, *collector.Collector, *durable.Store) {
	t.Helper()
	st, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg.Store = st
	c, err := collector.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	t.Cleanup(srv.Close)
	return collector.NewClient(srv.URL), c, st
}

func marshalShards(t *testing.T, shards []*fo.Aggregate, prefix string) (blobs [][]byte, ids []string) {
	t.Helper()
	for i, s := range shards {
		b, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
		ids = append(ids, fmt.Sprintf("%s-%d", prefix, i))
	}
	return blobs, ids
}

// TestDurableCrashAtEveryWALRecord is the headline fault-injection
// schedule: a collector accepts submissions into a WAL-only data
// directory (no snapshot — the hardest recovery), then the "process"
// crashes with the WAL truncated at every record boundary AND torn
// mid-record. Every crash point must recover, answer replayed
// submission IDs of persisted shards with their original acks, and —
// after the client re-submits everything — serve an estimate
// byte-identical to the uninterrupted run's.
func TestDurableCrashAtEveryWALRecord(t *testing.T) {
	const d, eps, nShards = 6, 2.0, 4
	mech := newDAM(t, d, eps)
	pip := durPipeline(mech, d, eps)
	shards := accumulateShards(t, mech, nShards, 99)
	blobs, ids := marshalShards(t, shards, "crash")
	ctx := context.Background()

	// The uninterrupted reference run.
	refClient, _, _ := startDurable(t, t.TempDir(), collector.Config{
		Mechanism: newDAM(t, d, eps), Pipeline: pip, SnapshotEvery: -1,
	})
	for i := range shards {
		if _, err := refClient.SubmitAggregateBlobWithID(ctx, blobs[i], pip, ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	_, refResp, err := refClient.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The master crash image: same submissions, then the process dies
	// without a snapshot or graceful close — the WAL alone carries the
	// acknowledged state.
	masterDir := t.TempDir()
	mClient, _, mStore := startDurable(t, masterDir, collector.Config{
		Mechanism: newDAM(t, d, eps), Pipeline: pip, SnapshotEvery: -1,
	})
	for i := range shards {
		if _, err := mClient.SubmitAggregateBlobWithID(ctx, blobs[i], pip, ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mStore.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(masterDir, durable.WALFile)
	walData, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ends, err := durable.RecordEnds(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// One pipeline record, then one record per submission.
	if len(ends) != nShards+2 {
		t.Fatalf("WAL has %d record boundaries, want %d", len(ends), nShards+2)
	}

	// Crash points: every record boundary, plus a torn write inside
	// every record.
	var cuts []int64
	for i, e := range ends {
		cuts = append(cuts, e)
		if i > 0 {
			cuts = append(cuts, (ends[i-1]+e)/2)
		}
	}
	for _, cut := range cuts {
		survivors := 0
		for i := 1; i < len(ends) && ends[i] <= cut; i++ {
			survivors++
		}
		persisted := survivors - 1 // minus the pipeline record
		if persisted < 0 {
			persisted = 0
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, durable.WALFile), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Restart in adopt mode, so a crash before the pipeline record
		// landed also exercises re-adoption from the re-submissions.
		client, _, st := startDurable(t, dir, collector.Config{Build: durBuild(t), SnapshotEvery: -1})
		if ds := st.Stats(); ds.RecordsReplayed != survivors {
			t.Fatalf("cut at %d: replayed %d WAL records, want %d", cut, ds.RecordsReplayed, survivors)
		}
		// The client re-submits every shard under its original ID: the
		// ones that survived the crash must answer with their original
		// acks instead of merging twice.
		for i := range shards {
			resp, err := client.SubmitAggregateBlobWithID(ctx, blobs[i], pip, ids[i])
			if err != nil {
				t.Fatalf("cut at %d: re-submitting shard %d: %v", cut, i, err)
			}
			if wantDup := i < persisted; resp.Duplicate != wantDup {
				t.Fatalf("cut at %d: shard %d Duplicate = %v, want %v", cut, i, resp.Duplicate, wantDup)
			}
			if resp.Generation != uint64(i+1) {
				t.Fatalf("cut at %d: shard %d acked generation %d, want %d", cut, i, resp.Generation, i+1)
			}
		}
		_, resp, err := client.Estimate(ctx)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if resp.Reports != refResp.Reports || resp.Generation != refResp.Generation {
			t.Fatalf("cut at %d: recovered %g reports gen %d, want %g gen %d",
				cut, resp.Reports, resp.Generation, refResp.Reports, refResp.Generation)
		}
		if !reflect.DeepEqual(resp.Mass, refResp.Mass) {
			t.Fatalf("cut at %d: estimate diverged from the uninterrupted run", cut)
		}
	}
}

// TestDurableCrashMidSnapshotRename injects crashes into both halves of
// the snapshot's atomic-rename window while submissions (and therefore
// snapshot attempts) keep flowing. Either way, a restart must recover
// every acknowledged submission and the byte-identical estimate.
func TestDurableCrashMidSnapshotRename(t *testing.T) {
	const d, eps, nShards = 6, 2.0, 4
	mech := newDAM(t, d, eps)
	pip := durPipeline(mech, d, eps)
	shards := accumulateShards(t, mech, nShards, 123)
	blobs, ids := marshalShards(t, shards, "snapcrash")
	ctx := context.Background()

	refClient, _ := startServer(t, newDAM(t, d, eps), 0)
	for i := range shards {
		if _, err := refClient.SubmitAggregateBlob(ctx, blobs[i], pip); err != nil {
			t.Fatal(err)
		}
	}
	_, refResp, err := refClient.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}

	for _, phase := range []string{"before-rename", "after-rename"} {
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			st, err := durable.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			boom := fmt.Errorf("injected crash %s", phase)
			if phase == "before-rename" {
				st.Hooks.BeforeSnapshotRename = func() error { return boom }
			} else {
				st.Hooks.AfterSnapshotRename = func() error { return boom }
			}
			c, err := collector.New(collector.Config{
				Mechanism: newDAM(t, d, eps), Pipeline: pip,
				Store: st, SnapshotEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(c)
			client := collector.NewClient(srv.URL)
			// Submissions must succeed even though every snapshot attempt
			// "crashes": the WAL already holds them.
			for i := range shards {
				if _, err := client.SubmitAggregateBlobWithID(ctx, blobs[i], pip, ids[i]); err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
			}
			// Crash: abandon the collector without its graceful Close.
			srv.Close()
			st.Close()

			client2, _, _ := startDurable(t, dir, collector.Config{Build: durBuild(t), SnapshotEvery: -1})
			if phase == "before-rename" {
				if _, err := os.Stat(filepath.Join(dir, durable.SnapshotTmpFile)); !os.IsNotExist(err) {
					t.Fatalf("stale snapshot temp survived recovery: %v", err)
				}
			}
			// Every submission was acknowledged, so every replay is a
			// duplicate answered with its original ack.
			for i := range shards {
				resp, err := client2.SubmitAggregateBlobWithID(ctx, blobs[i], pip, ids[i])
				if err != nil {
					t.Fatalf("re-submitting shard %d: %v", i, err)
				}
				if !resp.Duplicate || resp.Generation != uint64(i+1) {
					t.Fatalf("shard %d: Duplicate=%v generation=%d, want replayed original ack", i, resp.Duplicate, resp.Generation)
				}
			}
			_, resp, err := client2.Estimate(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Reports != refResp.Reports || resp.Generation != refResp.Generation ||
				!reflect.DeepEqual(resp.Mass, refResp.Mass) {
				t.Fatalf("estimate diverged after %s crash", phase)
			}
		})
	}
}

// ackEnvelopeJSON builds the WAL ack-envelope payload the way the
// collector writes it, for hand-crafting corrupt stores.
func ackEnvelopeJSON(t *testing.T, kind string, ack collector.SubmitResponse) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Kind string                   `json:"kind"`
		Ack  collector.SubmitResponse `json:"ack"`
	}{kind, ack})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func pipelineJSON(t *testing.T, p *collector.Pipeline) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDurableRefusesCorruptState drives the refusal matrix: a torn
// final WAL write is tolerated, but a foreign-pipeline store, a garbage
// aggregate blob, a garbage snapshot state, or an ack that contradicts
// the replayed state must refuse startup rather than serve bad data.
func TestDurableRefusesCorruptState(t *testing.T) {
	const d, eps = 6, 2.0
	mech := newDAM(t, d, eps)
	pip := durPipeline(mech, d, eps)
	shard := accumulateShards(t, mech, 1, 7)[0]
	blob, err := shard.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	goodAck := collector.SubmitResponse{
		Scheme: mech.Scheme(), Reports: shard.N, TotalReports: shard.N, Generation: 1,
	}

	// seed writes a WAL with a pipeline record and one submission.
	seed := func(t *testing.T, sub durable.Record) string {
		t.Helper()
		dir := t.TempDir()
		st, err := durable.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Append(
			durable.Record{Type: durable.RecordPipeline, Meta: pipelineJSON(t, pip)},
			sub,
		); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	goodSub := durable.Record{
		Type: durable.RecordSubmission, ID: "s1",
		Meta: ackEnvelopeJSON(t, "aggregate", goodAck), Blob: blob,
	}
	mustRefuse := func(t *testing.T, dir string, cfg collector.Config, fragment string) {
		t.Helper()
		st, err := durable.Open(dir)
		if err != nil {
			t.Fatalf("store open must succeed (the damage is semantic): %v", err)
		}
		defer st.Close()
		cfg.Store = st
		if _, err := collector.New(cfg); err == nil {
			t.Fatal("collector.New accepted corrupt durable state")
		} else if !strings.Contains(err.Error(), "recovering durable state") || !strings.Contains(err.Error(), fragment) {
			t.Fatalf("refusal %q does not mention %q", err, fragment)
		}
	}

	t.Run("foreign scheme", func(t *testing.T) {
		dir := seed(t, goodSub)
		// A pre-built mechanism over a different grid must refuse the
		// stored state instead of merging a foreign data directory.
		mustRefuse(t, dir, collector.Config{Mechanism: newDAM(t, 5, eps)}, "foreign")
	})

	t.Run("foreign domain", func(t *testing.T) {
		dir := seed(t, goodSub)
		// Same scheme, different geography: the scheme string does not
		// encode the domain, so the pinned-pipeline cross-check is what
		// must catch it.
		shifted := *pip
		shifted.Domain = collector.DomainSpec{MinX: 5, MinY: 5, Side: 2}
		mustRefuse(t, dir, collector.Config{
			Mechanism: newDAM(t, d, eps), Pipeline: &shifted,
		}, "does not match")
	})

	t.Run("garbage shard blob", func(t *testing.T) {
		bad := goodSub
		bad.Blob = []byte("certainly not a DPA blob")
		dir := seed(t, bad)
		mustRefuse(t, dir, collector.Config{Build: durBuild(t)}, "shard")
	})

	t.Run("contradicting ack", func(t *testing.T) {
		bad := goodSub
		lie := goodAck
		lie.Generation = 5
		bad.Meta = ackEnvelopeJSON(t, "aggregate", lie)
		dir := seed(t, bad)
		mustRefuse(t, dir, collector.Config{Build: durBuild(t)}, "does not match")
	})

	t.Run("garbage snapshot state", func(t *testing.T) {
		dir := t.TempDir()
		st, err := durable.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := json.Marshal(map[string]any{
			"scheme": mech.Scheme(), "pipeline": pip, "generation": 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.WriteSnapshot(meta, []byte("garbage aggregate bytes"), nil); err != nil {
			t.Fatal(err)
		}
		st.Close()
		mustRefuse(t, dir, collector.Config{Build: durBuild(t)}, "snapshot aggregate")
	})

	t.Run("torn final record is tolerated", func(t *testing.T) {
		dir := seed(t, goodSub)
		walPath := filepath.Join(dir, durable.WALFile)
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		client, _, st := startDurable(t, dir, collector.Config{Build: durBuild(t)})
		if ds := st.Stats(); ds.RecordsReplayed != 1 || ds.TornTailBytes == 0 {
			t.Fatalf("torn tail: replayed %d records, %d torn bytes", ds.RecordsReplayed, ds.TornTailBytes)
		}
		// The torn (never-acknowledged) submission re-submits cleanly.
		resp, err := client.SubmitAggregateBlobWithID(context.Background(), blob, pip, "s1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Duplicate || resp.Generation != 1 {
			t.Fatalf("torn submission replay: %+v", resp)
		}
	})
}

// TestDurableSnapshotCadenceAndGracefulClose checks the compaction
// lifecycle: snapshots land every SnapshotEvery records, /v1/stats
// exports the counters at the collector tier, a graceful Close flushes
// the WAL tail, and a restart then replays zero records while keeping
// the ack log. An in-memory collector keeps durability out of its
// stats entirely.
func TestDurableSnapshotCadenceAndGracefulClose(t *testing.T) {
	const d, eps, nShards = 6, 2.0, 5
	mech := newDAM(t, d, eps)
	pip := durPipeline(mech, d, eps)
	shards := accumulateShards(t, mech, nShards, 11)
	blobs, ids := marshalShards(t, shards, "cadence")
	ctx := context.Background()

	dir := t.TempDir()
	st, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := collector.New(collector.Config{
		Mechanism: newDAM(t, d, eps), Pipeline: pip, Store: st, SnapshotEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	client := collector.NewClient(srv.URL)
	for i := range shards {
		if _, err := client.SubmitAggregateBlobWithID(ctx, blobs[i], pip, ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil {
		t.Fatal("durable collector serves no durability stats")
	}
	if stats.Durability.SnapshotsWritten == 0 || stats.Durability.RecordsAppended < nShards {
		t.Fatalf("durability stats: %+v", stats.Durability)
	}
	srv.Close()
	c.Close() // graceful: flushes the WAL tail into a final snapshot
	st.Close()

	client2, _, st2 := startDurable(t, dir, collector.Config{Build: durBuild(t)})
	if ds := st2.Stats(); ds.RecordsReplayed != 0 {
		t.Fatalf("graceful close left %d WAL records to replay", ds.RecordsReplayed)
	}
	stats2, err := client2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Generation != nShards || stats2.AggregateShards != nShards {
		t.Fatalf("recovered stats: %+v", stats2)
	}
	if stats2.Reports != mergeAll(t, mech, shards).N {
		t.Fatalf("recovered %g reports", stats2.Reports)
	}
	// The ack log came back through the snapshot: replays are duplicates.
	resp, err := client2.SubmitAggregateBlobWithID(ctx, blobs[0], pip, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate || resp.Generation != 1 {
		t.Fatalf("snapshot ack log lost: %+v", resp)
	}

	// Opt-in contract: without a store the stats carry no durability
	// block at all.
	memClient, _ := startServer(t, newDAM(t, d, eps), 0)
	if _, err := memClient.SubmitAggregateBlob(ctx, blobs[0], pip); err != nil {
		t.Fatal(err)
	}
	memStats, err := memClient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if memStats.Durability != nil {
		t.Fatalf("in-memory collector reports durability: %+v", memStats.Durability)
	}
}

// TestDurableReportStreamRecovery covers the report-stream submission
// path: streamed shards persist through the same WAL records, and the
// per-kind counters survive a crash.
func TestDurableReportStreamRecovery(t *testing.T) {
	const d, eps = 6, 2.0
	mech := newDAM(t, d, eps)
	pip := durPipeline(mech, d, eps)
	ctx := context.Background()

	dir := t.TempDir()
	client, _, st := startDurable(t, dir, collector.Config{Build: durBuild(t), SnapshotEvery: -1})
	// Two report-stream shards, built reproducibly off one RNG stream.
	r := rng.New(42)
	streams := make([]string, 2)
	for s := range streams {
		var sb strings.Builder
		sb.WriteString(mustJSONLine(t, pip))
		for i := 0; i < mech.NumInputs(); i++ {
			rep, err := mech.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(&rep)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(b)
			sb.WriteByte('\n')
		}
		streams[s] = sb.String()
	}
	for i, stream := range streams {
		if _, err := client.SubmitReportStreamWithID(ctx, strings.NewReader(stream), fmt.Sprintf("rep-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, want, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st.Close() // crash: no snapshot, no collector Close

	client2, _, _ := startDurable(t, dir, collector.Config{Build: durBuild(t)})
	stats, err := client2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReportShards != 2 || stats.AggregateShards != 0 {
		t.Fatalf("recovered kind counters: %+v", stats)
	}
	resp, err := client2.SubmitReportStreamWithID(ctx, strings.NewReader(streams[0]), "rep-0")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Fatal("replayed report stream must answer the original ack")
	}
	_, got, err := client2.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) || got.Reports != want.Reports {
		t.Fatal("report-stream recovery diverged")
	}
}
