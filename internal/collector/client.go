package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
)

// Client talks to a collector service. It speaks the same wire formats
// the CLI pipeline writes to disk: DPA1/DPA2 binary blobs for aggregate
// shards and header-plus-NDJSON streams for report shards.
type Client struct {
	// BaseURL is the collector root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the collector at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, header http.Header, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		// Drain so the keep-alive connection returns to the pool.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("collector: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("collector: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		*raw = b
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "", nil, nil, nil)
}

// SubmitAggregate ships one aggregate shard as a DPA2 blob. A non-nil
// pipeline travels in the X-Dpspatial-Pipeline header so a collector
// started without a mechanism can adopt one.
func (c *Client) SubmitAggregate(ctx context.Context, shard *fo.Aggregate, p *Pipeline) (*SubmitResponse, error) {
	blob, err := shard.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return c.SubmitAggregateBlob(ctx, blob, p)
}

// SubmitAggregateBlob ships an already-encoded DPA1/DPA2 blob verbatim.
func (c *Client) SubmitAggregateBlob(ctx context.Context, blob []byte, p *Pipeline) (*SubmitResponse, error) {
	var header http.Header
	if p != nil {
		hdr, err := json.Marshal(p)
		if err != nil {
			return nil, err
		}
		header = http.Header{PipelineHeader: []string{string(hdr)}}
	}
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/aggregate", "application/octet-stream",
		bytes.NewReader(blob), header, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitReportStream ships a report shard — a stream in the CLI's
// reports framing (Pipeline header line, then NDJSON reports), or bare
// report lines if the collector is already locked to a scheme. The whole
// stream merges as one shard.
func (c *Client) SubmitReportStream(ctx context.Context, stream io.Reader) (*SubmitResponse, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/report", "application/x-ndjson", stream, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitReports encodes reports in the wire framing (with the pipeline
// header when non-nil) and ships them as one shard.
func (c *Client) SubmitReports(ctx context.Context, p *Pipeline, reports []fo.Report) (*SubmitResponse, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if p != nil {
		hdr := *p
		hdr.Format = ReportsFormat
		if err := enc.Encode(&hdr); err != nil {
			return nil, err
		}
	}
	for i := range reports {
		if err := enc.Encode(&reports[i]); err != nil {
			return nil, err
		}
	}
	return c.SubmitReportStream(ctx, &buf)
}

// Estimate fetches the collector's current histogram, which reflects
// every shard merged so far.
func (c *Client) Estimate(ctx context.Context) (*grid.Hist2D, *EstimateResponse, error) {
	var resp EstimateResponse
	if err := c.do(ctx, http.MethodGet, "/v1/estimate", "", nil, nil, &resp); err != nil {
		return nil, nil, err
	}
	h, err := resp.Histogram()
	if err != nil {
		return nil, nil, err
	}
	return h, &resp, nil
}

// FetchAggregate downloads the merged canonical aggregate — the chaining
// primitive for hierarchical collectors: a downstream collector can
// submit the blob verbatim to an upstream one.
func (c *Client) FetchAggregate(ctx context.Context) (*fo.Aggregate, error) {
	var blob []byte
	if err := c.do(ctx, http.MethodGet, "/v1/aggregate", "", nil, nil, &blob); err != nil {
		return nil, err
	}
	agg := &fo.Aggregate{}
	if err := agg.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return agg, nil
}

// Stats fetches the collector's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var stats Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", "", nil, nil, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}
