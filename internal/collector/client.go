package collector

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand/v2"
	"net"
	"net/http"
	"strings"
	"time"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/trace"
)

// Client talks to a collector service (or a fleet supervisor, which
// speaks the same protocol). It speaks the same wire formats the CLI
// pipeline writes to disk: DPA1/DPA2 binary blobs for aggregate shards
// and header-plus-NDJSON streams for report shards.
type Client struct {
	// BaseURL is the collector root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// AuthToken, when non-empty, is sent as a bearer token in the
	// Authorization header of every request — the shared secret of a
	// deployment running with --auth-token.
	AuthToken string
	// MaxRetries bounds how many times a request is retried after a
	// transient failure — a connection error or a 5xx status. 4xx
	// refusals (scheme conflicts, bad shards) never retry. Zero disables
	// retrying. Requests with a body are buffered in memory when
	// retrying is enabled so every attempt replays identical bytes.
	MaxRetries int
	// RetryBackoff scales the delay before the first retry; it doubles
	// per attempt, with equal jitter (a uniform draw from the upper half
	// of each doubled window) so a burst of clients knocked back by the
	// same collector restart does not retry in lockstep. Defaults to
	// 100ms.
	RetryBackoff time.Duration
}

// StatusError is the error for a completed HTTP exchange with a non-2xx
// status: the server understood the request and refused it. Transport
// failures (connection refused, timeouts) are returned as-is, so callers
// can tell "the collector said no" from "the collector is unreachable"
// with errors.As.
type StatusError struct {
	// StatusCode is the HTTP status the server answered with.
	StatusCode int
	// Method and Path identify the refused request.
	Method, Path string
	// Message is the server's error body, when it sent one.
	Message string
	// SubmissionStateUnknown is set when the server marked the refusal
	// with the X-Dpspatial-Submission-State header: the submission may
	// have merged despite the error, so only a same-ID retry is safe.
	SubmissionStateUnknown bool
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("collector: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.StatusCode)
	}
	return fmt.Sprintf("collector: %s %s: HTTP %d", e.Method, e.Path, e.StatusCode)
}

// IsTransient reports whether the refusal is worth retrying: 5xx means
// the server (or a member behind a supervisor) failed, not that the
// submission was invalid.
func (e *StatusError) IsTransient() bool { return e.StatusCode >= 500 }

// NewClient returns a client for the collector at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, header http.Header, out any) error {
	// Propagate W3C trace context. A server-side caller (the supervisor
	// forwarding a submission) already carries a span or remote context;
	// a bare client mints a fresh one HERE, outside the retry loop, so
	// every retry of one logical request shares one trace ID and the
	// whole distributed exchange is attributable end to end.
	if _, ok := trace.Outgoing(ctx); !ok {
		ctx = trace.ContextWithRemote(ctx, trace.NewSpanContext())
	}
	var bodyBytes []byte
	canRetry := true
	if body != nil && c.MaxRetries > 0 {
		// Buffer so retries replay the exact bytes — but only up to the
		// server's body cap: a larger body would be rejected anyway if
		// buffered, so past the cap stream it once without retrying
		// rather than slurping an arbitrarily large file into memory.
		b, err := io.ReadAll(io.LimitReader(body, DefaultMaxBodyBytes+1))
		if err != nil {
			return err
		}
		if int64(len(b)) > DefaultMaxBodyBytes {
			body = io.MultiReader(bytes.NewReader(b), body)
			canRetry = false
		} else {
			bodyBytes = b
			body = nil
		}
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		rd := body
		if bodyBytes != nil {
			rd = bytes.NewReader(bodyBytes)
		}
		err := c.doOnce(ctx, method, path, contentType, rd, header, out)
		if err == nil || attempt >= c.MaxRetries || !canRetry || !isTransient(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retryDelay(backoff)):
		}
		backoff *= 2
	}
}

// retryDelay jitters one backoff step with the equal-jitter scheme:
// half the window deterministic, half uniform — sleep in
// [backoff/2, backoff]. Keeping the deterministic half preserves the
// exponential knock-back between attempts while decorrelating the
// thundering herd a recovering server would otherwise face.
func retryDelay(backoff time.Duration) time.Duration {
	if backoff <= 1 {
		return backoff
	}
	half := backoff / 2
	return half + time.Duration(mathrand.Int64N(int64(half)+1))
}

// transportError marks a failure where no HTTP response arrived at all
// (connection refused, reset, timeout) — the only non-status errors that
// are safe to retry. A decode error after a 200 is NOT retryable: the
// server already merged the shard, and replaying it would double-count.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// isTransient classifies an error from doOnce as retryable: transport
// failures (connection refused, resets) and 5xx statuses are. A
// response-phase transport failure leaves the server's merge state
// unknown — which is why every submission carries an idempotency ID
// that the retry replays, so a merged-but-unacked shard answers with
// the original ack instead of merging twice. 4xx refusals and local
// encoding errors are not retried.
func isTransient(err error) bool {
	if se, ok := err.(*StatusError); ok {
		return se.IsTransient()
	}
	_, ok := err.(*transportError)
	return ok
}

// RequestNotSent reports whether a Client error provably occurred
// before the request reached the server — a dial-phase failure — so
// re-sending it elsewhere cannot duplicate work even without the
// idempotency log. Anything past dial (reset, timeout, truncated
// response) leaves the server's state unknown.
func RequestNotSent(err error) bool {
	var te *transportError
	if !errors.As(err, &te) {
		return false
	}
	var op *net.OpError
	return errors.As(te.err, &op) && op.Op == "dial"
}

// NewSubmissionID draws a fresh idempotency ID for one logical shard
// submission. Submit helpers call it implicitly; use the *WithID
// variants to retry a submission under its original ID across client
// instances.
func NewSubmissionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; an ID-less
		// submission merely loses replay protection.
		return ""
	}
	return hex.EncodeToString(b[:])
}

func (c *Client) doOnce(ctx context.Context, method, path, contentType string, body io.Reader, header http.Header, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.AuthToken)
	}
	if sc, ok := trace.Outgoing(ctx); ok {
		req.Header.Set(trace.TraceparentHeader, sc.Traceparent())
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return &transportError{err: err}
	}
	defer func() {
		// Drain so the keep-alive connection returns to the pool.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{
			StatusCode: resp.StatusCode, Method: method, Path: path,
			SubmissionStateUnknown: resp.Header.Get(SubmissionStateHeader) == SubmissionStateUnknown,
		}
		var e errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			se.Message = e.Error
		}
		return se
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		*raw = b
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "", nil, nil, nil)
}

// SubmitAggregate ships one aggregate shard as a DPA2 blob. A non-nil
// pipeline travels in the X-Dpspatial-Pipeline header so a collector
// started without a mechanism can adopt one.
func (c *Client) SubmitAggregate(ctx context.Context, shard *fo.Aggregate, p *Pipeline) (*SubmitResponse, error) {
	blob, err := shard.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return c.SubmitAggregateBlob(ctx, blob, p)
}

// SubmitAggregateBlob ships an already-encoded DPA1/DPA2 blob verbatim
// under a fresh submission ID.
func (c *Client) SubmitAggregateBlob(ctx context.Context, blob []byte, p *Pipeline) (*SubmitResponse, error) {
	return c.SubmitAggregateBlobWithID(ctx, blob, p, NewSubmissionID())
}

// SubmitAggregateBlobWithID ships a blob under an explicit submission
// ID — the replay key a server's idempotency log dedups on.
func (c *Client) SubmitAggregateBlobWithID(ctx context.Context, blob []byte, p *Pipeline, id string) (*SubmitResponse, error) {
	header := http.Header{}
	if p != nil {
		hdr, err := json.Marshal(p)
		if err != nil {
			return nil, err
		}
		header.Set(PipelineHeader, string(hdr))
	}
	if id != "" {
		header.Set(SubmissionIDHeader, id)
	}
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/aggregate", "application/octet-stream",
		bytes.NewReader(blob), header, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitReportStream ships a report shard — a stream in the CLI's
// reports framing (Pipeline header line, then NDJSON reports), or bare
// report lines if the collector is already locked to a scheme. The whole
// stream merges as one shard under a fresh submission ID.
func (c *Client) SubmitReportStream(ctx context.Context, stream io.Reader) (*SubmitResponse, error) {
	return c.SubmitReportStreamWithID(ctx, stream, NewSubmissionID())
}

// SubmitReportStreamWithID ships a report stream under an explicit
// submission ID.
func (c *Client) SubmitReportStreamWithID(ctx context.Context, stream io.Reader, id string) (*SubmitResponse, error) {
	header := http.Header{}
	if id != "" {
		header.Set(SubmissionIDHeader, id)
	}
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/report", "application/x-ndjson", stream, header, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitReports encodes reports in the wire framing (with the pipeline
// header when non-nil) and ships them as one shard.
func (c *Client) SubmitReports(ctx context.Context, p *Pipeline, reports []fo.Report) (*SubmitResponse, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if p != nil {
		hdr := *p
		hdr.Format = ReportsFormat
		if err := enc.Encode(&hdr); err != nil {
			return nil, err
		}
	}
	for i := range reports {
		if err := enc.Encode(&reports[i]); err != nil {
			return nil, err
		}
	}
	return c.SubmitReportStream(ctx, &buf)
}

// Estimate fetches the collector's current histogram, which reflects
// every shard merged so far.
func (c *Client) Estimate(ctx context.Context) (*grid.Hist2D, *EstimateResponse, error) {
	var resp EstimateResponse
	if err := c.do(ctx, http.MethodGet, "/v1/estimate", "", nil, nil, &resp); err != nil {
		return nil, nil, err
	}
	h, err := resp.Histogram()
	if err != nil {
		return nil, nil, err
	}
	return h, &resp, nil
}

// FetchAggregate downloads the merged canonical aggregate — the chaining
// primitive for hierarchical collectors: a downstream collector can
// submit the blob verbatim to an upstream one, and the fleet supervisor
// pulls each member's blob through it on the merge cadence.
func (c *Client) FetchAggregate(ctx context.Context) (*fo.Aggregate, error) {
	blob, err := c.FetchAggregateBlob(ctx)
	if err != nil {
		return nil, err
	}
	agg := &fo.Aggregate{}
	if err := agg.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return agg, nil
}

// FetchAggregateBlob downloads the merged canonical aggregate as raw
// DPA2 bytes, without decoding.
func (c *Client) FetchAggregateBlob(ctx context.Context) ([]byte, error) {
	var blob []byte
	if err := c.do(ctx, http.MethodGet, "/v1/aggregate", "", nil, nil, &blob); err != nil {
		return nil, err
	}
	return blob, nil
}

// Stats fetches the collector's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var stats Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", "", nil, nil, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}
