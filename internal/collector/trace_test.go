package collector_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dpspatial/internal/collector"
	"dpspatial/internal/durable"
	"dpspatial/internal/trace"
)

// syncBuffer is an io.Writer safe to read while the slow logger's
// handler goroutines write.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// findTrace pulls the ring entry with the given ID out of a snapshot.
func findTrace(traces []trace.TraceData, id string) *trace.TraceData {
	for i := range traces {
		if traces[i].TraceID == id {
			return &traces[i]
		}
	}
	return nil
}

// waitTrace polls the ring for a trace ID: the root span is pushed
// after the response is written, so the client can hold the ack a beat
// before the trace lands.
func waitTrace(t *testing.T, tr *trace.Tracer, id string) *trace.TraceData {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if td := findTrace(tr.Snapshot(0, "", 0), id); td != nil {
			return td
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never reached the ring", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// spanByName returns the first span with the given name.
func spanByName(td *trace.TraceData, name string) *trace.SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

func spanNames(td *trace.TraceData) []string {
	names := make([]string, len(td.Spans))
	for i := range td.Spans {
		names[i] = td.Spans[i].Name
	}
	return names
}

// TestCollectorTraceEndToEnd drives one durable submission through a
// tokened collector and asserts the whole tracing story: the ack
// carries the trace ID, the ring holds the span chain — body read, WAL
// append with fsync'd bytes, merge, ack — correctly nested under the
// request root, the response header echoes the ID, the slow-request
// log line joins on it, and a duplicate resubmission replays the
// ORIGINAL submission's trace ID.
func TestCollectorTraceEndToEnd(t *testing.T) {
	mech := newDAM(t, 6, 2.0)
	st, err := durable.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var slowMu syncBuffer
	c, err := collector.New(collector.Config{
		Mechanism: mech,
		AuthToken: "s3cret",
		Store:     st,
		SlowLog:   &trace.SlowLogger{W: &slowMu, JSON: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	srv := httptest.NewServer(c)
	t.Cleanup(func() { srv.Close(); c.Close() })
	client := collector.NewClient(srv.URL)
	client.AuthToken = "s3cret"

	shard := accumulateShards(t, mech, 1, 3)[0]
	blob, err := shard.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id := collector.NewSubmissionID()
	resp, err := client.SubmitAggregateBlobWithID(ctx, blob, nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 32 {
		t.Fatalf("ack trace ID %q is not 32 hex chars", resp.TraceID)
	}

	td := waitTrace(t, c.Tracer(), resp.TraceID)
	if td.Service != "collector" || td.Outcome != trace.OutcomeOK {
		t.Fatalf("trace service/outcome = %q/%q", td.Service, td.Outcome)
	}
	root := &td.Spans[0]
	if root.Name != "POST /v1/aggregate" {
		t.Fatalf("root span %q, want POST /v1/aggregate", root.Name)
	}
	if !root.Remote {
		t.Fatal("root span not marked remote: the client should have propagated traceparent")
	}
	for _, name := range []string{"collector.body.read", "collector.wal.append", "collector.merge", "collector.ack"} {
		sp := spanByName(td, name)
		if sp == nil {
			t.Fatalf("span %s missing from trace (have %v)", name, spanNames(td))
		}
		if sp.ParentSpanID != root.SpanID {
			t.Fatalf("span %s parent %s, want root %s", name, sp.ParentSpanID, root.SpanID)
		}
	}
	wal := spanByName(td, "collector.wal.append")
	if b, ok := wal.Attrs["walBytes"].(int64); !ok || b <= 0 {
		t.Fatalf("collector.wal.append walBytes attr = %#v, want > 0", wal.Attrs["walBytes"])
	}
	if _, ok := wal.Attrs["fsyncMs"]; !ok {
		t.Fatal("collector.wal.append span lacks the fsyncMs attr")
	}

	// The response header echoes a trace ID on every traced request.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/stats", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	hres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if got := hres.Header.Get(trace.TraceIDHeader); len(got) != 32 {
		t.Fatalf("%s header = %q, want a 32-hex trace ID", trace.TraceIDHeader, got)
	}

	// The slow log (threshold 0 = log everything) joins on the trace ID.
	want := fmt.Sprintf("%q:%q", "traceId", resp.TraceID)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(slowMu.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("slow log lacks the submission's trace ID:\n%s", slowMu.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(slowMu.String(), `"msg":"slow request"`) {
		t.Fatalf("slow log not in JSON format:\n%s", slowMu.String())
	}

	// A duplicate resubmission replays the ORIGINAL trace ID in its ack.
	dup, err := client.SubmitAggregateBlobWithID(ctx, blob, nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate {
		t.Fatal("resubmission not flagged duplicate")
	}
	if dup.TraceID != resp.TraceID {
		t.Fatalf("duplicate ack trace %s, want the original %s", dup.TraceID, resp.TraceID)
	}
}

// TestTracesEndpointGatedAndFiltered pins the /v1/traces surface: it
// sits behind the bearer gate, serves JSON, honours min_ms/outcome
// filters with 400s on bad params, and scraping it perturbs neither
// the request metrics nor the ring — two quiesced /metrics scrapes
// bracketing a traces scrape stay byte-identical.
func TestTracesEndpointGatedAndFiltered(t *testing.T) {
	mech := newDAM(t, 6, 2.0)
	c, err := collector.New(collector.Config{Mechanism: mech, AuthToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	srv := httptest.NewServer(c)
	t.Cleanup(func() { srv.Close(); c.Close() })
	client := collector.NewClient(srv.URL)
	client.AuthToken = "s3cret"

	shard := accumulateShards(t, mech, 1, 5)[0]
	blob, err := shard.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.SubmitAggregateBlobWithID(context.Background(), blob, nil, collector.NewSubmissionID())
	if err != nil {
		t.Fatal(err)
	}
	waitTrace(t, c.Tracer(), resp.TraceID)

	get := func(path, token string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return res, body
	}

	if res, _ := get(collector.TracesPath, ""); res.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless /v1/traces = %d, want 401", res.StatusCode)
	}

	_, m1 := get(collector.MetricsPath, "s3cret")

	res, body := get(collector.TracesPath+"?min_ms=0", "s3cret")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/v1/traces = %d: %s", res.StatusCode, body)
	}
	var dump struct {
		Service string            `json:"service"`
		Count   uint64            `json:"count"`
		Traces  []trace.TraceData `json:"traces"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/v1/traces is not JSON: %v\n%s", err, body)
	}
	if dump.Service != "collector" || dump.Count == 0 || len(dump.Traces) == 0 {
		t.Fatalf("empty traces dump: %+v", dump)
	}

	// An absurd min_ms filters everything out; a bad param is a 400.
	if _, body := get(collector.TracesPath+"?min_ms=1e12", "s3cret"); !strings.Contains(string(body), `"traces":[]`) {
		t.Fatalf("min_ms=1e12 returned traces: %s", body)
	}
	if res, _ := get(collector.TracesPath+"?min_ms=banana", "s3cret"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad min_ms = %d, want 400", res.StatusCode)
	}
	if _, body := get(collector.TracesPath+"?outcome=error", "s3cret"); strings.Contains(string(body), `"outcome":"ok"`) {
		t.Fatalf("outcome=error leaked ok traces: %s", body)
	}

	// The scrapes above must not have perturbed the quiesced metrics:
	// /v1/traces and /metrics sit outside request accounting.
	_, m2 := get(collector.MetricsPath, "s3cret")
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metrics scrapes bracketing a traces scrape differ:\n--- before\n%s\n--- after\n%s", m1, m2)
	}
	// And neither metrics nor traces scrapes entered the ring: exactly
	// the one submission trace was recorded.
	if n := c.Tracer().Completed(); n != 1 {
		t.Fatalf("ring recorded %d traces, want 1", n)
	}
}

// TestPprofGated pins the profiling surface: 404 unless EnablePprof,
// and behind the bearer gate when mounted.
func TestPprofGated(t *testing.T) {
	mech := newDAM(t, 6, 2.0)
	get := func(srvURL, token string) (int, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srvURL+collector.PprofPathPrefix, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return res.StatusCode, body
	}

	off, err := collector.New(collector.Config{Mechanism: mech, AuthToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	offSrv := httptest.NewServer(off)
	t.Cleanup(offSrv.Close)
	if code, _ := get(offSrv.URL, ""); code != http.StatusUnauthorized {
		t.Fatalf("pprof-off tokenless = %d, want 401 (gate fires before routing)", code)
	}
	if code, _ := get(offSrv.URL, "s3cret"); code != http.StatusNotFound {
		t.Fatalf("pprof disabled but authed index = %d, want 404", code)
	}

	on, err := collector.New(collector.Config{Mechanism: mech, AuthToken: "s3cret", EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	onSrv := httptest.NewServer(on)
	t.Cleanup(onSrv.Close)
	if code, _ := get(onSrv.URL, ""); code != http.StatusUnauthorized {
		t.Fatalf("tokenless pprof = %d, want 401", code)
	}
	code, body := get(onSrv.URL, "s3cret")
	if code != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("authed pprof index = %d:\n%.200s", code, body)
	}

	// pprof requests never enter the trace ring.
	if n := on.Tracer().Completed(); n != 0 {
		t.Fatalf("pprof scrapes recorded %d traces, want 0", n)
	}
}
