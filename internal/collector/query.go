package collector

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rangequery"
	"dpspatial/internal/trace"
)

// GET /v1/query serves analyst queries straight from the collector's
// merged state, so downstream consumers don't have to pull the full
// histogram to answer one rectangle:
//
//	GET /v1/query?type=range&x0=2&y0=2&x1=8&y1=8   rectangle total
//	GET /v1/query?type=topk&k=5                    heavy-hitter cells
//
// Range queries are answered from the mechanism's decoded quadtree when
// it has one (TreeEstimator — AHEAD's consistent hierarchy, in estimated
// count units) and from the estimate histogram otherwise (probability
// units). Top-k always ranks the estimate histogram. Both decodes are
// cached per generation and invalidated by the next merge, and the
// answer is byte-identical to AnswerQueryFromAggregate on the same
// merged shards in process — the fleet supervisor serves the same
// endpoint over the hierarchical member merge, so the invariant holds
// one tier up for any member count and arrival interleaving.

// TreeEstimator is an Estimator whose aggregate decodes into a
// consistent quadtree (the AHEAD family): range queries are answered
// through the tree's cover decomposition — a large rectangle is a
// handful of high-level nodes instead of hundreds of noisy cells.
type TreeEstimator interface {
	Estimator
	EstimateTreeFromAggregate(agg *fo.Aggregate) (*rangequery.Quadtree, *grid.Hist2D, error)
}

// Query types and answer bases of the /v1/query wire contract.
const (
	QueryTypeRange = "range"
	QueryTypeTopK  = "topk"

	// QueryBasisTree marks a range answer summed over the mechanism's
	// consistent quadtree, in estimated count units; QueryBasisHistogram
	// marks an answer over the normalised estimate histogram, in
	// probability units.
	QueryBasisTree      = "tree"
	QueryBasisHistogram = "histogram"
)

// QueryRequest is the parsed GET /v1/query parameter set.
type QueryRequest struct {
	// Type is QueryTypeRange or QueryTypeTopK.
	Type string
	// Range is the inclusive cell rectangle of a range query.
	Range rangequery.Query
	// K is the cell count of a top-k query.
	K int
}

// ParseQueryRequest decodes the /v1/query URL parameters. Rectangle
// bounds are validated against the grid later, when the domain is known.
func ParseQueryRequest(v url.Values) (QueryRequest, error) {
	switch typ := v.Get("type"); typ {
	case QueryTypeRange:
		req := QueryRequest{Type: QueryTypeRange}
		for _, f := range []struct {
			name string
			dst  *int
		}{
			{"x0", &req.Range.X0}, {"y0", &req.Range.Y0},
			{"x1", &req.Range.X1}, {"y1", &req.Range.Y1},
		} {
			s := v.Get(f.name)
			if s == "" {
				return QueryRequest{}, fmt.Errorf("range query needs x0, y0, x1, y1 (missing %s)", f.name)
			}
			n, err := strconv.Atoi(s)
			if err != nil {
				return QueryRequest{}, fmt.Errorf("bad %s: %v", f.name, err)
			}
			*f.dst = n
		}
		return req, nil
	case QueryTypeTopK:
		s := v.Get("k")
		if s == "" {
			return QueryRequest{}, fmt.Errorf("topk query needs k")
		}
		k, err := strconv.Atoi(s)
		if err != nil {
			return QueryRequest{}, fmt.Errorf("bad k: %v", err)
		}
		if k < 1 {
			return QueryRequest{}, fmt.Errorf("k must be >= 1, got %d", k)
		}
		return QueryRequest{Type: QueryTypeTopK, K: k}, nil
	case "":
		return QueryRequest{}, fmt.Errorf("missing type (%s or %s)", QueryTypeRange, QueryTypeTopK)
	default:
		return QueryRequest{}, fmt.Errorf("unknown query type %q", typ)
	}
}

// Values renders the request back into URL parameters — the client side
// of ParseQueryRequest.
func (q QueryRequest) Values() (url.Values, error) {
	v := url.Values{}
	switch q.Type {
	case QueryTypeRange:
		v.Set("type", QueryTypeRange)
		v.Set("x0", strconv.Itoa(q.Range.X0))
		v.Set("y0", strconv.Itoa(q.Range.Y0))
		v.Set("x1", strconv.Itoa(q.Range.X1))
		v.Set("y1", strconv.Itoa(q.Range.Y1))
	case QueryTypeTopK:
		v.Set("type", QueryTypeTopK)
		v.Set("k", strconv.Itoa(q.K))
	default:
		return nil, fmt.Errorf("unknown query type %q", q.Type)
	}
	return v, nil
}

// RangeAnswer is the range block of a QueryResponse: the echoed
// rectangle and its total in the units of the response basis.
type RangeAnswer struct {
	X0    int     `json:"x0"`
	Y0    int     `json:"y0"`
	X1    int     `json:"x1"`
	Y1    int     `json:"y1"`
	Value float64 `json:"value"`
}

// QueryCell is one ranked cell of a top-k answer.
type QueryCell struct {
	X     int     `json:"x"`
	Y     int     `json:"y"`
	Index int     `json:"index"`
	Mass  float64 `json:"mass"`
}

// TopKAnswer is the top-k block of a QueryResponse: the K (clamped to
// the cell count) heaviest estimate cells, descending by mass with ties
// broken by ascending index — a total order, so the ranking is
// deterministic.
type TopKAnswer struct {
	K     int         `json:"k"`
	Cells []QueryCell `json:"cells"`
}

// QueryResponse is the JSON envelope GET /v1/query serves. Exactly one
// of Range and TopK is set, matching Type.
type QueryResponse struct {
	Type       string       `json:"type"`
	Scheme     string       `json:"scheme"`
	Basis      string       `json:"basis"`
	Generation uint64       `json:"generation"`
	Reports    float64      `json:"reports"`
	Range      *RangeAnswer `json:"range,omitempty"`
	TopK       *TopKAnswer  `json:"topk,omitempty"`
}

// BadQueryError marks a query refused for client-side reasons — an
// out-of-bounds rectangle, an impossible parameter — so the HTTP tiers
// answer 400 instead of a server-state status.
type BadQueryError struct{ Err error }

func (e *BadQueryError) Error() string { return e.Err.Error() }
func (e *BadQueryError) Unwrap() error { return e.Err }

// AnswerQuery resolves a parsed query against decoded state: the
// quadtree when the mechanism decodes one and the request is a range
// query (tree non-nil, est ignored), the estimate histogram otherwise.
// Both HTTP tiers and the in-process reference route through it, so the
// answer arithmetic cannot diverge between them.
func AnswerQuery(req QueryRequest, scheme string, gen uint64, n float64, tree *rangequery.Quadtree, est *grid.Hist2D) (*QueryResponse, error) {
	resp := &QueryResponse{Type: req.Type, Scheme: scheme, Generation: gen, Reports: n}
	switch req.Type {
	case QueryTypeRange:
		if tree != nil {
			if err := req.Range.Validate(tree.D); err != nil {
				return nil, &BadQueryError{Err: err}
			}
			v, err := tree.QueryValue(req.Range)
			if err != nil {
				return nil, err
			}
			resp.Basis = QueryBasisTree
			resp.Range = &RangeAnswer{X0: req.Range.X0, Y0: req.Range.Y0, X1: req.Range.X1, Y1: req.Range.Y1, Value: v}
			return resp, nil
		}
		if err := req.Range.Validate(est.Dom.D); err != nil {
			return nil, &BadQueryError{Err: err}
		}
		v, err := rangequery.Answer(est, req.Range)
		if err != nil {
			return nil, err
		}
		resp.Basis = QueryBasisHistogram
		resp.Range = &RangeAnswer{X0: req.Range.X0, Y0: req.Range.Y0, X1: req.Range.X1, Y1: req.Range.Y1, Value: v}
		return resp, nil
	case QueryTypeTopK:
		resp.Basis = QueryBasisHistogram
		resp.TopK = topKCells(est, req.K)
		return resp, nil
	default:
		return nil, &BadQueryError{Err: fmt.Errorf("unknown query type %q", req.Type)}
	}
}

// topKCells ranks the estimate's cells by descending mass, ties by
// ascending index.
func topKCells(est *grid.Hist2D, k int) *TopKAnswer {
	n := len(est.Mass)
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if est.Mass[ia] != est.Mass[ib] {
			return est.Mass[ia] > est.Mass[ib]
		}
		return ia < ib
	})
	cells := make([]QueryCell, k)
	for i := 0; i < k; i++ {
		idx := order[i]
		c := est.Dom.CellAt(idx)
		cells[i] = QueryCell{X: c.X, Y: c.Y, Index: idx, Mass: est.Mass[idx]}
	}
	return &TopKAnswer{K: k, Cells: cells}
}

// AnswerQueryFromAggregate answers a query in process from a merged
// aggregate — the reference both HTTP tiers are byte-identical to (their
// Generation field reflects service state and differs; the answer blocks
// do not). `damctl query --from-aggregate` and the byte-identity tests
// call it.
func AnswerQueryFromAggregate(mech Estimator, agg *fo.Aggregate, req QueryRequest) (*QueryResponse, error) {
	if te, ok := mech.(TreeEstimator); ok && req.Type == QueryTypeRange {
		tree, _, err := te.EstimateTreeFromAggregate(agg)
		if err != nil {
			return nil, err
		}
		return AnswerQuery(req, mech.Scheme(), 0, agg.N, tree, nil)
	}
	est, err := mech.EstimateFromAggregate(agg)
	if err != nil {
		return nil, err
	}
	return AnswerQuery(req, mech.Scheme(), 0, agg.N, nil, est)
}

// handleQuery serves GET /v1/query from the current merged state,
// refreshing the needed decode first so the answer always reflects every
// merged submission.
func (c *Collector) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	req, err := ParseQueryRequest(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := c.answerQuery(r.Context(), req)
	if err != nil {
		status := http.StatusConflict
		if errors.As(err, new(*BadQueryError)) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	c.met.Queries.With(req.Type).Inc()
	writeJSON(w, http.StatusOK, resp)
}

// answerQuery picks the answering basis for the locked mechanism and
// brings the matching decode up to the current generation. The context
// threads the request's trace span into the decode paths.
func (c *Collector) answerQuery(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	c.mu.Lock()
	mech := c.mech
	c.mu.Unlock()
	if mech == nil {
		return nil, fmt.Errorf("collector has no mechanism yet")
	}
	if te, ok := mech.(TreeEstimator); ok && req.Type == QueryTypeRange {
		tree, gen, n, err := c.rangeTree(ctx, te)
		if err != nil {
			return nil, err
		}
		return AnswerQuery(req, mech.Scheme(), gen, n, tree, nil)
	}
	cur, err := c.refresh(ctx)
	if err != nil {
		return nil, err
	}
	return AnswerQuery(req, mech.Scheme(), cur.gen, cur.n, nil, cur.est)
}

// rangeTree returns the quadtree decoded from the current canonical
// aggregate, decoding at most once per generation: a merge bumps the
// generation, which invalidates the cached tree on the next query.
// decodeMu serialises the decode with estimate refreshes so concurrent
// queries never duplicate work.
func (c *Collector) rangeTree(ctx context.Context, te TreeEstimator) (*rangequery.Quadtree, uint64, float64, error) {
	span := trace.SpanFrom(ctx)
	c.decodeMu.Lock()
	defer c.decodeMu.Unlock()
	c.mu.Lock()
	if c.queryTree != nil && c.queryTreeGen == c.generation {
		t, gen, n := c.queryTree, c.queryTreeGen, c.queryTreeN
		c.mu.Unlock()
		c.met.QueryCacheHits.With(CacheTree).Inc()
		span.Event("tree.cache.hit", trace.Int("generation", int64(gen)))
		return t, gen, n, nil
	}
	if c.agg.N == 0 {
		c.mu.Unlock()
		return nil, 0, 0, fmt.Errorf("no reports merged yet")
	}
	snapshot := c.agg.Clone()
	gen := c.generation
	c.mu.Unlock()
	c.met.QueryCacheMisses.With(CacheTree).Inc()
	treeSpan := span.Child("collector.tree.decode")
	tree, _, err := te.EstimateTreeFromAggregate(snapshot)
	if err != nil {
		treeSpan.Fail(err)
		treeSpan.End()
		return nil, 0, 0, err
	}
	treeSpan.SetAttr(trace.Int("generation", int64(gen)))
	treeSpan.End()
	c.mu.Lock()
	c.queryTree, c.queryTreeGen, c.queryTreeN = tree, gen, snapshot.N
	c.mu.Unlock()
	return tree, gen, snapshot.N, nil
}

// Query answers a range or top-k query against the collector's (or
// fleet supervisor's) current merged state.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	v, err := req.Values()
	if err != nil {
		return nil, err
	}
	var resp QueryResponse
	if err := c.do(ctx, http.MethodGet, "/v1/query?"+v.Encode(), "", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryRange answers an inclusive cell-rectangle total.
func (c *Client) QueryRange(ctx context.Context, x0, y0, x1, y1 int) (*QueryResponse, error) {
	return c.Query(ctx, QueryRequest{Type: QueryTypeRange, Range: rangequery.Query{X0: x0, Y0: y0, X1: x1, Y1: y1}})
}

// QueryTopK answers the k heaviest estimate cells.
func (c *Client) QueryTopK(ctx context.Context, k int) (*QueryResponse, error) {
	return c.Query(ctx, QueryRequest{Type: QueryTypeTopK, K: k})
}
