package collector_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dpspatial/internal/collector"
	"dpspatial/internal/fo"
	"dpspatial/internal/grid"
	"dpspatial/internal/rng"
	"dpspatial/internal/sam"
)

func newDAM(t *testing.T, d int, eps float64) *sam.Mechanism {
	t.Helper()
	dom, err := grid.NewDomain(0, 0, 1, d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sam.NewDAM(dom, eps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startServer runs a collector pre-built around mech under an httptest
// server and returns a client for it.
func startServer(t *testing.T, mech collector.Estimator, cadence time.Duration) (*collector.Client, *collector.Collector) {
	t.Helper()
	c, err := collector.New(collector.Config{Mechanism: mech, Cadence: cadence})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	srv := httptest.NewServer(c)
	t.Cleanup(func() { srv.Close(); c.Close() })
	return collector.NewClient(srv.URL), c
}

// accumulateShards streams n reports per cell of a synthetic truth
// histogram through the mechanism's client layer, round-robin over the
// requested number of shard aggregates, on a single RNG stream.
func accumulateShards(t *testing.T, mech *sam.Mechanism, shards int, seed uint64) []*fo.Aggregate {
	t.Helper()
	out := make([]*fo.Aggregate, shards)
	for s := range out {
		out[s] = mech.NewAggregate()
	}
	r := rng.New(seed)
	user := 0
	for i := 0; i < mech.NumInputs(); i++ {
		for k := 0; k < 5+(i*7)%23; k++ {
			rep, err := mech.Report(i, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := out[user%shards].Add(rep); err != nil {
				t.Fatal(err)
			}
			user++
		}
	}
	return out
}

// mustJSONLine renders a pipeline as a reports-stream header line.
func mustJSONLine(t *testing.T, p *collector.Pipeline) string {
	t.Helper()
	hdr := *p
	hdr.Format = collector.ReportsFormat
	b, err := json.Marshal(&hdr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func mergeAll(t *testing.T, mech *sam.Mechanism, shards []*fo.Aggregate) *fo.Aggregate {
	t.Helper()
	merged := mech.NewAggregate()
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	return merged
}

// TestEstimateMatchesInProcessByteIdentical is the acceptance check:
// shards submitted over HTTP decode to exactly the histogram
// EstimateFromAggregate produces on the same shards in process. The
// collector's first decode is a cold start, so this holds bit-for-bit.
func TestEstimateMatchesInProcessByteIdentical(t *testing.T) {
	mech := newDAM(t, 6, 1.5)
	shards := accumulateShards(t, mech, 2, 11)
	want, err := mech.EstimateFromAggregate(mergeAll(t, mech, shards))
	if err != nil {
		t.Fatal(err)
	}

	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	for i, s := range shards {
		resp, err := client.SubmitAggregate(ctx, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Generation != uint64(i+1) {
			t.Fatalf("submission %d acknowledged generation %d", i, resp.Generation)
		}
	}
	got, meta, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Warm {
		t.Fatal("first decode should be a cold start")
	}
	if got.Dom != want.Dom {
		t.Fatalf("domain mismatch: %+v vs %+v", got.Dom, want.Dom)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("HTTP estimate is not byte-identical to the in-process EstimateFromAggregate")
	}
}

// TestConcurrentAggregateMergesByteIdentity submits shards from
// concurrent goroutines and checks the merged canonical aggregate is
// byte-identical to a serial merge, regardless of arrival interleaving.
func TestConcurrentAggregateMergesByteIdentity(t *testing.T) {
	mech := newDAM(t, 5, 2.0)
	shards := accumulateShards(t, mech, 8, 23)
	wantBlob, err := mergeAll(t, mech, shards).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 3; trial++ {
		client, _ := startServer(t, newDAM(t, 5, 2.0), 0)
		ctx := context.Background()
		var wg sync.WaitGroup
		errs := make(chan error, len(shards))
		for i := range shards {
			wg.Add(1)
			go func(shard *fo.Aggregate) {
				defer wg.Done()
				if _, err := client.SubmitAggregate(ctx, shard, nil); err != nil {
					errs <- err
				}
			}(shards[(i+trial*3)%len(shards)])
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		merged, err := client.FetchAggregate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		gotBlob, err := merged.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBlob, wantBlob) {
			t.Fatalf("trial %d: concurrently merged aggregate differs from the serial merge", trial)
		}
	}
}

// TestMixedVersionSubmissions merges a legacy DPA1 blob with a DPA2 blob
// and checks the result matches an all-DPA2 merge.
func TestMixedVersionSubmissions(t *testing.T) {
	mech := newDAM(t, 5, 1.2)
	shards := accumulateShards(t, mech, 2, 31)
	want := mergeAll(t, mech, shards)

	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	v1, err := shards[0].MarshalBinaryV1()
	if err != nil {
		t.Fatal(err)
	}
	if string(v1[:4]) != "DPA1" {
		t.Fatalf("legacy blob has magic %q", v1[:4])
	}
	if _, err := client.SubmitAggregateBlob(ctx, v1, nil); err != nil {
		t.Fatalf("DPA1 submission rejected: %v", err)
	}
	if _, err := client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	merged, err := client.FetchAggregate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatal("mixed DPA1/DPA2 merge differs from the all-DPA2 merge")
	}
}

// TestWarmRestartStats checks that the second decode warm-starts from
// the first estimate and that /v1/stats surfaces the iteration saving.
func TestWarmRestartStats(t *testing.T) {
	mech := newDAM(t, 4, 3.5)
	shards := accumulateShards(t, mech, 2, 7)

	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	if _, err := client.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}
	_, meta1, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if meta1.Warm {
		t.Fatal("first decode should be cold")
	}
	if _, err := client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	_, meta2, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.Warm {
		t.Fatal("post-merge decode should warm-start from the previous estimate")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Estimates != 2 || stats.WarmEstimates != 1 {
		t.Fatalf("stats counted %d decodes / %d warm", stats.Estimates, stats.WarmEstimates)
	}
	if stats.ColdBaselineIterations == 0 {
		t.Fatal("cold baseline iterations not recorded")
	}
	if meta2.Iterations >= stats.ColdBaselineIterations {
		t.Fatalf("warm decode took %d iterations, cold baseline %d",
			meta2.Iterations, stats.ColdBaselineIterations)
	}
	if stats.IterationsSaved == 0 {
		t.Fatal("warm restart saved no iterations according to /v1/stats")
	}
	if stats.EstimateGeneration != 2 || stats.Generation != 2 {
		t.Fatalf("stats generations: estimate %d, aggregate %d", stats.EstimateGeneration, stats.Generation)
	}
}

// TestAdoptMechanismFromReportStream starts a collector with only a
// Build hook and checks it adopts the mechanism from the first report
// shard's pipeline header, rejects mismatched later submissions, and
// then estimates exactly like the in-process lifecycle.
func TestAdoptMechanismFromReportStream(t *testing.T) {
	c, err := collector.New(collector.Config{
		Build: func(p *collector.Pipeline) (collector.Estimator, error) {
			dom, err := p.GridDomain()
			if err != nil {
				return nil, err
			}
			if p.Mech != "DAM" {
				return nil, fmt.Errorf("test builder only builds DAM, not %q", p.Mech)
			}
			return sam.NewDAM(dom, p.Eps)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	defer srv.Close()
	client := collector.NewClient(srv.URL)
	ctx := context.Background()

	mech := newDAM(t, 5, 1.5)
	pipeline := &collector.Pipeline{
		Mech: "DAM", D: 5, Eps: 1.5,
		Scheme: mech.Scheme(), Shape: mech.ReportShape(),
		Domain: collector.DomainSpec{MinX: 0, MinY: 0, Side: 1},
	}

	// Binary aggregates carry no pipeline metadata, so before adoption
	// they must be rejected.
	shards := accumulateShards(t, mech, 2, 3)
	if _, err := client.SubmitAggregate(ctx, shards[0], nil); err == nil {
		t.Fatal("headerless submission before adoption should fail")
	}

	// A rejected submission must not lock the collector: a valid header
	// paired with a blob of a different scheme builds the candidate
	// mechanism but the shard fails validation — adoption must roll
	// back, not pin the collector to the candidate.
	foreign := newDAM(t, 6, 2.0)
	if _, err := client.SubmitAggregate(ctx, foreign.NewAggregate(), pipeline); err == nil {
		t.Fatal("mismatched blob should be rejected")
	}
	// Likewise a well-formed header followed by a garbage report line.
	garbage := strings.NewReader(mustJSONLine(t, pipeline) + "not json\n")
	if _, err := client.SubmitReportStream(ctx, garbage); err == nil {
		t.Fatal("malformed report stream should be rejected")
	}
	if stats, err := client.Stats(ctx); err != nil || stats.Scheme != "" {
		t.Fatalf("rejected submissions locked the collector (scheme %q, err %v)", stats.Scheme, err)
	}

	// A report stream with a header adopts the mechanism.
	var reports []fo.Report
	r := rng.New(99)
	for i := 0; i < mech.NumInputs(); i++ {
		rep, err := mech.Report(i, r)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	resp, err := client.SubmitReports(ctx, pipeline, reports)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scheme != mech.Scheme() || resp.Reports != float64(len(reports)) {
		t.Fatalf("unexpected ack: %+v", resp)
	}

	// Mismatched pipelines are refused once locked.
	other := *pipeline
	other.Eps = 2.5
	other.Scheme = "sam/DAM d=5 eps=2.5 bhat=1"
	if _, err := client.SubmitReports(ctx, &other, reports[:1]); err == nil {
		t.Fatal("mismatched scheme should be refused after adoption")
	}

	// The adopted estimator decodes exactly like the in-process one.
	inproc := mech.NewAggregate()
	for _, rep := range reports {
		if err := inproc.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	want, err := mech.EstimateFromAggregate(inproc)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Mass, want.Mass) {
		t.Fatal("adopted collector's estimate differs from the in-process decode")
	}
}

// TestPipelinePinRefusesForeignDomain checks that a collector built
// with a bare mechanism (no Config.Pipeline) pins the first submitted
// pipeline metadata, so a same-scheme shard collected over a different
// geographic domain — which the scheme string alone cannot detect — is
// refused instead of merging silently.
func TestPipelinePinRefusesForeignDomain(t *testing.T) {
	mech := newDAM(t, 5, 1.5)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	shards := accumulateShards(t, mech, 3, 41)

	pipeline := &collector.Pipeline{
		Mech: "DAM", D: 5, Eps: 1.5,
		Scheme: mech.Scheme(), Shape: mech.ReportShape(),
		Domain: collector.DomainSpec{MinX: 0, MinY: 0, Side: 1},
	}

	// A header whose shape disagrees with the mechanism must not merge
	// or become the pin — a misconfigured client could otherwise lock
	// every later correct submission out.
	poisoned := *pipeline
	poisoned.Shape = []int{7}
	if _, err := client.SubmitAggregate(ctx, shards[2], &poisoned); err == nil {
		t.Fatal("shape-mismatched header should be refused")
	}
	// A partial header (scheme only) merges but must not become the pin
	// either: zero-valued Mech/D/Domain would refuse every later
	// fully-specified client.
	partial := &collector.Pipeline{Scheme: mech.Scheme()}
	if _, err := client.SubmitAggregate(ctx, shards[2], partial); err != nil {
		t.Fatal(err)
	}

	if _, err := client.SubmitAggregate(ctx, shards[0], pipeline); err != nil {
		t.Fatal(err)
	}
	// Same scheme, different region: must be refused once pinned.
	foreign := *pipeline
	foreign.Domain = collector.DomainSpec{MinX: 40.7, MinY: -74.0, Side: 0.2}
	if _, err := client.SubmitAggregate(ctx, shards[1], &foreign); err == nil {
		t.Fatal("same-scheme shard from a different domain should be refused")
	}
	// The matching domain still merges.
	if _, err := client.SubmitAggregate(ctx, shards[1], pipeline); err != nil {
		t.Fatal(err)
	}
}

// TestCadenceLoopRefreshes checks the background daemon loop re-decodes
// merged submissions without any GET /v1/estimate driving it.
func TestCadenceLoopRefreshes(t *testing.T) {
	mech := newDAM(t, 4, 3.5)
	shards := accumulateShards(t, mech, 2, 5)
	client, _ := startServer(t, mech, 10*time.Millisecond)
	ctx := context.Background()

	waitForEstimateGen := func(gen uint64) *collector.Stats {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			stats, err := client.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if stats.EstimateGeneration >= gen {
				return stats
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("cadence loop never refreshed to generation %d", gen)
		return nil
	}

	if _, err := client.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}
	waitForEstimateGen(1)
	if _, err := client.SubmitAggregate(ctx, shards[1], nil); err != nil {
		t.Fatal(err)
	}
	stats := waitForEstimateGen(2)
	if stats.WarmEstimates == 0 {
		t.Fatal("cadence refresh after a merge should have warm-started")
	}
}

// TestAuthToken locks a collector behind --auth-token semantics: every
// endpoint except /healthz refuses tokenless and wrong-token requests,
// and the matching bearer token unlocks the full lifecycle.
func TestAuthToken(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	c, err := collector.New(collector.Config{Mechanism: mech, AuthToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c)
	defer srv.Close()
	ctx := context.Background()
	shards := accumulateShards(t, mech, 1, 3)

	bare := collector.NewClient(srv.URL)
	if err := bare.Health(ctx); err != nil {
		t.Fatalf("healthz should stay open: %v", err)
	}
	if _, err := bare.SubmitAggregate(ctx, shards[0], nil); err == nil {
		t.Fatal("tokenless submission should be refused")
	} else {
		var se *collector.StatusError
		if !errors.As(err, &se) || se.StatusCode != http.StatusUnauthorized {
			t.Fatalf("tokenless submission got %v, want 401", err)
		}
	}
	wrong := collector.NewClient(srv.URL)
	wrong.AuthToken = "not-it"
	if _, err := wrong.Stats(ctx); err == nil {
		t.Fatal("wrong token should be refused")
	}

	authed := collector.NewClient(srv.URL)
	authed.AuthToken = "s3cret"
	if _, err := authed.SubmitAggregate(ctx, shards[0], nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := authed.Estimate(ctx); err != nil {
		t.Fatal(err)
	}
}

// flakyFront fails the first n requests with 503 before passing through
// to the wrapped collector.
type flakyFront struct {
	mu        sync.Mutex
	failFirst int
	requests  int
	next      http.Handler
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.requests++
	fail := f.requests <= f.failFirst
	f.mu.Unlock()
	if fail {
		http.Error(w, `{"error":"briefly unhealthy"}`, http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

// TestClientRetriesTransientFailures checks the bounded-retry client: a
// submission that hits transient 5xx answers is replayed (with the
// exact same bytes — the merge happens once) until the member recovers,
// while 4xx refusals and retry-disabled clients fail immediately.
func TestClientRetriesTransientFailures(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	c, err := collector.New(collector.Config{Mechanism: mech})
	if err != nil {
		t.Fatal(err)
	}
	front := &flakyFront{failFirst: 2, next: c}
	srv := httptest.NewServer(front)
	defer srv.Close()
	ctx := context.Background()
	shards := accumulateShards(t, mech, 2, 9)

	// No retries: the first 503 is fatal.
	plain := collector.NewClient(srv.URL)
	if _, err := plain.SubmitAggregate(ctx, shards[0], nil); err == nil {
		t.Fatal("retry-disabled client should surface the 503")
	}

	// Retries enabled: two failures are absorbed, the shard merges once.
	retrying := collector.NewClient(srv.URL)
	retrying.MaxRetries = 3
	retrying.RetryBackoff = time.Millisecond
	front.mu.Lock()
	front.requests, front.failFirst = 0, 2
	front.mu.Unlock()
	resp, err := retrying.SubmitAggregate(ctx, shards[0], nil)
	if err != nil {
		t.Fatalf("retrying client should absorb transient 503s: %v", err)
	}
	if resp.TotalReports != shards[0].N {
		t.Fatalf("shard merged %g reports total, want %g (exactly once)", resp.TotalReports, shards[0].N)
	}
	front.mu.Lock()
	requests := front.requests
	front.mu.Unlock()
	if requests != 3 {
		t.Fatalf("expected 3 attempts (2 failures + success), saw %d", requests)
	}

	// A 4xx refusal (foreign scheme) must not retry.
	foreign := newDAM(t, 6, 1.0)
	front.mu.Lock()
	front.requests, front.failFirst = 0, 0
	front.mu.Unlock()
	if _, err := retrying.SubmitAggregate(ctx, foreign.NewAggregate(), nil); err == nil {
		t.Fatal("foreign-scheme shard should be refused")
	}
	front.mu.Lock()
	requests = front.requests
	front.mu.Unlock()
	if requests != 1 {
		t.Fatalf("4xx refusal should not retry, saw %d attempts", requests)
	}
}

// TestSubmissionIDExactlyOnce replays a submission under its original
// ID and checks the shard merges exactly once, with the original ack
// repeated and marked duplicate.
func TestSubmissionIDExactlyOnce(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	shards := accumulateShards(t, mech, 1, 21)
	blob, err := shards[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	id := collector.NewSubmissionID()
	first, err := client.SubmitAggregateBlobWithID(ctx, blob, nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate {
		t.Fatal("first submission marked duplicate")
	}
	replay, err := client.SubmitAggregateBlobWithID(ctx, blob, nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Duplicate {
		t.Fatal("replayed ID not marked duplicate")
	}
	if replay.TotalReports != first.TotalReports || replay.Generation != first.Generation {
		t.Fatalf("replay ack %+v differs from original %+v", replay, first)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation != 1 || stats.Reports != shards[0].N || stats.DuplicateShards != 1 {
		t.Fatalf("replay merged twice or was not counted: %+v", stats)
	}
}

// abortOnce processes the first POST for real but kills the connection
// before any response bytes leave — the lost-ack failure mode.
type abortOnce struct {
	mu      sync.Mutex
	aborted bool
	next    http.Handler
}

func (a *abortOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	abort := r.Method == http.MethodPost && !a.aborted
	if abort {
		a.aborted = true
	}
	a.mu.Unlock()
	if abort {
		rec := httptest.NewRecorder()
		a.next.ServeHTTP(rec, r)
		panic(http.ErrAbortHandler)
	}
	a.next.ServeHTTP(w, r)
}

// TestClientRetryAfterLostAckMergesOnce covers the nastiest retry case:
// the server merges the shard but the response is lost mid-flight. The
// retry replays the same submission ID, so the idempotency log answers
// with the original ack and the shard counts exactly once.
func TestClientRetryAfterLostAckMergesOnce(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	c, err := collector.New(collector.Config{Mechanism: mech})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&abortOnce{next: c})
	defer srv.Close()
	ctx := context.Background()
	shards := accumulateShards(t, mech, 1, 27)

	client := collector.NewClient(srv.URL)
	client.MaxRetries = 3
	client.RetryBackoff = time.Millisecond
	resp, err := client.SubmitAggregate(ctx, shards[0], nil)
	if err != nil {
		t.Fatalf("retry after a lost ack should recover: %v", err)
	}
	if !resp.Duplicate {
		t.Fatal("recovered ack should be marked duplicate (the first attempt merged)")
	}
	if resp.TotalReports != shards[0].N {
		t.Fatalf("shard counted %g reports total, want %g (exactly once)", resp.TotalReports, shards[0].N)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generation != 1 || stats.Reports != shards[0].N {
		t.Fatalf("lost-ack retry merged twice: %+v", stats)
	}
}

// TestHealthzAndErrors covers the health endpoint and the error paths.
func TestHealthzAndErrors(t *testing.T) {
	mech := newDAM(t, 4, 2.0)
	client, _ := startServer(t, mech, 0)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	// No reports yet: estimate must refuse rather than serve garbage.
	if _, _, err := client.Estimate(ctx); err == nil {
		t.Fatal("estimate before any submission should fail")
	}
	// Garbage blobs are rejected.
	if _, err := client.SubmitAggregateBlob(ctx, []byte("not an aggregate"), nil); err == nil {
		t.Fatal("garbage blob should be rejected")
	}
	// A shard from a different scheme is refused.
	foreign := newDAM(t, 4, 9.9)
	if _, err := client.SubmitAggregate(ctx, foreign.NewAggregate(), nil); err == nil {
		t.Fatal("foreign-scheme shard should be refused")
	}
	// Wrong methods 405.
	resp, err := http.Get(client.BaseURL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/report returned %d", resp.StatusCode)
	}
}
