package collector

import (
	"testing"
	"time"
)

// TestRetryDelayEqualJitterBounds pins the equal-jitter contract: every
// draw stays inside [backoff/2, backoff], and the upper half actually
// varies — a constant delay would put every knocked-back client on the
// same retry clock.
func TestRetryDelayEqualJitterBounds(t *testing.T) {
	for _, backoff := range []time.Duration{
		2 * time.Millisecond, 100 * time.Millisecond, 3200 * time.Millisecond,
	} {
		lo, hi := backoff/2, backoff
		seen := map[time.Duration]bool{}
		for i := 0; i < 256; i++ {
			d := retryDelay(backoff)
			if d < lo || d > hi {
				t.Fatalf("retryDelay(%v) = %v, outside [%v, %v]", backoff, d, lo, hi)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Fatalf("retryDelay(%v) never jittered: always %v", backoff, retryDelay(backoff))
		}
	}
	// Degenerate windows pass through untouched.
	if d := retryDelay(0); d != 0 {
		t.Fatalf("retryDelay(0) = %v", d)
	}
	if d := retryDelay(1); d != 1 {
		t.Fatalf("retryDelay(1) = %v", d)
	}
}
