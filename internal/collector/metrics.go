package collector

import (
	"net/http"
	"strconv"
	"time"

	"dpspatial/internal/metrics"
)

// The /metrics operator surface of the collector tier. Metric names are
// a stable contract — docs/OPERATIONS.md documents every series and
// CI's smoke jobs grep for them — so renaming one is a wire-format
// change. The fleet supervisor registers the same families through
// NewServiceMetrics and layers its per-member series on top, which is
// what keeps one dashboard valid against both tiers.

// MetricsPath is the exposition endpoint both tiers serve. It sits
// behind the same bearer-token gate as the data endpoints, and is one
// of the paths InstrumentHTTP does NOT count — scraping must not
// perturb the series being scraped, or two scrapes of a quiesced
// service could never be byte-identical.
const MetricsPath = "/metrics"

// TracesPath is the completed-trace ring endpoint both tiers serve
// (GET, JSON, newest first; ?min_ms= / ?outcome= / ?limit= filters).
// Like MetricsPath it sits behind the bearer gate and is excluded from
// request accounting AND tracing: dumping the ring must not push new
// traces into it or perturb the /metrics series.
const TracesPath = "/v1/traces"

// PprofPathPrefix is where --pprof mounts net/http/pprof on both tiers
// — behind the bearer gate, excluded from accounting and tracing, and
// collapsed out of the path label space so profiling endpoints cannot
// widen metric cardinality.
const PprofPathPrefix = "/debug/pprof/"

// UntracedPath reports the paths the tracing middleware must pass
// through unrecorded: the observability surfaces themselves (metrics,
// traces, pprof) — reading them must not generate entries in what they
// expose — and health probes, whose per-cadence noise would evict every
// interesting trace from the bounded ring.
func UntracedPath(p string) bool {
	return p == MetricsPath || p == TracesPath || p == "/healthz" ||
		len(p) >= len(PprofPathPrefix) && p[:len(PprofPathPrefix)] == PprofPathPrefix
}

// Submission-outcome label values of dpspatial_submissions_total.
const (
	// SubmissionAccepted marks a shard merged into the canonical
	// aggregate (fleet tier: routed to a member that accepted it).
	SubmissionAccepted = "accepted"
	// SubmissionDuplicate marks a replayed submission ID answered from
	// the idempotency log without merging.
	SubmissionDuplicate = "duplicate"
	// SubmissionRefused marks a submission answered with a 4xx/5xx
	// status; dpspatial_submission_refusals_total splits it by code.
	SubmissionRefused = "refused"
)

// Cache-kind label values of the query-tier cache counters.
const (
	// CacheEstimate is the per-generation estimate decode backing
	// GET /v1/estimate and top-k queries.
	CacheEstimate = "estimate"
	// CacheTree is the per-generation quadtree decode backing range
	// queries on TreeEstimator mechanisms.
	CacheTree = "tree"
)

// Decode-mode label values of the EM decode series.
const (
	// DecodeCold marks a from-scratch EM decode.
	DecodeCold = "cold"
	// DecodeWarm marks a decode warm-started from the previous
	// generation's estimate.
	DecodeWarm = "warm"
)

// ServiceMetrics is the instrument set shared by the collector and the
// fleet supervisor: HTTP traffic, submission outcomes, query-tier cache
// behavior, and EM decode accounting. Both tiers register it against
// their own Registry so the family names and label schemas cannot
// diverge between them.
type ServiceMetrics struct {
	// Requests counts HTTP requests by normalized path and status code;
	// Latency is the matching per-path latency histogram.
	Requests *metrics.CounterVec
	Latency  *metrics.HistogramVec
	// Submissions counts submission outcomes (accepted / duplicate /
	// refused); SubmissionRefusals splits the refused outcome by HTTP
	// status code — the 400/409/503 refusal matrix as counters.
	Submissions        *metrics.CounterVec
	SubmissionRefusals *metrics.CounterVec
	// Queries counts served /v1/query answers by type (range / topk);
	// QueryRefusals counts refused ones by status code.
	Queries       *metrics.CounterVec
	QueryRefusals *metrics.CounterVec
	// QueryCacheHits / QueryCacheMisses count per-generation decode
	// cache behavior by cache kind (estimate / tree). A miss is a decode
	// actually run; a hit served the cached generation.
	QueryCacheHits   *metrics.CounterVec
	QueryCacheMisses *metrics.CounterVec
	// Decodes counts EM decodes by mode (cold / warm); DecodeSeconds
	// times them; DecodeIterations accumulates their EM iteration
	// counts; DecodeIterationsSaved accumulates the iterations warm
	// starts saved against the cold baseline.
	Decodes               *metrics.CounterVec
	DecodeSeconds         *metrics.HistogramVec
	DecodeIterations      *metrics.CounterVec
	DecodeIterationsSaved *metrics.Counter
}

// NewServiceMetrics registers the shared collector-tier families on reg.
func NewServiceMetrics(reg *metrics.Registry) *ServiceMetrics {
	return &ServiceMetrics{
		Requests: reg.CounterVec("dpspatial_http_requests_total",
			"HTTP requests served, by path and status code (the /metrics endpoint itself is not counted).",
			"path", "code"),
		Latency: reg.HistogramVec("dpspatial_http_request_seconds",
			"HTTP request latency in seconds, by path.",
			metrics.DefBuckets, "path"),
		Submissions: reg.CounterVec("dpspatial_submissions_total",
			"Shard submissions by outcome: accepted (merged), duplicate (replayed ID answered from the idempotency log), refused (4xx/5xx).",
			"outcome"),
		SubmissionRefusals: reg.CounterVec("dpspatial_submission_refusals_total",
			"Refused shard submissions by HTTP status code (400 malformed, 409 incompatible, 503 durability/partial-union).",
			"code"),
		Queries: reg.CounterVec("dpspatial_queries_total",
			"Served /v1/query answers by type (range, topk).",
			"type"),
		QueryRefusals: reg.CounterVec("dpspatial_query_refusals_total",
			"Refused /v1/query requests by HTTP status code.",
			"code"),
		QueryCacheHits: reg.CounterVec("dpspatial_query_cache_hits_total",
			"Per-generation decode cache hits by kind (estimate, tree): answers served without re-decoding.",
			"kind"),
		QueryCacheMisses: reg.CounterVec("dpspatial_query_cache_misses_total",
			"Per-generation decode cache misses by kind (estimate, tree): each miss runs one decode.",
			"kind"),
		Decodes: reg.CounterVec("dpspatial_decodes_total",
			"EM estimate decodes by mode (cold, warm).",
			"mode"),
		DecodeSeconds: reg.HistogramVec("dpspatial_decode_seconds",
			"EM estimate decode wall time in seconds, by mode (cold, warm).",
			metrics.DefBuckets, "mode"),
		DecodeIterations: reg.CounterVec("dpspatial_decode_iterations_total",
			"EM iterations run, accumulated by decode mode (cold, warm).",
			"mode"),
		DecodeIterationsSaved: reg.Counter("dpspatial_decode_iterations_saved_total",
			"EM iterations warm-started decodes saved relative to the cold baseline decode."),
	}
}

// ObserveDecode records one EM decode in the shared decode families —
// the collector's refresh and the fleet supervisor's call it so the
// cold/warm accounting cannot diverge between the tiers. savedDelta is
// the increment DecodeCounters.Account applied to IterationsSaved.
func (m *ServiceMetrics) ObserveDecode(elapsed time.Duration, iters int, warm bool, savedDelta uint64) {
	mode := DecodeCold
	if warm {
		mode = DecodeWarm
	}
	m.Decodes.With(mode).Inc()
	m.DecodeSeconds.With(mode).Observe(elapsed.Seconds())
	m.DecodeIterations.With(mode).Add(float64(iters))
	if savedDelta > 0 {
		m.DecodeIterationsSaved.Add(float64(savedDelta))
	}
}

// statusRecorder captures the status code a handler wrote, defaulting
// to 200 when the handler never called WriteHeader explicitly.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrumentedPaths are the endpoints counted under their own path
// label; anything else collapses into "other" so request metrics stay
// bounded-cardinality no matter what clients probe for.
var instrumentedPaths = map[string]bool{
	"/healthz":      true,
	"/v1/report":    true,
	"/v1/aggregate": true,
	"/v1/estimate":  true,
	"/v1/query":     true,
	"/v1/stats":     true,
}

func normalizePath(p string) string {
	if instrumentedPaths[p] {
		return p
	}
	return "other"
}

// InstrumentHTTP wraps a tier's full handler chain (including the
// bearer-token gate, so 401s are counted) with request accounting:
// per-path request and latency series, plus the refused-submission and
// refused-query counters derived from the response status — which is
// what guarantees every writeError path in every handler is covered
// without instrumenting each one. Requests to MetricsPath, TracesPath
// and the pprof prefix pass through uncounted: scraping any
// observability surface must leave the request series byte-identical —
// the same exclusion set the tracing middleware applies (UntracedPath
// minus /healthz, which IS counted, just never traced).
func InstrumentHTTP(m *ServiceMetrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p := r.URL.Path; p == MetricsPath || p == TracesPath ||
			len(p) >= len(PprofPathPrefix) && p[:len(PprofPathPrefix)] == PprofPathPrefix {
			next.ServeHTTP(w, r)
			return
		}
		path := normalizePath(r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		code := rec.status
		if code == 0 {
			code = http.StatusOK
		}
		m.Requests.With(path, strconv.Itoa(code)).Inc()
		m.Latency.With(path).Observe(time.Since(t0).Seconds())
		if code < 400 {
			return
		}
		switch {
		case r.Method == http.MethodPost && (path == "/v1/report" || path == "/v1/aggregate"):
			m.Submissions.With(SubmissionRefused).Inc()
			m.SubmissionRefusals.With(strconv.Itoa(code)).Inc()
		case path == "/v1/query":
			m.QueryRefusals.With(strconv.Itoa(code)).Inc()
		}
	})
}

// registerCollectorMetrics layers the collector-only series over the
// shared set: state gauges read under mu at scrape time, and — on a
// durable collector — the store counters read from Store.Stats(), which
// is how internal/durable is surfaced without depending on
// internal/metrics. Time-derived store fields (snapshot age) are
// deliberately not exported: they would break the quiesced-scrape
// determinism the golden test pins.
func (c *Collector) registerCollectorMetrics() {
	c.reg.GaugeFunc("dpspatial_generation",
		"Accepted-submission count of the canonical aggregate.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.generation)
		})
	c.reg.GaugeFunc("dpspatial_reports",
		"Total reports absorbed into the canonical aggregate.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.agg == nil {
				return 0
			}
			return c.agg.N
		})
	c.reg.GaugeFunc("dpspatial_estimate_generation",
		"Generation the served estimate was decoded from (0 = no estimate yet).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.estGen)
		})
	if c.store == nil {
		return
	}
	st := c.store
	c.reg.CounterFunc("dpspatial_durable_wal_records_appended_total",
		"WAL records appended by this process.",
		func() float64 { return float64(st.Stats().RecordsAppended) })
	c.reg.CounterFunc("dpspatial_durable_wal_bytes_written_total",
		"Bytes appended to the WAL by this process, headers included.",
		func() float64 { return float64(st.Stats().WALBytesWritten) })
	c.reg.CounterFunc("dpspatial_durable_wal_fsyncs_total",
		"Fsyncs issued on the WAL file: one per append batch plus one per post-snapshot reset.",
		func() float64 { return float64(st.Stats().WALFsyncs) })
	c.reg.CounterFunc("dpspatial_durable_snapshots_written_total",
		"Durable snapshots installed by this process.",
		func() float64 { return float64(st.Stats().SnapshotsWritten) })
	c.reg.GaugeFunc("dpspatial_durable_records_since_snapshot",
		"WAL records a crash right now would replay.",
		func() float64 { return float64(st.Stats().RecordsSinceSnapshot) })
	c.reg.GaugeFunc("dpspatial_durable_wal_records_replayed",
		"WAL records the startup recovery replayed.",
		func() float64 { return float64(st.Stats().RecordsReplayed) })
	c.reg.GaugeFunc("dpspatial_durable_torn_tail_bytes",
		"Bytes of an incomplete final WAL write discarded at startup recovery.",
		func() float64 { return float64(st.Stats().TornTailBytes) })
}

// Metrics returns the collector's metric registry — what GET /metrics
// serves, and the hook for embedding callers that mount the exposition
// elsewhere.
func (c *Collector) Metrics() *metrics.Registry { return c.reg }
